// Transport abstraction for the daemon's socket front door: one Endpoint
// type naming either a Unix-domain socket or a loopback TCP address, and a
// Transport that knows how to listen on / connect to / clean up after one
// endpoint kind. The event-driven server (server.hpp) and the client Vfs
// (uds_client.hpp) both speak Endpoints, so a daemon can serve trainer
// processes on the same node over UDS and "remote" hosts over TCP with the
// exact same framed protocol.
//
// Endpoint spec strings (accepted by Endpoint::parse and the client):
//   unix:/path/to.sock    Unix-domain stream socket
//   tcp:127.0.0.1:7010    TCP (port 0 = kernel-assigned, reported back)
//   /path/to.sock         bare paths keep meaning UDS (back-compat)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace fanstore::ipc {

struct Endpoint {
  enum class Kind : std::uint8_t { kUds, kTcp };

  Kind kind = Kind::kUds;
  std::string path;              // kUds: socket path
  std::string host = "127.0.0.1";  // kTcp
  std::uint16_t port = 0;          // kTcp; 0 = ephemeral (resolved on bind)

  static Endpoint uds(std::string socket_path);
  static Endpoint tcp(std::string host, std::uint16_t port);

  /// Parses a spec string (see file comment); nullopt on malformed specs.
  static std::optional<Endpoint> parse(const std::string& spec);

  /// Canonical spec string ("unix:/p", "tcp:host:port").
  std::string to_string() const;
};

/// Listen/connect for one endpoint kind. Stateless singletons — all
/// connection state lives with the fd the calls return.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds + listens; returns the listening fd (non-blocking, CLOEXEC) or
  /// throws std::runtime_error. `*bound` (may be null) receives the actual
  /// endpoint — for TCP with port 0 this carries the kernel-assigned port.
  virtual int listen(const Endpoint& ep, int backlog, Endpoint* bound) = 0;

  /// Blocking connect; returns the connected fd or -1. Retries EINTR.
  virtual int connect(const Endpoint& ep) = 0;

  /// Post-close cleanup (unlink the UDS path; no-op for TCP).
  virtual void cleanup(const Endpoint& ep) = 0;

  static Transport& for_kind(Endpoint::Kind kind);
};

/// Convenience: connect to an endpoint via its kind's transport.
int transport_connect(const Endpoint& ep);

/// Sets O_NONBLOCK (+ CLOEXEC) on `fd`; false on fcntl failure.
bool set_nonblocking(int fd);

}  // namespace fanstore::ipc
