#include "core/metadata_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/hash.hpp"

namespace fanstore::core {

namespace {
std::pair<std::string, std::string> split_parent(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return {std::string{}, path};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

/// Per-entry mix for the order-independent shard digest: covers the path,
/// the LWW tuple, and the stat fields anti-entropy must not miss. Two
/// replicas whose shard digests match hold the same winning entries.
std::uint64_t entry_mix(const std::string& path, const cluster::VersionedStat& e) {
  std::uint8_t raw[format::kStatBytes];
  e.stat.serialize(raw);
  std::uint64_t h = util::stable_hash64(path);
  h = util::mix64(h ^ e.version);
  h = util::mix64(h ^ e.writer);
  h = util::mix64(h ^ util::stable_hash64(std::string_view(
                          reinterpret_cast<const char*>(raw), sizeof raw)));
  return h;
}
}  // namespace

void MetadataStore::index_parents_locked(const std::string& path) {
  // Walk up: file itself is registered by caller; here we register each
  // ancestor directory and its child link.
  std::string current = path;
  bool child_is_dir = false;
  for (;;) {
    auto [parent, name] = split_parent(current);
    children_[parent].insert({name, child_is_dir});
    if (parent.empty()) break;
    dirs_.insert(parent);
    current = parent;
    child_is_dir = true;
  }
}

void MetadataStore::reindex_locked() {
  children_.clear();
  dirs_.clear();
  for (const auto& [path, entry] : files_) index_parents_locked(path);
}

bool MetadataStore::insert_locked(const std::string& path,
                                  const cluster::VersionedStat& entry,
                                  bool versioned) {
  if (path.empty()) throw std::invalid_argument("MetadataStore: empty path");
  const auto it = files_.find(path);
  if (it == files_.end()) {
    files_.emplace(path, entry);
    index_parents_locked(path);
    return true;
  }
  // Classic inserts overwrite unconditionally (load/allgather semantics);
  // replicated inserts race under deterministic last-writer-wins.
  if (versioned && !entry.wins_over(it->second)) return false;
  it->second = entry;
  return true;
}

void MetadataStore::insert(const std::string& path, const format::FileStat& stat) {
  sync::MutexLock lk(mu_);
  insert_locked(path, cluster::VersionedStat{stat, 0, 0}, /*versioned=*/false);
}

bool MetadataStore::insert_versioned(const std::string& path,
                                     const cluster::VersionedStat& entry) {
  sync::MutexLock lk(mu_);
  return insert_locked(path, entry, /*versioned=*/true);
}

std::optional<format::FileStat> MetadataStore::lookup(const std::string& path) const {
  sync::MutexLock lk(mu_);
  const auto it = files_.find(path);
  if (it != files_.end()) return it->second.stat;
  if (path.empty() || dirs_.count(path) > 0) {
    format::FileStat s;
    s.type = format::FileType::kDirectory;
    s.mode = 0755;
    return s;
  }
  return std::nullopt;
}

std::optional<cluster::VersionedStat> MetadataStore::lookup_versioned(
    const std::string& path) const {
  sync::MutexLock lk(mu_);
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::optional<format::FileStat> MetadataStore::lookup_any(
    const std::string& path) const {
  return lookup(path);
}

bool MetadataStore::dir_exists(const std::string& path) const {
  sync::MutexLock lk(mu_);
  return path.empty() || dirs_.count(path) > 0;
}

bool MetadataStore::dir_exists_local(const std::string& path) const {
  // The synthesized root ("" exists everywhere) must not make every rank
  // claim knowledge of an empty namespace, but the classic contract keeps
  // it: remote unions simply dedupe.
  return dir_exists(path);
}

std::vector<posixfs::Dirent> MetadataStore::list(const std::string& dir) const {
  sync::MutexLock lk(mu_);
  std::vector<posixfs::Dirent> out;
  const auto it = children_.find(dir);
  if (it == children_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [name, is_dir] : it->second) {
    out.push_back(posixfs::Dirent{
        name, is_dir ? format::FileType::kDirectory : format::FileType::kRegular});
  }
  return out;
}

std::vector<posixfs::Dirent> MetadataStore::list_local(const std::string& dir) const {
  return list(dir);
}

std::size_t MetadataStore::file_count() const {
  sync::MutexLock lk(mu_);
  return files_.size();
}

std::vector<std::string> MetadataStore::all_paths() const {
  sync::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [p, s] : files_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

Bytes MetadataStore::serialize() const {
  sync::MutexLock lk(mu_);
  Bytes out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(files_.size()));
  for (const auto& [path, entry] : files_) {
    append_le<std::uint16_t>(out, static_cast<std::uint16_t>(path.size()));
    out.insert(out.end(), path.begin(), path.end());
    out.resize(out.size() + format::kStatBytes);
    entry.stat.serialize(out.data() + out.size() - format::kStatBytes);
  }
  return out;
}

void MetadataStore::merge_serialized(ByteView blob) {
  if (blob.size() < 4) {
    if (blob.empty()) return;
    throw std::invalid_argument("MetadataStore: truncated metadata blob");
  }
  const std::uint32_t count = load_le<std::uint32_t>(blob.data());
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 2 > blob.size()) {
      throw std::invalid_argument("MetadataStore: truncated entry header");
    }
    const std::uint16_t len = load_le<std::uint16_t>(blob.data() + pos);
    pos += 2;
    if (pos + len + format::kStatBytes > blob.size()) {
      throw std::invalid_argument("MetadataStore: truncated entry body");
    }
    std::string path(reinterpret_cast<const char*>(blob.data() + pos), len);
    pos += len;
    const auto stat = format::FileStat::deserialize(blob.data() + pos);
    pos += format::kStatBytes;
    insert(path, stat);
  }
}

std::uint64_t MetadataStore::shard_digest(std::uint32_t shard,
                                          std::uint32_t nshards) const {
  sync::MutexLock lk(mu_);
  std::uint64_t h = 0;
  for (const auto& [path, entry] : files_) {
    if (cluster::shard_of(path, nshards) != shard) continue;
    h ^= entry_mix(path, entry);
  }
  return h;
}

Bytes MetadataStore::serialize_shard(std::uint32_t shard,
                                     std::uint32_t nshards) const {
  sync::MutexLock lk(mu_);
  std::vector<std::string> paths;  // sorted below: deterministic output
  for (const auto& [path, entry] : files_) {
    if (cluster::shard_of(path, nshards) == shard) paths.push_back(path);
  }
  std::sort(paths.begin(), paths.end());
  Bytes out;
  append_le<std::uint32_t>(out, 0);  // patched below
  std::uint32_t count = 0;
  for (const std::string& path : paths) {
    const auto it = files_.find(path);
    if (it == files_.end()) continue;  // raced with drop: skip
    append_le<std::uint16_t>(out, static_cast<std::uint16_t>(path.size()));
    out.insert(out.end(), path.begin(), path.end());
    append_le<std::uint64_t>(out, it->second.version);
    append_le<std::uint32_t>(out, it->second.writer);
    out.resize(out.size() + format::kStatBytes);
    it->second.stat.serialize(out.data() + out.size() - format::kStatBytes);
    ++count;
  }
  store_le<std::uint32_t>(out.data(), count);
  return out;
}

std::size_t MetadataStore::merge_shard(ByteView blob) {
  if (blob.size() < 4) {
    throw std::invalid_argument("MetadataStore: truncated shard blob");
  }
  const std::uint32_t count = load_le<std::uint32_t>(blob.data());
  std::size_t pos = 4;
  std::size_t applied = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 2 > blob.size()) {
      throw std::invalid_argument("MetadataStore: truncated shard entry header");
    }
    const std::uint16_t len = load_le<std::uint16_t>(blob.data() + pos);
    pos += 2;
    if (pos + len + 12 + format::kStatBytes > blob.size()) {
      throw std::invalid_argument("MetadataStore: truncated shard entry body");
    }
    std::string path(reinterpret_cast<const char*>(blob.data() + pos), len);
    pos += len;
    cluster::VersionedStat entry;
    entry.version = load_le<std::uint64_t>(blob.data() + pos);
    entry.writer = load_le<std::uint32_t>(blob.data() + pos + 8);
    pos += 12;
    entry.stat = format::FileStat::deserialize(blob.data() + pos);
    pos += format::kStatBytes;
    if (insert_versioned(path, entry)) ++applied;
  }
  return applied;
}

void MetadataStore::drop_shard(std::uint32_t shard, std::uint32_t nshards,
                               int keep_owner_rank) {
  sync::MutexLock lk(mu_);
  bool dropped = false;
  for (auto it = files_.begin(); it != files_.end();) {
    if (cluster::shard_of(it->first, nshards) != shard ||
        (keep_owner_rank >= 0 &&
         it->second.stat.owner_rank == static_cast<std::uint32_t>(keep_owner_rank))) {
      ++it;
      continue;
    }
    it = files_.erase(it);
    dropped = true;
  }
  // Directory links are namespace-wide, so rebuild them from what's left.
  if (dropped) reindex_locked();
}

std::vector<std::string> MetadataStore::shard_paths(std::uint32_t shard,
                                                    std::uint32_t nshards) const {
  sync::MutexLock lk(mu_);
  std::vector<std::string> out;
  for (const auto& [path, entry] : files_) {
    if (cluster::shard_of(path, nshards) == shard) out.push_back(path);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fanstore::core
