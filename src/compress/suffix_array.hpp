// Suffix-array construction for the BWT stage.
//
// Two implementations: SA-IS (linear time, the production path — what real
// bzip2-class tools need for large blocks) and prefix doubling
// (O(n log^2 n), simple, kept as the differential-testing oracle).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace fanstore::compress {

/// Linear-time SA-IS construction. Returns the suffix array of `s`
/// (indices of suffixes in lexicographic order, no sentinel included).
std::vector<std::uint32_t> suffix_array_sais(ByteView s);

/// O(n log^2 n) prefix-doubling construction (reference implementation).
std::vector<std::uint32_t> suffix_array_doubling(ByteView s);

}  // namespace fanstore::compress
