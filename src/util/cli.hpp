// Tiny command-line flag parser for example programs and the prep tool.
//
// Supports --name=value and boolean --flag forms; everything else is
// positional. (The `--name value` form is intentionally not supported — it
// is ambiguous with positional arguments.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fanstore {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fanstore
