// fanstore-lint token stream. The analyzer is lexical-semantic, not a full
// parser: a tokenizer plus a lightweight per-TU model (tools/lint/model.hpp)
// is enough to express the project-specific rules clang-tidy cannot, while
// staying dependency-free and fast enough to run on every CI pass.
#pragma once

#include <string>
#include <vector>

namespace fanstore::lint {

enum class Tok {
  kIdent,
  kNumber,
  kString,   // text includes quotes (and any encoding prefix)
  kChar,
  kPunct,    // single- or two-character operator/punctuator
  kComment,  // text includes the // or /* */ delimiters
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  int line = 1;  // 1-based line of the token's first character
  int col = 1;   // 1-based column
  bool preproc = false;  // token belongs to a preprocessor directive line
};

/// The string contents of a kString token (quotes and prefix stripped,
/// escapes NOT interpreted — metric names and the like never need them).
std::string string_value(const Token& t);

/// Integer value of a kNumber token (decimal / hex / octal, ' separators
/// and integer suffixes ignored). Returns false on a floating literal or
/// overflow.
bool number_value(const Token& t, long long* out);

/// Tokenizes C++ source. Never fails: unrecognized bytes become 1-char
/// kPunct tokens. Comments are kept in the stream (suppression scanning);
/// most consumers iterate via a comment-skipping cursor.
std::vector<Token> tokenize(const std::string& source);

}  // namespace fanstore::lint
