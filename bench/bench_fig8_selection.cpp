// Table VII + Figure 8: the three compressor-selection case studies —
// SRGAN/GTX (sync), FRNN/CPU (async), SRGAN/V100 (sync, tighter budget).
//
// For each case: (1) profile real candidate codecs on dataset samples,
// (2) run the selection algorithm (Equations 1-3) against the cluster's
// measured I/O profile, and (3) run the actual training loop through the
// real FanStore stack with each codec and report throughput relative to
// the uncompressed baseline (Fig. 8's bars).
//
// Scaling note: generated files are smaller than the paper's (256 KB vs
// 1.6 MB EM), so T_iter is scaled by the same factor, preserving the
// data-rate-to-compute ratio that the selection trade-off depends on.
// Relative *ordering* (baseline ~ fast-LZ > brotli > zling > lzma on sync
// cases; everything ~ 1.0 on the async case) is the reproduced claim;
// magnitudes differ because our from-scratch lzma-lite decodes faster
// relative to this host than 2019-era lzma did on those Xeons.
#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/trainer.hpp"
#include "select/selection.hpp"
#include "simnet/models.hpp"

using namespace fanstore;

namespace {

struct CaseSetup {
  dlsim::AppCase app;
  simnet::ClusterSpec cluster;
  double required_ratio;
  double tolerance;  // acceptable fractional performance loss
};

double run_app_with_codec(const CaseSetup& setup, const std::string& codec_name,
                          double* items_per_s) {
  const auto spec = dlsim::dataset_spec(setup.app.dataset);
  const double scale = static_cast<double>(spec.file_bytes) / spec.paper_avg_file_bytes;
  const double t_iter = setup.app.profile.t_iter_s * scale;
  const std::size_t batch_per_rank =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   setup.app.profile.c_batch_files / 4));
  const int files_total = static_cast<int>(batch_per_rank) * 8;

  std::vector<double> rank_tput(4, 0.0);
  mpi::run_world(4, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(setup.cluster);
    opt.fs.cost.network = setup.cluster.network;
    opt.fs.clock = &clock;
    // Minimal cache (the paper's design principle): force decompression on
    // every open, as on a dataset far larger than RAM.
    opt.fs.cache_bytes = 2 * spec.file_bytes;
    core::Instance inst(comm, opt);

    // Scatter files round-robin (each rank owns 1/4).
    std::vector<std::pair<std::string, Bytes>> mine;
    std::vector<std::string> all_paths;
    for (int i = 0; i < files_total; ++i) {
      const std::string path = "ds/f" + std::to_string(i);
      all_paths.push_back(path);
      if (i % 4 == comm.rank()) {
        mine.emplace_back(path, dlsim::generate_file(setup.app.dataset,
                                                     static_cast<std::uint64_t>(i)));
      }
    }
    inst.load_partition_blob(as_view(bench::make_partition(mine, codec_name)),
                             static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    dlsim::TrainerOptions topt;
    topt.t_iter_s = t_iter;
    topt.batch_per_rank = batch_per_rank;
    topt.epochs = 1;
    topt.max_iterations = 4;
    topt.async_io = setup.app.profile.async_io;
    topt.io_parallelism = setup.app.profile.io_parallelism;
    topt.io_clock = &clock;
    topt.comm = &comm;
    const auto result = dlsim::run_training(inst.fs(), all_paths, topt);
    rank_tput[static_cast<std::size_t>(comm.rank())] = result.items_per_s;
    comm.barrier();
    inst.stop();
  });
  double total = 0;
  for (double t : rank_tput) total += t;
  *items_per_s = total;
  return total;
}

void run_case(const CaseSetup& setup) {
  bench::section(setup.app.app + " on " + setup.app.cluster);

  // --- Step 1: sample-based candidate profiling (the lzbench step) ---
  std::vector<Bytes> samples;
  const int nsamples = setup.app.dataset == dlsim::DatasetKind::kTokamakNpz ? 64 : 4;
  for (int i = 0; i < nsamples; ++i) {
    samples.push_back(dlsim::generate_file(setup.app.dataset,
                                           static_cast<std::uint64_t>(i)));
  }
  std::vector<std::string> names = setup.app.selected;
  names.insert(names.end(), setup.app.comparison.begin(), setup.app.comparison.end());
  const auto candidates = select::profile_candidates(samples, names);

  // --- Step 2: selection against the cluster's I/O profile ---
  const auto read_path = simnet::fanstore_read_path(setup.cluster);
  const auto spec = dlsim::dataset_spec(setup.app.dataset);
  const double mean_ratio = [&] {
    double s = 0;
    for (const auto& c : candidates) s += c.ratio;
    return s / static_cast<double>(candidates.size());
  }();
  const double compressed_bytes = static_cast<double>(spec.file_bytes) / mean_ratio;
  const double t_file = read_path.file_read_time(
      static_cast<std::size_t>(compressed_bytes));
  const select::IoProfile io{1.0 / t_file, compressed_bytes / t_file / 1e6};

  // The selection operates on the *scaled* app (same data-rate ratio).
  select::AppProfile profile = setup.app.profile;
  const double scale = static_cast<double>(spec.file_bytes) / spec.paper_avg_file_bytes;
  profile.t_iter_s *= scale;
  profile.s_batch_raw_mb *= scale;

  const auto result = select::select_compressor(profile, io, candidates,
                                                setup.required_ratio, setup.tolerance);

  bench::Table table({"compressor", "decomp_cost/file", "com_ratio",
                      "strict Eq.1/2", "pred. slowdown", "feasible", "selected"});
  for (const auto& e : result.evaluated) {
    const bool feasible =
        std::any_of(result.feasible.begin(), result.feasible.end(),
                    [&](const auto& f) { return f.name == e.stats.name; });
    const bool chosen = result.best && result.best->name == e.stats.name;
    table.row({e.stats.name, bench::fmt("%.0f us", e.stats.decompress_s_per_file * 1e6),
               bench::fmt("%.2f", e.stats.ratio), e.strict_feasible ? "yes" : "no",
               bench::fmt("%.1f%%", e.slowdown * 100), feasible ? "yes" : "no",
               chosen ? "<== best" : ""});
  }
  table.print();
  std::printf("required capacity ratio: %.2f (%s); tolerance %.0f%%\n",
              setup.required_ratio,
              result.meets_required_ratio ? "met" : "NOT met by best candidate",
              setup.tolerance * 100);

  // --- Step 3: actual application performance per codec (Fig. 8 bars) ---
  double baseline = 0;
  run_app_with_codec(setup, "store", &baseline);
  bench::Table perf({"codec", "items/s (4 nodes)", "relative to baseline"});
  perf.row({"baseline (raw)", bench::fmt("%.2f", baseline), "1.000"});
  for (const auto& name : names) {
    double tput = 0;
    run_app_with_codec(setup, name, &tput);
    perf.row({name, bench::fmt("%.2f", tput), bench::fmt("%.3f", tput / baseline)});
  }
  perf.print();
}

}  // namespace

int main() {
  // GTX: strict "no performance loss" (1%); V100: the paper accepts lz4hc's
  // 4.7% loss for 2x capacity, so selection runs at a 5% tolerance there.
  run_case({dlsim::srgan_gtx(), simnet::gtx_cluster(), 500.0 / 240.0, 0.01});
  run_case({dlsim::frnn_cpu(), simnet::cpu_cluster(), 2.0, 0.01});
  run_case({dlsim::srgan_v100(), simnet::v100_cluster(), 1.0, 0.05});

  std::printf(
      "\npaper Fig. 8: (a) SRGAN/GTX — lzsse8/lz4hc match baseline, brotli/\n"
      "zling/lzma cost 1.1-2.3x; (b) FRNN/CPU — all candidates match baseline\n"
      "(async prefetch hides decompression); (c) SRGAN/V100 — lz4hc 95.3%%,\n"
      "brotli 24.6%%, lzma 72.8%% of baseline.\n");
  return 0;
}
