// crc-before-interpret: a fetch reply arrives over the (simulated) wire and
// may be corrupted; a flipped status byte turns a hit into a miss or vice
// versa. The protocol therefore requires fetch_reply_crc_ok() to pass
// before any field of the reply payload is interpreted. Within each
// function body in core/, this rule flags status-byte comparisons
// (== / != against kFetchOk/kFetchNotFound/kFetchMalformed), header
// slicing (kFetchReplyHeaderBytes), or direct payload access that precede
// the crc call.
#include "rules.hpp"

#include <set>

namespace fanstore::lint {

namespace {

const std::set<std::string> kStatusConsts = {"kFetchOk", "kFetchNotFound",
                                             "kFetchMalformed"};

bool eq_or_ne(const Token& t) {
  return t.kind == Tok::kPunct && (t.text == "==" || t.text == "!=");
}

}  // namespace

void rule_crc_order(const FileCtx& ctx, std::vector<Finding>* out) {
  if (ctx.rel.rfind("core/", 0) != 0) return;
  const auto& toks = *ctx.tokens;
  const auto& m = *ctx.model;

  for (const FunctionInfo& fn : m.functions) {
    if (fn.name == "fetch_reply_crc_ok") continue;     // the check itself
    if (fn.name.rfind("encode_", 0) == 0) continue;    // sender side
    std::size_t interpret = TuModel::npos;  // first interpreting token
    std::size_t crc = TuModel::npos;        // first fetch_reply_crc_ok call

    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "fetch_reply_crc_ok") {
        const std::size_t paren = m.next_code(i);
        if (paren != TuModel::npos && toks[paren].kind == Tok::kPunct &&
            toks[paren].text == "(") {
          if (crc == TuModel::npos) crc = i;
        }
        continue;
      }
      if (interpret != TuModel::npos) continue;
      if (t.text == "kFetchReplyHeaderBytes") {
        interpret = i;
        continue;
      }
      if (kStatusConsts.count(t.text) != 0) {
        const std::size_t prev = m.prev_code(i);
        const std::size_t next = m.next_code(i);
        if ((prev != TuModel::npos && eq_or_ne(toks[prev])) ||
            (next != TuModel::npos && eq_or_ne(toks[next]))) {
          interpret = i;
        }
      }
    }

    if (interpret != TuModel::npos &&
        (crc == TuModel::npos || crc > interpret)) {
      const Token& t = toks[interpret];
      out->push_back(Finding{
          "crc-before-interpret", ctx.rel, t.line, t.col,
          "'" + t.text + "' interprets a fetch reply before "
          "fetch_reply_crc_ok() has verified it (in " + fn.name + ")",
          {}});
    }

    // Second pass: the payload buffer handed to the crc call must not be
    // element-accessed before the call. Base identifier = last identifier
    // inside the crc call's argument list (e.g. `payload` in
    // fetch_reply_crc_ok(as_view(reply->payload))).
    if (crc == TuModel::npos) continue;
    const std::size_t paren = m.next_code(crc);
    const std::size_t close = m.bracket_match[paren];
    if (close == TuModel::npos) continue;
    std::string base;
    for (std::size_t i = paren; i < close; ++i) {
      if (toks[i].kind == Tok::kIdent) base = toks[i].text;
    }
    if (base.empty()) continue;
    for (std::size_t i = fn.body_begin; i < crc; ++i) {
      const Token& t = toks[i];
      if (!(t.kind == Tok::kIdent && t.text == base)) continue;
      const std::size_t next = m.next_code(i);
      if (next == TuModel::npos || toks[next].kind != Tok::kPunct) continue;
      bool access = toks[next].text == "[";
      if (toks[next].text == "." || toks[next].text == "->") {
        const std::size_t mem = m.next_code(next);
        access = mem != TuModel::npos && toks[mem].kind == Tok::kIdent &&
                 (toks[mem].text == "data" || toks[mem].text == "begin" ||
                  toks[mem].text == "front");
      }
      if (access) {
        out->push_back(Finding{
            "crc-before-interpret", ctx.rel, t.line, t.col,
            "payload buffer '" + base + "' accessed before "
            "fetch_reply_crc_ok() has verified it (in " + fn.name + ")",
            {}});
        break;
      }
    }
  }
}

}  // namespace fanstore::lint
