#include "select/selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "compress/registry.hpp"
#include "util/timer.hpp"

namespace fanstore::select {

double t_read_s(double c_batch_files, double s_batch_mb, const IoProfile& io) {
  if (io.tpt_read_files_per_s <= 0 || io.bdw_read_mb_per_s <= 0) {
    throw std::invalid_argument("selection: non-positive I/O profile");
  }
  return std::max(c_batch_files / io.tpt_read_files_per_s,
                  s_batch_mb / io.bdw_read_mb_per_s);
}

double decompress_budget_per_file_s(const AppProfile& app, const IoProfile& io,
                                    double ratio) {
  const double t_read_compressed =
      t_read_s(app.c_batch_files, app.s_batch_raw_mb / ratio, io);
  double batch_budget;
  if (app.async_io) {
    // Eq. 2: decompression + compressed read must fit inside an iteration.
    batch_budget = app.t_iter_s - t_read_compressed;
  } else {
    // Eq. 1: decompression must fit in the read time saved by compression.
    const double t_read_raw = t_read_s(app.c_batch_files, app.s_batch_raw_mb, io);
    batch_budget = t_read_raw - t_read_compressed;
  }
  return batch_budget / app.c_batch_files * app.io_parallelism;
}

double predicted_slowdown(const AppProfile& app, const IoProfile& io,
                          const CandidateStats& candidate) {
  const double t_raw = t_read_s(app.c_batch_files, app.s_batch_raw_mb, io);
  const double t_comp =
      t_read_s(app.c_batch_files, app.s_batch_raw_mb / candidate.ratio, io);
  const double decomp = app.c_batch_files * candidate.decompress_s_per_file /
                        app.io_parallelism;
  double before, after;
  if (app.async_io) {
    before = std::max(app.t_iter_s, t_raw);
    after = std::max(app.t_iter_s, t_comp + decomp);
  } else {
    before = app.t_iter_s + t_raw;
    after = app.t_iter_s + t_comp + decomp;
  }
  return std::max(0.0, after / before - 1.0);
}

SelectionResult select_compressor(const AppProfile& app, const IoProfile& io,
                                  const std::vector<CandidateStats>& candidates,
                                  double required_ratio, double tolerance) {
  SelectionResult result;
  for (const auto& c : candidates) {
    EvaluatedCandidate e;
    e.stats = c;
    e.budget_s_per_file = decompress_budget_per_file_s(app, io, c.ratio);
    e.strict_feasible = c.decompress_s_per_file < e.budget_s_per_file;
    e.slowdown = predicted_slowdown(app, io, c);
    if (e.strict_feasible || e.slowdown <= tolerance) result.feasible.push_back(c);
    result.evaluated.push_back(std::move(e));
  }
  auto by_ratio_desc = [](const auto& a, const auto& b) { return a.ratio > b.ratio; };
  std::sort(result.feasible.begin(), result.feasible.end(), by_ratio_desc);
  std::sort(result.evaluated.begin(), result.evaluated.end(),
            [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
              return a.stats.ratio > b.stats.ratio;
            });
  if (!result.feasible.empty()) {
    result.best = result.feasible.front();
    result.meets_required_ratio = result.best->ratio >= required_ratio;
  }
  return result;
}

std::vector<CandidateStats> profile_candidates(
    const std::vector<Bytes>& samples, const std::vector<std::string>& codec_names) {
  if (samples.empty()) throw std::invalid_argument("selection: no samples");
  const auto& reg = compress::Registry::instance();
  std::vector<CandidateStats> out;
  out.reserve(codec_names.size());
  for (const auto& name : codec_names) {
    const compress::Compressor* codec = reg.by_name(name);
    if (codec == nullptr) {
      throw std::invalid_argument("selection: unknown compressor " + name);
    }
    CandidateStats stats;
    stats.id = reg.id_of(*codec);
    stats.name = codec->name();
    std::size_t raw_total = 0, packed_total = 0;
    std::vector<Bytes> packed;
    packed.reserve(samples.size());
    for (const auto& s : samples) {
      packed.push_back(codec->compress(as_view(s)));
      raw_total += s.size();
      packed_total += packed.back().size();
    }
    // Warm pass, then best-of-3 timing across all samples.
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (void)codec->decompress(as_view(packed[i]), samples[i].size());
    }
    double best = 1e99;
    for (int pass = 0; pass < 3; ++pass) {
      WallTimer t;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        (void)codec->decompress(as_view(packed[i]), samples[i].size());
      }
      best = std::min(best, t.elapsed_sec());
    }
    stats.ratio = packed_total == 0 ? 1.0
                                    : static_cast<double>(raw_total) /
                                          static_cast<double>(packed_total);
    stats.decompress_s_per_file = best / static_cast<double>(samples.size());
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace fanstore::select
