// Asynchronous batch prefetcher — the real mechanism behind Figure 5(b).
//
// DL frameworks overlap the next batch's I/O with the current iteration's
// compute; with FanStore that means warming the decompressed cache so that
// the training thread's open() calls are hits. The prefetcher runs a small
// thread pool issuing open()+close() for upcoming files (the open performs
// fetch + decompress + cache insert; close leaves the entry cached).
//
// When constructed against a FanStoreFs the warm-up is *pipelined*: a
// dedicated fetch stage pulls compressed blobs off the network
// (FanStoreFs::prefetch_compressed) and hands each file to the decompress
// stage as soon as its bytes land, so the network fetches of batch i+1
// overlap the decompression of batch i instead of serializing inside one
// fused open() per file.
//
// The queue can be bounded (set_queue_limit): once `high_water` paths are
// queued but not yet started, prefetch() either blocks for a free slot
// (kBlock — backpressure onto the producer) or cancels the oldest
// not-yet-started entry (kDropOldest — freshest schedule wins, counted in
// "prefetch.dropped"). The backlog is the "prefetch.queue_depth" gauge.
//
// Prefetcher implements plan::Warmer, so the clairvoyant
// PrefetchController (DESIGN.md §10) can drive it directly.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/fanstore_fs.hpp"
#include "obs/metrics.hpp"
#include "plan/controller.hpp"
#include "posixfs/vfs.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace fanstore::dlsim {

class Prefetcher final : public plan::Warmer {
 public:
  enum class OverflowPolicy { kBlock, kDropOldest };

  /// Generic warm-up via fused open()+close(). `fs` must outlive the
  /// prefetcher.
  Prefetcher(posixfs::Vfs& fs, std::size_t threads);

  /// Pipelined warm-up: `fetch_threads` stage network fetches while
  /// `threads` decompress. `fs` must outlive the prefetcher.
  Prefetcher(core::FanStoreFs& fs, std::size_t threads,
             std::size_t fetch_threads = 2);

  /// Bounds the queued-but-not-started backlog to `high_water` paths
  /// (0 restores the historic unbounded behavior). Takes effect for
  /// subsequent prefetch() calls.
  void set_queue_limit(std::size_t high_water,
                       OverflowPolicy policy = OverflowPolicy::kBlock);

  /// Queues the batch for background warming. With an unbounded queue this
  /// returns immediately; under kBlock it may wait for backlog slots.
  /// Every warmed entry ends up cached but *unpinned* (each open is paired
  /// with a close), so prefetching never defeats eviction.
  void prefetch(const std::vector<std::string>& paths);

  /// Blocks until every queued path has been processed (or dropped).
  void wait();

  // --- plan::Warmer ---
  void enqueue(const std::vector<std::string>& paths) override {
    prefetch(paths);
  }
  void drain() override { wait(); }

  /// Read shims over the "prefetch.*" registry counters (pipelined mode
  /// shares the FanStoreFs registry; generic mode uses the global one).
  std::uint64_t files_warmed() const { return warmed_->value(); }
  std::uint64_t failures() const { return failures_->value(); }
  std::uint64_t dropped() const { return dropped_->value(); }
  /// Current queued-but-not-started backlog ("prefetch.queue_depth").
  std::int64_t queue_depth() const { return queue_depth_->value(); }

 private:
  /// One queued path. Flags are guarded by q_mu_; a worker claims the job
  /// (started=true) before touching the fs, a producer under pressure may
  /// cancel it first (kDropOldest) — exactly one of the two wins.
  struct Job {
    explicit Job(std::string p) : path(std::move(p)) {}
    std::string path;
    bool started = false;
    bool cancelled = false;
  };

  void warm(const std::string& path);
  void bind_metrics(obs::MetricsRegistry& m);
  /// Reserves a backlog slot for one path, applying the overflow policy.
  std::shared_ptr<Job> push_job(const std::string& path) EXCLUDES(q_mu_);
  /// Worker-side transition queued -> started; false if the job was
  /// cancelled by drop-oldest pressure.
  bool claim(Job& job) EXCLUDES(q_mu_);

  posixfs::Vfs& fs_;
  core::FanStoreFs* fanstore_ = nullptr;  // non-null: pipelined mode
  ThreadPool pool_;                        // decompress / cache-insert stage
  std::unique_ptr<ThreadPool> fetch_pool_;  // network fetch stage

  mutable sync::Mutex q_mu_{"prefetcher.q_mu"};
  sync::AnnotatedCondVar q_slot_;  // signalled when the backlog shrinks
  /// Jobs not yet claimed by a worker, oldest first (drop-oldest scans from
  /// the front). Claimed/cancelled jobs are lazily trimmed.
  std::deque<std::shared_ptr<Job>> backlog_ GUARDED_BY(q_mu_);
  std::size_t queued_ GUARDED_BY(q_mu_) = 0;  // live (unclaimed) backlog size
  std::size_t high_water_ GUARDED_BY(q_mu_) = 0;  // 0 = unbounded
  OverflowPolicy overflow_ GUARDED_BY(q_mu_) = OverflowPolicy::kBlock;

  obs::Counter* warmed_ = nullptr;          // "prefetch.warmed"
  obs::Counter* failures_ = nullptr;        // "prefetch.failures"
  obs::Counter* fetch_staged_ = nullptr;    // "prefetch.fetch_staged"
  obs::Counter* dropped_ = nullptr;         // "prefetch.dropped"
  obs::Gauge* queue_depth_ = nullptr;       // "prefetch.queue_depth"
};

}  // namespace fanstore::dlsim
