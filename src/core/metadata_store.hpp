// In-RAM metadata store (§IV-C1): every node holds the full namespace in a
// hash table after one allgather, so the metadata storms of §II-B1 (millions
// of stat() calls from dozens of I/O threads) never leave the node.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "format/file_stat.hpp"
#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

class MetadataStore {
 public:
  /// Inserts or replaces the entry for `path` (normalized, dataset-rooted).
  /// Parent directories become visible automatically.
  void insert(const std::string& path, const format::FileStat& stat) EXCLUDES(mu_);

  std::optional<format::FileStat> lookup(const std::string& path) const EXCLUDES(mu_);

  bool dir_exists(const std::string& path) const EXCLUDES(mu_);

  /// Immediate children of `dir`, sorted by name.
  std::vector<posixfs::Dirent> list(const std::string& dir) const EXCLUDES(mu_);

  std::size_t file_count() const EXCLUDES(mu_);

  /// All file paths, sorted (tests and the trainer's enumeration step).
  std::vector<std::string> all_paths() const EXCLUDES(mu_);

  /// Serializes every entry for the metadata allgather.
  Bytes serialize() const EXCLUDES(mu_);

  /// Merges entries from another rank's serialize() output.
  void merge_serialized(ByteView blob) EXCLUDES(mu_);

 private:
  void index_parents_locked(const std::string& path) REQUIRES(mu_);

  mutable sync::Mutex mu_{"metadata_store.mu"};
  std::unordered_map<std::string, format::FileStat> files_ GUARDED_BY(mu_);
  // dir -> immediate children (name, is_dir)
  std::unordered_map<std::string, std::set<std::pair<std::string, bool>>> children_
      GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
};

}  // namespace fanstore::core
