
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posixfs/interceptor.cpp" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/interceptor.cpp.o" "gcc" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/interceptor.cpp.o.d"
  "/root/repo/src/posixfs/local_vfs.cpp" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/local_vfs.cpp.o" "gcc" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/local_vfs.cpp.o.d"
  "/root/repo/src/posixfs/mem_vfs.cpp" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/mem_vfs.cpp.o" "gcc" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/mem_vfs.cpp.o.d"
  "/root/repo/src/posixfs/vfs.cpp" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/vfs.cpp.o" "gcc" "src/posixfs/CMakeFiles/fanstore_posixfs.dir/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/format/CMakeFiles/fanstore_format.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fanstore_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
