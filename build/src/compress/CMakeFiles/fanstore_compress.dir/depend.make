# Empty dependencies file for fanstore_compress.
# This may be replaced when dependencies are built.
