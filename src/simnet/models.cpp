#include "simnet/models.hpp"

#include <algorithm>
#include <cmath>

namespace fanstore::simnet {

double NetworkModel::effective_bandwidth(int nodes) const {
  const double derate =
      1.0 + contention_alpha * std::log2(std::max(1.0, static_cast<double>(nodes)));
  return bandwidth_bps / derate;
}

double NetworkModel::transfer_time(std::size_t bytes, int nodes) const {
  return latency_s + static_cast<double>(bytes) / effective_bandwidth(nodes);
}

double MetadataServerModel::capacity_ops(double) const {
  return 0.98 / service_time_s;
}

double MetadataServerModel::response_time(double arrival_rate) const {
  const double rho = arrival_rate * service_time_s;
  if (rho >= 0.98) return saturation_penalty_s;  // queue diverges
  // M/D/1 mean response time: s + rho*s / (2*(1-rho)).
  return service_time_s * (1.0 + rho / (2.0 * (1.0 - rho)));
}

// Calibration targets: Table III read throughput (files/sec)
//   size      FanStore  SSD-fuse  SSD     Lustre
//   128 KB    28 248    6 687     39 480  1 515
//   8 MB      560       197       678     139
// which fit per-op + size/bandwidth models as below.

StorageModel ssd_storage() {
  return StorageModel{"ssd", 14e-6, 2e-6, 5.8e9};
}

StorageModel ram_disk_storage() {
  return StorageModel{"ramdisk", 4e-6, 0.6e-6, 11e9};
}

StorageModel fuse_ssd_storage() {
  // FUSE adds user/kernel crossings per op and copies on the data path.
  return StorageModel{"ssd-fuse", 130e-6, 40e-6, 1.65e9};
}

StorageModel lustre_storage() {
  return StorageModel{"lustre", 600e-6, 400e-6, 1.15e9};
}

StorageModel fanstore_storage() {
  // Function interception + in-RAM metadata + cache-region copy. Paper:
  // 71-99% of raw SSD at small sizes (Table III), bandwidth-bound large.
  return StorageModel{"fanstore", 19e-6, 1e-6, 4.7e9};
}

StorageModel fanstore_remote_service() {
  // The owner daemon's share of a remote read: request decode, backend
  // lookup, reply framing — roughly one fanstore-local read path spent on
  // the *owner's* core (Tables III/VI put remote reads a near-constant
  // factor under local ones even when the wire is not the bottleneck).
  return StorageModel{"fanstore-remote-svc", 19e-6, 1e-6, 4.7e9};
}

NetworkModel fdr_infiniband() {
  return NetworkModel{"fdr-ib", 1.2e-6, 56e9 / 8, 0.03};
}

NetworkModel omnipath() {
  return NetworkModel{"omni-path", 1.0e-6, 100e9 / 8, 0.02};
}

StorageModel fanstore_read_path(const ClusterSpec& cluster) {
  if (cluster.name == "V100") return StorageModel{"fanstore-v100", 45e-6, 1e-6, 11e9};
  if (cluster.name == "CPU") return StorageModel{"fanstore-cpu", 33e-6, 1e-6, 4.5e9};
  return StorageModel{"fanstore-gtx", 12e-6, 1e-6, 5.2e9};
}

ClusterSpec gtx_cluster() {
  ClusterSpec c;
  c.name = "GTX";
  c.max_nodes = 16;
  c.procs_per_node = 4;
  c.local_capacity_bytes = 60e9;
  c.local_storage = ssd_storage();
  c.network = fdr_infiniband();
  return c;
}

ClusterSpec v100_cluster() {
  ClusterSpec c;
  c.name = "V100";
  c.max_nodes = 4;
  c.procs_per_node = 4;
  c.local_capacity_bytes = 256e9;
  c.local_storage = ram_disk_storage();
  c.network = fdr_infiniband();
  return c;
}

ClusterSpec cpu_cluster() {
  ClusterSpec c;
  c.name = "CPU";
  c.max_nodes = 512;
  c.procs_per_node = 2;
  c.local_capacity_bytes = 144e9;
  c.local_storage = ssd_storage();
  c.network = omnipath();
  return c;
}

}  // namespace fanstore::simnet
