// Targeted codec tests: bit I/O, canonical Huffman, range coder, corruption
// detection, compression-ratio sanity, and decode-speed ordering invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

#include "compress/bitio.hpp"
#include "compress/codecs.hpp"
#include "compress/huffman.hpp"
#include "compress/range_coder.hpp"
#include "compress/registry.hpp"
#include "tests/sanitizer_env.hpp"
#include "tests/test_data.hpp"
#include "util/timer.hpp"

namespace fanstore::compress {
namespace {

TEST(BitIoTest, RoundTripMixedWidths) {
  Bytes buf;
  BitWriter bw(buf);
  bw.put(1, 1);
  bw.put(0x2A, 7);
  bw.put(0x12345, 20);
  bw.put(0xFFFFFFFF, 32);
  bw.put(0, 3);
  bw.align();
  BitReader br(as_view(buf));
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(7), 0x2Au);
  EXPECT_EQ(br.get(20), 0x12345u);
  EXPECT_EQ(br.get(32), 0xFFFFFFFFu);
  EXPECT_EQ(br.get(3), 0u);
}

TEST(BitIoTest, ReaderThrowsOnExhaustion) {
  Bytes buf{0xAB};
  BitReader br(as_view(buf));
  EXPECT_EQ(br.get(8), 0xABu);
  EXPECT_THROW(br.get(1), CorruptDataError);
}

TEST(BitIoTest, AlignDiscardsPartialByte) {
  Bytes buf{0xFF, 0x01};
  BitReader br(as_view(buf));
  EXPECT_EQ(br.get(3), 7u);
  br.align();
  EXPECT_EQ(br.get(8), 0x01u);
}

TEST(HuffmanTest, CodeLengthsRespectLimit) {
  // Exponential frequencies force deep trees; the limiter must cap at 15.
  std::vector<std::uint64_t> freqs(40, 0);
  std::uint64_t f = 1;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    freqs[i] = f;
    f = f < (1ull << 40) ? f * 2 : f;
  }
  const auto lens = build_code_lengths(freqs, 15);
  for (auto l : lens) EXPECT_LE(l, 15);
  // Kraft inequality must hold for a decodable code.
  double kraft = 0;
  for (auto l : lens) {
    if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(HuffmanTest, EncoderDecoderAgree) {
  std::vector<std::uint64_t> freqs = {10, 1, 5, 7, 0, 3, 100, 2};
  const auto lens = build_code_lengths(freqs, 15);
  CanonicalEncoder enc(lens);
  CanonicalDecoder dec(lens);
  Bytes buf;
  BitWriter bw(buf);
  const std::vector<std::uint32_t> message = {0, 6, 6, 3, 2, 7, 1, 5, 6, 0};
  for (auto s : message) enc.encode(bw, s);
  bw.align();
  BitReader br(as_view(buf));
  for (auto s : message) EXPECT_EQ(dec.decode(br), s);
}

TEST(HuffmanTest, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freqs(256, 0);
  freqs[65] = 1000;
  const auto lens = build_code_lengths(freqs, 15);
  EXPECT_EQ(lens[65], 1);
  CanonicalEncoder enc(lens);
  CanonicalDecoder dec(lens);
  Bytes buf;
  BitWriter bw(buf);
  for (int i = 0; i < 20; ++i) enc.encode(bw, 65);
  bw.align();
  BitReader br(as_view(buf));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(dec.decode(br), 65u);
}

TEST(HuffmanTest, LengthSerializationRoundTrip) {
  std::vector<std::uint8_t> lens(100);
  for (std::size_t i = 0; i < lens.size(); ++i) lens[i] = i % 16;
  Bytes buf;
  write_lengths(buf, lens);
  std::size_t pos = 0;
  EXPECT_EQ(read_lengths(as_view(buf), pos, lens.size()), lens);
  EXPECT_EQ(pos, buf.size());
}

TEST(RangeCoderTest, BitSequenceRoundTrip) {
  Bytes buf;
  RangeEncoder enc(buf);
  std::vector<Prob> enc_probs(4, kProbInit);
  Rng rng(123);
  std::vector<int> bits(5000);
  for (auto& b : bits) b = rng.next_below(10) < 3 ? 1 : 0;  // biased source
  for (std::size_t i = 0; i < bits.size(); ++i) {
    enc.encode_bit(enc_probs[i % 4], bits[i]);
  }
  enc.flush();
  // A biased source must compress below 1 bit/bit.
  EXPECT_LT(buf.size() * 8, bits.size());
  RangeDecoder dec(as_view(buf));
  std::vector<Prob> dec_probs(4, kProbInit);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(dec.decode_bit(dec_probs[i % 4]), bits[i]) << "at bit " << i;
  }
}

TEST(RangeCoderTest, DirectBitsRoundTrip) {
  Bytes buf;
  RangeEncoder enc(buf);
  Rng rng(9);
  std::vector<std::pair<std::uint32_t, int>> values;
  for (int i = 0; i < 500; ++i) {
    const int nbits = 1 + static_cast<int>(rng.next_below(24));
    values.emplace_back(static_cast<std::uint32_t>(rng.next_u64()) & ((1u << nbits) - 1),
                        nbits);
  }
  for (auto [v, n] : values) enc.encode_direct(v, n);
  enc.flush();
  RangeDecoder dec(as_view(buf));
  for (auto [v, n] : values) EXPECT_EQ(dec.decode_direct(n), v);
}

TEST(RangeCoderTest, TreeRoundTrip) {
  Bytes buf;
  RangeEncoder enc(buf);
  std::vector<Prob> enc_tree(256, kProbInit);
  Rng rng(55);
  std::vector<std::uint32_t> symbols(2000);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.next_below(256));
  for (auto s : symbols) enc.encode_tree(enc_tree.data(), s, 8);
  enc.flush();
  RangeDecoder dec(as_view(buf));
  std::vector<Prob> dec_tree(256, kProbInit);
  for (auto s : symbols) EXPECT_EQ(dec.decode_tree(dec_tree.data(), 8), s);
}

TEST(XzTest, DetectsPayloadCorruption) {
  const auto codec = make_xz(4);
  const Bytes data = testdata::text_like(50000, 11);
  Bytes packed = codec->compress(as_view(data));
  ASSERT_GT(packed.size(), 100u);
  packed[packed.size() / 2] ^= 0x01;
  EXPECT_THROW(codec->decompress(as_view(packed), data.size()), CorruptDataError);
}

TEST(XzTest, DetectsBadMagic) {
  const auto codec = make_xz(4);
  const Bytes data = testdata::text_like(1000, 12);
  Bytes packed = codec->compress(as_view(data));
  packed[0] = 'Z';
  EXPECT_THROW(codec->decompress(as_view(packed), data.size()), CorruptDataError);
}

TEST(DeltaTest, GradientBecomesLowEntropy) {
  // A byte gradient is incompressible for RLE but trivial after delta.
  Bytes ramp(10000);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<std::uint8_t>(i);
  const auto rle = make_rle();
  const auto delta_rle = Registry::instance().by_name("delta1+rle");
  ASSERT_NE(delta_rle, nullptr);
  const auto plain = rle->compress(as_view(ramp));
  const auto filtered = delta_rle->compress(as_view(ramp));
  EXPECT_LT(filtered.size() * 4, plain.size());
  EXPECT_EQ(delta_rle->decompress(as_view(filtered), ramp.size()), ramp);
}

TEST(RatioTest, LowEntropyCompresses) {
  // 4-symbol i.i.d. noise: ~2 bits/byte of entropy. Entropy coders and
  // strong LZ must get at least 2x; fast LZ-only codecs see little match
  // structure in i.i.d. symbols and only need to stay below 1x.
  const Bytes data = testdata::low_entropy(100000, 3);
  for (const char* name : {"lz4hc", "deflate", "lzma", "xz", "brotli", "zling",
                           "huff", "lzw-14"}) {
    const Compressor* c = Registry::instance().by_name(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_LT(c->compress(as_view(data)).size(), data.size() / 2) << name;
  }
  for (const char* name : {"lzf", "lzsse8"}) {
    const Compressor* c = Registry::instance().by_name(name);
    ASSERT_NE(c, nullptr) << name;
    EXPECT_LT(c->compress(as_view(data)).size(), data.size() * 7 / 10) << name;
  }
}

TEST(RatioTest, RandomDataDoesNotExplode) {
  const Bytes data = testdata::random_bytes(100000, 21);
  for (const auto& e : Registry::instance().all()) {
    const auto packed = e.codec->compress(as_view(data));
    // Worst-case expansion must stay modest (paper's ImageNet ratio ~1.0).
    // LZW is the known offender: 16-bit codes for <=2-byte strings can
    // approach 1.5x on incompressible input, exactly like classic compress.
    const std::size_t limit = e.family == "lzw" ? data.size() * 8 / 5
                                                : data.size() * 9 / 8 + 1024;
    EXPECT_LT(packed.size(), limit) << e.codec->name();
  }
}

TEST(RatioTest, HighRatioCodecsBeatFastCodecsOnText) {
  const Bytes data = testdata::text_like(200000, 31);
  const auto lzma = Registry::instance().by_name("lzma");
  const auto lzf = Registry::instance().by_name("lzf");
  const auto lzma_size = lzma->compress(as_view(data)).size();
  const auto lzf_size = lzf->compress(as_view(data)).size();
  EXPECT_LT(lzma_size, lzf_size);
}

TEST(SpeedOrderingTest, ByteLzDecodesFasterThanRangeCoder) {
  // The core premise of Figure 7: lzsse8/lz4-class decoders are orders of
  // magnitude faster than lzma-class. Assert a conservative 5x gap.
  if (testsupport::kUnderSanitizer) {
    GTEST_SKIP() << "sanitizer instrumentation distorts relative decode speed";
  }
  const Bytes data = testdata::text_like(1 << 20, 41);
  const auto fast = Registry::instance().by_name("lzsse8");
  const auto slow = Registry::instance().by_name("lzma");
  const auto fast_packed = fast->compress(as_view(data));
  const auto slow_packed = slow->compress(as_view(data));
  double fast_time = 0, slow_time = 0;
  (void)fast->decompress(as_view(fast_packed), data.size());  // warmup
  {
    WallTimer t;
    for (int i = 0; i < 3; ++i) (void)fast->decompress(as_view(fast_packed), data.size());
    fast_time = t.elapsed_sec();
  }
  {
    WallTimer t;
    for (int i = 0; i < 3; ++i) (void)slow->decompress(as_view(slow_packed), data.size());
    slow_time = t.elapsed_sec();
  }
  EXPECT_GT(slow_time, fast_time * 5);
}

TEST(Lz4Test, RejectsBadDistance) {
  // Hand-craft a stream whose match references data before the start.
  Bytes bad;
  bad.push_back(0x14);  // 1 literal, match len 4+4
  bad.push_back('A');
  bad.push_back(0x09);  // offset 9 > output size 1
  bad.push_back(0x00);
  const auto codec = make_lz4();
  EXPECT_THROW(codec->decompress(as_view(bad), 100), CorruptDataError);
}

TEST(Lz4Test, HigherLevelsNeverWorseThanFast) {
  const Bytes data = testdata::text_like(150000, 61);
  const auto fast = make_lz4fast(16)->compress(as_view(data)).size();
  const auto hc = make_lz4hc(9)->compress(as_view(data)).size();
  EXPECT_LE(hc, fast);
}

TEST(LzwTest, DictionaryResetPathRoundTrips) {
  // Small max_bits forces many CLEAR/reset cycles.
  const auto codec = make_lzw(10);
  const Bytes data = testdata::text_like(300000, 71);
  const auto packed = codec->compress(as_view(data));
  EXPECT_EQ(codec->decompress(as_view(packed), data.size()), data);
}

TEST(LzwTest, KwKwKCase) {
  // "ababab..." triggers the code==next_code special case immediately.
  Bytes data;
  for (int i = 0; i < 1000; ++i) data.push_back(i % 2 == 0 ? 'a' : 'b');
  const auto codec = make_lzw(12);
  const auto packed = codec->compress(as_view(data));
  EXPECT_EQ(codec->decompress(as_view(packed), data.size()), data);
}

TEST(PipelineTest, SizeHeaderMismatchThrows) {
  const auto zling = Registry::instance().by_name("zling");
  const Bytes data = testdata::text_like(5000, 81);
  const auto packed = zling->compress(as_view(data));
  EXPECT_THROW(zling->decompress(as_view(packed), data.size() + 1), CorruptDataError);
}

}  // namespace
}  // namespace fanstore::compress
