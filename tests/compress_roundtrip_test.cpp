// Property tests: every registered codec configuration must round-trip every
// standard byte pattern, and must reject truncated input rather than crash
// or return wrong bytes silently.
#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "compress/registry.hpp"
#include "tests/test_data.hpp"

namespace fanstore::compress {
namespace {

using testdata::Pattern;

class RoundTripTest : public ::testing::TestWithParam<CompressorId> {};

TEST_P(RoundTripTest, AllPatternsRoundTrip) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  for (const Pattern& p : testdata::standard_patterns()) {
    SCOPED_TRACE(codec->name() + " on " + p.name);
    const Bytes packed = codec->compress(as_view(p.data));
    const Bytes restored = codec->decompress(as_view(packed), p.data.size());
    ASSERT_EQ(restored, p.data);
  }
}

TEST_P(RoundTripTest, TruncatedInputThrowsOrFailsCleanly) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes data = testdata::text_like(20000, 77);
  const Bytes packed = codec->compress(as_view(data));
  if (packed.size() < 16) GTEST_SKIP() << "stream too small to truncate meaningfully";
  const ByteView cut = as_view(packed).subspan(0, packed.size() / 3);
  // Range-coded streams zero-fill past the end, so either an exception or a
  // wrong-but-bounded result is acceptable; silent success with correct
  // output would mean the tail carried no information, which is impossible
  // for this input size.
  try {
    const Bytes restored = codec->decompress(cut, data.size());
    EXPECT_NE(restored, data) << codec->name()
                              << ": truncated stream decoded to the original";
  } catch (const CorruptDataError&) {
    SUCCEED();
  }
}

TEST_P(RoundTripTest, DecompressIsDeterministic) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes data = testdata::runs_and_noise(30000, 99);
  const Bytes packed = codec->compress(as_view(data));
  const Bytes a = codec->decompress(as_view(packed), data.size());
  const Bytes b = codec->decompress(as_view(packed), data.size());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, data);
}

std::vector<CompressorId> all_ids() {
  std::vector<CompressorId> ids;
  for (const auto& e : Registry::instance().all()) ids.push_back(e.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RoundTripTest, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<CompressorId>& info) {
      std::string n = Registry::instance().by_id(info.param)->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_id" + std::to_string(info.param);
    });

TEST(RegistryTest, HasAtLeast180Configurations) {
  EXPECT_GE(Registry::instance().all().size(), 180u);
}

TEST(RegistryTest, IdsAreUniqueAndResolvable) {
  std::set<CompressorId> seen;
  for (const auto& e : Registry::instance().all()) {
    EXPECT_TRUE(seen.insert(e.id).second) << "duplicate id " << e.id;
    EXPECT_EQ(Registry::instance().by_id(e.id), e.codec);
    EXPECT_EQ(Registry::instance().id_of(*e.codec), e.id);
  }
}

TEST(RegistryTest, NamesAreUniqueAndResolvable) {
  std::set<std::string> names;
  for (const auto& e : Registry::instance().all()) {
    EXPECT_TRUE(names.insert(e.codec->name()).second)
        << "duplicate name " << e.codec->name();
    EXPECT_EQ(Registry::instance().by_name(e.codec->name()), e.codec);
  }
}

TEST(RegistryTest, PaperAliasesResolve) {
  for (const char* alias : {"lzsse8", "lz4hc", "lzma", "xz", "brotli", "zling",
                            "lzf", "lz4fast", "deflate", "huff"}) {
    EXPECT_NE(Registry::instance().by_name(alias), nullptr) << alias;
  }
}

TEST(RegistryTest, UnknownLookupsFail) {
  EXPECT_EQ(Registry::instance().by_id(65535), nullptr);
  EXPECT_EQ(Registry::instance().by_name("no-such-codec"), nullptr);
  EXPECT_THROW(Registry::instance().id_by_name("no-such-codec"), std::invalid_argument);
}

}  // namespace
}  // namespace fanstore::compress
