#include "core/instance.hpp"

#include <cstdio>
#include <stdexcept>

#include "fault/injector.hpp"
#include "ipc/server.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace fanstore::core {

Instance::Instance(mpi::Comm comm, Options options)
    : comm_(comm), options_(std::move(options)) {
  if (options_.local_fs != nullptr) {
    backend_ = std::make_unique<VfsBackend>(options_.local_fs, options_.backend_root);
  } else {
    backend_ = std::make_unique<RamBackend>();
  }
  if (options_.fault != nullptr) {
    // Flaky-storage faults apply to every read of this rank's backend —
    // local opens, daemon-served fetches, and peers' direct reads alike.
    backend_ = std::make_unique<FaultInjectedBackend>(
        std::move(backend_), comm_.rank(), options_.fault);
    // Straggler scripts slow this rank's *view* of the hardware; the
    // models are copied per-Instance so other ranks keep full speed.
    options_.fs.cost.read_path = options_.fs.cost.read_path.scaled(
        options_.fault->storage_multiplier(comm_.rank()));
    options_.fs.cost.network = options_.fs.cost.network.scaled(
        options_.fault->network_multiplier(comm_.rank()));
    // The spill tier rides this rank's local SSD: a storage straggler sees
    // slow spill I/O too.
    options_.fs.cost.spill_storage = options_.fs.cost.spill_storage.scaled(
        options_.fault->storage_multiplier(comm_.rank()));
  }
  options_.fs.cost.nodes = comm_.size();
  if (options_.peers != nullptr) {
    options_.peers->add(comm_.rank(), backend_.get());
    options_.fs.peers = options_.peers;
  }
  // One registry per rank, shared by the fs (and its cache) and the
  // daemon, so a single snapshot tells the rank's whole I/O story.
  if (options_.fs.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    options_.fs.metrics = owned_metrics_.get();
  }
  // The cluster node (when configured) must exist before the fs so the fs
  // can resolve metadata through it; replication_factor == 0 keeps the
  // classic no-cluster layout with a null resolver.
  if (options_.cluster.replication_factor > 0) {
    cluster::NodeOptions co;
    co.replication_factor = options_.cluster.replication_factor;
    co.vnodes = options_.cluster.vnodes;
    co.nshards = options_.cluster.nshards;
    co.rpc_timeout_ms = options_.cluster.rpc_timeout_ms;
    co.metrics = options_.fs.metrics;
    co.fault = options_.fault;
    cluster_ = std::make_unique<cluster::ClusterNode>(comm_, &meta_, co);
    if (options_.cluster.member) {
      std::vector<int> members = options_.cluster.initial_members;
      if (members.empty()) {
        for (int r = 0; r < comm_.size(); ++r) members.push_back(r);
      }
      cluster_->bootstrap(members);
    }
    options_.fs.meta_resolver = cluster_.get();
  }
  fs_ = std::make_unique<FanStoreFs>(comm_, &meta_, backend_.get(), options_.fs);
  daemon_ = std::make_unique<Daemon>(comm_, &meta_, backend_.get(),
                                     options_.fs.metrics, options_.fault,
                                     options_.fs.clock);
}

Instance::~Instance() { stop(); }

void Instance::load_partition_blob(ByteView blob, std::uint32_t partition_id,
                                   int owner_rank) {
  const auto records = format::scan_partition(blob);
  const auto owner =
      static_cast<std::uint32_t>(owner_rank < 0 ? comm_.rank() : owner_rank);
  for (const auto& rec : records) {
    Blob b;
    b.compressor = rec.compressor;
    b.data.assign(rec.data.begin(), rec.data.end());
    backend_->put(std::string(rec.path), std::move(b));

    format::FileStat stat = rec.stat;
    stat.owner_rank = owner;
    stat.partition_id = partition_id;
    meta_.insert(std::string(rec.path), stat);
  }
}

void Instance::load_from_shared(posixfs::Vfs& shared,
                                const std::vector<std::string>& partition_paths,
                                const std::vector<std::string>& broadcast_paths,
                                const simnet::StorageModel* shared_cost) {
  const int nranks = comm_.size();
  auto charge_partition = [&](std::size_t bytes) {
    if (shared_cost != nullptr && options_.fs.clock != nullptr) {
      options_.fs.clock->advance_sec(shared_cost->file_read_time(bytes));
    }
  };
  for (std::size_t p = 0; p < partition_paths.size(); ++p) {
    if (static_cast<int>(p % static_cast<std::size_t>(nranks)) != comm_.rank()) {
      continue;
    }
    auto blob = posixfs::read_file(shared, partition_paths[p]);
    if (!blob) {
      throw std::runtime_error("instance: cannot read partition " + partition_paths[p]);
    }
    charge_partition(blob->size());
    load_partition_blob(as_view(*blob), static_cast<std::uint32_t>(p));
    own_partitions_.push_back(std::move(*blob));
  }
  // Broadcast partitions: every rank loads them, owner = self, so access
  // never leaves the node (used for validation datasets).
  for (std::size_t b = 0; b < broadcast_paths.size(); ++b) {
    auto blob = posixfs::read_file(shared, broadcast_paths[b]);
    if (!blob) {
      throw std::runtime_error("instance: cannot read broadcast partition " +
                               broadcast_paths[b]);
    }
    charge_partition(blob->size());
    load_partition_blob(as_view(*blob),
                        static_cast<std::uint32_t>(partition_paths.size() + b));
  }
}

void Instance::replicate_ring(int rounds) {
  const int nranks = comm_.size();
  if (nranks == 1 || rounds <= 0) return;
  // Forward own partitions to the next rank; what arrives from the
  // previous rank is stored locally and forwarded onward on later rounds.
  std::vector<Bytes> outbound = own_partitions_;
  for (int round = 0; round < rounds; ++round) {
    const int next = (comm_.rank() + 1) % nranks;
    Bytes packed;
    append_le<std::uint32_t>(packed, static_cast<std::uint32_t>(outbound.size()));
    for (const Bytes& p : outbound) {
      append_le<std::uint64_t>(packed, p.size());
      packed.insert(packed.end(), p.begin(), p.end());
    }
    comm_.send(next, kTagRingCopy, std::move(packed));
    const mpi::Message msg = comm_.recv(mpi::kAnySource, kTagRingCopy);

    std::vector<Bytes> inbound;
    if (msg.payload.size() < 4) {
      throw std::runtime_error("instance: malformed ring-copy message");
    }
    const std::uint32_t count = load_le<std::uint32_t>(msg.payload.data());
    std::size_t pos = 4;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (pos + 8 > msg.payload.size()) {
        throw std::runtime_error("instance: truncated ring-copy message");
      }
      const std::uint64_t len = load_le<std::uint64_t>(msg.payload.data() + pos);
      pos += 8;
      if (pos + len > msg.payload.size()) {
        throw std::runtime_error("instance: truncated ring-copy partition");
      }
      inbound.emplace_back(msg.payload.begin() + static_cast<std::ptrdiff_t>(pos),
                           msg.payload.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
    // Replicas keep their original owner in *metadata* (which is exchanged
    // globally), but land in the local backend so reads hit locally.
    for (const Bytes& p : inbound) {
      const auto records = format::scan_partition(as_view(p));
      for (const auto& rec : records) {
        Blob b;
        b.compressor = rec.compressor;
        b.data.assign(rec.data.begin(), rec.data.end());
        backend_->put(std::string(rec.path), std::move(b));
      }
    }
    outbound = std::move(inbound);
    comm_.barrier();
  }
}

void Instance::exchange_metadata() {
  // Sharded mode: each member pushes each shard only to its owners —
  // point-to-point, no collective, so spare (non-member) ranks need not
  // participate. The compatibility mode (rf >= nranks) and classic builds
  // take the identical allgather path below, byte for byte.
  if (cluster_ != nullptr && cluster_->sharded()) {
    cluster_->exchange_initial();
    return;
  }
  const auto blobs = comm_.allgather(as_view(meta_.serialize()));
  for (int r = 0; r < comm_.size(); ++r) {
    if (r == comm_.rank()) continue;
    meta_.merge_serialized(as_view(blobs[static_cast<std::size_t>(r)]));
  }
}

std::vector<std::string> Instance::dataset_paths() {
  if (cluster_ != nullptr && cluster_->sharded()) {
    return cluster_->enumerate_paths();
  }
  return meta_.all_paths();
}

std::string Instance::stats_report() const {
  const auto io = fs_->stats();
  const auto cache = fs_->cache().stats();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "rank %d: opens=%llu hits=%llu local=%llu remote=%llu (direct=%llu) "
      "failover=%llu | "
      "read=%.1fMB wire=%.1fMB written=%.1fMB | cache %.1f/%.1fMB evict=%llu | "
      "backend %zu objs %.1fMB | daemon served=%llu meta_fwd=%llu",
      comm_.rank(), static_cast<unsigned long long>(io.opens),
      static_cast<unsigned long long>(io.cache_hits),
      static_cast<unsigned long long>(io.local_misses),
      static_cast<unsigned long long>(io.remote_fetches),
      static_cast<unsigned long long>(io.direct_fetches),
      static_cast<unsigned long long>(io.failovers),
      static_cast<double>(io.bytes_read) / 1e6,
      static_cast<double>(io.remote_bytes) / 1e6,
      static_cast<double>(io.bytes_written) / 1e6,
      static_cast<double>(fs_->cache().bytes_used()) / 1e6,
      static_cast<double>(fs_->cache().capacity()) / 1e6,
      static_cast<unsigned long long>(cache.evictions), backend_->object_count(),
      static_cast<double>(backend_->bytes_used()) / 1e6,
      static_cast<unsigned long long>(daemon_->fetches_served()),
      static_cast<unsigned long long>(daemon_->meta_forwards_received()));
  std::string out = buf;
  if (fs_->tiers().tiers_enabled()) {
    char tier_buf[128];
    std::snprintf(tier_buf, sizeof(tier_buf),
                  " | tiers comp=%.1fMB spill=%.1fMB",
                  static_cast<double>(fs_->tiers().compressed_bytes_used()) / 1e6,
                  static_cast<double>(fs_->tiers().spill_bytes_used()) / 1e6);
    out += tier_buf;
  }
  return out;
}

std::string Instance::metrics_dump(bool json) const {
  return obs::metrics_dump(fs_->metrics(), json);
}

void Instance::start_daemon() {
  daemon_->start();
  if (cluster_ != nullptr) cluster_->start();
  if (!options_.serve_endpoints.empty() && server_ == nullptr) {
    std::vector<ipc::Endpoint> eps;
    eps.reserve(options_.serve_endpoints.size());
    for (const auto& spec : options_.serve_endpoints) {
      auto ep = ipc::Endpoint::parse(spec);
      if (!ep.has_value()) {
        throw std::invalid_argument("instance: bad serve endpoint: " + spec);
      }
      eps.push_back(std::move(*ep));
    }
    ipc::ServerOptions so;
    so.backlog = options_.serve_backlog;
    // Share the rank's registry: one snapshot covers fs + cache + daemon
    // + socket front door ("ipc.*").
    so.metrics = options_.fs.metrics;
    server_ = std::make_unique<ipc::Server>(std::move(eps), *fs_, so);
    server_->start();
  }
}

void Instance::stop() {
  // Deregister from the peer table before tearing anything down so no
  // other rank's direct fetch can race our backend's destruction.
  if (options_.peers != nullptr) options_.peers->remove(comm_.rank());
  // The socket front door serves through fs_, so it must drain before the
  // MPI daemon (and everything below it) goes away.
  if (server_) {
    server_->stop();
    server_.reset();
  }
  // The fs resolves metadata through the cluster node, so it must stop
  // answering only after the front doors above are gone; the data daemon
  // goes last (cluster teardown never fetches data).
  if (cluster_) cluster_->stop();
  if (daemon_) daemon_->stop();
}

}  // namespace fanstore::core
