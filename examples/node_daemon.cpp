// Node-daemon deployment shape (§V-A): one FanStore daemon per node serves
// intercepted training processes. This example runs both halves — the
// daemon (FanStore instance + event-driven socket server, DESIGN.md §11)
// and a "training process" (UdsClientVfs consumer) — and demonstrates
// cross-boundary reads, enumeration, and the prefetch pattern.
//
// Run: ./node_daemon [--files=32] [--compressor=zstd] [--socket=/tmp/fanstore.sock]
#include <cstdio>

#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "ipc/server.hpp"
#include "ipc/uds_client.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace fanstore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t nfiles = static_cast<std::size_t>(args.get_int("files", 32));
  const std::string codec = args.get("compressor", "zstd");
  const std::string socket =
      args.get("socket", "/tmp/fanstore_node_daemon_demo.sock");

  // Prepare a dataset and load it into a single-node FanStore instance.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs src;
    dlsim::materialize_dataset(src, "data", dlsim::DatasetKind::kAstroFits, nfiles);
    prep::PrepOptions opt;
    opt.num_partitions = 1;
    opt.compressor = codec;
    const auto manifest = prep::prepare_dataset(src, "data", shared, "packed", opt);
    std::printf("dataset packed with %s: ratio %.2fx\n", codec.c_str(),
                manifest.ratio());
  }

  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance::Options iopt;
    iopt.serve_endpoints = {"unix:" + socket};
    core::Instance inst(comm, iopt);
    const auto manifest = prep::load_manifest(shared, "packed");
    inst.load_from_shared(shared, manifest.partition_paths());
    inst.exchange_metadata();

    // --- Daemon half: the event-driven server (epoll shards + blocker
    // pool, DESIGN.md §11) starts with the daemon and serves the
    // FanStore namespace on every Options::serve_endpoints spec.
    inst.start_daemon();
    ipc::Server& server = *inst.ipc_server();
    std::printf("daemon serving %zu files at %s\n", inst.metadata().file_count(),
                server.endpoints().front().to_string().c_str());

    // --- Training-process half: an out-of-namespace consumer ---
    ipc::UdsClientVfs client(socket);
    if (!client.connect()) {
      std::fprintf(stderr, "client could not connect\n");
      return;
    }
    // Enumerate through the socket (readdir/stat round trips).
    const auto files = prep::list_files_recursive(client, "data");
    std::printf("client enumerated %zu files over the socket\n", files.size());

    // Read everything, timing the socket path.
    WallTimer t;
    std::size_t bytes = 0;
    for (const auto& f : files) {
      const auto data = posixfs::read_file(client, f);
      if (!data) {
        std::fprintf(stderr, "read failed for %s\n", f.c_str());
        return;
      }
      bytes += data->size();
    }
    std::printf("client read %.1f MB in %.0f ms (%.0f MB/s through the socket,\n"
                "decompression on the daemon side; %llu requests served)\n",
                bytes / 1e6, t.elapsed_sec() * 1e3, bytes / 1e6 / t.elapsed_sec(),
                static_cast<unsigned long long>(server.requests_served()));
    inst.stop();
  });
  std::printf("node_daemon demo complete\n");
  return 0;
}
