// Device and interconnect cost models calibrated to the paper's platforms
// (§VII-A): GTX (FDR InfiniBand, node-local SATA SSD), V100 (FDR IB, RAM
// disk, POWER9) and CPU (Omni-Path fat tree, 512 dual-Xeon nodes), plus the
// four POSIX storage solutions of Table III.
#pragma once

#include <string>

namespace fanstore::simnet {

/// Point-to-point interconnect: latency + bandwidth + a mild fat-tree
/// contention factor that grows with node count.
struct NetworkModel {
  std::string name;
  double latency_s = 1.5e-6;       // sub-microsecond MPI latency (paper §VII-A)
  double bandwidth_bps = 56e9 / 8;  // bytes/sec
  double contention_alpha = 0.03;   // per-log2(nodes) bandwidth derating

  /// Effective bandwidth once `nodes` share the fabric.
  double effective_bandwidth(int nodes) const;

  /// Time to move `bytes` between two ranks with `nodes` active.
  double transfer_time(std::size_t bytes, int nodes) const;

  /// A straggler's view of the same fabric (fault::StragglerRule): `mult`x
  /// the latency, 1/`mult` the bandwidth. mult = 1 is the identity.
  NetworkModel scaled(double mult) const {
    NetworkModel m = *this;
    m.latency_s *= mult;
    m.bandwidth_bps /= mult;
    return m;
  }
};

/// A POSIX storage path: fixed per-operation cost plus streaming bandwidth.
/// file_read_time() produces exactly the Table III benchmark quantity.
struct StorageModel {
  std::string name;
  double per_op_s = 25e-6;        // open+read+close overhead per file
  double metadata_op_s = 2e-6;    // stat()/readdir() cost
  double bandwidth_bps = 5.5e9;   // sequential read bandwidth

  double file_read_time(std::size_t bytes) const {
    return per_op_s + static_cast<double>(bytes) / bandwidth_bps;
  }
  double file_write_time(std::size_t bytes) const {
    return per_op_s + static_cast<double>(bytes) / bandwidth_bps;
  }

  /// A slow node's view of the same device (fault::StragglerRule): every
  /// fixed cost `mult`x, bandwidth 1/`mult`. mult = 1 is the identity.
  StorageModel scaled(double mult) const {
    StorageModel m = *this;
    m.per_op_s *= mult;
    m.metadata_op_s *= mult;
    m.bandwidth_bps /= mult;
    return m;
  }
};

/// The shared Lustre metadata server: a single service queue all clients
/// hammer concurrently. Modelled as M/D/1: response = s * (1 + rho/(2(1-rho)))
/// and effectively unbounded when utilisation saturates — this is the
/// mechanism behind "ran for one hour without starting training" at 512
/// nodes (§VII-F).
struct MetadataServerModel {
  double service_time_s = 10e-6;       // per metadata op at the MDS (~100k op/s)
  double saturation_penalty_s = 30.0;  // response once the queue diverges

  /// Mean response time when clients offer `arrival_rate` ops/sec total.
  double response_time(double arrival_rate) const;

  /// Sustainable throughput ceiling (ops/sec) — offered load above this
  /// queues without bound. The argument is reserved for load-dependent
  /// refinements and currently unused.
  double capacity_ops(double offered_rate = 0) const;
};

// --- Presets -------------------------------------------------------------

/// Node-local burst buffers & POSIX solutions (Table III calibration).
StorageModel ssd_storage();       // raw node-local SSD
StorageModel ram_disk_storage();  // V100's 256 GB RAM disk
StorageModel fuse_ssd_storage();  // FUSE overhead on top of the same SSD
StorageModel lustre_storage();    // shared-FS client path (data plane)

/// FanStore's own read path: interception dispatch + RAM cache copy.
/// (Slightly below raw SSD per Table III: 71-99% of raw device speed.)
StorageModel fanstore_storage();

/// Owner-daemon service cost of one remote read: request decode, backend
/// lookup, reply assembly on the *owner* rank — the measured gap between
/// FanStore's local and remote reads beyond raw wire time (Tables III/VI
/// show remote reads at a constant offset below local even on saturated
/// fabrics). Charged per fetch when CostConfig::charge_remote_service is
/// on; tier economics (DESIGN.md §12) rely on it to rank peer RAM below
/// the node-local spill tiers.
StorageModel fanstore_remote_service();

NetworkModel fdr_infiniband();  // GTX & V100 clusters
NetworkModel omnipath();        // CPU cluster (100 Gb/s fat tree)

/// Whole-cluster description used by benches and the trainer.
struct ClusterSpec {
  std::string name;
  int max_nodes = 4;
  int procs_per_node = 4;            // GPUs (GTX/V100) or CPU sockets
  double local_capacity_bytes = 0;   // burst-buffer size per node
  StorageModel local_storage;
  NetworkModel network;
  MetadataServerModel shared_fs_mds;
  StorageModel shared_fs = lustre_storage();
};

ClusterSpec gtx_cluster();   // 16 nodes x 4x GTX-1080Ti, ~60 GB SSD
ClusterSpec v100_cluster();  // 4 nodes x 4x V100, ~256 GB RAM disk
ClusterSpec cpu_cluster();   // 512 nodes, dual Xeon 8160, ~144 GB SSD

/// FanStore's read path on a given cluster's hardware (Table VI
/// calibration): interception + cache-copy costs riding on that cluster's
/// local device. GTX: SATA SSD; V100: RAM disk behind a POWER9 (higher
/// per-op software cost); CPU: SSD with Xeon-class per-op cost.
StorageModel fanstore_read_path(const ClusterSpec& cluster);

}  // namespace fanstore::simnet
