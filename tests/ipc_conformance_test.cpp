// Socket-level conformance suite for the daemon front door, run against
// all three server flavours (legacy thread-per-connection UDS, event-driven
// over UDS, event-driven over TCP loopback): hostile and half-broken
// clients — truncated frames, oversized declared lengths, garbage headers,
// byte-at-a-time dribbling, silent connections — must produce a clean
// error reply or a closed connection, never a hang, an fd leak, or a
// crash, and the server must keep serving well-formed clients throughout.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "ipc/protocol.hpp"
#include "ipc/server.hpp"
#include "ipc/transport.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/sanitizer_env.hpp"
#include "tests/test_data.hpp"
#include "util/bytes.hpp"

namespace fanstore::ipc {
namespace {

constexpr int scale_ms(int ms) {
  return testsupport::kUnderSanitizer ? ms * 5 : ms;
}

std::string unique_socket_path(const char* tag) {
  return "/tmp/fanstore_conf_" + std::to_string(getpid()) + "_" + tag + ".sock";
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

// Raw client socket with send/recv timeouts so a misbehaving *server*
// fails the test instead of hanging it.
int raw_connect(const std::string& spec) {
  const auto ep = Endpoint::parse(spec);
  if (!ep.has_value()) return -1;
  const int fd = transport_connect(*ep);
  if (fd < 0) return fd;
  timeval tv{};
  tv.tv_sec = scale_ms(5000) / 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return fd;
}

bool send_all(int fd, ByteView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

enum class Flavor { kLegacy, kEventUds, kEventTcp };

const char* flavor_name(Flavor f) {
  switch (f) {
    case Flavor::kLegacy: return "legacy";
    case Flavor::kEventUds: return "event_uds";
    case Flavor::kEventTcp: return "event_tcp";
  }
  return "?";
}

// One running server of the given flavour over a MemVfs with known files.
class Harness {
 public:
  explicit Harness(Flavor flavor, ServerOptions options = {}) : flavor_(flavor) {
    posixfs::write_file(fs_, "ds/small", as_view(small_));
    posixfs::write_file(fs_, "ds/big", as_view(big_));
    switch (flavor) {
      case Flavor::kLegacy: {
        spec_ = unique_socket_path("legacy");
        legacy_ = std::make_unique<UdsServer>(spec_, fs_);
        legacy_->start();
        break;
      }
      case Flavor::kEventUds:
      case Flavor::kEventTcp: {
        // Small fixed thread counts: the point of the event server is that
        // client count is independent of thread count.
        if (options.shards == 0) options.shards = 2;
        if (options.blocker_threads == 0) options.blocker_threads = 2;
        const Endpoint ep = flavor == Flavor::kEventUds
                                ? Endpoint::uds(unique_socket_path("event"))
                                : Endpoint::tcp("127.0.0.1", 0);
        server_ = std::make_unique<Server>(std::vector<Endpoint>{ep}, fs_,
                                           options);
        server_->start();
        spec_ = server_->endpoints()[0].to_string();
        break;
      }
    }
  }

  const std::string& spec() const { return spec_; }
  const Bytes& small() const { return small_; }
  const Bytes& big() const { return big_; }
  Server* event_server() { return server_.get(); }

  void stop() {
    if (legacy_) legacy_->stop();
    if (server_) server_->stop();
  }

  // The canary: a fresh well-formed client still gets correct bytes.
  void expect_still_serving() {
    UdsClientVfs client(spec_);
    const auto got = posixfs::read_file(client, "ds/small");
    ASSERT_TRUE(got.has_value()) << flavor_name(flavor_) << " stopped serving";
    EXPECT_EQ(*got, small_);
  }

 private:
  Flavor flavor_;
  posixfs::MemVfs fs_;
  Bytes small_ = testdata::random_bytes(512, 7);
  Bytes big_ = testdata::random_bytes(256 << 10, 8);
  std::unique_ptr<UdsServer> legacy_;
  std::unique_ptr<Server> server_;
  std::string spec_;
};

class IpcConformanceTest : public ::testing::TestWithParam<Flavor> {};

INSTANTIATE_TEST_SUITE_P(AllServers, IpcConformanceTest,
                         ::testing::Values(Flavor::kLegacy, Flavor::kEventUds,
                                           Flavor::kEventTcp),
                         [](const auto& info) {
                           return flavor_name(info.param);
                         });

TEST_P(IpcConformanceTest, ServesGetStatListAndNotFound) {
  Harness h(GetParam());
  UdsClientVfs client(h.spec());
  EXPECT_EQ(*posixfs::read_file(client, "ds/small"), h.small());
  EXPECT_EQ(*posixfs::read_file(client, "ds/big"), h.big());

  format::FileStat st;
  ASSERT_EQ(client.stat("ds/big", &st), 0);
  EXPECT_EQ(st.size, h.big().size());
  EXPECT_EQ(client.stat("ds/absent", &st), -ENOENT);
  EXPECT_EQ(client.open("ds/absent", posixfs::OpenMode::kRead), -ENOENT);

  const int dh = client.opendir("ds");
  ASSERT_GE(dh, 0);
  int entries = 0;
  while (client.readdir(dh).has_value()) ++entries;
  EXPECT_EQ(client.closedir(dh), 0);
  EXPECT_EQ(entries, 2);
  h.stop();
}

TEST_P(IpcConformanceTest, TruncatedFrameThenCloseIsHarmless) {
  Harness h(GetParam());
  const int fd = raw_connect(h.spec());
  ASSERT_GE(fd, 0);
  // Declare 100 bytes, deliver 10, vanish.
  Bytes partial;
  append_le<std::uint32_t>(partial, 100);
  for (int i = 0; i < 10; ++i) partial.push_back(0x41);
  ASSERT_TRUE(send_all(fd, as_view(partial)));
  ::close(fd);
  h.expect_still_serving();
  h.stop();
}

TEST_P(IpcConformanceTest, OversizedDeclaredLengthGetsErrorOrClose) {
  Harness h(GetParam());
  const int fd = raw_connect(h.spec());
  ASSERT_GE(fd, 0);
  // 300 MiB declared: over the event server's max_request_bytes and over
  // the legacy read_frame sanity bound. Neither may allocate it or wait
  // for it: the reply is a clean error frame or an immediate close.
  Bytes header;
  append_le<std::uint32_t>(header, 300u << 20);
  ASSERT_TRUE(send_all(fd, as_view(header)));
  const auto reply = read_frame(fd);  // SO_RCVTIMEO turns a hang into failure
  if (reply.has_value()) {
    const auto decoded = decode_get_reply(as_view(*reply));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->status, Status::kError);
  }
  ::close(fd);
  h.expect_still_serving();
  h.stop();
}

TEST_P(IpcConformanceTest, GarbageHeaderGetsErrorReplyAndConnSurvives) {
  Harness h(GetParam());
  const int fd = raw_connect(h.spec());
  ASSERT_GE(fd, 0);
  // Well-framed garbage: unknown opcode 0x99 plus noise. The server must
  // answer with a kError reply and keep the connection usable.
  Bytes garbage;
  append_le<std::uint32_t>(garbage, 5);
  garbage.push_back(0x99);
  for (int i = 0; i < 4; ++i) garbage.push_back(0xEE);
  ASSERT_TRUE(send_all(fd, as_view(garbage)));
  const auto err = read_frame(fd);
  ASSERT_TRUE(err.has_value());
  const auto decoded = decode_get_reply(as_view(*err));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kError);

  ASSERT_TRUE(write_frame(fd, as_view(encode_request(Op::kGet, "ds/small"))));
  const auto ok = read_frame(fd);
  ASSERT_TRUE(ok.has_value());
  const auto got = decode_get_reply(as_view(*ok));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, Status::kOk);
  EXPECT_EQ(got->data, h.small());
  ::close(fd);
  h.stop();
}

TEST_P(IpcConformanceTest, ByteAtATimeDribbleStillParses) {
  Harness h(GetParam());
  const int fd = raw_connect(h.spec());
  ASSERT_GE(fd, 0);
  const Bytes payload = encode_request(Op::kGet, "ds/small");
  Bytes wire;
  append_le<std::uint32_t>(wire, static_cast<std::uint32_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  for (const std::uint8_t b : wire) {
    ASSERT_TRUE(send_all(fd, ByteView(&b, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto reply = read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  const auto got = decode_get_reply(as_view(*reply));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, Status::kOk);
  EXPECT_EQ(got->data, h.small());
  ::close(fd);
  h.stop();
}

TEST_P(IpcConformanceTest, SilentClientNeverBlocksStop) {
  Harness h(GetParam());
  const int fd = raw_connect(h.spec());
  ASSERT_GE(fd, 0);
  h.expect_still_serving();
  h.stop();  // must return despite the silent connection
  char c;
  EXPECT_LE(::recv(fd, &c, 1, 0), 0);  // EOF or reset, never data
  ::close(fd);
}

TEST_P(IpcConformanceTest, NoFdLeakAcrossHostileChurn) {
  Harness h(GetParam());
  {
    // Warm up lazily-created fds (epoll/eventfd already exist; this covers
    // any per-connection lazy state) before taking the baseline.
    const int fd = raw_connect(h.spec());
    ASSERT_GE(fd, 0);
    ::close(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(scale_ms(50)));
  const std::size_t before = open_fd_count();
  for (int i = 0; i < 25; ++i) {
    const int fd = raw_connect(h.spec());
    ASSERT_GE(fd, 0);
    switch (i % 3) {
      case 0: {  // abort mid-frame
        Bytes partial;
        append_le<std::uint32_t>(partial, 50);
        partial.push_back(0x01);
        send_all(fd, as_view(partial));
        break;
      }
      case 1:  // full round trip, then vanish
        write_frame(fd, as_view(encode_request(Op::kGet, "ds/small")));
        read_frame(fd);
        break;
      case 2:  // connect and say nothing
        break;
    }
    ::close(fd);
  }
  // Give the server time to reap every closed connection.
  for (int spin = 0; spin < 100 && open_fd_count() > before; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(scale_ms(10)));
  }
  EXPECT_LE(open_fd_count(), before);
  h.expect_still_serving();
  h.stop();
}

// --- Event-server-only behaviour -------------------------------------------

TEST(IpcEventServerTest, EphemeralTcpPortIsResolved) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "x", as_view(Bytes{1, 2, 3}));
  ServerOptions opt;
  opt.shards = 1;
  opt.blocker_threads = 1;
  Server server({Endpoint::tcp("127.0.0.1", 0)}, fs, opt);
  server.start();
  ASSERT_EQ(server.endpoints().size(), 1u);
  EXPECT_NE(server.endpoints()[0].port, 0);
  UdsClientVfs client(server.endpoints()[0].to_string());
  EXPECT_EQ(*posixfs::read_file(client, "x"), (Bytes{1, 2, 3}));
  server.stop();
}

TEST(IpcEventServerTest, IdleTimeoutClosesSilentConnection) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "x", as_view(Bytes{9}));
  ServerOptions opt;
  opt.shards = 1;
  opt.blocker_threads = 1;
  opt.idle_timeout_ms = scale_ms(60);
  Server server({Endpoint::uds(unique_socket_path("idle"))}, fs, opt);
  server.start();
  const int fd = raw_connect(server.endpoints()[0].to_string());
  ASSERT_GE(fd, 0);
  char c;
  // SO_RCVTIMEO is generous; the idle sweep closes us long before it.
  EXPECT_EQ(::recv(fd, &c, 1, 0), 0);  // clean EOF from the server
  ::close(fd);
  server.stop();
}

TEST(IpcEventServerTest, ServesOnUdsAndTcpSimultaneously) {
  posixfs::MemVfs fs;
  const Bytes data = testdata::random_bytes(4096, 3);
  posixfs::write_file(fs, "both", as_view(data));
  ServerOptions opt;
  opt.shards = 2;
  opt.blocker_threads = 2;
  Server server({Endpoint::uds(unique_socket_path("dual")),
                 Endpoint::tcp("127.0.0.1", 0)},
                fs, opt);
  server.start();
  ASSERT_EQ(server.endpoints().size(), 2u);
  for (const auto& ep : server.endpoints()) {
    UdsClientVfs client(ep.to_string());
    EXPECT_EQ(*posixfs::read_file(client, "both"), data) << ep.to_string();
  }
  server.stop();
}

TEST(IpcEventServerTest, StartStopIsIdempotentAndRestartable) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "x", as_view(Bytes{4, 2}));
  ServerOptions opt;
  opt.shards = 1;
  opt.blocker_threads = 1;
  Server server({Endpoint::uds(unique_socket_path("restart"))}, fs, opt);
  server.start();
  server.start();  // no-op
  {
    UdsClientVfs client(server.endpoints()[0].to_string());
    EXPECT_TRUE(posixfs::read_file(client, "x").has_value());
  }
  server.stop();
  server.stop();  // no-op
  server.start();  // fresh lifecycle on the same endpoints
  {
    UdsClientVfs client(server.endpoints()[0].to_string());
    EXPECT_EQ(*posixfs::read_file(client, "x"), (Bytes{4, 2}));
  }
  server.stop();
}

TEST(IpcEndpointTest, ParseAndToStringRoundTrip) {
  const auto uds = Endpoint::parse("unix:/tmp/x.sock");
  ASSERT_TRUE(uds.has_value());
  EXPECT_EQ(uds->kind, Endpoint::Kind::kUds);
  EXPECT_EQ(uds->path, "/tmp/x.sock");
  EXPECT_EQ(uds->to_string(), "unix:/tmp/x.sock");

  const auto bare = Endpoint::parse("/tmp/y.sock");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->kind, Endpoint::Kind::kUds);

  const auto tcp = Endpoint::parse("tcp:127.0.0.1:7010");
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 7010);
  EXPECT_EQ(tcp->to_string(), "tcp:127.0.0.1:7010");

  EXPECT_FALSE(Endpoint::parse("tcp:127.0.0.1").has_value());
  EXPECT_FALSE(Endpoint::parse("tcp:host:notaport").has_value());
  EXPECT_FALSE(Endpoint::parse("tcp:host:70000").has_value());
  EXPECT_FALSE(Endpoint::parse("").has_value());
}

}  // namespace
}  // namespace fanstore::ipc
