// Failure-injection fuzzing: for every registered codec configuration,
// randomly corrupt compressed streams (bit flips, truncations, prefix
// garbage) and assert the decoder never crashes or over-allocates — it
// either throws CorruptDataError or returns (possibly wrong) bytes of the
// requested size. This is the robustness FanStore needs when a partition
// arrives damaged from the shared FS or the interconnect.
#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"

namespace fanstore::compress {
namespace {

class CorruptionFuzzTest : public ::testing::TestWithParam<CompressorId> {};

TEST_P(CorruptionFuzzTest, SurvivesRandomCorruption) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes original = testdata::runs_and_noise(30000, 1234);
  const Bytes packed = codec->compress(as_view(original));
  ASSERT_FALSE(packed.empty());

  Rng rng(GetParam() * 7919u + 13);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes mutated = packed;
    switch (trial % 3) {
      case 0: {  // random bit flips
        const int flips = 1 + static_cast<int>(rng.next_below(8));
        for (int f = 0; f < flips; ++f) {
          mutated[rng.next_below(mutated.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      }
      case 1: {  // truncation
        mutated.resize(rng.next_below(mutated.size()));
        break;
      }
      default: {  // byte overwrite runs
        const std::size_t start = rng.next_below(mutated.size());
        const std::size_t len =
            std::min<std::size_t>(mutated.size() - start, 1 + rng.next_below(64));
        for (std::size_t i = 0; i < len; ++i) {
          mutated[start + i] = static_cast<std::uint8_t>(rng.next_u64());
        }
        break;
      }
    }
    try {
      const Bytes out = codec->decompress(as_view(mutated), original.size());
      // Wrong output is acceptable; wrong *size* is not.
      ASSERT_EQ(out.size(), original.size());
    } catch (const CorruptDataError&) {
      // Expected for most mutations.
    } catch (const std::exception& e) {
      FAIL() << codec->name() << ": unexpected exception type: " << e.what();
    }
  }
}

std::vector<CompressorId> all_ids() {
  std::vector<CompressorId> ids;
  for (const auto& e : Registry::instance().all()) ids.push_back(e.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CorruptionFuzzTest, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<CompressorId>& info) {
      std::string n = Registry::instance().by_id(info.param)->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_id" + std::to_string(info.param);
    });

}  // namespace
}  // namespace fanstore::compress
