// Table VI: FanStore read performance (Tpt_read files/s, Bdw_read MB/s) by
// file size on four nodes of each cluster. Runs the real four-rank FanStore
// stack with each cluster's calibrated cost model and measures the
// per-rank virtual clock.
#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "simnet/models.hpp"

using namespace fanstore;

namespace {

struct Perf {
  double tpt_files_per_s;
  double bdw_mb_per_s;
};

Perf measure(const simnet::ClusterSpec& cluster, std::size_t file_bytes, int nfiles) {
  // All data local (the Table VI benchmark reads node-local files).
  std::vector<double> per_rank(4, 0.0);
  mpi::run_world(4, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(cluster);
    opt.fs.cost.network = cluster.network;
    opt.fs.clock = &clock;
    core::Instance inst(comm, opt);
    std::vector<std::pair<std::string, Bytes>> files;
    for (int i = 0; i < nfiles; ++i) {
      files.emplace_back(
          "r" + std::to_string(comm.rank()) + "/f" + std::to_string(i),
          dlsim::generate_file_sized(dlsim::DatasetKind::kImagenetJpg,
                                     static_cast<std::uint64_t>(i), file_bytes));
    }
    inst.load_partition_blob(as_view(bench::make_partition(files, "store")), 0);
    inst.exchange_metadata();
    Bytes buf(1 << 20);
    clock.reset();
    for (const auto& [path, data] : files) {
      const int fd = inst.fs().open(path, posixfs::OpenMode::kRead);
      while (inst.fs().read(fd, MutByteView{buf.data(), buf.size()}) > 0) {
      }
      inst.fs().close(fd);
    }
    per_rank[static_cast<std::size_t>(comm.rank())] = clock.now_sec();
  });
  double total = 0;
  for (double t : per_rank) total += t;
  const double avg = total / 4.0;
  return Perf{nfiles / avg,
              static_cast<double>(nfiles) * static_cast<double>(file_bytes) / avg / 1e6};
}

}  // namespace

int main() {
  bench::section("Table VI: FanStore performance by file size, four nodes per cluster");
  bench::Table table({"Cluster", "file_size", "Tpt_read (file/s)", "Bdw_read (MB/s)"});

  struct Row {
    simnet::ClusterSpec cluster;
    std::string label;
    std::size_t bytes;
    int nfiles;
    const char* paper_tpt;
    const char* paper_bdw;
  };
  const std::vector<Row> rows = {
      {simnet::gtx_cluster(), "512 KB", 512 * 1024, 32, "9469", "4969"},
      {simnet::gtx_cluster(), "2 MB", 2 * 1024 * 1024, 16, "3158", "6663"},
      {simnet::v100_cluster(), "512 KB", 512 * 1024, 32, "8654", "4540"},
      {simnet::v100_cluster(), "2 MB", 2 * 1024 * 1024, 16, "5026", "10546"},
      {simnet::cpu_cluster(), "1 KB", 1024, 256, "29103", "30"},
  };
  for (const auto& r : rows) {
    const Perf p = measure(r.cluster, r.bytes, r.nfiles);
    table.row({r.cluster.name, r.label, bench::fmt_int(p.tpt_files_per_s),
               bench::fmt_int(p.bdw_mb_per_s)});
    table.row({"  (paper)", r.label, r.paper_tpt, r.paper_bdw});
  }
  table.print();
  std::printf("\nThese Tpt_read/Bdw_read values feed the compressor-selection\n"
              "algorithm (Equations 1-3); see bench_fig8_selection.\n");
  return 0;
}
