// Table III: read performance (files/sec) of POSIX-compliant solutions —
// FanStore, FUSE-over-SSD, raw SSD, Lustre — at 128 KB..8 MB file sizes.
//
// Two measurements are reported:
//  1. "modeled": the calibrated device models (what a 4-node GTX deployment
//     would see) — this is the Table III reproduction.
//  2. "in-proc": real wall-clock files/sec of the actual FanStoreFs stack
//     (interception dispatch + metadata lookup + cache) serving
//     uncompressed data from RAM on this host, demonstrating that the real
//     code path, not just the model, sustains high request rates.
#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "simnet/models.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

double real_fanstore_files_per_s(std::size_t file_bytes, int nfiles) {
  double result = 0;
  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance::Options iopt;
    iopt.fs.cache_bytes = file_bytes * nfiles + (16u << 20);  // steady-state hits
    core::Instance inst(comm, iopt);
    std::vector<std::pair<std::string, Bytes>> files;
    Rng rng(1);
    for (int i = 0; i < nfiles; ++i) {
      Bytes data(file_bytes);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
      files.emplace_back("d/f" + std::to_string(i), std::move(data));
    }
    inst.load_partition_blob(as_view(bench::make_partition(files, "store")), 0);
    inst.exchange_metadata();
    Bytes buf(1 << 20);
    // Warm pass (decompress-to-cache), then measure the read path.
    auto read_all = [&] {
      for (const auto& [path, data] : files) {
        const int fd = inst.fs().open(path, posixfs::OpenMode::kRead);
        while (inst.fs().read(fd, MutByteView{buf.data(), buf.size()}) > 0) {
        }
        inst.fs().close(fd);
      }
    };
    read_all();
    WallTimer t;
    read_all();
    result = nfiles / t.elapsed_sec();
  });
  return result;
}

}  // namespace

int main() {
  bench::section("Table III: POSIX-compliant solution read performance (files/sec)");

  const std::vector<std::pair<std::string, std::size_t>> sizes = {
      {"128 KB", 128 * 1024},
      {"512 KB", 512 * 1024},
      {"2 MB", 2 * 1024 * 1024},
      {"8 MB", 8 * 1024 * 1024},
  };
  const simnet::StorageModel fan = simnet::fanstore_storage();
  const simnet::StorageModel fuse = simnet::fuse_ssd_storage();
  const simnet::StorageModel ssd = simnet::ssd_storage();
  const simnet::StorageModel lustre = simnet::lustre_storage();

  bench::Table table({"Solution", "128 KB", "512 KB", "2 MB", "8 MB"});
  auto model_row = [&](const std::string& name, const simnet::StorageModel& m) {
    std::vector<std::string> cells{name};
    for (const auto& [label, bytes] : sizes) {
      cells.push_back(bench::fmt_int(1.0 / m.file_read_time(bytes)));
    }
    table.row(std::move(cells));
  };
  model_row("FanStore", fan);
  table.row({"  (paper)", "28248", "9689", "2513", "560"});
  model_row("SSD-fuse", fuse);
  table.row({"  (paper)", "6687", "2416", "738", "197"});
  model_row("SSD", ssd);
  table.row({"  (paper)", "39480", "9752", "2786", "678"});
  model_row("Lustre", lustre);
  table.row({"  (paper)", "1515", "149", "385", "139"});
  table.print();

  double ssd_frac_lo = 1e9, ssd_frac_hi = 0;
  double fuse_lo = 1e9, fuse_hi = 0, lustre_lo = 1e9, lustre_hi = 0;
  for (const auto& [label, bytes] : sizes) {
    const double t_fan = fan.file_read_time(bytes);
    const double frac = 100.0 * t_fan / ssd.file_read_time(bytes);
    // "percent of raw SSD throughput" = t_ssd / t_fan.
    const double pct = 100.0 * ssd.file_read_time(bytes) / t_fan;
    ssd_frac_lo = std::min(ssd_frac_lo, pct);
    ssd_frac_hi = std::max(ssd_frac_hi, pct);
    (void)frac;
    const double f = fuse.file_read_time(bytes) / t_fan;
    fuse_lo = std::min(fuse_lo, f);
    fuse_hi = std::max(fuse_hi, f);
    const double l = lustre.file_read_time(bytes) / t_fan;
    lustre_lo = std::min(lustre_lo, l);
    lustre_hi = std::max(lustre_hi, l);
  }
  std::printf(
      "\nDerived claims: FanStore at %.0f-%.0f%% of raw SSD; %.1f-%.1fx faster\n"
      "than FUSE; %.1f-%.1fx faster than Lustre (paper: 71-99%%, 2.9-4.4x,\n"
      "4.0-64.7x).\n",
      ssd_frac_lo, ssd_frac_hi, fuse_lo, fuse_hi, lustre_lo, lustre_hi);

  bench::section("In-process check: real FanStoreFs wall-clock read rate (this host)");
  bench::Table real_table({"size", "files/sec (measured)"});
  real_table.row({"128 KB", bench::fmt_int(real_fanstore_files_per_s(128 * 1024, 400))});
  real_table.row({"512 KB", bench::fmt_int(real_fanstore_files_per_s(512 * 1024, 200))});
  real_table.row({"2 MB", bench::fmt_int(real_fanstore_files_per_s(2 * 1024 * 1024, 64))});
  real_table.print();
  std::printf("\n(The real user-space path sustains rates at or above the modeled\n"
              "deployment numbers — interception overhead is not the bottleneck.)\n");
  return 0;
}
