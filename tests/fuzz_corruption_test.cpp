// Failure-injection fuzzing: for every registered codec configuration,
// randomly corrupt compressed streams (bit flips, truncations, prefix
// garbage) and assert the decoder never crashes or over-allocates — it
// either throws CorruptDataError or returns (possibly wrong) bytes of the
// requested size. This is the robustness FanStore needs when a partition
// arrives damaged from the shared FS or the interconnect.
#include <gtest/gtest.h>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"

namespace fanstore::compress {
namespace {

class CorruptionFuzzTest : public ::testing::TestWithParam<CompressorId> {};

TEST_P(CorruptionFuzzTest, SurvivesRandomCorruption) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes original = testdata::runs_and_noise(30000, 1234);
  const Bytes packed = codec->compress(as_view(original));
  ASSERT_FALSE(packed.empty());

  Rng rng(GetParam() * 7919u + 13);
  for (int trial = 0; trial < 30; ++trial) {
    Bytes mutated = packed;
    switch (trial % 3) {
      case 0: {  // random bit flips
        const int flips = 1 + static_cast<int>(rng.next_below(8));
        for (int f = 0; f < flips; ++f) {
          mutated[rng.next_below(mutated.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      }
      case 1: {  // truncation
        mutated.resize(rng.next_below(mutated.size()));
        break;
      }
      default: {  // byte overwrite runs
        const std::size_t start = rng.next_below(mutated.size());
        const std::size_t len =
            std::min<std::size_t>(mutated.size() - start, 1 + rng.next_below(64));
        for (std::size_t i = 0; i < len; ++i) {
          mutated[start + i] = static_cast<std::uint8_t>(rng.next_u64());
        }
        break;
      }
    }
    try {
      const Bytes out = codec->decompress(as_view(mutated), original.size());
      // Wrong output is acceptable; wrong *size* is not.
      ASSERT_EQ(out.size(), original.size());
    } catch (const CorruptDataError&) {
      // Expected for most mutations.
    } catch (const std::exception& e) {
      FAIL() << codec->name() << ": unexpected exception type: " << e.what();
    }
  }
}

// --- Chunked container corruption classes --------------------------------
//
// The container adds its own header + chunk table, so beyond the generic
// random fuzzing above (which the parametrized suite also runs on chunked
// ids), each structured field gets a targeted mutation that must surface as
// CorruptDataError — never a crash, hang, or silent wrong-size output.

class ChunkedCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto& reg = Registry::instance();
    codec_ = reg.by_name("chunked-16k+lz4hc");
    ASSERT_NE(codec_, nullptr);
    original_ = testdata::runs_and_noise(50000, 77);  // 4 chunks
    packed_ = codec_->compress(as_view(original_));
    ASSERT_GT(packed_.size(), kChunkedHeaderSize + 4 * kChunkTableEntrySize);
  }

  void expect_corrupt(const Bytes& mutated) {
    EXPECT_THROW((void)codec_->decompress(as_view(mutated), original_.size()),
                 CorruptDataError);
  }

  const Compressor* codec_ = nullptr;
  Bytes original_;
  Bytes packed_;
};

TEST_F(ChunkedCorruptionTest, TruncatedHeaderThrows) {
  for (std::size_t n = 0; n < kChunkedHeaderSize; ++n) {
    Bytes mutated(packed_.begin(), packed_.begin() + static_cast<std::ptrdiff_t>(n));
    expect_corrupt(mutated);
  }
}

TEST_F(ChunkedCorruptionTest, CorruptedTableEntryThrows) {
  // Break chunk 1's offset field: offsets must be exact prefix sums.
  Bytes mutated = packed_;
  mutated[kChunkedHeaderSize + kChunkTableEntrySize] ^= 0x01;
  expect_corrupt(mutated);
  // Break a csize field the same way.
  mutated = packed_;
  mutated[kChunkedHeaderSize + kChunkTableEntrySize + 8] ^= 0x01;
  expect_corrupt(mutated);
}

TEST_F(ChunkedCorruptionTest, FlippedPayloadByteThrows) {
  // A single bit anywhere in the payload breaks that chunk's crc32.
  const std::size_t payload_begin = kChunkedHeaderSize + 4 * kChunkTableEntrySize;
  Bytes mutated = packed_;
  mutated[payload_begin + (mutated.size() - payload_begin) / 2] ^= 0x40;
  expect_corrupt(mutated);
}

TEST_F(ChunkedCorruptionTest, WrongChunkCrcThrows) {
  // Flip a bit in chunk 2's stored crc32 (table entry bytes 12..15).
  Bytes mutated = packed_;
  mutated[kChunkedHeaderSize + 2 * kChunkTableEntrySize + 12] ^= 0x80;
  expect_corrupt(mutated);
}

TEST_F(ChunkedCorruptionTest, ChunkCountInconsistentWithSizeThrows) {
  // chunk_count lives at header bytes 11..14; 50000 bytes at 16 KiB must be
  // exactly 4 chunks.
  for (const std::uint8_t count : {0, 3, 5, 255}) {
    Bytes mutated = packed_;
    mutated[11] = count;
    expect_corrupt(mutated);
  }
}

std::vector<CompressorId> all_ids() {
  std::vector<CompressorId> ids;
  for (const auto& e : Registry::instance().all()) ids.push_back(e.id);
  // A few chunked wrappings ride along so the container's parse/decode path
  // gets the same random bit-flip/truncate/overwrite treatment.
  ids.push_back(Registry::instance().id_by_name("chunked-16k+lz4hc"));
  ids.push_back(Registry::instance().id_by_name("chunked-4k+huff-64k"));
  ids.push_back(Registry::instance().id_by_name("chunked-16k+deflate-6"));
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, CorruptionFuzzTest, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<CompressorId>& info) {
      std::string n = Registry::instance().by_id(info.param)->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_id" + std::to_string(info.param);
    });

}  // namespace
}  // namespace fanstore::compress
