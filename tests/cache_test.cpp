// Tests for the refcount-aware FIFO cache (§IV-C3, Fig. 4) and its
// sharded single-flight concurrency layer. Small-capacity caches
// auto-degenerate to one shard, so the classic FIFO tests below exercise
// exactly the seed semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "core/cache.hpp"
#include "core/tiered_cache.hpp"

namespace fanstore::core {
namespace {

Bytes blob(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

TEST(PlainCacheTest, HitAfterMiss) {
  PlainCache cache(1024);
  int loads = 0;
  auto loader = [&] {
    ++loads;
    return blob(100, 1);
  };
  bool loaded = false;
  auto a = cache.acquire("f", loader, &loaded);
  EXPECT_TRUE(loaded);
  auto b = cache.acquire("f", loader, &loaded);
  EXPECT_FALSE(loaded);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.release("f");
  cache.release("f");
}

TEST(PlainCacheTest, FifoEvictionOrder) {
  PlainCache cache(250);
  cache.acquire("a", [] { return blob(100, 1); });
  cache.release("a");
  cache.acquire("b", [] { return blob(100, 2); });
  cache.release("b");
  // Inserting c (100 B) exceeds 250: the oldest unpinned entry (a) goes.
  cache.acquire("c", [] { return blob(100, 3); });
  cache.release("c");
  EXPECT_FALSE(cache.contains("a"));
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PlainCacheTest, PinnedEntriesSurviveEviction) {
  // The paper's FIFO variant: entries opened by an I/O thread are skipped.
  PlainCache cache(250);
  auto pin_a = cache.acquire("a", [] { return blob(100, 1); });  // stays pinned
  cache.acquire("b", [] { return blob(100, 2); });
  cache.release("b");
  cache.acquire("c", [] { return blob(100, 3); });  // pressure: must skip "a"
  cache.release("c");
  EXPECT_TRUE(cache.contains("a"));   // pinned: skipped
  EXPECT_FALSE(cache.contains("b"));  // oldest unpinned: evicted
  EXPECT_TRUE(cache.contains("c"));
  // Releasing "a" under continued pressure allows its eviction.
  cache.release("a");
  cache.acquire("d", [] { return blob(100, 4); });
  cache.release("d");
  EXPECT_FALSE(cache.contains("a"));
}

TEST(PlainCacheTest, MultiReaderCounting) {
  // Fig. 4: the counter tracks concurrent opens; the entry is evictable
  // only when every opener has closed.
  PlainCache cache(150);
  cache.acquire("f", [] { return blob(100, 1); });
  cache.acquire("f", [] { return blob(100, 1); });  // second reader
  cache.release("f");                               // one closes
  cache.acquire("g", [] { return blob(100, 2); });  // pressure
  cache.release("g");
  EXPECT_TRUE(cache.contains("f"));  // still pinned by reader #2
  cache.release("f");
  cache.acquire("h", [] { return blob(100, 3); });
  cache.release("h");
  EXPECT_FALSE(cache.contains("f"));
}

TEST(PlainCacheTest, OversizedEntryAdmittedWhilePinned) {
  PlainCache cache(50);
  auto pin = cache.acquire("big", [] { return blob(500, 9); });
  EXPECT_EQ(pin->size(), 500u);
  EXPECT_TRUE(cache.contains("big"));
  cache.release("big");
  EXPECT_FALSE(cache.contains("big"));  // evicted once released
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(PlainCacheTest, LoaderFailureIsNotCached) {
  PlainCache cache(1000);
  EXPECT_THROW(cache.acquire("f", []() -> Bytes { throw std::runtime_error("io"); }),
               std::runtime_error);
  EXPECT_FALSE(cache.contains("f"));
  // A later successful load works.
  auto ok = cache.acquire("f", [] { return blob(10, 1); });
  EXPECT_EQ(ok->size(), 10u);
  cache.release("f");
}

TEST(PlainCacheTest, ReleaseUnknownPathIsNoop) {
  PlainCache cache(100);
  cache.release("ghost");
  SUCCEED();
}

TEST(PlainCacheTest, BytesUsedTracksContents) {
  PlainCache cache(1000);
  cache.acquire("a", [] { return blob(300, 1); });
  cache.acquire("b", [] { return blob(200, 2); });
  EXPECT_EQ(cache.bytes_used(), 500u);
  cache.release("a");
  cache.release("b");
  EXPECT_EQ(cache.bytes_used(), 500u);  // cached until pressure
}

TEST(PlainCacheTest, ConcurrentAcquireReleaseIsSafe) {
  PlainCache cache(10 * 1024);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string path = "f" + std::to_string((t + i) % 20);
        auto data = cache.acquire(path, [&] { return blob(512, 7); });
        if (data->size() != 512) failures++;
        cache.release(path);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.bytes_used(), 10u * 1024u + 512u);
}

// --- Sharding -----------------------------------------------------------

// Returns `count` distinct paths that all hash into `shard`.
std::vector<std::string> paths_in_shard(const PlainCache& cache,
                                        std::size_t shard, std::size_t count) {
  std::vector<std::string> out;
  for (int i = 0; out.size() < count; ++i) {
    std::string p = "p" + std::to_string(i);
    if (cache.shard_of(p) == shard) out.push_back(std::move(p));
  }
  return out;
}

TEST(ShardedCacheTest, SmallCapacityDegeneratesToOneShard) {
  PlainCache cache(1024);  // < 1 MiB: exactly the classic single pool
  EXPECT_EQ(cache.shard_count(), 1u);
}

TEST(ShardedCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  PlainCache cache(64 << 20, 5);
  EXPECT_EQ(cache.shard_count(), 8u);
}

TEST(ShardedCacheTest, CapacityEnforcedPerShardAndGlobally) {
  PlainCache cache(4096, 4);  // 1024 B budget per shard
  ASSERT_EQ(cache.shard_count(), 4u);
  // Overfill shard 0: the third 400 B entry pushes past its 1024 B budget
  // and must evict that shard's oldest unpinned entry...
  const auto in0 = paths_in_shard(cache, 0, 3);
  // ...while an entry in another shard feels no pressure at all.
  const auto other = paths_in_shard(cache, 1, 1);
  cache.acquire(other[0], [] { return blob(400, 9); });
  cache.release(other[0]);
  for (const auto& p : in0) {
    cache.acquire(p, [] { return blob(400, 1); });
    cache.release(p);
  }
  EXPECT_FALSE(cache.contains(in0[0]));  // oldest in shard 0: evicted
  EXPECT_TRUE(cache.contains(in0[1]));
  EXPECT_TRUE(cache.contains(in0[2]));
  EXPECT_TRUE(cache.contains(other[0]));  // untouched shard
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes_used(), cache.capacity());
}

TEST(ShardedCacheTest, PinnedEntriesSkipEvictionAcrossShards) {
  PlainCache cache(4096, 4);
  const auto in0 = paths_in_shard(cache, 0, 3);
  auto pin = cache.acquire(in0[0], [] { return blob(400, 1); });  // stays pinned
  for (std::size_t i = 1; i < in0.size(); ++i) {
    cache.acquire(in0[i], [] { return blob(400, 2); });
    cache.release(in0[i]);
  }
  EXPECT_TRUE(cache.contains(in0[0]));   // pinned: skipped under pressure
  EXPECT_FALSE(cache.contains(in0[1]));  // oldest unpinned: evicted
  EXPECT_TRUE(cache.contains(in0[2]));
  cache.release(in0[0]);
}

TEST(ShardedCacheTest, OversizedPinnedEntryEvictedOnRelease) {
  PlainCache cache(4096, 4);  // 1024 B budget per shard
  const auto p = paths_in_shard(cache, 2, 1);
  auto pin = cache.acquire(p[0], [] { return blob(3000, 7); });
  EXPECT_TRUE(cache.contains(p[0]));  // over budget but pinned: admitted
  cache.release(p[0]);
  EXPECT_FALSE(cache.contains(p[0]));  // evicted the moment the pin drops
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ShardedCacheTest, OpenCountTracksPins) {
  PlainCache cache(4096);
  EXPECT_EQ(cache.open_count("f"), 0);
  cache.acquire("f", [] { return blob(10, 1); });
  cache.acquire("f", [] { return blob(10, 1); });
  EXPECT_EQ(cache.open_count("f"), 2);
  cache.release("f");
  EXPECT_EQ(cache.open_count("f"), 1);
  cache.release("f");
  EXPECT_EQ(cache.open_count("f"), 0);  // cached but unpinned
  EXPECT_TRUE(cache.contains("f"));
}

// --- Single-flight ------------------------------------------------------

// Regression for the seed's duplicate-work window: two threads missing the
// same path both ran the loader and the loser's insert double-charged the
// pool. Under single-flight the loader must run exactly once however many
// threads race the miss.
TEST(SingleFlightTest, LoaderRunsOnceUnderConcurrentAcquires) {
  PlainCache cache(1 << 20);
  std::atomic<int> loader_runs{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const Bytes>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.acquire("hot", [&] {
        loader_runs.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return blob(4096, 5);
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(loader_runs.load(), 1);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads) - 1);
  EXPECT_GE(s.single_flight_waits, 1u);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());  // all adopted the one load
  }
  EXPECT_EQ(cache.open_count("hot"), kThreads);  // every caller holds a pin
  EXPECT_EQ(cache.bytes_used(), 4096u);          // charged exactly once
  for (int t = 0; t < kThreads; ++t) cache.release("hot");
}

TEST(SingleFlightTest, LoaderFailurePropagatesToAllWaiters) {
  PlainCache cache(1 << 20);
  std::atomic<int> loader_runs{0};
  std::atomic<int> caught{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      try {
        cache.acquire("bad", [&]() -> Bytes {
          loader_runs.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          throw std::runtime_error("io");
        });
      } catch (const std::runtime_error&) {
        caught.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread observed a failure; a thread that arrived after one
  // in-flight load failed may have started its own, so the loader may run
  // more than once — but never cached anything.
  EXPECT_EQ(caught.load(), 6);
  EXPECT_GE(loader_runs.load(), 1);
  EXPECT_FALSE(cache.contains("bad"));
  // A later successful load still works.
  auto ok = cache.acquire("bad", [] { return blob(10, 1); });
  EXPECT_EQ(ok->size(), 10u);
  cache.release("bad");
}

// ---- Tiered cache (DESIGN.md §12) --------------------------------------

TEST(DemotionHookTest, EvictedVictimsFlowToHookAfterUnlock) {
  PlainCache cache(250);
  std::vector<std::string> demoted;
  cache.set_demotion_hook(
      [&](const std::string& path, const std::shared_ptr<CachedFile>& file) {
        ASSERT_NE(file, nullptr);
        // The hook may re-enter the cache: no shard lock is held here.
        EXPECT_FALSE(cache.contains(path));
        demoted.push_back(path);
      });
  cache.acquire("a", [] { return blob(100, 1); });
  cache.release("a");
  cache.acquire("b", [] { return blob(100, 2); });
  cache.release("b");
  cache.acquire("c", [] { return blob(100, 3); });  // pressure: evicts "a"
  cache.release("c");
  ASSERT_EQ(demoted.size(), 1u);
  EXPECT_EQ(demoted[0], "a");
  // drop() fires the hook too once the pin count reaches zero.
  cache.drop("b");
  ASSERT_EQ(demoted.size(), 2u);
  EXPECT_EQ(demoted[1], "b");
  EXPECT_FALSE(cache.contains("b"));
  // The hook received usable bytes, not a husk.
  EXPECT_EQ(cache.stats().evictions, 1u);  // drop() is not an eviction
}

/// A chunked cold object for tier tests: constant fill compresses well, so
/// the frame is far smaller than the 16 KiB plain size.
struct ChunkedObject {
  compress::CompressorId id = 0;
  Bytes plain;
  Bytes compressed;
};

ChunkedObject make_chunked(std::uint8_t fill, std::size_t n = 16384) {
  ChunkedObject o;
  o.plain = blob(n, fill);
  o.id = compress::chunked_id(
      compress::Registry::instance().id_by_name("lz4"), 4096);
  o.compressed =
      compress::Registry::instance().by_id(o.id)->compress(as_view(o.plain));
  return o;
}

TieredCache::ColdLoader cold_of(const ChunkedObject& o, int* calls = nullptr) {
  return [&o, calls] {
    if (calls != nullptr) ++*calls;
    ColdResult r;
    r.file = std::make_shared<CachedFile>(Bytes(o.compressed), o.id,
                                          o.plain.size());
    return r;
  };
}

/// acquire + full materialization + budget resync — what FanStoreFs's eager
/// open path does.
std::shared_ptr<CachedFile> acquire_hot(TieredCache& tc,
                                        const std::string& path,
                                        const TieredCache::ColdLoader& cold) {
  auto f = tc.acquire_file(path, cold);
  f->materialize_all(1, nullptr);
  tc.recharge(path);
  return f;
}

TEST(TieredCacheTest, DemoteToCompressedHitAndPromoteOnSecondHit) {
  // Plain budget holds exactly one materialized 16 KiB entry; the
  // compressed tier is effectively unbounded; promote on second hit.
  TieredCache::Options opt;
  opt.plain_bytes = 20000;
  opt.compressed_bytes = 1 << 20;
  opt.promote_after_hits = 2;
  TieredCache tc(opt);
  auto& m = tc.metrics();
  const auto a = make_chunked(1);
  const auto b = make_chunked(2);
  int cold_a = 0;
  int cold_b = 0;

  acquire_hot(tc, "a", cold_of(a, &cold_a));
  tc.release("a");
  acquire_hot(tc, "b", cold_of(b, &cold_b));  // recharge evicts "a" → tier 1
  tc.release("b");
  EXPECT_TRUE(tc.compressed_contains("a"));
  EXPECT_FALSE(tc.plain().contains("a"));
  EXPECT_EQ(m.counter("tier.compressed.demotes").value(), 1u);
  EXPECT_EQ(tc.compressed_bytes_used(), a.compressed.size());

  // First tier-1 hit: rebuilt into plain RAM, tier-1 copy retained.
  auto fa = acquire_hot(tc, "a", cold_of(a, &cold_a));  // evicts "b" → tier 1
  EXPECT_EQ(cold_a, 1);  // served from the compressed tier, not cold
  EXPECT_TRUE(tc.compressed_contains("a"));
  EXPECT_EQ(fa->plain(), a.plain);
  tc.release("a");
  EXPECT_TRUE(tc.compressed_contains("b"));

  // First tier-1 hit for "b"; its insert demotes "a" again, which dedupes
  // against the still-resident tier-1 copy.
  acquire_hot(tc, "b", cold_of(b, &cold_b));
  EXPECT_EQ(cold_b, 1);
  tc.release("b");
  EXPECT_TRUE(tc.compressed_contains("a"));

  // Second tier-1 hit for "a": promoted — the tier-1 copy moves up.
  auto fa2 = acquire_hot(tc, "a", cold_of(a, &cold_a));
  EXPECT_EQ(cold_a, 1);
  EXPECT_FALSE(tc.compressed_contains("a"));
  EXPECT_EQ(fa2->plain(), a.plain);
  tc.release("a");

  EXPECT_EQ(m.counter("tier.compressed.hits").value(), 3u);
  EXPECT_EQ(m.counter("tier.compressed.promotes").value(), 1u);
  EXPECT_EQ(m.counter("tier.cold.loads").value(), 2u);
  // Identity: every plain miss resolved exactly one tier below.
  EXPECT_EQ(m.counter("cache.misses").value(),
            m.counter("tier.compressed.hits").value() +
                m.counter("tier.cold.loads").value());
}

TEST(TieredCacheTest, FlatEntriesSpillAndPromoteBack) {
  // No compressed tier: flat victims go straight to the crc-framed spill
  // device; promote on first hit so the round trip is observable.
  TieredCache::Options opt;
  opt.plain_bytes = 250;
  opt.spill_bytes = 10000;
  opt.promote_after_hits = 1;
  TieredCache tc(opt);
  auto& m = tc.metrics();
  auto flat = [](std::uint8_t fill) -> TieredCache::ColdLoader {
    return [fill] {
      ColdResult r;
      r.file = std::make_shared<CachedFile>(blob(100, fill));
      return r;
    };
  };
  tc.acquire_file("a", flat(1));
  tc.release("a");
  tc.acquire_file("b", flat(2));
  tc.release("b");
  tc.acquire_file("c", flat(3));  // evicts "a" → spill record (22 B header)
  tc.release("c");
  EXPECT_TRUE(tc.spill_contains("a"));
  EXPECT_EQ(tc.spill_bytes_used(), 122u);
  EXPECT_EQ(m.counter("tier.spill.demotes").value(), 1u);
  EXPECT_EQ(m.counter("tier.spill.bytes_written").value(), 122u);

  // Spill hit: crc-verified, promoted on first hit (record reclaimed); the
  // re-insert pressure pushes "b" down in its place.
  auto fa = tc.acquire_file("a", flat(1));
  EXPECT_EQ(fa->plain(), blob(100, 1));
  EXPECT_FALSE(tc.spill_contains("a"));
  EXPECT_TRUE(tc.spill_contains("b"));
  tc.release("a");
  EXPECT_EQ(m.counter("tier.spill.hits").value(), 1u);
  EXPECT_EQ(m.counter("tier.spill.promotes").value(), 1u);
  EXPECT_EQ(m.counter("tier.spill.bytes_read").value(), 122u);
  EXPECT_EQ(tc.spill_bytes_used(), 122u);  // only "b" remains
  EXPECT_EQ(m.counter("cache.misses").value(),
            m.counter("tier.spill.hits").value() +
                m.counter("tier.cold.loads").value());
}

TEST(TieredCacheTest, CompressedOverflowSpillsOldestFrame) {
  const auto a = make_chunked(1);
  const auto b = make_chunked(2);
  const auto c = make_chunked(3);
  TieredCache::Options opt;
  opt.plain_bytes = 20000;  // one materialized entry
  // Holds one compressed frame but not two.
  opt.compressed_bytes = a.compressed.size() + a.compressed.size() / 2;
  opt.spill_bytes = 1 << 20;
  TieredCache tc(opt);
  acquire_hot(tc, "a", cold_of(a));
  tc.release("a");
  acquire_hot(tc, "b", cold_of(b));  // "a" → tier 1
  tc.release("b");
  EXPECT_TRUE(tc.compressed_contains("a"));
  acquire_hot(tc, "c", cold_of(c));  // "b" → tier 1, which evicts "a" → spill
  tc.release("c");
  EXPECT_TRUE(tc.compressed_contains("b"));
  EXPECT_FALSE(tc.compressed_contains("a"));
  EXPECT_TRUE(tc.spill_contains("a"));
  auto& m = tc.metrics();
  EXPECT_EQ(m.counter("tier.compressed.evictions").value(), 1u);
  EXPECT_EQ(m.counter("tier.spill.demotes").value(), 1u);
  // The spilled frame still round-trips: a spill hit rebuilds "a" exactly.
  auto fa = acquire_hot(tc, "a", cold_of(a));
  EXPECT_EQ(fa->plain(), a.plain);
  tc.release("a");
}

TEST(TieredCacheTest, AdmitToCompressedOnlyDropsPlainCopyAtLastClose) {
  const auto a = make_chunked(7);
  TieredCache::Options opt;
  opt.plain_bytes = 1 << 20;
  opt.compressed_bytes = 1 << 20;
  opt.plain_admit_max_bytes = 1;  // everything is "large": compressed-only
  opt.promote_after_hits = 2;
  TieredCache tc(opt);
  int cold_calls = 0;
  auto f = tc.acquire_file("a", cold_of(a, &cold_calls));
  // Write-through admission happened at load time.
  EXPECT_TRUE(tc.compressed_contains("a"));
  EXPECT_TRUE(tc.plain().contains("a"));  // pinned for this open
  tc.release("a");
  // Last close: the plain copy is dropped — the compressed frame is home.
  EXPECT_FALSE(tc.plain().contains("a"));
  EXPECT_TRUE(tc.compressed_contains("a"));
  // Repeated hits re-decode from tier 1 and never promote it away.
  for (int i = 0; i < 3; ++i) {
    auto g = acquire_hot(tc, "a", cold_of(a, &cold_calls));
    EXPECT_EQ(g->plain(), a.plain);
    tc.release("a");
    EXPECT_TRUE(tc.compressed_contains("a"));
    EXPECT_FALSE(tc.plain().contains("a"));
  }
  EXPECT_EQ(cold_calls, 1);
  EXPECT_EQ(tc.metrics().counter("tier.compressed.admits").value(), 1u);
}

class MapPolicy : public EvictionPolicy {
 public:
  std::map<std::string, std::uint64_t> distance;
  std::uint64_t next_use_distance(const std::string& path) const override {
    const auto it = distance.find(path);
    return it == distance.end() ? kNever : it->second;
  }
};

TEST(TieredCacheTest, BeladyPolicyAppliesPerTier) {
  const auto a = make_chunked(1);
  const auto b = make_chunked(2);
  const auto c = make_chunked(3);
  const auto d = make_chunked(4);
  TieredCache::Options opt;
  opt.plain_bytes = 20000;
  opt.compressed_bytes = 2 * a.compressed.size() + a.compressed.size() / 2;
  opt.spill_bytes = 1 << 20;
  opt.promote_after_hits = 100;  // promotion out of the picture
  TieredCache tc(opt);
  // Fill tier 1 with {a, b} via plain-tier pressure.
  acquire_hot(tc, "a", cold_of(a));
  tc.release("a");
  acquire_hot(tc, "b", cold_of(b));
  tc.release("b");
  acquire_hot(tc, "c", cold_of(c));
  tc.release("c");
  ASSERT_TRUE(tc.compressed_contains("a"));
  ASSERT_TRUE(tc.compressed_contains("b"));
  // Clairvoyant plan: "b" is needed farthest in the future.
  MapPolicy policy;
  policy.distance = {{"a", 5}, {"b", 10}, {"c", 1}, {"d", 2}};
  tc.set_eviction_policy(&policy);
  // "d" pushes "c" into tier 1; the tier-1 victim must be "b" (farthest
  // next use), not "a" (FIFO head).
  acquire_hot(tc, "d", cold_of(d));
  tc.release("d");
  EXPECT_TRUE(tc.compressed_contains("a"));
  EXPECT_TRUE(tc.compressed_contains("c"));
  EXPECT_FALSE(tc.compressed_contains("b"));
  EXPECT_TRUE(tc.spill_contains("b"));
  tc.set_eviction_policy(nullptr);
}

TEST(TieredCacheTest, NoTierBudgetsIsPassThrough) {
  TieredCache::Options opt;
  opt.plain_bytes = 250;
  TieredCache tc(opt);
  EXPECT_FALSE(tc.tiers_enabled());
  int cold_calls = 0;
  auto f = tc.acquire_file("a", [&] {
    ++cold_calls;
    ColdResult r;
    r.file = std::make_shared<CachedFile>(blob(100, 1));
    return r;
  });
  EXPECT_EQ(f->plain(), blob(100, 1));
  tc.release("a");
  EXPECT_EQ(cold_calls, 1);
  // No tier metric was registered — the registry is untouched beyond the
  // classic "cache.*" family.
  const auto snap = tc.metrics().snapshot();
  for (const auto& s : snap.entries) {
    EXPECT_TRUE(s.name.rfind("tier.", 0) != 0) << s.name;
  }
}

}  // namespace
}  // namespace fanstore::core
