file(REMOVE_RECURSE
  "CMakeFiles/fanstore_mpi.dir/comm.cpp.o"
  "CMakeFiles/fanstore_mpi.dir/comm.cpp.o.d"
  "libfanstore_mpi.a"
  "libfanstore_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
