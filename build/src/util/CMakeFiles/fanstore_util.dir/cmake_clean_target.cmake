file(REMOVE_RECURSE
  "libfanstore_util.a"
)
