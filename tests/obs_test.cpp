// Observability-layer tests: histogram bucket math and quantile bounds
// (including a randomized property check against exact sorted-sample
// quantiles), counter/gauge/registry semantics, Chrome-trace span capture
// (nesting, ring wrap, virtual-clock stamps, JSON well-formedness via a
// purpose-built parser), and a golden 2-rank trainer run whose metric
// invariants pin the cross-subsystem accounting down.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "dlsim/prefetcher.hpp"
#include "dlsim/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simnet/virtual_clock.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"

namespace fanstore::obs {
namespace {

// --- Counter / Gauge -------------------------------------------------------

TEST(CounterTest, IncrementAndRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  Gauge g;
  g.set(100);
  g.add(-150);
  EXPECT_EQ(g.value(), -50);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

// --- Histogram bucket math -------------------------------------------------

TEST(HistogramTest, SmallValuesGetSingletonBuckets) {
  for (std::uint64_t v = 0; v < static_cast<std::uint64_t>(Histogram::kSub); ++v) {
    const int b = Histogram::bucket_of(v);
    const auto bounds = Histogram::bucket_bounds(b);
    EXPECT_EQ(bounds.lo, v);
    EXPECT_EQ(bounds.hi, v);
  }
}

TEST(HistogramTest, BucketsPartitionTheValueLine) {
  // Consecutive buckets tile [0, ...] with no gaps or overlaps, bucket_of
  // agrees with bucket_bounds at both edges, and every non-singleton
  // bucket's width is at most 25% of its lower bound (the advertised
  // worst-case quantile error).
  std::uint64_t expected_lo = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const auto bounds = Histogram::bucket_bounds(i);
    EXPECT_EQ(bounds.lo, expected_lo) << "gap/overlap at bucket " << i;
    EXPECT_GE(bounds.hi, bounds.lo);
    EXPECT_EQ(Histogram::bucket_of(bounds.lo), i);
    EXPECT_EQ(Histogram::bucket_of(bounds.hi), i);
    if (i >= Histogram::kSub) {
      // width - 1 <= lo/4, phrased to avoid overflow in the top octave.
      EXPECT_LE(bounds.hi - bounds.lo, bounds.lo / 4)
          << "bucket " << i << " wider than 25% relative";
    }
    if (bounds.hi == ~std::uint64_t{0}) break;  // top of the line reached
    expected_lo = bounds.hi + 1;
  }
}

TEST(HistogramTest, PowerOfTwoEdgesLandInTheirBuckets) {
  for (int e = 1; e < 64; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    for (const std::uint64_t v : {p - 1, p, p + 1}) {
      const auto bounds = Histogram::bucket_bounds(Histogram::bucket_of(v));
      EXPECT_LE(bounds.lo, v);
      EXPECT_GE(bounds.hi, v);
    }
  }
  const std::uint64_t top = ~std::uint64_t{0};
  const auto bounds = Histogram::bucket_bounds(Histogram::bucket_of(top));
  EXPECT_LE(bounds.lo, top);
  EXPECT_EQ(bounds.hi, top);
}

TEST(HistogramTest, CountSumMeanExact) {
  Histogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v : {0ull, 1ull, 17ull, 1000ull, 123456789ull}) {
    h.record(v);
    sum += v;
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_DOUBLE_EQ(snap.mean(), static_cast<double>(sum) / 5.0);
}

// The deterministic property at the heart of the harness: for any sample
// set, quantile_bounds(p) must bracket the *exact* quantile of the sorted
// samples (rank ceil(p/100 * N), 1-based).
void check_quantiles_bracket_exact(const std::vector<std::uint64_t>& samples,
                                   const Histogram& h) {
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p / 100.0 * static_cast<double>(sorted.size()))));
    const std::uint64_t exact = sorted[rank - 1];
    const auto bounds = snap.quantile_bounds(p);
    EXPECT_LE(bounds.lo, exact) << "p=" << p;
    EXPECT_GE(bounds.hi, exact) << "p=" << p;
    // The point estimate is inside its own bucket, so within 25% relative
    // of the exact quantile (plus the sub-4 singleton exactness).
    const double est = snap.quantile(p);
    EXPECT_GE(est, static_cast<double>(bounds.lo));
    EXPECT_LE(est, static_cast<double>(bounds.hi));
  }
}

TEST(HistogramTest, RandomizedQuantilesBracketExactQuantiles) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    Rng rng(seed);
    // Uniform latencies.
    {
      Histogram h;
      std::vector<std::uint64_t> samples;
      for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next_below(1000000);
        samples.push_back(v);
        h.record(v);
      }
      check_quantiles_bracket_exact(samples, h);
    }
    // Log-uniform (heavy-tailed, the shape real latency histograms have).
    {
      Histogram h;
      std::vector<std::uint64_t> samples;
      for (int i = 0; i < 1000; ++i) {
        const int shift = static_cast<int>(rng.next_below(40));
        const std::uint64_t v =
            (std::uint64_t{1} << shift) + rng.next_below(1 + (std::uint64_t{1} << shift));
        samples.push_back(v);
        h.record(v);
      }
      check_quantiles_bracket_exact(samples, h);
    }
  }
}

TEST(HistogramTest, ConcurrentRecordsAllCounted) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + (i % 97));
      }
    });
  }
  for (auto& th : pool) th.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// --- Registry --------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a1 = reg.counter("a");
  Counter& a2 = reg.counter("a");
  EXPECT_EQ(&a1, &a2);
  EXPECT_NE(&a1, &reg.counter("b"));
  Histogram& h1 = reg.histogram("h");
  EXPECT_EQ(&h1, &reg.histogram("h"));
}

TEST(MetricsRegistryTest, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.histogram("h");
  EXPECT_THROW(reg.counter("h"), std::logic_error);
}

TEST(MetricsRegistryTest, SnapshotSortedCompleteAndZeroForAbsent) {
  MetricsRegistry reg;
  reg.counter("z.count").inc(3);
  reg.gauge("a.depth").set(-4);
  reg.histogram("m.lat_us").record(10);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.entries.begin(), snap.entries.end(),
      [](const auto& l, const auto& r) { return l.name < r.name; }));
  EXPECT_EQ(snap.counter("z.count"), 3u);
  EXPECT_EQ(snap.gauge("a.depth"), -4);
  EXPECT_EQ(snap.counter("not.there"), 0u);
  const auto* h = snap.find("m.lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricsSnapshot::Kind::kHistogram);
  EXPECT_EQ(h->hist.count, 1u);
}

TEST(MetricsRegistryTest, SnapshotDuringConcurrentRegistration) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      reg.counter("reg.dyn" + std::to_string(i % 64)).inc();
      ++i;
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto snap = reg.snapshot();
    // Every snapshot is internally consistent: sorted, duplicate-free.
    EXPECT_TRUE(std::is_sorted(
        snap.entries.begin(), snap.entries.end(),
        [](const auto& l, const auto& r) { return l.name < r.name; }));
  }
  stop.store(true);
  writer.join();
}

TEST(MetricsDumpTest, TextAndJsonCoverRegisteredMetrics) {
  MetricsRegistry reg;
  reg.counter("dump.counter").inc(5);
  reg.histogram("dump.lat_us").record(123);
  const std::string text = metrics_dump(reg, /*json=*/false);
  EXPECT_NE(text.find("dump.counter"), std::string::npos);
  EXPECT_NE(text.find("dump.lat_us"), std::string::npos);
  const std::string json = metrics_dump(reg, /*json=*/true);
  EXPECT_NE(json.find("\"dump.counter\""), std::string::npos);
  // Global export path compiles and contains at least valid JSON braces.
  const std::string global_json = fanstore_metrics_dump(/*json=*/true);
  ASSERT_FALSE(global_json.empty());
  EXPECT_EQ(global_json.front(), '{');
}

// --- Minimal JSON parser (for validating emitted traces) -------------------
//
// Just enough JSON to strictly parse what TraceRecorder emits: objects,
// arrays, strings with escapes, numbers, booleans. Throws std::runtime_error
// on any malformed input, so a broken serializer fails the test loudly.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace(key.str, value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          case 'r': v.str += '\r'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) throw std::runtime_error("bad \\u escape");
            v.str += s_.substr(pos_ - 2, 6);  // keep verbatim; fine for names
            pos_ += 4;
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      } else {
        v.str += c;
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

struct ParsedEvent {
  std::string name;
  double tid = 0;
  double ts = 0;   // µs
  double dur = 0;  // µs
  bool has_vts = false;
  double vts = 0;
  double vdur = 0;
};

// Parses and structurally validates a Chrome trace; throws / fails on any
// malformed field.
std::vector<ParsedEvent> parse_trace(const std::string& json) {
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  EXPECT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue& events = root.at("traceEvents");
  EXPECT_EQ(events.type, JsonValue::Type::kArray);
  std::vector<ParsedEvent> out;
  for (const JsonValue& e : events.array) {
    EXPECT_EQ(e.type, JsonValue::Type::kObject);
    EXPECT_EQ(e.at("ph").str, "X");  // complete events only
    EXPECT_EQ(e.at("pid").number, 0);
    ParsedEvent p;
    p.name = e.at("name").str;
    p.tid = e.at("tid").number;
    p.ts = e.at("ts").number;
    p.dur = e.at("dur").number;
    EXPECT_GE(p.ts, 0);
    EXPECT_GE(p.dur, 0);
    if (e.has("args")) {
      const JsonValue& args = e.at("args");
      p.has_vts = args.has("vts_us");
      if (p.has_vts) {
        p.vts = args.at("vts_us").number;
        p.vdur = args.at("vdur_us").number;
      }
    }
    out.push_back(p);
  }
  return out;
}

// --- TraceRecorder / TraceSpan ---------------------------------------------

TEST(TraceTest, DisabledRecorderCostsNothingAndRecordsNothing) {
  TraceRecorder rec;
  { TraceSpan span("ignored", nullptr, rec); }
  EXPECT_EQ(rec.event_count(), 0u);
  const auto events = parse_trace(rec.to_chrome_json());
  EXPECT_TRUE(events.empty());
}

TEST(TraceTest, SpansNestPerThreadInEmittedJson) {
  TraceRecorder rec;
  rec.enable(true);
  auto work = [&rec] {
    TraceSpan outer("outer", nullptr, rec);
    for (int i = 0; i < 3; ++i) {
      TraceSpan inner("inner", nullptr, rec);
    }
  };
  std::thread t1(work);
  std::thread t2(work);
  t1.join();
  t2.join();
  const auto events = parse_trace(rec.to_chrome_json());
  ASSERT_EQ(events.size(), 8u);  // 2 threads x (1 outer + 3 inner)

  // Sorted by ts across threads (the serializer's contract).
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts);
  }

  // Per tid: exactly one outer containing three inner; any two intervals
  // are either nested or disjoint.
  std::map<double, std::vector<ParsedEvent>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  ASSERT_EQ(by_tid.size(), 2u);
  for (const auto& [tid, evs] : by_tid) {
    int outers = 0;
    const ParsedEvent* outer = nullptr;
    for (const auto& e : evs) {
      if (e.name == "outer") {
        ++outers;
        outer = &e;
      }
    }
    ASSERT_EQ(outers, 1) << "tid " << tid;
    for (const auto& e : evs) {
      if (e.name != "inner") continue;
      EXPECT_GE(e.ts, outer->ts);
      EXPECT_LE(e.ts + e.dur, outer->ts + outer->dur);
    }
    for (std::size_t i = 0; i < evs.size(); ++i) {
      for (std::size_t j = i + 1; j < evs.size(); ++j) {
        const auto& a = evs[i];
        const auto& b = evs[j];
        const bool disjoint =
            a.ts + a.dur <= b.ts || b.ts + b.dur <= a.ts;
        const bool a_in_b = a.ts >= b.ts && a.ts + a.dur <= b.ts + b.dur;
        const bool b_in_a = b.ts >= a.ts && b.ts + b.dur <= a.ts + a.dur;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << a.name << " and " << b.name << " partially overlap";
      }
    }
  }
}

TEST(TraceTest, RingKeepsOnlyTheNewestEvents) {
  TraceRecorder rec(/*ring_capacity=*/4);
  rec.enable(true);
  static const char* const kNames[] = {"e0", "e1", "e2", "e3", "e4",
                                       "e5", "e6", "e7", "e8", "e9"};
  for (int i = 0; i < 10; ++i) {
    rec.record(kNames[i], static_cast<std::uint64_t>(i) * 1000, 100);
  }
  EXPECT_EQ(rec.event_count(), 4u);
  const auto events = parse_trace(rec.to_chrome_json());
  ASSERT_EQ(events.size(), 4u);
  // Oldest six were overwritten; survivors come out in timestamp order.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[1].name, "e7");
  EXPECT_EQ(events[2].name, "e8");
  EXPECT_EQ(events[3].name, "e9");

  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(TraceTest, VirtualClockStampsTravelInArgs) {
  TraceRecorder rec;
  rec.enable(true);
  simnet::VirtualClock clock;
  clock.advance_sec(1.0);  // non-zero start: vts must reflect it
  {
    TraceSpan span("charged", &clock, rec);
    clock.advance_sec(0.5);
  }
  { TraceSpan span("uncharged", nullptr, rec); }
  const auto events = parse_trace(rec.to_chrome_json());
  ASSERT_EQ(events.size(), 2u);
  const auto& charged = events[0].name == "charged" ? events[0] : events[1];
  const auto& uncharged = events[0].name == "charged" ? events[1] : events[0];
  ASSERT_TRUE(charged.has_vts);
  EXPECT_NEAR(charged.vts, 1.0e6, 1.0);   // µs
  EXPECT_NEAR(charged.vdur, 0.5e6, 1.0);  // µs
  EXPECT_FALSE(uncharged.has_vts);
}

TEST(TraceTest, JsonEscapesAreWellFormed) {
  TraceRecorder rec;
  rec.enable(true);
  rec.record("quote\"back\\slash", 0, 1);
  const auto events = parse_trace(rec.to_chrome_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "quote\"back\\slash");
}

// --- Golden 2-rank integration ---------------------------------------------

Bytes make_partition(const std::vector<std::pair<std::string, Bytes>>& files,
                     const char* codec_name) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name(codec_name);
  format::PartitionWriter w;
  for (const auto& [path, data] : files) {
    w.add(format::make_record(path, *codec, reg.id_of(*codec), as_view(data)));
  }
  return w.serialize();
}

// One epoch of the 2-rank trainer, then assert the accounting identities
// that tie the subsystems together. Any double count, dropped count, or
// counter wired to the wrong event breaks an equality here.
TEST(ObsGoldenTest, TwoRankTrainerMetricInvariants) {
  constexpr int kRanks = 2;
  constexpr std::size_t kFilesPerRank = 8;
  constexpr std::size_t kBatch = 4;
  std::vector<MetricsSnapshot> snaps(kRanks);
  std::vector<std::uint64_t> expected_remote_bytes(kRanks, 0);
  std::vector<dlsim::TrainerResult> results(kRanks);

  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    core::Instance inst(comm, {});  // default 64 MiB cache: no evictions
    std::vector<std::pair<std::string, Bytes>> mine;
    for (std::size_t i = 0; i < kFilesPerRank; ++i) {
      mine.emplace_back(
          "ds/r" + std::to_string(rank) + "/f" + std::to_string(i),
          testdata::text_like(4096 + 512 * i, 100 * rank + i));
    }
    inst.load_partition_blob(as_view(make_partition(mine, "zstd")),
                             static_cast<std::uint32_t>(rank));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    // Every rank trains over the full global namespace.
    std::vector<std::string> all_files;
    for (int r = 0; r < kRanks; ++r) {
      for (std::size_t i = 0; i < kFilesPerRank; ++i) {
        all_files.push_back("ds/r" + std::to_string(r) + "/f" +
                            std::to_string(i));
      }
    }
    // Expected wire traffic: the compressed size of every peer-owned file
    // (metadata is fully replicated, so stat() answers locally).
    for (const auto& path : all_files) {
      format::FileStat st;
      ASSERT_EQ(inst.fs().stat(path, &st), 0);
      if (st.owner_rank != rank) {
        expected_remote_bytes[rank] += st.compressed_size;
      }
    }

    simnet::VirtualClock clock;
    dlsim::TrainerOptions topt;
    topt.t_iter_s = 1e-4;
    topt.batch_per_rank = kBatch;
    topt.epochs = 1;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.metrics = &inst.metrics();
    topt.seed = 7;
    results[rank] = dlsim::run_training(inst.fs(), all_files, topt);

    comm.barrier();  // both ranks done before either daemon stops
    inst.stop();     // joins the daemon: its counters are final below
    snaps[rank] = inst.metrics().snapshot();
  });

  const std::size_t total_files = kRanks * kFilesPerRank;
  for (std::size_t r = 0; r < kRanks; ++r) {
    const auto& snap = snaps[r];
    // One epoch, batch 4 over 16 files = 4 iterations reading every file
    // exactly once.
    EXPECT_EQ(results[r].iterations, total_files / kBatch);
    EXPECT_EQ(results[r].files_read, total_files);
    EXPECT_EQ(snap.counter("trainer.iterations"), total_files / kBatch);
    EXPECT_EQ(snap.counter("trainer.files_read"), total_files);

    // Every open is exactly one cache acquire.
    EXPECT_EQ(snap.counter("fs.opens"), total_files);
    EXPECT_EQ(snap.counter("fs.opens"),
              snap.counter("cache.hits") + snap.counter("cache.misses"));

    // Each file is opened once -> all misses, split local/remote by owner.
    EXPECT_EQ(snap.counter("cache.misses"), total_files);
    EXPECT_EQ(snap.counter("fs.local_misses"), kFilesPerRank);
    EXPECT_EQ(snap.counter("fs.remote_fetches"), kFilesPerRank);
    EXPECT_EQ(snap.counter("fs.failovers"), 0u);

    // Wire bytes match the peer partition's compressed sizes, on both ends
    // of each transfer: my fetch accounting and the peer daemon's serve
    // accounting.
    EXPECT_EQ(snap.counter("fs.remote_bytes"), expected_remote_bytes[r]);
    EXPECT_EQ(snap.counter("daemon.fetches_served"), kFilesPerRank);
    EXPECT_EQ(snap.counter("daemon.fetch_bytes"),
              expected_remote_bytes[(r + 1) % kRanks]);

    // The trainer's byte accounting agrees with the fs's.
    EXPECT_EQ(snap.counter("trainer.bytes_read"), results[r].bytes_read);
    EXPECT_EQ(snap.counter("fs.bytes_read"), results[r].bytes_read);

    // Latency histograms saw every operation.
    const auto* open_us = snap.find("fs.open_us");
    ASSERT_NE(open_us, nullptr);
    EXPECT_EQ(open_us->hist.count, total_files);
    const auto* serve_us = snap.find("daemon.serve_us");
    ASSERT_NE(serve_us, nullptr);
    EXPECT_EQ(serve_us->hist.count, kFilesPerRank);
  }
}

// Prefetch-then-train: warming the whole epoch up front must turn every
// training open into a hit, warm each file at most once, and leave no pins.
TEST(ObsGoldenTest, PrefetcherMetricInvariants) {
  constexpr int kRanks = 2;
  constexpr std::size_t kFilesPerRank = 6;
  std::vector<MetricsSnapshot> snaps(kRanks);
  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    core::Instance inst(comm, {});
    std::vector<std::pair<std::string, Bytes>> mine;
    for (std::size_t i = 0; i < kFilesPerRank; ++i) {
      mine.emplace_back("pf/r" + std::to_string(rank) + "/f" + std::to_string(i),
                        testdata::runs_and_noise(8192, 7 * rank + i));
    }
    inst.load_partition_blob(as_view(make_partition(mine, "lz4hc")),
                             static_cast<std::uint32_t>(rank));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    std::vector<std::string> all_files;
    for (int r = 0; r < kRanks; ++r) {
      for (std::size_t i = 0; i < kFilesPerRank; ++i) {
        all_files.push_back("pf/r" + std::to_string(r) + "/f" +
                            std::to_string(i));
      }
    }
    dlsim::Prefetcher pf(inst.fs(), /*threads=*/2, /*fetch_threads=*/2);
    pf.prefetch(all_files);
    pf.wait();

    // Warmed epoch: every subsequent open is a hit.
    for (const auto& path : all_files) {
      const int fd = inst.fs().open(path, posixfs::OpenMode::kRead);
      ASSERT_GE(fd, 0);
      inst.fs().close(fd);
    }
    // Prefetching leaves nothing pinned.
    for (const auto& path : all_files) {
      EXPECT_EQ(inst.fs().cache().open_count(path), 0) << path;
    }
    comm.barrier();
    inst.stop();
    snaps[rank] = inst.metrics().snapshot();
  });

  const std::size_t total_files = kRanks * kFilesPerRank;
  for (std::size_t r = 0; r < kRanks; ++r) {
    const auto& snap = snaps[r];
    EXPECT_EQ(snap.counter("prefetch.warmed"), total_files);
    EXPECT_EQ(snap.counter("prefetch.failures"), 0u);
    // The fetch stage stages each file at most once.
    EXPECT_LE(snap.counter("prefetch.fetch_staged"), total_files);
    // The prefetcher never loads more than the file count (the golden
    // "loads <= files" bound), and the post-warm sweep is all hits.
    EXPECT_EQ(snap.counter("cache.misses"), total_files);
    EXPECT_EQ(snap.counter("cache.hits"), total_files);
    EXPECT_EQ(snap.counter("fs.opens"), 2 * total_files);
    EXPECT_EQ(snap.counter("cache.evictions"), 0u);
  }
}

}  // namespace
}  // namespace fanstore::obs
