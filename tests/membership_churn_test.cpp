// Membership-churn simulation suite — the headline proof of DESIGN.md §13.
//
// The single-threaded scenarios run on tests/cluster_sim.hpp: a
// ManualTimeSource world whose manual-mode ClusterNodes are driven
// deterministically by pump(), optionally under a seeded
// FaultPlan::membership_churn_from_seed adversary. They assert the
// converged invariants the sharded design promises:
//
//   * after convergence every path's metadata lives on exactly
//     `replication_factor` live owners and nowhere else
//   * a lookup is correct from any rank mid-rebalance (prev-ring fallback)
//   * anti-entropy transfers only the delta, byte-accounted
//   * random churn schedules (seed-swept; replay any failure with
//     FANSTORE_CHURN_SEED) always converge to agreeing views
//
// The threaded finale runs real core::Instances: a daemon is killed, a
// fresh spare joins, the cluster re-converges, and a recorded training
// epoch proves exactly-once coverage of the full dataset across the
// survivors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "dlsim/trainer.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "format/partition.hpp"
#include "mpi/comm.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "simnet/virtual_clock.hpp"
#include "tests/cluster_sim.hpp"
#include "tests/sanitizer_env.hpp"
#include "tests/test_data.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fanstore {
namespace {

using testsupport::ClusterSim;

constexpr int scale_ms(int ms) {
  return testsupport::kUnderSanitizer ? ms * 5 : ms;
}

// Mirrors fault_seed_from_env for the churn sweep: tools/ci.sh replays a
// failing sweep seed by exporting FANSTORE_CHURN_SEED.
std::uint64_t churn_seed_from_env(std::uint64_t fallback) {
  const char* env = std::getenv("FANSTORE_CHURN_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || (end != nullptr && *end != '\0')) return fallback;
  return static_cast<std::uint64_t>(v);
}

// Writes `per_rank` files on each member and returns the sorted namespace.
std::vector<std::string> seed_namespace(ClusterSim& sim,
                                        const std::vector<int>& members,
                                        int per_rank) {
  std::vector<std::string> paths;
  for (const int r : members) {
    for (int i = 0; i < per_rank; ++i) {
      const std::string p =
          "ds/r" + std::to_string(r) + "/f" + std::to_string(i);
      sim.put_file(r, p, static_cast<std::uint64_t>(1000 + i));
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// The stat_of path FanStoreFs takes: local store first, then the resolver.
bool can_stat(ClusterSim& sim, int r, const std::string& p) {
  if (sim.store(r).lookup_versioned(p).has_value()) return true;
  return sim.node(r).resolve(p).has_value();
}

// The converged placement invariant: from `anchor`'s (agreed) view, every
// path has exactly min(rf, members) owners, each owner's store holds the
// entry, and no other live rank holds it.
void expect_exactly_rf_owners(ClusterSim& sim, int nranks,
                              const std::vector<std::string>& paths, int rf,
                              int anchor) {
  const auto members = sim.node(anchor).view().ring_members();
  const auto want =
      std::min(static_cast<std::size_t>(rf), members.size());
  for (const auto& p : paths) {
    const auto owners = sim.node(anchor).meta_owners(p);
    ASSERT_EQ(owners.size(), want) << p;
    const std::set<int> owner_set(owners.begin(), owners.end());
    for (const int o : owner_set) {
      EXPECT_TRUE(sim.alive(o)) << "dead owner " << o << " for " << p;
    }
    for (int r = 0; r < nranks; ++r) {
      if (!sim.alive(r)) continue;
      const bool holds = sim.store(r).lookup_versioned(p).has_value();
      EXPECT_EQ(holds, owner_set.count(r) > 0)
          << "path " << p << " rank " << r << " (owners should be exact)";
    }
  }
}

TEST(MembershipChurnTest, SteadyStateIsQuietAndAntiEntropyMovesOnlyTheDelta) {
  ClusterSim::Options o;
  o.nranks = 3;
  o.replication_factor = 2;
  ClusterSim sim(o);
  for (int r = 0; r < 3; ++r) sim.node(r).bootstrap({0, 1, 2});
  const auto paths = seed_namespace(sim, {0, 1, 2}, 12);
  ASSERT_TRUE(sim.converge());
  expect_exactly_rf_owners(sim, 3, paths, 2, /*anchor=*/0);

  // Converged steady state: a full round moves zero bytes everywhere.
  for (int r = 0; r < 3; ++r) {
    const auto st = sim.node(r).rebalance();
    EXPECT_GT(st.sync.digest_rpcs, 0u) << r;  // it did look
    EXPECT_EQ(st.sync.shards_pulled, 0u) << r;
    EXPECT_EQ(st.sync.bytes_pulled, 0u) << r;
    EXPECT_EQ(st.shards_dropped, 0u) << r;
    EXPECT_FALSE(st.sync.changed) << r;
  }

  // One fresh write into a shard rank 0 owns...
  const std::uint32_t nshards = sim.node(0).nshards();
  std::string fresh;
  for (int i = 0; fresh.empty(); ++i) {
    const std::string p = "ds/new" + std::to_string(i);
    if (sim.node(0).owns_shard(cluster::shard_of(p, nshards))) fresh = p;
  }
  sim.put_file(0, fresh, 4242);
  const std::uint32_t shard = cluster::shard_of(fresh, nshards);
  const auto owners = sim.node(0).shard_owners(shard);
  ASSERT_EQ(owners.size(), 2u);
  const int other = owners[0] == 0 ? owners[1] : owners[0];
  ASSERT_NE(other, 0);

  // ...is pulled by the co-owner as exactly one shard: the reply is the
  // [count][shard][len] framing plus rank 0's serialized shard, nothing
  // else — delta-only, byte for byte.
  const std::size_t shard_blob =
      sim.store(0).serialize_shard(shard, nshards).size();
  std::size_t full_namespace = 0;
  for (std::uint32_t s = 0; s < nshards; ++s) {
    const int p = sim.node(0).shard_owners(s).front();
    full_namespace += sim.store(p).serialize_shard(s, nshards).size();
  }
  const auto st = sim.node(other).anti_entropy();
  EXPECT_EQ(st.shards_pulled, 1u);
  EXPECT_EQ(st.entries_applied, 1u);
  EXPECT_EQ(st.bytes_pulled, 12u + shard_blob);
  EXPECT_LT(st.bytes_pulled, full_namespace / 4);
  EXPECT_TRUE(st.changed);
  EXPECT_TRUE(sim.store(other).lookup_versioned(fresh).has_value());

  // A rank that owns neither copy of that shard pulls nothing at all.
  for (int r = 0; r < 3; ++r) {
    if (r == 0 || r == other) continue;
    const auto idle = sim.node(r).anti_entropy();
    EXPECT_EQ(idle.shards_pulled, 0u) << r;
    EXPECT_EQ(idle.bytes_pulled, 0u) << r;
  }
}

TEST(MembershipChurnTest, LookupIsCorrectFromAnyRankMidRebalance) {
  ClusterSim::Options o;
  o.nranks = 4;
  o.replication_factor = 2;
  ClusterSim sim(o);
  for (int r = 0; r < 3; ++r) sim.node(r).bootstrap({0, 1, 2});
  const auto paths = seed_namespace(sim, {0, 1, 2}, 10);
  ASSERT_TRUE(sim.converge());

  // Rank 3 joins: ownership moves, but the old owners have neither pulled
  // nor dropped yet — the system is mid-rebalance on purpose.
  ASSERT_TRUE(sim.node(3).join({0, 1}));
  sim.pump_n(4);

  // The joiner took over real shards...
  int owned = 0;
  for (std::uint32_t s = 0; s < sim.node(3).nshards(); ++s) {
    if (sim.node(3).owns_shard(s)) ++owned;
  }
  EXPECT_GT(owned, 0);

  // ...and every rank — joiner, seeds, and the not-yet-notified rank 2 —
  // still stats every path (current ring, prev-ring fallback, or local).
  for (int r = 0; r < 4; ++r) {
    for (const auto& p : paths) {
      EXPECT_TRUE(can_stat(sim, r, p)) << "rank " << r << " path " << p;
    }
  }

  // After full convergence the exact-rf invariant holds over 4 members.
  ASSERT_TRUE(sim.converge());
  expect_exactly_rf_owners(sim, 4, paths, 2, /*anchor=*/2);
  const auto listed = sim.node(3).enumerate_paths();
  EXPECT_EQ(listed, paths);
}

TEST(MembershipChurnTest, GracefulLeaveDrainsTheLeaverCompletely) {
  ClusterSim::Options o;
  o.nranks = 3;
  o.replication_factor = 2;
  ClusterSim sim(o);
  for (int r = 0; r < 3; ++r) sim.node(r).bootstrap({0, 1, 2});
  const auto paths = seed_namespace(sim, {0, 1, 2}, 8);
  ASSERT_TRUE(sim.converge());

  sim.node(1).leave();
  sim.pump_n(4);
  ASSERT_TRUE(sim.converge());

  // Two ring members remain; every shard's entries moved off the leaver.
  EXPECT_EQ(sim.node(0).view().ring_members(), (std::vector<int>{0, 2}));
  expect_exactly_rf_owners(sim, 3, paths, 2, /*anchor=*/0);
  for (std::uint32_t s = 0; s < sim.node(1).nshards(); ++s) {
    EXPECT_EQ(sim.store(1).shard_digest(s, sim.node(1).nshards()), 0u) << s;
  }
  // The leaver still serves: a lookup through it resolves remotely.
  for (const auto& p : paths) {
    EXPECT_TRUE(can_stat(sim, 1, p)) << p;
  }
}

// The seed sweep: random join/leave/kill/revive schedules under a
// membership_churn_from_seed fault plan (delayed, duplicated, dropped,
// corrupted cluster traffic). Replay any failure with the printed
// FANSTORE_CHURN_SEED. tools/ci.sh sweeps more seeds the same way.
TEST(MembershipChurnTest, SeededChurnSweepConvergesWithExactOwnership) {
  const std::uint64_t base = churn_seed_from_env(0xC41B0553ull);
  const int sweeps = churn_seed_from_env(0) != 0 ? 1 : 3;
  for (int round = 0; round < sweeps; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round) * 1000003ull;
    SCOPED_TRACE("replay with FANSTORE_CHURN_SEED=" + std::to_string(seed));

    constexpr int kRanks = 5;
    constexpr int kRf = 2;
    fault::FaultInjector inj(
        fault::FaultPlan::membership_churn_from_seed(seed, kRanks));
    ClusterSim::Options o;
    o.nranks = kRanks;
    o.replication_factor = kRf;
    o.injector = &inj;
    ClusterSim sim(o);
    for (int r = 0; r < 3; ++r) sim.node(r).bootstrap({0, 1, 2});
    const auto paths = seed_namespace(sim, {0, 1, 2}, 6);
    ASSERT_TRUE(sim.converge(40));

    Rng rng(seed ^ 0x9E3779B9ull);
    std::set<int> joined = {0, 1, 2};
    std::set<int> spares = {3, 4};
    std::set<int> dead;

    const auto two_seeds = [&] {
      std::vector<int> s(joined.begin(), joined.end());
      return std::vector<int>{s[0], s[s.size() / 2]};
    };
    const auto join_with_retry = [&](int r) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        if (sim.node(r).join(two_seeds())) return true;
        sim.pump_n(4);  // the churn plan ate the round; try again
      }
      return false;
    };

    const int events = 4 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < events; ++e) {
      const auto pick = [&](const std::set<int>& from) {
        auto it = from.begin();
        std::advance(it, static_cast<long>(rng.next_below(from.size())));
        return *it;
      };
      if (!spares.empty() && rng.next_below(2) == 0) {
        const int j = pick(spares);
        ASSERT_TRUE(join_with_retry(j)) << "join of rank " << j;
        spares.erase(j);
        joined.insert(j);
      } else if (!dead.empty() && rng.next_below(2) == 0) {
        const int r = pick(dead);
        sim.revive(r);
        ASSERT_TRUE(join_with_retry(r)) << "rejoin of rank " << r;
        dead.erase(r);
        joined.insert(r);
      } else if (joined.size() > 3) {
        const int r = pick(joined);
        if (rng.next_below(2) == 0) {
          sim.node(r).leave();  // graceful: keeps serving while draining
          sim.pump_n(4);
        } else {
          sim.kill(r);
          dead.insert(r);
          // The failure detector: some survivor declares the death.
          std::set<int> witnesses = joined;
          witnesses.erase(r);
          sim.node(pick(witnesses)).declare(r, cluster::MemberState::kDead);
          sim.pump_n(4);
        }
        joined.erase(r);
      }
      ASSERT_TRUE(sim.converge(40)) << "event " << e;
      ASSERT_TRUE(sim.views_agree()) << "event " << e;
    }

    ASSERT_GE(joined.size(), 2u);
    const int anchor = *joined.begin();
    expect_exactly_rf_owners(sim, kRanks, paths, kRf, anchor);
    // Nothing was lost and nothing doubled: the sharded enumeration is the
    // exact namespace, and every live rank can stat every path.
    EXPECT_EQ(sim.node(anchor).enumerate_paths(), paths);
    for (int r = 0; r < kRanks; ++r) {
      if (!sim.alive(r)) continue;
      if (!joined.count(r) && !sim.node(r).view().contains(r)) continue;
      for (const auto& p : paths) {
        EXPECT_TRUE(can_stat(sim, r, p)) << "rank " << r << " path " << p;
      }
    }
    // The adversary really fired.
    auto& fm = inj.metrics();
    EXPECT_GT(fm.counter("fault.msg_delayed").value() +
                  fm.counter("fault.msg_duplicated").value() +
                  fm.counter("fault.msg_dropped").value() +
                  fm.counter("fault.msg_corrupted").value(),
              0u);
  }
}

// ---------------------------------------------------------------------------
// The threaded finale: real Instances, a killed daemon, a fresh joiner, and
// a recorded training epoch proving exactly-once dataset coverage.

Bytes files_partition(const std::vector<std::pair<std::string, Bytes>>& files) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4");
  format::PartitionWriter w;
  for (const auto& [path, data] : files) {
    w.add(format::make_record(path, *codec, reg.id_of(*codec), as_view(data)));
  }
  return w.serialize();
}

Bytes pack_epochs(const std::vector<std::vector<std::string>>& epochs) {
  Bytes out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(epochs.size()));
  for (const auto& epoch : epochs) {
    append_le<std::uint32_t>(out, static_cast<std::uint32_t>(epoch.size()));
    for (const auto& p : epoch) {
      append_le<std::uint16_t>(out, static_cast<std::uint16_t>(p.size()));
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

std::vector<std::vector<std::string>> unpack_epochs(ByteView blob) {
  std::vector<std::vector<std::string>> out;
  std::size_t pos = 4;
  const std::uint32_t nepochs = load_le<std::uint32_t>(blob.data());
  for (std::uint32_t e = 0; e < nepochs; ++e) {
    out.emplace_back();
    const std::uint32_t count = load_le<std::uint32_t>(blob.data() + pos);
    pos += 4;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint16_t len = load_le<std::uint16_t>(blob.data() + pos);
      pos += 2;
      out.back().emplace_back(reinterpret_cast<const char*>(blob.data() + pos),
                              len);
      pos += len;
    }
  }
  return out;
}

// Regression: after rebalance drops a metadata shard, the rank that holds
// the *data* blob may no longer hold the path's metadata. Its daemon then
// reports raw_size 0 ("unknown") and the requester must not read that as a
// stale-version miss — every file stays readable from every rank.
TEST(MembershipChurnTest, FetchServesDataWhoseMetadataShardRebalancedAway) {
  constexpr int kFiles = 18;
  std::vector<std::pair<std::string, Bytes>> dataset;
  for (int i = 0; i < kFiles; ++i) {
    dataset.push_back({"ds/f" + std::to_string(i),
                       testdata::runs_and_noise(3000, 400 + i)});
  }
  mpi::run_world(3, [&](mpi::Comm& comm) {
    const int rank = comm.rank();
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = scale_ms(200);
    opt.fs.retry.max_attempts = 2;
    opt.cluster.replication_factor = 2;
    core::Instance inst(comm, opt);
    std::vector<std::pair<std::string, Bytes>> mine;
    for (int i = rank; i < kFiles; i += 3) {
      mine.push_back(dataset[static_cast<std::size_t>(i)]);
    }
    inst.load_partition_blob(as_view(files_partition(mine)),
                             static_cast<std::uint32_t>(rank), rank);
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();
    for (int round = 0; round < 3; ++round) {
      (void)inst.cluster_node()->rebalance();
      comm.barrier();
    }
    for (int i = 0; i < kFiles; ++i) {
      const auto& path = dataset[static_cast<std::size_t>(i)].first;
      auto vs = inst.metadata().lookup_versioned(path);
      if (!vs) vs = inst.cluster_node()->resolve(path);
      ASSERT_TRUE(vs.has_value()) << "rank " << rank << " " << path;
      EXPECT_EQ(vs->stat.owner_rank, static_cast<std::uint32_t>(i % 3))
          << "rank " << rank << " " << path;
      EXPECT_EQ(vs->stat.size, dataset[static_cast<std::size_t>(i)].second.size())
          << "rank " << rank << " " << path;
    }
    comm.barrier();
    for (const auto& [path, data] : dataset) {
      const int fd = inst.fs().open(path, posixfs::OpenMode::kRead);
      ASSERT_GE(fd, 0) << "rank " << rank << " " << path;
      Bytes got(data.size());
      ASSERT_EQ(inst.fs().read(fd, MutByteView(got.data(), got.size())),
                static_cast<std::int64_t>(got.size()))
          << "rank " << rank << " " << path;
      EXPECT_EQ(got, data) << "rank " << rank << " " << path;
      inst.fs().close(fd);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(MembershipChurnTest, KillThenAddFreshMemberGivesExactlyOnceEpochCoverage) {
  constexpr int kFiles = 18;
  constexpr int kEpochs = 2;
  constexpr int kTrainTag = 700;
  // Real startup flow: prep the dataset into partitions on a shared FS so
  // load_from_shared + replicate_ring(1) place data replicas one rank
  // around the ring (the kill below needs rank 1's data reachable via
  // failover to rank 2).
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs src;
    for (int i = 0; i < kFiles; ++i) {
      posixfs::write_file(src, "ds/f" + std::to_string(i),
                          as_view(testdata::runs_and_noise(3000, 400 + i)));
    }
    prep::PrepOptions popt;
    popt.num_partitions = 8;
    popt.compressor = "lz4";
    prep::prepare_dataset(src, "ds", shared, "packed", popt);
  }
  fault::FaultPlan plan;  // empty: manual kill control only
  fault::FaultInjector inj(plan);

  mpi::run_world(
      4,
      [&](mpi::Comm& comm) {
        const int rank = comm.rank();
        simnet::VirtualClock clock;
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = scale_ms(40);
        opt.fs.failover_hops = 2;
        opt.fs.retry.max_attempts = 3;
        opt.fs.retry.base_delay_ms = 1;
        opt.fs.retry.max_delay_ms = 8;
        opt.fs.clock = &clock;
        opt.fault = &inj;
        opt.cluster.replication_factor = 2;
        opt.cluster.initial_members = {0, 1, 2};
        opt.cluster.member = rank != 3;
        core::Instance inst(comm, opt);

        // Every rank holds data (round-robin partitions + ring replicas);
        // only ranks 0..2 are metadata-cluster members. Rank 3 is a
        // metadata *spare*: its own files' metadata stays rank-local until
        // it joins and rebalance pushes those shards to their owners.
        const auto manifest = prep::load_manifest(shared, "packed");
        inst.load_from_shared(shared, manifest.partition_paths());
        inst.replicate_ring(1);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        // --- the churn: kill rank 1's process, add rank 3 -------------
        if (rank == 0) inj.kill_daemon(1);
        comm.barrier();
        if (rank == 0) {
          inst.cluster_node()->declare(1, cluster::MemberState::kDead);
        }
        comm.barrier();
        if (rank == 3) {
          ASSERT_TRUE(inst.cluster_node()->join({0, 2}));
        }
        comm.barrier();
        // Drive rebalance rounds in lockstep until globally quiet.
        for (int round = 0; round < 4; ++round) {
          if (rank != 1) (void)inst.cluster_node()->rebalance();
          comm.barrier();
        }

        // Converged: the survivors agree on {0, 2, 3} with rank 1 dead.
        Bytes digest(8);
        if (rank != 1) {
          store_le<std::uint64_t>(digest.data(),
                                  inst.cluster_node()->view_digest());
        }
        const auto digests = comm.allgather(as_view(digest));
        if (rank != 1) {
          EXPECT_EQ(digests[0], digests[2]);
          EXPECT_EQ(digests[0], digests[3]);
          EXPECT_EQ(inst.cluster_node()->view().ring_members(),
                    (std::vector<int>{0, 2, 3}));
        }

        // The trainer's enumeration step: rank 0 lists the sharded
        // namespace and broadcasts the canonical order.
        Bytes listing;
        if (rank == 0) {
          auto all = inst.dataset_paths();
          std::sort(all.begin(), all.end());
          EXPECT_EQ(all.size(), static_cast<std::size_t>(kFiles));
          for (const auto& p : all) {
            listing.insert(listing.end(), p.begin(), p.end());
            listing.push_back('\n');
          }
        }
        listing = comm.bcast(0, as_view(listing));
        std::vector<std::string> all_paths;
        for (std::size_t start = 0, i = 0; i < listing.size(); ++i) {
          if (listing[i] == '\n') {
            all_paths.emplace_back(
                reinterpret_cast<const char*>(listing.data() + start),
                i - start);
            start = i + 1;
          }
        }
        ASSERT_EQ(all_paths.size(), static_cast<std::size_t>(kFiles));

        // --- the epoch: survivors split the namespace three ways -------
        if (rank != 1) {
          const int slot = rank == 0 ? 0 : rank == 2 ? 1 : 2;
          std::vector<std::string> mine;
          for (std::size_t i = 0; i < all_paths.size(); ++i) {
            if (static_cast<int>(i % 3) == slot) mine.push_back(all_paths[i]);
          }
          dlsim::TrainerOptions topt;
          topt.epochs = kEpochs;
          topt.batch_per_rank = 2;
          topt.t_iter_s = 1e-6;
          topt.seed = static_cast<std::uint64_t>(rank) * 7 + 1;
          topt.io_clock = &clock;
          topt.metrics = &inst.metrics();
          topt.record_epoch_files = true;
          const auto result = dlsim::run_training(inst.fs(), mine, topt);
          ASSERT_EQ(result.epoch_files.size(),
                    static_cast<std::size_t>(kEpochs));
          if (rank != 0) {
            comm.send(0, kTrainTag, pack_epochs(result.epoch_files));
          } else {
            auto merged = result.epoch_files;
            for (int peer = 0; peer < 2; ++peer) {
              const auto msg = comm.recv(mpi::kAnySource, kTrainTag);
              const auto theirs = unpack_epochs(as_view(msg.payload));
              ASSERT_EQ(theirs.size(), merged.size());
              for (std::size_t e = 0; e < merged.size(); ++e) {
                merged[e].insert(merged[e].end(), theirs[e].begin(),
                                 theirs[e].end());
              }
            }
            // Exactly-once: each epoch's union across the survivors is the
            // full dataset, no file missing, no file doubled.
            std::vector<std::string> want = all_paths;
            std::sort(want.begin(), want.end());
            for (std::size_t e = 0; e < merged.size(); ++e) {
              std::sort(merged[e].begin(), merged[e].end());
              EXPECT_EQ(merged[e], want) << "epoch " << e;
            }
          }
          // The fresh member really works through the sharded service:
          // resolving a path whose shard it does not own is a remote
          // lookup. (With rf=2 of 3 members it owns 2/3 of the shard
          // space, so check there actually is a non-owned path first.)
          if (rank == 3) {
            auto* node = inst.cluster_node();
            std::size_t nonlocal = 0;
            for (const auto& p : all_paths) {
              const auto shard = cluster::shard_of(p, node->nshards());
              if (!node->owns_shard(shard)) ++nonlocal;
              EXPECT_TRUE(node->resolve(p).has_value()) << p;
            }
            if (nonlocal > 0) {
              EXPECT_GT(
                  inst.metrics().counter("cluster.lookups_remote").value(),
                  0u);
            }
          }
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_GT(inj.metrics().counter("fault.daemon_dropped").value(), 0u);
}

}  // namespace
}  // namespace fanstore
