// Minimal leveled logging to stderr; quiet by default for benchmarks.
#pragma once

#include <sstream>
#include <string>

namespace fanstore {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  detail::log_emit(level, os.str());
}

#define FANSTORE_LOG_DEBUG(...) ::fanstore::log_at(::fanstore::LogLevel::kDebug, __VA_ARGS__)
#define FANSTORE_LOG_INFO(...) ::fanstore::log_at(::fanstore::LogLevel::kInfo, __VA_ARGS__)
#define FANSTORE_LOG_WARN(...) ::fanstore::log_at(::fanstore::LogLevel::kWarn, __VA_ARGS__)
#define FANSTORE_LOG_ERROR(...) ::fanstore::log_at(::fanstore::LogLevel::kError, __VA_ARGS__)

}  // namespace fanstore
