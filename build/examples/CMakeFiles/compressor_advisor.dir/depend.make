# Empty dependencies file for compressor_advisor.
# This may be replaced when dependencies are built.
