// Client-side Vfs that forwards reads/metadata over the daemon's socket
// front door — what the LD_PRELOAD interceptor would use inside an
// unmodified training process. Read-only: the multi-read side of
// FanStore's model (writes stay in-process via FanStoreFs).
//
// Speaks any ipc::Endpoint ("unix:/path", "tcp:127.0.0.1:port", or a bare
// UDS path for back-compat), against either server implementation (the
// event-driven ipc::Server or the legacy thread-per-connection UdsServer —
// the framed protocol is identical). Failed round trips reconnect and
// retry with deterministic exponential backoff, counting "retry.*".
#pragma once

#include <map>
#include <memory>
#include <string>

#include "ipc/transport.hpp"
#include "obs/metrics.hpp"
#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::ipc {

struct ClientOptions {
  /// Round-trip attempts per call (>= 1); 1 disables retries. A failed
  /// attempt drops the connection and reconnects before the next one.
  int max_attempts = 1;
  /// Backoff before attempt k (k >= 2) is min(base << (k-2), max) ms.
  int base_delay_ms = 2;
  int max_delay_ms = 200;
  /// Receives "retry.attempts" / "retry.exhausted"; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

class UdsClientVfs final : public posixfs::Vfs {
 public:
  /// `endpoint_spec` is anything Endpoint::parse accepts.
  explicit UdsClientVfs(std::string endpoint_spec, ClientOptions options = {});
  ~UdsClientVfs() override;

  UdsClientVfs(const UdsClientVfs&) = delete;
  UdsClientVfs& operator=(const UdsClientVfs&) = delete;

  /// Connects (lazily re-connects after errors); false if the daemon is
  /// not reachable.
  bool connect();

  int open(std::string_view path, posixfs::OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, posixfs::Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<posixfs::Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

 private:
  struct OpenFile {
    std::shared_ptr<const Bytes> data;
    std::int64_t offset = 0;
  };
  struct OpenDir {
    std::vector<posixfs::Dirent> entries;
    std::size_t next = 0;
  };

  /// One request/response round trip (serialized per connection), with
  /// reconnect-and-retry per the ClientOptions.
  std::optional<Bytes> call(ByteView request) EXCLUDES(io_mu_, mu_);
  bool connect_locked() REQUIRES(io_mu_);

  Endpoint endpoint_;
  bool endpoint_valid_ = false;
  ClientOptions options_;
  obs::Counter* retry_attempts_ = nullptr;  // null when metrics is null
  obs::Counter* retry_exhausted_ = nullptr;
  // io_mu_ and mu_ are never held together: every call() round trip
  // finishes before the fd tables are touched.
  sync::Mutex io_mu_{"uds_client.io_mu"};  // serializes socket round trips
  int sock_ GUARDED_BY(io_mu_) = -1;

  sync::Mutex mu_{"uds_client.mu"};  // fd tables
  std::map<int, OpenFile> open_files_ GUARDED_BY(mu_);
  std::map<int, OpenDir> open_dirs_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
  int next_dir_ GUARDED_BY(mu_) = 1;
};

}  // namespace fanstore::ipc
