// MSB-first bit-level I/O used by the entropy coders (Huffman, LZSS, LZW).
#pragma once

#include <cstdint>

#include "compress/compressor.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {

/// Writes bit fields MSB-first into a growing byte buffer.
class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}

  /// Appends the low `bits` bits of `value` (bits in [0, 32]).
  void put(std::uint32_t value, int bits) {
    acc_ = (acc_ << bits) | (static_cast<std::uint64_t>(value) & mask(bits));
    nbits_ += bits;
    while (nbits_ >= 8) {
      nbits_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> nbits_));
    }
  }

  /// Pads with zero bits to the next byte boundary.
  void align() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - nbits_)));
      nbits_ = 0;
    }
    acc_ = 0;
  }

 private:
  static std::uint64_t mask(int bits) {
    return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  }
  Bytes& out_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

/// Reads bit fields MSB-first; throws CorruptDataError when the stream is
/// exhausted before a requested field completes.
class BitReader {
 public:
  explicit BitReader(ByteView in) : p_(in.data()), end_(in.data() + in.size()) {}

  std::uint32_t get(int bits) {
    while (nbits_ < bits) {
      if (p_ == end_) throw CorruptDataError("bit stream truncated");
      acc_ = (acc_ << 8) | *p_++;
      nbits_ += 8;
    }
    nbits_ -= bits;
    return static_cast<std::uint32_t>((acc_ >> nbits_) & mask(bits));
  }

  std::uint32_t get1() { return get(1); }

  /// Returns the next `bits` bits without consuming them, zero-padded when
  /// the stream has fewer bits left (bits in [1, 32]). Pair with skip():
  /// a lookup that resolved to an n-bit code consumes exactly n bits, and
  /// skip() still faults if those n bits were padding.
  std::uint32_t peek(int bits) {
    while (nbits_ < bits && p_ != end_) {
      acc_ = (acc_ << 8) | *p_++;
      nbits_ += 8;
    }
    if (nbits_ >= bits) {
      return static_cast<std::uint32_t>((acc_ >> (nbits_ - bits)) & mask(bits));
    }
    return static_cast<std::uint32_t>((acc_ << (bits - nbits_)) & mask(bits));
  }

  /// Consumes `bits` bits; throws CorruptDataError when fewer remain.
  void skip(int bits) {
    while (nbits_ < bits) {
      if (p_ == end_) throw CorruptDataError("bit stream truncated");
      acc_ = (acc_ << 8) | *p_++;
      nbits_ += 8;
    }
    nbits_ -= bits;
  }

  /// Discards buffered bits up to the next byte boundary.
  void align() { nbits_ -= nbits_ % 8; }

  /// Bytes consumed so far, rounded up to whole bytes.
  std::size_t consumed(ByteView in) const {
    return static_cast<std::size_t>(p_ - in.data());
  }

 private:
  static std::uint64_t mask(int bits) {
    return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

}  // namespace fanstore::compress
