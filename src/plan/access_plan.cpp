#include "plan/access_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace fanstore::plan {

void epoch_shuffle(std::vector<std::string>& files, Rng& rng) {
  for (std::size_t i = files.size(); i > 1; --i) {
    std::swap(files[i - 1], files[rng.next_below(i)]);
  }
}

namespace {

obs::MetricsRegistry& registry_or_global(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
}

}  // namespace

AccessPlan::AccessPlan(const std::vector<std::string>& files,
                       const PlanOptions& opt, obs::MetricsRegistry* metrics) {
  if (files.empty()) throw std::invalid_argument("plan: empty file list");
  if (opt.batch_per_rank == 0) {
    throw std::invalid_argument("plan: batch_per_rank must be positive");
  }
  if (opt.nranks < 1 || opt.rank < 0 || opt.rank >= opt.nranks) {
    throw std::invalid_argument("plan: invalid rank/nranks");
  }
  mispredicts_ = &registry_or_global(metrics).counter("plan.mispredicts");

  // Replay the trainer's loop exactly (dlsim/trainer.cpp): one carried RNG
  // reshuffling `order` per epoch, a global-batch window per iteration,
  // this rank's batch_per_rank slice of it, wrap via % order.size().
  std::vector<std::string> order = files;
  Rng rng(opt.seed);
  const std::size_t global_batch =
      opt.batch_per_rank *
      (opt.global_shuffle ? static_cast<std::size_t>(opt.nranks) : 1);
  const std::size_t iters_per_epoch =
      std::max<std::size_t>(1, files.size() / global_batch);

  std::unordered_map<std::string_view, const std::string*> interned;
  auto intern = [&](const std::string& p) {
    const auto it = interned.find(p);
    if (it != interned.end()) return it->second;
    paths_.push_back(std::make_unique<std::string>(p));
    const std::string* stored = paths_.back().get();
    interned.emplace(*stored, stored);
    return stored;
  };

  std::size_t iterations = 0;
  bool done = false;
  for (int epoch = 0; epoch < opt.epochs && !done; ++epoch) {
    epoch_shuffle(order, rng);
    for (std::size_t it = 0; it < iters_per_epoch && !done; ++it) {
      const std::size_t window =
          it * global_batch +
          (opt.global_shuffle
               ? static_cast<std::size_t>(opt.rank) * opt.batch_per_rank
               : 0);
      for (std::size_t b = 0; b < opt.batch_per_rank; ++b) {
        seq_.push_back(intern(order[(window + b) % order.size()]));
      }
      iterations++;
      if (opt.max_iterations > 0 && iterations >= opt.max_iterations) {
        done = true;
      }
    }
  }
  index_sequence();
}

AccessPlan::AccessPlan(std::vector<std::string> sequence,
                       obs::MetricsRegistry* metrics) {
  mispredicts_ = &registry_or_global(metrics).counter("plan.mispredicts");
  std::unordered_map<std::string_view, const std::string*> interned;
  for (auto& p : sequence) {
    const auto it = interned.find(p);
    if (it != interned.end()) {
      seq_.push_back(it->second);
      continue;
    }
    paths_.push_back(std::make_unique<std::string>(std::move(p)));
    const std::string* stored = paths_.back().get();
    interned.emplace(*stored, stored);
    seq_.push_back(stored);
  }
  index_sequence();
}

void AccessPlan::index_sequence() {
  positions_.reserve(paths_.size());
  for (std::size_t i = 0; i < seq_.size(); ++i) {
    positions_[*seq_[i]].push_back(i);  // ascending by construction
  }
}

void AccessPlan::record_access(std::string_view path) {
  const std::size_t pos = cursor_.load(std::memory_order_relaxed);
  if (pos >= seq_.size() || *seq_[pos] != path) {
    mispredicts_->inc();
    if (pos >= seq_.size()) return;  // schedule exhausted: nothing to advance
  }
  cursor_.store(pos + 1, std::memory_order_release);
}

std::size_t AccessPlan::next_use_at(const std::string& path,
                                    std::size_t pos) const {
  const auto it = positions_.find(path);
  if (it == positions_.end()) return npos;
  const auto& v = it->second;
  const auto lb = std::lower_bound(v.begin(), v.end(), pos);
  return lb == v.end() ? npos : *lb;
}

std::size_t AccessPlan::access_count(const std::string& path) const {
  const auto it = positions_.find(path);
  return it == positions_.end() ? 0 : it->second.size();
}

std::vector<std::string> AccessPlan::hottest(std::size_t n) const {
  // (count, first appearance) ranking: deterministic for equal counts.
  std::vector<const std::string*> ranked;
  ranked.reserve(positions_.size());
  for (const auto& p : paths_) ranked.push_back(p.get());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [this](const std::string* a, const std::string* b) {
                     const auto& va = positions_.at(*a);
                     const auto& vb = positions_.at(*b);
                     if (va.size() != vb.size()) return va.size() > vb.size();
                     return va.front() < vb.front();
                   });
  if (ranked.size() > n) ranked.resize(n);
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (const std::string* p : ranked) out.push_back(*p);
  return out;
}

std::uint64_t AccessPlan::next_use_distance(const std::string& path) const {
  const std::size_t pos = cursor_.load(std::memory_order_acquire);
  const std::size_t next = next_use_at(path, pos);
  if (next == npos) return kNever;
  return static_cast<std::uint64_t>(next - pos);
}

}  // namespace fanstore::plan
