# Empty compiler generated dependencies file for imagenet_resnet.
# This may be replaced when dependencies are built.
