// Synthetic dataset generators mirroring the six real-world datasets of
// Table II. The paper's datasets (EM microscopy TIFF, tokamak NPZ, lung
// NIfTI, astronomy FITS, ImageNet JPEG, language text) are proprietary or
// impractically large; these generators reproduce each format's *byte-level
// redundancy structure* — which is what determines the compression-ratio /
// decompression-cost trade-off — at configurable scale. Ratio orderings of
// Table IV (lung >> EM/astro/language/tokamak >> ImageNet ~ 1.0) emerge
// from the generated content, not from hard-coded numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"

namespace fanstore::dlsim {

enum class DatasetKind {
  kEmTif,        // 3D SEM imagery: smooth 8-bit micrographs (SRGAN input)
  kTokamakNpz,   // reactor sensor time series: tiny float32 files (FRNN)
  kLungNii,      // CT volumes: mostly-zero int16 (highest ratios)
  kAstroFits,    // star fields: quantized-noise float32 + ASCII header
  kImagenetJpg,  // already-entropy-coded: incompressible (ratio ~ 1.0)
  kLanguageTxt,  // English-like Markov text
};

struct DatasetSpec {
  DatasetKind kind;
  std::string name;       // matches Table II row
  std::string extension;  // "tif", "npz", ...
  std::size_t file_bytes; // generated per-file size (scaled down from paper)
  int num_dirs;           // directory fan-out when materialized
  // Paper-scale statistics (Table II) for capacity-planning calculations.
  double paper_total_bytes;
  double paper_num_files;
  double paper_avg_file_bytes;
};

/// Specs for all six datasets.
DatasetSpec dataset_spec(DatasetKind kind);
std::vector<DatasetSpec> all_dataset_specs();

/// Deterministically generates file `index` of the dataset (same bytes for
/// the same (kind, index, seed) everywhere).
Bytes generate_file(DatasetKind kind, std::uint64_t index, std::uint64_t seed = 0);

/// Same content family at an explicit size (large-scale benches shrink the
/// per-file size to keep hundreds of rank-threads in RAM).
Bytes generate_file_sized(DatasetKind kind, std::uint64_t index, std::size_t bytes,
                          std::uint64_t seed = 0);

/// Writes `num_files` generated files into `fs` under `root`, spread over
/// the spec's directory fan-out; returns the (sorted) file paths.
std::vector<std::string> materialize_dataset(posixfs::Vfs& fs, const std::string& root,
                                             DatasetKind kind, std::size_t num_files,
                                             std::uint64_t seed = 0);

}  // namespace fanstore::dlsim
