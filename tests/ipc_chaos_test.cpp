// Chaos integration for the socket front door (DESIGN.md §8 + §11): a
// trainer epoch runs against a real FanStore instance over real TCP
// loopback, but every byte flows through a seeded chaos proxy that keeps
// killing connections mid-reply. The client's reconnect-and-retry envelope
// must absorb every kill: training completes, every file read is
// byte-identical to a direct in-process read, and the retry.* counters
// prove the faults actually fired.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "dlsim/trainer.hpp"
#include "ipc/server.hpp"
#include "ipc/uds_client.hpp"
#include "mpi/comm.hpp"
#include "simnet/virtual_clock.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace fanstore {
namespace {

// TCP forwarder that cuts each connection after a seeded byte budget of
// server->client traffic — a deterministic-policy stand-in for a flaky
// network path. Budgets always exceed one full reply, so a retried call
// makes progress and the client can never livelock.
class ChaosProxy {
 public:
  ChaosProxy(const std::string& upstream_host, std::uint16_t upstream_port,
             std::uint64_t seed)
      : upstream_host_(upstream_host), upstream_port_(upstream_port),
        rng_(seed) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("proxy: socket failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("proxy: bind/listen failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~ChaosProxy() { stop(); }

  std::uint16_t port() const { return port_; }
  int kills() const { return kills_.load(); }

  void stop() {
    if (stopping_.exchange(true)) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    ::close(listen_fd_);
    std::vector<std::thread> pumps;
    {
      sync::MutexLock lk(mu_);
      for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
      pumps.swap(pumps_);
    }
    for (auto& t : pumps) t.join();
    sync::MutexLock lk(mu_);
    for (const int fd : live_fds_) ::close(fd);
    live_fds_.clear();
  }

 private:
  void accept_loop() {
    for (;;) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR && !stopping_.load()) continue;
        return;
      }
      const int upstream = connect_upstream();
      if (upstream < 0) {
        ::close(client);
        continue;
      }
      std::uint64_t budget;
      {
        sync::MutexLock lk(mu_);
        // First connection dies fast so at least one mid-reply kill is
        // guaranteed; later budgets still force kills every few replies.
        budget = first_ ? 6 << 10 : (6 << 10) + rng_.next_below(48 << 10);
        first_ = false;
        live_fds_.push_back(client);
        live_fds_.push_back(upstream);
        pumps_.emplace_back([this, client, upstream] {
          pump(client, upstream, 0);  // client->server: unlimited
        });
        pumps_.emplace_back([this, client, upstream, budget] {
          pump(upstream, client, budget);  // server->client: budgeted
        });
      }
    }
  }

  int connect_upstream() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(upstream_port_);
    ::inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }

  // Copies src->dst until EOF/error or (budget > 0) the budget runs out,
  // then severs both directions so the paired pump exits too.
  void pump(int src, int dst, std::uint64_t budget) {
    std::uint8_t buf[16 << 10];
    std::uint64_t moved = 0;
    for (;;) {
      const ssize_t r = ::recv(src, buf, sizeof(buf), 0);
      if (r <= 0) {
        if (r < 0 && errno == EINTR) continue;
        break;
      }
      std::size_t off = 0;
      bool write_failed = false;
      while (off < static_cast<std::size_t>(r)) {
        const ssize_t w = ::send(dst, buf + off,
                                 static_cast<std::size_t>(r) - off,
                                 MSG_NOSIGNAL);
        if (w <= 0) {
          if (w < 0 && errno == EINTR) continue;
          write_failed = true;
          break;
        }
        off += static_cast<std::size_t>(w);
      }
      if (write_failed) break;
      moved += static_cast<std::uint64_t>(r);
      if (budget > 0 && moved >= budget) {
        kills_.fetch_add(1);
        break;
      }
    }
    ::shutdown(src, SHUT_RDWR);
    ::shutdown(dst, SHUT_RDWR);
  }

  std::string upstream_host_;
  std::uint16_t upstream_port_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<int> kills_{0};
  sync::Mutex mu_{"test.chaos_proxy.mu"};
  Rng rng_ GUARDED_BY(mu_);
  bool first_ GUARDED_BY(mu_) = true;
  std::vector<std::thread> pumps_ GUARDED_BY(mu_);
  std::vector<int> live_fds_ GUARDED_BY(mu_);
};

// One-partition blob holding `paths` with deterministic contents.
Bytes partition_with(const std::vector<std::string>& paths) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4");
  format::PartitionWriter w;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    w.add(format::make_record(paths[i], *codec, reg.id_of(*codec),
                              as_view(testdata::random_bytes(4000, i + 1))));
  }
  return w.serialize();
}

TEST(IpcChaosTest, FaultedTrainerEpochOverTcpIsByteIdentical) {
  std::vector<std::string> files;
  for (int i = 0; i < 24; ++i) files.push_back("ds/f" + std::to_string(i));

  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.serve_endpoints = {"tcp:127.0.0.1:0"};
    core::Instance inst(comm, opt);
    inst.load_partition_blob(as_view(partition_with(files)), 0);
    inst.exchange_metadata();
    inst.start_daemon();
    ASSERT_NE(inst.ipc_server(), nullptr);
    ASSERT_EQ(inst.ipc_server()->endpoints().size(), 1u);
    const ipc::Endpoint served = inst.ipc_server()->endpoints()[0];
    ASSERT_NE(served.port, 0);

    ChaosProxy proxy(served.host, served.port, /*seed=*/42);
    obs::MetricsRegistry client_metrics;
    ipc::ClientOptions copt;
    copt.max_attempts = 16;
    copt.base_delay_ms = 1;
    copt.max_delay_ms = 16;
    copt.metrics = &client_metrics;
    ipc::UdsClientVfs client(
        "tcp:127.0.0.1:" + std::to_string(proxy.port()), copt);

    // Trainer <-> daemon traffic across the chaotic wire: a full epoch of
    // reads must complete despite the proxy's kills.
    simnet::VirtualClock clock;
    dlsim::TrainerOptions topt;
    topt.io_clock = &clock;
    topt.epochs = 2;
    topt.batch_per_rank = 4;
    topt.t_iter_s = 0.001;
    topt.async_io = false;
    const auto result = dlsim::run_training(client, files, topt);
    EXPECT_EQ(result.files_read, files.size() * 2);
    EXPECT_GT(result.bytes_read, 0u);

    // Byte-identical: every proxied read matches the in-process truth.
    for (const auto& path : files) {
      const auto via_proxy = posixfs::read_file(client, path);
      const auto direct = posixfs::read_file(inst.fs(), path);
      ASSERT_TRUE(via_proxy.has_value()) << path;
      ASSERT_TRUE(direct.has_value()) << path;
      EXPECT_EQ(*via_proxy, *direct) << path;
    }

    // The chaos actually happened, and the retry envelope absorbed it.
    EXPECT_GT(proxy.kills(), 0);
    EXPECT_GT(client_metrics.counter("retry.attempts").value(), 0u);
    EXPECT_EQ(client_metrics.counter("retry.exhausted").value(), 0u);

    proxy.stop();
    inst.stop();
  });
}

}  // namespace
}  // namespace fanstore
