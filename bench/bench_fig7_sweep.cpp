// Figure 7: the full compressor-configuration sweep (the paper's "180
// compressor and option combinations" via lzbench) on the EM/TIF and
// Tokamak/NPZ datasets — compression ratio vs per-file decompression time.
//
// Prints every configuration as one row (the figure's scatter points) plus
// the two frontier markers the paper highlights: fastest decompression
// (green cross) and highest ratio (red plus).
#include <algorithm>

#include "bench/bench_util.hpp"
#include "compress/registry.hpp"
#include "dlsim/datagen.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

struct Point {
  std::string name;
  double ratio;
  double decomp_us_per_file;
};

std::vector<Point> sweep(dlsim::DatasetKind kind, int nfiles) {
  std::vector<Bytes> samples;
  for (int i = 0; i < nfiles; ++i) {
    samples.push_back(dlsim::generate_file(kind, static_cast<std::uint64_t>(i)));
  }
  std::vector<Point> points;
  for (const auto& entry : compress::Registry::instance().all()) {
    std::size_t raw = 0, packed_total = 0;
    std::vector<Bytes> packed;
    for (const auto& s : samples) {
      packed.push_back(entry.codec->compress(as_view(s)));
      raw += s.size();
      packed_total += packed.back().size();
    }
    // Warm + best-of-3 decompression timing over all samples.
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (void)entry.codec->decompress(as_view(packed[i]), samples[i].size());
    }
    double best = 1e99;
    for (int pass = 0; pass < 3; ++pass) {
      WallTimer t;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        (void)entry.codec->decompress(as_view(packed[i]), samples[i].size());
      }
      best = std::min(best, t.elapsed_sec());
    }
    points.push_back(Point{entry.codec->name(),
                           static_cast<double>(raw) / static_cast<double>(packed_total),
                           best / static_cast<double>(samples.size()) * 1e6});
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.decomp_us_per_file < b.decomp_us_per_file;
  });
  return points;
}

void report(const char* title, dlsim::DatasetKind kind, int nfiles) {
  bench::section(title);
  const auto points = sweep(kind, nfiles);
  std::printf("%zu compressor configurations swept\n\n", points.size());
  bench::Table table({"configuration", "ratio", "decomp us/file"});
  for (const auto& p : points) {
    table.row({p.name, bench::fmt("%.2f", p.ratio), bench::fmt("%.1f", p.decomp_us_per_file)});
  }
  table.print();
  // The paper's "fastest" marker means fastest *compressing* config, not
  // the store/memcpy baseline.
  Point fastest = points.front();
  for (const auto& p : points) {
    if (p.ratio > 1.1) {
      fastest = p;
      break;
    }
  }
  const auto best_ratio = *std::max_element(
      points.begin(), points.end(),
      [](const Point& a, const Point& b) { return a.ratio < b.ratio; });
  std::printf("\n[green cross] fastest decompression: %s (%.1f us/file, ratio %.2f)\n",
              fastest.name.c_str(), fastest.decomp_us_per_file, fastest.ratio);
  std::printf("[red plus]    highest ratio: %s (ratio %.2f, %.1f us/file)\n",
              best_ratio.name.c_str(), best_ratio.ratio, best_ratio.decomp_us_per_file);
  std::printf(
      "paper shape: fast-LZ configs sit at ratio 1-3 within ~10x of memcpy;\n"
      "highest-ratio configs (lzma/xz class) cost 2-3 orders of magnitude more.\n");
}

}  // namespace

int main() {
  report("Figure 7(a): EM / TIF sweep (host CPU standing in for SKX/POWER9)",
         dlsim::DatasetKind::kEmTif, 2);
  report("Figure 7(b): Tokamak / NPZ sweep", dlsim::DatasetKind::kTokamakNpz, 64);
  return 0;
}
