// "store" (identity) and PackBits-style RLE codecs.
#include <algorithm>

#include "compress/codecs.hpp"

namespace fanstore::compress {
namespace {

class StoreCompressor final : public Compressor {
 public:
  std::string name() const override { return "store"; }

  Bytes compress(ByteView src) const override { return Bytes(src.begin(), src.end()); }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    if (src.size() != original_size) {
      throw CorruptDataError("store: size mismatch");
    }
    return Bytes(src.begin(), src.end());
  }
};

// PackBits control byte: n in [0,127] => copy n+1 literal bytes;
// n in [129,255] => repeat next byte 257-n times; 128 is unused.
class RleCompressor final : public Compressor {
 public:
  std::string name() const override { return "rle"; }

  Bytes compress(ByteView src) const override {
    Bytes out;
    out.reserve(src.size() / 2 + 16);
    std::size_t i = 0;
    const std::size_t n = src.size();
    while (i < n) {
      // Measure the run starting at i.
      std::size_t run = 1;
      while (i + run < n && src[i + run] == src[i] && run < 128) ++run;
      if (run >= 3) {
        out.push_back(static_cast<std::uint8_t>(257 - run));
        out.push_back(src[i]);
        i += run;
        continue;
      }
      // Collect a literal stretch up to the next run of >= 3 (max 128).
      std::size_t lit_end = i;
      while (lit_end < n && lit_end - i < 128) {
        std::size_t r = 1;
        while (lit_end + r < n && src[lit_end + r] == src[lit_end] && r < 3) ++r;
        if (r >= 3) break;
        ++lit_end;
      }
      if (lit_end == i) lit_end = i + 1;  // run of >=3 right here handled above
      const std::size_t len = lit_end - i;
      out.push_back(static_cast<std::uint8_t>(len - 1));
      out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(i),
                 src.begin() + static_cast<std::ptrdiff_t>(lit_end));
      i = lit_end;
    }
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    Bytes out;
    out.reserve(original_size);
    std::size_t i = 0;
    while (out.size() < original_size) {
      if (i >= src.size()) throw CorruptDataError("rle: truncated stream");
      const std::uint8_t ctrl = src[i++];
      if (ctrl <= 127) {
        const std::size_t len = std::size_t{ctrl} + 1;
        if (i + len > src.size()) throw CorruptDataError("rle: truncated literals");
        if (out.size() + len > original_size) throw CorruptDataError("rle: overlong output");
        out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(i),
                   src.begin() + static_cast<std::ptrdiff_t>(i + len));
        i += len;
      } else if (ctrl == 128) {
        throw CorruptDataError("rle: invalid control byte 128");
      } else {
        const std::size_t len = 257 - std::size_t{ctrl};
        if (i >= src.size()) throw CorruptDataError("rle: truncated run byte");
        if (out.size() + len > original_size) throw CorruptDataError("rle: overlong output");
        out.insert(out.end(), len, src[i++]);
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Compressor> make_store() { return std::make_unique<StoreCompressor>(); }
std::unique_ptr<Compressor> make_rle() { return std::make_unique<RleCompressor>(); }

}  // namespace fanstore::compress
