#include "dlsim/tfrecord.hpp"

#include <stdexcept>

#include "util/crc32.hpp"

namespace fanstore::dlsim {

Bytes build_tfrecord_shard(const std::vector<Bytes>& items) {
  Bytes out;
  std::size_t total = 0;
  for (const auto& it : items) total += it.size() + 12;
  out.reserve(total);
  for (const auto& it : items) {
    append_le<std::uint64_t>(out, it.size());
    append_le<std::uint32_t>(out, crc32(as_view(it)));
    out.insert(out.end(), it.begin(), it.end());
  }
  return out;
}

std::optional<ByteView> TfRecordReader::next() {
  if (pos_ == shard_.size()) return std::nullopt;
  if (pos_ + 12 > shard_.size()) {
    throw std::runtime_error("tfrecord: truncated record header");
  }
  const std::uint64_t len = load_le<std::uint64_t>(shard_.data() + pos_);
  const std::uint32_t want = load_le<std::uint32_t>(shard_.data() + pos_ + 8);
  pos_ += 12;
  if (pos_ + len > shard_.size()) {
    throw std::runtime_error("tfrecord: truncated record payload");
  }
  const ByteView payload = shard_.subspan(pos_, len);
  if (crc32(payload) != want) throw std::runtime_error("tfrecord: CRC mismatch");
  pos_ += len;
  return payload;
}

}  // namespace fanstore::dlsim
