// Clairvoyant planner tests (DESIGN.md §10): the AccessPlan must replay
// the trainer's schedule exactly, Belady eviction must beat FIFO (and
// match hand-computed optima), a cache with no plan installed must keep
// the classic FIFO semantics, and the whole thing must hold up under
// concurrent opens while the plan advances (TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "compress/registry.hpp"
#include "core/cache.hpp"
#include "core/instance.hpp"
#include "dlsim/prefetcher.hpp"
#include "dlsim/trainer.hpp"
#include "format/partition.hpp"
#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "plan/access_plan.hpp"
#include "plan/controller.hpp"
#include "posixfs/mem_vfs.hpp"
#include "posixfs/vfs.hpp"
#include "simnet/virtual_clock.hpp"
#include "util/rng.hpp"

namespace fanstore {
namespace {

using core::EvictionPolicy;
using core::PlainCache;

Bytes blob(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

// ---------------------------------------------------------------------------
// AccessPlan vs. the real trainer

std::vector<std::string> flatten(
    const std::vector<std::vector<std::string>>& per_epoch) {
  std::vector<std::string> out;
  for (const auto& e : per_epoch) out.insert(out.end(), e.begin(), e.end());
  return out;
}

std::vector<std::string> plan_sequence(const plan::AccessPlan& ap) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < ap.size(); ++i) out.push_back(ap.path_at(i));
  return out;
}

TEST(AccessPlanTest, MatchesSoloTrainerSchedule) {
  posixfs::MemVfs fs;
  std::vector<std::string> files;
  for (int i = 0; i < 10; ++i) {
    const std::string path = "ds/f" + std::to_string(i);
    posixfs::write_file(fs, path, as_view(blob(64, static_cast<std::uint8_t>(i))));
    files.push_back(path);
  }
  simnet::VirtualClock clock;
  dlsim::TrainerOptions topt;
  topt.t_iter_s = 1e-6;
  topt.batch_per_rank = 4;
  topt.epochs = 3;
  topt.seed = 99;
  topt.io_clock = &clock;
  topt.record_epoch_files = true;
  const auto result = dlsim::run_training(fs, files, topt);

  plan::PlanOptions popt;
  popt.seed = 99;
  popt.epochs = 3;
  popt.batch_per_rank = 4;
  plan::AccessPlan ap(files, popt);
  EXPECT_EQ(ap.size(), result.files_read);
  EXPECT_EQ(plan_sequence(ap), flatten(result.epoch_files));
}

TEST(AccessPlanTest, MatchesTrainerWrapAroundAndMaxIterations) {
  // 3 files with batch 4 exercises the % order.size() wrap; max_iterations
  // truncates mid-epoch.
  posixfs::MemVfs fs;
  std::vector<std::string> files = {"a", "b", "c"};
  for (const auto& f : files) posixfs::write_file(fs, f, as_view(blob(16, 1)));
  simnet::VirtualClock clock;
  dlsim::TrainerOptions topt;
  topt.t_iter_s = 1e-6;
  topt.batch_per_rank = 4;
  topt.epochs = 5;
  topt.max_iterations = 3;
  topt.seed = 7;
  topt.io_clock = &clock;
  topt.record_epoch_files = true;
  const auto result = dlsim::run_training(fs, files, topt);

  plan::PlanOptions popt;
  popt.seed = 7;
  popt.epochs = 5;
  popt.batch_per_rank = 4;
  popt.max_iterations = 3;
  plan::AccessPlan ap(files, popt);
  EXPECT_EQ(ap.size(), 3u * 4u);
  EXPECT_EQ(plan_sequence(ap), flatten(result.epoch_files));
}

TEST(AccessPlanTest, MatchesGlobalShuffleSchedulePerRank) {
  std::vector<std::string> files;
  for (int i = 0; i < 16; ++i) files.push_back("g/f" + std::to_string(i));

  mpi::run_world(2, [&](mpi::Comm& comm) {
    posixfs::MemVfs fs;
    for (const auto& f : files) posixfs::write_file(fs, f, as_view(blob(32, 9)));
    simnet::VirtualClock clock;
    obs::MetricsRegistry metrics;
    dlsim::TrainerOptions topt;
    topt.t_iter_s = 1e-6;
    topt.batch_per_rank = 2;
    topt.epochs = 2;
    topt.seed = 31;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.global_shuffle = true;
    topt.metrics = &metrics;
    topt.record_epoch_files = true;
    const auto result = dlsim::run_training(fs, files, topt);

    plan::PlanOptions popt;
    popt.seed = 31;
    popt.epochs = 2;
    popt.batch_per_rank = 2;
    popt.global_shuffle = true;
    popt.nranks = comm.size();
    popt.rank = comm.rank();
    plan::AccessPlan ap(files, popt, &metrics);
    EXPECT_EQ(plan_sequence(ap), flatten(result.epoch_files));
  });
}

TEST(AccessPlanTest, NextUseDistanceAndMispredicts) {
  obs::MetricsRegistry metrics;
  plan::AccessPlan ap(std::vector<std::string>{"a", "b", "a", "c"}, &metrics);
  EXPECT_EQ(ap.size(), 4u);
  EXPECT_EQ(ap.next_use_distance("a"), 0u);
  EXPECT_EQ(ap.next_use_distance("b"), 1u);
  EXPECT_EQ(ap.next_use_distance("c"), 3u);
  EXPECT_EQ(ap.next_use_distance("nope"), EvictionPolicy::kNever);

  ap.record_access("a");
  EXPECT_EQ(ap.position(), 1u);
  EXPECT_EQ(ap.next_use_distance("a"), 1u);  // next "a" is at index 2
  EXPECT_EQ(ap.mispredicts(), 0u);

  ap.record_access("c");  // scheduled entry is "b": a mispredict
  EXPECT_EQ(ap.mispredicts(), 1u);
  EXPECT_EQ(ap.position(), 2u);  // cursor still advances

  ap.record_access("a");  // matches schedule entry 2 again
  ap.record_access("c");  // matches schedule entry 3
  EXPECT_EQ(ap.mispredicts(), 1u);
  EXPECT_EQ(ap.next_use_distance("a"), EvictionPolicy::kNever);  // exhausted
  ap.record_access("a");  // past the end: counted, not advanced
  EXPECT_EQ(ap.position(), 4u);
  EXPECT_EQ(ap.mispredicts(), 2u);
}

TEST(AccessPlanTest, HottestRanksByAccessCount) {
  obs::MetricsRegistry metrics;
  plan::AccessPlan ap(
      std::vector<std::string>{"x", "y", "x", "z", "x", "y"}, &metrics);
  EXPECT_EQ(ap.access_count("x"), 3u);
  EXPECT_EQ(ap.access_count("y"), 2u);
  const auto top = ap.hottest(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], "x");
  EXPECT_EQ(top[1], "y");
}

// ---------------------------------------------------------------------------
// Belady eviction in PlainCache

/// Runs `seq` through a fresh 100-byte-entry cache of `capacity_files`
/// entries, optionally under a plan built from the same sequence, and
/// returns the hit count.
std::uint64_t trace_hits(const std::vector<std::string>& seq,
                         std::size_t capacity_files, bool belady) {
  obs::MetricsRegistry metrics;
  PlainCache cache(capacity_files * 100, /*shards=*/1, &metrics);
  plan::AccessPlan ap(seq, &metrics);
  if (belady) cache.set_eviction_policy(&ap);
  for (const auto& p : seq) {
    cache.acquire(p, [] { return Bytes(100, 1); });
    cache.release(p);
    ap.record_access(p);
  }
  if (belady) cache.set_eviction_policy(nullptr);
  return cache.stats().hits;
}

TEST(BeladyEvictionTest, HandComputedOptimalOnClassicSequence) {
  // a b c a b c with room for 2 entries:
  //   FIFO:   a+ b+ c+(evict a) a+(evict b) b+(evict c) c+  -> 0 hits
  //   Belady: at c's insert the cache holds {a(next@3), b(next@4)}: evict b.
  //           a hits; b's insert evicts a (never used again); c hits.
  //           -> 2 hits, the optimum.
  const std::vector<std::string> seq = {"a", "b", "c", "a", "b", "c"};
  EXPECT_EQ(trace_hits(seq, 2, /*belady=*/false), 0u);
  EXPECT_EQ(trace_hits(seq, 2, /*belady=*/true), 2u);
}

TEST(BeladyEvictionTest, HandComputedSkewedSequence) {
  // h is hot (every other access); FIFO keeps churning it out, Belady
  // never evicts it. h a h b h c h a: capacity 2.
  //   Belady: h stays; a/b/c each miss once; second "a" misses (a was
  //           evicted for b — its next use was farthest) -> hits = 3 (h's
  //           repeats after the first).
  const std::vector<std::string> seq = {"h", "a", "h", "b", "h", "c", "h", "a"};
  const auto fifo = trace_hits(seq, 2, false);
  const auto belady = trace_hits(seq, 2, true);
  EXPECT_EQ(belady, 3u);
  EXPECT_GT(belady, fifo);
}

TEST(BeladyEvictionTest, AtLeastFifoOnRandomSequences) {
  // Property: exact-future-reuse is optimal, so it can never do worse than
  // FIFO on any sequence (same capacity, same single shard).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    std::vector<std::string> seq;
    for (int i = 0; i < 80; ++i) {
      seq.push_back("p" + std::to_string(rng.next_below(12)));
    }
    const auto fifo = trace_hits(seq, 4, false);
    const auto belady = trace_hits(seq, 4, true);
    EXPECT_GE(belady, fifo) << "seed " << seed;
  }
}

TEST(BeladyEvictionTest, PlanEvictionCounterTracksPolicyEvictions) {
  obs::MetricsRegistry metrics;
  PlainCache cache(200, 1, &metrics);
  plan::AccessPlan ap(std::vector<std::string>{"a", "b", "c"}, &metrics);
  cache.set_eviction_policy(&ap);
  for (const auto* p : {"a", "b", "c"}) {
    cache.acquire(p, [] { return Bytes(100, 1); });
    cache.release(p);
    ap.record_access(p);
  }
  EXPECT_EQ(metrics.snapshot().counter("plan.evictions"),
            cache.stats().evictions);
  EXPECT_GT(cache.stats().evictions, 0u);
  cache.set_eviction_policy(nullptr);
}

TEST(BeladyEvictionTest, NoPolicyKeepsClassicFifo) {
  // Install-then-clear must restore the exact FIFO trace (the acceptance
  // criterion that an unplanned cache behaves byte-identically).
  PlainCache cache(250, 1);
  plan::AccessPlan ap(std::vector<std::string>{"z"});
  cache.set_eviction_policy(&ap);
  cache.set_eviction_policy(nullptr);
  cache.acquire("a", [] { return Bytes(100, 1); });
  cache.release("a");
  cache.acquire("b", [] { return Bytes(100, 2); });
  cache.release("b");
  cache.acquire("c", [] { return Bytes(100, 3); });
  cache.release("c");
  EXPECT_FALSE(cache.contains("a"));  // FIFO evicts the oldest, not "z" logic
  EXPECT_TRUE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
}

TEST(BeladyEvictionTest, PinnedEntriesSurvivePolicyEviction) {
  obs::MetricsRegistry metrics;
  PlainCache cache(250, 1, &metrics);
  // "a" is never used again per the plan — prime eviction bait — but it is
  // pinned, so pressure must pick "b" (the farthest *unpinned*) instead.
  plan::AccessPlan ap(std::vector<std::string>{"c", "b", "c"}, &metrics);
  cache.set_eviction_policy(&ap);
  auto pin_a = cache.acquire("a", [] { return Bytes(100, 1); });
  cache.acquire("b", [] { return Bytes(100, 2); });
  cache.release("b");
  cache.acquire("c", [] { return Bytes(100, 3); });
  cache.release("c");
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  cache.release("a");
  cache.set_eviction_policy(nullptr);
}

TEST(BeladyEvictionTest, ConcurrentOpensWhilePlanAdvances) {
  // TSan stress: reader threads hammer acquire/release while the producer
  // advances the plan cursor through the whole schedule. Nothing to assert
  // beyond invariants — the point is the interleaving under TSan.
  constexpr int kPaths = 32;
  constexpr int kPlanLen = 4000;
  obs::MetricsRegistry metrics;
  std::vector<std::string> seq;
  {
    Rng rng(4242);
    for (int i = 0; i < kPlanLen; ++i) {
      seq.push_back("s" + std::to_string(rng.next_below(kPaths)));
    }
  }
  plan::AccessPlan ap(seq, &metrics);
  PlainCache cache(8 * 100, /*shards=*/4, &metrics);
  cache.set_eviction_policy(&ap);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string p = "s" + std::to_string(rng.next_below(kPaths));
        cache.acquire(p, [] { return Bytes(100, 7); });
        cache.release(p);
      }
    });
  }
  for (const auto& p : seq) ap.record_access(p);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  cache.set_eviction_policy(nullptr);
  EXPECT_EQ(ap.position(), seq.size());
  // Unpinned steady state: occupancy within budget.
  EXPECT_LE(cache.bytes_used(), cache.capacity());
}

// ---------------------------------------------------------------------------
// PrefetchController + end-to-end clairvoyant training

TEST(PrefetchControllerTest, ValidatesOptions) {
  obs::MetricsRegistry metrics;
  std::vector<std::string> files = {"f"};
  plan::AccessPlan ap(files, plan::PlanOptions{}, &metrics);
  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    dlsim::Prefetcher warmer(inst.fs(), 1, 1);
    plan::ControllerOptions bad;
    bad.min_depth = 0;
    EXPECT_THROW(plan::PrefetchController(ap, inst.fs(), warmer, nullptr, bad),
                 std::invalid_argument);
    bad = {};
    bad.max_depth = 1;
    bad.min_depth = 2;
    EXPECT_THROW(plan::PrefetchController(ap, inst.fs(), warmer, nullptr, bad),
                 std::invalid_argument);
    bad = {};
    bad.ema_alpha = 0;
    EXPECT_THROW(plan::PrefetchController(ap, inst.fs(), warmer, nullptr, bad),
                 std::invalid_argument);
    inst.stop();
  });
}

TEST(PrefetchControllerTest, ClairvoyantTrainerEndToEnd) {
  // 2 ranks, each owning half the dataset; global shuffle so every rank
  // reads remote files. The clairvoyant path must (a) predict perfectly
  // (zero mispredicts), (b) stage ahead, and (c) leave the training
  // thread's opens as cache hits.
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4hc");
  std::vector<std::string> files;
  for (int i = 0; i < 16; ++i) files.push_back("ds/f" + std::to_string(i));

  mpi::run_world(2, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.clock = &clock;
    core::Instance inst(comm, opt);
    format::PartitionWriter w;
    for (int i = comm.rank(); i < 16; i += 2) {
      w.add(format::make_record(files[static_cast<std::size_t>(i)], *codec,
                                reg.id_of(*codec), as_view(blob(2000, 5))));
    }
    const Bytes part = w.serialize();
    inst.load_partition_blob(as_view(part), 0);
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    plan::PlanOptions popt;
    popt.seed = 11;
    popt.epochs = 2;
    popt.batch_per_rank = 2;
    popt.global_shuffle = true;
    popt.nranks = comm.size();
    popt.rank = comm.rank();
    plan::AccessPlan ap(files, popt, &inst.metrics());
    inst.install_plan(&ap);

    dlsim::Prefetcher warmer(inst.fs(), 2, 1);
    plan::ControllerOptions copt;
    copt.step_time_s = 0.05;
    copt.min_depth = 2;
    copt.max_depth = 8;
    plan::PrefetchController ctl(ap, inst.fs(), warmer, &clock, copt);

    dlsim::TrainerOptions topt;
    topt.t_iter_s = 0.05;
    topt.batch_per_rank = 2;
    topt.epochs = 2;
    topt.seed = 11;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.global_shuffle = true;
    topt.metrics = &inst.metrics();
    topt.plan = &ap;
    topt.controller = &ctl;
    const auto result = dlsim::run_training(inst.fs(), files, topt);

    EXPECT_EQ(result.files_read, ap.size());
    EXPECT_EQ(ap.position(), ap.size());
    EXPECT_EQ(ap.mispredicts(), 0u);
    const auto snap = inst.metrics().snapshot();
    EXPECT_GT(snap.counter("plan.prefetch_issued"), 0u);
    EXPECT_GT(snap.counter("plan.staged"), 0u);
    const std::int64_t depth = snap.gauge("plan.lookahead_depth");
    EXPECT_GE(depth, static_cast<std::int64_t>(copt.min_depth));
    EXPECT_LE(depth, static_cast<std::int64_t>(copt.max_depth));
    // Every training-thread open was warmed first.
    EXPECT_GE(snap.counter("cache.hits"), result.files_read);

    inst.install_plan(nullptr);
    comm.barrier();
    inst.stop();
  });
}

}  // namespace
}  // namespace fanstore
