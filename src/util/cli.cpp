#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace fanstore {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.emplace_back(a);
      continue;
    }
    a.remove_prefix(2);
    const auto eq = a.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(a.substr(0, eq))] = std::string(a.substr(eq + 1));
    } else {
      flags_[std::string(a)] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace fanstore
