// The compressed partition format of Table I:
//
//   [u32 num_files]
//   per file: [256 B path][2 B compressor id][144 B stat][8 B size][data…]
//
// A partition is self-describing: scanning it yields every file's path,
// codec, metadata, and the compressed payload without touching any other
// state. Partitions are produced once by the data-preparation tool and
// loaded by every FanStore daemon at startup (§IV-B, §IV-C1).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compress/compressor.hpp"
#include "format/file_stat.hpp"
#include "util/bytes.hpp"

namespace fanstore::format {

/// Thrown when a partition blob fails structural validation.
class PartitionFormatError : public std::runtime_error {
 public:
  explicit PartitionFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// One file inside a partition (owning form, used when writing).
struct FileRecord {
  std::string path;  // dataset-relative, e.g. "dir/cate1/file1"
  compress::CompressorId compressor = 0;
  FileStat stat;
  Bytes data;  // compressed payload; stat.compressed_size == data.size()
};

/// Non-owning view of a file inside a scanned partition blob.
struct FileRecordView {
  std::string_view path;
  compress::CompressorId compressor = 0;
  FileStat stat;
  ByteView data;
};

/// Serializes file records into a partition blob.
class PartitionWriter {
 public:
  /// Appends a record. Throws std::invalid_argument if the path exceeds
  /// 255 bytes or sizes are inconsistent.
  void add(FileRecord record);

  std::size_t file_count() const { return records_.size(); }

  /// Total serialized size so far (header + records).
  std::size_t byte_size() const;

  /// Produces the partition blob; the writer remains reusable.
  Bytes serialize() const;

 private:
  std::vector<FileRecord> records_;
};

/// Parses and validates a partition blob into record views (zero-copy:
/// views alias the input buffer, which must outlive them).
std::vector<FileRecordView> scan_partition(ByteView blob);

/// Convenience: compress `raw` with `codec` and build the full record.
FileRecord make_record(std::string path, const compress::Compressor& codec,
                       compress::CompressorId codec_id, ByteView raw);

/// Decompresses a scanned record and verifies its CRC.
Bytes extract_record(const FileRecordView& view);

}  // namespace fanstore::format
