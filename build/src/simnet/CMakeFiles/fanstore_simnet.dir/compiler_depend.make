# Empty compiler generated dependencies file for fanstore_simnet.
# This may be replaced when dependencies are built.
