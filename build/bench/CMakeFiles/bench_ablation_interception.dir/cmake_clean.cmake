file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interception.dir/bench_ablation_interception.cpp.o"
  "CMakeFiles/bench_ablation_interception.dir/bench_ablation_interception.cpp.o.d"
  "bench_ablation_interception"
  "bench_ablation_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
