// Concurrency stress tests modeled on §II-B: a Keras/Horovod stack on four
// nodes runs 96 independent I/O threads, each enumerating and reading the
// dataset. FanStore must absorb that concurrency in RAM without corruption.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "prep/prepare.hpp"
#include "tests/sanitizer_env.hpp"
#include "tests/test_data.hpp"
#include "util/timer.hpp"

namespace fanstore::core {
namespace {

Bytes file_content(int i) { return testdata::runs_and_noise(2000 + i * 7, i); }

void load_files(Instance& inst, int nfiles, const char* codec_name) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name(codec_name);
  format::PartitionWriter w;
  for (int i = 0; i < nfiles; ++i) {
    w.add(format::make_record("ds/d" + std::to_string(i % 8) + "/f" + std::to_string(i),
                              *codec, reg.id_of(*codec), as_view(file_content(i))));
  }
  const Bytes blob = w.serialize();
  inst.load_partition_blob(as_view(blob), 0);
  inst.exchange_metadata();
}

TEST(StressTest, MetadataStormFrom96Threads) {
  // The §II-B1 pattern: 96 threads, each doing readdir() + stat() sweeps.
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    constexpr int kFiles = 2000;
    load_files(inst, kFiles, "store");
    auto& fs = inst.fs();

    constexpr int kThreads = 96;
    constexpr int kSweepsPerThread = 5;
    std::atomic<std::uint64_t> stats_done{0};
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    WallTimer timer;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int sweep = 0; sweep < kSweepsPerThread; ++sweep) {
          const int dh = fs.opendir("ds");
          if (dh < 0) {
            errors++;
            return;
          }
          std::vector<std::string> dirs;
          while (auto e = fs.readdir(dh)) dirs.push_back(e->name);
          fs.closedir(dh);
          for (const auto& d : dirs) {
            const int sub = fs.opendir("ds/" + d);
            if (sub < 0) {
              errors++;
              continue;
            }
            while (auto e = fs.readdir(sub)) {
              format::FileStat st;
              if (fs.stat("ds/" + d + "/" + e->name, &st) != 0) {
                errors++;
              } else {
                stats_done.fetch_add(1, std::memory_order_relaxed);
              }
            }
            fs.closedir(sub);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const double elapsed = timer.elapsed_sec();
    EXPECT_EQ(errors.load(), 0);
    EXPECT_EQ(stats_done.load(),
              static_cast<std::uint64_t>(kThreads) * kSweepsPerThread * kFiles);
    // All in-RAM: the aggregate stat rate must be far beyond what any
    // metadata server sustains (paper's motivation for localization).
    // Sanitizer builds keep the correctness assertions above but not this
    // throughput floor — instrumentation costs an order of magnitude.
    const double rate = static_cast<double>(stats_done.load()) / elapsed;
    if (!testsupport::kUnderSanitizer) {
      EXPECT_GT(rate, 200000.0) << "aggregate stat rate " << rate << "/s";
    }
  });
}

TEST(StressTest, ConcurrentReadsUnderCachePressure) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.fs.cache_bytes = 16 * 1024;  // far below the working set: constant eviction
    Instance inst(comm, opt);
    constexpr int kFiles = 64;
    load_files(inst, kFiles, "lz4hc");
    auto& fs = inst.fs();

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 16; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 200; ++i) {
          const int id = (t * 31 + i * 17) % kFiles;
          const auto got = posixfs::read_file(
              fs, "ds/d" + std::to_string(id % 8) + "/f" + std::to_string(id));
          if (!got || *got != file_content(id)) mismatches++;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    // Eviction really happened and capacity was honoured at rest.
    EXPECT_GT(fs.cache().stats().evictions, 0u);
    EXPECT_LE(fs.cache().bytes_used(), opt.fs.cache_bytes + 16 * 1024);
  });
}

TEST(StressTest, RemoteFetchStormAcrossRanks) {
  // 4 ranks x 8 application threads all fetching remote files through the
  // daemons simultaneously.
  constexpr int kRanks = 4;
  constexpr int kPerRank = 16;
  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("zstd");
    format::PartitionWriter w;
    for (int i = 0; i < kPerRank; ++i) {
      const int id = comm.rank() * kPerRank + i;
      w.add(format::make_record("p/f" + std::to_string(id), *codec,
                                reg.id_of(*codec), as_view(file_content(id))));
    }
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(comm.rank()) * 100 + t);
        for (int i = 0; i < 50; ++i) {
          const int id = static_cast<int>(rng.next_below(kRanks * kPerRank));
          const auto got = posixfs::read_file(inst.fs(), "p/f" + std::to_string(id));
          if (!got || *got != file_content(id)) mismatches++;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    comm.barrier();
    inst.stop();
  });
}

}  // namespace
}  // namespace fanstore::core
