// Error-bounded lossy float compression (SZ-lite) — the paper's stated
// future work ("including lossy compressors such as SZ and ZFP as examined
// in the CODAR project", §VIII).
//
// SZ-style scheme: a 1-D Lorenzo predictor (previous value) plus linear
// quantization of the prediction error with a user-supplied absolute error
// bound; codes that fit 16 bits are entropy-packed with the lossless rANS
// stage, outliers are stored verbatim. The reconstruction error of every
// value is guaranteed to be <= abs_error.
#pragma once

#include <span>
#include <vector>

#include "compress/compressor.hpp"

namespace fanstore::compress {

class LossyFloatCompressor {
 public:
  /// `abs_error` is the guaranteed maximum absolute reconstruction error
  /// per value; must be > 0.
  explicit LossyFloatCompressor(double abs_error);

  Bytes compress(std::span<const float> values) const;

  /// `count` is the number of floats originally compressed.
  std::vector<float> decompress(ByteView packed, std::size_t count) const;

  double abs_error() const { return abs_error_; }

 private:
  double abs_error_;
};

}  // namespace fanstore::compress
