# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/compress_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/compress_codec_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/posixfs_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/prep_test[1]_include.cmake")
include("/root/repo/build/tests/select_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/dlsim_test[1]_include.cmake")
include("/root/repo/build/tests/intercept_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_corruption_test[1]_include.cmake")
include("/root/repo/build/tests/failover_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/suffix_array_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/cli_e2e_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_conformance_test[1]_include.cmake")
