# Empty compiler generated dependencies file for fanstore_dlsim.
# This may be replaced when dependencies are built.
