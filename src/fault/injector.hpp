// FaultInjector: executes a FaultPlan deterministically.
//
// One injector is shared by a whole simulated job (all ranks of an
// mpi::World). Consumers ask it for verdicts at well-defined injection
// points:
//
//   mpi::World::deliver        -> on_message()       drop/delay/dup/corrupt
//   core::Daemon::handle_fetch -> note_fetch_request(), daemon_alive(),
//                                 daemon_hang_ms()    crash / hang / restart
//   core::FaultInjectedBackend -> backend_get_action(), corrupt()
//   core::Instance (setup)     -> network_multiplier(), storage_multiplier()
//
// Every probabilistic decision hashes (plan seed, rule index, channel,
// per-channel sequence number); as long as each directed channel's message
// order is deterministic (one logical sender per channel — true for the
// fetch protocol), the whole fault schedule replays bit-identically from
// the seed. Injected faults are counted in "fault.*" metrics and recorded
// in a canonical schedule log (schedule_dump()) that determinism tests
// compare across runs.
//
// Thread-safety: fully internally synchronized; the injector mutex is a
// leaf (never held while calling out).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::fault {

/// What to do with one message; payload corruption already happened in
/// place when `corrupted` is set.
struct MessageVerdict {
  bool drop = false;
  bool duplicate = false;
  bool corrupted = false;
  int delay_ms = 0;
};

/// Outcome of a backend read consult.
enum class BackendAction { kNone, kFail, kCorrupt };

class FaultInjector {
 public:
  /// `metrics` receives the "fault.*" counters; nullptr gives the injector
  /// a private registry (tests snapshot via metrics()).
  explicit FaultInjector(FaultPlan plan, obs::MetricsRegistry* metrics = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- mpi mailbox boundary -------------------------------------------
  /// Verdict for one point-to-point message; may corrupt `payload` in
  /// place. Self-sends (src == dest) are exempt by the caller's contract.
  MessageVerdict on_message(int src, int dest, int tag, Bytes& payload)
      EXCLUDES(mu_);

  // --- daemon lifecycle ------------------------------------------------
  /// Counts a fetch request seen by `rank`'s daemon (crash_after_fetches
  /// triggers key off this).
  void note_fetch_request(int rank) EXCLUDES(mu_);
  /// False when a plan rule or a manual kill says the daemon at `rank` is
  /// dead right now (`vnow` = the rank's virtual clock, or -1 when no
  /// clock is wired). A false return is counted as fault.daemon_dropped.
  bool daemon_alive(int rank, double vnow) EXCLUDES(mu_);
  /// Extra per-request service delay while alive (fault.daemon_hangs).
  int daemon_hang_ms(int rank) EXCLUDES(mu_);
  /// Manual overrides for scenario tests; kill wins over every rule until
  /// revive_daemon() returns the rank to plan control.
  void kill_daemon(int rank) EXCLUDES(mu_);
  void revive_daemon(int rank) EXCLUDES(mu_);

  // --- stragglers ------------------------------------------------------
  double network_multiplier(int rank) const;
  double storage_multiplier(int rank) const;

  // --- backend ---------------------------------------------------------
  BackendAction backend_get_action(int rank, std::string_view path) EXCLUDES(mu_);
  /// Deterministically flips a few payload bytes (never a no-op for a
  /// non-empty payload).
  void corrupt(Bytes& payload) EXCLUDES(mu_);

  const FaultPlan& plan() const { return plan_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Canonical, order-independent dump of every injected fault
  /// ("kind src->dest tag=<bucket> seq=<n> rule=<i>" lines, sorted).
  /// Identical across runs with the same seed and per-channel traffic.
  std::string schedule_dump() const EXCLUDES(mu_);
  /// Total faults injected so far (all kinds).
  std::uint64_t faults_injected() const EXCLUDES(mu_);

 private:
  struct Event {
    char kind;  // 'D'rop 'L'delay 'U'dup 'C'orrupt 'K'daemon-drop 'H'ang 'B'ackend
    int rule;
    int src;
    int dest;
    int tag_bucket;
    std::uint64_t seq;
  };

  std::uint64_t next_seq(std::uint64_t channel_key) REQUIRES(mu_);
  void log_event(Event e) REQUIRES(mu_);
  bool spend_budget(std::vector<std::uint64_t>& used, std::size_t rule,
                    std::uint64_t max_faults) REQUIRES(mu_);

  const FaultPlan plan_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;

  obs::Counter& msg_dropped_;
  obs::Counter& msg_delayed_;
  obs::Counter& msg_duplicated_;
  obs::Counter& msg_corrupted_;
  obs::Counter& daemon_dropped_;
  obs::Counter& daemon_hangs_;
  obs::Counter& backend_errors_;
  obs::Counter& backend_corrupted_;

  mutable sync::Mutex mu_{"fault.injector.mu"};
  std::unordered_map<std::uint64_t, std::uint64_t> channel_seq_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> msg_budget_used_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> backend_budget_used_ GUARDED_BY(mu_);
  std::unordered_map<int, std::uint64_t> fetch_requests_ GUARDED_BY(mu_);
  std::unordered_map<int, int> manual_daemon_ GUARDED_BY(mu_);  // +1 dead, -1 forced-alive
  std::vector<Event> events_ GUARDED_BY(mu_);
  std::uint64_t corrupt_nonce_ GUARDED_BY(mu_) = 0;
};

}  // namespace fanstore::fault
