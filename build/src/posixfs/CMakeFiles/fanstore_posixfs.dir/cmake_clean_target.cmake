file(REMOVE_RECURSE
  "libfanstore_posixfs.a"
)
