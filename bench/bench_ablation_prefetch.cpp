// Ablation: the real asynchronous prefetch mechanism (Fig. 5b), measured in
// wall-clock time rather than the trainer's virtual-time model.
//
// A single-rank FanStore holds lzma-compressed files (expensive to
// decompress). A training loop alternates I/O (read the batch) and compute
// (a fixed busy period). Synchronous: the decompression stall lands on the
// critical path every iteration. With the Prefetcher warming batch i+1
// during compute of batch i, reads become cache hits and the stall
// disappears — the mechanism that makes Eq. 2's budget so much looser than
// Eq. 1's.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/prefetcher.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

constexpr int kBatch = 8;
constexpr int kIterations = 8;
constexpr int kFiles = kBatch * kIterations;
constexpr auto kComputeMs = std::chrono::milliseconds(30);

std::vector<std::string> batch_paths(int iter) {
  std::vector<std::string> out;
  for (int b = 0; b < kBatch; ++b) {
    out.push_back("ds/f" + std::to_string((iter * kBatch + b) % kFiles));
  }
  return out;
}

void read_batch(posixfs::Vfs& fs, int iter, Bytes& buf) {
  for (const auto& path : batch_paths(iter)) {
    const int fd = fs.open(path, posixfs::OpenMode::kRead);
    while (fs.read(fd, MutByteView{buf.data(), buf.size()}) > 0) {
    }
    fs.close(fd);
  }
}

// Runs the loop keeping `depth` batches of warming in flight ahead of the
// reader (0 = fully synchronous). Depth 1 is the classic double-buffer;
// beyond the cache's capacity (2 batches here) deeper warming evicts
// batches before they are read and the stall comes back — the reason
// plan::PrefetchController clamps its adaptive lookahead to the cache size.
double run_loop(core::Instance& inst, int depth) {
  Bytes buf(1 << 20);
  dlsim::Prefetcher prefetcher(inst.fs(), 4);
  WallTimer t;
  int issued = 0;
  for (; issued < std::min(kIterations, depth); ++issued) {
    prefetcher.prefetch(batch_paths(issued));
  }
  for (int iter = 0; iter < kIterations; ++iter) {
    if (depth > 0) prefetcher.wait();  // batch `iter` is warm
    read_batch(inst.fs(), iter, buf);
    for (; issued < std::min(kIterations, iter + 1 + depth); ++issued) {
      prefetcher.prefetch(batch_paths(issued));  // overlap with compute
    }
    std::this_thread::sleep_for(kComputeMs);  // "compute"
  }
  return t.elapsed_sec();
}

}  // namespace

int main() {
  bench::section("Ablation: real prefetch overlap (Fig. 5b) vs synchronous I/O");
  mpi::run_world(1, [&](mpi::Comm& comm) {
    std::vector<std::pair<std::string, Bytes>> files;
    for (int i = 0; i < kFiles; ++i) {
      files.emplace_back("ds/f" + std::to_string(i),
                         dlsim::generate_file(dlsim::DatasetKind::kEmTif,
                                              static_cast<std::uint64_t>(i)));
    }
    core::Instance::Options opt;
    // Cache one full batch plus the next (double buffering).
    opt.fs.cache_bytes = 2ull * kBatch * 300 * 1024;
    core::Instance inst(comm, opt);
    inst.load_partition_blob(as_view(bench::make_partition(files, "lzma")), 0);
    inst.exchange_metadata();

    const double compute_s =
        kIterations * std::chrono::duration<double>(kComputeMs).count();

    double sync_stall = 0;
    bench::Table table({"prefetch depth", "wall time",
                        "I/O stall on critical path", "stall hidden"});
    for (const int depth : {0, 1, 2, 4}) {
      const double wall_s = run_loop(inst, depth);
      const double stall_s = std::max(0.0, wall_s - compute_s);
      if (depth == 0) sync_stall = std::max(1e-9, stall_s);
      table.row({depth == 0 ? std::string("0 (synchronous)")
                            : std::to_string(depth),
                 bench::fmt("%.0f ms", wall_s * 1e3),
                 bench::fmt("%.0f ms", stall_s * 1e3),
                 depth == 0 ? std::string("-")
                            : bench::fmt("%.0f%%",
                                         100.0 * (1.0 - stall_s / sync_stall))});
    }
    table.print();
    std::printf("\ncache holds 2 batches: depth 1 (double buffering) hides"
                " the stall; at\ndepth >= 2 the warm window plus the batch"
                " being read exceed the cache,\nwarmed batches are evicted"
                " before use and the stall returns\n"
                "(plan::PrefetchController's max_depth clamp exists for"
                " this).\n");
  });
  return 0;
}
