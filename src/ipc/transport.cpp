#include "ipc/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace fanstore::ipc {

Endpoint Endpoint::uds(std::string socket_path) {
  Endpoint ep;
  ep.kind = Kind::kUds;
  ep.path = std::move(socket_path);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

std::optional<Endpoint> Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) return std::nullopt;
    return uds(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= rest.size()) {
      return std::nullopt;
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    long port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + (c - '0');
      if (port > 65535) return std::nullopt;
    }
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  if (spec.empty()) return std::nullopt;
  return uds(spec);  // bare paths keep meaning UDS
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUds) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

bool set_nonblocking(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0) return false;
  if (::fcntl(fd, F_SETFL, fl | O_NONBLOCK) != 0) return false;
  const int fdfl = ::fcntl(fd, F_GETFD, 0);
  return fdfl >= 0 && ::fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC) == 0;
}

namespace {

class UdsTransport final : public Transport {
 public:
  int listen(const Endpoint& ep, int backlog, Endpoint* bound) override {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("ipc: socket path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("ipc: socket() failed");
    ::unlink(ep.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("ipc: bind() failed for " + ep.path);
    }
    if (::listen(fd, backlog) != 0) {
      ::close(fd);
      throw std::runtime_error("ipc: listen() failed for " + ep.path);
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      throw std::runtime_error("ipc: fcntl() failed for " + ep.path);
    }
    if (bound != nullptr) *bound = ep;
    return fd;
  }

  int connect(const Endpoint& ep) override {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    for (;;) {
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        return fd;
      }
      if (errno == EINTR) continue;
      ::close(fd);
      return -1;
    }
  }

  void cleanup(const Endpoint& ep) override { ::unlink(ep.path.c_str()); }
};

class TcpTransport final : public Transport {
 public:
  int listen(const Endpoint& ep, int backlog, Endpoint* bound) override {
    sockaddr_in addr{};
    if (!to_addr(ep, &addr)) {
      throw std::invalid_argument("ipc: bad tcp address: " + ep.to_string());
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("ipc: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("ipc: bind() failed for " + ep.to_string());
    }
    if (::listen(fd, backlog) != 0) {
      ::close(fd);
      throw std::runtime_error("ipc: listen() failed for " + ep.to_string());
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      throw std::runtime_error("ipc: fcntl() failed for " + ep.to_string());
    }
    if (bound != nullptr) {
      *bound = ep;
      sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
        bound->port = ntohs(actual.sin_port);
      }
    }
    return fd;
  }

  int connect(const Endpoint& ep) override {
    sockaddr_in addr{};
    if (!to_addr(ep, &addr)) return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    for (;;) {
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
      }
      if (errno == EINTR) continue;
      ::close(fd);
      return -1;
    }
  }

  void cleanup(const Endpoint&) override {}

 private:
  static bool to_addr(const Endpoint& ep, sockaddr_in* addr) {
    addr->sin_family = AF_INET;
    addr->sin_port = htons(ep.port);
    return ::inet_pton(AF_INET, ep.host.c_str(), &addr->sin_addr) == 1;
  }
};

}  // namespace

Transport& Transport::for_kind(Endpoint::Kind kind) {
  static UdsTransport uds;
  static TcpTransport tcp;
  return kind == Endpoint::Kind::kUds ? static_cast<Transport&>(uds)
                                      : static_cast<Transport&>(tcp);
}

int transport_connect(const Endpoint& ep) {
  return Transport::for_kind(ep.kind).connect(ep);
}

}  // namespace fanstore::ipc
