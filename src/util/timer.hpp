// Wall-clock timing for codec micro-measurements.
#pragma once

#include <chrono>

namespace fanstore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_sec() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_us() const { return elapsed_sec() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fanstore
