// metric-inventory: the set of metric names is a public surface — dashboards
// and DESIGN.md §7 reference them — so every registration site must use a
// name declared in src/obs/metric_names.inc with the matching instrument
// kind. The rule also reports conflicting duplicate registrations, stale
// inventory entries nothing registers, and inventory names absent from the
// design doc's observability section.
#include "rules.hpp"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

namespace fanstore::lint {

namespace {

const std::set<std::string> kRegisterFns = {"counter", "gauge", "histogram"};

bool metrics_exempt(const std::string& rel) {
  // The registry implementation itself (and its tests' helpers) build
  // metrics from computed names.
  return rel.rfind("obs/", 0) == 0;
}

// Design-doc presence: DESIGN.md §7 tables the names as a `prefix.` row
// with bare suffixes, so accept either the full dotted name verbatim or
// prefix-and-suffix both present.
bool in_design(const std::string& design, const std::string& name) {
  if (design.empty()) return true;
  if (design.find(name) != std::string::npos) return true;
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return false;
  const std::string prefix = name.substr(0, dot + 1);  // keep the dot
  const std::string suffix = name.substr(dot + 1);
  return design.find(prefix) != std::string::npos &&
         design.find(suffix) != std::string::npos;
}

}  // namespace

bool metrics_load_inventory(const std::string& path,
                            const std::string& display_path, MetricsState* st,
                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open metric inventory: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line.compare(first, 2, "//") == 0) {
      continue;
    }
    const std::size_t at = line.find("FANSTORE_METRIC(");
    if (at == std::string::npos) continue;
    // FANSTORE_METRIC("name", kind)
    const std::size_t q1 = line.find('"', at);
    const std::size_t q2 = q1 == std::string::npos ? q1 : line.find('"', q1 + 1);
    const std::size_t comma =
        q2 == std::string::npos ? q2 : line.find(',', q2 + 1);
    const std::size_t close =
        comma == std::string::npos ? comma : line.find(')', comma + 1);
    if (close == std::string::npos) {
      *error = display_path + ":" + std::to_string(lineno) +
               ": malformed FANSTORE_METRIC line";
      return false;
    }
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    std::string kind = line.substr(comma + 1, close - comma - 1);
    kind.erase(0, kind.find_first_not_of(" \t"));
    kind.erase(kind.find_last_not_of(" \t") + 1);
    if (kRegisterFns.count(kind) == 0) {
      *error = display_path + ":" + std::to_string(lineno) +
               ": unknown metric kind '" + kind + "'";
      return false;
    }
    if (st->inventory.count(name) != 0) {
      *error = display_path + ":" + std::to_string(lineno) +
               ": duplicate inventory entry '" + name + "'";
      return false;
    }
    st->inventory[name] = MetricsState::InventoryEntry{kind, lineno, false};
  }
  st->inventory_rel = display_path;
  st->enabled = true;
  return true;
}

void rule_metric_inventory(const FileCtx& ctx, MetricsState* st,
                           std::vector<Finding>* out) {
  if (!st->enabled || metrics_exempt(ctx.rel)) return;
  const auto& toks = *ctx.tokens;
  const auto& m = *ctx.model;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent || kRegisterFns.count(t.text) == 0) continue;
    // Member call shape: <expr>.counter("name"...) / ->histogram("name"...).
    const std::size_t prev = m.prev_code(i);
    if (prev == TuModel::npos || toks[prev].kind != Tok::kPunct ||
        (toks[prev].text != "." && toks[prev].text != "->")) {
      continue;
    }
    const std::size_t paren = m.next_code(i);
    if (paren == TuModel::npos ||
        !(toks[paren].kind == Tok::kPunct && toks[paren].text == "(")) {
      continue;
    }
    const std::size_t arg = m.next_code(paren);
    if (arg == TuModel::npos) continue;
    if (toks[arg].kind != Tok::kString) {
      out->push_back(Finding{
          "metric-inventory", ctx.rel, t.line, t.col,
          "metric registered with a computed name; registration sites must "
          "use a string literal from src/obs/metric_names.inc",
          {}});
      continue;
    }
    const std::string name = string_value(toks[arg]);
    const std::string& kind = t.text;
    auto it = st->inventory.find(name);
    if (it == st->inventory.end()) {
      out->push_back(Finding{
          "metric-inventory", ctx.rel, toks[arg].line, toks[arg].col,
          "metric '" + name + "' is not in src/obs/metric_names.inc; add it "
          "there (and to DESIGN.md §7) before registering it",
          {}});
    } else {
      it->second.registered = true;
      if (it->second.kind != kind) {
        out->push_back(Finding{
            "metric-inventory", ctx.rel, toks[arg].line, toks[arg].col,
            "metric '" + name + "' registered as " + kind +
                " but inventoried as " + it->second.kind,
            {}});
      }
    }
    auto first = st->first_registration.find(name);
    if (first == st->first_registration.end()) {
      st->first_registration[name] =
          MetricsState::Registration{kind, ctx.rel, t.line};
    } else if (first->second.kind != kind) {
      out->push_back(Finding{
          "metric-inventory", ctx.rel, toks[arg].line, toks[arg].col,
          "metric '" + name + "' registered as " + kind + " but as " +
              first->second.kind + " at " + first->second.file + ":" +
              std::to_string(first->second.line),
          {}});
    }
  }
}

void metrics_finalize(MetricsState* st, const std::string& design_text,
                      std::vector<Finding>* out) {
  if (!st->enabled) return;
  for (const auto& [name, entry] : st->inventory) {
    if (!entry.registered) {
      out->push_back(Finding{
          "metric-inventory", st->inventory_rel, entry.line, 1,
          "inventory entry '" + name +
              "' is never registered by any code under the lint root",
          {}});
    }
    if (!in_design(design_text, name)) {
      out->push_back(Finding{
          "metric-inventory", st->inventory_rel, entry.line, 1,
          "metric '" + name +
              "' is missing from the design doc's observability section "
              "(DESIGN.md §7)",
          {}});
    }
  }
}

}  // namespace fanstore::lint
