// Canonical Huffman coding over an arbitrary alphabet, shared by the
// standalone Huffman codec and the deflate/brotli-lite entropy stage.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/bitio.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {

/// Builds Huffman code lengths for `freqs`, each length <= max_len.
/// Symbols with zero frequency get length 0 (no code). If the unrestricted
/// tree exceeds max_len, frequencies are scaled down and rebuilt.
std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             int max_len);

/// Canonical code assignment from lengths; encodes symbols MSB-first.
class CanonicalEncoder {
 public:
  explicit CanonicalEncoder(const std::vector<std::uint8_t>& lengths);
  void encode(BitWriter& bw, std::uint32_t symbol) const;
  int length_of(std::uint32_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

/// Canonical decoder. The hot path is a single first-level table lookup of
/// kTableBits bits (peek + skip, one probe resolves every code of length
/// <= kTableBits); longer codes fall back to the bit-serial
/// first-code/offset walk.
class CanonicalDecoder {
 public:
  /// First-level lookup width. Nibble-serialized lengths cap codes at 15
  /// bits, so an 11-bit table resolves the vast majority of symbols in one
  /// probe while staying at 2^11 entries (8 KiB) per decoder.
  static constexpr int kTableBits = 11;

  explicit CanonicalDecoder(const std::vector<std::uint8_t>& lengths);
  std::uint32_t decode(BitReader& br) const {
    if (table_bits_ > 0) {
      const std::uint32_t entry = table_[br.peek(table_bits_)];
      if ((entry & 0xFF) != 0) {
        br.skip(static_cast<int>(entry & 0xFF));
        return entry >> 8;
      }
    }
    return decode_slow(br);
  }

 private:
  std::uint32_t decode_slow(BitReader& br) const;

  int max_len_ = 0;
  int table_bits_ = 0;                      // min(max_len_, kTableBits)
  std::vector<std::uint32_t> table_;        // (symbol << 8) | code length
  std::vector<std::uint32_t> first_code_;   // per length
  std::vector<std::uint32_t> first_index_;  // per length, into sorted_
  std::vector<std::uint32_t> count_;        // per length
  std::vector<std::uint32_t> sorted_;       // symbols ordered by (len, sym)
};

/// Serializes code lengths as packed nibbles (lengths <= 15).
void write_lengths(Bytes& out, const std::vector<std::uint8_t>& lengths);

/// Reads `n` packed nibble lengths starting at src[pos]; advances pos.
std::vector<std::uint8_t> read_lengths(ByteView src, std::size_t& pos, std::size_t n);

}  // namespace fanstore::compress
