file(REMOVE_RECURSE
  "libfanstore_core.a"
)
