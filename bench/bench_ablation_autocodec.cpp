// Ablation: per-file compressor selection ("auto" mode of fanstore-prep)
// vs a single dataset-wide codec. The Table-I format stores a 2-byte codec
// id per file, so mixing codecs is free on the read path — this bench
// quantifies what that buys on a mixed-content dataset.
#include "bench/bench_util.hpp"
#include "dlsim/datagen.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"

using namespace fanstore;

namespace {

double packed_ratio(posixfs::MemVfs& src, const std::string& compressor) {
  posixfs::MemVfs dst;
  prep::PrepOptions opt;
  opt.num_partitions = 2;
  opt.compressor = compressor;
  opt.threads = 4;
  return prep::prepare_dataset(src, "mixed", dst, "o", opt).ratio();
}

}  // namespace

int main() {
  bench::section("Ablation: per-file auto codec vs one dataset-wide codec");
  // A mixed-content dataset: compressible volumes + text + incompressible
  // JPEGs — the situation a multi-tenant burst buffer actually sees.
  posixfs::MemVfs src;
  int idx = 0;
  for (const auto kind : {dlsim::DatasetKind::kLungNii, dlsim::DatasetKind::kLanguageTxt,
                          dlsim::DatasetKind::kImagenetJpg, dlsim::DatasetKind::kEmTif}) {
    for (int i = 0; i < 3; ++i) {
      posixfs::write_file(src, "mixed/f" + std::to_string(idx++),
                          as_view(dlsim::generate_file_sized(kind, i, 128 * 1024)));
    }
  }
  bench::Table table({"compressor policy", "dataset ratio"});
  for (const char* policy : {"lzsse8", "lz4hc", "zstd", "lzma"}) {
    table.row({policy, bench::fmt("%.2fx", packed_ratio(src, policy))});
  }
  const double auto_ratio = packed_ratio(src, "auto-store,lzsse8,lz4hc,zstd,lzma");
  table.row({"auto (per-file best of 5)", bench::fmt("%.2fx", auto_ratio)});
  table.print();
  std::printf(
      "\nThe per-file codec field (Table I) makes mixed placement free to\n"
      "read; auto mode matches or beats every single-codec policy and never\n"
      "expands incompressible files (store fallback).\n");
  return 0;
}
