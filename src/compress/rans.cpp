// Order-0 rANS (range asymmetric numeral system) entropy codec — the
// entropy stage modern codecs (zstd/FSE class) use instead of Huffman.
// Block format: [u32 n][256 x u16 normalized freqs][u32 payload_len][payload].
//
// Encoder emits renormalization bytes in reverse (standard rANS); the
// decoder reads the payload forward. Frequencies are normalized to 2^12.
#include <algorithm>
#include <array>
#include <vector>

#include "compress/codecs.hpp"

namespace fanstore::compress {
namespace {

constexpr std::uint32_t kProbBitsR = 12;
constexpr std::uint32_t kProbScale = 1u << kProbBitsR;
constexpr std::uint32_t kRansL = 1u << 23;  // lower bound of the state range

// Normalizes `counts` so they sum to kProbScale with every present symbol
// getting at least 1.
std::array<std::uint32_t, 256> normalize(const std::array<std::uint64_t, 256>& counts,
                                         std::uint64_t total) {
  std::array<std::uint32_t, 256> freq{};
  if (total == 0) return freq;
  std::uint32_t assigned = 0;
  int last_nonzero = -1;
  for (int s = 0; s < 256; ++s) {
    if (counts[static_cast<std::size_t>(s)] == 0) continue;
    std::uint32_t f = static_cast<std::uint32_t>(
        counts[static_cast<std::size_t>(s)] * kProbScale / total);
    if (f == 0) f = 1;
    freq[static_cast<std::size_t>(s)] = f;
    assigned += f;
    last_nonzero = s;
  }
  // Fix the rounding drift on the most frequent symbol (or steal 1s).
  while (assigned > kProbScale) {
    // Reduce the largest frequency that stays >= 1.
    int best = last_nonzero;
    for (int s = 0; s < 256; ++s) {
      if (freq[static_cast<std::size_t>(s)] > freq[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    freq[static_cast<std::size_t>(best)]--;
    assigned--;
  }
  if (assigned < kProbScale) {
    int best = last_nonzero;
    for (int s = 0; s < 256; ++s) {
      if (freq[static_cast<std::size_t>(s)] > freq[static_cast<std::size_t>(best)]) {
        best = s;
      }
    }
    freq[static_cast<std::size_t>(best)] += kProbScale - assigned;
  }
  return freq;
}

class RansCompressor final : public Compressor {
 public:
  explicit RansCompressor(std::size_t block) : block_(block) {}

  std::string name() const override {
    return "rans-" + std::to_string(block_ / 1024) + "k";
  }

  Bytes compress(ByteView src) const override {
    Bytes out;
    for (std::size_t off = 0; off < src.size(); off += block_) {
      const std::size_t len = std::min(block_, src.size() - off);
      const ByteView block = src.subspan(off, len);

      std::array<std::uint64_t, 256> counts{};
      for (std::uint8_t b : block) counts[b]++;
      const auto freq = normalize(counts, len);
      std::array<std::uint32_t, 256> cum{};
      std::uint32_t acc = 0;
      for (int s = 0; s < 256; ++s) {
        cum[static_cast<std::size_t>(s)] = acc;
        acc += freq[static_cast<std::size_t>(s)];
      }

      // Encode in reverse, emitting renorm bytes backwards.
      Bytes rev;
      rev.reserve(len / 2 + 16);
      std::uint32_t x = kRansL;
      for (std::size_t i = len; i-- > 0;) {
        const std::uint8_t s = block[i];
        const std::uint32_t f = freq[s];
        const std::uint32_t x_max = ((kRansL >> kProbBitsR) << 8) * f;
        while (x >= x_max) {
          rev.push_back(static_cast<std::uint8_t>(x & 0xFF));
          x >>= 8;
        }
        x = ((x / f) << kProbBitsR) + (x % f) + cum[s];
      }

      append_le<std::uint32_t>(out, static_cast<std::uint32_t>(len));
      for (int s = 0; s < 256; ++s) {
        append_le<std::uint16_t>(out, static_cast<std::uint16_t>(freq[static_cast<std::size_t>(s)]));
      }
      append_le<std::uint32_t>(out, static_cast<std::uint32_t>(rev.size() + 4));
      append_le<std::uint32_t>(out, x);  // final state, read first
      out.insert(out.end(), rev.rbegin(), rev.rend());
    }
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    Bytes out;
    out.reserve(original_size);
    std::size_t pos = 0;
    while (out.size() < original_size) {
      if (pos + 4 + 512 + 4 > src.size()) throw CorruptDataError("rans: truncated header");
      const std::uint32_t len = load_le<std::uint32_t>(src.data() + pos);
      pos += 4;
      if (len == 0 || out.size() + len > original_size) {
        throw CorruptDataError("rans: bad block length");
      }
      std::array<std::uint32_t, 256> freq{};
      std::array<std::uint32_t, 256> cum{};
      std::uint32_t acc = 0;
      for (int s = 0; s < 256; ++s) {
        freq[static_cast<std::size_t>(s)] = load_le<std::uint16_t>(src.data() + pos);
        pos += 2;
        cum[static_cast<std::size_t>(s)] = acc;
        acc += freq[static_cast<std::size_t>(s)];
      }
      if (acc != kProbScale) throw CorruptDataError("rans: bad frequency table");
      // Slot -> symbol lookup.
      std::vector<std::uint8_t> slot_sym(kProbScale);
      for (int s = 0; s < 256; ++s) {
        for (std::uint32_t k = 0; k < freq[static_cast<std::size_t>(s)]; ++k) {
          slot_sym[cum[static_cast<std::size_t>(s)] + k] = static_cast<std::uint8_t>(s);
        }
      }
      const std::uint32_t payload_len = load_le<std::uint32_t>(src.data() + pos);
      pos += 4;
      if (payload_len < 4 || pos + payload_len > src.size()) {
        throw CorruptDataError("rans: truncated payload");
      }
      const std::uint8_t* p = src.data() + pos;
      const std::uint8_t* p_end = p + payload_len;
      std::uint32_t x = load_le<std::uint32_t>(p);
      p += 4;
      for (std::uint32_t i = 0; i < len; ++i) {
        const std::uint32_t slot = x & (kProbScale - 1);
        const std::uint8_t s = slot_sym[slot];
        out.push_back(s);
        x = freq[s] * (x >> kProbBitsR) + slot - cum[s];
        while (x < kRansL) {
          if (p == p_end) throw CorruptDataError("rans: payload exhausted");
          x = (x << 8) | *p++;
        }
      }
      pos += payload_len;
    }
    return out;
  }

 private:
  std::size_t block_;
};

}  // namespace

std::unique_ptr<Compressor> make_rans(std::size_t block) {
  return std::make_unique<RansCompressor>(block);
}

}  // namespace fanstore::compress
