// Tests for the compressor-selection algorithm, including a reproduction of
// the paper's worked example (§VII-E1: SRGAN on GTX).
#include <gtest/gtest.h>

#include "dlsim/datagen.hpp"
#include "select/selection.hpp"
#include "tests/sanitizer_env.hpp"

namespace fanstore::select {
namespace {

// Table V/VI values for SRGAN on GTX (4 nodes).
AppProfile srgan_gtx_profile() {
  return {"SRGAN/GTX", /*async=*/false, 9.689, 256, 410.0, 4};
}

// Uncompressed EM files are ~1.6 MB -> use the 2 MB row of Table VI;
// compressed (~762 KB) -> the 512 KB row.
constexpr double kTptRaw = 3158, kBdwRaw = 6663;     // 2 MB row
constexpr double kTptComp = 9469, kBdwComp = 4969;   // 512 KB row

TEST(EquationThreeTest, PicksBindingConstraint) {
  const IoProfile io{3158, 6663};
  // Paper: T_read(256 files, 410 MB) = max(256/3158, 410/6663) = 81063 us.
  EXPECT_NEAR(t_read_s(256, 410, io), 81.063e-3, 0.5e-3);
  // FRNN's tiny files on CPU: the 30 MB/s bandwidth bound wins.
  EXPECT_NEAR(t_read_s(512, 0.615, IoProfile{29103, 30}), 0.615 / 30, 1e-6);
  // Throughput-bound case: many tiny files, ample bandwidth.
  EXPECT_NEAR(t_read_s(512, 0.615, IoProfile{29103, 3000}), 512.0 / 29103, 1e-6);
}

TEST(EquationThreeTest, RejectsBadProfile) {
  EXPECT_THROW(t_read_s(1, 1, IoProfile{0, 100}), std::invalid_argument);
}

TEST(SelectionTest, ReproducesPaperSrganGtxBudget) {
  // §VII-E1 computes: T_read(raw) = 81063 us, T_read(compressed at 2.1x)
  // = 27035 us, budget = 54568 us for 256 files with 4-way parallelism
  // => 852 us per file. Our formulation folds this into one call, except
  // that the paper mixes I/O profiles for the two file sizes; reproduce
  // that mix explicitly here.
  const double t_raw = t_read_s(256, 410, IoProfile{kTptRaw, kBdwRaw});
  const double t_comp = t_read_s(256, 410 / 2.1, IoProfile{kTptComp, kBdwComp});
  EXPECT_NEAR(t_raw, 81.063e-3, 0.5e-3);
  EXPECT_NEAR(t_comp, 39.3e-3, 0.5e-3);  // 410/2.1/4969 s (bandwidth-bound)
  const double budget_per_file = (t_raw - t_comp) / 256 * 4;
  // With our single-profile formulation the numbers differ slightly from
  // the paper's 852 us, but the order of magnitude (hundreds of us) and
  // the conclusion (fast-LZ feasible, lzma not) must match.
  EXPECT_GT(budget_per_file, 300e-6);
  EXPECT_LT(budget_per_file, 2000e-6);
}

TEST(SelectionTest, SyncModePrefersFastDecoders) {
  const AppProfile app = srgan_gtx_profile();
  const IoProfile io{kTptComp, kBdwComp};
  // Per-file costs from Table VII(a) (the paper's table mixes ms/us units;
  // the worked example's budget is ~hundreds of us per file, so the fast-LZ
  // costs are clearly microseconds-scale). lz4hc's cost is set just inside
  // the Eq. 1 budget at ratio 2.1 (~675 us with Eq. 3 applied strictly —
  // the paper's own arithmetic drops the max() and gets a looser 852 us).
  std::vector<CandidateStats> candidates = {
      {0, "lzsse8", 2.5, 619e-6},   // feasible
      {1, "lz4hc", 2.1, 610e-6},    // feasible
      {2, "brotli", 3.4, 4741e-6},  // too slow for sync I/O
      {3, "zling", 3.1, 17123e-6},  // far too slow
      {4, "lzma", 4.2, 41261e-6},   // far too slow
  };
  const auto result = select_compressor(app, io, candidates, 2.1);
  ASSERT_TRUE(result.best.has_value());
  // Highest-ratio feasible candidate: lzsse8 (2.5) beats lz4hc (2.1);
  // brotli/zling/lzma are excluded by the performance constraint.
  EXPECT_EQ(result.best->name, "lzsse8");
  EXPECT_TRUE(result.meets_required_ratio);
  ASSERT_EQ(result.feasible.size(), 2u);
  EXPECT_EQ(result.feasible[1].name, "lz4hc");
}

TEST(SelectionTest, AsyncModeAdmitsSlowerDecoders) {
  // FRNN on CPU (§VII-E2): T_iter = 655 ms dwarfs I/O; even brotli's
  // per-file cost fits the async budget (paper: "can be met by all
  // compressors in the candidate suite").
  const AppProfile app{"FRNN/CPU", /*async=*/true, 0.655, 512, 0.615, 4};
  const IoProfile io{29103, 30};
  std::vector<CandidateStats> candidates = {
      {0, "lzf", 8.7, 0.41e-6},
      {1, "lzsse8", 6.5, 0.43e-6},
      {2, "brotli", 13.0, 5.23e-3 / 512},  // 5.23 ms per 512-file batch share
  };
  const auto result = select_compressor(app, io, candidates, 2.0);
  EXPECT_EQ(result.feasible.size(), 3u);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_EQ(result.best->name, "brotli");  // highest ratio wins when feasible
}

TEST(SelectionTest, FasterHardwareShrinksBudget) {
  // SRGAN on V100 runs 4x faster (T_iter 2416 ms): the same sync budget
  // collapses (paper: <= 125 us/file), excluding everything but the very
  // fastest codecs.
  AppProfile gtx = srgan_gtx_profile();
  AppProfile v100 = gtx;
  v100.t_iter_s = 2.416;  // (unused in sync mode but kept faithful)
  const IoProfile io_gtx{kTptComp, kBdwComp};
  const IoProfile io_v100{8654, 4540};  // Table VI V100 512 KB row
  const double b_gtx = decompress_budget_per_file_s(gtx, io_gtx, 2.1);
  const double b_v100 = decompress_budget_per_file_s(v100, io_v100, 2.1);
  // Sync budgets depend only on I/O profiles here; with similar profiles
  // they are close — the paper's V100 squeeze comes from the app reading
  // 4x more often. Model that by scaling C_batch per unit time instead:
  AppProfile v100_rate = v100;
  v100_rate.c_batch_files = gtx.c_batch_files;  // same batch
  EXPECT_GT(b_gtx, 0);
  EXPECT_GT(b_v100, 0);
}

TEST(SelectionTest, NoFeasibleCandidate) {
  const AppProfile app{"tiny", /*async=*/true, 0.0001, 1000, 100, 1};
  const IoProfile io{1e6, 1e5};
  std::vector<CandidateStats> candidates = {{0, "slow", 10.0, 1.0}};
  const auto result = select_compressor(app, io, candidates, 2.0);
  EXPECT_TRUE(result.feasible.empty());
  EXPECT_FALSE(result.best.has_value());
}

TEST(SelectionTest, RequiredRatioFlaggedWhenUnmet) {
  const AppProfile app{"x", /*async=*/true, 1.0, 10, 1, 1};
  const IoProfile io{1e5, 1e4};
  std::vector<CandidateStats> candidates = {{0, "fast-lowratio", 1.3, 1e-6}};
  const auto result = select_compressor(app, io, candidates, 3.0);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_FALSE(result.meets_required_ratio);  // 1.3 < required 3.0
}

TEST(ProfileCandidatesTest, MeasuresRealCodecs) {
  std::vector<Bytes> samples;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(dlsim::generate_file(dlsim::DatasetKind::kEmTif,
                                           static_cast<std::uint64_t>(i)));
  }
  const auto stats = profile_candidates(samples, {"lzsse8", "lz4hc", "lzma"});
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    EXPECT_GT(s.ratio, 1.0) << s.name;
    EXPECT_GT(s.decompress_s_per_file, 0) << s.name;
  }
  // The central Fig. 7 trade-off: lzma has a higher ratio but a much
  // higher decompression cost than the byte-LZ codecs. Ratios are size-based
  // and always hold; the 5x speed gap only holds uninstrumented.
  EXPECT_GT(stats[2].ratio, stats[0].ratio);
  if (!testsupport::kUnderSanitizer) {
    EXPECT_GT(stats[2].decompress_s_per_file, stats[0].decompress_s_per_file * 5);
    EXPECT_GT(stats[2].decompress_s_per_file, stats[1].decompress_s_per_file * 5);
  }
}

TEST(ProfileCandidatesTest, RejectsBadInput) {
  EXPECT_THROW(profile_candidates({}, {"lz4"}), std::invalid_argument);
  EXPECT_THROW(profile_candidates({Bytes{1}}, {"nope"}), std::invalid_argument);
}

}  // namespace
}  // namespace fanstore::select
