// Property tests: every registered codec configuration must round-trip every
// standard byte pattern, and must reject truncated input rather than crash
// or return wrong bytes silently.
#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "compress/registry.hpp"
#include "tests/test_data.hpp"

namespace fanstore::compress {
namespace {

using testdata::Pattern;

class RoundTripTest : public ::testing::TestWithParam<CompressorId> {};

TEST_P(RoundTripTest, AllPatternsRoundTrip) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  for (const Pattern& p : testdata::standard_patterns()) {
    SCOPED_TRACE(codec->name() + " on " + p.name);
    const Bytes packed = codec->compress(as_view(p.data));
    const Bytes restored = codec->decompress(as_view(packed), p.data.size());
    ASSERT_EQ(restored, p.data);
  }
}

TEST_P(RoundTripTest, TruncatedInputThrowsOrFailsCleanly) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes data = testdata::text_like(20000, 77);
  const Bytes packed = codec->compress(as_view(data));
  if (packed.size() < 16) GTEST_SKIP() << "stream too small to truncate meaningfully";
  const ByteView cut = as_view(packed).subspan(0, packed.size() / 3);
  // Range-coded streams zero-fill past the end, so either an exception or a
  // wrong-but-bounded result is acceptable; silent success with correct
  // output would mean the tail carried no information, which is impossible
  // for this input size.
  try {
    const Bytes restored = codec->decompress(cut, data.size());
    EXPECT_NE(restored, data) << codec->name()
                              << ": truncated stream decoded to the original";
  } catch (const CorruptDataError&) {
    SUCCEED();
  }
}

TEST_P(RoundTripTest, DecompressIsDeterministic) {
  const Compressor* codec = Registry::instance().by_id(GetParam());
  ASSERT_NE(codec, nullptr);
  const Bytes data = testdata::runs_and_noise(30000, 99);
  const Bytes packed = codec->compress(as_view(data));
  const Bytes a = codec->decompress(as_view(packed), data.size());
  const Bytes b = codec->decompress(as_view(packed), data.size());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, data);
}

// The LZ decoders share a wide-copy match expansion (lz_common.hpp) whose
// 8/16-byte strides must stay exactly equivalent to the byte-serial loop.
// Overlapping matches at every small distance are the hazardous cases: a
// run of period d forces distance-d copies where a naive wide copy would
// read bytes it has not yet written.
TEST(WideCopyTest, OverlappingMatchesDecodeByteIdentically) {
  const auto& reg = Registry::instance();
  for (const char* name : {"lz4", "lz4hc", "lzf", "lzss", "lzsse8"}) {
    const Compressor* codec = reg.by_name(name);
    ASSERT_NE(codec, nullptr) << name;
    for (std::size_t period = 1; period <= 24; ++period) {
      Bytes data;
      for (std::size_t i = 0; i < 4096 + period; ++i) {
        data.push_back(static_cast<std::uint8_t>((i % period) * 37 + period));
      }
      // A non-periodic tail so literals follow the long match.
      const Bytes tail = testdata::random_bytes(64, period);
      data.insert(data.end(), tail.begin(), tail.end());
      SCOPED_TRACE(std::string(name) + " period " + std::to_string(period));
      const Bytes packed = codec->compress(as_view(data));
      ASSERT_EQ(codec->decompress(as_view(packed), data.size()), data);
    }
  }
}

// Exercises the multi-bit first-level Huffman decode table well past one
// table's worth of symbols, including skewed distributions that produce
// codes both shorter and longer than the table width.
TEST(HuffmanTableDecodeTest, LongSkewedInputRoundTrips) {
  const auto& reg = Registry::instance();
  const Compressor* codec = reg.by_name("huff-64k");
  ASSERT_NE(codec, nullptr);
  Rng rng(4242);
  Bytes data;
  data.reserve(1 << 20);
  while (data.size() < (1 << 20)) {
    // Heavy skew: byte 0 dominates (1-2 bit codes) while rare bytes fall
    // off the 11-bit table into the slow path.
    const std::uint64_t r = rng.next_below(1000);
    if (r < 700) {
      data.push_back(0);
    } else if (r < 950) {
      data.push_back(static_cast<std::uint8_t>(1 + rng.next_below(8)));
    } else {
      data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
  }
  const Bytes packed = codec->compress(as_view(data));
  ASSERT_LT(packed.size(), data.size() / 2);  // the skew must compress well
  EXPECT_EQ(codec->decompress(as_view(packed), data.size()), data);
}

std::vector<CompressorId> all_ids() {
  std::vector<CompressorId> ids;
  for (const auto& e : Registry::instance().all()) ids.push_back(e.id);
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RoundTripTest, ::testing::ValuesIn(all_ids()),
    [](const ::testing::TestParamInfo<CompressorId>& info) {
      std::string n = Registry::instance().by_id(info.param)->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n + "_id" + std::to_string(info.param);
    });

TEST(RegistryTest, HasAtLeast180Configurations) {
  EXPECT_GE(Registry::instance().all().size(), 180u);
}

TEST(RegistryTest, IdsAreUniqueAndResolvable) {
  std::set<CompressorId> seen;
  for (const auto& e : Registry::instance().all()) {
    EXPECT_TRUE(seen.insert(e.id).second) << "duplicate id " << e.id;
    EXPECT_EQ(Registry::instance().by_id(e.id), e.codec);
    EXPECT_EQ(Registry::instance().id_of(*e.codec), e.id);
  }
}

TEST(RegistryTest, NamesAreUniqueAndResolvable) {
  std::set<std::string> names;
  for (const auto& e : Registry::instance().all()) {
    EXPECT_TRUE(names.insert(e.codec->name()).second)
        << "duplicate name " << e.codec->name();
    EXPECT_EQ(Registry::instance().by_name(e.codec->name()), e.codec);
  }
}

TEST(RegistryTest, PaperAliasesResolve) {
  for (const char* alias : {"lzsse8", "lz4hc", "lzma", "xz", "brotli", "zling",
                            "lzf", "lz4fast", "deflate", "huff"}) {
    EXPECT_NE(Registry::instance().by_name(alias), nullptr) << alias;
  }
}

TEST(RegistryTest, UnknownLookupsFail) {
  EXPECT_EQ(Registry::instance().by_id(65535), nullptr);
  EXPECT_EQ(Registry::instance().by_name("no-such-codec"), nullptr);
  EXPECT_THROW(Registry::instance().id_by_name("no-such-codec"), std::invalid_argument);
}

}  // namespace
}  // namespace fanstore::compress
