#include "core/fanstore_fs.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fanstore::core {

FanStoreFs::IoMetrics::IoMetrics(obs::MetricsRegistry& m)
    : opens(m.counter("fs.opens")),
      cache_hits(m.counter("cache.hits")),
      local_misses(m.counter("fs.local_misses")),
      remote_fetches(m.counter("fs.remote_fetches")),
      direct_fetches(m.counter("fs.direct_fetches")),
      bytes_read(m.counter("fs.bytes_read")),
      bytes_written(m.counter("fs.bytes_written")),
      remote_bytes(m.counter("fs.remote_bytes")),
      failovers(m.counter("fs.failovers")),
      retry_attempts(m.counter("retry.attempts")),
      retry_timeouts(m.counter("retry.timeouts")),
      retry_crc_rejects(m.counter("retry.crc_rejects")),
      retry_backoff_ms(m.counter("retry.backoff_ms")),
      retry_exhausted(m.counter("retry.exhausted")),
      open_us(m.histogram("fs.open_us")),
      read_us(m.histogram("fs.read_us")),
      load_us(m.histogram("fs.load_us")),
      fetch_us(m.histogram("fs.fetch_us")),
      chunks_decoded(m.counter("chunked.chunks_decoded")),
      chunked_bytes_decoded(m.counter("chunked.bytes_decoded")),
      partial_reads(m.counter("chunked.partial_reads")),
      chunks_avoided(m.counter("chunked.chunks_avoided")),
      parallel_decodes(m.counter("chunked.parallel_decodes")),
      decode_us(m.histogram("chunked.decode_us")) {}

namespace {

TieredCache::Options tier_options(const FanStoreFs::Options& o,
                                  obs::MetricsRegistry* metrics) {
  TieredCache::Options t;
  t.plain_bytes = o.cache_bytes;
  t.plain_shards = o.cache_shards;
  t.compressed_bytes = o.compressed_cache_bytes;
  t.spill_bytes = o.spill_bytes;
  t.spill_fs = o.spill_fs;
  t.spill_root = o.spill_root;
  t.promote_after_hits = o.promote_after_hits;
  t.plain_admit_max_bytes = o.plain_admit_max_bytes;
  t.metrics = metrics;
  t.clock = o.clock;
  t.charge_costs = o.cost.enabled;
  t.charge_decompress = o.cost.charge_decompress;
  t.spill_storage = o.cost.spill_storage;
  return t;
}

}  // namespace

FanStoreFs::FanStoreFs(mpi::Comm comm, MetadataStore* meta,
                       CompressedBackend* backend, Options options)
    : comm_(comm),
      meta_(meta),
      backend_(backend),
      options_(options),
      owned_metrics_(options.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : owned_metrics_.get()),
      cache_(tier_options(options, metrics_)),
      io_(*metrics_) {
  if (options_.fetch_timeout_ms < 0) {
    throw std::invalid_argument(
        "FanStoreFs: fetch_timeout_ms must be >= 0 (0 = no timeout)");
  }
  if (options_.failover_hops < 0) {
    throw std::invalid_argument("FanStoreFs: failover_hops must be >= 0");
  }
  options_.retry.validate();
}

int FanStoreFs::home_rank(std::string_view path) const {
  return static_cast<int>(std::hash<std::string_view>{}(path) %
                          static_cast<std::size_t>(comm_.size()));
}

FanStoreFs::FetchStatus FanStoreFs::fetch_from(int rank, const std::string& path,
                                               const format::FileStat& stat,
                                               Blob* out) {
  obs::TraceSpan span("fs.fetch", options_.clock);
  // Node-local fast path: a peer registered in the PeerDirectory is read
  // directly — no request encode, reply buffer, or daemon-thread hop. The
  // network cost model is still charged: ranks model nodes, the directory
  // only removes the simulation's copy overhead.
  if (options_.peers != nullptr) {
    if (const CompressedBackend* peer = options_.peers->find(rank)) {
      std::optional<Blob> direct = peer->get(path);
      if (!direct) return FetchStatus::kMiss;
      charge(options_.cost.network.transfer_time(direct->data.size(),
                                                 options_.cost.nodes));
      if (options_.cost.charge_remote_service) {
        // Owner-side service time (request handling + backend lookup): the
        // measured local/remote gap beyond wire time (paper Tables III/VI).
        charge(options_.cost.remote_service.file_read_time(direct->data.size()));
      }
      io_.remote_fetches.inc();
      io_.direct_fetches.inc();
      io_.remote_bytes.inc(direct->data.size());
      *out = std::move(*direct);
      return FetchStatus::kOk;
    }
  }
  const std::uint32_t reply_tag =
      static_cast<std::uint32_t>(kReplyTagBase) +
      (reply_seq_.fetch_add(1, std::memory_order_relaxed) % 1000000u);
  comm_.send(rank, kTagFetch, encode_fetch_request(reply_tag, path));
  std::optional<mpi::Message> reply;
  if (options_.fetch_timeout_ms > 0) {
    reply = comm_.recv_timeout(rank, static_cast<int>(reply_tag),
                               options_.fetch_timeout_ms);
    if (!reply) {
      FANSTORE_LOG_WARN("fanstore rank ", comm_.rank(), ": fetch of ", path,
                        " from rank ", rank, " timed out");
      return FetchStatus::kTimeout;  // presumed-dead daemon
    }
  } else {
    // fetch_timeout_ms == 0: no timeout — wait for the answer forever.
    reply = comm_.recv(rank, static_cast<int>(reply_tag));
  }
  // Wire crc first: a corrupted reply must never be interpreted — not even
  // its status byte (a flipped kFetchOk would otherwise read as a
  // definitive miss, a flipped kFetchNotFound as data).
  if (!fetch_reply_crc_ok(as_view(reply->payload))) {
    io_.retry_crc_rejects.inc();
    FANSTORE_LOG_WARN("fanstore rank ", comm_.rank(), ": fetch of ", path,
                      " from rank ", rank, ": reply failed wire crc");
    return FetchStatus::kBadReply;
  }
  if (reply->payload[0] == kFetchNotFound) return FetchStatus::kMiss;
  if (reply->payload[0] != kFetchOk) {
    // kFetchMalformed: our *request* was damaged in flight — retry it.
    return FetchStatus::kBadReply;
  }
  Blob fetched;
  fetched.compressor = load_le<std::uint16_t>(reply->payload.data() + 1);
  const std::uint64_t raw_size = load_le<std::uint64_t>(reply->payload.data() + 3);
  fetched.data.assign(reply->payload.begin() + kFetchReplyHeaderBytes,
                      reply->payload.end());
  // raw_size == 0 means the serving daemon has no metadata for this path.
  // That is normal under sharded metadata (§13): data placement and
  // metadata placement are decoupled, so the rank holding the blob may not
  // own the path's metadata shard. Only a *known* differing size marks the
  // blob as a stale/other version.
  if (raw_size != 0 && raw_size != stat.size) return FetchStatus::kMiss;
  charge(options_.cost.network.transfer_time(fetched.data.size(), options_.cost.nodes));
  if (options_.cost.charge_remote_service) {
    charge(options_.cost.remote_service.file_read_time(fetched.data.size()));
  }
  io_.remote_fetches.inc();
  io_.remote_bytes.inc(fetched.data.size());
  *out = std::move(fetched);
  return FetchStatus::kOk;
}

std::optional<Blob> FanStoreFs::fetch_remote(const std::string& path,
                                             const format::FileStat& stat) {
  // Remote fetch from the owner's daemon (Fig. 2, remote branch). A
  // retryable failure (timeout, CRC-rejected reply) is retried against the
  // same candidate with exponential backoff + deterministic jitter; a
  // definitive miss moves failover on around the ring, where
  // replicate_ring() may have placed copies.
  const int owner = static_cast<int>(stat.owner_rank);
  const RetryPolicy& retry = options_.retry;
  const std::uint64_t salt =
      std::hash<std::string>{}(path) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(comm_.rank())) << 40);
  WallTimer timer;
  std::optional<Blob> blob;
  for (int hop = 0; hop <= options_.failover_hops && !blob; ++hop) {
    const int candidate = (owner + hop) % comm_.size();
    if (candidate == comm_.rank()) continue;  // local backend already missed
    for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
      Blob fetched;
      const FetchStatus st = fetch_from(candidate, path, stat, &fetched);
      if (st == FetchStatus::kOk) {
        blob = std::move(fetched);
        if (hop > 0) io_.failovers.inc();
        break;
      }
      if (st == FetchStatus::kMiss) break;  // definitive: next ring candidate
      if (st == FetchStatus::kTimeout) io_.retry_timeouts.inc();
      if (attempt == retry.max_attempts) {
        io_.retry_exhausted.inc();
        break;
      }
      io_.retry_attempts.inc();
      const int backoff = retry.delay_ms(
          attempt, salt ^ static_cast<std::uint64_t>(candidate));
      if (backoff > 0) {
        io_.retry_backoff_ms.inc(static_cast<std::uint64_t>(backoff));
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
    }
  }
  io_.fetch_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
  return blob;
}

std::size_t FanStoreFs::decode_threads() const {
  if (options_.decode_threads != 0) return options_.decode_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ColdResult FanStoreFs::load_cached(const std::string& path,
                                   const format::FileStat& stat) {
  obs::TraceSpan span("fs.load", options_.clock);
  WallTimer timer;
  ColdResult result;
  std::optional<Blob> blob = backend_->get(path);
  if (!blob && static_cast<int>(stat.owner_rank) != comm_.rank()) {
    blob = fetch_remote(path, stat);
    if (!blob) {
      throw std::runtime_error("fanstore: remote fetch failed for " + path);
    }
    result.source = ColdSource::kPeer;
  } else if (blob) {
    io_.local_misses.inc();
  }
  if (!blob) {
    throw std::runtime_error("fanstore: owner rank has no data for " + path);
  }
  result.plain_crc = stat.crc;
  if (compress::is_chunked_id(blob->compressor)) {
    // Chunked frame: parse + validate now, decode nothing. Chunks decode
    // (and their cost is charged) exactly once each, wherever they first
    // materialize — eager open, prefetch warm, or a pread range. The frame
    // stays inside the CachedFile, so the tiered cache demotes it without
    // a separate compressed copy here.
    result.file = std::make_shared<CachedFile>(std::move(blob->data),
                                               blob->compressor, stat.size);
    io_.load_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
    return result;
  }
  const compress::Compressor* codec =
      compress::Registry::instance().by_id(blob->compressor);
  if (codec == nullptr) {
    throw std::runtime_error("fanstore: unknown compressor id for " + path);
  }
  Bytes plain = codec->decompress(as_view(blob->data), stat.size);
  if (stat.crc != 0 && crc32(as_view(plain)) != stat.crc) {
    throw std::runtime_error("fanstore: CRC mismatch for " + path);
  }
  if (options_.cost.charge_decompress && blob->compressor != 0) {
    charge(simnet::CodecSpeedTable::shared().decompress_seconds(blob->compressor,
                                                                plain.size()));
  }
  if (blob->compressor != 0 && cache_.wants_cold_compressed(stat.size)) {
    // The tiered cache wants the flat compressed form for write-through
    // admission (admit-to-compressed-only) — hand it over instead of
    // discarding it.
    result.compressed = std::move(blob->data);
    result.compressor = blob->compressor;
  }
  io_.load_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
  result.file = std::make_shared<CachedFile>(std::move(plain));
  return result;
}

void FanStoreFs::charge_chunk_decode(const CachedFile& file,
                                     const CachedFile::DecodeStats& stats,
                                     std::size_t threads) {
  if (stats.chunks_decoded == 0) return;
  io_.chunks_decoded.inc(stats.chunks_decoded);
  io_.chunked_bytes_decoded.inc(stats.bytes_decoded);
  if (options_.cost.charge_decompress && file.inner_id() != 0) {
    charge(simnet::CodecSpeedTable::shared().chunked_decompress_seconds(
        file.inner_id(), stats.bytes_decoded, stats.chunks_decoded, threads));
  }
}

void FanStoreFs::materialize_entry(const std::string& path, CachedFile& file) {
  if (file.fully_materialized()) return;
  obs::TraceSpan span("fs.chunked_decode", options_.clock);
  WallTimer timer;
  const std::size_t threads = decode_threads();
  if (threads > 1 && file.chunk_count() > 1) io_.parallel_decodes.inc();
  CachedFile::DecodeStats ds;
  file.materialize_all(threads, &ds);
  charge_chunk_decode(file, ds, threads);
  io_.decode_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
  cache_.recharge(path);
  // Whole-file crc check happens here, when the last chunk lands (the
  // per-chunk compressed crcs already caught corruption chunk-wise).
  const auto stat = stat_of(path);
  if (stat && stat->crc != 0 && crc32(as_view(file.plain())) != stat->crc) {
    throw std::runtime_error("fanstore: CRC mismatch for " + path);
  }
}

std::optional<format::FileStat> FanStoreFs::stat_of(const std::string& path) {
  if (const auto local = meta_->lookup(path)) return local;
  if (!sharded_meta()) return std::nullopt;
  const auto remote = options_.meta_resolver->resolve(path);
  if (!remote) return std::nullopt;
  return remote->stat;
}

bool FanStoreFs::warm_file(std::string_view path) {
  const int fd = open(path, posixfs::OpenMode::kRead);
  if (fd < 0) return false;
  // Eager open already decoded everything; in lazy mode warming must finish
  // the job so the training thread's reads are pure cache hits.
  const int rc = materialize(fd);
  close(fd);
  return rc == 0;
}

int FanStoreFs::materialize(int fd) {
  std::shared_ptr<OpenFile> of;
  {
    sync::MutexLock lk(fd_mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = it->second;
  }
  if (of->mode != posixfs::OpenMode::kRead || of->pinned == nullptr) {
    return -EBADF;
  }
  try {
    materialize_entry(of->path, *of->pinned);
  } catch (const std::exception& e) {
    FANSTORE_LOG_WARN("fanstore materialize(", of->path, "): ", e.what());
    return -EIO;
  }
  return 0;
}

bool FanStoreFs::prefetch_compressed(std::string_view path_in) {
  const std::string path = posixfs::normalize_path(path_in);
  if (path.empty()) return false;
  const auto stat = stat_of(path);
  if (!stat || stat->type != format::FileType::kRegular) return false;
  if (cache_.contains_any(path)) return true;  // resident in some local tier
  if (backend_->contains(path)) return true;  // compressed blob already local
  if (static_cast<int>(stat->owner_rank) == comm_.rank()) return false;
  try {
    std::optional<Blob> blob = fetch_remote(path, *stat);
    if (!blob) return false;
    // Stage the compressed bytes locally; open() decompresses later with
    // the network already off its critical path.
    backend_->put(path, std::move(*blob));
    return true;
  } catch (const std::exception& e) {
    FANSTORE_LOG_WARN("fanstore prefetch_compressed(", path, "): ", e.what());
    return false;
  }
}

int FanStoreFs::open(std::string_view path_in, posixfs::OpenMode mode) {
  obs::TraceSpan span("fs.open", options_.clock);
  WallTimer timer;
  const std::string path = posixfs::normalize_path(path_in);
  if (path.empty()) return -EINVAL;
  charge_metadata();

  if (mode == posixfs::OpenMode::kWrite) {
    // Multi-read/single-write model: write-once, one writer at a time
    // (under sharded metadata the existence check spans the shard owners).
    const auto existing = stat_of(path);
    if (existing && existing->type == format::FileType::kRegular) {
      return -EEXIST;
    }
    {
      sync::MutexLock lk(writer_mu_);
      if (!writing_.insert(path).second) return -EBUSY;
    }
    auto of = std::make_shared<OpenFile>();
    of->path = path;
    of->mode = mode;
    sync::MutexLock lk(fd_mu_);
    const int fd = next_fd_++;
    open_files_[fd] = std::move(of);
    return fd;
  }

  const auto stat = stat_of(path);
  if (!stat) return -ENOENT;
  if (stat->type == format::FileType::kDirectory) return -EISDIR;
  charge(options_.cost.read_path.per_op_s);

  std::shared_ptr<CachedFile> pinned;
  try {
    // The loader (fetch + decompress) runs inside the cache's single-flight
    // slot with no FanStoreFs lock held; concurrent opens of one path load
    // it once and share the result. Hit/miss accounting lives in the
    // cache's own "cache.*" counters (same registry).
    pinned = cache_.acquire_file(path, [&] { return load_cached(path, *stat); });
  } catch (const std::exception& e) {
    FANSTORE_LOG_WARN("fanstore open(", path, "): ", e.what());
    return -EIO;
  }
  if (!options_.lazy_chunked_open && !pinned->fully_materialized()) {
    // Eager mode (default): decode every chunk now, in parallel — open()
    // keeps its classic "returns fully decompressed" contract but the
    // decompress step no longer serializes on one core.
    try {
      materialize_entry(path, *pinned);
    } catch (const std::exception& e) {
      FANSTORE_LOG_WARN("fanstore open(", path, "): ", e.what());
      pinned.reset();
      cache_.release(path);
      return -EIO;
    }
  }
  io_.opens.inc();
  auto of = std::make_shared<OpenFile>();
  of->path = path;
  of->mode = mode;
  of->pinned = std::move(pinned);
  sync::MutexLock lk(fd_mu_);
  const int fd = next_fd_++;
  open_files_[fd] = std::move(of);
  io_.open_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
  return fd;
}

int FanStoreFs::close(int fd) {
  obs::TraceSpan span("fs.close", options_.clock);
  std::shared_ptr<OpenFile> of;
  {
    sync::MutexLock lk(fd_mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = std::move(it->second);
    open_files_.erase(it);
  }
  if (of->mode == posixfs::OpenMode::kRead) {
    cache_.release(of->path);
    return 0;
  }
  // Write close: dump to the local backend and forward metadata (§V-D).
  const compress::Compressor* codec =
      compress::Registry::instance().by_id(options_.write_compressor);
  if (codec == nullptr) return -EIO;
  Bytes plain;
  {
    sync::MutexLock flk(of->mu);
    plain = std::move(of->buffer);
  }
  Blob blob;
  blob.compressor = options_.write_compressor;
  blob.data = codec->compress(as_view(plain));

  format::FileStat stat;
  stat.size = plain.size();
  stat.compressed_size = blob.data.size();
  stat.crc = crc32(as_view(plain));
  stat.type = format::FileType::kRegular;
  stat.owner_rank = static_cast<std::uint32_t>(comm_.rank());

  charge(options_.cost.read_path.file_write_time(blob.data.size()));
  backend_->put(of->path, std::move(blob));
  if (sharded_meta()) {
    // Sharded model (§13): the metadata replicates to every shard owner
    // with a (version, writer) tag; concurrent writers of one path resolve
    // by deterministic last-writer-wins at each replica, no home-rank
    // forwarding hop.
    const cluster::VersionedStat entry{stat, 1,
                                       static_cast<std::uint32_t>(comm_.rank())};
    meta_->insert_versioned(of->path, entry);
    for (const int owner : options_.meta_resolver->meta_owners(of->path)) {
      if (owner == comm_.rank()) continue;
      comm_.send(owner, kTagWriteMeta, encode_write_meta_versioned(of->path, entry));
      charge(options_.cost.network.transfer_time(
          of->path.size() + format::kStatBytes + 12, options_.cost.nodes));
    }
  } else {
    meta_->insert(of->path, stat);
    const int home = home_rank(of->path);
    if (home != comm_.rank()) {
      comm_.send(home, kTagWriteMeta, encode_write_meta(of->path, stat));
      charge(options_.cost.network.transfer_time(of->path.size() + format::kStatBytes,
                                                 options_.cost.nodes));
    }
  }
  {
    sync::MutexLock lk(writer_mu_);
    writing_.erase(of->path);
  }
  io_.bytes_written.inc(stat.size);
  return 0;
}

std::int64_t FanStoreFs::read(int fd, MutByteView buf) {
  obs::TraceSpan span("fs.read", options_.clock);
  WallTimer timer;
  std::shared_ptr<OpenFile> of;
  {
    sync::MutexLock lk(fd_mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = it->second;
  }
  if (of->mode != posixfs::OpenMode::kRead) return -EBADF;
  CachedFile& file = *of->pinned;
  std::size_t n = 0;
  CachedFile::DecodeStats ds;
  {
    // Copy under the per-file lock only: reads of different fds proceed in
    // parallel (the seed serialized every copy behind the global fs lock).
    // Lazy chunked entries decode the touched chunks inline
    // (fanstore_fs.file.mu -> cached_file.mu is a documented leaf edge).
    sync::MutexLock flk(of->mu);
    if (of->offset >= static_cast<std::int64_t>(file.size())) return 0;
    n = std::min(buf.size(), file.size() - static_cast<std::size_t>(of->offset));
    try {
      file.read_range(static_cast<std::size_t>(of->offset),
                      MutByteView(buf.data(), n), &ds);
    } catch (const std::exception& e) {
      FANSTORE_LOG_WARN("fanstore read(", of->path, "): ", e.what());
      return -EIO;
    }
    of->offset += static_cast<std::int64_t>(n);
  }
  if (ds.chunks_decoded > 0) {
    charge_chunk_decode(file, ds, 1);  // inline range decode is serial
    cache_.recharge(of->path);
  }
  charge(static_cast<double>(n) / options_.cost.read_path.bandwidth_bps);
  io_.bytes_read.inc(n);
  io_.read_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
  return static_cast<std::int64_t>(n);
}

std::int64_t FanStoreFs::pread(int fd, MutByteView buf, std::uint64_t offset) {
  obs::TraceSpan span("fs.pread", options_.clock);
  WallTimer timer;
  std::shared_ptr<OpenFile> of;
  {
    sync::MutexLock lk(fd_mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = it->second;
  }
  if (of->mode != posixfs::OpenMode::kRead) return -EBADF;
  CachedFile& file = *of->pinned;
  if (offset >= file.size()) return 0;
  const std::size_t n =
      std::min(buf.size(), file.size() - static_cast<std::size_t>(offset));
  // No cursor: the per-file mutex is not needed — the entry is immutable
  // except for chunk materialization, which CachedFile coordinates itself.
  const bool was_partial = !file.fully_materialized();
  CachedFile::DecodeStats ds;
  try {
    file.read_range(static_cast<std::size_t>(offset), MutByteView(buf.data(), n),
                    &ds);
  } catch (const std::exception& e) {
    FANSTORE_LOG_WARN("fanstore pread(", of->path, "): ", e.what());
    return -EIO;
  }
  if (ds.chunks_decoded > 0) {
    charge_chunk_decode(file, ds, 1);  // per-range decode charges only
    cache_.recharge(of->path);         // the decoded bytes, serially
  }
  if (was_partial && file.is_chunked()) {
    // The headline win, made observable: this read finished without the
    // whole file decoded, skipping every non-overlapping chunk.
    const std::size_t cs = file.chunk_size();
    const std::size_t touched =
        (static_cast<std::size_t>(offset) + n - 1) / cs -
        static_cast<std::size_t>(offset) / cs + 1;
    io_.partial_reads.inc();
    io_.chunks_avoided.inc(file.chunk_count() - touched);
  }
  charge(static_cast<double>(n) / options_.cost.read_path.bandwidth_bps);
  io_.bytes_read.inc(n);
  io_.read_us.record(static_cast<std::uint64_t>(timer.elapsed_us()));
  return static_cast<std::int64_t>(n);
}

std::int64_t FanStoreFs::write(int fd, ByteView buf) {
  std::shared_ptr<OpenFile> of;
  {
    sync::MutexLock lk(fd_mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = it->second;
  }
  if (of->mode != posixfs::OpenMode::kWrite) return -EBADF;
  sync::MutexLock flk(of->mu);
  const auto end = static_cast<std::size_t>(of->offset) + buf.size();
  if (end > of->buffer.size()) of->buffer.resize(end);
  std::copy(buf.begin(), buf.end(),
            of->buffer.begin() + static_cast<std::ptrdiff_t>(of->offset));
  of->offset += static_cast<std::int64_t>(buf.size());
  return static_cast<std::int64_t>(buf.size());
}

std::int64_t FanStoreFs::lseek(int fd, std::int64_t offset, posixfs::Whence whence) {
  std::shared_ptr<OpenFile> of;
  {
    sync::MutexLock lk(fd_mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = it->second;
  }
  sync::MutexLock flk(of->mu);
  std::int64_t base = 0;
  switch (whence) {
    case posixfs::Whence::kSet: base = 0; break;
    case posixfs::Whence::kCur: base = of->offset; break;
    case posixfs::Whence::kEnd:
      base = of->mode == posixfs::OpenMode::kRead
                 ? static_cast<std::int64_t>(of->pinned->size())
                 : static_cast<std::int64_t>(of->buffer.size());
      break;
  }
  const std::int64_t pos = base + offset;
  if (pos < 0) return -EINVAL;
  of->offset = pos;
  return pos;
}

int FanStoreFs::stat(std::string_view path_in, format::FileStat* out) {
  const std::string path = posixfs::normalize_path(path_in);
  charge_metadata();
  const auto st = stat_of(path);
  if (!st) return -ENOENT;
  *out = *st;
  return 0;
}

int FanStoreFs::opendir(std::string_view path_in) {
  const std::string path = posixfs::normalize_path(path_in);
  charge_metadata();
  std::vector<posixfs::Dirent> entries;
  if (sharded_meta()) {
    // Sharded namespace: the local store only indexes directories whose
    // children hash here, so existence and listing union across ranks.
    if (!options_.meta_resolver->dir_exists_union(path)) return -ENOENT;
    entries = options_.meta_resolver->list_union(path);
  } else {
    if (!meta_->dir_exists(path)) return -ENOENT;
    entries = meta_->list(path);
  }
  sync::MutexLock lk(dir_mu_);
  const int h = next_dir_++;
  open_dirs_[h] = OpenDir{std::move(entries), 0};
  return h;
}

std::optional<posixfs::Dirent> FanStoreFs::readdir(int dir_handle) {
  charge_metadata();
  sync::MutexLock lk(dir_mu_);
  const auto it = open_dirs_.find(dir_handle);
  if (it == open_dirs_.end()) return std::nullopt;
  if (it->second.next >= it->second.entries.size()) return std::nullopt;
  return it->second.entries[it->second.next++];
}

int FanStoreFs::closedir(int dir_handle) {
  sync::MutexLock lk(dir_mu_);
  return open_dirs_.erase(dir_handle) > 0 ? 0 : -EBADF;
}

FanStoreFs::IoStats FanStoreFs::stats() const {
  // Thin shim over the registry — the counters themselves are the source
  // of truth (fanstore_metrics_dump() and stats() can never disagree).
  IoStats out;
  out.opens = io_.opens.value();
  out.cache_hits = io_.cache_hits.value();
  out.local_misses = io_.local_misses.value();
  out.remote_fetches = io_.remote_fetches.value();
  out.direct_fetches = io_.direct_fetches.value();
  out.bytes_read = io_.bytes_read.value();
  out.bytes_written = io_.bytes_written.value();
  out.remote_bytes = io_.remote_bytes.value();
  out.failovers = io_.failovers.value();
  return out;
}

}  // namespace fanstore::core
