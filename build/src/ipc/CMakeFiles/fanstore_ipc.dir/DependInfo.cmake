
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipc/protocol.cpp" "src/ipc/CMakeFiles/fanstore_ipc.dir/protocol.cpp.o" "gcc" "src/ipc/CMakeFiles/fanstore_ipc.dir/protocol.cpp.o.d"
  "/root/repo/src/ipc/uds_client.cpp" "src/ipc/CMakeFiles/fanstore_ipc.dir/uds_client.cpp.o" "gcc" "src/ipc/CMakeFiles/fanstore_ipc.dir/uds_client.cpp.o.d"
  "/root/repo/src/ipc/uds_server.cpp" "src/ipc/CMakeFiles/fanstore_ipc.dir/uds_server.cpp.o" "gcc" "src/ipc/CMakeFiles/fanstore_ipc.dir/uds_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/posixfs/CMakeFiles/fanstore_posixfs.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/fanstore_format.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fanstore_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
