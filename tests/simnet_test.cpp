// Tests for the virtual clock and the device/network/MDS cost models,
// including the Table III calibration shapes.
#include <gtest/gtest.h>

#include <thread>

#include "compress/registry.hpp"
#include "simnet/codec_speed.hpp"
#include "simnet/models.hpp"
#include "simnet/virtual_clock.hpp"
#include "tests/sanitizer_env.hpp"

namespace fanstore::simnet {
namespace {

TEST(VirtualClockTest, AdvanceAndReadback) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_sec(), 0.0);
  clock.advance_sec(1.5);
  clock.advance_sec(0.25);
  EXPECT_NEAR(clock.now_sec(), 1.75, 1e-9);
  clock.advance_sec(-5);  // negative charges are ignored
  EXPECT_NEAR(clock.now_sec(), 1.75, 1e-9);
  clock.advance_to_sec(1.0);  // cannot go backwards
  EXPECT_NEAR(clock.now_sec(), 1.75, 1e-9);
  clock.advance_to_sec(3.0);
  EXPECT_NEAR(clock.now_sec(), 3.0, 1e-9);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now_sec(), 0.0);
}

TEST(VirtualClockTest, ConcurrentChargesAccumulate) {
  VirtualClock clock;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) clock.advance_sec(1e-6);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_NEAR(clock.now_sec(), 8e-3, 1e-5);
}

TEST(NetworkModelTest, LatencyAndBandwidth) {
  const NetworkModel net = fdr_infiniband();
  // Small message: latency dominated.
  EXPECT_NEAR(net.transfer_time(0, 4), net.latency_s, 1e-12);
  // Large message: bandwidth dominated; 7 GB/s-ish for FDR.
  const double t = net.transfer_time(700 * 1000 * 1000, 4);
  EXPECT_GT(t, 0.09);
  EXPECT_LT(t, 0.2);
  // Contention: more nodes -> lower effective bandwidth.
  EXPECT_GT(net.effective_bandwidth(2), net.effective_bandwidth(512));
}

TEST(StorageModelTest, TableThreeShape) {
  // Table III read throughput ordering at every size:
  //   SSD > FanStore > FUSE > Lustre, with FanStore at 71-99% of raw SSD.
  const StorageModel ssd = ssd_storage();
  const StorageModel fan = fanstore_storage();
  const StorageModel fuse = fuse_ssd_storage();
  const StorageModel lustre = lustre_storage();
  for (const std::size_t size : {128u * 1024u, 512u * 1024u, 2048u * 1024u,
                                 8192u * 1024u}) {
    const double t_ssd = ssd.file_read_time(size);
    const double t_fan = fan.file_read_time(size);
    const double t_fuse = fuse.file_read_time(size);
    const double t_lustre = lustre.file_read_time(size);
    EXPECT_LT(t_ssd, t_fan) << size;
    EXPECT_LT(t_fan, t_fuse) << size;
    EXPECT_LT(t_fuse, t_lustre) << size;
    EXPECT_GT(t_ssd / t_fan, 0.55) << size;  // FanStore close to raw SSD
    EXPECT_GT(t_fuse / t_fan, 2.0) << size;  // paper: 2.9-4.4x vs FUSE
  }
  // Absolute calibration at 128 KB: FanStore ~28k files/s (Table III).
  const double files_per_s = 1.0 / fan.file_read_time(128 * 1024);
  EXPECT_GT(files_per_s, 15000);
  EXPECT_LT(files_per_s, 45000);
}

TEST(MetadataServerTest, SaturationMeltdown) {
  const MetadataServerModel mds;
  EXPECT_NEAR(mds.capacity_ops(), 98000, 1000);
  const double light = mds.response_time(1000);    // rho = 0.01
  const double heavy = mds.response_time(90000);   // rho = 0.9
  const double melt = mds.response_time(200000);   // rho >> 1
  EXPECT_LT(light, 100e-6);
  EXPECT_GT(heavy, light * 2);
  EXPECT_GE(melt, 10.0);  // the "ran for an hour" regime (§VII-F)
}

TEST(ClusterSpecTest, PaperPlatforms) {
  EXPECT_EQ(gtx_cluster().max_nodes, 16);
  EXPECT_EQ(v100_cluster().max_nodes, 4);
  EXPECT_EQ(cpu_cluster().max_nodes, 512);
  EXPECT_NEAR(gtx_cluster().local_capacity_bytes, 60e9, 1e9);
  EXPECT_EQ(v100_cluster().local_storage.name, "ramdisk");
}

TEST(CodecSpeedTest, CalibratesAndOrdersCodecs) {
  auto& table = CodecSpeedTable::shared();
  const auto& reg = compress::Registry::instance();
  const auto fast = table.decompress_bps(reg.id_by_name("lzsse8"));
  const auto slow = table.decompress_bps(reg.id_by_name("lzma"));
  if (!testsupport::kUnderSanitizer) {
    EXPECT_GT(fast, 200e6);     // byte-LZ: hundreds of MB/s or more
    EXPECT_GT(fast, slow * 5);  // range coder is far slower
  }
  // Derived per-byte cost is consistent.
  EXPECT_NEAR(table.decompress_seconds(reg.id_by_name("lzsse8"), 1 << 20),
              (1 << 20) / fast, 1e-9);
}

TEST(CodecSpeedTest, OverrideForTests) {
  auto& table = CodecSpeedTable::shared();
  table.set_decompress_bps(9999, 1e9);
  EXPECT_DOUBLE_EQ(table.decompress_bps(9999), 1e9);
}

TEST(CodecSpeedTest, UnknownIdThrows) {
  EXPECT_THROW(CodecSpeedTable::shared().decompress_bps(60000),
               std::invalid_argument);
}

}  // namespace
}  // namespace fanstore::simnet
