#include "compress/suffix_array.hpp"

#include <algorithm>
#include <numeric>

namespace fanstore::compress {

namespace {

// Generic SA-IS over an integer alphabet. `text` must end with a unique
// smallest sentinel (0). Writes the suffix array (including the sentinel
// suffix at position 0) into `sa`.
void sais_core(const std::vector<std::uint32_t>& text, std::uint32_t alphabet,
               std::vector<std::uint32_t>& sa) {
  const std::size_t n = text.size();
  constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  sa.assign(n, kEmpty);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // 1. Classify suffixes: S-type (true) or L-type.
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (std::size_t i = n - 1; i-- > 0;) {
    is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](std::size_t i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  // Bucket boundaries per symbol.
  std::vector<std::uint32_t> bucket_sizes(alphabet, 0);
  for (const auto c : text) bucket_sizes[c]++;
  std::vector<std::uint32_t> bucket_heads(alphabet), bucket_tails(alphabet);
  auto reset_buckets = [&] {
    std::uint32_t acc = 0;
    for (std::uint32_t c = 0; c < alphabet; ++c) {
      bucket_heads[c] = acc;
      acc += bucket_sizes[c];
      bucket_tails[c] = acc;  // exclusive end
    }
  };

  // Induced sort given LMS positions placed at bucket tails.
  auto induce = [&](const std::vector<std::uint32_t>& lms_order) {
    std::fill(sa.begin(), sa.end(), kEmpty);
    reset_buckets();
    // Place LMS suffixes at the tails of their buckets (in reverse order).
    std::vector<std::uint32_t> tails = bucket_tails;
    for (std::size_t k = lms_order.size(); k-- > 0;) {
      const std::uint32_t i = lms_order[k];
      sa[--tails[text[i]]] = i;
    }
    // Left-to-right pass: induce L-type suffixes.
    std::vector<std::uint32_t> heads = bucket_heads;
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t j = sa[k];
      if (j == kEmpty || j == 0) continue;
      const std::uint32_t i = j - 1;
      if (!is_s[i]) sa[heads[text[i]]++] = i;
    }
    // Right-to-left pass: induce S-type suffixes (overwrites LMS slots).
    tails = bucket_tails;
    for (std::size_t k = n; k-- > 0;) {
      const std::uint32_t j = sa[k];
      if (j == kEmpty || j == 0) continue;
      const std::uint32_t i = j - 1;
      if (is_s[i]) sa[--tails[text[i]]] = i;
    }
  };

  // 2. Collect LMS positions in text order.
  std::vector<std::uint32_t> lms;
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(i)) lms.push_back(static_cast<std::uint32_t>(i));
  }
  induce(lms);

  // 3. Name LMS substrings from their sorted order.
  std::vector<std::uint32_t> sorted_lms;
  sorted_lms.reserve(lms.size());
  for (std::size_t k = 0; k < n; ++k) {
    if (sa[k] != kEmpty && is_lms(sa[k])) sorted_lms.push_back(sa[k]);
  }
  std::vector<std::uint32_t> name_of(n, kEmpty);
  std::uint32_t names = 0;
  std::uint32_t prev = kEmpty;
  auto lms_equal = [&](std::uint32_t a, std::uint32_t b) {
    // Compare LMS substrings starting at a and b (inclusive of the next
    // LMS position).
    for (std::size_t d = 0;; ++d) {
      const bool a_lms = d > 0 && is_lms(a + d);
      const bool b_lms = d > 0 && is_lms(b + d);
      if (text[a + d] != text[b + d] || is_s[a + d] != is_s[b + d]) return false;
      if (a_lms || b_lms) return a_lms && b_lms;
    }
  };
  for (const auto pos : sorted_lms) {
    if (prev == kEmpty || !lms_equal(prev, pos)) ++names;
    name_of[pos] = names - 1;
    prev = pos;
  }

  // 4. Recurse if names are not yet unique.
  std::vector<std::uint32_t> lms_order(lms.size());
  if (names < lms.size()) {
    std::vector<std::uint32_t> reduced(lms.size());
    for (std::size_t k = 0; k < lms.size(); ++k) reduced[k] = name_of[lms[k]];
    std::vector<std::uint32_t> sub_sa;
    sais_core(reduced, names, sub_sa);
    for (std::size_t k = 0; k < lms.size(); ++k) lms_order[k] = lms[sub_sa[k]];
  } else {
    lms_order = sorted_lms;
  }

  // 5. Final induced sort with correctly ordered LMS suffixes.
  induce(lms_order);
}

}  // namespace

std::vector<std::uint32_t> suffix_array_sais(ByteView s) {
  const std::size_t n = s.size();
  if (n == 0) return {};
  // Append the sentinel (0) and shift the alphabet by +1.
  std::vector<std::uint32_t> text(n + 1);
  for (std::size_t i = 0; i < n; ++i) text[i] = static_cast<std::uint32_t>(s[i]) + 1;
  text[n] = 0;
  std::vector<std::uint32_t> sa;
  sais_core(text, 257, sa);
  // Drop the sentinel suffix (always first).
  return std::vector<std::uint32_t>(sa.begin() + 1, sa.end());
}

std::vector<std::uint32_t> suffix_array_doubling(ByteView s) {
  const std::size_t n = s.size();
  std::vector<std::uint32_t> sa(n), rank(n), tmp(n);
  if (n == 0) return sa;
  std::iota(sa.begin(), sa.end(), 0);
  for (std::size_t i = 0; i < n; ++i) rank[i] = s[i];
  for (std::size_t k = 1;; k *= 2) {
    auto cmp = [&](std::uint32_t a, std::uint32_t b) {
      if (rank[a] != rank[b]) return rank[a] < rank[b];
      const std::uint32_t ra = a + k < n ? rank[a + k] + 1 : 0;
      const std::uint32_t rb = b + k < n ? rank[b + k] + 1 : 0;
      return ra < rb;
    };
    std::sort(sa.begin(), sa.end(), cmp);
    tmp[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      tmp[sa[i]] = tmp[sa[i - 1]] + (cmp(sa[i - 1], sa[i]) ? 1 : 0);
    }
    rank = tmp;
    if (rank[sa[n - 1]] == n - 1) break;
  }
  return sa;
}

}  // namespace fanstore::compress
