// TFRecord-like packed-format baseline for Figure 6.
//
// The real TFRecord format stores length-prefixed records with masked
// CRC-32C checks, read sequentially through the TensorFlow input stack.
// This reimplementation keeps the container semantics (length + CRC +
// payload, sequential scan) and models the framework's per-record
// deserialization overhead as a constant, since the Python/TF layers are
// out of scope (DESIGN.md §1).
#pragma once

#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace fanstore::dlsim {

/// Framework-side per-record cost (protobuf parse, Python dispatch) used by
/// the Fig. 6 comparison; FanStore's POSIX path has no such layer.
constexpr double kTfFrameworkPerRecordS = 150e-6;

/// Packs items into one shard: per record [u64 length][u32 crc][payload].
Bytes build_tfrecord_shard(const std::vector<Bytes>& items);

/// Sequential shard reader with CRC verification (real work, measured).
class TfRecordReader {
 public:
  explicit TfRecordReader(ByteView shard) : shard_(shard) {}

  /// Returns the next record's payload view, or nullopt at end.
  /// Throws std::runtime_error on structural or CRC corruption.
  std::optional<ByteView> next();

  void reset() { pos_ = 0; }

 private:
  ByteView shard_;
  std::size_t pos_ = 0;
};

}  // namespace fanstore::dlsim
