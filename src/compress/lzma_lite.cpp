// LZMA-like codec: LZ77 parse over a 16 MiB window, entropy-coded with an
// adaptive binary range coder. Literals use an order-1 (previous byte)
// context; match lengths use an 8-bit bit-tree; distances use a 6-bit slot
// tree plus direct bits. xz-lite wraps the same stream in a checksummed
// container.
#include <algorithm>
#include <vector>

#include "compress/codecs.hpp"
#include "compress/lz_common.hpp"
#include "compress/range_coder.hpp"
#include "util/crc32.hpp"

namespace fanstore::compress {
namespace {

constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 255;
constexpr int kWindowBits = 24;
constexpr std::size_t kWindow = (std::size_t{1} << kWindowBits) - 1;
constexpr int kSlotBits = 6;

// Probability model; one instance per (de)compression call.
struct Model {
  Prob is_match[16];
  Prob is_rep[16];  // "reuse the previous distance" flag (LZMA rep0)
  std::vector<Prob> lit;       // [256 contexts][256 tree nodes]
  Prob len_tree[256];
  Prob rep_len_tree[256];
  Prob slot_tree[64];

  Model() : lit(256 * 256, kProbInit) {
    std::fill(std::begin(is_match), std::end(is_match), kProbInit);
    std::fill(std::begin(is_rep), std::end(is_rep), kProbInit);
    std::fill(std::begin(len_tree), std::end(len_tree), kProbInit);
    std::fill(std::begin(rep_len_tree), std::end(rep_len_tree), kProbInit);
    std::fill(std::begin(slot_tree), std::end(slot_tree), kProbInit);
  }
};

// Distance slot: values 0-3 map to slots 0-3; larger values use
// slot = 2*(bit_length-1) + next-to-top bit, with (slot/2 - 1) direct bits.
std::uint32_t slot_for(std::uint32_t value) {
  if (value < 4) return value;
  const int bl = 32 - std::countl_zero(value);
  return static_cast<std::uint32_t>(2 * (bl - 1)) + ((value >> (bl - 2)) & 1u);
}

class LzmaLiteCompressor final : public Compressor {
 public:
  LzmaLiteCompressor(std::string family, int level)
      : family_(std::move(family)), level_(level) {}

  std::string name() const override { return family_ + "-" + std::to_string(level_); }

  Bytes compress(ByteView src) const override {
    Bytes payload = compress_stream(src);
    if (family_ == "xz") {
      // Container: magic, uncompressed CRC, then the lzma stream.
      Bytes out;
      out.reserve(payload.size() + 8);
      out.push_back('F');
      out.push_back('X');
      out.push_back('Z');
      out.push_back('1');
      append_le<std::uint32_t>(out, crc32(src));
      out.insert(out.end(), payload.begin(), payload.end());
      return out;
    }
    return payload;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    if (family_ == "xz") {
      if (src.size() < 8 || src[0] != 'F' || src[1] != 'X' || src[2] != 'Z' ||
          src[3] != '1') {
        throw CorruptDataError("xz: bad magic");
      }
      const std::uint32_t want_crc = load_le<std::uint32_t>(src.data() + 4);
      Bytes out = decompress_stream(src.subspan(8), original_size);
      if (crc32(as_view(out)) != want_crc) throw CorruptDataError("xz: CRC mismatch");
      return out;
    }
    return decompress_stream(src, original_size);
  }

 private:
  Bytes compress_stream(ByteView src) const {
    Bytes out;
    out.reserve(src.size() / 3 + 64);
    RangeEncoder rc(out);
    Model m;
    const std::size_t n = src.size();
    const std::size_t depth = std::min<std::size_t>(std::size_t{4} << level_, 8192);
    HashChainFinder finder(src, 17, kWindow, depth, kMinMatch);
    const bool lazy = level_ >= 6;

    std::size_t i = 0;
    std::size_t last_distance = 0;  // 0 = no previous match
    auto match_ctx = [&] { return i & 0x0F; };
    auto emit_literal = [&](std::size_t pos) {
      rc.encode_bit(m.is_match[match_ctx()], 0);
      const std::uint8_t ctx = pos > 0 ? src[pos - 1] : 0;
      rc.encode_tree(&m.lit[static_cast<std::size_t>(ctx) * 256], src[pos], 8);
    };
    while (i < n) {
      Match mt;
      if (i + kMinMatch <= n) mt = finder.find(i, kMaxMatch);
      if (mt.length >= kMinMatch) {
        if (lazy && i + 1 + kMinMatch <= n && mt.length < kMaxMatch) {
          finder.insert(i);
          const Match mt2 = finder.find(i + 1, kMaxMatch);
          if (mt2.length > mt.length + 1) {
            emit_literal(i);
            ++i;
            mt = mt2;
          }
        }
        rc.encode_bit(m.is_match[match_ctx()], 1);
        if (mt.distance == last_distance) {
          // rep0 match: length only (repeated structures are common in
          // columnar/array data and this saves the whole distance field).
          rc.encode_bit(m.is_rep[match_ctx()], 1);
          rc.encode_tree(m.rep_len_tree,
                         static_cast<std::uint32_t>(mt.length - kMinMatch), 8);
        } else {
          rc.encode_bit(m.is_rep[match_ctx()], 0);
          rc.encode_tree(m.len_tree,
                         static_cast<std::uint32_t>(mt.length - kMinMatch), 8);
          const std::uint32_t dvalue = static_cast<std::uint32_t>(mt.distance - 1);
          const std::uint32_t slot = slot_for(dvalue);
          rc.encode_tree(m.slot_tree, slot, kSlotBits);
          if (slot >= 4) {
            const int nd = static_cast<int>(slot / 2) - 1;
            const std::uint32_t base = (2u | (slot & 1u)) << nd;
            rc.encode_direct(dvalue - base, nd);
          }
          last_distance = mt.distance;
        }
        finder.insert_run(i, std::min(n, i + mt.length));
        i += mt.length;
      } else {
        emit_literal(i);
        finder.insert(i);
        ++i;
      }
    }
    rc.flush();
    return out;
  }

  Bytes decompress_stream(ByteView src, std::size_t original_size) const {
    Bytes out;
    out.reserve(original_size);
    RangeDecoder rc(src);
    Model m;
    std::size_t last_distance = 0;
    while (out.size() < original_size) {
      const std::size_t ctx_i = out.size() & 0x0F;
      if (rc.decode_bit(m.is_match[ctx_i]) == 0) {
        const std::uint8_t ctx = out.empty() ? 0 : out.back();
        out.push_back(static_cast<std::uint8_t>(
            rc.decode_tree(&m.lit[static_cast<std::size_t>(ctx) * 256], 8)));
        continue;
      }
      std::size_t length, distance;
      if (rc.decode_bit(m.is_rep[ctx_i]) == 1) {
        if (last_distance == 0) throw CorruptDataError("lzma: rep with no history");
        length = kMinMatch + rc.decode_tree(m.rep_len_tree, 8);
        distance = last_distance;
      } else {
        length = kMinMatch + rc.decode_tree(m.len_tree, 8);
        const std::uint32_t slot = rc.decode_tree(m.slot_tree, kSlotBits);
        std::uint32_t dvalue = slot;
        if (slot >= 4) {
          const int nd = static_cast<int>(slot / 2) - 1;
          const std::uint32_t base = (2u | (slot & 1u)) << nd;
          dvalue = base + rc.decode_direct(nd);
        }
        distance = std::size_t{dvalue} + 1;
        last_distance = distance;
      }
      if (distance > out.size()) throw CorruptDataError("lzma: bad distance");
      if (out.size() + length > original_size) throw CorruptDataError("lzma: overlong match");
      const std::size_t from = out.size() - distance;
      for (std::size_t k = 0; k < length; ++k) out.push_back(out[from + k]);
    }
    return out;
  }

  std::string family_;
  int level_;
};

}  // namespace

std::unique_ptr<Compressor> make_lzma(int level) {
  return std::make_unique<LzmaLiteCompressor>("lzma", level);
}

std::unique_ptr<Compressor> make_xz(int level) {
  return std::make_unique<LzmaLiteCompressor>("xz", level);
}

}  // namespace fanstore::compress
