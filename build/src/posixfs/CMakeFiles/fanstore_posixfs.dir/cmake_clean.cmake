file(REMOVE_RECURSE
  "CMakeFiles/fanstore_posixfs.dir/interceptor.cpp.o"
  "CMakeFiles/fanstore_posixfs.dir/interceptor.cpp.o.d"
  "CMakeFiles/fanstore_posixfs.dir/local_vfs.cpp.o"
  "CMakeFiles/fanstore_posixfs.dir/local_vfs.cpp.o.d"
  "CMakeFiles/fanstore_posixfs.dir/mem_vfs.cpp.o"
  "CMakeFiles/fanstore_posixfs.dir/mem_vfs.cpp.o.d"
  "CMakeFiles/fanstore_posixfs.dir/vfs.cpp.o"
  "CMakeFiles/fanstore_posixfs.dir/vfs.cpp.o.d"
  "libfanstore_posixfs.a"
  "libfanstore_posixfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_posixfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
