# Empty dependencies file for dlsim_test.
# This may be replaced when dependencies are built.
