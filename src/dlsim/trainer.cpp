#include "dlsim/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "dlsim/prefetcher.hpp"
#include "obs/trace.hpp"
#include "plan/access_plan.hpp"
#include "plan/controller.hpp"
#include "util/rng.hpp"

namespace fanstore::dlsim {

TrainerResult run_training(posixfs::Vfs& fs, const std::vector<std::string>& files,
                           const TrainerOptions& options) {
  if (options.io_clock == nullptr) {
    throw std::invalid_argument("trainer: io_clock is required");
  }
  if (files.empty()) throw std::invalid_argument("trainer: empty file list");
  if (options.batch_per_rank == 0) {
    throw std::invalid_argument("trainer: batch_per_rank must be positive");
  }

  if (options.global_shuffle && options.comm == nullptr) {
    throw std::invalid_argument("trainer: global_shuffle requires comm");
  }
  if (options.controller != nullptr && options.prefetcher != nullptr) {
    throw std::invalid_argument(
        "trainer: controller and prefetcher are mutually exclusive");
  }
  if (options.prefetcher != nullptr && options.prefetch_batches == 0) {
    throw std::invalid_argument("trainer: prefetch_batches must be positive");
  }
  obs::MetricsRegistry& metrics = options.metrics != nullptr
                                      ? *options.metrics
                                      : obs::MetricsRegistry::global();
  obs::Counter& files_ctr = metrics.counter("trainer.files_read");
  obs::Counter& bytes_ctr = metrics.counter("trainer.bytes_read");
  obs::Counter& iters_ctr = metrics.counter("trainer.iterations");

  std::vector<std::string> order = files;
  // Global shuffle: every rank must derive the identical permutation, so
  // the RNG is seeded without any rank-dependent input.
  Rng rng(options.seed);
  TrainerResult result;
  std::vector<double> gradient(options.gradient_len, 0.0);
  Bytes buf(1 << 20);

  const int nranks = options.comm != nullptr ? options.comm->size() : 1;
  const int rank = options.comm != nullptr ? options.comm->rank() : 0;
  const std::size_t global_batch =
      options.batch_per_rank * (options.global_shuffle
                                    ? static_cast<std::size_t>(nranks)
                                    : 1);
  const std::size_t iters_per_epoch =
      std::max<std::size_t>(1, files.size() / global_batch);

  // This rank's slice of iteration `it`'s (global) batch window.
  const auto window_of = [&](std::size_t it) {
    return it * global_batch +
           (options.global_shuffle
                ? static_cast<std::size_t>(rank) * options.batch_per_rank
                : 0);
  };

  bool done = false;
  for (int epoch = 0; epoch < options.epochs && !done; ++epoch) {
    obs::TraceSpan epoch_span("trainer.epoch", options.io_clock);
    plan::epoch_shuffle(order, rng);
    if (options.record_epoch_files) result.epoch_files.emplace_back();
    // Reactive fixed-depth warming: iterations of this epoch whose windows
    // have already been handed to the prefetcher (the order reshuffles at
    // the epoch boundary, so warming never crosses it).
    std::size_t warmed_through = 0;
    for (std::size_t it = 0; it < iters_per_epoch && !done; ++it) {
      obs::TraceSpan step_span("trainer.step", options.io_clock);
      // ---- I/O phase: read the batch through the POSIX surface ----
      const double io_start = options.io_clock->now_sec();
      // Warming runs *inside* the measured I/O window: its virtual-clock
      // charges land in this iteration's io_serial, where async_io's
      // max(io, compute) hides them up to the compute budget (Fig. 5b) —
      // and the run stays deterministic (no background races against the
      // shared clock).
      if (options.controller != nullptr) {
        options.controller->on_step_begin();
      } else if (options.prefetcher != nullptr) {
        const std::size_t warm_to =
            std::min(iters_per_epoch, it + options.prefetch_batches);
        std::vector<std::string> warm_paths;
        for (; warmed_through < warm_to; ++warmed_through) {
          const std::size_t wwin = window_of(warmed_through);
          for (std::size_t b = 0; b < options.batch_per_rank; ++b) {
            warm_paths.push_back(order[(wwin + b) % order.size()]);
          }
        }
        if (!warm_paths.empty()) {
          options.prefetcher->prefetch(warm_paths);
          options.prefetcher->wait();
        }
      }
      const std::size_t window = window_of(it);
      for (std::size_t b = 0; b < options.batch_per_rank; ++b) {
        const std::string& path = order[(window + b) % order.size()];
        const int fd = fs.open(path, posixfs::OpenMode::kRead);
        if (fd < 0) {
          throw std::runtime_error("trainer: open failed for " + path + " rc=" +
                                   std::to_string(fd));
        }
        std::int64_t n;
        std::uint64_t file_bytes = 0;
        while ((n = fs.read(fd, MutByteView{buf.data(), buf.size()})) > 0) {
          file_bytes += static_cast<std::uint64_t>(n);
          // "Use" the data so the read cannot be optimized away: fold the
          // first byte into the gradient.
          gradient[b % gradient.size()] += static_cast<double>(buf[0]) * 1e-9;
        }
        if (n < 0) throw std::runtime_error("trainer: read failed for " + path);
        fs.close(fd);
        if (options.plan != nullptr) options.plan->record_access(path);
        if (options.record_epoch_files) result.epoch_files.back().push_back(path);
        result.files_read++;
        result.bytes_read += file_bytes;
        files_ctr.inc();
        bytes_ctr.inc(file_bytes);
      }
      // Parallel readers: the paper divides the serial decompression/read
      // cost by the I/O thread count (§VII-E1).
      const double io_serial = options.io_clock->now_sec() - io_start;
      const double io_time =
          io_serial / std::max(1, options.io_parallelism);

      // ---- Compute phase (+ gradient allreduce across ranks) ----
      if (options.comm != nullptr) {
        gradient = options.comm->allreduce_sum(gradient);
        for (auto& g : gradient) g /= options.comm->size();
      }
      double compute = options.t_iter_s;
      if (options.compute_jitter > 0) {
        // Deterministic per-(rank, iteration) jitter draw.
        const int rank = options.comm != nullptr ? options.comm->rank() : 0;
        Rng jrng(options.seed * 1000003 + result.iterations * 131 +
                 static_cast<std::uint64_t>(rank) * 7919);
        compute *= 1.0 + options.compute_jitter * jrng.next_double();
      }
      double iter_time =
          options.async_io ? std::max(io_time, compute) : io_time + compute;
      // Synchronized SGD: everyone waits for the slowest rank.
      if (options.comm != nullptr) iter_time = options.comm->allreduce_max(iter_time);

      result.total_s += iter_time;
      result.io_s += io_time;
      result.io_visible_s +=
          options.async_io ? std::max(0.0, io_time - options.t_iter_s) : io_time;
      result.compute_s += options.t_iter_s;
      result.iterations++;
      iters_ctr.inc();
      if (options.max_iterations > 0 && result.iterations >= options.max_iterations) {
        done = true;
      }
    }
  }
  result.items_per_s =
      result.total_s > 0
          ? static_cast<double>(result.iterations * options.batch_per_rank) /
                result.total_s
          : 0;
  return result;
}

}  // namespace fanstore::dlsim
