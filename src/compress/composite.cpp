// Composition codecs: stride-delta filtering and sequential pipelines.
// zling-lite (fast-LZ + Huffman) and the delta+LZ float-array codecs are
// built from these in the registry.
#include <utility>

#include "compress/codecs.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {
namespace {

// Size-preserving byte-delta transform with a fixed stride. Stride 4 aligns
// with float32 arrays (Tokamak/FRNN-style data), stride 8 with float64.
class DeltaFilter final : public Compressor {
 public:
  explicit DeltaFilter(int stride) : stride_(static_cast<std::size_t>(stride)) {}

  std::string name() const override { return "delta" + std::to_string(stride_); }

  Bytes compress(ByteView src) const override {
    Bytes out(src.begin(), src.end());
    for (std::size_t i = out.size(); i-- > stride_;) {
      out[i] = static_cast<std::uint8_t>(out[i] - out[i - stride_]);
    }
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    if (src.size() != original_size) throw CorruptDataError("delta: size mismatch");
    Bytes out(src.begin(), src.end());
    for (std::size_t i = stride_; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(out[i] + out[i - stride_]);
    }
    return out;
  }

 private:
  std::size_t stride_;
};

// Applies stages left-to-right on compress; the header records each
// intermediate size so decompress can unwind right-to-left.
class PipelineCompressor final : public Compressor {
 public:
  PipelineCompressor(std::string name, std::vector<std::unique_ptr<Compressor>> stages)
      : name_(std::move(name)), stages_(std::move(stages)) {}

  std::string name() const override { return name_; }

  Bytes compress(ByteView src) const override {
    Bytes current(src.begin(), src.end());
    Bytes header;
    for (const auto& stage : stages_) {
      append_le<std::uint32_t>(header, static_cast<std::uint32_t>(current.size()));
      current = stage->compress(as_view(current));
    }
    Bytes out;
    out.reserve(header.size() + current.size());
    out.insert(out.end(), header.begin(), header.end());
    out.insert(out.end(), current.begin(), current.end());
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    const std::size_t header_size = 4 * stages_.size();
    if (src.size() < header_size) throw CorruptDataError("pipeline: truncated header");
    std::vector<std::size_t> sizes(stages_.size());
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      sizes[s] = load_le<std::uint32_t>(src.data() + 4 * s);
    }
    if (sizes[0] != original_size) throw CorruptDataError("pipeline: size mismatch");
    Bytes current(src.begin() + static_cast<std::ptrdiff_t>(header_size), src.end());
    for (std::size_t s = stages_.size(); s-- > 0;) {
      current = stages_[s]->decompress(as_view(current), sizes[s]);
    }
    return current;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Compressor>> stages_;
};

}  // namespace

std::unique_ptr<Compressor> make_delta(int stride) {
  return std::make_unique<DeltaFilter>(stride);
}

std::unique_ptr<Compressor> make_pipeline(
    std::string name, std::vector<std::unique_ptr<Compressor>> stages) {
  return std::make_unique<PipelineCompressor>(std::move(name), std::move(stages));
}

std::unique_ptr<Compressor> make_zling(int level) {
  std::vector<std::unique_ptr<Compressor>> stages;
  if (level >= 4) {
    stages.push_back(make_lz4());
  } else {
    stages.push_back(make_lzf(level));
  }
  stages.push_back(make_huffman(64 * 1024));
  return make_pipeline("zling-" + std::to_string(level), std::move(stages));
}

}  // namespace fanstore::compress
