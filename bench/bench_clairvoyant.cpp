// Clairvoyant planner vs the reactive prefetcher (DESIGN.md §10).
//
// Both paths run the real multi-rank stack (ranks = threads, remote
// fetches through the daemon protocol, virtual-time device costs) over an
// lzma dataset with a cache budget of half the dataset, locally shuffled
// so every rank re-reads the full file set each epoch:
//
//   reactive     Prefetcher warming one batch ahead, FIFO eviction. Every
//                epoch re-decompresses nearly everything: the FIFO queue
//                cycles through the permutation, so reuse distances always
//                exceed the budget and the hit rate collapses.
//   clairvoyant  AccessPlan + PrefetchController + Belady eviction. The
//                same warming work, but the cache keeps exactly the files
//                with the nearest scheduled next use, so cross-epoch reuse
//                survives the budget and the per-epoch decompress bill
//                shrinks.
//
// Emits BENCH_clairvoyant.json — the repo's recorded perf trajectory for
// the planner. tools/ci.sh runs `--quick` and treats a non-zero exit as a
// regression: clairvoyant must never be slower than reactive, and the
// Belady hit rate must beat FIFO's under the same warming schedule.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/prefetcher.hpp"
#include "dlsim/trainer.hpp"
#include "plan/access_plan.hpp"
#include "plan/controller.hpp"
#include "simnet/models.hpp"

using namespace fanstore;

namespace {

struct Config {
  int files = 24;
  std::size_t file_bytes = 8 * 1024;
  std::size_t cache_files = 12;  // budget = half the dataset
  int epochs = 3;
  std::size_t batch_per_rank = 4;
  double t_iter_s = 0.00005;  // I/O-bound: the eviction policy is exposed
  int io_parallelism = 4;
};

enum class Mode {
  kReactive,         // Prefetcher, one batch ahead, FIFO eviction
  kClairvoyant,      // plan + controller + Belady eviction
  kClairvoyantFifo,  // plan + controller, FIFO eviction (isolates Belady)
};

struct RunResult {
  double items_per_s = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

RunResult run_case(int nranks, Mode mode, const Config& cfg) {
  std::vector<RunResult> per(static_cast<std::size_t>(nranks));
  mpi::run_world(nranks, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(simnet::cpu_cluster());
    opt.fs.cost.network = simnet::cpu_cluster().network;
    opt.fs.clock = &clock;
    opt.fs.cache_bytes = cfg.cache_files * cfg.file_bytes;
    core::Instance inst(comm, opt);

    std::vector<std::string> all_paths;
    std::vector<std::pair<std::string, Bytes>> mine;
    for (int i = 0; i < cfg.files; ++i) {
      std::string path = "ds/f" + std::to_string(i);
      all_paths.push_back(path);
      if (i % nranks == comm.rank()) {
        mine.emplace_back(std::move(path),
                          dlsim::generate_file_sized(
                              dlsim::DatasetKind::kEmTif,
                              static_cast<std::uint64_t>(i), cfg.file_bytes));
      }
    }
    inst.load_partition_blob(as_view(bench::make_partition(mine, "lzma")),
                             static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    dlsim::TrainerOptions topt;
    topt.t_iter_s = cfg.t_iter_s;
    topt.batch_per_rank = cfg.batch_per_rank;
    topt.epochs = cfg.epochs;
    topt.async_io = true;
    topt.io_parallelism = cfg.io_parallelism;
    topt.gradient_len = 16;
    topt.seed = 7;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.metrics = &inst.metrics();

    dlsim::Prefetcher warmer(inst.fs(), 1, 1);
    std::unique_ptr<plan::AccessPlan> ap;
    std::unique_ptr<plan::PrefetchController> ctl;
    if (mode == Mode::kReactive) {
      topt.prefetcher = &warmer;
      topt.prefetch_batches = 1;
    } else {
      plan::PlanOptions popt;
      popt.seed = topt.seed;
      popt.epochs = cfg.epochs;
      popt.batch_per_rank = cfg.batch_per_rank;
      popt.nranks = comm.size();
      popt.rank = comm.rank();
      ap = std::make_unique<plan::AccessPlan>(all_paths, popt, &inst.metrics());
      if (mode == Mode::kClairvoyant) inst.install_plan(ap.get());
      plan::ControllerOptions copt;
      copt.step_time_s = cfg.t_iter_s;
      copt.io_parallelism = cfg.io_parallelism;
      copt.min_depth = cfg.batch_per_rank;
      copt.max_depth = cfg.cache_files / 2;  // never warm-thrash the cache
      copt.hot_replicas = 4;
      ctl = std::make_unique<plan::PrefetchController>(*ap, inst.fs(), warmer,
                                                       &clock, copt);
      topt.plan = ap.get();
      topt.controller = ctl.get();
    }

    const auto result = dlsim::run_training(inst.fs(), all_paths, topt);
    const auto snap = inst.metrics().snapshot();
    auto& slot = per[static_cast<std::size_t>(comm.rank())];
    slot.items_per_s = result.items_per_s;
    slot.hits = snap.counter("cache.hits");
    slot.misses = snap.counter("cache.misses");

    inst.install_plan(nullptr);
    comm.barrier();
    inst.stop();
  });
  RunResult agg;
  for (const auto& r : per) {
    agg.items_per_s += r.items_per_s;
    agg.hits += r.hits;
    agg.misses += r.misses;
  }
  return agg;
}

std::string json_array(const std::vector<int>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(v[i]);
  }
  return out + "]";
}

std::string json_array(const std::vector<double>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ", ";
    out += bench::fmt("%.3f", v[i]);
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_clairvoyant.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }

  Config cfg;
  cfg.files = quick ? 16 : 24;
  cfg.cache_files = static_cast<std::size_t>(cfg.files) / 2;
  cfg.epochs = quick ? 2 : 3;
  const std::vector<int> ranks = quick ? std::vector<int>{8, 64}
                                       : std::vector<int>{8, 64, 512};

  bench::section("Clairvoyant planner vs reactive prefetch (virtual time)");
  std::printf("%d files x %zu B lzma, cache %zu files, %d epochs, "
              "batch %zu, t_iter %.2f ms\n\n",
              cfg.files, cfg.file_bytes, cfg.cache_files, cfg.epochs,
              cfg.batch_per_rank, cfg.t_iter_s * 1e3);

  std::vector<double> reactive_tput;
  std::vector<double> clair_tput;
  std::vector<double> speedup;
  RunResult belady_run;
  bench::Table table({"nodes", "reactive items/s", "clairvoyant items/s",
                      "speedup", "reactive hit%", "clairvoyant hit%"});
  for (const int n : ranks) {
    const RunResult reactive = run_case(n, Mode::kReactive, cfg);
    const RunResult clair = run_case(n, Mode::kClairvoyant, cfg);
    if (n == ranks.front()) belady_run = clair;
    reactive_tput.push_back(reactive.items_per_s);
    clair_tput.push_back(clair.items_per_s);
    speedup.push_back(clair.items_per_s / reactive.items_per_s);
    table.row({std::to_string(n), bench::fmt("%.1f", reactive.items_per_s),
               bench::fmt("%.1f", clair.items_per_s),
               bench::fmt("%.2fx", speedup.back()),
               bench::fmt("%.1f%%", 100.0 * reactive.hit_rate()),
               bench::fmt("%.1f%%", 100.0 * clair.hit_rate())});
  }
  table.print();

  // Eviction ablation: the same plan-driven warming, FIFO vs Belady — the
  // throughput gap above minus the scheduling effects.
  const RunResult fifo_run = run_case(ranks.front(), Mode::kClairvoyantFifo, cfg);
  std::printf("\neviction ablation at %d nodes (same warming schedule):\n"
              "  FIFO   hit rate %.1f%%\n"
              "  Belady hit rate %.1f%%\n",
              ranks.front(), 100.0 * fifo_run.hit_rate(),
              100.0 * belady_run.hit_rate());

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_clairvoyant: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"clairvoyant\",\n"
               "  \"quick\": %s,\n"
               "  \"files\": %d,\n"
               "  \"file_bytes\": %zu,\n"
               "  \"cache_files\": %zu,\n"
               "  \"epochs\": %d,\n"
               "  \"batch_per_rank\": %zu,\n"
               "  \"ranks\": %s,\n"
               "  \"reactive_items_s\": %s,\n"
               "  \"clairvoyant_items_s\": %s,\n"
               "  \"speedup\": %s,\n"
               "  \"belady_hit_rate\": %.4f,\n"
               "  \"fifo_hit_rate\": %.4f\n"
               "}\n",
               quick ? "true" : "false", cfg.files, cfg.file_bytes,
               cfg.cache_files, cfg.epochs, cfg.batch_per_rank,
               json_array(ranks).c_str(), json_array(reactive_tput).c_str(),
               json_array(clair_tput).c_str(), json_array(speedup).c_str(),
               belady_run.hit_rate(), fifo_run.hit_rate());
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());

  // Regression gates (tools/ci.sh runs --quick and fails on non-zero exit).
  int rc = 0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (clair_tput[i] < reactive_tput[i]) {
      std::fprintf(stderr,
                   "REGRESSION: clairvoyant slower than reactive at %d nodes "
                   "(%.1f < %.1f items/s)\n",
                   ranks[i], clair_tput[i], reactive_tput[i]);
      rc = 1;
    }
    if (!quick && ranks[i] >= 64 && clair_tput[i] <= reactive_tput[i]) {
      std::fprintf(stderr,
                   "REGRESSION: clairvoyant not strictly faster at %d nodes\n",
                   ranks[i]);
      rc = 1;
    }
  }
  if (belady_run.hit_rate() <= fifo_run.hit_rate()) {
    std::fprintf(stderr,
                 "REGRESSION: Belady hit rate %.4f not above FIFO %.4f\n",
                 belady_run.hit_rate(), fifo_run.hit_rate());
    rc = 1;
  }
  return rc;
}
