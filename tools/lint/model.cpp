#include "model.hpp"

#include <array>

namespace fanstore::lint {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Tok::kIdent && t.text == s;
}

bool control_keyword(const std::string& s) {
  static const std::set<std::string> kKw = {"if",     "for",   "while", "switch",
                                           "catch",  "return", "do",   "else",
                                           "new",    "delete", "sizeof",
                                           "alignof", "decltype"};
  return kKw.count(s) != 0;
}

// Thread-safety-annotation macros (util/sync.hpp): a call-shaped trailer
// between a function's parameter list and its body.
bool annotation_macro(const std::string& s) {
  static const std::set<std::string> kAnnot = {
      "REQUIRES",        "EXCLUDES",       "ACQUIRE",
      "RELEASE",         "TRY_ACQUIRE",    "ASSERT_CAPABILITY",
      "RETURN_CAPABILITY", "CAPABILITY",   "SCOPED_CAPABILITY",
      "GUARDED_BY",      "PT_GUARDED_BY",  "NO_THREAD_SAFETY_ANALYSIS",
      "FANSTORE_THREAD_ANNOTATION"};
  return kAnnot.count(s) != 0;
}

enum class BlockKind { kOther, kNamespace, kClass, kFunction };

struct Classification {
  BlockKind kind = BlockKind::kOther;
  std::string name;
};

}  // namespace

std::size_t TuModel::next_code(std::size_t i) const {
  const auto& t = *tokens;
  for (std::size_t j = i + 1; j < t.size(); ++j) {
    if (t[j].kind != Tok::kComment) return j;
  }
  return npos;
}

std::size_t TuModel::prev_code(std::size_t i) const {
  for (std::size_t j = i; j-- > 0;) {
    if ((*tokens)[j].kind != Tok::kComment) return j;
  }
  return npos;
}

namespace {

// Walks backward from an opening '{' to decide what it starts. See the
// header comment: unknown constructs classify as kOther and simply inherit
// the enclosing context.
Classification classify_brace(const TuModel& m, std::size_t obrace) {
  const auto& toks = *m.tokens;
  Classification result;
  std::size_t j = m.prev_code(obrace);
  // First: a bounded scan back to the statement boundary looking for
  // namespace / class / struct / enum keywords (they always appear between
  // the previous ';'/'{'/'}' and this '{').
  {
    std::size_t k = j;
    int steps = 0;
    int depth = 0;  // angle/template args and base lists may nest parens
    while (k != TuModel::npos && steps++ < 200) {
      const Token& t = toks[k];
      if (depth == 0 &&
          (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}"))) {
        break;
      }
      if (is_punct(t, ")") || is_punct(t, "]")) {
        ++depth;
      } else if (is_punct(t, "(") || is_punct(t, "[")) {
        --depth;
      } else if (depth == 0 && t.kind == Tok::kIdent) {
        if (t.text == "namespace") {
          result.kind = BlockKind::kNamespace;
          return result;
        }
        if (t.text == "enum") {
          return result;  // enum body: kOther
        }
        if (t.text == "class" || t.text == "struct") {
          const std::size_t prev = m.prev_code(k);
          if (prev != TuModel::npos && is_ident(toks[prev], "enum")) {
            return result;  // enum class
          }
          result.kind = BlockKind::kClass;
          // Name: first plain identifier after the keyword (skipping
          // annotation-macro calls such as CAPABILITY("mutex")).
          std::size_t n = m.next_code(k);
          while (n != TuModel::npos && n < obrace) {
            if (toks[n].kind == Tok::kIdent && !annotation_macro(toks[n].text)) {
              result.name = toks[n].text;
              break;
            }
            if (toks[n].kind == Tok::kIdent && annotation_macro(toks[n].text)) {
              const std::size_t paren = m.next_code(n);
              if (paren != TuModel::npos && is_punct(toks[paren], "(") &&
                  m.bracket_match[paren] != TuModel::npos) {
                n = m.next_code(m.bracket_match[paren]);
                continue;
              }
            }
            n = m.next_code(n);
          }
          return result;
        }
      }
      k = m.prev_code(k);
    }
  }
  // Function-definition walk: skip trailers (const/noexcept/override/
  // annotation macros/trailing return/ctor-init list) backward until the
  // parameter list's ')' whose '(' is preceded by the function name.
  int steps = 0;
  while (j != TuModel::npos && steps++ < 300) {
    const Token& t = toks[j];
    if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "=")) return result;
    if (is_punct(t, "]")) return result;  // lambda introducer
    if (t.kind == Tok::kString) return result;  // extern "C" etc.
    if (is_punct(t, "}")) {
      // Brace group inside a ctor-init list (mu_{"x"}): hop over it.
      const std::size_t open = m.bracket_match[j];
      if (open == TuModel::npos) return result;
      j = m.prev_code(open);
      continue;
    }
    if (is_punct(t, ")")) {
      const std::size_t open = m.bracket_match[j];
      if (open == TuModel::npos) return result;
      const std::size_t k = m.prev_code(open);
      if (k == TuModel::npos) return result;
      if (toks[k].kind == Tok::kIdent) {
        if (control_keyword(toks[k].text)) return result;
        if (annotation_macro(toks[k].text)) {
          j = m.prev_code(k);
          continue;
        }
        const std::size_t p = m.prev_code(k);
        if (p != TuModel::npos &&
            (is_punct(toks[p], ",") || is_punct(toks[p], ":") ||
             is_punct(toks[p], ".") || is_punct(toks[p], "->"))) {
          // Ctor-init-list item (`: name(...)` / `, name(...)`) or a
          // member call: keep walking backward past it.
          j = is_punct(toks[p], ",") || is_punct(toks[p], ":")
                  ? m.prev_code(p)
                  : m.prev_code(k);
          continue;
        }
        result.kind = BlockKind::kFunction;
        result.name = toks[k].text;
        return result;
      }
      if (is_punct(toks[k], "]")) return result;  // lambda with params
      j = m.prev_code(open);
      continue;
    }
    if (t.kind == Tok::kIdent && control_keyword(t.text)) return result;
    j = m.prev_code(j);
  }
  return result;
}

// Extracts mutex members + GUARDED_BY references from one class body.
void scan_class_body(const TuModel& m, ClassInfo* cls) {
  const auto& toks = *m.tokens;
  std::size_t i = cls->body_begin;
  // Declaration scan at class top level; nested braces (inline method
  // bodies, nested class bodies, brace initializers) are skipped wholesale.
  std::vector<std::size_t> decl;  // token indices of the current declaration
  auto flush_decl = [&] {
    for (std::size_t d = 0; d < decl.size(); ++d) {
      const Token& t = toks[decl[d]];
      if (!is_ident(t, "Mutex")) continue;
      if (d + 1 >= decl.size()) continue;
      const Token& next = toks[decl[d + 1]];
      if (next.kind != Tok::kIdent) continue;  // Mutex& / Mutex* / Mutex(
      cls->mutex_members.push_back(MutexMember{next.text, next.line});
    }
    decl.clear();
  };
  i = m.next_code(i);
  while (i != TuModel::npos && i < cls->body_end) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      const std::size_t close = m.bracket_match[i];
      if (close == TuModel::npos || close > cls->body_end) break;
      // Either a member brace-initializer (`Mutex mu_{"x"};` — flush so the
      // member is seen) or a method body (whose decl tokens never match the
      // Mutex-then-name pattern, so flushing is harmless either way).
      flush_decl();
      i = m.next_code(close);
      continue;
    }
    if (is_punct(t, "(") || is_punct(t, "[")) {
      const std::size_t close = m.bracket_match[i];
      if (close == TuModel::npos || close > cls->body_end) break;
      // GUARDED_BY(x) / PT_GUARDED_BY(x): record the base identifier.
      const std::size_t macro = m.prev_code(i);
      if (macro != TuModel::npos &&
          (is_ident(toks[macro], "GUARDED_BY") ||
           is_ident(toks[macro], "PT_GUARDED_BY"))) {
        for (std::size_t a = m.next_code(i); a != TuModel::npos && a < close;
             a = m.next_code(a)) {
          if (toks[a].kind == Tok::kIdent) {
            cls->guarded_refs.insert(toks[a].text);
            break;
          }
        }
      }
      i = m.next_code(close);
      continue;
    }
    if (is_punct(t, ";") || is_punct(t, ":")) {
      // ';' ends a declaration; ':' is an access specifier boundary.
      flush_decl();
      i = m.next_code(i);
      continue;
    }
    decl.push_back(i);
    i = m.next_code(i);
  }
  flush_decl();
}

}  // namespace

TuModel build_model(const std::vector<Token>& toks) {
  TuModel m;
  m.tokens = &toks;
  m.bracket_match.assign(toks.size(), TuModel::npos);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kPunct) continue;
      if (t.text == "(" || t.text == "{" || t.text == "[") {
        stack.push_back(i);
      } else if (t.text == ")" || t.text == "}" || t.text == "]") {
        // Match the nearest opener of the same family, dropping mismatched
        // openers (unbalanced code still gets best-effort structure).
        const char want = t.text == ")" ? '(' : t.text == "}" ? '{' : '[';
        while (!stack.empty() && toks[stack.back()].text[0] != want) {
          stack.pop_back();
        }
        if (!stack.empty()) {
          m.bracket_match[stack.back()] = i;
          m.bracket_match[i] = stack.back();
          stack.pop_back();
        }
      }
    }
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == Tok::kPunct && toks[i].text == "{")) continue;
    if (m.bracket_match[i] == TuModel::npos) continue;
    const Classification c = classify_brace(m, i);
    if (c.kind == BlockKind::kClass) {
      ClassInfo cls;
      cls.name = c.name;
      cls.body_begin = i;
      cls.body_end = m.bracket_match[i];
      scan_class_body(m, &cls);
      m.classes.push_back(std::move(cls));
    } else if (c.kind == BlockKind::kFunction) {
      m.functions.push_back(FunctionInfo{c.name, i, m.bracket_match[i]});
    }
  }
  return m;
}

}  // namespace fanstore::lint
