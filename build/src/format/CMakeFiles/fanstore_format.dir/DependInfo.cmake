
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/file_stat.cpp" "src/format/CMakeFiles/fanstore_format.dir/file_stat.cpp.o" "gcc" "src/format/CMakeFiles/fanstore_format.dir/file_stat.cpp.o.d"
  "/root/repo/src/format/partition.cpp" "src/format/CMakeFiles/fanstore_format.dir/partition.cpp.o" "gcc" "src/format/CMakeFiles/fanstore_format.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/fanstore_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
