// In-memory filesystem implementing the Vfs interface.
//
// Serves three roles in the reproduction: (1) the RAM-disk / SSD contents in
// tests, (2) the "shared file system" the prep tool writes partitions into,
// and (3) the write-back target for FanStore output files. Directories are
// created implicitly by writing files beneath them.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::posixfs {

class MemVfs final : public Vfs {
 public:
  int open(std::string_view path, OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

  /// Creates an (empty) directory entry explicitly.
  void mkdir(std::string_view path);

  /// Direct byte access for tests and loaders; nullopt if absent.
  std::optional<Bytes> slurp(std::string_view path) const;

  /// Lists all file paths (sorted), optionally below a prefix.
  std::vector<std::string> list_files(std::string_view prefix = "") const;

  std::size_t file_count() const;
  std::size_t total_bytes() const;

 private:
  struct File {
    std::shared_ptr<Bytes> data;
    std::uint64_t mtime_ns = 0;
  };
  struct OpenFile {
    std::string path;
    OpenMode mode;
    std::shared_ptr<Bytes> data;  // snapshot for readers, buffer for writers
    std::int64_t offset = 0;
  };
  struct OpenDir {
    std::vector<Dirent> entries;
    std::size_t next = 0;
  };

  bool dir_exists_locked(const std::string& path) const REQUIRES(mu_);

  mutable sync::Mutex mu_{"mem_vfs.mu"};
  std::map<std::string, File> files_ GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
  std::map<int, OpenFile> open_files_ GUARDED_BY(mu_);
  std::map<int, OpenDir> open_dirs_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;  // POSIX-style: 0..2 reserved
  int next_dir_ GUARDED_BY(mu_) = 1;
  std::uint64_t clock_ns_ GUARDED_BY(mu_) = 1;
};

}  // namespace fanstore::posixfs
