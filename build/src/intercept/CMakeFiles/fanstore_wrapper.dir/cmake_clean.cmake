file(REMOVE_RECURSE
  "CMakeFiles/fanstore_wrapper.dir/wrapper.cpp.o"
  "CMakeFiles/fanstore_wrapper.dir/wrapper.cpp.o.d"
  "fanstore_wrapper.pdb"
  "fanstore_wrapper.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
