// User-space VFS interface mirroring the POSIX calls FanStore intercepts
// (paper Listing 1): open/close/read/write/lseek/stat and the directory
// trio. Errors are reported POSIX-style as negative errno values, never as
// exceptions, because the real system sits behind unsuspecting glibc
// callers.
//
// Substitution note (DESIGN.md §1): the paper injects these functions into
// glibc via LD_PRELOAD + trampolines; here the same call table is a virtual
// interface that the Interceptor dispatches on. All semantics — fd tables,
// the multi-read/single-write model, write-once close — live behind this
// interface exactly as they do behind the intercepted glibc symbols.
#pragma once

#include <cerrno>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "format/file_stat.hpp"
#include "util/bytes.hpp"

namespace fanstore::posixfs {

enum class OpenMode {
  kRead,   // O_RDONLY
  kWrite,  // O_WRONLY | O_CREAT | O_TRUNC — FanStore's single-write model
};

enum class Whence { kSet, kCur, kEnd };

struct Dirent {
  std::string name;  // entry name (not full path)
  format::FileType type = format::FileType::kRegular;
};

/// Abstract filesystem with POSIX-flavoured error handling. Implementations
/// must be thread-safe: DL frameworks issue these calls from many I/O
/// threads concurrently (§II-B).
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Returns a file descriptor (>= 0) or -errno.
  virtual int open(std::string_view path, OpenMode mode) = 0;

  /// Returns 0 or -errno.
  virtual int close(int fd) = 0;

  /// Reads up to buf.size() bytes at the fd's offset; returns bytes read
  /// (0 at EOF) or -errno. Advances the offset.
  virtual std::int64_t read(int fd, MutByteView buf) = 0;

  /// Positional read: up to buf.size() bytes at `offset`, without moving
  /// the fd's cursor; returns bytes read (0 past EOF) or -errno. The
  /// default emulates via lseek+read+lseek and is not atomic against
  /// concurrent cursor users of the same fd; FanStoreFs overrides it with
  /// a cursor-free read that decodes only the touched chunks of a
  /// chunk-compressed file.
  virtual std::int64_t pread(int fd, MutByteView buf, std::uint64_t offset);

  /// Appends/overwrites at the fd's offset; returns bytes written or -errno.
  virtual std::int64_t write(int fd, ByteView buf) = 0;

  /// Repositions the fd; returns the new offset or -errno.
  virtual std::int64_t lseek(int fd, std::int64_t offset, Whence whence) = 0;

  /// Fills `out`; returns 0 or -errno.
  virtual int stat(std::string_view path, format::FileStat* out) = 0;

  /// Returns a directory handle (>= 0) or -errno.
  virtual int opendir(std::string_view path) = 0;

  /// Next entry, or nullopt at end-of-directory. Invalid handles yield
  /// nullopt as glibc's readdir returns NULL for both cases.
  virtual std::optional<Dirent> readdir(int dir_handle) = 0;

  /// Returns 0 or -errno.
  virtual int closedir(int dir_handle) = 0;
};

/// Normalizes "a//b/./c" to "a/b/c"; strips leading and trailing slashes.
/// Rejects ".." (returns empty string) — FanStore paths are dataset-rooted.
std::string normalize_path(std::string_view path);

/// Reads an entire file through any Vfs; returns nullopt on error.
std::optional<Bytes> read_file(Vfs& fs, std::string_view path);

/// Writes an entire file through any Vfs; returns 0 or -errno.
int write_file(Vfs& fs, std::string_view path, ByteView data);

}  // namespace fanstore::posixfs
