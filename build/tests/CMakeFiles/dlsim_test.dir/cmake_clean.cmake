file(REMOVE_RECURSE
  "CMakeFiles/dlsim_test.dir/dlsim_test.cpp.o"
  "CMakeFiles/dlsim_test.dir/dlsim_test.cpp.o.d"
  "dlsim_test"
  "dlsim_test.pdb"
  "dlsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
