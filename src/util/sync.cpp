// Runtime lock-order checker (see sync.hpp).
//
// Model: whenever a thread acquires mutex B while already holding A, the
// pair (A before B) is recorded as a directed edge in a global graph. Before
// recording a new edge A->B we ask whether B can already reach A through
// recorded edges; if it can, some execution acquired the same mutexes in the
// opposite order and the program can deadlock. The full cycle is reported.
//
// The graph keys mutexes by address. Addresses of destroyed mutexes may be
// reused by later allocations, which can create spurious edges in
// pathological create/destroy churn; this is a debug facility and the
// long-lived locks it is aimed at (cache, mailbox, pool) do not churn.
#include "util/sync.hpp"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fanstore::sync::lockorder {
namespace {

// The checker's own lock. Deliberately a raw std::mutex: it must never feed
// back into the checker.
std::mutex g_mu;
std::unordered_map<const void*, std::unordered_set<const void*>> g_edges;
std::unordered_map<const void*, const char*> g_names;
std::atomic<std::uint64_t> g_violations{0};

void default_handler(const std::string& report) {
  std::fprintf(stderr, "%s\n", report.c_str());
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&default_handler};

// Per-thread stack of held locks, oldest first.
thread_local std::vector<const void*> t_held;

std::string lock_label(const void* mu) {
  std::ostringstream os;
  const auto it = g_names.find(mu);  // callers hold g_mu
  if (it != g_names.end() && it->second != nullptr) {
    os << it->second << " (" << mu << ")";
  } else {
    os << mu;
  }
  return os.str();
}

/// DFS from `from` to `to` over g_edges (g_mu held). On success `path`
/// holds the node sequence from..to inclusive.
bool find_path(const void* from, const void* to, std::vector<const void*>* path) {
  std::unordered_set<const void*> visited;
  std::vector<std::pair<const void*, std::size_t>> stack;  // node, parent idx
  std::vector<std::pair<const void*, std::size_t>> trail;
  stack.push_back({from, static_cast<std::size_t>(-1)});
  while (!stack.empty()) {
    auto [node, parent] = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    trail.push_back({node, parent});
    if (node == to) {
      // Walk parents back to `from`.
      std::vector<const void*> rev;
      std::size_t i = trail.size() - 1;
      for (;;) {
        rev.push_back(trail[i].first);
        if (trail[i].second == static_cast<std::size_t>(-1)) break;
        i = trail[i].second;
      }
      path->assign(rev.rbegin(), rev.rend());
      return true;
    }
    const auto it = g_edges.find(node);
    if (it == g_edges.end()) continue;
    for (const void* next : it->second) {
      if (visited.count(next) == 0) stack.push_back({next, trail.size() - 1});
    }
  }
  return false;
}

void report_violation(std::string report) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  ViolationHandler handler = g_handler.load();
  if (handler == nullptr) handler = &default_handler;
  handler(report);
}

}  // namespace

ViolationHandler set_violation_handler(ViolationHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler);
}

std::uint64_t violation_count() { return g_violations.load(); }

void reset_for_testing() {
  std::lock_guard lk(g_mu);
  g_edges.clear();
  g_names.clear();
  g_violations.store(0);
}

void note_acquire(const void* mu, const char* name) {
  // Same-thread re-acquisition of a non-recursive mutex: immediate deadlock.
  for (const void* held : t_held) {
    if (held == mu) {
      std::string report;
      {
        std::lock_guard lk(g_mu);
        report = "fanstore lockorder: thread re-acquired mutex " + lock_label(mu) +
                 " it already holds (self-deadlock)";
      }
      report_violation(std::move(report));
      t_held.push_back(mu);
      return;
    }
  }

  std::string report;
  {
    std::lock_guard lk(g_mu);
    if (name != nullptr) g_names[mu] = name;
    for (const void* held : t_held) {
      auto& after = g_edges[held];
      if (after.count(mu) > 0) continue;  // known-good order
      std::vector<const void*> path;
      if (find_path(mu, held, &path)) {
        // held -> mu is new, but mu already reaches held: inversion.
        std::ostringstream os;
        os << "fanstore lockorder: lock-order inversion (potential deadlock)\n"
           << "  acquiring " << lock_label(mu) << " while holding "
           << lock_label(held) << ",\n"
           << "  but the established order is:";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          os << "\n    " << lock_label(path[i]) << " -> " << lock_label(path[i + 1]);
        }
        report = os.str();
        break;  // report one cycle per acquisition
      }
      after.insert(mu);
    }
  }
  if (!report.empty()) report_violation(std::move(report));
  t_held.push_back(mu);
}

void note_release(const void* mu) {
  // Usually LIFO, but cv waits and hand-over-hand patterns may release out
  // of order: remove the newest matching entry wherever it is.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace fanstore::sync::lockorder
