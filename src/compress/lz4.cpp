// LZ4-like codec: token = (litlen nibble | matchlen nibble), 0xF nibbles are
// extended with 255-terminated byte runs; offsets are 16-bit little-endian.
//
// Three encoder strategies share the format:
//   - fast  : single-probe hash with step acceleration (lz4 "fast" mode)
//   - greedy: single probe at every position (default lz4 level)
//   - hc    : hash-chain search with level-scaled depth and lazy matching
#include <algorithm>
#include <vector>

#include "compress/codecs.hpp"
#include "compress/lz_common.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kWindow = 65535;

void write_varlen(Bytes& out, std::size_t v) {
  while (v >= 255) {
    out.push_back(255);
    v -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void emit_sequence(Bytes& out, ByteView src, std::size_t lit_start,
                   std::size_t lit_len, std::size_t match_len,
                   std::size_t distance) {
  const std::uint8_t lit_nib =
      static_cast<std::uint8_t>(std::min<std::size_t>(lit_len, 15));
  std::uint8_t match_nib = 0;
  if (match_len > 0) {
    match_nib = static_cast<std::uint8_t>(std::min<std::size_t>(match_len - kMinMatch, 15));
  }
  out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) write_varlen(out, lit_len - 15);
  out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(lit_start),
             src.begin() + static_cast<std::ptrdiff_t>(lit_start + lit_len));
  if (match_len > 0) {
    append_le<std::uint16_t>(out, static_cast<std::uint16_t>(distance));
    if (match_nib == 15) write_varlen(out, match_len - kMinMatch - 15);
  }
}

enum class Mode { kFast, kGreedy, kHc };

class Lz4Compressor final : public Compressor {
 public:
  Lz4Compressor(Mode mode, int param) : mode_(mode), param_(param) {}

  std::string name() const override {
    switch (mode_) {
      case Mode::kFast: return "lz4fast-" + std::to_string(param_);
      case Mode::kGreedy: return "lz4";
      case Mode::kHc: return "lz4hc-" + std::to_string(param_);
    }
    return "lz4?";
  }

  Bytes compress(ByteView src) const override {
    return mode_ == Mode::kHc ? compress_hc(src) : compress_fast(src);
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    // Over-allocate by kCopySlack so copy_match can use wide strides
    // (trimmed before returning).
    Bytes out(original_size + kCopySlack);
    std::size_t o = 0;
    std::size_t i = 0;
    const std::size_t n = src.size();
    auto read_varlen = [&](std::size_t base) {
      std::size_t v = base;
      for (;;) {
        if (i >= n) throw CorruptDataError("lz4: truncated varlen");
        const std::uint8_t b = src[i++];
        v += b;
        if (b != 255) return v;
      }
    };
    while (o < original_size) {
      if (i >= n) throw CorruptDataError("lz4: truncated token");
      const std::uint8_t token = src[i++];
      std::size_t lit_len = token >> 4;
      if (lit_len == 15) lit_len = read_varlen(15);
      if (i + lit_len > n) throw CorruptDataError("lz4: truncated literals");
      if (o + lit_len > original_size) throw CorruptDataError("lz4: overlong literals");
      std::memcpy(out.data() + o, src.data() + i, lit_len);
      o += lit_len;
      i += lit_len;
      if (o == original_size) break;  // stream ends with literals
      if (i + 2 > n) throw CorruptDataError("lz4: truncated offset");
      const std::size_t distance = load_le<std::uint16_t>(src.data() + i);
      i += 2;
      if (distance == 0 || distance > o) {
        throw CorruptDataError("lz4: bad match distance");
      }
      std::size_t match_len = (token & 0x0F) + kMinMatch;
      if ((token & 0x0F) == 15) match_len = read_varlen(15 + kMinMatch);
      if (o + match_len > original_size) {
        throw CorruptDataError("lz4: overlong match");
      }
      copy_match(out.data() + o, distance, match_len);
      o += match_len;
    }
    out.resize(original_size);
    return out;
  }

 private:
  Bytes compress_fast(ByteView src) const {
    Bytes out;
    out.reserve(src.size() / 2 + 16);
    const std::size_t n = src.size();
    const int hash_bits = 16;
    std::vector<std::uint32_t> table(std::size_t{1} << hash_bits, 0xFFFFFFFFu);
    std::size_t lit_start = 0;
    std::size_t i = 0;
    // Step acceleration: after `64 << accel_shift` consecutive misses the
    // scan starts skipping bytes, trading ratio for speed (lz4 "fast" mode).
    const int accel = mode_ == Mode::kFast ? param_ : 1;
    std::size_t search_count = static_cast<std::size_t>(accel) << 6;
    while (i + kMinMatch <= n) {
      const std::uint32_t h = hash4(src.data() + i, hash_bits);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(i);
      if (cand != 0xFFFFFFFFu && i > cand && i - cand <= kWindow &&
          read_u32(src.data() + cand) == read_u32(src.data() + i)) {
        const std::size_t len =
            match_length(src.data() + i, src.data() + cand, src.data() + n);
        emit_sequence(out, src, lit_start, i - lit_start, len, i - cand);
        i += len;
        lit_start = i;
        search_count = static_cast<std::size_t>(accel) << 6;
      } else {
        const std::size_t step = mode_ == Mode::kFast ? (search_count++ >> 6) - static_cast<std::size_t>(accel) + 1 : 1;
        i += std::max<std::size_t>(1, step);
      }
    }
    if (lit_start < n) emit_sequence(out, src, lit_start, n - lit_start, 0, 0);
    return out;
  }

  Bytes compress_hc(ByteView src) const {
    Bytes out;
    out.reserve(src.size() / 2 + 16);
    const std::size_t n = src.size();
    const std::size_t depth = std::min<std::size_t>(std::size_t{4} << param_, 1u << 16);
    HashChainFinder finder(src, 16, kWindow, depth, kMinMatch);
    const bool lazy = param_ >= 6;
    std::size_t lit_start = 0;
    std::size_t i = 0;
    while (i + kMinMatch <= n) {
      Match m = finder.find(i, n - i);
      if (m.length == 0) {
        finder.insert(i++);
        continue;
      }
      if (lazy && i + 1 + kMinMatch <= n) {
        finder.insert(i);
        const Match m2 = finder.find(i + 1, n - i - 1);
        if (m2.length > m.length + 1) {
          ++i;  // defer: the next position has a better match
          m = m2;
        }
        emit_sequence(out, src, lit_start, i - lit_start, m.length, m.distance);
        finder.insert_run(i, std::min(n, i + m.length));
        i += m.length;
        lit_start = i;
        continue;
      }
      emit_sequence(out, src, lit_start, i - lit_start, m.length, m.distance);
      finder.insert_run(i, std::min(n, i + m.length));
      i += m.length;
      lit_start = i;
    }
    if (lit_start < n) emit_sequence(out, src, lit_start, n - lit_start, 0, 0);
    return out;
  }

  Mode mode_;
  int param_;
};

}  // namespace

std::unique_ptr<Compressor> make_lz4fast(int accel) {
  return std::make_unique<Lz4Compressor>(Mode::kFast, accel);
}
std::unique_ptr<Compressor> make_lz4() {
  return std::make_unique<Lz4Compressor>(Mode::kGreedy, 0);
}
std::unique_ptr<Compressor> make_lz4hc(int level) {
  return std::make_unique<Lz4Compressor>(Mode::kHc, level);
}

}  // namespace fanstore::compress
