// Tests the real LD_PRELOAD interception library (§V-C): an unmodified
// libc consumer run under fanstore_wrapper.so must see paths below the
// FanStore mount resolve through the interceptor.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

// These paths are configured by CMake relative to the build tree.
#ifndef FANSTORE_WRAPPER_SO
#define FANSTORE_WRAPPER_SO "src/intercept/fanstore_wrapper.so"
#endif
#ifndef FANSTORE_PROBE_BIN
#define FANSTORE_PROBE_BIN "src/intercept/intercept_probe"
#endif

std::string run_probe(const std::string& args, const std::string& backing) {
  // verify_asan_link_order=0: in sanitizer builds the wrapper (itself
  // instrumented) is preloaded ahead of the ASan runtime, which ASan would
  // otherwise treat as a fatal link-order violation. Harmless elsewhere.
  const std::string cmd = "ASAN_OPTIONS=verify_asan_link_order=0:detect_leaks=0"
                          " LD_PRELOAD=" + std::string(FANSTORE_WRAPPER_SO) +
                          " FANSTORE_MOUNT=/fsmount FANSTORE_ROOT=" + backing + " " +
                          std::string(FANSTORE_PROBE_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "<popen failed>";
  std::string out;
  std::array<char, 256> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  pclose(pipe);
  return out;
}

class InterceptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(FANSTORE_WRAPPER_SO) || !fs::exists(FANSTORE_PROBE_BIN)) {
      GTEST_SKIP() << "wrapper/probe not built next to the test binary";
    }
    // Unique per test process: ctest -j runs the cases concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    backing_ = fs::temp_directory_path() /
               ("fanstore_intercept_" + std::to_string(getpid()) + "_" + info->name());
    fs::remove_all(backing_);
    fs::create_directories(backing_ / "sub");
    std::ofstream(backing_ / "file.txt") << "redirected content\n";
    std::ofstream(backing_ / "sub" / "a.bin") << "x";
  }
  void TearDown() override { fs::remove_all(backing_); }
  fs::path backing_;
};

TEST_F(InterceptTest, FopenAndStatAreRedirected) {
  const std::string out = run_probe("/fsmount/file.txt", backing_.string());
  EXPECT_NE(out.find("SIZE 19"), std::string::npos) << out;
  EXPECT_NE(out.find("FIRST redirected content"), std::string::npos) << out;
}

TEST_F(InterceptTest, OpendirIsRedirected) {
  const std::string out = run_probe("/fsmount --dir", backing_.string());
  EXPECT_NE(out.find("ENTRY file.txt"), std::string::npos) << out;
  EXPECT_NE(out.find("ENTRY sub"), std::string::npos) << out;
}

TEST_F(InterceptTest, NonMountPathsPassThrough) {
  // A real filesystem path must not be rewritten.
  std::ofstream(backing_ / "real.txt") << "abcd";
  const std::string out =
      run_probe((backing_ / "real.txt").string(), backing_.string());
  EXPECT_NE(out.find("SIZE 4"), std::string::npos) << out;
}

TEST_F(InterceptTest, PrefixMustMatchWholeComponent) {
  // "/fsmountX" must NOT be treated as under "/fsmount".
  const std::string out = run_probe("/fsmountX/file.txt", backing_.string());
  EXPECT_EQ(out.find("SIZE"), std::string::npos) << out;
}

}  // namespace
