// Tests for the Unix-domain-socket daemon transport: protocol encode/
// decode, server lifecycle, cross-"process" reads through a real socket,
// and end-to-end UDS access to a FanStore instance.
#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "ipc/protocol.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/test_data.hpp"

namespace fanstore::ipc {
namespace {

std::string unique_socket_path(const char* tag) {
  return "/tmp/fanstore_uds_" + std::to_string(getpid()) + "_" + tag + ".sock";
}

TEST(IpcProtocolTest, RequestRoundTrip) {
  const Bytes req = encode_request(Op::kGet, "a/b/c");
  const auto decoded = decode_request(as_view(req));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, Op::kGet);
  EXPECT_EQ(decoded->path, "a/b/c");
  EXPECT_FALSE(decode_request(ByteView{}).has_value());
  EXPECT_FALSE(decode_request(as_view(Bytes{99})).has_value());  // bad op
}

TEST(IpcProtocolTest, ReplyRoundTrips) {
  const Bytes payload = testdata::random_bytes(1000, 1);
  const auto get = decode_get_reply(as_view(encode_get_reply(Status::kOk, as_view(payload))));
  ASSERT_TRUE(get.has_value());
  EXPECT_EQ(get->status, Status::kOk);
  EXPECT_EQ(get->data, payload);

  format::FileStat st;
  st.size = 777;
  st.type = format::FileType::kRegular;
  const auto stat = decode_stat_reply(as_view(encode_stat_reply(Status::kOk, st)));
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->stat.size, 777u);

  std::vector<posixfs::Dirent> entries = {
      {"file.txt", format::FileType::kRegular},
      {"subdir", format::FileType::kDirectory},
  };
  const auto list = decode_list_reply(as_view(encode_list_reply(Status::kOk, entries)));
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->entries.size(), 2u);
  EXPECT_EQ(list->entries[0].name, "file.txt");
  EXPECT_EQ(list->entries[1].type, format::FileType::kDirectory);
  EXPECT_FALSE(decode_list_reply(as_view(Bytes{0, 9, 9})).has_value());
}

TEST(UdsTest, ClientReadsThroughServer) {
  posixfs::MemVfs fs;
  const Bytes data = testdata::text_like(20000, 3);
  posixfs::write_file(fs, "dir/file.bin", as_view(data));

  UdsServer server(unique_socket_path("basic"), fs);
  server.start();
  UdsClientVfs client(server.socket_path());
  ASSERT_TRUE(client.connect());

  // Whole-file read through the Vfs interface.
  const auto got = posixfs::read_file(client, "dir/file.bin");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, data);

  // stat + readdir.
  format::FileStat st;
  ASSERT_EQ(client.stat("dir/file.bin", &st), 0);
  EXPECT_EQ(st.size, data.size());
  const int h = client.opendir("dir");
  ASSERT_GE(h, 0);
  const auto entry = client.readdir(h);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->name, "file.bin");
  client.closedir(h);

  // Errors map to POSIX codes.
  EXPECT_EQ(client.open("missing", posixfs::OpenMode::kRead), -ENOENT);
  EXPECT_EQ(client.open("x", posixfs::OpenMode::kWrite), -EROFS);
  EXPECT_GE(server.requests_served(), 4u);
  server.stop();
}

TEST(UdsTest, LseekSemanticsOnClient) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "f", as_view(Bytes{0, 1, 2, 3, 4, 5, 6, 7}));
  UdsServer server(unique_socket_path("seek"), fs);
  server.start();
  UdsClientVfs client(server.socket_path());
  const int fd = client.open("f", posixfs::OpenMode::kRead);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(client.lseek(fd, -2, posixfs::Whence::kEnd), 6);
  Bytes buf(4);
  EXPECT_EQ(client.read(fd, MutByteView{buf.data(), buf.size()}), 2);
  EXPECT_EQ(buf[0], 6);
  client.close(fd);
  server.stop();
}

TEST(UdsTest, ConcurrentClients) {
  posixfs::MemVfs fs;
  for (int i = 0; i < 8; ++i) {
    posixfs::write_file(fs, "f" + std::to_string(i),
                        as_view(testdata::random_bytes(5000, i)));
  }
  UdsServer server(unique_socket_path("multi"), fs);
  server.start();
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      UdsClientVfs client(server.socket_path());
      for (int i = 0; i < 20; ++i) {
        const std::string path = "f" + std::to_string((c + i) % 8);
        const auto got = posixfs::read_file(client, path);
        if (!got || got->size() != 5000) failures++;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(), 120u);
  server.stop();
}

TEST(UdsTest, ClientFailsCleanlyWithoutServer) {
  UdsClientVfs client("/tmp/fanstore_uds_no_such_socket.sock");
  EXPECT_FALSE(client.connect());
  EXPECT_EQ(client.open("f", posixfs::OpenMode::kRead), -EIO);
  format::FileStat st;
  EXPECT_EQ(client.stat("f", &st), -EIO);
}

TEST(UdsTest, ServesAFanStoreInstance) {
  // The real deployment shape: FanStoreFs behind the node-local daemon
  // socket; an out-of-process consumer reads compressed data through it.
  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("zstd");
    format::PartitionWriter w;
    const Bytes data = testdata::text_like(30000, 9);
    w.add(format::make_record("ds/sample", *codec, reg.id_of(*codec), as_view(data)));
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), 0);
    inst.exchange_metadata();

    UdsServer server(unique_socket_path("fanstore"), inst.fs());
    server.start();
    UdsClientVfs client(server.socket_path());
    const auto got = posixfs::read_file(client, "ds/sample");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, data);  // decompressed by the daemon, shipped plain
    server.stop();
  });
}

TEST(UdsTest, StopIsIdempotentAndRestartable) {
  posixfs::MemVfs fs;
  const std::string path = unique_socket_path("restart");
  {
    UdsServer server(path, fs);
    server.start();
    server.stop();
    server.stop();
  }
  UdsServer server2(path, fs);
  server2.start();  // rebinding the same path must work
  server2.stop();
}

}  // namespace
}  // namespace fanstore::ipc
