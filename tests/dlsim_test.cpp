// Tests for the DL-simulation substrate: dataset generators (Table II/IV
// structure), the TFRecord baseline, application models, and the trainer.
#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/tfrecord.hpp"
#include "dlsim/trainer.hpp"
#include "posixfs/mem_vfs.hpp"

namespace fanstore::dlsim {
namespace {

double ratio_of(const char* codec_name, DatasetKind kind, int nfiles = 4) {
  const auto* codec = compress::Registry::instance().by_name(codec_name);
  std::size_t raw = 0, packed = 0;
  for (int i = 0; i < nfiles; ++i) {
    const Bytes data = generate_file(kind, static_cast<std::uint64_t>(i));
    raw += data.size();
    packed += codec->compress(as_view(data)).size();
  }
  return static_cast<double>(raw) / static_cast<double>(packed);
}

TEST(DatagenTest, DeterministicPerIndex) {
  for (const auto& spec : all_dataset_specs()) {
    const Bytes a = generate_file(spec.kind, 7);
    const Bytes b = generate_file(spec.kind, 7);
    const Bytes c = generate_file(spec.kind, 8);
    EXPECT_EQ(a, b) << spec.name;
    EXPECT_NE(a, c) << spec.name;
    EXPECT_EQ(a.size(), spec.file_bytes) << spec.name;
  }
}

TEST(DatagenTest, TableFourRatioOrdering) {
  // The structural claims of Table IV that the generators must reproduce:
  // lung compresses most, ImageNet not at all, the rest in between; and
  // lzma achieves a higher ratio than lz4hc on compressible datasets.
  const double lung = ratio_of("lz4hc", DatasetKind::kLungNii);
  const double em = ratio_of("lz4hc", DatasetKind::kEmTif);
  const double astro = ratio_of("lz4hc", DatasetKind::kAstroFits);
  const double lang = ratio_of("lz4hc", DatasetKind::kLanguageTxt);
  const double tok = ratio_of("lz4hc", DatasetKind::kTokamakNpz, 16);
  const double imagenet = ratio_of("lz4hc", DatasetKind::kImagenetJpg);

  EXPECT_GT(lung, 4.0);
  EXPECT_GT(lung, em);
  EXPECT_GT(em, 1.4);
  EXPECT_GT(astro, 1.4);
  EXPECT_GT(lang, 1.8);
  EXPECT_GT(tok, 1.4);
  EXPECT_LT(imagenet, 1.1);
  EXPECT_GT(imagenet, 0.95);

  for (const DatasetKind kind : {DatasetKind::kEmTif, DatasetKind::kLungNii,
                                 DatasetKind::kLanguageTxt}) {
    EXPECT_GT(ratio_of("lzma", kind), ratio_of("lz4hc", kind))
        << "lzma must out-compress lz4hc (Table IV)";
  }
}

TEST(DatagenTest, MaterializeCreatesReadableFiles) {
  posixfs::MemVfs fs;
  const auto paths = materialize_dataset(fs, "data", DatasetKind::kLanguageTxt, 7);
  EXPECT_EQ(paths.size(), 7u);
  EXPECT_EQ(fs.file_count(), 7u);
  for (const auto& p : paths) {
    const auto data = posixfs::read_file(fs, p);
    ASSERT_TRUE(data.has_value());
    EXPECT_EQ(data->size(), dataset_spec(DatasetKind::kLanguageTxt).file_bytes);
  }
}

TEST(TfRecordTest, ShardRoundTrip) {
  std::vector<Bytes> items;
  for (int i = 0; i < 20; ++i) {
    items.push_back(generate_file(DatasetKind::kLanguageTxt,
                                  static_cast<std::uint64_t>(i)));
  }
  const Bytes shard = build_tfrecord_shard(items);
  TfRecordReader reader(as_view(shard));
  std::size_t count = 0;
  while (auto rec = reader.next()) {
    ASSERT_LT(count, items.size());
    EXPECT_TRUE(std::equal(rec->begin(), rec->end(), items[count].begin(),
                           items[count].end()));
    ++count;
  }
  EXPECT_EQ(count, items.size());
}

TEST(TfRecordTest, DetectsCorruption) {
  Bytes shard = build_tfrecord_shard({Bytes(100, 7)});
  shard[50] ^= 1;
  TfRecordReader reader(as_view(shard));
  EXPECT_THROW((void)reader.next(), std::runtime_error);
  // Truncation is also detected.
  const Bytes ok_shard = build_tfrecord_shard({Bytes(100, 7)});
  TfRecordReader reader2(ByteView{ok_shard.data(), ok_shard.size() - 10});
  EXPECT_THROW((void)reader2.next(), std::runtime_error);
}

TEST(AppsTest, TableFiveParameters) {
  EXPECT_DOUBLE_EQ(srgan_gtx().profile.t_iter_s, 9.689);
  EXPECT_DOUBLE_EQ(srgan_gtx().profile.c_batch_files, 256);
  EXPECT_DOUBLE_EQ(srgan_gtx().profile.s_batch_raw_mb, 410.0);
  EXPECT_FALSE(srgan_gtx().profile.async_io);
  EXPECT_DOUBLE_EQ(srgan_v100().profile.t_iter_s, 2.416);
  EXPECT_DOUBLE_EQ(frnn_cpu().profile.t_iter_s, 0.655);
  EXPECT_TRUE(frnn_cpu().profile.async_io);
  EXPECT_EQ(all_app_cases().size(), 5u);
}

class TrainerTest : public ::testing::Test {
 protected:
  // One-rank FanStore with 12 generated files and cost accounting on.
  void run_with(bool async, double t_iter, dlsim::TrainerResult* out) {
    mpi::run_world(1, [&](mpi::Comm& comm) {
      core::Instance::Options opt;
      opt.fs.cost.enabled = true;
      opt.fs.clock = &clock_;
      core::Instance inst(comm, opt);
      const auto& reg = compress::Registry::instance();
      const auto* codec = reg.by_name("lz4hc");
      format::PartitionWriter w;
      std::vector<std::string> files;
      for (int i = 0; i < 12; ++i) {
        const std::string path = "ds/f" + std::to_string(i);
        w.add(format::make_record(
            path, *codec, reg.id_of(*codec),
            as_view(generate_file(DatasetKind::kEmTif, static_cast<std::uint64_t>(i)))));
        files.push_back(path);
      }
      const Bytes blob = w.serialize();
      inst.load_partition_blob(as_view(blob), 0);
      inst.exchange_metadata();

      TrainerOptions topt;
      topt.t_iter_s = t_iter;
      topt.batch_per_rank = 4;
      topt.epochs = 2;
      topt.async_io = async;
      topt.io_clock = &clock_;
      topt.comm = &comm;
      *out = run_training(inst.fs(), files, topt);
    });
  }
  simnet::VirtualClock clock_;
};

TEST_F(TrainerTest, SyncAddsIoToCritonPath) {
  TrainerResult r;
  run_with(/*async=*/false, /*t_iter=*/0.1, &r);
  EXPECT_EQ(r.iterations, 6u);  // 12 files / batch 4 = 3 iters x 2 epochs
  EXPECT_EQ(r.files_read, 24u);
  EXPECT_GT(r.io_s, 0);
  EXPECT_NEAR(r.total_s, r.compute_s + r.io_s, 1e-9);
  EXPECT_GT(r.items_per_s, 0);
}

TEST_F(TrainerTest, AsyncHidesIoUnderCompute) {
  TrainerResult r;
  run_with(/*async=*/true, /*t_iter=*/0.5, &r);
  // I/O for 4 smallish files is far below 0.5 s: fully hidden.
  EXPECT_NEAR(r.total_s, r.compute_s, r.compute_s * 0.05);
  EXPECT_DOUBLE_EQ(r.io_visible_s, 0.0);
}

TEST_F(TrainerTest, AsyncBoundedByIoWhenComputeTiny) {
  TrainerResult r;
  run_with(/*async=*/true, /*t_iter=*/1e-9, &r);
  EXPECT_NEAR(r.total_s, r.io_s, r.io_s * 0.05);
}

TEST(TrainerValidationTest, RejectsBadOptions) {
  posixfs::MemVfs fs;
  TrainerOptions opt;
  opt.io_clock = nullptr;
  EXPECT_THROW(run_training(fs, {"f"}, opt), std::invalid_argument);
  simnet::VirtualClock clock;
  opt.io_clock = &clock;
  EXPECT_THROW(run_training(fs, {}, opt), std::invalid_argument);
  opt.batch_per_rank = 0;
  EXPECT_THROW(run_training(fs, {"f"}, opt), std::invalid_argument);
}

TEST(TrainerValidationTest, MissingFileSurfacesAsError) {
  posixfs::MemVfs fs;
  simnet::VirtualClock clock;
  TrainerOptions opt;
  opt.io_clock = &clock;
  opt.batch_per_rank = 1;
  EXPECT_THROW(run_training(fs, {"missing"}, opt), std::runtime_error);
}

}  // namespace
}  // namespace fanstore::dlsim
