# Empty compiler generated dependencies file for fanstore_prep.
# This may be replaced when dependencies are built.
