// Fault-tolerance tests: replica failover when a daemon dies (timed fetch
// + ring fallback), the failover-hops x replica-placement reach matrix,
// CRC-rejection hygiene, and data-parallel global-shuffle coverage.
#include <gtest/gtest.h>

#include <cerrno>
#include <limits>
#include <mutex>
#include <set>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "dlsim/trainer.hpp"
#include "fault/injector.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "tests/test_data.hpp"

namespace fanstore {
namespace {

// Stores every record of `part` into `inst`'s local backend without
// metadata ownership — the shape replicate_ring leaves on a replica rank.
void put_replica_blob(core::Instance& inst, const Bytes& part) {
  for (const auto& rec : format::scan_partition(as_view(part))) {
    core::Blob b;
    b.compressor = rec.compressor;
    b.data.assign(rec.data.begin(), rec.data.end());
    inst.backend().put(std::string(rec.path), std::move(b));
  }
}

TEST(FailoverTest, ReplicaServesWhenOwnerDaemonDies) {
  // 3 ranks; rank 1 owns "f" and rank 2 holds a ring replica. Rank 1's
  // daemon never starts (a "failed node"); rank 0's read must time out on
  // the owner and fail over to rank 2.
  const Bytes data = testdata::text_like(9000, 5);
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4hc");
  format::PartitionWriter w;
  w.add(format::make_record("f", *codec, reg.id_of(*codec), as_view(data)));
  const Bytes part = w.serialize();

  mpi::run_world(3, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 200;
    opt.fs.failover_hops = 2;
    core::Instance inst(comm, opt);
    if (comm.rank() == 1) {
      inst.load_partition_blob(as_view(part), 0, /*owner_rank=*/1);
    }
    if (comm.rank() == 2) {
      // The replica: blob in the local backend, no metadata ownership.
      const auto views = format::scan_partition(as_view(part));
      core::Blob b;
      b.compressor = views[0].compressor;
      b.data.assign(views[0].data.begin(), views[0].data.end());
      inst.backend().put("f", std::move(b));
    }
    inst.exchange_metadata();
    if (comm.rank() != 1) inst.start_daemon();  // rank 1 is "dead"
    comm.barrier();

    if (comm.rank() == 0) {
      const auto got = posixfs::read_file(inst.fs(), "f");
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, data);
      EXPECT_EQ(inst.fs().stats().failovers, 1u);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(FailoverTest, FetchFailsCleanlyWithNoReplica) {
  mpi::run_world(2, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 100;
    opt.fs.failover_hops = 1;
    core::Instance inst(comm, opt);
    if (comm.rank() == 1) {
      format::FileStat st;
      st.size = 10;
      st.owner_rank = 1;
      inst.metadata().insert("ghost", st);
    }
    inst.exchange_metadata();
    // No daemons at all: the open must fail with -EIO, not hang.
    if (comm.rank() == 0) {
      EXPECT_EQ(inst.fs().open("ghost", posixfs::OpenMode::kRead), -EIO);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(FailoverTest, RingReplicationPlusFailoverEndToEnd) {
  // Full flow: prep -> load_from_shared -> replicate_ring(1); then one
  // daemon "dies" and its files remain readable from the successor.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs src;
    for (int i = 0; i < 8; ++i) {
      posixfs::write_file(src, "ds/f" + std::to_string(i),
                          as_view(testdata::runs_and_noise(4000, i)));
    }
    prep::PrepOptions opt;
    opt.num_partitions = 4;
    opt.compressor = "lz4";
    prep::prepare_dataset(src, "ds", shared, "packed", opt);
  }
  constexpr int kDead = 2;
  mpi::run_world(4, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 300;
    opt.fs.failover_hops = 2;
    core::Instance inst(comm, opt);
    const auto manifest = prep::load_manifest(shared, "packed");
    inst.load_from_shared(shared, manifest.partition_paths());
    inst.replicate_ring(1);
    inst.exchange_metadata();
    if (comm.rank() != kDead) inst.start_daemon();
    comm.barrier();

    if (comm.rank() == 0) {
      // Every file is readable, including rank 2's (replicated on rank 3).
      for (int i = 0; i < 8; ++i) {
        const auto got = posixfs::read_file(inst.fs(), "ds/f" + std::to_string(i));
        ASSERT_TRUE(got.has_value()) << i;
        EXPECT_EQ(*got, testdata::runs_and_noise(4000, i)) << i;
      }
      EXPECT_GE(inst.fs().stats().failovers, 1u);
    }
    comm.barrier();
    inst.stop();
  });
}

// Reach matrix: with a dead owner, a fetch walks the ring for
// `failover_hops` extra candidates, so a single replica placed `distance`
// ranks past the owner is reachable iff failover_hops >= distance.
class FailoverMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FailoverMatrixTest, ReplicaReachableIffHopsCoverDistance) {
  const int hops = std::get<0>(GetParam());
  const int distance = std::get<1>(GetParam());
  constexpr int kOwner = 1;
  const bool expect_ok = hops >= distance;

  const Bytes data = testdata::runs_and_noise(5000, 40 + distance);
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4");
  format::PartitionWriter w;
  w.add(format::make_record("m", *codec, reg.id_of(*codec), as_view(data)));
  const Bytes part = w.serialize();

  mpi::run_world(5, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 60;
    opt.fs.failover_hops = hops;
    opt.fs.retry.max_attempts = 2;
    opt.fs.retry.base_delay_ms = 1;
    core::Instance inst(comm, opt);
    if (comm.rank() == kOwner) {
      inst.load_partition_blob(as_view(part), 0, kOwner);
    }
    if (comm.rank() == kOwner + distance) put_replica_blob(inst, part);
    inst.exchange_metadata();
    if (comm.rank() != kOwner) inst.start_daemon();  // owner is "dead"
    comm.barrier();

    if (comm.rank() == 0) {
      if (expect_ok) {
        const auto got = posixfs::read_file(inst.fs(), "m");
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, data);
        EXPECT_EQ(inst.fs().stats().failovers, 1u);
      } else {
        EXPECT_EQ(inst.fs().open("m", posixfs::OpenMode::kRead), -EIO);
        EXPECT_EQ(inst.fs().stats().failovers, 0u);
      }
    }
    comm.barrier();
    inst.stop();
  });
}

INSTANTIATE_TEST_SUITE_P(
    HopsByPlacement, FailoverMatrixTest,
    ::testing::Combine(::testing::Values(1, 2, 3),   // failover_hops
                       ::testing::Values(1, 2, 3)),  // replica distance
    [](const ::testing::TestParamInfo<FailoverMatrixTest::ParamType>& info) {
      return "hops" + std::to_string(std::get<0>(info.param)) + "_dist" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FailoverTest, CrcRejectedReplyNeverLandsInCacheOrDecodeStats) {
  // Replies from the owner are corrupted in flight until the fault budget
  // (2) runs out. The rejected replies must leave no trace: nothing in the
  // PlainCache, no chunk decoded, no DecodeStats charge — only
  // retry.crc_rejects. Once the budget is spent, the same open succeeds.
  const Bytes data = testdata::runs_and_noise(9000, 77);
  const auto& reg = compress::Registry::instance();
  // Chunked codec so any decode attempt would charge chunked.chunks_decoded.
  const auto* codec = reg.by_name("chunked-4k+lz4");
  ASSERT_NE(codec, nullptr);
  format::PartitionWriter w;
  w.add(format::make_record("c", *codec, reg.id_of(*codec), as_view(data)));
  const Bytes part = w.serialize();

  fault::FaultPlan plan;
  plan.corrupt_from(1, fault::kFetchReplyTagMin, std::numeric_limits<int>::max(),
                    1.0);
  plan.messages.back().max_faults = 2;
  fault::FaultInjector inj(plan);

  mpi::run_world(
      2,
      [&](mpi::Comm& comm) {
        core::Instance::Options opt;
        opt.fs.fetch_timeout_ms = 200;
        opt.fs.failover_hops = 0;
        opt.fs.retry.max_attempts = 2;
        opt.fs.retry.base_delay_ms = 1;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        if (comm.rank() == 1) inst.load_partition_blob(as_view(part), 0, 1);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        if (comm.rank() == 0) {
          auto& m = inst.metrics();
          // Both attempts hit a corrupted reply: the open fails...
          EXPECT_EQ(inst.fs().open("c", posixfs::OpenMode::kRead), -EIO);
          EXPECT_EQ(m.counter("retry.crc_rejects").value(), 2u);
          EXPECT_EQ(m.counter("retry.exhausted").value(), 1u);
          // ...and the poisoned bytes were never interpreted: no cache
          // entry, no successful remote fetch, zero decode work charged.
          EXPECT_FALSE(inst.fs().cache().contains("c"));
          EXPECT_EQ(m.counter("fs.remote_fetches").value(), 0u);
          EXPECT_EQ(m.counter("chunked.chunks_decoded").value(), 0u);
          EXPECT_EQ(m.counter("chunked.bytes_decoded").value(), 0u);

          // Fault budget exhausted -> the next open gets a clean reply.
          const auto got = posixfs::read_file(inst.fs(), "c");
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, data);
          EXPECT_TRUE(inst.fs().cache().contains("c"));
          EXPECT_GT(m.counter("chunked.chunks_decoded").value(), 0u);
          EXPECT_EQ(m.counter("retry.crc_rejects").value(), 2u);  // unchanged
        }
        comm.barrier();
        inst.stop();
      },
      &inj);
  EXPECT_EQ(inj.metrics().counter("fault.msg_corrupted").value(), 2u);
}

TEST(GlobalShuffleTest, EveryFileVisitedOncePerEpoch) {
  // Data-parallel semantics: 2 ranks x batch 3 over 12 files -> 2
  // iterations/epoch, every file read exactly once per epoch job-wide.
  std::mutex mu;
  std::multiset<std::string> read_paths;
  mpi::run_world(2, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("store");
    format::PartitionWriter w;
    std::vector<std::string> files;
    for (int i = 0; i < 12; ++i) {
      const std::string p = "d/f" + std::to_string(i);
      files.push_back(p);
      if (i % 2 == comm.rank()) {
        w.add(format::make_record(p, *codec, 0, as_view(Bytes(64, static_cast<std::uint8_t>(i)))));
      }
    }
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    simnet::VirtualClock clock;
    dlsim::TrainerOptions topt;
    topt.t_iter_s = 0.01;
    topt.batch_per_rank = 3;
    topt.epochs = 1;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.global_shuffle = true;
    const auto result = dlsim::run_training(inst.fs(), files, topt);
    EXPECT_EQ(result.iterations, 2u);  // 12 / (3 x 2 ranks)
    EXPECT_EQ(result.files_read, 6u);

    // Collect which files this rank actually opened via stats-free route:
    // re-derive from cache contents (every opened file was cached).
    {
      std::lock_guard lk(mu);
      for (const auto& p : files) {
        if (inst.fs().cache().contains(p)) read_paths.insert(p);
      }
    }
    comm.barrier();
    inst.stop();
  });
  // Disjoint slices: no file cached on both ranks, all 12 covered.
  EXPECT_EQ(read_paths.size(), 12u);
  for (const auto& p : read_paths) EXPECT_EQ(read_paths.count(p), 1u) << p;
}

TEST(GlobalShuffleTest, RequiresComm) {
  posixfs::MemVfs fs;
  simnet::VirtualClock clock;
  dlsim::TrainerOptions opt;
  opt.io_clock = &clock;
  opt.global_shuffle = true;
  EXPECT_THROW(dlsim::run_training(fs, {"f"}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace fanstore
