// Hot-path concurrency benchmark: multi-threaded open/read throughput of
// the sharded single-flight PlainCache and the low-contention FanStoreFs
// read path, swept over 1–16 I/O threads on hit-heavy and miss-heavy
// mixes, against the pre-PR single-global-mutex cache (replicated below,
// duplicate-miss window and all).
//
// The hit-heavy "shared epoch" mix is the DL shape that motivated the
// overhaul: several I/O workers race through one shuffled epoch order, so
// every newly reached file is opened by all workers nearly simultaneously
// (most opens are hits). The pre-PR cache runs the
// fetch+decompress loader in *every* racing thread; single-flight runs it
// once and the waiters adopt the result.
//
// Emits BENCH_hotpath.json (threads-vs-throughput, both implementations)
// — the repo's recorded perf trajectory. tools/ci.sh runs `--quick` as a
// smoke test.
//
// Doubles as a metrics cross-check: the sharded cache's registry counters
// are compared phase-by-phase against the bench's own bookkeeping (loader
// invocations, issued ops) and the process exits non-zero on any mismatch,
// so a silently dropped or double-counted metric fails CI.
#include <atomic>
#include <cstring>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.hpp"
#include "compress/registry.hpp"
#include "obs/metrics.hpp"
#include "core/cache.hpp"
#include "core/instance.hpp"
#include "mpi/comm.hpp"
#include "posixfs/vfs.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

constexpr std::size_t kFileBytes = std::size_t{1} << 20;  // ~DL sample size; decompress >> a scheduler timeslice

// --- The pre-PR cache, verbatim semantics -------------------------------
// Single global mutex; concurrent misses on one path all run the loader
// and the losers adopt the winner's entry (the seed's documented window).
class LegacyMutexCache {
 public:
  explicit LegacyMutexCache(std::size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const Bytes> acquire(const std::string& path,
                                       const std::function<Bytes()>& loader) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto it = entries_.find(path);
      if (it != entries_.end()) {
        it->second.open_count++;
        return it->second.data;
      }
    }
    auto data = std::make_shared<const Bytes>(loader());
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(path);
    if (it != entries_.end()) {
      it->second.open_count++;
      return it->second.data;
    }
    Entry e;
    e.data = data;
    e.open_count = 1;
    fifo_.push_back(path);
    e.fifo_pos = std::prev(fifo_.end());
    bytes_used_ += data->size();
    entries_.emplace(path, std::move(e));
    evict_locked();
    return data;
  }

  void release(const std::string& path) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = entries_.find(path);
    if (it == entries_.end()) return;
    if (it->second.open_count > 0) it->second.open_count--;
    evict_locked();
  }

 private:
  struct Entry {
    std::shared_ptr<const Bytes> data;
    int open_count = 0;
    std::list<std::string>::iterator fifo_pos;
  };

  void evict_locked() {
    auto pos = fifo_.begin();
    while (bytes_used_ > capacity_ && pos != fifo_.end()) {
      const auto it = entries_.find(*pos);
      if (it == entries_.end()) {
        pos = fifo_.erase(pos);
        continue;
      }
      if (it->second.open_count > 0) {
        ++pos;
        continue;
      }
      bytes_used_ -= it->second.data->size();
      pos = fifo_.erase(pos);
      entries_.erase(it);
    }
  }

  const std::size_t capacity_;
  std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> fifo_;
  std::size_t bytes_used_ = 0;
};

// --- Workload -----------------------------------------------------------

// Realistic-entropy sample (~1.4x zstd ratio, like real DL datasets —
// paper Table 4): small alphabet plus short-range repeats.
Bytes sample_file(std::size_t index) {
  Bytes b(kFileBytes);
  std::uint64_t x = 88172645463325252ull + index * 2654435761ull;
  for (std::size_t i = 0; i < b.size(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b[i] = static_cast<std::uint8_t>('a' + (x % 26));
    if (x % 7 == 0 && i > 16) b[i] = b[i - 16];
  }
  return b;
}

struct Dataset {
  std::vector<std::string> paths;
  std::vector<Bytes> compressed;  // zstd blobs; the loader decompresses
  const compress::Compressor* codec = nullptr;
};

Dataset make_dataset(std::size_t files) {
  Dataset ds;
  ds.codec = compress::Registry::instance().by_name("zstd");
  for (std::size_t i = 0; i < files; ++i) {
    ds.paths.push_back("ds/f" + std::to_string(i));
    ds.compressed.push_back(ds.codec->compress(as_view(sample_file(i))));
  }
  return ds;
}

// One "open/read": acquire (decompressing on miss), copy the plain bytes
// out (the read), release.
template <typename Cache>
void open_read_close(Cache& cache, const Dataset& ds, std::size_t file,
                     Bytes& read_buf) {
  const std::string& path = ds.paths[file];
  auto data = cache.acquire(path, [&] {
    return ds.codec->decompress(as_view(ds.compressed[file]), kFileBytes);
  });
  read_buf.resize(data->size());
  std::memcpy(read_buf.data(), data->data(), data->size());
  cache.release(path);
}

/// Runs `fn(thread_index)` on `threads` threads; returns elapsed seconds.
double timed_threads(int threads, const std::function<void(int)>& fn) {
  WallTimer timer;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(fn, t);
  for (auto& th : pool) th.join();
  return timer.elapsed_sec();
}

// Shared-epoch hit-heavy mix: all threads walk the same file sequence at
// their own pace. Each newly reached file is one coalesced (or, legacy,
// duplicated) load; revisits by trailing threads are hits.
template <typename Cache>
double run_shared_epoch(Cache& cache, const Dataset& ds, int threads,
                        std::size_t seq_len) {
  return timed_threads(threads, [&](int) {
    Bytes buf;
    for (std::size_t i = 0; i < seq_len; ++i) {
      open_read_close(cache, ds, i % ds.paths.size(), buf);
    }
  });
}

// Miss-heavy mix: thread-private strides over a file set 4x the cache
// capacity — nearly every open evicts and reloads, no load sharing.
template <typename Cache>
double run_miss_heavy(Cache& cache, const Dataset& ds, int threads,
                      std::size_t ops_per_thread) {
  return timed_threads(threads, [&](int t) {
    Bytes buf;
    std::size_t x = static_cast<std::size_t>(t) * 2654435761u + 1;
    for (std::size_t i = 0; i < ops_per_thread; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      open_read_close(cache, ds, (x >> 33) % ds.paths.size(), buf);
    }
  });
}

struct Series {
  std::vector<int> threads;
  std::vector<double> legacy_kops;
  std::vector<double> sharded_kops;
};

std::string json_array(const std::vector<int>& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(v[i]);
  }
  return s + "]";
}

std::string json_array(const std::vector<double>& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += bench::fmt("%.2f", v[i]);
  }
  return s + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
  const std::size_t files = quick ? 12 : 48;
  const std::size_t epoch_len = 2 * files;  // two epoch passes
  const std::size_t miss_ops = quick ? 16 : 48;
  const std::size_t kShards = 8;

  const Dataset ds = make_dataset(files);
  const std::size_t hit_capacity = 4 * files * kFileBytes;  // fits + shard-skew headroom
  const std::size_t miss_capacity = files * kFileBytes / 4;  // 4x over-subscribed

  Series hit, miss;
  bool metrics_ok = true;
  bench::section("Hot path: shared-epoch hit-heavy mix (open/read/close per sec)");
  bench::Table hit_table({"threads", "legacy 1-mutex kops/s", "sharded+SF kops/s",
                          "speedup", "loads legacy", "loads sharded"});
  bench::Table hit_metrics_table(
      {"threads", "cache.hits", "cache.misses", "sf-waits", "evictions"});
  for (const int t : thread_counts) {
    const std::size_t total_ops = static_cast<std::size_t>(t) * epoch_len;

    LegacyMutexCache legacy(hit_capacity);
    std::atomic<std::uint64_t> legacy_loads{0};
    // Count loads by wrapping the dataset loader via a counting cache pass.
    double legacy_sec;
    {
      WallTimer timer;
      std::vector<std::thread> pool;
      for (int i = 0; i < t; ++i) {
        pool.emplace_back([&] {
          Bytes buf;
          for (std::size_t k = 0; k < epoch_len; ++k) {
            const std::size_t f = k % ds.paths.size();
            auto data = legacy.acquire(ds.paths[f], [&] {
              legacy_loads.fetch_add(1, std::memory_order_relaxed);
              return ds.codec->decompress(as_view(ds.compressed[f]), kFileBytes);
            });
            buf.assign(data->begin(), data->end());
            legacy.release(ds.paths[f]);
          }
        });
      }
      for (auto& th : pool) th.join();
      legacy_sec = timer.elapsed_sec();
    }

    core::PlainCache sharded(hit_capacity, kShards);
    std::atomic<std::uint64_t> sharded_loads{0};
    double sharded_sec;
    {
      WallTimer timer;
      std::vector<std::thread> pool;
      for (int i = 0; i < t; ++i) {
        pool.emplace_back([&] {
          Bytes buf;
          for (std::size_t k = 0; k < epoch_len; ++k) {
            const std::size_t f = k % ds.paths.size();
            auto data = sharded.acquire(ds.paths[f], [&] {
              sharded_loads.fetch_add(1, std::memory_order_relaxed);
              return ds.codec->decompress(as_view(ds.compressed[f]), kFileBytes);
            });
            buf.assign(data->begin(), data->end());
            sharded.release(ds.paths[f]);
          }
        });
      }
      for (auto& th : pool) th.join();
      sharded_sec = timer.elapsed_sec();
    }

    const double legacy_kops = static_cast<double>(total_ops) / legacy_sec / 1e3;
    const double sharded_kops = static_cast<double>(total_ops) / sharded_sec / 1e3;
    hit.threads.push_back(t);
    hit.legacy_kops.push_back(legacy_kops);
    hit.sharded_kops.push_back(sharded_kops);
    hit_table.row({std::to_string(t), bench::fmt("%.1f", legacy_kops),
                   bench::fmt("%.1f", sharded_kops),
                   bench::fmt("%.2fx", sharded_kops / legacy_kops),
                   std::to_string(legacy_loads.load()),
                   std::to_string(sharded_loads.load())});

    // Cross-check the cache's registry counters against the bench's own
    // bookkeeping: every loader invocation is a miss, everything else a hit.
    const auto cstats = sharded.stats();
    hit_metrics_table.row({std::to_string(t), std::to_string(cstats.hits),
                           std::to_string(cstats.misses),
                           std::to_string(cstats.single_flight_waits),
                           std::to_string(cstats.evictions)});
    if (cstats.misses != sharded_loads.load()) {
      std::fprintf(stderr,
                   "METRICS MISMATCH: cache.misses=%llu but the bench ran "
                   "%llu loaders (t=%d)\n",
                   static_cast<unsigned long long>(cstats.misses),
                   static_cast<unsigned long long>(sharded_loads.load()), t);
      metrics_ok = false;
    }
    if (cstats.hits + cstats.misses != total_ops) {
      std::fprintf(stderr,
                   "METRICS MISMATCH: hits+misses=%llu but the bench issued "
                   "%zu acquires (t=%d)\n",
                   static_cast<unsigned long long>(cstats.hits + cstats.misses),
                   total_ops, t);
      metrics_ok = false;
    }
  }
  hit_table.print();
  bench::section("Per-phase cache metric deltas (fresh cache per row)");
  hit_metrics_table.print();

  bench::section("Hot path: miss-heavy mix, 4x over-subscribed cache");
  bench::Table miss_table(
      {"threads", "legacy 1-mutex kops/s", "sharded+SF kops/s", "speedup"});
  for (const int t : thread_counts) {
    const std::size_t total_ops = static_cast<std::size_t>(t) * miss_ops;
    LegacyMutexCache legacy(miss_capacity);
    const double legacy_sec = run_miss_heavy(legacy, ds, t, miss_ops);
    core::PlainCache sharded(miss_capacity, 0);  // production auto-shard policy
    const double sharded_sec = run_miss_heavy(sharded, ds, t, miss_ops);
    const double legacy_kops = static_cast<double>(total_ops) / legacy_sec / 1e3;
    const double sharded_kops = static_cast<double>(total_ops) / sharded_sec / 1e3;
    miss.threads.push_back(t);
    miss.legacy_kops.push_back(legacy_kops);
    miss.sharded_kops.push_back(sharded_kops);
    miss_table.row({std::to_string(t), bench::fmt("%.1f", legacy_kops),
                    bench::fmt("%.1f", sharded_kops),
                    bench::fmt("%.2fx", sharded_kops / legacy_kops)});
  }
  miss_table.print();

  // --- End-to-end FanStoreFs open/read/close (post-PR path) --------------
  bench::section("FanStoreFs end-to-end open/read/close, warm cache");
  bench::Table fs_table(
      {"threads", "kops/s", "d fs.opens", "d cache.hits", "d fs.bytes_read"});
  std::vector<int> fs_threads;
  std::vector<double> fs_kops;
  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.cache_bytes = hit_capacity;
    opt.fs.cache_shards = kShards;
    core::Instance inst(comm, opt);
    const auto& reg = compress::Registry::instance();
    format::PartitionWriter w;
    for (std::size_t i = 0; i < files; ++i) {
      w.add(format::make_record(ds.paths[i], *ds.codec, reg.id_of(*ds.codec),
                                as_view(sample_file(i))));
    }
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), 0);
    inst.exchange_metadata();
    for (const auto& p : ds.paths) (void)posixfs::read_file(inst.fs(), p);  // warm

    for (const int t : thread_counts) {
      const std::size_t per_thread = epoch_len;
      const auto before = inst.metrics().snapshot();
      const double sec = timed_threads(t, [&](int tid) {
        Bytes buf(kFileBytes);
        std::size_t x = static_cast<std::size_t>(tid) * 40503u + 11;
        for (std::size_t k = 0; k < per_thread; ++k) {
          x = x * 6364136223846793005ull + 1442695040888963407ull;
          const std::string& p = ds.paths[(x >> 33) % ds.paths.size()];
          const int fd = inst.fs().open(p, posixfs::OpenMode::kRead);
          if (fd < 0) continue;
          while (inst.fs().read(fd, MutByteView{buf.data(), buf.size()}) > 0) {
          }
          inst.fs().close(fd);
        }
      });
      const auto after = inst.metrics().snapshot();
      const double kops =
          static_cast<double>(static_cast<std::size_t>(t) * per_thread) / sec / 1e3;
      const std::uint64_t d_opens =
          after.counter("fs.opens") - before.counter("fs.opens");
      const std::uint64_t d_hits =
          after.counter("cache.hits") - before.counter("cache.hits");
      fs_threads.push_back(t);
      fs_kops.push_back(kops);
      fs_table.row(
          {std::to_string(t), bench::fmt("%.1f", kops), std::to_string(d_opens),
           std::to_string(d_hits),
           std::to_string(after.counter("fs.bytes_read") -
                          before.counter("fs.bytes_read"))});
      // Warm cache + all paths valid: every issued open must land, as a hit.
      const std::size_t issued = static_cast<std::size_t>(t) * per_thread;
      if (d_opens != issued || d_hits != issued) {
        std::fprintf(stderr,
                     "METRICS MISMATCH: fs phase issued %zu opens but "
                     "d(fs.opens)=%llu d(cache.hits)=%llu (t=%d)\n",
                     issued, static_cast<unsigned long long>(d_opens),
                     static_cast<unsigned long long>(d_hits), t);
        metrics_ok = false;
      }
    }
  });
  fs_table.print();

  const std::size_t idx8 = [&] {
    for (std::size_t i = 0; i < hit.threads.size(); ++i) {
      if (hit.threads[i] == 8) return i;
    }
    return hit.threads.size() - 1;
  }();
  const double speedup8 = hit.sharded_kops[idx8] / hit.legacy_kops[idx8];
  std::printf("\nhit-heavy speedup at %d threads: %.2fx\n", hit.threads[idx8],
              speedup8);

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_hotpath: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"hotpath\",\n"
               "  \"quick\": %s,\n"
               "  \"file_bytes\": %zu,\n"
               "  \"files\": %zu,\n"
               "  \"cache_shards\": %zu,\n"
               "  \"hit_heavy_shared_epoch\": {\n"
               "    \"threads\": %s,\n"
               "    \"legacy_single_mutex_kops\": %s,\n"
               "    \"sharded_single_flight_kops\": %s,\n"
               "    \"speedup_at_8_threads\": %.2f\n"
               "  },\n"
               "  \"miss_heavy\": {\n"
               "    \"threads\": %s,\n"
               "    \"legacy_single_mutex_kops\": %s,\n"
               "    \"sharded_single_flight_kops\": %s\n"
               "  },\n"
               "  \"fanstore_fs_warm_open_read_close\": {\n"
               "    \"threads\": %s,\n"
               "    \"kops\": %s\n"
               "  }\n"
               "}\n",
               quick ? "true" : "false", kFileBytes, files, kShards,
               json_array(hit.threads).c_str(),
               json_array(hit.legacy_kops).c_str(),
               json_array(hit.sharded_kops).c_str(), speedup8,
               json_array(miss.threads).c_str(),
               json_array(miss.legacy_kops).c_str(),
               json_array(miss.sharded_kops).c_str(),
               json_array(fs_threads).c_str(), json_array(fs_kops).c_str());
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  if (!metrics_ok) {
    std::fprintf(stderr,
                 "bench_hotpath: registry counters disagree with bench "
                 "bookkeeping (see METRICS MISMATCH above)\n");
    return 1;
  }
  std::printf("metrics cross-check: OK\n");
  return 0;
}
