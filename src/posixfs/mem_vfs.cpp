#include "posixfs/mem_vfs.hpp"

#include <algorithm>

#include "util/crc32.hpp"

namespace fanstore::posixfs {

bool MemVfs::dir_exists_locked(const std::string& path) const {
  if (path.empty()) return true;  // root
  if (dirs_.count(path) > 0) return true;
  // Implicit directory: any file strictly below it.
  const std::string prefix = path + "/";
  const auto it = files_.lower_bound(prefix);
  return it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
}

int MemVfs::open(std::string_view path_in, OpenMode mode) {
  const std::string path = normalize_path(path_in);
  if (path.empty()) return -EINVAL;
  sync::MutexLock lk(mu_);
  if (mode == OpenMode::kRead) {
    const auto it = files_.find(path);
    if (it == files_.end()) return -ENOENT;
    const int fd = next_fd_++;
    open_files_[fd] = OpenFile{path, mode, it->second.data, 0};
    return fd;
  }
  // Write: create/truncate into a private buffer, published on close.
  const int fd = next_fd_++;
  open_files_[fd] = OpenFile{path, mode, std::make_shared<Bytes>(), 0};
  return fd;
}

int MemVfs::close(int fd) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  if (it->second.mode == OpenMode::kWrite) {
    File f;
    f.data = it->second.data;
    f.mtime_ns = clock_ns_++;
    files_[it->second.path] = std::move(f);
  }
  open_files_.erase(it);
  return 0;
}

std::int64_t MemVfs::read(int fd, MutByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  if (of.mode != OpenMode::kRead) return -EBADF;
  const auto& data = *of.data;
  if (of.offset >= static_cast<std::int64_t>(data.size())) return 0;
  const std::size_t n =
      std::min(buf.size(), data.size() - static_cast<std::size_t>(of.offset));
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(of.offset), n, buf.begin());
  of.offset += static_cast<std::int64_t>(n);
  return static_cast<std::int64_t>(n);
}

std::int64_t MemVfs::write(int fd, ByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  if (of.mode != OpenMode::kWrite) return -EBADF;
  Bytes& data = *of.data;
  const auto end = static_cast<std::size_t>(of.offset) + buf.size();
  if (end > data.size()) data.resize(end);
  std::copy(buf.begin(), buf.end(),
            data.begin() + static_cast<std::ptrdiff_t>(of.offset));
  of.offset += static_cast<std::int64_t>(buf.size());
  return static_cast<std::int64_t>(buf.size());
}

std::int64_t MemVfs::lseek(int fd, std::int64_t offset, Whence whence) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet: base = 0; break;
    case Whence::kCur: base = of.offset; break;
    case Whence::kEnd: base = static_cast<std::int64_t>(of.data->size()); break;
  }
  const std::int64_t pos = base + offset;
  if (pos < 0) return -EINVAL;
  of.offset = pos;
  return pos;
}

int MemVfs::stat(std::string_view path_in, format::FileStat* out) {
  const std::string path = normalize_path(path_in);
  sync::MutexLock lk(mu_);
  const auto it = files_.find(path);
  if (it != files_.end()) {
    *out = format::FileStat{};
    out->size = it->second.data->size();
    out->type = format::FileType::kRegular;
    out->mtime_ns = it->second.mtime_ns;
    return 0;
  }
  if (dir_exists_locked(path)) {
    *out = format::FileStat{};
    out->type = format::FileType::kDirectory;
    out->mode = 0755;
    return 0;
  }
  return -ENOENT;
}

int MemVfs::opendir(std::string_view path_in) {
  const std::string path = normalize_path(path_in);
  sync::MutexLock lk(mu_);
  if (!dir_exists_locked(path)) return -ENOENT;
  // Collect immediate children: explicit dirs, implicit dirs, files.
  std::set<std::string> child_dirs;
  std::vector<Dirent> entries;
  const std::string prefix = path.empty() ? "" : path + "/";
  for (const auto& [p, f] : files_) {
    if (p.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string rest = p.substr(prefix.size());
    const auto slash = rest.find('/');
    if (slash == std::string::npos) {
      entries.push_back(Dirent{rest, format::FileType::kRegular});
    } else {
      child_dirs.insert(rest.substr(0, slash));
    }
  }
  for (const auto& d : dirs_) {
    if (d.compare(0, prefix.size(), prefix) != 0 || d == path) continue;
    const std::string rest = d.substr(prefix.size());
    if (rest.empty()) continue;
    const auto slash = rest.find('/');
    child_dirs.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  }
  for (const auto& d : child_dirs) {
    entries.push_back(Dirent{d, format::FileType::kDirectory});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Dirent& a, const Dirent& b) { return a.name < b.name; });
  const int h = next_dir_++;
  open_dirs_[h] = OpenDir{std::move(entries), 0};
  return h;
}

std::optional<Dirent> MemVfs::readdir(int dir_handle) {
  sync::MutexLock lk(mu_);
  const auto it = open_dirs_.find(dir_handle);
  if (it == open_dirs_.end()) return std::nullopt;
  if (it->second.next >= it->second.entries.size()) return std::nullopt;
  return it->second.entries[it->second.next++];
}

int MemVfs::closedir(int dir_handle) {
  sync::MutexLock lk(mu_);
  return open_dirs_.erase(dir_handle) > 0 ? 0 : -EBADF;
}

void MemVfs::mkdir(std::string_view path) {
  const std::string p = normalize_path(path);
  if (p.empty()) return;
  sync::MutexLock lk(mu_);
  dirs_.insert(p);
}

std::optional<Bytes> MemVfs::slurp(std::string_view path) const {
  sync::MutexLock lk(mu_);
  const auto it = files_.find(normalize_path(path));
  if (it == files_.end()) return std::nullopt;
  return *it->second.data;
}

std::vector<std::string> MemVfs::list_files(std::string_view prefix_in) const {
  const std::string prefix = normalize_path(prefix_in);
  const std::string needle = prefix.empty() ? "" : prefix + "/";
  sync::MutexLock lk(mu_);
  std::vector<std::string> out;
  for (const auto& [p, f] : files_) {
    if (needle.empty() || p.compare(0, needle.size(), needle) == 0) out.push_back(p);
  }
  return out;
}

std::size_t MemVfs::file_count() const {
  sync::MutexLock lk(mu_);
  return files_.size();
}

std::size_t MemVfs::total_bytes() const {
  sync::MutexLock lk(mu_);
  std::size_t n = 0;
  for (const auto& [p, f] : files_) n += f.data->size();
  return n;
}

}  // namespace fanstore::posixfs
