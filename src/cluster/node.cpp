#include "cluster/node.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"
#include "format/file_stat.hpp"
#include "util/crc32.hpp"

namespace fanstore::cluster {

namespace {

/// Appends crc32(body) so receivers can reject corrupted replies.
Bytes seal(Bytes body) {
  const std::uint32_t crc = crc32(as_view(body));
  append_le<std::uint32_t>(body, crc);
  return body;
}

/// Validates and strips the trailing crc; nullopt on mismatch/truncation.
std::optional<Bytes> unseal(const Bytes& payload) {
  if (payload.size() < 4) return std::nullopt;
  const std::size_t n = payload.size() - 4;
  const std::uint32_t want = load_le<std::uint32_t>(payload.data() + n);
  if (crc32(ByteView{payload.data(), n}) != want) return std::nullopt;
  return Bytes(payload.begin(), payload.begin() + static_cast<std::ptrdiff_t>(n));
}

bool is_cluster_request(const mpi::Message& m) {
  return m.tag >= kTagGossip && m.tag <= kTagMetaPush;
}

/// Appends `extra` to `out`, keeping order and skipping duplicates — the
/// candidate lists stay small (<= members), so linear scans beat a set.
void append_unique(std::vector<int>& out, const std::vector<int>& extra) {
  for (const int r : extra) {
    if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
  }
}

}  // namespace

ClusterNode::Metrics::Metrics(obs::MetricsRegistry& m)
    : gossip_sent(m.counter("cluster.gossip_sent")),
      gossip_merged(m.counter("cluster.gossip_merged")),
      view_changes(m.counter("cluster.view_changes")),
      ring_rebuilds(m.counter("cluster.ring_rebuilds")),
      meta_served(m.counter("cluster.meta_served")),
      lookups_remote(m.counter("cluster.lookups_remote")),
      lookup_misses(m.counter("cluster.lookup_misses")),
      sync_rounds(m.counter("cluster.sync_rounds")),
      shards_pulled(m.counter("cluster.shards_pulled")),
      sync_bytes(m.counter("cluster.sync_bytes")),
      shards_dropped(m.counter("cluster.shards_dropped")),
      push_bytes(m.counter("cluster.push_bytes")),
      merge_skipped(m.counter("cluster.merge_skipped")) {}

ClusterNode::ClusterNode(mpi::Comm comm, ShardStore* store, NodeOptions options)
    : comm_(comm),
      store_(store),
      options_(std::move(options)),
      sharded_(options_.replication_factor < comm_.size()),
      owned_metrics_(options_.metrics != nullptr
                         ? nullptr
                         : std::make_unique<obs::MetricsRegistry>()),
      m_(options_.metrics != nullptr ? *options_.metrics : *owned_metrics_) {
  if (store_ == nullptr) throw std::invalid_argument("ClusterNode: null store");
  if (options_.nshards == 0) {
    throw std::invalid_argument("ClusterNode: nshards must be positive");
  }
  if (options_.rpc_timeout_ms <= 0) {
    throw std::invalid_argument("ClusterNode: rpc_timeout_ms must be positive");
  }
  if (options_.replication_factor < 1) options_.replication_factor = 1;
}

ClusterNode::~ClusterNode() { stop(); }

// --- lifecycle -------------------------------------------------------------

void ClusterNode::start() {
  if (options_.pump) {
    throw std::logic_error("ClusterNode: manual (pump) mode has no thread; drive poll()");
  }
  sync::MutexLock lock(lifecycle_mu_);
  if (running_.load()) return;
  running_.store(true);
  thread_ = std::thread([this] { serve(); });
}

void ClusterNode::stop() {
  sync::MutexLock lock(lifecycle_mu_);
  if (!running_.load()) return;
  comm_.send(comm_.rank(), kTagClusterStop, Bytes{});
  thread_.join();
  running_.store(false);
}

void ClusterNode::serve() {
  while (true) {
    const mpi::Message msg = comm_.recv_if(is_cluster_request);
    if (msg.tag == kTagClusterStop) return;
    handle(msg);
  }
}

int ClusterNode::poll() {
  int handled = 0;
  while (auto msg = comm_.try_recv_if(is_cluster_request)) {
    if (msg->tag != kTagClusterStop) handle(*msg);
    ++handled;
  }
  return handled;
}

bool ClusterNode::service_dead() const {
  return options_.fault != nullptr &&
         !options_.fault->daemon_alive(comm_.rank(), /*vnow=*/-1.0);
}

void ClusterNode::handle(const mpi::Message& msg) {
  // Process-crash semantics: a rank whose daemon the fault script killed
  // answers nothing — clients fail over to the shard's other owners.
  if (service_dead()) return;
  switch (msg.tag) {
    case kTagGossip: handle_gossip(msg); break;
    case kTagMetaLookup: handle_meta_lookup(msg); break;
    case kTagShardDigest: handle_shard_digest(msg); break;
    case kTagShardPull: handle_shard_pull(msg); break;
    case kTagListPaths: handle_list_paths(msg); break;
    case kTagListDir: handle_list_dir(msg); break;
    case kTagMetaPush: handle_meta_push(msg); break;
    default: break;  // unknown cluster tag: ignore (forward compatibility)
  }
}

// --- view / ring maintenance ----------------------------------------------

void ClusterNode::rebuild_ring_locked() {
  prev_ring_ = ring_;
  ring_ = HashRing(view_.ring_members(), options_.replication_factor,
                   options_.vnodes);
  m_.ring_rebuilds.inc();
}

bool ClusterNode::merge_view(const MembershipView& incoming) {
  sync::MutexLock lock(mu_);
  const auto before = view_.ring_members();
  if (!view_.merge(incoming)) return false;
  m_.view_changes.inc();
  if (view_.ring_members() != before) rebuild_ring_locked();
  return true;
}

void ClusterNode::bootstrap(const std::vector<int>& members) {
  sync::MutexLock lock(mu_);
  for (const int r : members) {
    view_.apply(r, MemberInfo{1, MemberState::kJoined});
  }
  rebuild_ring_locked();
  prev_ring_ = ring_;  // no older placement exists at bootstrap
}

void ClusterNode::gossip_now() {
  Bytes blob;
  std::vector<int> targets;
  {
    sync::MutexLock lock(mu_);
    blob = view_.serialize();
    targets = view_.serving_members();
  }
  Bytes payload;
  payload.push_back(0);  // want_reply = no
  append_le<std::uint32_t>(payload, 0);
  payload.insert(payload.end(), blob.begin(), blob.end());
  for (const int dest : targets) {
    if (dest == comm_.rank()) continue;
    comm_.send(dest, kTagGossip, payload);
    m_.gossip_sent.inc();
  }
}

bool ClusterNode::join(const std::vector<int>& seeds) {
  Bytes announce;
  {
    sync::MutexLock lock(mu_);
    const MemberInfo self = view_.get(comm_.rank());
    // Bumping past any prior incarnation also refutes a false/stale death.
    view_.apply(comm_.rank(),
                MemberInfo{self.incarnation + 1, MemberState::kJoined});
    rebuild_ring_locked();
    announce = view_.serialize();
  }
  m_.view_changes.inc();
  bool reached = false;
  for (const int seed : seeds) {
    if (seed == comm_.rank()) continue;
    Bytes body;
    body.push_back(1);  // want_reply: push-pull — learn the seed's view
    const auto reply = rpc(seed, kTagGossip, announce, /*prefixed=*/&body);
    m_.gossip_sent.inc();
    if (!reply) continue;
    reached = true;
    try {
      merge_view(MembershipView::deserialize(as_view(*reply)));
    } catch (const std::invalid_argument&) {
      // corrupted view blob: ignore; another seed or gossip round fixes it
    }
  }
  if (!reached) return false;
  rebalance(/*drop_unowned=*/false);
  gossip_now();  // non-seed members learn about us
  return true;
}

void ClusterNode::leave() {
  {
    sync::MutexLock lock(mu_);
    const MemberInfo self = view_.get(comm_.rank());
    view_.apply(comm_.rank(),
                MemberInfo{self.incarnation + 1, MemberState::kLeaving});
    rebuild_ring_locked();
  }
  m_.view_changes.inc();
  gossip_now();
}

void ClusterNode::declare(int rank, MemberState state) {
  bool changed = false;
  {
    sync::MutexLock lock(mu_);
    const MemberInfo cur = view_.get(rank);
    // Same incarnation + severity merge: the subject can always refute a
    // false accusation by re-announcing at incarnation + 1.
    changed = view_.apply(rank, MemberInfo{cur.incarnation, state});
    if (changed) {
      m_.view_changes.inc();
      rebuild_ring_locked();
    }
  }
  if (changed) gossip_now();
}

MembershipView ClusterNode::view() const {
  sync::MutexLock lock(mu_);
  return view_;
}

std::uint64_t ClusterNode::view_digest() const {
  sync::MutexLock lock(mu_);
  return view_.digest();
}

std::vector<int> ClusterNode::shard_owners(std::uint32_t shard) const {
  sync::MutexLock lock(mu_);
  return ring_.shard_owners(shard);
}

bool ClusterNode::owns_shard(std::uint32_t shard) const {
  sync::MutexLock lock(mu_);
  return ring_.is_owner(comm_.rank(), shard);
}

// --- sharded metadata ------------------------------------------------------

void ClusterNode::exchange_initial() {
  if (running_.load()) {
    throw std::logic_error("ClusterNode: exchange_initial after start()");
  }
  std::vector<int> members;
  HashRing ring;
  {
    sync::MutexLock lock(mu_);
    members = view_.ring_members();
    ring = ring_;
  }
  const bool participant =
      std::find(members.begin(), members.end(), comm_.rank()) != members.end();
  if (!participant || members.size() < 2) return;

  // Serialize each local shard once, then concatenate per destination.
  std::vector<Bytes> shard_blobs(options_.nshards);
  for (std::uint32_t s = 0; s < options_.nshards; ++s) {
    shard_blobs[s] = store_->serialize_shard(s, options_.nshards);
  }
  for (const int dest : members) {
    if (dest == comm_.rank()) continue;
    Bytes body;
    std::uint32_t count = 0;
    append_le<std::uint32_t>(body, 0);  // patched below
    for (std::uint32_t s = 0; s < options_.nshards; ++s) {
      // An empty shard serializes to just its [u32 count=0] header.
      if (shard_blobs[s].size() <= 4) continue;
      if (!ring.is_owner(dest, s)) continue;
      append_le<std::uint32_t>(body, s);
      append_le<std::uint32_t>(body, static_cast<std::uint32_t>(shard_blobs[s].size()));
      body.insert(body.end(), shard_blobs[s].begin(), shard_blobs[s].end());
      ++count;
    }
    store_le<std::uint32_t>(body.data(), count);
    m_.push_bytes.inc(body.size());
    comm_.send(dest, kTagMetaPush, std::move(body));
  }
  // Symmetric: every participant pushed to every other, so exactly
  // members-1 pushes are inbound. Blocking-recv them (no collective — a
  // world may hold spare ranks that are not members yet).
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    const mpi::Message msg = comm_.recv(mpi::kAnySource, kTagMetaPush);
    merge_push_body(as_view(msg.payload));
  }
}

std::size_t ClusterNode::merge_push_body(ByteView body) {
  if (body.size() < 4) return 0;
  const std::uint32_t count = load_le<std::uint32_t>(body.data());
  std::size_t pos = 4;
  std::size_t applied_total = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 8 > body.size()) return applied_total;  // truncated: stop
    const std::uint32_t len = load_le<std::uint32_t>(body.data() + pos + 4);
    pos += 8;
    if (pos + len > body.size()) return applied_total;
    const ByteView blob = body.subspan(pos, len);
    pos += len;
    std::size_t applied = 0;
    try {
      applied = store_->merge_shard(blob);
    } catch (const std::invalid_argument&) {
      continue;  // corrupted shard blob: anti-entropy re-pulls it intact
    }
    applied_total += applied;
    const std::uint32_t entries = len >= 4 ? load_le<std::uint32_t>(blob.data()) : 0;
    if (entries > applied) m_.merge_skipped.inc(entries - applied);
  }
  return applied_total;
}

SyncStats ClusterNode::anti_entropy() {
  SyncStats st;
  std::vector<std::uint32_t> owned;
  std::vector<int> peers;
  {
    sync::MutexLock lock(mu_);
    for (std::uint32_t s = 0; s < options_.nshards; ++s) {
      if (ring_.is_owner(comm_.rank(), s)) owned.push_back(s);
    }
    peers = view_.serving_members();
  }
  m_.sync_rounds.inc();
  if (owned.empty()) return st;
  for (const int peer : peers) {
    if (peer == comm_.rank()) continue;
    const auto digests = rpc(peer, kTagShardDigest, Bytes{});
    ++st.digest_rpcs;
    if (!digests || digests->size() < 4) continue;
    const std::uint32_t remote_n = load_le<std::uint32_t>(digests->data());
    if (remote_n != options_.nshards ||
        digests->size() < 4 + 8 * static_cast<std::size_t>(remote_n)) {
      continue;  // mismatched shard count: differently configured peer
    }
    // Delta selection: pull only owned shards whose remote digest is
    // nonzero and differs from ours — recomputed against the merges from
    // earlier peers so the same delta is never transferred twice.
    Bytes req;
    std::vector<std::uint32_t> want;
    for (const std::uint32_t s : owned) {
      const std::uint64_t theirs = load_le<std::uint64_t>(digests->data() + 4 + 8 * s);
      if (theirs == 0) continue;
      if (theirs == store_->shard_digest(s, options_.nshards)) continue;
      want.push_back(s);
    }
    if (want.empty()) continue;
    append_le<std::uint32_t>(req, static_cast<std::uint32_t>(want.size()));
    for (const std::uint32_t s : want) append_le<std::uint32_t>(req, s);
    const auto pulled = rpc(peer, kTagShardPull, req);
    if (!pulled) continue;
    st.bytes_pulled += pulled->size();
    m_.sync_bytes.inc(pulled->size());
    const std::size_t applied = merge_push_body(as_view(*pulled));
    st.entries_applied += applied;
    st.shards_pulled += want.size();
    m_.shards_pulled.inc(want.size());
  }
  st.changed = st.entries_applied > 0;
  return st;
}

RebalanceStats ClusterNode::rebalance(bool drop_unowned) {
  RebalanceStats rs;
  rs.sync = anti_entropy();
  if (!drop_unowned) return rs;
  HashRing ring;
  {
    sync::MutexLock lock(mu_);
    ring = ring_;
  }
  for (std::uint32_t s = 0; s < options_.nshards; ++s) {
    if (ring.is_owner(comm_.rank(), s)) continue;
    if (store_->shard_digest(s, options_.nshards) == 0) continue;
    // Push-then-drop: hand the shard to each current owner first, so the
    // drop can never lose the only copy of an entry (merges are
    // idempotent — owners that already converged apply nothing).
    const Bytes blob = store_->serialize_shard(s, options_.nshards);
    Bytes body;
    append_le<std::uint32_t>(body, 1);
    append_le<std::uint32_t>(body, s);
    append_le<std::uint32_t>(body, static_cast<std::uint32_t>(blob.size()));
    body.insert(body.end(), blob.begin(), blob.end());
    bool handed_off = false;
    for (const int owner : ring.shard_owners(s)) {
      if (owner == comm_.rank()) continue;
      comm_.send(owner, kTagMetaPush, body);
      m_.push_bytes.inc(body.size());
      handed_off = true;
    }
    if (!handed_off) continue;  // no live owner: keep the shard
    // Drop the whole shard, convenience copies included: any entry left
    // behind would keep this shard's digest nonzero and differing from the
    // owners' forever, so anti-entropy would re-transfer the same bytes
    // every round. The converged invariant is exact: a shard's entries
    // live on its `replication_factor` owners and nowhere else.
    store_->drop_shard(s, options_.nshards, /*keep_owner_rank=*/-1);
    ++rs.shards_dropped;
    m_.shards_dropped.inc();
  }
  return rs;
}

std::vector<std::string> ClusterNode::enumerate_paths() {
  HashRing ring;
  std::vector<int> peers;
  {
    sync::MutexLock lock(mu_);
    ring = ring_;
    peers = view_.serving_members();
  }
  std::vector<std::string> out;
  for (std::uint32_t s = 0; s < options_.nshards; ++s) {
    if (ring.primary(s) == comm_.rank()) {
      const auto mine = store_->shard_paths(s, options_.nshards);
      out.insert(out.end(), mine.begin(), mine.end());
    }
  }
  for (const int peer : peers) {
    if (peer == comm_.rank()) continue;
    const auto reply = rpc(peer, kTagListPaths, Bytes{});
    if (!reply || reply->size() < 4) continue;
    const std::uint32_t count = load_le<std::uint32_t>(reply->data());
    std::size_t pos = 4;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (pos + 2 > reply->size()) break;
      const std::uint16_t len = load_le<std::uint16_t>(reply->data() + pos);
      pos += 2;
      if (pos + len > reply->size()) break;
      out.emplace_back(reinterpret_cast<const char*>(reply->data() + pos), len);
      pos += len;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --- MetaResolver ----------------------------------------------------------

bool ClusterNode::sharded() const { return sharded_; }

std::vector<int> ClusterNode::meta_owners(const std::string& path) {
  sync::MutexLock lock(mu_);
  return ring_.owners(path, options_.nshards);
}

std::optional<VersionedStat> ClusterNode::resolve(const std::string& path) {
  const std::uint32_t shard = shard_of(path, options_.nshards);
  std::vector<int> candidates;
  MembershipView view;
  {
    sync::MutexLock lock(mu_);
    candidates = ring_.shard_owners(shard);
    // Mid-rebalance a new owner may not have pulled the shard yet; the
    // previous placement still holds it. Any serving rank last: directory
    // entries are synthesized on whichever ranks index the children.
    append_unique(candidates, prev_ring_.shard_owners(shard));
    append_unique(candidates, view_.serving_members());
    view = view_;
  }
  m_.lookups_remote.inc();
  Bytes body = to_bytes(path);
  for (const int dest : candidates) {
    if (dest == comm_.rank()) continue;
    if (view.get(dest).state == MemberState::kDead) continue;
    const auto reply = rpc(dest, kTagMetaLookup, body);
    if (!reply || reply->empty()) continue;
    const std::uint8_t status = (*reply)[0];
    if (status != kMetaOk ||
        reply->size() < 1 + 8 + 4 + format::kStatBytes) {
      continue;  // not found there (or malformed): try the next candidate
    }
    VersionedStat vs;
    vs.version = load_le<std::uint64_t>(reply->data() + 1);
    vs.writer = load_le<std::uint32_t>(reply->data() + 9);
    vs.stat = format::FileStat::deserialize(reply->data() + 13);
    return vs;
  }
  m_.lookup_misses.inc();
  return std::nullopt;
}

std::vector<posixfs::Dirent> ClusterNode::list_union(const std::string& dir) {
  std::vector<posixfs::Dirent> out = store_->list_local(dir);
  std::vector<int> peers;
  {
    sync::MutexLock lock(mu_);
    peers = view_.serving_members();
  }
  auto have = [&out](const std::string& name) {
    return std::any_of(out.begin(), out.end(),
                       [&name](const posixfs::Dirent& d) { return d.name == name; });
  };
  for (const int peer : peers) {
    if (peer == comm_.rank()) continue;
    const auto reply = rpc(peer, kTagListDir, to_bytes(dir));
    if (!reply || reply->size() < 5) continue;
    const std::uint32_t count = load_le<std::uint32_t>(reply->data() + 1);
    std::size_t pos = 5;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (pos + 3 > reply->size()) break;
      const std::uint16_t len = load_le<std::uint16_t>(reply->data() + pos);
      const bool is_dir = reply->data()[pos + 2] != 0;
      pos += 3;
      if (pos + len > reply->size()) break;
      std::string name(reinterpret_cast<const char*>(reply->data() + pos), len);
      pos += len;
      if (!have(name)) {
        out.push_back(posixfs::Dirent{
            std::move(name),
            is_dir ? format::FileType::kDirectory : format::FileType::kRegular});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const posixfs::Dirent& a, const posixfs::Dirent& b) {
              return a.name < b.name;
            });
  return out;
}

bool ClusterNode::dir_exists_union(const std::string& dir) {
  if (store_->dir_exists_local(dir)) return true;
  std::vector<int> peers;
  {
    sync::MutexLock lock(mu_);
    peers = view_.serving_members();
  }
  for (const int peer : peers) {
    if (peer == comm_.rank()) continue;
    const auto reply = rpc(peer, kTagListDir, to_bytes(dir));
    if (reply && !reply->empty() && (*reply)[0] != 0) return true;
  }
  return false;
}

// --- request handlers ------------------------------------------------------

void ClusterNode::handle_gossip(const mpi::Message& msg) {
  if (msg.payload.size() < 5) return;
  const bool want_reply = msg.payload[0] != 0;
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data() + 1);
  MembershipView incoming;
  try {
    incoming = MembershipView::deserialize(
        ByteView{msg.payload.data() + 5, msg.payload.size() - 5});
  } catch (const std::invalid_argument&) {
    return;  // corrupted gossip: a later round carries the same state
  }
  if (merge_view(incoming)) m_.gossip_merged.inc();
  if (want_reply) {
    Bytes view_blob;
    {
      sync::MutexLock lock(mu_);
      view_blob = view_.serialize();
    }
    comm_.send(msg.source, static_cast<int>(reply_tag), seal(std::move(view_blob)));
  }
}

void ClusterNode::handle_meta_lookup(const mpi::Message& msg) {
  if (msg.payload.size() < 4) return;
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data());
  const std::string path(reinterpret_cast<const char*>(msg.payload.data() + 4),
                         msg.payload.size() - 4);
  m_.meta_served.inc();
  Bytes body;
  std::optional<VersionedStat> found = store_->lookup_versioned(path);
  if (!found) {
    // Directories are synthesized, not stored: any rank indexing children
    // of `path` can answer with an unversioned directory stat.
    if (const auto any = store_->lookup_any(path)) {
      found = VersionedStat{*any, 0, 0};
    }
  }
  if (!found) {
    body.push_back(kMetaNotFound);
  } else {
    body.push_back(kMetaOk);
    append_le<std::uint64_t>(body, found->version);
    append_le<std::uint32_t>(body, found->writer);
    const std::size_t at = body.size();
    body.resize(at + format::kStatBytes);
    found->stat.serialize(body.data() + at);
  }
  comm_.send(msg.source, static_cast<int>(reply_tag), seal(std::move(body)));
}

void ClusterNode::handle_shard_digest(const mpi::Message& msg) {
  if (msg.payload.size() < 4) return;
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data());
  Bytes body;
  append_le<std::uint32_t>(body, options_.nshards);
  for (std::uint32_t s = 0; s < options_.nshards; ++s) {
    append_le<std::uint64_t>(body, store_->shard_digest(s, options_.nshards));
  }
  comm_.send(msg.source, static_cast<int>(reply_tag), seal(std::move(body)));
}

void ClusterNode::handle_shard_pull(const mpi::Message& msg) {
  if (msg.payload.size() < 8) return;
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data());
  std::uint32_t count = load_le<std::uint32_t>(msg.payload.data() + 4);
  const std::uint32_t listed =
      static_cast<std::uint32_t>((msg.payload.size() - 8) / 4);
  count = std::min(count, listed);
  Bytes body;
  std::uint32_t emitted = 0;
  append_le<std::uint32_t>(body, 0);  // patched below
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t s = load_le<std::uint32_t>(msg.payload.data() + 8 + 4 * i);
    if (s >= options_.nshards) continue;
    const Bytes blob = store_->serialize_shard(s, options_.nshards);
    append_le<std::uint32_t>(body, s);
    append_le<std::uint32_t>(body, static_cast<std::uint32_t>(blob.size()));
    body.insert(body.end(), blob.begin(), blob.end());
    ++emitted;
  }
  store_le<std::uint32_t>(body.data(), emitted);
  comm_.send(msg.source, static_cast<int>(reply_tag), seal(std::move(body)));
}

void ClusterNode::handle_list_paths(const mpi::Message& msg) {
  if (msg.payload.size() < 4) return;
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data());
  HashRing ring;
  {
    sync::MutexLock lock(mu_);
    ring = ring_;
  }
  Bytes body;
  std::uint32_t count = 0;
  append_le<std::uint32_t>(body, 0);  // patched below
  for (std::uint32_t s = 0; s < options_.nshards; ++s) {
    if (ring.primary(s) != comm_.rank()) continue;
    for (const std::string& p : store_->shard_paths(s, options_.nshards)) {
      append_le<std::uint16_t>(body, static_cast<std::uint16_t>(p.size()));
      body.insert(body.end(), p.begin(), p.end());
      ++count;
    }
  }
  store_le<std::uint32_t>(body.data(), count);
  comm_.send(msg.source, static_cast<int>(reply_tag), seal(std::move(body)));
}

void ClusterNode::handle_list_dir(const mpi::Message& msg) {
  if (msg.payload.size() < 4) return;
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data());
  const std::string dir(reinterpret_cast<const char*>(msg.payload.data() + 4),
                        msg.payload.size() - 4);
  Bytes body;
  body.push_back(store_->dir_exists_local(dir) ? 1 : 0);
  const auto entries = store_->list_local(dir);
  append_le<std::uint32_t>(body, static_cast<std::uint32_t>(entries.size()));
  for (const posixfs::Dirent& d : entries) {
    append_le<std::uint16_t>(body, static_cast<std::uint16_t>(d.name.size()));
    body.push_back(d.type == format::FileType::kDirectory ? 1 : 0);
    body.insert(body.end(), d.name.begin(), d.name.end());
  }
  comm_.send(msg.source, static_cast<int>(reply_tag), seal(std::move(body)));
}

void ClusterNode::handle_meta_push(const mpi::Message& msg) {
  merge_push_body(as_view(msg.payload));
}

// --- RPC client ------------------------------------------------------------

std::optional<Bytes> ClusterNode::rpc(int dest, int tag, const Bytes& body,
                                      const Bytes* prefix) {
  const int reply_tag =
      kClusterReplyTagBase + static_cast<int>(reply_seq_.fetch_add(1) % 1000000u);
  Bytes payload;
  if (prefix != nullptr) payload.insert(payload.end(), prefix->begin(), prefix->end());
  append_le<std::uint32_t>(payload, static_cast<std::uint32_t>(reply_tag));
  payload.insert(payload.end(), body.begin(), body.end());
  comm_.send(dest, tag, std::move(payload));
  std::optional<mpi::Message> reply;
  if (options_.pump) {
    // Deterministic wait: each pump() lets the simulation advance its
    // virtual clock and poll every live node once; the budget is the
    // manual-mode timeout.
    for (int i = 0; i < options_.pump_budget && !reply; ++i) {
      reply = comm_.try_recv(dest, reply_tag);
      if (!reply) options_.pump();
    }
    if (!reply) reply = comm_.try_recv(dest, reply_tag);
  } else {
    reply = comm_.recv_timeout(dest, reply_tag, options_.rpc_timeout_ms);
  }
  if (!reply) return std::nullopt;
  return unseal(reply->payload);
}

}  // namespace fanstore::cluster
