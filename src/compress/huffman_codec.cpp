// Standalone block-based canonical Huffman codec (order-0 entropy coding).
#include <algorithm>

#include "compress/codecs.hpp"
#include "compress/huffman.hpp"

namespace fanstore::compress {
namespace {

constexpr int kMaxCodeLen = 15;

class HuffmanCompressor final : public Compressor {
 public:
  explicit HuffmanCompressor(std::size_t block) : block_(block) {}

  std::string name() const override {
    return "huff-" + std::to_string(block_ / 1024) + "k";
  }

  Bytes compress(ByteView src) const override {
    Bytes out;
    BitWriter bw(out);
    for (std::size_t off = 0; off < src.size(); off += block_) {
      const std::size_t len = std::min(block_, src.size() - off);
      std::vector<std::uint64_t> freqs(256, 0);
      for (std::size_t i = 0; i < len; ++i) freqs[src[off + i]]++;
      const auto lengths = build_code_lengths(freqs, kMaxCodeLen);
      bw.put(static_cast<std::uint32_t>(len), 32);
      for (int s = 0; s < 256; ++s) bw.put(lengths[static_cast<std::size_t>(s)], 4);
      CanonicalEncoder enc(lengths);
      for (std::size_t i = 0; i < len; ++i) enc.encode(bw, src[off + i]);
    }
    bw.align();
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    Bytes out;
    out.reserve(original_size);
    BitReader br(src);
    while (out.size() < original_size) {
      const std::size_t len = br.get(32);
      if (len == 0 || out.size() + len > original_size) {
        throw CorruptDataError("huff: bad block length");
      }
      std::vector<std::uint8_t> lengths(256);
      for (auto& l : lengths) l = static_cast<std::uint8_t>(br.get(4));
      CanonicalDecoder dec(lengths);
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<std::uint8_t>(dec.decode(br)));
      }
    }
    return out;
  }

 private:
  std::size_t block_;
};

}  // namespace

std::unique_ptr<Compressor> make_huffman(std::size_t block) {
  return std::make_unique<HuffmanCompressor>(block);
}

}  // namespace fanstore::compress
