# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for srgan_em_training.
