#include "dlsim/apps.hpp"

namespace fanstore::dlsim {

AppCase srgan_gtx() {
  AppCase c;
  c.app = "SRGAN";
  c.cluster = "GTX";
  c.dataset = DatasetKind::kEmTif;
  c.profile = {"SRGAN/GTX", /*async=*/false, 9.689, 256, 410.0, /*io_par=*/4};
  c.selected = {"lzsse8", "lz4hc"};
  c.comparison = {"brotli", "zling", "lzma"};
  return c;
}

AppCase srgan_v100() {
  AppCase c;
  c.app = "SRGAN";
  c.cluster = "V100";
  c.dataset = DatasetKind::kEmTif;
  c.profile = {"SRGAN/V100", /*async=*/false, 2.416, 256, 410.0, /*io_par=*/4};
  c.selected = {"lz4hc"};
  c.comparison = {"brotli", "lzma"};
  return c;
}

AppCase frnn_cpu() {
  AppCase c;
  c.app = "FRNN";
  c.cluster = "CPU";
  c.dataset = DatasetKind::kTokamakNpz;
  c.profile = {"FRNN/CPU", /*async=*/true, 0.655, 512, 0.615, /*io_par=*/4};
  c.selected = {"lzf", "lzsse8"};
  c.comparison = {"brotli"};
  return c;
}

AppCase resnet50_gtx() {
  AppCase c;
  c.app = "ResNet-50";
  c.cluster = "GTX";
  c.dataset = DatasetKind::kImagenetJpg;
  // Per-node batch 64 images (4 GPUs x 16), ~0.35 s/iteration on 1080 Ti.
  c.profile = {"ResNet-50/GTX", /*async=*/true, 0.35, 64, 6.4, /*io_par=*/4};
  c.selected = {"store"};  // ImageNet does not compress (Table IV: 1.0)
  c.comparison = {};
  return c;
}

AppCase resnet50_cpu() {
  AppCase c;
  c.app = "ResNet-50";
  c.cluster = "CPU";
  c.dataset = DatasetKind::kImagenetJpg;
  // CPU training iterates slower: ~1.8 s per iteration per node.
  c.profile = {"ResNet-50/CPU", /*async=*/true, 1.8, 64, 6.4, /*io_par=*/4};
  c.selected = {"store"};
  c.comparison = {};
  return c;
}

std::vector<AppCase> all_app_cases() {
  return {srgan_gtx(), srgan_v100(), frnn_cpu(), resnet50_gtx(), resnet50_cpu()};
}

}  // namespace fanstore::dlsim
