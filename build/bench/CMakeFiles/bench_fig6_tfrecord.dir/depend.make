# Empty dependencies file for bench_fig6_tfrecord.
# This may be replaced when dependencies are built.
