// Figure 6: FanStore vs TFRecord read throughput on ImageNet, EM, and RS
// (reactor status / Tokamak) data, on two "processors".
//
// Both paths are priced on the same cluster hardware so the comparison is
// apples-to-apples:
//   FanStore  = the calibrated user-space read path (Table VI model),
//               validated against the real stack in bench_table3_posix.
//   TFRecord  = sequential device streaming of the shard + the *measured*
//               CPU cost of the record scan (length+CRC+copy, real code)
//               + the modeled framework per-record deserialization cost
//               (the TF/Python input stack is out of scope, DESIGN.md §1).
// The POWER9 column applies the paper's observed per-core slowdown factor.
#include "bench/bench_util.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/tfrecord.hpp"
#include "simnet/models.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

constexpr double kPower9Factor = 0.8;  // POWER9 per-core vs SKX (paper Fig. 6)

// Real CPU cost of scanning one record through the TFRecord reader.
double measured_scan_s_per_record(dlsim::DatasetKind kind, int nfiles,
                                  std::size_t file_bytes) {
  std::vector<Bytes> items;
  for (int i = 0; i < nfiles; ++i) {
    items.push_back(dlsim::generate_file_sized(kind, static_cast<std::uint64_t>(i),
                                               file_bytes));
  }
  const Bytes shard = dlsim::build_tfrecord_shard(items);
  {
    dlsim::TfRecordReader warm(as_view(shard));
    while (warm.next()) {
    }
  }
  WallTimer t;
  dlsim::TfRecordReader reader(as_view(shard));
  std::size_t checksum = 0;
  while (auto rec = reader.next()) checksum += (*rec)[0];
  (void)checksum;
  return t.elapsed_sec() / nfiles;
}

}  // namespace

int main() {
  bench::section("Figure 6: FanStore vs TFRecord read throughput (files/sec)");
  const auto cluster = simnet::cpu_cluster();
  const auto fan = simnet::fanstore_read_path(cluster);
  const auto device = cluster.local_storage;  // both serve from local SSD

  bench::Table table({"dataset", "cpu", "FanStore", "TFRecord", "speedup"});
  struct Case {
    const char* name;
    dlsim::DatasetKind kind;
    int nfiles;
    std::size_t bytes;
  };
  const Case cases[] = {
      {"ImageNet", dlsim::DatasetKind::kImagenetJpg, 512, 100 * 1024},
      {"EM", dlsim::DatasetKind::kEmTif, 128, 256 * 1024},
      {"RS", dlsim::DatasetKind::kTokamakNpz, 4096, 1228},
  };
  for (const auto& c : cases) {
    const double fan_t = fan.file_read_time(c.bytes);
    const double scan = measured_scan_s_per_record(c.kind, c.nfiles, c.bytes);
    const double tf_t = static_cast<double>(c.bytes) / device.bandwidth_bps + scan +
                        dlsim::kTfFrameworkPerRecordS;
    for (const auto& [cpu, factor] :
         std::vector<std::pair<const char*, double>>{{"SKX", 1.0},
                                                     {"POWER9", kPower9Factor}}) {
      table.row({c.name, cpu, bench::fmt_int(factor / fan_t),
                 bench::fmt_int(factor / tf_t), bench::fmt("%.1fx", tf_t / fan_t)});
    }
  }
  table.print();
  std::printf("\npaper claim: FanStore reads 5-10x faster than TFRecord on both\n"
              "Xeon 8160 (SKX) and POWER9 across the three datasets.\n");
  return 0;
}
