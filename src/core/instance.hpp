// Per-rank FanStore instance: backend + metadata + cache + daemon + the
// POSIX face, plus the startup flow of §IV-C1 / §V-D:
//
//   1. load partitions p with p % nranks == rank from the shared FS
//   2. optionally replicate neighbour partitions around a virtual ring
//   3. exchange metadata — allgather (full replication) or, with a sharded
//      metadata cluster configured, per-shard pushes to the shard owners
//   4. start the daemon (and the cluster's metadata service) and serve
#pragma once

#include <memory>
#include <string>

#include "cluster/node.hpp"
#include "core/daemon.hpp"
#include "core/fanstore_fs.hpp"
#include "format/partition.hpp"
#include "mpi/comm.hpp"
#include "posixfs/vfs.hpp"
#include "simnet/models.hpp"

namespace fanstore::ipc {
class Server;
struct Endpoint;
}  // namespace fanstore::ipc

namespace fanstore::core {

class Instance {
 public:
  struct Options {
    FanStoreFs::Options fs;
    /// If set, use a disk backend rooted here on `local_fs`; RAM otherwise.
    posixfs::Vfs* local_fs = nullptr;
    std::string backend_root = ".fanstore";
    /// Optional shared rank→backend table: when every Instance of a world
    /// registers here, remote fetches between them skip the daemon
    /// round-trip (FanStoreFs direct fast path). The directory must
    /// outlive every Instance registered in it.
    PeerDirectory* peers = nullptr;
    /// Optional fault injector (one per world, shared by every rank's
    /// Instance and by the mpi::World). Wires: daemon crash/hang scripts,
    /// backend read faults (the local backend is wrapped in a
    /// FaultInjectedBackend), and straggler multipliers applied to this
    /// rank's cost models at construction. Must outlive the Instance.
    fault::FaultInjector* fault = nullptr;
    /// Socket endpoints (ipc::Endpoint specs: "unix:/path",
    /// "tcp:127.0.0.1:port", or a bare UDS path) where start_daemon()
    /// additionally serves this rank's POSIX face to *outside* processes
    /// through the event-driven ipc::Server — the §V-A
    /// interceptor-to-daemon boundary. Empty: MPI front door only.
    std::vector<std::string> serve_endpoints;
    /// listen(2) backlog for those endpoints.
    int serve_backlog = 64;
    /// Sharded metadata cluster (cluster/node.hpp, DESIGN.md §13).
    struct ClusterConfig {
      /// 0 = classic full replication, no cluster node at all (the
      /// pre-cluster behavior). >= nranks = a cluster node exists but runs
      /// the byte-identical allgather compatibility mode. Anything in
      /// between shards the namespace with this many owners per shard.
      int replication_factor = 0;
      int vnodes = 32;
      std::uint32_t nshards = 64;
      int rpc_timeout_ms = 2000;
      /// Ranks bootstrapped as Joined members; empty = every world rank.
      /// A rank outside this list (member == false or just not listed) is
      /// a *spare*: its instance runs but owns nothing until join().
      std::vector<int> initial_members;
      /// Whether this rank bootstraps as a member (spares set false and
      /// call cluster().join() later).
      bool member = true;
    };
    ClusterConfig cluster;
  };
  // Observability: set `fs.metrics` to inject a registry; otherwise the
  // Instance creates one per rank and shares it across fs + cache + daemon
  // (see metrics() / metrics_dump()).

  Instance(mpi::Comm comm, Options options);
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  /// Registers one partition's files into the backend and local metadata
  /// (owner = `owner_rank`, default: this rank).
  void load_partition_blob(ByteView blob, std::uint32_t partition_id,
                           int owner_rank = -1);

  /// The paper's startup: reads this rank's share of `partition_paths`
  /// (round-robin by index) from `shared` — charging `shared_cost` per
  /// partition if cost accounting is enabled — plus every path in
  /// `broadcast_paths` (validation data read by all ranks, §V-B).
  void load_from_shared(posixfs::Vfs& shared,
                        const std::vector<std::string>& partition_paths,
                        const std::vector<std::string>& broadcast_paths = {},
                        const simnet::StorageModel* shared_cost = nullptr);

  /// Copies this rank's partitions to the next rank around the ring
  /// (`rounds` hops), so extra local-storage capacity turns remote fetches
  /// into local hits. Collective: all ranks must call with equal `rounds`.
  void replicate_ring(int rounds = 1);

  /// Collective among bootstrap members: allgather local metadata into the
  /// global view (classic / compatibility mode), or the sharded
  /// point-to-point push exchange when the cluster shards the namespace.
  void exchange_metadata();

  /// Every dataset path this rank can enumerate: the sharded listing union
  /// when the cluster shards the namespace, the local (fully replicated)
  /// namespace otherwise. The trainer's enumeration step — callers bcast
  /// one rank's result when all ranks must agree on ordering.
  std::vector<std::string> dataset_paths();

  void start_daemon();
  void stop();

  /// One-line-per-metric observability report (opens, hit rate, remote
  /// traffic, cache occupancy, backend size, daemon counters).
  std::string stats_report() const;

  /// This rank's metric registry (fs + cache + daemon counters and
  /// latency histograms).
  obs::MetricsRegistry& metrics() const { return fs_->metrics(); }

  /// Full metric snapshot, text or JSON (obs::metrics_dump).
  std::string metrics_dump(bool json = false) const;

  /// Installs (nullptr clears) a clairvoyant eviction policy on this
  /// rank's cache (forwarded to FanStoreFs::install_plan; DESIGN.md §10).
  void install_plan(const EvictionPolicy* plan) { fs_->install_plan(plan); }

  FanStoreFs& fs() { return *fs_; }
  MetadataStore& metadata() { return meta_; }
  CompressedBackend& backend() { return *backend_; }
  Daemon& daemon() { return *daemon_; }
  /// The metadata cluster node; null when cluster.replication_factor == 0.
  cluster::ClusterNode* cluster_node() { return cluster_.get(); }
  mpi::Comm comm() const { return comm_; }

  /// The socket front door, running iff start_daemon() has run and
  /// Options::serve_endpoints was non-empty. Its endpoints() resolve
  /// ephemeral TCP ports ("tcp:127.0.0.1:0") to the bound port.
  ipc::Server* ipc_server() { return server_.get(); }

 private:
  mpi::Comm comm_;
  Options options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when not injected
  MetadataStore meta_;
  std::unique_ptr<CompressedBackend> backend_;
  std::unique_ptr<cluster::ClusterNode> cluster_;  // before fs_: fs points at it
  std::unique_ptr<FanStoreFs> fs_;
  std::unique_ptr<Daemon> daemon_;
  std::unique_ptr<ipc::Server> server_;  // socket front door; may be null
  std::vector<Bytes> own_partitions_;  // retained for ring replication
};

}  // namespace fanstore::core
