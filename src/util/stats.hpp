// Small descriptive-statistics helpers for benchmarks and the profiler.
#pragma once

#include <cstddef>
#include <vector>

namespace fanstore {

/// Accumulates samples; answers mean/stddev/min/max/percentile queries.
class Stats {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;
  /// p in [0,100]; linear interpolation between closest ranks.
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to edges.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::size_t total() const { return total_; }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fanstore
