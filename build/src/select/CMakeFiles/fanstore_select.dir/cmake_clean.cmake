file(REMOVE_RECURSE
  "CMakeFiles/fanstore_select.dir/selection.cpp.o"
  "CMakeFiles/fanstore_select.dir/selection.cpp.o.d"
  "libfanstore_select.a"
  "libfanstore_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
