// FanStore daemon (§V-A, §V-D): one service thread per rank that answers
// remote compressed-file fetches and accepts forwarded write metadata.
//
// Wire protocol (all messages over mpi::Comm):
//   kTagFetch      req : [u32 reply_tag][u32 path_crc][path bytes]
//   reply_tag      rsp : [u8 status][u16 compressor][u64 raw_size]
//                        [u32 crc][data…]
//   kTagWriteMeta  one-way: [u16 path_len][path][144 B stat]
//                  (+ optional [u64 version][u32 writer] suffix when the
//                   sharded metadata cluster replicates a write)
//   kTagShutdown   one-way, self-addressed by stop()
//
// Both directions carry a CRC-32 so a corrupted message is *detected* and
// becomes a retryable failure instead of silent data corruption (request:
// crc over the path; reply: crc over the 11-byte header and the data). A
// request whose path crc fails gets a kFetchMalformed reply — the reader
// treats that as retryable, never as a definitive miss.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "core/backend.hpp"
#include "core/metadata_store.hpp"
#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "simnet/virtual_clock.hpp"
#include "util/sync.hpp"

namespace fanstore::fault {
class FaultInjector;
}

namespace fanstore::core {

// Message tags (FanStore reserves this range of the tag space).
constexpr int kTagFetch = 100;
constexpr int kTagWriteMeta = 101;
constexpr int kTagShutdown = 102;
constexpr int kTagRingCopy = 103;
constexpr int kReplyTagBase = 1000;

// Fetch reply status codes.
constexpr std::uint8_t kFetchOk = 0;
constexpr std::uint8_t kFetchNotFound = 1;
constexpr std::uint8_t kFetchMalformed = 2;

// Fixed header sizes (see the wire protocol above).
constexpr std::size_t kFetchRequestHeaderBytes = 8;   // reply_tag + path_crc
constexpr std::size_t kFetchReplyHeaderBytes = 15;    // status..crc

/// Encodes/decodes the fetch request payload.
Bytes encode_fetch_request(std::uint32_t reply_tag, std::string_view path);

/// Encodes the fetch reply payload (computes and embeds the wire crc).
Bytes encode_fetch_reply(std::uint8_t status, const Blob* blob, std::uint64_t raw_size);

/// True when `payload` is a structurally valid fetch reply whose embedded
/// crc matches its header + data bytes.
bool fetch_reply_crc_ok(ByteView payload);

/// Encodes a write-metadata forward.
Bytes encode_write_meta(std::string_view path, const format::FileStat& stat);

/// Versioned variant for sharded-metadata replication: the classic payload
/// plus a [u64 version][u32 writer] suffix, applied via deterministic
/// last-writer-wins at the receiving shard owner.
Bytes encode_write_meta_versioned(std::string_view path,
                                  const cluster::VersionedStat& entry);

class Daemon {
 public:
  /// `metrics` receives the "daemon.*" counters and the request-service
  /// latency histogram; nullptr gives the daemon a private registry.
  /// Instance injects its per-rank registry so one snapshot covers
  /// fs + cache + daemon.
  /// `injector` (may be nullptr) scripts crash / hang / restart behaviour:
  /// a "dead" daemon silently drops fetch requests, exactly what a crashed
  /// process looks like from the wire. `clock` feeds virtual-clock crash
  /// windows (nullptr disables them; count-based triggers still work).
  Daemon(mpi::Comm comm, MetadataStore* meta, CompressedBackend* backend,
         obs::MetricsRegistry* metrics = nullptr,
         fault::FaultInjector* injector = nullptr,
         simnet::VirtualClock* clock = nullptr);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start() EXCLUDES(lifecycle_mu_);

  /// Idempotent; sends a self-addressed shutdown message and joins.
  void stop() EXCLUDES(lifecycle_mu_);

  // Thin shims over the "daemon.*" registry counters.
  std::uint64_t fetches_served() const { return fetches_served_->value(); }
  std::uint64_t meta_forwards_received() const { return meta_received_->value(); }

 private:
  void serve();
  void handle_fetch(const mpi::Message& msg);
  void handle_write_meta(const mpi::Message& msg);

  mpi::Comm comm_;
  MetadataStore* meta_;  // internally synchronized
  CompressedBackend* backend_;  // internally synchronized
  fault::FaultInjector* injector_;  // internally synchronized; may be null
  simnet::VirtualClock* clock_;     // may be null
  // Serializes start()/stop() so concurrent lifecycle calls cannot race on
  // thread_ (spawn in one thread, join in another). The service thread
  // itself never takes this lock.
  sync::Mutex lifecycle_mu_{"daemon.lifecycle_mu"};
  std::thread thread_ GUARDED_BY(lifecycle_mu_);
  std::atomic<bool> running_{false};
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when not injected
  obs::Counter* fetches_served_;
  obs::Counter* meta_received_;
  obs::Counter* fetch_bytes_;
  obs::Histogram* serve_us_;
};

}  // namespace fanstore::core
