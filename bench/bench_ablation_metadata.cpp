// Ablation: metadata placement. FanStore replicates all metadata to every
// node via one allgather (then every stat() is a local hash lookup); the
// alternative is a central metadata server queried over the interconnect.
// This bench measures the real local-lookup cost, the real allgather
// exchange cost at increasing rank counts, and models the central-server
// per-op cost for comparison — including the §II-B1 enumeration storm.
#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "simnet/models.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

double measure_local_lookup_ns(std::size_t nfiles) {
  core::MetadataStore meta;
  for (std::size_t i = 0; i < nfiles; ++i) {
    format::FileStat st;
    st.size = i;
    meta.insert("dir" + std::to_string(i % 100) + "/file" + std::to_string(i), st);
  }
  WallTimer t;
  std::size_t found = 0;
  constexpr std::size_t kLookups = 200000;
  for (std::size_t i = 0; i < kLookups; ++i) {
    found += meta.lookup("dir" + std::to_string(i % 100) + "/file" +
                         std::to_string(i % nfiles))
                 .has_value();
  }
  const double ns = t.elapsed_sec() * 1e9 / kLookups;
  return found > 0 ? ns : ns;
}

double measure_allgather_s(int ranks, std::size_t files_per_rank) {
  double result = 0;
  mpi::run_world(ranks, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    std::vector<std::pair<std::string, Bytes>> mine;
    for (std::size_t i = 0; i < files_per_rank; ++i) {
      mine.emplace_back("r" + std::to_string(comm.rank()) + "/f" + std::to_string(i),
                        Bytes(16, 1));
    }
    inst.load_partition_blob(as_view(bench::make_partition(mine, "store")),
                             static_cast<std::uint32_t>(comm.rank()));
    comm.barrier();
    WallTimer t;
    inst.exchange_metadata();
    comm.barrier();
    if (comm.rank() == 0) result = t.elapsed_sec();
  });
  return result;
}

}  // namespace

int main() {
  bench::section("Ablation: metadata placement (replicated-local vs central server)");

  const double local_ns = measure_local_lookup_ns(100000);
  const simnet::NetworkModel net = simnet::omnipath();
  const simnet::MetadataServerModel mds;

  bench::Table table({"nodes", "local stat()", "central stat() (model)",
                      "central/local"});
  for (const int n : {1, 4, 16, 64, 512}) {
    // Central server: one round trip + queueing at the aggregate stat rate
    // of the steady training phase (4 I/O threads/node x ~500 stats/s).
    const double rate = n * 4 * 500.0;
    const double rho = rate * mds.service_time_s;
    const double central = 2 * net.latency_s + mds.response_time(rate);
    table.row({std::to_string(n), bench::fmt("%.0f ns", local_ns),
               rho >= 0.98 ? std::string("saturated (queue diverges)")
                           : bench::fmt("%.1f us", central * 1e6),
               rho >= 0.98 ? std::string("--")
                           : bench::fmt("%.0fx", central / (local_ns * 1e-9))});
  }
  table.print();

  bench::section("One-time cost of building the replicated view (real allgather)");
  bench::Table ag({"ranks", "files/rank", "exchange wall time"});
  for (const int n : {2, 8, 32}) {
    ag.row({std::to_string(n), "500",
            bench::fmt("%.1f ms", measure_allgather_s(n, 500) * 1000)});
  }
  ag.print();
  std::printf(
      "\nClaim: replicating metadata once (milliseconds) converts every later\n"
      "stat()/readdir() into a ~sub-microsecond local lookup, removing the\n"
      "shared metadata server from the picture entirely (§IV-C1).\n");
  return 0;
}
