// Tests for the data-preparation tool: enumeration, partitioning, manifest
// round-trips, auto compressor selection, and broadcast directories.
#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "format/partition.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "tests/test_data.hpp"

namespace fanstore::prep {
namespace {

void put(posixfs::MemVfs& fs, const std::string& path, std::size_t size,
         std::uint64_t seed) {
  posixfs::write_file(fs, path, as_view(testdata::text_like(size, seed)));
}

TEST(ListFilesTest, RecursiveSorted) {
  posixfs::MemVfs fs;
  put(fs, "ds/a/1", 10, 1);
  put(fs, "ds/a/2", 10, 2);
  put(fs, "ds/b/c/3", 10, 3);
  put(fs, "other/x", 10, 4);
  const auto files = list_files_recursive(fs, "ds");
  EXPECT_EQ(files, (std::vector<std::string>{"ds/a/1", "ds/a/2", "ds/b/c/3"}));
  EXPECT_TRUE(list_files_recursive(fs, "ghost").empty());
}

TEST(PrepTest, PartitionsRoundRobinAndManifest) {
  posixfs::MemVfs src, dst;
  for (int i = 0; i < 10; ++i) put(src, "ds/f" + std::to_string(i), 2000, i);
  PrepOptions opt;
  opt.num_partitions = 3;
  opt.compressor = "lz4hc";
  opt.threads = 2;
  const Manifest m = prepare_dataset(src, "ds", dst, "out", opt);
  ASSERT_EQ(m.partitions.size(), 3u);
  // 10 files round-robin over 3 partitions: 4 + 3 + 3.
  EXPECT_EQ(m.partitions[0].num_files, 4u);
  EXPECT_EQ(m.partitions[1].num_files, 3u);
  EXPECT_EQ(m.partitions[2].num_files, 3u);
  EXPECT_GT(m.ratio(), 1.5);  // text compresses

  // Manifest on disk parses identically.
  const Manifest loaded = load_manifest(dst, "out");
  EXPECT_EQ(loaded.serialize(), m.serialize());

  // Partition blobs decode back to the originals.
  std::size_t total = 0;
  for (const auto& p : m.partitions) {
    const auto blob = dst.slurp(p.path);
    ASSERT_TRUE(blob.has_value()) << p.path;
    for (const auto& view : format::scan_partition(as_view(*blob))) {
      const auto raw = format::extract_record(view);
      EXPECT_EQ(*posixfs::read_file(src, std::string(view.path)), raw);
      ++total;
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(PrepTest, BroadcastDirsSeparated) {
  posixfs::MemVfs src, dst;
  for (int i = 0; i < 6; ++i) put(src, "ds/train/f" + std::to_string(i), 500, i);
  for (int i = 0; i < 2; ++i) put(src, "ds/val/v" + std::to_string(i), 500, 100 + i);
  PrepOptions opt;
  opt.num_partitions = 2;
  opt.broadcast_dirs = {"val"};
  const Manifest m = prepare_dataset(src, "ds", dst, "out", opt);
  ASSERT_EQ(m.broadcasts.size(), 1u);
  EXPECT_EQ(m.broadcasts[0].num_files, 2u);
  std::size_t scattered = 0;
  for (const auto& p : m.partitions) scattered += p.num_files;
  EXPECT_EQ(scattered, 6u);  // validation files not double-packed
}

TEST(PrepTest, AutoCompressorPicksSmallest) {
  posixfs::MemVfs src, dst;
  // Text (lzma-friendly) and random (store-friendly) files.
  posixfs::write_file(src, "ds/text", as_view(testdata::text_like(20000, 1)));
  posixfs::write_file(src, "ds/rand", as_view(testdata::random_bytes(20000, 2)));
  PrepOptions opt;
  opt.num_partitions = 1;
  opt.compressor = "auto-store,lzma";
  const Manifest m = prepare_dataset(src, "ds", dst, "out", opt);
  const auto blob = dst.slurp(m.partitions[0].path);
  const auto views = format::scan_partition(as_view(*blob));
  ASSERT_EQ(views.size(), 2u);
  const auto& reg = compress::Registry::instance();
  for (const auto& v : views) {
    if (v.path == "ds/rand") {
      EXPECT_EQ(v.compressor, reg.id_by_name("store")) << "random data: store wins";
    } else {
      EXPECT_EQ(v.compressor, reg.id_by_name("lzma")) << "text: lzma wins";
    }
  }
}

TEST(PrepTest, ErrorsAreReported) {
  posixfs::MemVfs src, dst;
  PrepOptions opt;
  EXPECT_THROW(prepare_dataset(src, "empty", dst, "out", opt), std::runtime_error);
  put(src, "ds/f", 100, 1);
  opt.compressor = "no-such-codec";
  EXPECT_THROW(prepare_dataset(src, "ds", dst, "out", opt), std::invalid_argument);
  opt.compressor = "lz4";
  opt.num_partitions = 0;
  EXPECT_THROW(prepare_dataset(src, "ds", dst, "out", opt), std::invalid_argument);
}

TEST(ManifestTest, ParseRejectsGarbage) {
  EXPECT_THROW(Manifest::parse("not a manifest"), std::runtime_error);
  EXPECT_THROW(Manifest::parse("fanstore-manifest v1\nbogus line here x y"),
               std::runtime_error);
}

TEST(PrepTest, DeterministicOutput) {
  posixfs::MemVfs src, dst1, dst2;
  for (int i = 0; i < 5; ++i) put(src, "ds/f" + std::to_string(i), 3000, i);
  PrepOptions opt;
  opt.num_partitions = 2;
  opt.threads = 4;
  prepare_dataset(src, "ds", dst1, "o", opt);
  prepare_dataset(src, "ds", dst2, "o", opt);
  for (const auto& path : dst1.list_files()) {
    EXPECT_EQ(dst1.slurp(path), dst2.slurp(path)) << path;
  }
}


TEST(PrepTest, BySizePlacementBalancesBytes) {
  // Sizes alternate large/small by sorted file name, so round-robin over 2
  // partitions puts every large file in one partition; greedy LPT balances.
  posixfs::MemVfs src, dst_rr, dst_lpt;
  for (int i = 0; i < 8; ++i) {
    const std::size_t size = i % 2 == 0 ? 30000 : 1000;
    posixfs::write_file(src, "ds/f" + std::to_string(i),
                        as_view(testdata::random_bytes(size, 10 + i)));
  }
  PrepOptions opt;
  opt.num_partitions = 2;
  opt.compressor = "store";
  auto imbalance = [](const Manifest& m) {
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const auto& p : m.partitions) {
      lo = std::min(lo, p.packed_bytes);
      hi = std::max(hi, p.packed_bytes);
    }
    return static_cast<double>(hi) / static_cast<double>(lo);
  };
  const Manifest rr = prepare_dataset(src, "ds", dst_rr, "o", opt);
  opt.placement = Placement::kBySize;
  const Manifest lpt = prepare_dataset(src, "ds", dst_lpt, "o", opt);
  EXPECT_GT(imbalance(rr), 5.0);    // all big files on one side
  EXPECT_LT(imbalance(lpt), 1.15);  // near-perfect balance
  // Content is identical either way.
  std::size_t total = 0;
  for (const auto& p : lpt.partitions) total += p.num_files;
  EXPECT_EQ(total, 8u);
}

}  // namespace
}  // namespace fanstore::prep
