file(REMOVE_RECURSE
  "CMakeFiles/intercept_probe.dir/intercept_probe.cpp.o"
  "CMakeFiles/intercept_probe.dir/intercept_probe.cpp.o.d"
  "intercept_probe"
  "intercept_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intercept_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
