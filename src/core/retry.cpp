#include "core/retry.hpp"

#include "util/rng.hpp"

namespace fanstore::core {

void RetryPolicy::validate() const {
  if (max_attempts < 1) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
  if (base_delay_ms < 0 || max_delay_ms < 0) {
    throw std::invalid_argument("RetryPolicy: delays must be non-negative");
  }
  if (max_delay_ms < base_delay_ms) {
    throw std::invalid_argument("RetryPolicy: max_delay_ms < base_delay_ms");
  }
  if (jitter < 0.0 || jitter > 1.0) {
    throw std::invalid_argument("RetryPolicy: jitter must be in [0, 1]");
  }
}

int RetryPolicy::delay_ms(int attempt, std::uint64_t salt) const {
  if (base_delay_ms <= 0) return 0;
  if (attempt < 1) attempt = 1;
  // Exponential growth, capped before jitter so the cap is a hard bound.
  std::int64_t delay = base_delay_ms;
  for (int i = 1; i < attempt && delay < max_delay_ms; ++i) delay *= 2;
  if (delay > max_delay_ms) delay = max_delay_ms;
  if (jitter <= 0.0) return static_cast<int>(delay);
  std::uint64_t s = seed ^ (salt * 0x9E3779B97F4A7C15ull) ^
                    (static_cast<std::uint64_t>(attempt) << 32);
  const double u = static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
  const double lo = static_cast<double>(delay) * (1.0 - jitter);
  return static_cast<int>(lo + (static_cast<double>(delay) - lo) * u);
}

}  // namespace fanstore::core
