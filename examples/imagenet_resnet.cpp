// ResNet-50/ImageNet with asynchronous I/O (prefetch, Fig. 5b) across a
// multi-node FanStore deployment — the §VII-F scalability workload.
//
// Exercises: broadcast (validation) partitions every node holds, remote
// fetches for scattered training data, checkpoint writes each epoch, and
// the metadata-storm-free enumeration step.
//
// Run: ./imagenet_resnet [--nodes=8] [--epochs=2] [--batch=16]
//                         [--trace=trace.json] [--metrics]
//
// --trace=PATH records every fs/cache/daemon/trainer span into a Chrome
// trace (open chrome://tracing or https://ui.perfetto.dev and load the
// file); --metrics dumps rank 0's metric registry after training.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "posixfs/interceptor.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "simnet/models.hpp"
#include "util/cli.hpp"

using namespace fanstore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 8));
  const int epochs = static_cast<int>(args.get_int("epochs", 2));
  const std::size_t batch = static_cast<std::size_t>(args.get_int("batch", 16));
  const std::string trace_path = args.get("trace", "");
  const bool dump_metrics = args.get_bool("metrics", false);
  if (!trace_path.empty()) obs::TraceRecorder::global().enable(true);

  const auto app = dlsim::resnet50_gtx();
  const auto cluster = simnet::gtx_cluster();
  const auto spec = dlsim::dataset_spec(app.dataset);
  const std::size_t file_bytes = 32 * 1024;  // scaled-down JPEGs
  const double t_iter =
      app.profile.t_iter_s * static_cast<double>(file_bytes) / spec.paper_avg_file_bytes;

  // Dataset: train/ scattered across nodes, val/ broadcast to every node.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs source;
    const std::size_t train_files = batch * 2 * static_cast<std::size_t>(nodes);
    for (std::size_t i = 0; i < train_files; ++i) {
      posixfs::write_file(
          source, "imagenet/train/c" + std::to_string(i % 10) + "/img" +
                      std::to_string(i) + ".jpg",
          as_view(dlsim::generate_file_sized(app.dataset, i, file_bytes)));
    }
    for (std::size_t i = 0; i < 8; ++i) {
      posixfs::write_file(source, "imagenet/val/img" + std::to_string(i) + ".jpg",
                          as_view(dlsim::generate_file_sized(app.dataset, 1000 + i,
                                                             file_bytes)));
    }
    prep::PrepOptions opt;
    opt.num_partitions = nodes;
    opt.compressor = "store";  // Table IV: JPEGs do not compress
    opt.broadcast_dirs = {"val"};
    prep::prepare_dataset(source, "imagenet", shared, "packed", opt);
  }

  std::vector<double> tput(static_cast<std::size_t>(nodes), 0.0);
  std::string metrics_text;  // rank 0's registry dump, printed after the world
  mpi::run_world(nodes, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(cluster);
    opt.fs.cost.network = cluster.network;
    opt.fs.clock = &clock;
    core::Instance inst(comm, opt);
    const auto manifest = prep::load_manifest(shared, "packed");
    inst.load_from_shared(shared, manifest.partition_paths(),
                          manifest.broadcast_paths());
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    posixfs::Interceptor posix;
    posix.mount("fs", &inst.fs());

    // Enumeration (the step that melts shared-FS metadata servers) is
    // local: list every training file through readdir()/stat().
    const auto files = prep::list_files_recursive(posix, "fs/imagenet/train");
    if (comm.rank() == 0) {
      std::printf("enumerated %zu training files locally\n", files.size());
    }

    dlsim::TrainerOptions topt;
    topt.t_iter_s = t_iter;
    topt.batch_per_rank = batch;
    topt.epochs = epochs;
    topt.async_io = true;  // prefetch pipeline
    topt.io_parallelism = 4;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.metrics = &inst.metrics();
    const auto result = dlsim::run_training(posix, files, topt);
    tput[static_cast<std::size_t>(comm.rank())] = result.items_per_s;

    // "Validation" after the last epoch: every node reads the broadcast
    // set locally (zero interconnect traffic for it).
    const auto before = inst.fs().stats().remote_fetches;
    for (int i = 0; i < 8; ++i) {
      (void)posixfs::read_file(posix, "fs/imagenet/val/img" + std::to_string(i) + ".jpg");
    }
    const auto after = inst.fs().stats().remote_fetches;
    if (comm.rank() == 0 && after != before) {
      std::printf("WARNING: broadcast partition read went remote\n");
    }

    // Per-epoch checkpoint through the same POSIX surface.
    if (comm.rank() == 0) {
      for (int e = 1; e <= epochs; ++e) {
        posixfs::write_file(posix, "fs/ckpt/model_epoch_" + std::to_string(e) + ".h5",
                            as_view(Bytes(8192, static_cast<std::uint8_t>(e))));
      }
      std::printf("wrote %d checkpoints (write-once, metadata forwarded)\n", epochs);
    }
    comm.barrier();
    if (comm.rank() == 0) metrics_text = inst.metrics_dump();
    inst.stop();
  });

  if (!trace_path.empty()) {
    obs::TraceRecorder::global().write_chrome_json(trace_path);
    std::printf("wrote %zu trace events to %s (load in chrome://tracing)\n",
                obs::TraceRecorder::global().event_count(), trace_path.c_str());
  }
  if (dump_metrics) {
    std::printf("\n--- rank 0 metrics ---\n%s", metrics_text.c_str());
  }

  double total = 0;
  for (double t : tput) total += t;
  std::printf("\n%d nodes x %d procs: %.1f images/s aggregate (%.1f per node)\n",
              nodes, cluster.procs_per_node, total, total / nodes);
  std::printf("async prefetch hid the I/O behind %.0f ms compute iterations\n",
              t_iter * 1000);
  return 0;
}
