// Shared LZ77 machinery: hashing and a hash-chain match finder.
//
// Every LZ-family codec (lzf, lz4, lz4hc, lzss, lzsse8, deflate-lite,
// brotli-lite, lzma-lite) parses with one of these finders; codecs differ in
// how they *encode* the (literal, match) stream.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/bytes.hpp"

namespace fanstore::compress {

inline std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Fibonacci hash of the 4 bytes at `p`, reduced to `bits` bits.
inline std::uint32_t hash4(const std::uint8_t* p, int bits) {
  return (read_u32(p) * 2654435761u) >> (32 - bits);
}

/// Hash of the 3 bytes at `p` (for min-match-3 codecs), reduced to `bits`.
inline std::uint32_t hash3(const std::uint8_t* p, int bits) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - bits);
}

/// Longest common prefix of [a, limit) and [b, ...); b < a assumed valid.
inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                const std::uint8_t* limit) {
  const std::uint8_t* start = a;
  while (a + 8 <= limit) {
    std::uint64_t va, vb;
    std::memcpy(&va, a, 8);
    std::memcpy(&vb, b, 8);
    const std::uint64_t diff = va ^ vb;
    if (diff != 0) {
      return static_cast<std::size_t>(a - start) +
             static_cast<std::size_t>(std::countr_zero(diff) >> 3);
    }
    a += 8;
    b += 8;
  }
  while (a < limit && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(a - start);
}

/// Slack every decoder's output buffer must carry past original_size so
/// copy_match() may over-write in wide strides.
inline constexpr std::size_t kCopySlack = 16;

/// Expands an LZ match: copies `length` bytes from `dst - distance` to
/// `dst`. The ranges may overlap (distance < length replicates a run).
/// Wide strides are overlap-safe because a 16 (resp. 8) byte block read at
/// dst - distance + k never reaches dst + k when distance >= 16 (resp. 8);
/// shorter distances take the scalar path. The caller must guarantee
/// kCopySlack writable bytes past dst + length (decoders over-allocate and
/// truncate at the end).
inline void copy_match(std::uint8_t* dst, std::size_t distance,
                       std::size_t length) {
  const std::uint8_t* src = dst - distance;
  if (distance >= 16) {
    for (std::size_t k = 0; k < length; k += 16) {
      std::memcpy(dst + k, src + k, 16);
    }
  } else if (distance >= 8) {
    for (std::size_t k = 0; k < length; k += 8) {
      std::memcpy(dst + k, src + k, 8);
    }
  } else {
    for (std::size_t k = 0; k < length; ++k) dst[k] = src[k];
  }
}

/// A match candidate: `length` bytes at distance `distance` behind `pos`.
struct Match {
  std::size_t length = 0;
  std::size_t distance = 0;
};

/// Hash-chain match finder with bounded search depth. Insertion order gives
/// nearest-first traversal, so the first acceptable match is the closest.
class HashChainFinder {
 public:
  /// `hash_bits` sizes the head table; `window` bounds match distance;
  /// `depth` bounds candidates examined per query; `min_match` in {3, 4}.
  HashChainFinder(ByteView src, int hash_bits, std::size_t window,
                  std::size_t depth, std::size_t min_match)
      : src_(src.data()),
        size_(src.size()),
        hash_bits_(hash_bits),
        window_(window),
        depth_(depth),
        min_match_(min_match),
        head_(std::size_t{1} << hash_bits, kNone),
        prev_(src.size(), kNone) {}

  /// Finds the longest match for position `pos`, capped at `max_len`.
  /// Does not insert `pos`; call insert(pos) afterwards (or insert_run).
  Match find(std::size_t pos, std::size_t max_len) const {
    Match best;
    if (pos + min_match_ > size_) return best;
    const std::uint8_t* limit = src_ + std::min(size_, pos + max_len);
    std::uint32_t h = hash_at(pos);
    std::uint32_t cand = head_[h];
    std::size_t tries = depth_;
    while (cand != kNone && tries-- > 0) {
      const std::size_t cpos = cand;
      if (cpos >= pos) {  // self or future position (double insertion guard)
        cand = prev_[cpos];
        continue;
      }
      if (pos - cpos > window_) break;  // chain is position-ordered
      const std::size_t len = match_length(src_ + pos, src_ + cpos, limit);
      if (len > best.length) {
        best.length = len;
        best.distance = pos - cpos;
        if (src_ + pos + len == limit) break;  // cannot improve
      }
      cand = prev_[cpos];
    }
    if (best.length < min_match_) best = Match{};
    return best;
  }

  /// Registers position `pos` in the chains. Idempotent for the most
  /// recently inserted position (re-insertion would create a self-loop).
  void insert(std::size_t pos) {
    if (pos + min_match_ > size_) return;
    const std::uint32_t h = hash_at(pos);
    if (head_[h] == pos) return;
    prev_[pos] = head_[h];
    head_[h] = static_cast<std::uint32_t>(pos);
  }

  /// Registers every position in [begin, end).
  void insert_run(std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) insert(i);
  }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  std::uint32_t hash_at(std::size_t pos) const {
    return min_match_ >= 4 ? hash4(src_ + pos, hash_bits_)
                           : hash3(src_ + pos, hash_bits_);
  }

  const std::uint8_t* src_;
  std::size_t size_;
  int hash_bits_;
  std::size_t window_;
  std::size_t depth_;
  std::size_t min_match_;
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> prev_;
};

}  // namespace fanstore::compress
