// Deterministic fault-injection plans (DESIGN.md §8 "Fault model").
//
// A FaultPlan is a declarative script of adversity: message-level faults at
// the mpi mailbox boundary (drop / delay / duplicate / corrupt), daemon
// crash & hang windows (virtual-clock instants or served-request counts),
// per-rank straggler multipliers for the simnet cost models, and injected
// backend read errors. Plans are plain data — they carry no state; the
// FaultInjector (injector.hpp) executes them.
//
// Determinism contract: every probabilistic decision in a plan is derived
// from (plan seed, rule index, channel, per-channel sequence number), never
// from wall-clock time or a shared global counter. Two runs with the same
// seed and the same per-channel message order produce the identical fault
// schedule; tests replay any failure from its printed FANSTORE_FAULT_SEED.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fanstore::fault {

/// Wildcard for rule filters.
constexpr int kAnyRank = -1;
constexpr int kAnyTag = -1;

/// Fetch-protocol tag space, mirroring core/daemon.hpp (kTagFetch and
/// kReplyTagBase; the fault layer sits below core so the values are
/// duplicated here — keep in sync). The link builders below scope their
/// rules to these tags: the fetch path is hardened with retries and CRCs,
/// while setup traffic (ring replication, metadata forwards) has blocking
/// receives and must never be faulted, or a world could deadlock during
/// construction.
constexpr int kFetchProtocolTag = 100;
constexpr int kFetchReplyTagMin = 1000;

/// Metadata-cluster tag space, mirroring cluster/node.hpp (kTagGossip ..
/// kTagListDir and kClusterReplyTagBase — keep in sync). The cluster's
/// request/reply traffic is retried, idempotent, and crc-sealed, so churn
/// plans may drop/delay/duplicate/corrupt it; the one-way shard hand-off
/// (kTagMetaPush, 117) and the self-addressed stop token (116) are
/// excluded — exchange_initial() receives pushes with a blocking recv and
/// rebalance relies on a push landing before its shard is dropped.
constexpr int kClusterTagMin = 110;
constexpr int kClusterTagMax = 115;
constexpr int kClusterReplyTagMin = 2000000;

/// One scripted behaviour for point-to-point messages crossing the mailbox
/// boundary. All matching rules apply independently (their draws use
/// distinct streams). Self-addressed messages (src == dest, e.g. the
/// daemon's own shutdown token) are never faulted.
struct MessageRule {
  // --- filter ---
  int src = kAnyRank;
  int dest = kAnyRank;
  int tag = kAnyTag;  // exact tag; kAnyTag defers to [tag_min, tag_max]
  // Inclusive tag range, consulted only when `tag == kAnyTag` and
  // `tag_max >= tag_min >= 0` (e.g. the fetch-reply tag space >= 1000).
  int tag_min = -1;
  int tag_max = -1;

  // --- actions (independent deterministic draws per matching message) ---
  double drop_prob = 0;     // message vanishes
  double dup_prob = 0;      // message is delivered twice
  double corrupt_prob = 0;  // payload bytes are flipped in place
  double delay_prob = 0;    // delivery is deferred by delay_ms
  int delay_ms = 0;

  // --- scoping ---
  /// Let the first N matching messages of each channel pass unfaulted
  /// ("crash after the warm-up fetches").
  std::uint64_t skip_first = 0;
  /// Global budget: once this many faults were injected by this rule, it
  /// goes inert (max by default).
  std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();

  bool matches(int s, int d, int t) const;
};

/// Daemon liveness script for one rank: a crash window on the rank's
/// virtual clock, a crash after N served fetch requests, or a per-request
/// hang. A "dead" daemon silently drops fetch requests (exactly what a
/// crashed process looks like from the wire).
struct DaemonRule {
  int rank = kAnyRank;
  /// Virtual-clock window [crash_at_vsec, restart_at_vsec) during which the
  /// daemon is dead; restart_at_vsec < 0 means it never comes back.
  double crash_at_vsec = -1;
  double restart_at_vsec = -1;
  /// Alternative trigger: dead once the rank has seen this many fetch
  /// requests (0 = disabled).
  std::uint64_t crash_after_fetches = 0;
  /// Respond to every request this late instead of dying (straggler
  /// daemon); applied while alive.
  int hang_ms = 0;
};

/// Per-rank slow-node multiplier applied to the simnet cost models at
/// Instance construction (NetworkModel::scaled / StorageModel::scaled).
struct StragglerRule {
  int rank = kAnyRank;
  double network_mult = 1.0;
  double storage_mult = 1.0;
};

/// Injected node-local backend read errors (a flaky SSD / torn object):
/// get() returns nothing (fail) or a corrupted copy.
struct BackendRule {
  int rank = kAnyRank;
  std::string path_prefix;  // empty matches every path
  double fail_prob = 0;
  double corrupt_prob = 0;
  std::uint64_t skip_first = 0;
  std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();

  bool matches(int rank_in, std::string_view path) const;
};

struct FaultPlan {
  std::uint64_t seed = 0x5EEDFA17ull;
  std::vector<MessageRule> messages;
  std::vector<DaemonRule> daemons;
  std::vector<StragglerRule> stragglers;
  std::vector<BackendRule> backends;

  bool empty() const {
    return messages.empty() && daemons.empty() && stragglers.empty() &&
           backends.empty();
  }

  // --- fluent builders (return *this for chaining) ---
  // The three link builders scope their rules to the fetch protocol
  // (requests + replies, see kFetchProtocolTag/kFetchReplyTagMin above);
  // for arbitrary-tag faults push a MessageRule directly.
  FaultPlan& with_seed(std::uint64_t s);
  /// Lossy fabric: drop fetch-protocol messages with `prob`.
  FaultPlan& lossy_links(double prob);
  /// Defer delivery of fetch-protocol messages by `ms` with probability
  /// `prob`.
  FaultPlan& delayed_links(double prob, int ms);
  /// Duplicate fetch-protocol messages with probability `prob`.
  FaultPlan& duplicating_links(double prob);
  /// Corrupt payloads originating at `src` within the inclusive tag range.
  FaultPlan& corrupt_from(int src, int tag_min, int tag_max, double prob);
  FaultPlan& kill_daemon_after(int rank, std::uint64_t fetches);
  FaultPlan& crash_window(int rank, double at_vsec, double until_vsec);
  FaultPlan& straggler(int rank, double network_mult, double storage_mult);
  FaultPlan& flaky_backend(int rank, double fail_prob, double corrupt_prob);

  /// A survivable randomized chaos mix for soak testing, fully determined
  /// by (seed, nranks): a lossy + delaying + duplicating + lightly
  /// corrupting fabric, one straggler rank, and (for nranks >= 3) one
  /// daemon that dies after a few fetches. Designed so that single-replica
  /// ring placement plus failover_hops >= 2 and a couple of retries always
  /// reach the data.
  static FaultPlan chaos_from_seed(std::uint64_t seed, int nranks);

  /// A survivable randomized adversary for the membership-churn suite,
  /// fully determined by (seed, nranks): delayed + duplicated cluster
  /// requests and replies, outright-dropped gossip (the view is a CRDT —
  /// later rounds re-carry the same state), and lightly corrupted cluster
  /// replies (rejected by the rpc seal, surfacing as timeouts). Data-path
  /// and setup traffic is untouched.
  static FaultPlan membership_churn_from_seed(std::uint64_t seed, int nranks);
};

/// Reads FANSTORE_FAULT_SEED from the environment; `fallback` when unset
/// or unparsable. Chaos tests derive their plans from this so any failure
/// is replayable by exporting the seed the test printed.
std::uint64_t fault_seed_from_env(std::uint64_t fallback);

}  // namespace fanstore::fault
