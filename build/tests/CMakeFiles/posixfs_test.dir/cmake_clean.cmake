file(REMOVE_RECURSE
  "CMakeFiles/posixfs_test.dir/posixfs_test.cpp.o"
  "CMakeFiles/posixfs_test.dir/posixfs_test.cpp.o.d"
  "posixfs_test"
  "posixfs_test.pdb"
  "posixfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posixfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
