file(REMOVE_RECURSE
  "CMakeFiles/fanstore-prep.dir/prep_main.cpp.o"
  "CMakeFiles/fanstore-prep.dir/prep_main.cpp.o.d"
  "fanstore-prep"
  "fanstore-prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore-prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
