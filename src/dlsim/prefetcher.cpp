#include "dlsim/prefetcher.hpp"

namespace fanstore::dlsim {

Prefetcher::Prefetcher(posixfs::Vfs& fs, std::size_t threads)
    : fs_(fs), pool_(threads) {}

void Prefetcher::prefetch(const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    pool_.submit([this, path] {
      // open() pulls the file through fetch + decompress into the cache;
      // close() drops the pin but leaves the plain data cached.
      const int fd = fs_.open(path, posixfs::OpenMode::kRead);
      if (fd < 0) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      fs_.close(fd);
      warmed_.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

void Prefetcher::wait() { pool_.wait_idle(); }

}  // namespace fanstore::dlsim
