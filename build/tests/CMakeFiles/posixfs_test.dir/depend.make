# Empty dependencies file for posixfs_test.
# This may be replaced when dependencies are built.
