// Tests for the user-space POSIX layer: path normalization, MemVfs
// semantics, LocalVfs on the real filesystem, and Interceptor routing.
#include <gtest/gtest.h>

#include <filesystem>

#include "posixfs/interceptor.hpp"
#include "posixfs/local_vfs.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/test_data.hpp"

namespace fanstore::posixfs {
namespace {

TEST(NormalizePathTest, CollapsesAndStrips) {
  EXPECT_EQ(normalize_path("/a//b/./c/"), "a/b/c");
  EXPECT_EQ(normalize_path("a/b"), "a/b");
  EXPECT_EQ(normalize_path("////"), "");
  EXPECT_EQ(normalize_path("."), "");
  EXPECT_EQ(normalize_path(""), "");
}

TEST(NormalizePathTest, RejectsDotDot) {
  EXPECT_EQ(normalize_path("a/../b"), "");
  EXPECT_EQ(normalize_path(".."), "");
}

class MemVfsTest : public ::testing::Test {
 protected:
  MemVfs fs_;
};

TEST_F(MemVfsTest, WriteReadRoundTrip) {
  const Bytes data = testdata::text_like(5000, 1);
  ASSERT_EQ(write_file(fs_, "dir/sub/file.bin", as_view(data)), 0);
  const auto back = read_file(fs_, "dir/sub/file.bin");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST_F(MemVfsTest, OpenMissingFileFails) {
  EXPECT_EQ(fs_.open("nope", OpenMode::kRead), -ENOENT);
}

TEST_F(MemVfsTest, ReadOnWriteFdFails) {
  const int fd = fs_.open("f", OpenMode::kWrite);
  ASSERT_GE(fd, 0);
  Bytes buf(8);
  EXPECT_EQ(fs_.read(fd, MutByteView{buf.data(), buf.size()}), -EBADF);
  fs_.close(fd);
}

TEST_F(MemVfsTest, WritesVisibleOnlyAfterClose) {
  const int fd = fs_.open("f", OpenMode::kWrite);
  const Bytes data{1, 2, 3};
  fs_.write(fd, as_view(data));
  EXPECT_EQ(fs_.open("f", OpenMode::kRead), -ENOENT);  // not yet published
  fs_.close(fd);
  EXPECT_EQ(*read_file(fs_, "f"), data);
}

TEST_F(MemVfsTest, LseekWhenceVariants) {
  const Bytes data{10, 11, 12, 13, 14, 15, 16, 17};
  write_file(fs_, "f", as_view(data));
  const int fd = fs_.open("f", OpenMode::kRead);
  EXPECT_EQ(fs_.lseek(fd, 3, Whence::kSet), 3);
  Bytes buf(1);
  fs_.read(fd, MutByteView{buf.data(), 1});
  EXPECT_EQ(buf[0], 13);
  EXPECT_EQ(fs_.lseek(fd, 2, Whence::kCur), 6);
  EXPECT_EQ(fs_.lseek(fd, -1, Whence::kEnd), 7);
  EXPECT_EQ(fs_.lseek(fd, -100, Whence::kSet), -EINVAL);
  fs_.close(fd);
}

TEST_F(MemVfsTest, StatFileAndDirectory) {
  write_file(fs_, "a/b/c.txt", as_view(testdata::random_bytes(77, 1)));
  format::FileStat st;
  ASSERT_EQ(fs_.stat("a/b/c.txt", &st), 0);
  EXPECT_EQ(st.size, 77u);
  EXPECT_EQ(st.type, format::FileType::kRegular);
  ASSERT_EQ(fs_.stat("a/b", &st), 0);  // implicit directory
  EXPECT_EQ(st.type, format::FileType::kDirectory);
  EXPECT_EQ(fs_.stat("a/zzz", &st), -ENOENT);
}

TEST_F(MemVfsTest, ReaddirListsImmediateChildren) {
  write_file(fs_, "root/f1", as_view(testdata::random_bytes(1, 1)));
  write_file(fs_, "root/f2", as_view(testdata::random_bytes(1, 2)));
  write_file(fs_, "root/sub/deep", as_view(testdata::random_bytes(1, 3)));
  fs_.mkdir("root/empty");
  const int h = fs_.opendir("root");
  ASSERT_GE(h, 0);
  std::vector<std::string> names;
  std::vector<bool> is_dir;
  while (auto e = fs_.readdir(h)) {
    names.push_back(e->name);
    is_dir.push_back(e->type == format::FileType::kDirectory);
  }
  fs_.closedir(h);
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names, (std::vector<std::string>{"empty", "f1", "f2", "sub"}));
  EXPECT_EQ(is_dir, (std::vector<bool>{true, false, false, true}));
}

TEST_F(MemVfsTest, OpendirMissingFails) {
  EXPECT_EQ(fs_.opendir("ghost"), -ENOENT);
  EXPECT_EQ(fs_.closedir(99), -EBADF);
}

TEST_F(MemVfsTest, SnapshotIsolation) {
  // A reader opened before an overwrite keeps seeing the old bytes.
  write_file(fs_, "f", as_view(Bytes{1}));
  const int fd = fs_.open("f", OpenMode::kRead);
  write_file(fs_, "f", as_view(Bytes{2}));
  Bytes buf(1);
  fs_.read(fd, MutByteView{buf.data(), 1});
  EXPECT_EQ(buf[0], 1);
  fs_.close(fd);
  EXPECT_EQ((*read_file(fs_, "f"))[0], 2);
}

TEST(LocalVfsTest, RealFilesystemRoundTrip) {
  const auto root = std::filesystem::temp_directory_path() / "fanstore_localvfs_test";
  std::filesystem::remove_all(root);
  LocalVfs fs(root);
  const Bytes data = testdata::runs_and_noise(10000, 5);
  ASSERT_EQ(write_file(fs, "x/y/file.bin", as_view(data)), 0);
  EXPECT_EQ(*read_file(fs, "x/y/file.bin"), data);

  format::FileStat st;
  ASSERT_EQ(fs.stat("x/y/file.bin", &st), 0);
  EXPECT_EQ(st.size, data.size());

  const int h = fs.opendir("x");
  ASSERT_GE(h, 0);
  auto e = fs.readdir(h);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->name, "y");
  EXPECT_EQ(e->type, format::FileType::kDirectory);
  fs.closedir(h);
  std::filesystem::remove_all(root);
}

TEST(InterceptorTest, RoutesByLongestPrefix) {
  MemVfs a, b, fallback;
  write_file(a, "inner.txt", as_view(Bytes{'A'}));
  write_file(b, "inner.txt", as_view(Bytes{'B'}));
  write_file(fallback, "etc/passwd", as_view(Bytes{'F'}));

  Interceptor shim;
  shim.mount("fs", &a);
  shim.mount("fs/special", &b);
  shim.set_fallback(&fallback);

  EXPECT_EQ((*read_file(shim, "/fs/inner.txt"))[0], 'A');
  EXPECT_EQ((*read_file(shim, "/fs/special/inner.txt"))[0], 'B');
  EXPECT_EQ((*read_file(shim, "/etc/passwd"))[0], 'F');
}

TEST(InterceptorTest, PrefixMustMatchWholeComponent) {
  MemVfs a;
  write_file(a, "f", as_view(Bytes{'A'}));
  Interceptor shim;
  shim.mount("fs", &a);
  // "fsx/f" must NOT route to the "fs" mount.
  EXPECT_EQ(shim.open("fsx/f", OpenMode::kRead), -ENOENT);
}

TEST(InterceptorTest, NoFallbackMeansEnoent) {
  Interceptor shim;
  EXPECT_EQ(shim.open("anything", OpenMode::kRead), -ENOENT);
  format::FileStat st;
  EXPECT_EQ(shim.stat("anything", &st), -ENOENT);
}

TEST(InterceptorTest, FdNamespaceIsUnified) {
  MemVfs a, b;
  write_file(a, "f", as_view(Bytes{'A'}));
  write_file(b, "g", as_view(Bytes{'B'}));
  Interceptor shim;
  shim.mount("ma", &a);
  shim.mount("mb", &b);
  const int fa = shim.open("ma/f", OpenMode::kRead);
  const int fb = shim.open("mb/g", OpenMode::kRead);
  ASSERT_GE(fa, 0);
  ASSERT_GE(fb, 0);
  EXPECT_NE(fa, fb);
  Bytes buf(1);
  shim.read(fb, MutByteView{buf.data(), 1});
  EXPECT_EQ(buf[0], 'B');
  shim.read(fa, MutByteView{buf.data(), 1});
  EXPECT_EQ(buf[0], 'A');
  EXPECT_EQ(shim.close(fa), 0);
  EXPECT_EQ(shim.close(fa), -EBADF);  // double close
  EXPECT_EQ(shim.close(fb), 0);
}

TEST(InterceptorTest, WriteThroughMount) {
  MemVfs a;
  Interceptor shim;
  shim.mount("fs", &a);
  const Bytes data = testdata::random_bytes(100, 7);
  ASSERT_EQ(write_file(shim, "fs/out/result.bin", as_view(data)), 0);
  EXPECT_EQ(*read_file(a, "out/result.bin"), data);  // prefix stripped
}

}  // namespace
}  // namespace fanstore::posixfs
