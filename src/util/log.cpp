#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/sync.hpp"

namespace fanstore {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serializes emission only, so interleaved messages stay whole lines.
sync::Mutex g_emit_mu{"log.emit"};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  sync::MutexLock lk(g_emit_mu);
  std::fprintf(stderr, "[fanstore %s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace fanstore
