// Deflate-like codec: LZ parse + two per-block canonical Huffman alphabets
// (literal/length and distance), with deflate-style extra-bit bucketing.
// brotli-lite reuses this engine with a 4 MiB window and a deeper parse.
#include <algorithm>
#include <optional>
#include <vector>

#include "compress/bitio.hpp"
#include "compress/codecs.hpp"
#include "compress/huffman.hpp"
#include "compress/lz_common.hpp"

namespace fanstore::compress {
namespace {

constexpr int kMaxCodeLen = 15;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kBlockInput = 128 * 1024;  // symbols flushed per block

// Bucketed value coding (deflate-style): a code selects [base, base+2^extra),
// extra bits select the exact value. Level 0 has four 1-wide codes, each
// further level has two codes of width 2^e.
struct BucketTable {
  std::vector<std::uint32_t> base;
  std::vector<int> extra;

  explicit BucketTable(std::uint32_t max_value) {
    std::uint32_t b = 0;
    for (int i = 0; i < 4 && b <= max_value; ++i) {
      base.push_back(b);
      extra.push_back(0);
      b += 1;
    }
    for (int e = 1; b <= max_value; ++e) {
      for (int i = 0; i < 2 && b <= max_value; ++i) {
        base.push_back(b);
        extra.push_back(e);
        b += 1u << e;
      }
    }
  }

  std::size_t code_for(std::uint32_t value) const {
    // base is sorted; find the last code whose base <= value.
    auto it = std::upper_bound(base.begin(), base.end(), value);
    return static_cast<std::size_t>(it - base.begin()) - 1;
  }
};

// DEFLATE-style RLE of code-length arrays (the 16/17/18 scheme): lengths
// 0..15 are emitted as 5-bit literals; 16 repeats the previous length 3-6
// times (2 extra bits); 17/18 encode zero runs of 3-10 / 11-138 (3/7 extra
// bits). Cuts the per-block header roughly 3-4x for sparse alphabets —
// which matters for the ~1.2 KB Tokamak files.
void write_lengths_rle(BitWriter& bw, const std::vector<std::uint8_t>& lens) {
  std::size_t i = 0;
  int prev = -1;
  while (i < lens.size()) {
    const std::uint8_t l = lens[i];
    std::size_t run = 1;
    while (i + run < lens.size() && lens[i + run] == l) ++run;
    if (l == 0 && run >= 3) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        bw.put(18, 5);
        bw.put(static_cast<std::uint32_t>(take - 11), 7);
        left -= take;
      }
      if (left >= 3) {
        bw.put(17, 5);
        bw.put(static_cast<std::uint32_t>(left - 3), 3);
        left = 0;
      }
      while (left-- > 0) bw.put(0, 5);
      i += run;
      prev = 0;
      continue;
    }
    // Emit the first occurrence, then repeats via code 16.
    bw.put(l, 5);
    prev = l;
    std::size_t left = run - 1;
    i += run;
    while (left >= 3) {
      const std::size_t take = std::min<std::size_t>(left, 6);
      bw.put(16, 5);
      bw.put(static_cast<std::uint32_t>(take - 3), 2);
      left -= take;
    }
    while (left-- > 0) bw.put(l, 5);
    (void)prev;
  }
}

std::vector<std::uint8_t> read_lengths_rle(BitReader& br, std::size_t n) {
  std::vector<std::uint8_t> lens;
  lens.reserve(n);
  int prev = -1;
  while (lens.size() < n) {
    const std::uint32_t code = br.get(5);
    if (code <= 15) {
      lens.push_back(static_cast<std::uint8_t>(code));
      prev = static_cast<int>(code);
    } else if (code == 16) {
      if (prev < 0) throw CorruptDataError("deflate: repeat with no previous length");
      const std::uint32_t run = 3 + br.get(2);
      for (std::uint32_t k = 0; k < run; ++k) lens.push_back(static_cast<std::uint8_t>(prev));
    } else if (code == 17) {
      const std::uint32_t run = 3 + br.get(3);
      lens.insert(lens.end(), run, 0);
      prev = 0;
    } else if (code == 18) {
      const std::uint32_t run = 11 + br.get(7);
      lens.insert(lens.end(), run, 0);
      prev = 0;
    } else {
      throw CorruptDataError("deflate: bad length code");
    }
  }
  if (lens.size() != n) throw CorruptDataError("deflate: length array overrun");
  return lens;
}

class DeflateLiteCompressor final : public Compressor {
 public:
  DeflateLiteCompressor(std::string family, int level, int window_bits)
      : family_(std::move(family)),
        level_(level),
        window_bits_(window_bits),
        len_table_(kMaxMatch - kMinMatch),
        dist_table_((1u << window_bits) - 1) {}

  std::string name() const override {
    std::string n = family_ + "-" + std::to_string(level_);
    if (family_ == "deflate" && window_bits_ != 15) {
      n += "w" + std::to_string(window_bits_);
    }
    return n;
  }

  Bytes compress(ByteView src) const override {
    Bytes out;
    BitWriter bw(out);
    const std::size_t n = src.size();
    const std::size_t depth = std::min<std::size_t>(
        std::size_t{4} << level_, 4096);
    HashChainFinder finder(src, std::min(window_bits_ + 2, 18),
                           (std::size_t{1} << window_bits_) - 1, depth, kMinMatch);
    const bool lazy = level_ >= 5;

    // Token stream for the current block: literal (sym < 256) or match.
    struct Token {
      std::uint32_t lit_or_len;  // literal byte, or match length
      std::uint32_t dist;        // 0 for literals
    };
    std::vector<Token> tokens;
    tokens.reserve(kBlockInput / 2);
    std::size_t block_bytes = 0;

    auto flush_block = [&] {
      if (tokens.empty()) return;
      const std::size_t nlit = 256 + len_table_.base.size();
      std::vector<std::uint64_t> lit_freq(nlit, 0);
      std::vector<std::uint64_t> dist_freq(dist_table_.base.size(), 0);
      for (const Token& t : tokens) {
        if (t.dist == 0) {
          lit_freq[t.lit_or_len]++;
        } else {
          lit_freq[256 + len_table_.code_for(t.lit_or_len - kMinMatch)]++;
          dist_freq[dist_table_.code_for(t.dist - 1)]++;
        }
      }
      const auto lit_lens = build_code_lengths(lit_freq, kMaxCodeLen);
      auto dist_lens = build_code_lengths(dist_freq, kMaxCodeLen);
      bw.put(static_cast<std::uint32_t>(tokens.size()), 32);
      write_lengths_rle(bw, lit_lens);
      write_lengths_rle(bw, dist_lens);
      CanonicalEncoder lit_enc(lit_lens);
      CanonicalEncoder dist_enc(dist_lens);
      for (const Token& t : tokens) {
        if (t.dist == 0) {
          lit_enc.encode(bw, t.lit_or_len);
        } else {
          const std::size_t lc = len_table_.code_for(t.lit_or_len - kMinMatch);
          lit_enc.encode(bw, static_cast<std::uint32_t>(256 + lc));
          bw.put(t.lit_or_len - kMinMatch - len_table_.base[lc], len_table_.extra[lc]);
          const std::size_t dc = dist_table_.code_for(t.dist - 1);
          dist_enc.encode(bw, static_cast<std::uint32_t>(dc));
          bw.put(t.dist - 1 - dist_table_.base[dc], dist_table_.extra[dc]);
        }
      }
      tokens.clear();
      block_bytes = 0;
    };

    std::size_t i = 0;
    while (i < n) {
      Match m;
      if (i + kMinMatch <= n) m = finder.find(i, kMaxMatch);
      if (m.length >= kMinMatch) {
        if (lazy && i + 1 + kMinMatch <= n && m.length < kMaxMatch) {
          finder.insert(i);
          const Match m2 = finder.find(i + 1, kMaxMatch);
          if (m2.length > m.length + 1) {
            tokens.push_back({src[i], 0});
            block_bytes += 1;
            ++i;
            m = m2;
          }
        }
        tokens.push_back({static_cast<std::uint32_t>(m.length),
                          static_cast<std::uint32_t>(m.distance)});
        finder.insert_run(i, std::min(n, i + m.length));
        block_bytes += m.length;
        i += m.length;
      } else {
        tokens.push_back({src[i], 0});
        finder.insert(i);
        block_bytes += 1;
        ++i;
      }
      if (block_bytes >= kBlockInput) flush_block();
    }
    flush_block();
    bw.align();
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    Bytes out;
    out.reserve(original_size);
    BitReader br(src);
    const std::size_t nlit = 256 + len_table_.base.size();
    while (out.size() < original_size) {
      const std::size_t nsyms = br.get(32);
      if (nsyms == 0) throw CorruptDataError("deflate: empty block");
      const auto lit_lens = read_lengths_rle(br, nlit);
      const auto dist_lens = read_lengths_rle(br, dist_table_.base.size());
      CanonicalDecoder lit_dec(lit_lens);
      // Distance alphabet may be empty (all-literal block).
      const bool has_dist =
          std::any_of(dist_lens.begin(), dist_lens.end(), [](auto l) { return l > 0; });
      std::optional<CanonicalDecoder> dist_dec;
      if (has_dist) dist_dec.emplace(dist_lens);
      for (std::size_t s = 0; s < nsyms; ++s) {
        const std::uint32_t sym = lit_dec.decode(br);
        if (sym < 256) {
          if (out.size() + 1 > original_size) throw CorruptDataError("deflate: overlong");
          out.push_back(static_cast<std::uint8_t>(sym));
          continue;
        }
        const std::size_t lc = sym - 256;
        if (lc >= len_table_.base.size()) throw CorruptDataError("deflate: bad len code");
        const std::size_t length =
            kMinMatch + len_table_.base[lc] + br.get(len_table_.extra[lc]);
        if (!dist_dec) throw CorruptDataError("deflate: match without distances");
        const std::size_t dc = dist_dec->decode(br);
        const std::size_t distance = 1 + dist_table_.base[dc] + br.get(dist_table_.extra[dc]);
        if (distance > out.size()) throw CorruptDataError("deflate: bad distance");
        if (out.size() + length > original_size) throw CorruptDataError("deflate: overlong");
        const std::size_t from = out.size() - distance;
        for (std::size_t k = 0; k < length; ++k) out.push_back(out[from + k]);
      }
    }
    return out;
  }

 private:
  std::string family_;
  int level_;
  int window_bits_;
  BucketTable len_table_;
  BucketTable dist_table_;
};

}  // namespace

std::unique_ptr<Compressor> make_deflate(int level, int window_bits) {
  return std::make_unique<DeflateLiteCompressor>("deflate", level, window_bits);
}

std::unique_ptr<Compressor> make_brotli(int level) {
  return std::make_unique<DeflateLiteCompressor>("brotli", level, 22);
}

}  // namespace fanstore::compress
