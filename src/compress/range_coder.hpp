// Binary adaptive range coder (LZMA-style, carry-less with byte cache).
//
// Probabilities are 11-bit (0..2048) with shift-5 adaptation. Decoding is
// inherently bit-serial, which is why range-coded codecs (lzma/xz-lite) sit
// two to three orders of magnitude below byte-LZ decoders in Figure 7.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/compressor.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {

constexpr std::uint32_t kProbBits = 11;
constexpr std::uint32_t kProbInit = (1u << kProbBits) / 2;
constexpr std::uint32_t kProbMoveBits = 5;
constexpr std::uint32_t kRcTop = 1u << 24;

using Prob = std::uint16_t;

class RangeEncoder {
 public:
  explicit RangeEncoder(Bytes& out) : out_(out) {}

  void encode_bit(Prob& prob, int bit) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    if (bit == 0) {
      range_ = bound;
      prob = static_cast<Prob>(prob + (((1u << kProbBits) - prob) >> kProbMoveBits));
    } else {
      low_ += bound;
      range_ -= bound;
      prob = static_cast<Prob>(prob - (prob >> kProbMoveBits));
    }
    while (range_ < kRcTop) {
      range_ <<= 8;
      shift_low();
    }
  }

  /// Encodes `nbits` raw bits (MSB first) at probability 1/2 each.
  void encode_direct(std::uint32_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      range_ >>= 1;
      if ((value >> i) & 1u) low_ += range_;
      while (range_ < kRcTop) {
        range_ <<= 8;
        shift_low();
      }
    }
  }

  /// Encodes `nbits` through a bit-tree of 2^nbits - 1 probabilities.
  void encode_tree(Prob* probs, std::uint32_t value, int nbits) {
    std::uint32_t node = 1;
    for (int i = nbits - 1; i >= 0; --i) {
      const int bit = static_cast<int>((value >> i) & 1u);
      encode_bit(probs[node], bit);
      node = (node << 1) | static_cast<std::uint32_t>(bit);
    }
  }

  void flush() {
    for (int i = 0; i < 5; ++i) shift_low();
  }

 private:
  void shift_low() {
    if (static_cast<std::uint32_t>(low_) < 0xFF000000u || (low_ >> 32) != 0) {
      std::uint8_t carry = static_cast<std::uint8_t>(low_ >> 32);
      std::uint8_t temp = cache_;
      do {
        out_.push_back(static_cast<std::uint8_t>(temp + carry));
        temp = 0xFF;
      } while (--cache_size_ != 0);
      cache_ = static_cast<std::uint8_t>(low_ >> 24);
    }
    ++cache_size_;
    low_ = (low_ & 0x00FFFFFFull) << 8;
  }

  Bytes& out_;
  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;
};

class RangeDecoder {
 public:
  explicit RangeDecoder(ByteView in) : p_(in.data()), end_(in.data() + in.size()) {
    // The encoder's first flushed byte is always 0; consume 5 bytes total.
    for (int i = 0; i < 5; ++i) code_ = (code_ << 8) | next_byte();
  }

  int decode_bit(Prob& prob) {
    const std::uint32_t bound = (range_ >> kProbBits) * prob;
    int bit;
    if (code_ < bound) {
      range_ = bound;
      prob = static_cast<Prob>(prob + (((1u << kProbBits) - prob) >> kProbMoveBits));
      bit = 0;
    } else {
      code_ -= bound;
      range_ -= bound;
      prob = static_cast<Prob>(prob - (prob >> kProbMoveBits));
      bit = 1;
    }
    normalize();
    return bit;
  }

  std::uint32_t decode_direct(int nbits) {
    std::uint32_t value = 0;
    for (int i = 0; i < nbits; ++i) {
      range_ >>= 1;
      std::uint32_t bit = 0;
      if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
      }
      value = (value << 1) | bit;
      normalize();
    }
    return value;
  }

  std::uint32_t decode_tree(Prob* probs, int nbits) {
    std::uint32_t node = 1;
    for (int i = 0; i < nbits; ++i) {
      node = (node << 1) | static_cast<std::uint32_t>(decode_bit(probs[node]));
    }
    return node - (1u << nbits);
  }

 private:
  std::uint8_t next_byte() {
    // Zero-fill past the end: the encoder's flush pads with up to 5 bytes,
    // and truncation beyond that surfaces as output-bound errors upstream.
    return p_ < end_ ? *p_++ : 0;
  }

  void normalize() {
    while (range_ < kRcTop) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  std::uint32_t code_ = 0;
  std::uint32_t range_ = 0xFFFFFFFFu;
};

}  // namespace fanstore::compress
