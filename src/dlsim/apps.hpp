// Application models: the three evaluation workloads (§VII-B) with the
// measured parameters of Table V, expressed as selection-algorithm inputs
// plus trainer configuration.
#pragma once

#include <string>
#include <vector>

#include "dlsim/datagen.hpp"
#include "select/selection.hpp"

namespace fanstore::dlsim {

struct AppCase {
  std::string app;      // "SRGAN", "FRNN", "ResNet-50"
  std::string cluster;  // "GTX", "V100", "CPU"
  DatasetKind dataset;
  select::AppProfile profile;  // Table V row
  /// Compressors the paper compares for this case (Table VII).
  std::vector<std::string> selected;
  std::vector<std::string> comparison;
};

/// SRGAN on 4x GTX nodes: sync I/O, T_iter 9689 ms, C_batch 256, 410 MB.
AppCase srgan_gtx();

/// SRGAN on 4x V100 nodes: sync I/O, T_iter 2416 ms, same batch.
AppCase srgan_v100();

/// FRNN on 4 CPU nodes: async I/O, T_iter 655 ms, C_batch 512, 615 KB.
AppCase frnn_cpu();

/// ResNet-50/ImageNet, async I/O (used for the Fig. 9 scaling study).
AppCase resnet50_gtx();
AppCase resnet50_cpu();

std::vector<AppCase> all_app_cases();

}  // namespace fanstore::dlsim
