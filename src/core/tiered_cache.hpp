// Tiered cache hierarchy (DESIGN.md §12): the plain-RAM PlainCache extended
// into a four-tier stack behind the same acquire/release interface —
//
//   tier 0  plain RAM        decompressed entries, sharded pool (PlainCache)
//   tier 1  compressed RAM   entries in their compressed/chunked-container
//                            form; a hit re-decodes (chunked entries come
//                            back lazy, so per-range decode stays cheap)
//   tier 2  SSD spill        crc-framed spill records on a local Vfs,
//                            charged against an ssd StorageModel
//   tier 3  peer RAM         the owner rank's backend via the cold loader
//                            (PeerDirectory direct read or daemon fetch)
//   cold    local backend    the rank's own compressed partition
//
// Eviction from tier N is *demotion* into tier N+1: the PlainCache demotion
// hook feeds tier 1 (chunked frames) or tier 2 (flat plain bytes); tier-1
// eviction spills its compressed payload; tier-2 eviction drops the record.
// Promotion is hit-driven — a lower-tier hit always materializes into plain
// RAM (the read path needs decompressed bytes) but the lower-tier copy is
// retained until `promote_after_hits` cumulative hits, so one-shot scans do
// not purge the capacity tiers. Large cold objects can be admitted to the
// compressed tier only (`plain_admit_max_bytes`): they stream through plain
// RAM while pinned and their steady-state home is the compressed frame,
// decoded per-range on every hit.
//
// The clairvoyant EvictionPolicy (DESIGN.md §10) applies per tier: when a
// plan is installed, tier-1 and tier-2 victim scans also pick the entry
// with the farthest next planned use (FIFO tiebreak), matching the plain
// tier's Belady branch.
//
// Concurrency: tier lookups and demotions run with no plain-shard lock held
// (inside the single-flight miss slot, or in the post-unlock demotion
// hook). tiered.compressed.mu and tiered.spill.mu are leaves of the lock
// order; spill-device I/O happens under tiered.spill.mu — the spill tier is
// a single serialized device, like the SSD it models.
//
// With both tier budgets zero the wrapper is pass-through: no tier metrics
// are registered and every byte of behavior is the classic single-pool
// PlainCache.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/cache.hpp"
#include "obs/metrics.hpp"
#include "posixfs/vfs.hpp"
#include "simnet/models.hpp"
#include "simnet/virtual_clock.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

/// Where a cold load's bytes came from — tier accounting distinguishes the
/// peer-RAM tier from the rank's own backend.
enum class ColdSource { kLocalBackend, kPeer };

/// What the cold loader hands the tiered cache: the usable entry plus,
/// optionally, its compressed form for write-through admission into the
/// compressed tier (admit-to-compressed-only). For chunked entries the
/// compressed frame already lives inside `file`; `compressed` is only for
/// flat codecs, whose blob the loader would otherwise discard.
struct ColdResult {
  std::shared_ptr<CachedFile> file;
  Bytes compressed;                       // empty = no flat compressed copy
  compress::CompressorId compressor = 0;  // id of `compressed`
  std::uint32_t plain_crc = 0;            // crc32 of plain bytes; 0 = unknown
  ColdSource source = ColdSource::kLocalBackend;
};

/// One decoded spill record (see encode_spill_record for the layout).
struct SpillRecord {
  compress::CompressorId compressor = 0;  // 0 = plain bytes
  std::uint64_t original_size = 0;
  std::uint32_t plain_crc = 0;
  Bytes payload;
};

/// Frames a spill record:
///   u32 crc  | u32 magic "FSP1" | u16 compressor | u64 original_size |
///   u32 plain_crc | payload
/// The leading crc32 covers every byte after itself, so a torn or bit-
/// flipped spill file is rejected before any field is interpreted.
Bytes encode_spill_record(compress::CompressorId compressor,
                          std::uint64_t original_size, std::uint32_t plain_crc,
                          ByteView payload);

/// Parses and crc-verifies a spill record. Throws compress::CorruptDataError
/// on truncation, crc mismatch, or a bad magic — never interprets payload
/// bytes first.
SpillRecord decode_spill_record(ByteView bytes);

class TieredCache {
 public:
  struct Options {
    /// Tier-0 (plain RAM) budget + stripes — exactly PlainCache's options.
    std::size_t plain_bytes = 0;
    std::size_t plain_shards = 0;
    /// Tier-1 (compressed RAM) budget; 0 disables the tier.
    std::size_t compressed_bytes = 0;
    /// Tier-2 (SSD spill) budget; 0 disables the tier.
    std::size_t spill_bytes = 0;
    /// Spill device; nullptr = an internal MemVfs standing in for the
    /// node-local SSD (all device *time* comes from `spill_storage`).
    posixfs::Vfs* spill_fs = nullptr;
    std::string spill_root = ".fanstore-spill";
    /// Cumulative lower-tier hits after which the lower copy is released
    /// upward (the bytes move instead of duplicating). Minimum 1.
    std::size_t promote_after_hits = 2;
    /// Cold objects at least this large are admitted to the compressed
    /// tier only: their plain-RAM copy is dropped at last release instead
    /// of lingering. 0 = always admit to plain RAM.
    std::size_t plain_admit_max_bytes = 0;
    /// Registry for the "cache.*" and (when a tier is enabled) "tier.*"
    /// metrics; nullptr gives the stack a private registry.
    obs::MetricsRegistry* metrics = nullptr;
    /// Virtual-time charging for spill I/O and flat promote decompression.
    simnet::VirtualClock* clock = nullptr;
    bool charge_costs = false;
    bool charge_decompress = true;
    simnet::StorageModel spill_storage = simnet::ssd_storage();
  };

  using ColdLoader = std::function<ColdResult()>;

  explicit TieredCache(Options options);

  /// Tier walk behind PlainCache's single-flight slot: plain hit, else
  /// compressed-RAM hit (re-decoded), else spill hit (crc-verified, device
  /// time charged), else `cold()` (peer fetch / local backend — the caller
  /// owns that policy). Pins the resulting plain-tier entry exactly like
  /// PlainCache::acquire_file.
  std::shared_ptr<CachedFile> acquire_file(const std::string& path,
                                           const ColdLoader& cold);

  /// Unpins; admit-to-compressed-only entries leave plain RAM immediately
  /// on their last release (their home is the compressed tier).
  void release(const std::string& path);

  /// Forwards PlainCache::recharge (lazy chunk growth); overflow demotes.
  void recharge(const std::string& path);

  bool contains(const std::string& path) const { return plain_.contains(path); }
  /// True when any local tier (plain, compressed, spill) holds `path`.
  bool contains_any(const std::string& path) const;

  /// Applies `policy` to every tier: the plain tier's Belady branch plus
  /// farthest-next-use victim scans in the compressed and spill tiers.
  void set_eviction_policy(const EvictionPolicy* policy);

  /// True when the cold loader should carry the flat compressed blob for
  /// write-through admission of a `size`-byte object (FanStoreFs asks
  /// before discarding the blob it decompressed).
  bool wants_cold_compressed(std::size_t size) const;

  // --- Introspection (tests, stats_report) ---
  bool tiers_enabled() const { return tier1_on_ || tier2_on_; }
  bool compressed_contains(const std::string& path) const;
  bool spill_contains(const std::string& path) const;
  std::size_t compressed_bytes_used() const;
  std::size_t spill_bytes_used() const;

  PlainCache& plain() { return plain_; }
  const PlainCache& plain() const { return plain_; }
  obs::MetricsRegistry& metrics() const { return plain_.metrics(); }

 private:
  /// A tier-1 entry: the compressed (or chunked-container) form plus the
  /// metadata needed to rebuild a CachedFile and to decide promotion.
  struct CompressedEntry {
    compress::CompressorId compressor = 0;
    Bytes payload;
    std::uint64_t original_size = 0;
    std::uint32_t plain_crc = 0;
    std::size_t hits = 0;
    /// Write-through admissions that must keep their tier-1 residency
    /// (admit-to-compressed-only): never promoted out, and their plain
    /// copy is dropped at last release.
    bool pinned_home = false;
    std::list<std::string>::iterator fifo_pos;
  };

  /// A tier-2 entry: the record lives on the spill device; only accounting
  /// stays in RAM.
  struct SpillEntry {
    std::size_t record_bytes = 0;
    std::size_t hits = 0;
    std::list<std::string>::iterator fifo_pos;
  };

  /// PlainCache demotion-hook target: route an evicted tier-0 entry to
  /// tier 1 (chunked frame) or tier 2 (flat plain bytes).
  void demote(const std::string& path,
              const std::shared_ptr<CachedFile>& file);

  /// The loader PlainCache runs on a tier-0 miss (single-flight slot, no
  /// shard lock held).
  std::shared_ptr<CachedFile> load_below(const std::string& path,
                                         const ColdLoader& cold);

  std::shared_ptr<CachedFile> lookup_compressed(const std::string& path);
  std::shared_ptr<CachedFile> lookup_spill(const std::string& path);

  /// Inserts into tier 1 (no-op if present); evicted victims spill to
  /// tier 2 after the tier-1 lock is released. Returns false on duplicate.
  bool insert_compressed(const std::string& path, CompressedEntry entry);
  /// Inserts into tier 2 (no-op if present); evicts FIFO/policy victims to
  /// make room; records too large for the budget are dropped. Returns false
  /// on duplicate or drop.
  bool insert_spill(const std::string& path, compress::CompressorId compressor,
                    std::uint64_t original_size, std::uint32_t plain_crc,
                    ByteView payload);

  /// Rebuilds a usable entry from a tier payload: chunked ids come back
  /// lazy, flat codecs decompress (cost charged) and crc-check, id 0 is
  /// plain bytes.
  std::shared_ptr<CachedFile> rebuild(compress::CompressorId compressor,
                                      Bytes payload, std::size_t original_size,
                                      std::uint32_t plain_crc);

  std::string spill_path(const std::string& path) const;
  void reclaim_spill_locked(const std::string& path, const SpillEntry& e)
      REQUIRES(spill_mu_);
  void charge(double sec) const;

  Options opt_;
  bool tier1_on_ = false;
  bool tier2_on_ = false;
  PlainCache plain_;
  std::unique_ptr<posixfs::Vfs> owned_spill_fs_;  // when not injected
  posixfs::Vfs* spill_fs_ = nullptr;

  mutable sync::Mutex comp_mu_{"tiered.compressed.mu"};
  std::unordered_map<std::string, CompressedEntry> comp_ GUARDED_BY(comp_mu_);
  std::list<std::string> comp_fifo_ GUARDED_BY(comp_mu_);
  std::size_t comp_bytes_ GUARDED_BY(comp_mu_) = 0;

  mutable sync::Mutex spill_mu_{"tiered.spill.mu"};
  std::unordered_map<std::string, SpillEntry> spill_ GUARDED_BY(spill_mu_);
  std::list<std::string> spill_fifo_ GUARDED_BY(spill_mu_);
  std::size_t spill_bytes_ GUARDED_BY(spill_mu_) = 0;

  /// Per-tier Belady advice; mirrors the plain tier's installed policy.
  std::atomic<const EvictionPolicy*> policy_{nullptr};

  // "tier.*" metrics — registered only when a tier is enabled, so the
  // no-tier configuration leaves registries untouched.
  obs::Counter* plain_hits_ = nullptr;
  obs::Counter* comp_hits_ = nullptr;
  obs::Counter* comp_admits_ = nullptr;
  obs::Counter* comp_demotes_ = nullptr;
  obs::Counter* comp_promotes_ = nullptr;
  obs::Counter* comp_evictions_ = nullptr;
  obs::Gauge* comp_bytes_gauge_ = nullptr;
  obs::Counter* spill_hits_ = nullptr;
  obs::Counter* spill_demotes_ = nullptr;
  obs::Counter* spill_promotes_ = nullptr;
  obs::Counter* spill_evictions_ = nullptr;
  obs::Counter* spill_corrupt_ = nullptr;
  obs::Counter* spill_bytes_read_ = nullptr;
  obs::Counter* spill_bytes_written_ = nullptr;
  obs::Gauge* spill_bytes_gauge_ = nullptr;
  obs::Counter* peer_hits_ = nullptr;
  obs::Counter* cold_loads_ = nullptr;
  obs::Counter* dropped_ = nullptr;
};

}  // namespace fanstore::core
