#include "core/cache.hpp"

namespace fanstore::core {

PlainCache::PlainCache(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

std::shared_ptr<const Bytes> PlainCache::acquire(const std::string& path,
                                                 const std::function<Bytes()>& loader,
                                                 bool* loaded) {
  {
    sync::MutexLock lk(mu_);
    const auto it = entries_.find(path);
    if (it != entries_.end()) {
      it->second.open_count++;
      stats_.hits++;
      if (loaded != nullptr) *loaded = false;
      return it->second.data;
    }
  }
  // Miss: run the (potentially slow) loader without holding the lock.
  // Concurrent misses on the same path may both load; the second insert
  // simply adopts the existing entry.
  auto data = std::make_shared<const Bytes>(loader());
  if (loaded != nullptr) *loaded = true;
  sync::MutexLock lk(mu_);
  stats_.misses++;
  const auto it = entries_.find(path);
  if (it != entries_.end()) {
    it->second.open_count++;
    return it->second.data;
  }
  Entry e;
  e.data = data;
  e.open_count = 1;
  fifo_.push_back(path);
  e.fifo_pos = std::prev(fifo_.end());
  e.in_fifo = true;
  bytes_used_ += data->size();
  entries_.emplace(path, std::move(e));
  evict_if_needed_locked();
  return data;
}

void PlainCache::release(const std::string& path) {
  sync::MutexLock lk(mu_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return;
  if (it->second.open_count > 0) it->second.open_count--;
  evict_if_needed_locked();
}

void PlainCache::evict_if_needed_locked() {
  // FIFO scan, skipping pinned entries (the paper's "variant of FIFO").
  auto pos = fifo_.begin();
  while (bytes_used_ > capacity_ && pos != fifo_.end()) {
    const auto it = entries_.find(*pos);
    if (it == entries_.end()) {
      pos = fifo_.erase(pos);
      continue;
    }
    if (it->second.open_count > 0) {
      ++pos;  // in use by some I/O thread: skip
      continue;
    }
    bytes_used_ -= it->second.data->size();
    stats_.evictions++;
    pos = fifo_.erase(pos);
    entries_.erase(it);
  }
}

bool PlainCache::contains(const std::string& path) const {
  sync::MutexLock lk(mu_);
  return entries_.count(path) > 0;
}

std::size_t PlainCache::bytes_used() const {
  sync::MutexLock lk(mu_);
  return bytes_used_;
}

PlainCache::CacheStats PlainCache::stats() const {
  sync::MutexLock lk(mu_);
  return stats_;
}

}  // namespace fanstore::core
