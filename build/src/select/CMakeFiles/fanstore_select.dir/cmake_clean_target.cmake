file(REMOVE_RECURSE
  "libfanstore_select.a"
)
