#include "format/file_stat.hpp"

#include <cstring>

namespace fanstore::format {

namespace {
constexpr std::size_t kUsedBytes = 8 * 5 + 4 * 7 + 8;  // 76 used, rest reserved
static_assert(kUsedBytes <= kStatBytes);
}  // namespace

void FileStat::serialize(std::uint8_t* out) const {
  std::memset(out, 0, kStatBytes);
  std::size_t p = 0;
  auto put64 = [&](std::uint64_t v) {
    store_le<std::uint64_t>(out + p, v);
    p += 8;
  };
  auto put32 = [&](std::uint32_t v) {
    store_le<std::uint32_t>(out + p, v);
    p += 4;
  };
  put64(size);
  put64(compressed_size);
  put32(mode);
  put32(static_cast<std::uint32_t>(type));
  put32(uid);
  put32(gid);
  put64(mtime_ns);
  put64(atime_ns);
  put64(ctime_ns);
  put32(crc);
  put32(owner_rank);
  put32(partition_id);
  put64(partition_offset);
}

FileStat FileStat::deserialize(const std::uint8_t* in) {
  FileStat s;
  std::size_t p = 0;
  auto get64 = [&] {
    const auto v = load_le<std::uint64_t>(in + p);
    p += 8;
    return v;
  };
  auto get32 = [&] {
    const auto v = load_le<std::uint32_t>(in + p);
    p += 4;
    return v;
  };
  s.size = get64();
  s.compressed_size = get64();
  s.mode = get32();
  s.type = static_cast<FileType>(get32());
  s.uid = get32();
  s.gid = get32();
  s.mtime_ns = get64();
  s.atime_ns = get64();
  s.ctime_ns = get64();
  s.crc = get32();
  s.owner_rank = get32();
  s.partition_id = get32();
  s.partition_offset = get64();
  return s;
}

}  // namespace fanstore::format
