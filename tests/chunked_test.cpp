// Chunked container tests: id scheme, registry synthesis, frame round-trips
// for every registered inner codec, partial (range) decode through
// CachedFile, and the end-to-end prepare -> partition -> FanStoreFs path in
// both eager and lazy modes (with the "chunked.*" metrics asserting that a
// small pread of a large object decodes at most the overlapping chunks).
#include <gtest/gtest.h>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "core/cached_file.hpp"
#include "core/instance.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "tests/test_data.hpp"
#include "util/crc32.hpp"

namespace fanstore::compress {
namespace {

TEST(ChunkedIdTest, EncodesAndDecodesFields) {
  const CompressorId inner = 42;
  const CompressorId id = chunked_id(inner, std::size_t{64} << 10);
  EXPECT_TRUE(is_chunked_id(id));
  EXPECT_EQ(chunked_inner_id(id), inner);
  EXPECT_EQ(chunked_chunk_size(id), std::size_t{64} << 10);
  // Smallest and a large chunk size round-trip too.
  EXPECT_EQ(chunked_chunk_size(chunked_id(1, std::size_t{4} << 10)),
            std::size_t{4} << 10);
  EXPECT_EQ(chunked_chunk_size(chunked_id(1, std::size_t{16} << 20)),
            std::size_t{16} << 20);
}

TEST(ChunkedIdTest, RejectsInvalidCombinations) {
  EXPECT_THROW(chunked_id(1, 2048), std::invalid_argument);       // too small
  EXPECT_THROW(chunked_id(1, 3 * 4096), std::invalid_argument);   // not pow2
  EXPECT_THROW(chunked_id(1024, 4096), std::invalid_argument);    // inner too big
  // Nesting: a chunked id is not a valid inner.
  const CompressorId outer = chunked_id(1, 4096);
  EXPECT_THROW(chunked_id(outer, 4096), std::invalid_argument);
}

TEST(ChunkedRegistryTest, SynthesizesByIdAndName) {
  const auto& reg = Registry::instance();
  const auto* lz4hc = reg.by_name("lz4hc");
  ASSERT_NE(lz4hc, nullptr);
  const CompressorId id = chunked_id(reg.id_of(*lz4hc), std::size_t{256} << 10);

  const Compressor* by_id = reg.by_id(id);
  ASSERT_NE(by_id, nullptr);
  EXPECT_EQ(reg.id_of(*by_id), id);  // structural id round-trips
  // Same id resolves to the same cached instance.
  EXPECT_EQ(by_id, reg.by_id(id));

  const Compressor* by_name = reg.by_name("chunked-256k+lz4hc");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name, by_id);  // alias resolution meets the structural id
  EXPECT_EQ(by_name->name(), "chunked-256k+" + std::string(lz4hc->name()));

  // Bad spellings resolve to nothing rather than throwing.
  EXPECT_EQ(reg.by_name("chunked-256k+nosuch"), nullptr);
  EXPECT_EQ(reg.by_name("chunked-3000k+lz4hc"), nullptr);
  EXPECT_EQ(reg.by_name("chunked-256+lz4hc"), nullptr);  // missing k/m
  EXPECT_EQ(reg.by_name("chunked-+lz4hc"), nullptr);

  // Synthesized codecs stay out of the flat enumeration.
  for (const auto& e : reg.all()) EXPECT_FALSE(is_chunked_id(e.id));
}

TEST(ChunkedFrameTest, RoundTripsEveryInnerCodec) {
  const auto& reg = Registry::instance();
  const Bytes original = testdata::runs_and_noise(70000, 42);
  for (const auto& e : reg.all()) {
    const CompressorId id = chunked_id(e.id, std::size_t{16} << 10);
    const Compressor* chunked = reg.by_id(id);
    ASSERT_NE(chunked, nullptr) << e.codec->name();

    const Bytes packed = chunked->compress(as_view(original));
    const ChunkedFrame frame = ChunkedFrame::parse(as_view(packed), original.size());
    EXPECT_EQ(frame.chunk_count(), 5u) << e.codec->name();  // ceil(70000/16384)
    EXPECT_EQ(frame.inner_id(), e.id);

    EXPECT_EQ(chunked->decompress(as_view(packed), original.size()), original)
        << e.codec->name();
    // Parallel decode is byte-identical to serial.
    const auto* cc = dynamic_cast<const ChunkedCompressor*>(chunked);
    ASSERT_NE(cc, nullptr);
    EXPECT_EQ(cc->decompress_with(as_view(packed), original.size(), 4), original)
        << e.codec->name();
  }
}

TEST(ChunkedFrameTest, ParallelCompressMatchesSerial) {
  const auto& reg = Registry::instance();
  const auto* cc = dynamic_cast<const ChunkedCompressor*>(
      reg.by_name("chunked-16k+lz4hc"));
  ASSERT_NE(cc, nullptr);
  const Bytes original = testdata::text_like(90000, 7);
  EXPECT_EQ(cc->compress_with(as_view(original), 4), cc->compress(as_view(original)));
}

TEST(ChunkedFrameTest, DecodesSingleChunks) {
  const auto& reg = Registry::instance();
  const Compressor* chunked = reg.by_name("chunked-16k+lz4");
  ASSERT_NE(chunked, nullptr);
  const Bytes original = testdata::gradient_floats(50000, 3);
  const Bytes packed = chunked->compress(as_view(original));
  const ChunkedFrame frame = ChunkedFrame::parse(as_view(packed), original.size());
  ASSERT_EQ(frame.chunk_count(), 4u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < frame.chunk_count(); ++i) {
    const Bytes chunk = frame.decode_chunk(i);
    ASSERT_EQ(chunk.size(), frame.chunk_plain_size(i));
    EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(),
                           original.begin() +
                               static_cast<std::ptrdiff_t>(frame.chunk_begin(i))))
        << "chunk " << i;
    total += chunk.size();
  }
  EXPECT_EQ(total, original.size());
}

TEST(ChunkedFrameTest, EmptyInputProducesZeroChunks) {
  const auto& reg = Registry::instance();
  const Compressor* chunked = reg.by_name("chunked-16k+lz4");
  ASSERT_NE(chunked, nullptr);
  const Bytes packed = chunked->compress(ByteView{});
  const ChunkedFrame frame = ChunkedFrame::parse(as_view(packed), 0);
  EXPECT_EQ(frame.chunk_count(), 0u);
  EXPECT_EQ(chunked->decompress(as_view(packed), 0), Bytes{});
}

}  // namespace
}  // namespace fanstore::compress

namespace fanstore::core {
namespace {

Bytes pack_chunked(const Bytes& original, const char* name,
                   compress::CompressorId* id_out) {
  const auto& reg = compress::Registry::instance();
  const compress::Compressor* codec = reg.by_name(name);
  EXPECT_NE(codec, nullptr);
  *id_out = reg.id_of(*codec);
  return codec->compress(as_view(original));
}

TEST(CachedFileTest, PartialReadDecodesOnlyOverlappingChunks) {
  const Bytes original = testdata::runs_and_noise(1 << 20, 99);  // 1 MiB
  compress::CompressorId id = 0;
  Bytes packed = pack_chunked(original, "chunked-64k+lz4", &id);
  CachedFile file(std::move(packed), id, original.size());
  ASSERT_TRUE(file.is_chunked());
  ASSERT_EQ(file.chunk_count(), 16u);
  EXPECT_FALSE(file.fully_materialized());

  // A 64 KiB window straddling one chunk boundary: exactly two chunks.
  Bytes got(64 << 10);
  CachedFile::DecodeStats ds;
  file.read_range((192 << 10) + 100, MutByteView(got.data(), got.size()), &ds);
  EXPECT_EQ(ds.chunks_decoded, 2u);
  EXPECT_EQ(ds.bytes_decoded, std::size_t{128} << 10);
  EXPECT_EQ(file.chunks_materialized(), 2u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         original.begin() + (192 << 10) + 100));

  // Re-reading the same window decodes nothing further.
  CachedFile::DecodeStats ds2;
  file.read_range((192 << 10) + 100, MutByteView(got.data(), got.size()), &ds2);
  EXPECT_EQ(ds2.chunks_decoded, 0u);

  // materialize_all picks up exactly the remaining 14 chunks.
  CachedFile::DecodeStats ds3;
  file.materialize_all(4, &ds3);
  EXPECT_EQ(ds3.chunks_decoded, 14u);
  EXPECT_TRUE(file.fully_materialized());
  EXPECT_EQ(file.plain(), original);
  EXPECT_GE(file.charge_bytes(), original.size());
}

TEST(CachedFileTest, NonChunkedIsFullyMaterializedAtConstruction) {
  const Bytes original = testdata::text_like(5000, 1);
  CachedFile file{Bytes(original)};
  EXPECT_FALSE(file.is_chunked());
  EXPECT_TRUE(file.fully_materialized());
  EXPECT_EQ(file.plain(), original);
  EXPECT_EQ(file.charge_bytes(), original.size());
  Bytes got(1000);
  CachedFile::DecodeStats ds;
  file.read_range(2000, MutByteView(got.data(), got.size()), &ds);
  EXPECT_EQ(ds.chunks_decoded, 0u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), original.begin() + 2000));
}

TEST(CachedFileTest, RejectsFrameDisagreeingWithRecordedId) {
  const Bytes original = testdata::text_like(30000, 5);
  compress::CompressorId id = 0;
  Bytes packed = pack_chunked(original, "chunked-16k+lz4", &id);
  // Recorded id says 64 KiB chunks; the frame says 16 KiB.
  const compress::CompressorId wrong =
      compress::chunked_id(compress::chunked_inner_id(id), std::size_t{64} << 10);
  EXPECT_THROW(CachedFile(std::move(packed), wrong, original.size()),
               compress::CorruptDataError);
}

// End-to-end: prepare a dataset with --chunk-size, serve it through a
// one-rank FanStore, and verify both the eager and lazy read paths.
class ChunkedEndToEndTest : public ::testing::Test {
 protected:
  void prepare(std::size_t chunk_size) {
    big_ = testdata::runs_and_noise(1 << 20, 11);  // 16 chunks at 64k
    small_ = testdata::text_like(3000, 12);        // 1 short chunk
    ASSERT_EQ(posixfs::write_file(src_, "ds/big.bin", as_view(big_)), 0);
    ASSERT_EQ(posixfs::write_file(src_, "ds/small.txt", as_view(small_)), 0);
    prep::PrepOptions opt;
    opt.num_partitions = 1;
    opt.compressor = "lz4hc";
    opt.threads = 2;
    opt.chunk_size = chunk_size;
    manifest_ = prep::prepare_dataset(src_, "ds", dst_, "out", opt);
  }

  void load_into(Instance& inst) {
    const auto parts = manifest_.partition_paths();
    ASSERT_EQ(parts.size(), 1u);
    const auto blob = dst_.slurp(parts[0]);
    ASSERT_TRUE(blob.has_value());
    inst.load_partition_blob(as_view(*blob), 0);
    inst.exchange_metadata();
  }

  posixfs::MemVfs src_, dst_;
  prep::Manifest manifest_;
  Bytes big_, small_;
};

TEST_F(ChunkedEndToEndTest, EagerOpenRoundTripsAndDecodesInParallel) {
  prepare(std::size_t{64} << 10);
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.fs.decode_threads = 4;
    Instance inst(comm, opt);
    load_into(inst);

    const auto got_big = posixfs::read_file(inst.fs(), "ds/big.bin");
    const auto got_small = posixfs::read_file(inst.fs(), "ds/small.txt");
    ASSERT_TRUE(got_big.has_value());
    ASSERT_TRUE(got_small.has_value());
    EXPECT_EQ(*got_big, big_);
    EXPECT_EQ(*got_small, small_);

    const auto snap = inst.metrics().snapshot();
    EXPECT_EQ(snap.counter("chunked.chunks_decoded"), 17u);  // 16 + 1
    EXPECT_EQ(snap.counter("chunked.bytes_decoded"),
              big_.size() + small_.size());
    // The 16-chunk file went through the multi-threaded decode path.
    EXPECT_EQ(snap.counter("chunked.parallel_decodes"), 1u);
    EXPECT_EQ(snap.counter("chunked.partial_reads"), 0u);
  });
}

TEST_F(ChunkedEndToEndTest, LazyPreadDecodesAtMostTwoChunks) {
  prepare(std::size_t{64} << 10);
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.fs.lazy_chunked_open = true;
    Instance inst(comm, opt);
    load_into(inst);

    auto& fs = inst.fs();
    const int fd = fs.open("ds/big.bin", posixfs::OpenMode::kRead);
    ASSERT_GE(fd, 0);

    // 64 KiB window deliberately straddling a chunk boundary.
    const std::size_t off = (512 << 10) - 4096;
    Bytes got(64 << 10);
    ASSERT_EQ(fs.pread(fd, MutByteView(got.data(), got.size()), off),
              static_cast<std::int64_t>(got.size()));
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           big_.begin() + static_cast<std::ptrdiff_t>(off)));

    const auto snap = inst.metrics().snapshot();
    // The acceptance bar: a 64 KiB pread of a 1 MiB object decodes at most
    // two chunks' worth, and the other 14 chunks were never touched.
    EXPECT_LE(snap.counter("chunked.chunks_decoded"), 2u);
    EXPECT_LE(snap.counter("chunked.bytes_decoded"), std::size_t{2} * (64 << 10));
    EXPECT_EQ(snap.counter("chunked.partial_reads"), 1u);
    EXPECT_EQ(snap.counter("chunked.chunks_avoided"), 14u);

    // materialize() finishes the job exactly once.
    ASSERT_EQ(fs.materialize(fd), 0);
    const auto snap2 = inst.metrics().snapshot();
    EXPECT_EQ(snap2.counter("chunked.chunks_decoded"), 16u);
    EXPECT_EQ(snap2.counter("chunked.bytes_decoded"), big_.size());

    // Fully materialized now: sequential read sees the whole file.
    Bytes all(big_.size());
    ASSERT_EQ(fs.read(fd, MutByteView(all.data(), all.size())),
              static_cast<std::int64_t>(all.size()));
    EXPECT_EQ(all, big_);
    fs.close(fd);
  });
}

TEST_F(ChunkedEndToEndTest, WarmFileMaterializesLazyEntries) {
  prepare(std::size_t{64} << 10);
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.fs.lazy_chunked_open = true;
    opt.fs.decode_threads = 2;
    Instance inst(comm, opt);
    load_into(inst);

    ASSERT_TRUE(inst.fs().warm_file("ds/big.bin"));
    const auto snap = inst.metrics().snapshot();
    EXPECT_EQ(snap.counter("chunked.chunks_decoded"), 16u);

    // The warmed entry serves a later open without any further decode.
    const auto got = posixfs::read_file(inst.fs(), "ds/big.bin");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, big_);
    EXPECT_EQ(inst.metrics().snapshot().counter("chunked.chunks_decoded"), 16u);
  });
}

TEST_F(ChunkedEndToEndTest, StatCarriesChunkedCompressorTransparently) {
  prepare(std::size_t{16} << 10);
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    load_into(inst);
    format::FileStat st;
    ASSERT_EQ(inst.fs().stat("ds/big.bin", &st), 0);
    EXPECT_EQ(st.size, big_.size());
    EXPECT_EQ(st.crc, crc32(as_view(big_)));
  });
}

}  // namespace
}  // namespace fanstore::core
