#include "ipc/uds_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "ipc/protocol.hpp"
#include "util/log.hpp"

namespace fanstore::ipc {

UdsServer::UdsServer(std::string socket_path, posixfs::Vfs& fs, int backlog)
    : socket_path_(std::move(socket_path)), fs_(fs), backlog_(backlog) {}

UdsServer::~UdsServer() { stop(); }

void UdsServer::start() {
  if (running_.exchange(true)) return;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("uds: socket() failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("uds: socket path too long");
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("uds: bind() failed for " + socket_path_);
  }
  if (::listen(listen_fd_, backlog_) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("uds: listen() failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void UdsServer::stop() {
  if (!running_.exchange(false)) return;
  // Shut the listener down; accept() returns with an error and the loop
  // exits. The fd is closed only after the accept thread joins, so the
  // loop never calls accept() on a closed (and possibly reused) fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick connection handlers out of their blocking reads, then join.
  std::vector<std::thread> workers;
  {
    sync::MutexLock lk(workers_mu_);
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (auto& w : workers) w.join();
  {
    sync::MutexLock lk(workers_mu_);
    client_fds_.clear();
  }
  ::unlink(socket_path_.c_str());
}

void UdsServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      // EINTR (signal) and ECONNABORTED (the client gave up while queued)
      // are per-connection events, not listener shutdown: keep accepting
      // unless stop() has actually flipped the flag.
      if ((errno == EINTR || errno == ECONNABORTED) && running_.load()) {
        continue;
      }
      return;  // listener shut down by stop()
    }
    sync::MutexLock lk(workers_mu_);
    client_fds_.push_back(client);
    workers_.emplace_back([this, client] { serve_connection(client); });
  }
}

void UdsServer::serve_connection(int client_fd) {
  while (auto frame = read_frame(client_fd)) {
    const auto request = decode_request(as_view(*frame));
    Bytes reply;
    if (!request) {
      reply = encode_get_reply(Status::kError, {});
    } else {
      switch (request->op) {
        case Op::kGet: {
          const auto data = posixfs::read_file(fs_, request->path);
          reply = data ? encode_get_reply(Status::kOk, as_view(*data))
                       : encode_get_reply(Status::kNotFound, {});
          break;
        }
        case Op::kStat: {
          format::FileStat st;
          const int rc = fs_.stat(request->path, &st);
          reply = encode_stat_reply(rc == 0 ? Status::kOk : Status::kNotFound, st);
          break;
        }
        case Op::kList: {
          const int h = fs_.opendir(request->path);
          if (h < 0) {
            reply = encode_list_reply(Status::kNotFound, {});
            break;
          }
          std::vector<posixfs::Dirent> entries;
          while (auto e = fs_.readdir(h)) entries.push_back(std::move(*e));
          fs_.closedir(h);
          reply = encode_list_reply(Status::kOk, entries);
          break;
        }
      }
      served_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!write_frame(client_fd, as_view(reply))) break;
  }
  // De-register before closing: once closed, the fd number may be reused
  // elsewhere in the process and must no longer be on stop()'s kick list.
  {
    sync::MutexLock lk(workers_mu_);
    for (auto it = client_fds_.begin(); it != client_fds_.end(); ++it) {
      if (*it == client_fd) {
        client_fds_.erase(it);
        break;
      }
    }
  }
  ::close(client_fd);
}

}  // namespace fanstore::ipc
