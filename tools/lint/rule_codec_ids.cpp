// codec-id: compressor registry ids are structural — they are written into
// container headers on disk. The chunked container (compress/chunked.hpp)
// packs metadata into bits 10..15 of the 16-bit id field (bit 15 =
// kChunkedFlag, bits 10..14 = log2 chunk size), so every flat codec id must
// stay below 1024, and no two registrations may claim the same id. The rule
// checks what is lexically checkable in compress/registry.cpp: literal ids
// passed to add() and the literal bases of `CompressorId id = N;` loop
// blocks. (Registry's constructor asserts full uniqueness at runtime.)
#include "rules.hpp"

#include <map>

namespace fanstore::lint {

namespace {

constexpr long long kMaxFlatId = 1023;  // bits 10..15 reserved by chunked

}  // namespace

void rule_codec_ids(const FileCtx& ctx, std::vector<Finding>* out) {
  if (ctx.rel != "compress/registry.cpp") return;
  const auto& toks = *ctx.tokens;
  const auto& m = *ctx.model;

  struct IdSite {
    long long value;
    int line;
    int col;
  };
  std::vector<IdSite> sites;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "add") {
      const std::size_t paren = m.next_code(i);
      if (paren == TuModel::npos ||
          !(toks[paren].kind == Tok::kPunct && toks[paren].text == "(")) {
        continue;
      }
      const std::size_t arg = m.next_code(paren);
      if (arg == TuModel::npos || toks[arg].kind != Tok::kNumber) {
        continue;  // computed id — covered by the runtime ctor check
      }
      // Pure literal only: the next token must end the argument.
      const std::size_t after = m.next_code(arg);
      if (after == TuModel::npos || toks[after].kind != Tok::kPunct ||
          toks[after].text != ",") {
        continue;
      }
      long long v = 0;
      if (number_value(toks[arg], &v)) {
        sites.push_back(IdSite{v, toks[arg].line, toks[arg].col});
      }
    } else if (t.text == "CompressorId") {
      // CompressorId id = N;  (base of an id++ registration block)
      const std::size_t name = m.next_code(i);
      if (name == TuModel::npos || toks[name].kind != Tok::kIdent) continue;
      const std::size_t eq = m.next_code(name);
      if (eq == TuModel::npos ||
          !(toks[eq].kind == Tok::kPunct && toks[eq].text == "=")) {
        continue;
      }
      const std::size_t num = m.next_code(eq);
      if (num == TuModel::npos || toks[num].kind != Tok::kNumber) continue;
      const std::size_t semi = m.next_code(num);
      if (semi == TuModel::npos ||
          !(toks[semi].kind == Tok::kPunct && toks[semi].text == ";")) {
        continue;
      }
      long long v = 0;
      if (number_value(toks[num], &v)) {
        sites.push_back(IdSite{v, toks[num].line, toks[num].col});
      }
    }
  }

  std::map<long long, IdSite> seen;
  for (const IdSite& s : sites) {
    if (s.value > kMaxFlatId || s.value < 0) {
      out->push_back(Finding{
          "codec-id", ctx.rel, s.line, s.col,
          "codec id " + std::to_string(s.value) +
              " collides with the chunked-container reserved bit range; "
              "flat ids must be in [0, 1023] (compress/chunked.hpp)",
          {}});
    }
    auto [it, inserted] = seen.emplace(s.value, s);
    if (!inserted) {
      out->push_back(Finding{
          "codec-id", ctx.rel, s.line, s.col,
          "codec id " + std::to_string(s.value) +
              " already used at line " + std::to_string(it->second.line),
          {}});
    }
  }
}

}  // namespace fanstore::lint
