# Empty dependencies file for fanstore-prep.
# This may be replaced when dependencies are built.
