file(REMOVE_RECURSE
  "CMakeFiles/vfs_conformance_test.dir/vfs_conformance_test.cpp.o"
  "CMakeFiles/vfs_conformance_test.dir/vfs_conformance_test.cpp.o.d"
  "vfs_conformance_test"
  "vfs_conformance_test.pdb"
  "vfs_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
