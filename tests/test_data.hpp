// Shared synthetic byte patterns for codec and format tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace fanstore::testdata {

struct Pattern {
  std::string name;
  Bytes data;
};

inline Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

inline Bytes text_like(std::size_t n, std::uint64_t seed) {
  static const std::string words[] = {"the ",  "model ", "training ", "data ",
                                      "batch ", "epoch ", "gradient ", "loss ",
                                      "file ",  "node ",  "store ",    "cache "};
  Rng rng(seed);
  Bytes b;
  b.reserve(n + 16);
  while (b.size() < n) {
    const auto& w = words[rng.next_below(std::size(words))];
    b.insert(b.end(), w.begin(), w.end());
  }
  b.resize(n);
  return b;
}

inline Bytes low_entropy(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_below(4) * 7);
  return b;
}

inline Bytes gradient_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  std::uint8_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 0) v = static_cast<std::uint8_t>(v + rng.next_below(3));
    b[i] = (i % 4 == 3) ? v : static_cast<std::uint8_t>(i);
  }
  return b;
}

inline Bytes runs_and_noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes b;
  b.reserve(n + 64);
  while (b.size() < n) {
    if (rng.next_below(2) == 0) {
      b.insert(b.end(), 16 + rng.next_below(200), static_cast<std::uint8_t>(rng.next_u64()));
    } else {
      for (std::size_t k = 0, m = 8 + rng.next_below(64); k < m; ++k) {
        b.push_back(static_cast<std::uint8_t>(rng.next_u64()));
      }
    }
  }
  b.resize(n);
  return b;
}

/// The standard pattern set exercised by every codec round-trip test.
inline std::vector<Pattern> standard_patterns() {
  std::vector<Pattern> p;
  p.push_back({"empty", {}});
  p.push_back({"one_byte", {0x42}});
  p.push_back({"two_bytes", {0x00, 0xFF}});
  p.push_back({"all_zero_4k", Bytes(4096, 0)});
  p.push_back({"all_same_300", Bytes(300, 0xAB)});
  p.push_back({"random_64k", random_bytes(65536, 1)});
  p.push_back({"text_100k", text_like(100000, 2)});
  p.push_back({"low_entropy_150k", low_entropy(150000, 3)});
  p.push_back({"float_gradient_32k", gradient_floats(32768, 4)});
  p.push_back({"runs_noise_80k", runs_and_noise(80000, 5)});
  p.push_back({"tiny_run", Bytes(7, 9)});
  return p;
}

}  // namespace fanstore::testdata
