// Committed baseline for grandfathered findings. Format, one per line:
//
//   rule|rel/path.cpp|normalized source line text|justification
//
// The key is the finding's source line with whitespace collapsed rather
// than its line number, so unrelated edits above a baselined site don't
// invalidate the entry. The justification is mandatory — an entry without
// one is a load error, which keeps "why is this allowed?" answerable from
// the file itself. Lines starting with '#' are comments.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace fanstore::lint {

struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string line_text;  // whitespace-normalized
  std::string justification;
  bool used = false;
};

struct Baseline {
  std::vector<BaselineEntry> entries;

  /// Marks the matching entry used and returns true when (rule, file,
  /// normalized line text) is baselined.
  bool matches(const std::string& rule, const std::string& file,
               const std::string& line_text);

  /// Entries that matched no finding this run (candidates for deletion).
  std::vector<const BaselineEntry*> unused() const;
};

/// Collapses whitespace runs to single spaces and trims — the canonical
/// form for baseline keys.
std::string normalize_line(const std::string& line);

/// Returns false with *error set on IO failure, malformed lines, or an
/// empty/TODO justification.
bool load_baseline(const std::string& path, Baseline* out,
                   std::string* error);

}  // namespace fanstore::lint
