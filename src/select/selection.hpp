// Compressor-selection algorithm (§VI-B, Equations 1-3).
//
// Given application parameters (T_iter, C_batch, S'_batch), measured
// FanStore I/O performance (Tpt_read, Bdw_read) and per-codec sample
// statistics (compression ratio, decompression throughput), computes the
// set of codecs that preserve baseline performance and picks the one with
// the highest compression ratio, preferring those that meet a required
// capacity ratio.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compress/compressor.hpp"
#include "util/bytes.hpp"

namespace fanstore::select {

/// Application-side inputs (Table V).
struct AppProfile {
  std::string name;
  bool async_io = false;     // Figure 5(b) prefetch vs 5(a) sequential
  double t_iter_s = 0;       // per-iteration compute+allreduce time
  double c_batch_files = 0;  // files read per iteration (C_batch)
  double s_batch_raw_mb = 0; // MB read per iteration, uncompressed (S'_batch)
  int io_parallelism = 4;    // decompression threads per node
};

/// FanStore-side inputs (Table VI), measured at the training file size.
struct IoProfile {
  double tpt_read_files_per_s = 0;  // throughput bound
  double bdw_read_mb_per_s = 0;     // bandwidth bound
};

/// Per-codec sample statistics (the lzbench step of §VII-D).
struct CandidateStats {
  compress::CompressorId id = 0;
  std::string name;
  double ratio = 1.0;                 // compression ratio on dataset samples
  double decompress_s_per_file = 0;   // mean per-file decompression cost
};

/// Equation 3: T_read = max(C_batch / Tpt_read, S_batch / Bdw_read).
double t_read_s(double c_batch_files, double s_batch_mb, const IoProfile& io);

/// Per-file decompression budget implied by Eq. 1 (sync) or Eq. 2 (async):
/// the time available to decompress one file without hurting throughput.
double decompress_budget_per_file_s(const AppProfile& app, const IoProfile& io,
                                    double ratio);

/// Predicted fractional iteration-time increase from using this codec:
///   sync : (decomp + read_compressed - read_raw) / (T_iter + read_raw)
///   async: (max(T_iter, decomp + read_compressed) - max(T_iter, read_raw))
///          / max(T_iter, read_raw)
/// clamped at zero. This is what Figure 8 measures; the strict Eq. 1/2
/// budget is a sufficient condition for zero slowdown but — as the paper's
/// own Table VII shows — codecs may miss it by a margin that is negligible
/// against T_iter, so selection admits candidates under `tolerance`.
double predicted_slowdown(const AppProfile& app, const IoProfile& io,
                          const CandidateStats& candidate);

struct EvaluatedCandidate {
  CandidateStats stats;
  double budget_s_per_file = 0;     // strict Eq. 1/2 per-file budget
  bool strict_feasible = false;     // meets the strict budget
  double slowdown = 0;              // predicted fractional slowdown
};

struct SelectionResult {
  /// Every candidate, annotated; sorted by ratio descending.
  std::vector<EvaluatedCandidate> evaluated;
  /// Candidates with slowdown <= tolerance (or strictly feasible).
  std::vector<CandidateStats> feasible;
  /// Highest-ratio feasible candidate (nullopt if none feasible).
  std::optional<CandidateStats> best;
  /// True if `best` also meets the required capacity ratio.
  bool meets_required_ratio = false;
};

/// Runs the selection. `required_ratio` is the capacity the deployment
/// needs (e.g. dataset size / aggregate burst-buffer size); candidates are
/// ranked by ratio among the feasible set. `tolerance` is the acceptable
/// fractional performance loss (the paper's constraint is "no significant
/// runtime overhead"; 1% by default).
SelectionResult select_compressor(const AppProfile& app, const IoProfile& io,
                                  const std::vector<CandidateStats>& candidates,
                                  double required_ratio = 1.0,
                                  double tolerance = 0.01);

/// Builds CandidateStats by compressing/decompressing `samples` with each
/// codec in `codec_names` and measuring wall time (the sampling step the
/// paper performs with lzbench).
std::vector<CandidateStats> profile_candidates(
    const std::vector<Bytes>& samples, const std::vector<std::string>& codec_names);

}  // namespace fanstore::select
