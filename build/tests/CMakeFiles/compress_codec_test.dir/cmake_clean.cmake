file(REMOVE_RECURSE
  "CMakeFiles/compress_codec_test.dir/compress_codec_test.cpp.o"
  "CMakeFiles/compress_codec_test.dir/compress_codec_test.cpp.o.d"
  "compress_codec_test"
  "compress_codec_test.pdb"
  "compress_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
