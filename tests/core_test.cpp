// Core FanStore tests: metadata store, backends, daemon protocol, and the
// full multi-rank open/read/close + write paths through FanStoreFs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "compress/registry.hpp"
#include "core/checkpoint.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "tests/test_data.hpp"
#include "util/crc32.hpp"

namespace fanstore::core {
namespace {

using posixfs::OpenMode;

format::FileStat regular_stat(std::size_t size, int owner = 0) {
  format::FileStat s;
  s.size = size;
  s.type = format::FileType::kRegular;
  s.owner_rank = static_cast<std::uint32_t>(owner);
  return s;
}

TEST(MetadataStoreTest, InsertLookupListStructure) {
  MetadataStore meta;
  meta.insert("imagenet/cat/1.jpg", regular_stat(10));
  meta.insert("imagenet/cat/2.jpg", regular_stat(20));
  meta.insert("imagenet/dog/3.jpg", regular_stat(30));

  EXPECT_EQ(meta.file_count(), 3u);
  EXPECT_EQ(meta.lookup("imagenet/cat/2.jpg")->size, 20u);
  EXPECT_FALSE(meta.lookup("imagenet/cat/9.jpg").has_value());
  EXPECT_TRUE(meta.dir_exists("imagenet"));
  EXPECT_TRUE(meta.dir_exists("imagenet/dog"));
  EXPECT_FALSE(meta.dir_exists("imagenet/bird"));
  // Directory stats are synthesized.
  EXPECT_EQ(meta.lookup("imagenet/cat")->type, format::FileType::kDirectory);

  const auto root = meta.list("");
  ASSERT_EQ(root.size(), 1u);
  EXPECT_EQ(root[0].name, "imagenet");
  const auto cats = meta.list("imagenet/cat");
  ASSERT_EQ(cats.size(), 2u);
  EXPECT_EQ(cats[0].name, "1.jpg");
  const auto top = meta.list("imagenet");
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].type, format::FileType::kDirectory);
}

TEST(MetadataStoreTest, SerializeMergeRoundTrip) {
  MetadataStore a, b;
  a.insert("x/1", regular_stat(11, 0));
  a.insert("x/2", regular_stat(22, 0));
  b.merge_serialized(as_view(a.serialize()));
  EXPECT_EQ(b.file_count(), 2u);
  EXPECT_EQ(b.lookup("x/2")->size, 22u);
  // Merging garbage is rejected.
  EXPECT_THROW(b.merge_serialized(as_view(Bytes{9, 9, 9})), std::invalid_argument);
}

TEST(BackendTest, RamBackendPutGet) {
  RamBackend be;
  be.put("a", Blob{7, Bytes{1, 2, 3}});
  EXPECT_TRUE(be.contains("a"));
  EXPECT_FALSE(be.contains("b"));
  const auto got = be.get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->compressor, 7);
  EXPECT_EQ(got->data, (Bytes{1, 2, 3}));
  EXPECT_EQ(be.bytes_used(), 3u);
  EXPECT_EQ(be.object_count(), 1u);
}

TEST(BackendTest, VfsBackendStoresOnLocalFs) {
  posixfs::MemVfs ssd;
  VfsBackend be(&ssd, ".fanstore");
  be.put("dir/file", Blob{42, Bytes{9, 8, 7, 6}});
  EXPECT_TRUE(be.contains("dir/file"));
  const auto got = be.get("dir/file");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->compressor, 42);
  EXPECT_EQ(got->data, (Bytes{9, 8, 7, 6}));
  // The object lives as a real file under the backend root.
  EXPECT_TRUE(ssd.slurp(".fanstore/dir/file").has_value());
  EXPECT_FALSE(be.get("missing").has_value());
}

// --- Multi-rank integration ------------------------------------------------

// Builds a partition of `n` generated files with the given codec.
Bytes make_partition(const std::vector<std::pair<std::string, Bytes>>& files,
                     const char* codec_name) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name(codec_name);
  format::PartitionWriter w;
  for (const auto& [path, data] : files) {
    w.add(format::make_record(path, *codec, reg.id_of(*codec), as_view(data)));
  }
  return w.serialize();
}

TEST(FanStoreIntegrationTest, LocalAndRemoteReads) {
  // Rank 0 owns f0, rank 1 owns f1; each reads both (one local, one remote).
  const Bytes d0 = testdata::text_like(20000, 100);
  const Bytes d1 = testdata::runs_and_noise(30000, 101);
  mpi::run_world(2, [&](mpi::Comm& comm) {
    Instance::Options opt;
    Instance inst(comm, opt);
    if (comm.rank() == 0) {
      inst.load_partition_blob(as_view(make_partition({{"data/f0", d0}}, "lz4hc")), 0);
    } else {
      inst.load_partition_blob(as_view(make_partition({{"data/f1", d1}}, "lzma")), 1);
    }
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    auto& fs = inst.fs();
    const auto got0 = posixfs::read_file(fs, "data/f0");
    const auto got1 = posixfs::read_file(fs, "data/f1");
    ASSERT_TRUE(got0.has_value());
    ASSERT_TRUE(got1.has_value());
    EXPECT_EQ(*got0, d0);
    EXPECT_EQ(*got1, d1);

    const auto stats = fs.stats();
    EXPECT_EQ(stats.remote_fetches, 1u);  // exactly one file was remote
    EXPECT_EQ(stats.local_misses, 1u);

    comm.barrier();  // both done before daemons stop
    inst.stop();
  });
}

TEST(FanStoreIntegrationTest, MetadataFullyReplicatedAfterExchange) {
  mpi::run_world(4, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    std::vector<std::pair<std::string, Bytes>> files;
    files.emplace_back("d/r" + std::to_string(comm.rank()),
                       testdata::random_bytes(100, static_cast<std::uint64_t>(comm.rank())));
    inst.load_partition_blob(as_view(make_partition(files, "store")),
                             static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    EXPECT_EQ(inst.metadata().file_count(), 4u);
    // stat() of every file works without touching any other rank.
    for (int r = 0; r < 4; ++r) {
      format::FileStat st;
      EXPECT_EQ(inst.fs().stat("d/r" + std::to_string(r), &st), 0);
      EXPECT_EQ(st.owner_rank, static_cast<std::uint32_t>(r));
    }
    // readdir shows the global namespace.
    const int h = inst.fs().opendir("d");
    int count = 0;
    while (inst.fs().readdir(h)) ++count;
    inst.fs().closedir(h);
    EXPECT_EQ(count, 4);
  });
}

TEST(FanStoreIntegrationTest, RfEqualsNranksMatchesClassicAllgather) {
  // replication_factor == nranks is the compatibility mode (DESIGN.md §13):
  // every rank owns every shard, so the sharded push exchange must converge
  // to the same fully replicated metadata as the classic allgather —
  // byte-identical canonical (sorted per-shard) serialization and the
  // identical namespace on every rank. serialize() itself iterates the
  // hash map in insertion order, so the canonical form is the concatenation
  // of serialize_shard() over all shards, which sorts within each shard.
  constexpr int kRanks = 3;
  constexpr std::uint32_t kShards = 64;
  std::vector<Bytes> classic_blob(kRanks), sharded_blob(kRanks);
  std::vector<std::vector<std::string>> classic_paths(kRanks);

  auto canonical = [](Instance& inst) {
    Bytes out;
    for (std::uint32_t s = 0; s < kShards; ++s) {
      const Bytes shard = inst.metadata().serialize_shard(s, kShards);
      out.insert(out.end(), shard.begin(), shard.end());
    }
    return out;
  };

  auto load_files = [](Instance& inst, int rank) {
    std::vector<std::pair<std::string, Bytes>> files;
    for (int i = 0; i < 3; ++i) {
      files.emplace_back(
          "compat/r" + std::to_string(rank) + "/f" + std::to_string(i),
          testdata::random_bytes(64 + static_cast<std::size_t>(i),
                                 static_cast<std::uint64_t>(rank * 10 + i)));
    }
    inst.load_partition_blob(as_view(make_partition(files, "store")),
                             static_cast<std::uint32_t>(rank));
  };

  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    load_files(inst, comm.rank());
    inst.exchange_metadata();
    classic_blob[static_cast<std::size_t>(comm.rank())] = canonical(inst);
    classic_paths[static_cast<std::size_t>(comm.rank())] =
        inst.metadata().all_paths();
  });
  mpi::run_world(kRanks, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.cluster.replication_factor = kRanks;
    Instance inst(comm, std::move(opt));
    load_files(inst, comm.rank());
    inst.exchange_metadata();
    auto* node = inst.cluster_node();
    ASSERT_NE(node, nullptr);
    for (std::uint32_t s = 0; s < node->nshards(); ++s) {
      EXPECT_TRUE(node->owns_shard(s)) << "shard " << s;
    }
    sharded_blob[static_cast<std::size_t>(comm.rank())] = canonical(inst);
    EXPECT_EQ(inst.metadata().all_paths(),
              classic_paths[static_cast<std::size_t>(comm.rank())]);
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(sharded_blob[static_cast<std::size_t>(r)],
              classic_blob[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_EQ(classic_blob[static_cast<std::size_t>(r)], classic_blob[0]);
  }
}

TEST(FanStoreIntegrationTest, CacheHitOnSecondOpen) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    const Bytes data = testdata::text_like(5000, 3);
    inst.load_partition_blob(as_view(make_partition({{"f", data}}, "lz4hc")), 0);
    inst.exchange_metadata();
    (void)posixfs::read_file(inst.fs(), "f");
    (void)posixfs::read_file(inst.fs(), "f");
    EXPECT_EQ(inst.fs().stats().cache_hits, 1u);
    EXPECT_EQ(inst.fs().stats().local_misses, 1u);
  });
}

TEST(FanStoreIntegrationTest, WriteOnceModel) {
  mpi::run_world(2, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();
    auto& fs = inst.fs();
    if (comm.rank() == 0) {
      // Write a checkpoint, then verify write-once semantics.
      const Bytes ckpt = testdata::random_bytes(4096, 5);
      ASSERT_EQ(posixfs::write_file(fs, "out/ckpt_1.h5", as_view(ckpt)), 0);
      EXPECT_EQ(fs.open("out/ckpt_1.h5", OpenMode::kWrite), -EEXIST);
      // Reading our own output back works (local backend).
      EXPECT_EQ(*posixfs::read_file(fs, "out/ckpt_1.h5"), ckpt);
    }
    comm.barrier();
    if (comm.rank() == 1) {
      // The home rank of the path received forwarded metadata, or rank 0
      // kept it local; either way rank 0 sees it and rank 1 sees it iff
      // rank 1 is the home rank.
      if (fs.home_rank("out/ckpt_1.h5") == 1) {
        // The forward is asynchronous: poll until the daemon applies it.
        format::FileStat st;
        int rc = -ENOENT;
        for (int tries = 0; tries < 200 && rc != 0; ++tries) {
          rc = fs.stat("out/ckpt_1.h5", &st);
          if (rc != 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        EXPECT_EQ(rc, 0);
        EXPECT_EQ(st.size, 4096u);
        EXPECT_EQ(st.owner_rank, 0u);
      }
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(FanStoreIntegrationTest, ConcurrentWritersRejected) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    auto& fs = inst.fs();
    const int fd1 = fs.open("log.txt", OpenMode::kWrite);
    ASSERT_GE(fd1, 0);
    EXPECT_EQ(fs.open("log.txt", OpenMode::kWrite), -EBUSY);
    fs.write(fd1, as_view(Bytes{1}));
    fs.close(fd1);
    EXPECT_EQ(fs.open("log.txt", OpenMode::kWrite), -EEXIST);
  });
}

TEST(FanStoreIntegrationTest, ErrorsArePosixStyle) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    const Bytes data = testdata::random_bytes(100, 4);
    inst.load_partition_blob(as_view(make_partition({{"dir/f", data}}, "store")), 0);
    inst.exchange_metadata();
    auto& fs = inst.fs();
    EXPECT_EQ(fs.open("missing", OpenMode::kRead), -ENOENT);
    EXPECT_EQ(fs.open("dir", OpenMode::kRead), -EISDIR);
    EXPECT_EQ(fs.close(12345), -EBADF);
    EXPECT_EQ(fs.opendir("nothere"), -ENOENT);
    Bytes buf(4);
    EXPECT_EQ(fs.read(999, MutByteView{buf.data(), 4}), -EBADF);
  });
}

TEST(FanStoreIntegrationTest, NeighbourReadRequiresRemoteFetch) {
  mpi::run_world(4, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    std::vector<std::pair<std::string, Bytes>> files;
    files.emplace_back("p/r" + std::to_string(comm.rank()),
                       testdata::text_like(3000, static_cast<std::uint64_t>(comm.rank())));
    const Bytes part = make_partition(files, "lz4");
    inst.load_partition_blob(as_view(part), static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();
    // Neighbour's file requires a remote fetch (no replication here).
    const int neighbour = (comm.rank() + 1) % 4;
    (void)posixfs::read_file(inst.fs(), "p/r" + std::to_string(neighbour));
    EXPECT_EQ(inst.fs().stats().remote_fetches, 1u);
    comm.barrier();
    inst.stop();
  });
}

TEST(FanStoreIntegrationTest, PeerDirectoryServesFetchesWithoutDaemon) {
  // With a shared PeerDirectory, a remote fetch reads the owner's backend
  // directly — no request encode, reply copy, or daemon round-trip. The
  // daemons are never even started: every byte still arrives.
  PeerDirectory peers;
  mpi::run_world(2, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.peers = &peers;
    Instance inst(comm, opt);
    const Bytes data = testdata::text_like(4000, static_cast<std::uint64_t>(comm.rank()));
    inst.load_partition_blob(
        as_view(make_partition({{"p/r" + std::to_string(comm.rank()), data}}, "lz4")),
        static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    comm.barrier();

    const int neighbour = (comm.rank() + 1) % 2;
    const auto got = posixfs::read_file(inst.fs(), "p/r" + std::to_string(neighbour));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->size(), 4000u);
    const auto stats = inst.fs().stats();
    EXPECT_EQ(stats.remote_fetches, 1u);
    EXPECT_EQ(stats.direct_fetches, 1u);  // served off the peer table
    EXPECT_GT(stats.remote_bytes, 0u);    // wire cost still accounted
    EXPECT_EQ(inst.daemon().fetches_served(), 0u);

    comm.barrier();  // both reads done before either backend goes away
    inst.stop();
    comm.barrier();
  });
}

TEST(FanStoreIntegrationTest, FullSharedFsFlowWithRingReplication) {
  // End-to-end: prep packs a dataset into a shared MemVfs; 4 ranks load
  // their partitions, replicate one ring hop, exchange metadata, and read
  // the whole dataset. Replication must eliminate fetches for the
  // predecessor's partition.
  posixfs::MemVfs shared;
  std::vector<std::string> paths;
  {
    posixfs::MemVfs src;
    paths = dlsim::materialize_dataset(src, "ds", dlsim::DatasetKind::kLanguageTxt, 16);
    prep::PrepOptions opt;
    opt.num_partitions = 4;
    opt.compressor = "lz4hc";
    opt.threads = 2;
    prep::prepare_dataset(src, "ds", shared, "packed", opt);
  }
  mpi::run_world(4, [&](mpi::Comm& comm) {
    const auto manifest = prep::load_manifest(shared, "packed");
    ASSERT_EQ(manifest.partitions.size(), 4u);
    Instance inst(comm, {});
    inst.load_from_shared(shared, manifest.partition_paths());
    inst.replicate_ring(1);
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    EXPECT_EQ(inst.metadata().file_count(), 16u);
    for (const auto& p : paths) {
      const auto got = posixfs::read_file(inst.fs(), p);
      ASSERT_TRUE(got.has_value()) << p;
      EXPECT_EQ(*got, dlsim::generate_file(dlsim::DatasetKind::kLanguageTxt,
                                           // index from name: ds/dXXX/Language_IIIIII.txt
                                           std::stoull(p.substr(p.size() - 10, 6))));
    }
    // 16 files / 4 partitions: own (4) + predecessor's replicated (4) are
    // local; the other 8 are remote fetches.
    EXPECT_EQ(inst.fs().stats().remote_fetches, 8u);
    comm.barrier();
    inst.stop();
  });
}

TEST(DaemonProtocolTest, FetchNotFoundAndMalformed) {
  mpi::run_world(2, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    inst.start_daemon();
    comm.barrier();
    if (comm.rank() == 0) {
      // Not found.
      comm.send(1, kTagFetch, encode_fetch_request(5000, "ghost"));
      auto reply = comm.recv(1, 5000);
      ASSERT_GE(reply.payload.size(), 1u);
      EXPECT_EQ(reply.payload[0], kFetchNotFound);
      // Malformed (empty path).
      comm.send(1, kTagFetch, encode_fetch_request(5001, ""));
      reply = comm.recv(1, 5001);
      EXPECT_EQ(reply.payload[0], kFetchMalformed);
      // Garbage (too short) is dropped without killing the daemon.
      comm.send(1, kTagFetch, Bytes{1});
      comm.send(1, kTagWriteMeta, Bytes{1});
      // Daemon still alive: valid request answered.
      comm.send(1, kTagFetch, encode_fetch_request(5002, "ghost"));
      reply = comm.recv(1, 5002);
      EXPECT_EQ(reply.payload[0], kFetchNotFound);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(DaemonProtocolTest, StopIsIdempotent) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    inst.start_daemon();
    inst.stop();
    inst.stop();
    SUCCEED();
  });
}

TEST(FanStoreIntegrationTest, DiskBackendWorks) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    posixfs::MemVfs ssd;
    Instance::Options opt;
    opt.local_fs = &ssd;
    Instance inst(comm, opt);
    const Bytes data = testdata::text_like(10000, 8);
    inst.load_partition_blob(as_view(make_partition({{"f", data}}, "deflate")), 0);
    inst.exchange_metadata();
    EXPECT_EQ(*posixfs::read_file(inst.fs(), "f"), data);
    EXPECT_GT(ssd.file_count(), 0u);  // compressed object landed on "SSD"
  });
}


TEST(FanStoreIntegrationTest, CompressedWritePath) {
  // Output files can be compressed too (write_compressor option): the
  // checkpoint round-trips and the backend holds fewer bytes than raw.
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.fs.write_compressor = compress::Registry::instance().id_by_name("lz4hc");
    Instance inst(comm, opt);
    const Bytes ckpt = testdata::text_like(50000, 42);
    ASSERT_EQ(posixfs::write_file(inst.fs(), "out/model.bin", as_view(ckpt)), 0);
    EXPECT_EQ(*posixfs::read_file(inst.fs(), "out/model.bin"), ckpt);
    EXPECT_LT(inst.backend().bytes_used(), ckpt.size() / 2);
  });
}

TEST(FanStoreIntegrationTest, CheckpointManagerOverFanStore) {
  // CheckpointManager writing through FanStoreFs with a MemVfs "shared FS"
  // mirror: the full §V-E flow on the real store.
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    posixfs::MemVfs shared;
    CheckpointManager mgr(inst.fs(), &shared, "ckpt");
    ASSERT_EQ(mgr.save(3, as_view(Bytes(1000, 0x33))), 0);
    const auto latest = mgr.latest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->epoch, 3);
    // The mirror really landed on the shared FS.
    EXPECT_TRUE(shared.slurp("ckpt/ckpt_000003.bin").has_value());
  });
}


// Virtual-clock proof that chunked decompress cost is charged exactly once
// per chunk, wherever the chunk happens to materialize — the PR-3-era bug
// was a prefetch-warmed file being charged again at open(). With every
// storage/network cost zeroed and the inner codec pinned to one chunk per
// virtual second, the clock *is* the chunk-decode counter.
TEST(FanStoreIntegrationTest, ChunkedDecodeChargedOncePerChunk) {
  constexpr std::size_t kChunk = std::size_t{64} << 10;
  const Bytes data = testdata::runs_and_noise(std::size_t{1} << 20, 31);
  mpi::run_world(1, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.clock = &clock;
    opt.fs.lazy_chunked_open = true;
    opt.fs.decode_threads = 4;
    opt.fs.cost.read_path.per_op_s = 0;
    opt.fs.cost.read_path.metadata_op_s = 0;
    opt.fs.cost.read_path.bandwidth_bps = 1e30;  // data movement is free
    Instance inst(comm, opt);
    inst.load_partition_blob(
        as_view(make_partition({{"big", data}}, "chunked-64k+lz4hc")), 0);
    inst.exchange_metadata();
    const auto inner =
        compress::Registry::instance().id_by_name("lz4hc");
    // One 64 KiB chunk decodes in exactly one virtual second.
    simnet::CodecSpeedTable::shared().set_decompress_bps(
        inner, static_cast<double>(kChunk));

    auto& fs = inst.fs();
    const int fd = fs.open("big", posixfs::OpenMode::kRead);
    ASSERT_GE(fd, 0);
    EXPECT_DOUBLE_EQ(clock.now_sec(), 0.0);  // lazy open decodes nothing

    // A window straddling one boundary: two chunks, decoded serially.
    Bytes buf(kChunk);
    ASSERT_EQ(fs.pread(fd, MutByteView(buf.data(), buf.size()), kChunk * 3 + 100),
              static_cast<std::int64_t>(buf.size()));
    EXPECT_DOUBLE_EQ(clock.now_sec(), 2.0);

    // Same window again: chunks already materialized, nothing charged.
    ASSERT_EQ(fs.pread(fd, MutByteView(buf.data(), buf.size()), kChunk * 3 + 100),
              static_cast<std::int64_t>(buf.size()));
    EXPECT_DOUBLE_EQ(clock.now_sec(), 2.0);

    // Materializing the remaining 14 chunks on 4 threads costs the parallel
    // makespan: ceil(14/4) = 4 chunk-batches, not 14 serial seconds.
    ASSERT_EQ(fs.materialize(fd), 0);
    EXPECT_DOUBLE_EQ(clock.now_sec(), 6.0);

    // Fully warm: open/read/close never touches the decompress budget again
    // (the prefetcher-warmed double-charge regression).
    fs.close(fd);
    const auto got = posixfs::read_file(fs, "big");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, data);
    EXPECT_DOUBLE_EQ(clock.now_sec(), 6.0);
  });
}

TEST(FanStoreIntegrationTest, PrefetchWarmedChunkedFileChargedOnce) {
  constexpr std::size_t kChunk = std::size_t{64} << 10;
  const Bytes data = testdata::runs_and_noise(std::size_t{1} << 19, 32);  // 8 chunks
  mpi::run_world(1, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.clock = &clock;
    opt.fs.decode_threads = 2;
    opt.fs.cost.read_path.per_op_s = 0;
    opt.fs.cost.read_path.metadata_op_s = 0;
    opt.fs.cost.read_path.bandwidth_bps = 1e30;
    Instance inst(comm, opt);
    inst.load_partition_blob(
        as_view(make_partition({{"w", data}}, "chunked-64k+lz4hc")), 0);
    inst.exchange_metadata();
    const auto inner = compress::Registry::instance().id_by_name("lz4hc");
    simnet::CodecSpeedTable::shared().set_decompress_bps(
        inner, static_cast<double>(kChunk));

    // Warm (the prefetcher's path): 8 chunks on 2 threads = 4 batches.
    ASSERT_TRUE(inst.fs().warm_file("w"));
    EXPECT_DOUBLE_EQ(clock.now_sec(), 4.0);

    // The training thread's open + read must charge zero extra decode time.
    const auto got = posixfs::read_file(inst.fs(), "w");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, data);
    EXPECT_DOUBLE_EQ(clock.now_sec(), 4.0);
  });
}

TEST(FanStoreIntegrationTest, StatsReportMentionsActivity) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    Instance inst(comm, {});
    const Bytes data = testdata::text_like(2000, 2);
    inst.load_partition_blob(as_view(make_partition({{"f", data}}, "lz4")), 0);
    inst.exchange_metadata();
    (void)posixfs::read_file(inst.fs(), "f");
    const std::string report = inst.stats_report();
    EXPECT_NE(report.find("opens=1"), std::string::npos) << report;
    EXPECT_NE(report.find("local=1"), std::string::npos) << report;
    EXPECT_NE(report.find("backend 1 objs"), std::string::npos) << report;
  });
}

TEST(RetryPolicyTest, ValidateRejectsBadConfigs) {
  RetryPolicy p;
  EXPECT_NO_THROW(p.validate());
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.base_delay_ms = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.base_delay_ms = 10;
  p.max_delay_ms = 5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = RetryPolicy{};
  p.jitter = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.jitter = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RetryPolicyTest, ExponentialGrowthCapsWithoutJitter) {
  RetryPolicy p;
  p.jitter = 0.0;
  p.base_delay_ms = 2;
  p.max_delay_ms = 16;
  EXPECT_EQ(p.delay_ms(1, 0), 2);
  EXPECT_EQ(p.delay_ms(2, 0), 4);
  EXPECT_EQ(p.delay_ms(3, 0), 8);
  EXPECT_EQ(p.delay_ms(4, 0), 16);
  EXPECT_EQ(p.delay_ms(5, 0), 16);   // hard cap
  EXPECT_EQ(p.delay_ms(40, 0), 16);  // no overflow past the cap
  p.base_delay_ms = 0;
  EXPECT_EQ(p.delay_ms(3, 0), 0);  // backoff disabled
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy p;
  p.jitter = 0.5;
  p.base_delay_ms = 8;
  p.max_delay_ms = 64;
  bool salt_matters = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const int full = std::min(p.max_delay_ms, p.base_delay_ms << (attempt - 1));
    for (const std::uint64_t salt : {0ull, 1ull, 0xFEEDull}) {
      const int d = p.delay_ms(attempt, salt);
      // Same (seed, salt, attempt) -> same delay, always within
      // [delay * (1 - jitter), delay].
      EXPECT_EQ(d, p.delay_ms(attempt, salt));
      EXPECT_GE(d, full / 2) << attempt;
      EXPECT_LE(d, full) << attempt;
    }
    if (p.delay_ms(attempt, 1) != p.delay_ms(attempt, 2)) salt_matters = true;
  }
  EXPECT_TRUE(salt_matters);
}

TEST(FanStoreOptionsTest, NegativeTimeoutAndBadRetryAreRejected) {
  mpi::run_world(1, [&](mpi::Comm& comm) {
    {
      Instance::Options opt;
      opt.fs.fetch_timeout_ms = -1;
      EXPECT_THROW(Instance inst(comm, opt), std::invalid_argument);
    }
    {
      Instance::Options opt;
      opt.fs.failover_hops = -1;
      EXPECT_THROW(Instance inst(comm, opt), std::invalid_argument);
    }
    {
      Instance::Options opt;
      opt.fs.retry.max_attempts = 0;
      EXPECT_THROW(Instance inst(comm, opt), std::invalid_argument);
    }
  });
}

TEST(FanStoreOptionsTest, ZeroTimeoutMeansWaitForever) {
  // fetch_timeout_ms == 0 is the explicit "no timeout" mode: the fetch
  // blocks until the daemon answers (no failover, no retry bookkeeping),
  // even when the answer takes far longer than any finite default.
  const Bytes data = testdata::text_like(3000, 3);
  mpi::run_world(2, [&](mpi::Comm& comm) {
    Instance::Options opt;
    opt.fs.fetch_timeout_ms = 0;
    Instance inst(comm, opt);
    if (comm.rank() == 1) {
      inst.load_partition_blob(as_view(make_partition({{"f", data}}, "lz4")), 0, 1);
    }
    inst.exchange_metadata();
    if (comm.rank() == 1) {
      // Start the owner's daemon only after a delay: a timed fetch with a
      // short window would have given up; the no-timeout fetch must wait.
      std::this_thread::sleep_for(std::chrono::milliseconds(80));
      inst.start_daemon();
    }
    if (comm.rank() == 0) {
      const auto got = posixfs::read_file(inst.fs(), "f");
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, data);
      EXPECT_EQ(inst.metrics().counter("retry.timeouts").value(), 0u);
      EXPECT_EQ(inst.fs().stats().failovers, 0u);
    }
    comm.barrier();
    inst.stop();
  });
}

}  // namespace
}  // namespace fanstore::core
