# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("compress")
subdirs("format")
subdirs("posixfs")
subdirs("mpi")
subdirs("simnet")
subdirs("core")
subdirs("prep")
subdirs("select")
subdirs("dlsim")
subdirs("intercept")
subdirs("ipc")
