// The contract the cluster layer has with a rank's local metadata store
// (implemented by core::MetadataStore): the namespace is partitioned into a
// fixed number of shards by stable path hash, entries carry a
// (version, writer) pair so replicated writes resolve by deterministic
// last-writer-wins instead of owner forwarding, and each shard exposes an
// order-independent digest so anti-entropy can tell "identical" from
// "pull me" without moving bytes.
//
// The interface lives here (not in core/) so the cluster library depends
// only on leaf libraries; core implements it and links cluster.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "format/file_stat.hpp"
#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"

namespace fanstore::cluster {

/// A metadata entry with its conflict-resolution version. Replicas apply
/// the entry with the lexicographically larger (version, writer) — every
/// replica reaches the same winner regardless of delivery order. Version 0
/// marks a locally loaded, never-replicated entry.
struct VersionedStat {
  format::FileStat stat;
  std::uint64_t version = 0;
  std::uint32_t writer = 0;

  /// True when this entry beats `other` under deterministic LWW.
  bool wins_over(const VersionedStat& other) const {
    if (version != other.version) return version > other.version;
    return writer > other.writer;
  }
};

/// Shard assignment: a pure function of the path bytes and the (fixed)
/// shard count, identical on every rank. Membership changes move whole
/// shards between owners; they never re-split paths.
std::uint32_t shard_of(std::string_view path, std::uint32_t nshards);

/// Per-shard view over a rank's local metadata. Implementations are
/// internally synchronized (the cluster service thread and application
/// threads call concurrently).
class ShardStore {
 public:
  virtual ~ShardStore() = default;

  /// Applies `entry` iff it wins over (or first-inserts) the current entry
  /// for `path`. Returns true when the store changed.
  virtual bool insert_versioned(const std::string& path,
                                const VersionedStat& entry) = 0;

  /// The versioned entry for a *file* path (directories are synthesized,
  /// not stored, and have no version).
  virtual std::optional<VersionedStat> lookup_versioned(
      const std::string& path) const = 0;

  /// Plain stat lookup including synthesized directory entries — what a
  /// remote metadata query actually serves.
  virtual std::optional<format::FileStat> lookup_any(
      const std::string& path) const = 0;

  /// Immediate children of `dir` known locally, and whether `dir` is a
  /// known directory — the inputs to a sharded listing union.
  virtual std::vector<posixfs::Dirent> list_local(const std::string& dir) const = 0;
  virtual bool dir_exists_local(const std::string& dir) const = 0;

  /// Order-independent digest of shard `shard` (0 when empty): XOR-fold of
  /// per-entry mixes, so replicas agree regardless of insertion order.
  virtual std::uint64_t shard_digest(std::uint32_t shard,
                                     std::uint32_t nshards) const = 0;

  /// Serializes every entry of one shard (deterministic: sorted by path).
  virtual Bytes serialize_shard(std::uint32_t shard,
                                std::uint32_t nshards) const = 0;

  /// Merges a serialize_shard() blob; returns how many entries won their
  /// LWW race and were applied.
  virtual std::size_t merge_shard(ByteView blob) = 0;

  /// Drops every entry of one shard — except entries whose data lives in
  /// this rank's backend (`keep_owner_rank`), which stay as a
  /// non-authoritative local convenience copy. -1 keeps nothing.
  virtual void drop_shard(std::uint32_t shard, std::uint32_t nshards,
                          int keep_owner_rank) = 0;

  /// Sorted file paths of one shard.
  virtual std::vector<std::string> shard_paths(std::uint32_t shard,
                                               std::uint32_t nshards) const = 0;
};

}  // namespace fanstore::cluster
