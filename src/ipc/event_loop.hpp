// Event-driven serving core (DESIGN.md §11):
//
//  - EventLoop: one epoll instance + one eventfd, run by exactly one
//    thread. Fd handlers and all per-connection state are owned by that
//    thread; other threads communicate only through defer(), which
//    enqueues a closure and wakes the loop through the eventfd.
//  - BlockerPool: fixed-size pool for blocking work (filesystem/backend
//    calls) so the loops never stall — modeled on rethinkdb's
//    blocker_pool. A job computes off-loop and posts its completion back
//    with EventLoop::defer().
//
// Wakeup protocol (covered by fanstore-lint's eventfd-wakeup rule):
// defer() appends under pending_mu_, then arms the wakeup with
// wake_armed_.exchange(true) — only the arming transition writes the
// eventfd, so N concurrent producers cost one syscall. The loop thread
// disarms with exchange(false) *before* swapping the queue out: a producer
// that appends after the swap observes armed == false and re-wakes the
// loop, so no task is ever stranded. Plain .store() on the armed flag
// would reintroduce the lost-wakeup race; the lint rule bans it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace fanstore::ipc {

class EventLoop {
 public:
  /// Handler for fd readiness; receives the epoll event mask. Runs on the
  /// loop thread.
  using FdHandler = std::function<void(std::uint32_t)>;

  /// `metrics` receives the "ipc.loop_*" instruments (may be null).
  explicit EventLoop(obs::MetricsRegistry* metrics = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Runs until stop(); call from exactly one (owning) thread.
  void run();

  /// Thread-safe: makes run() return after the current dispatch round.
  void stop();

  /// Thread-safe: runs `fn` on the loop thread (immediately queued; the
  /// eventfd wakeup guarantees prompt dispatch even from other threads).
  void defer(std::function<void()> fn) EXCLUDES(pending_mu_);

  // --- Loop-thread-only fd registry -----------------------------------
  /// Registers `fd` with the given epoll interest mask. The handler stays
  /// installed until del_fd(); it may del_fd() itself.
  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  /// Periodic tick on the loop thread (idle sweeps); 0 disables.
  void set_tick(int interval_ms, std::function<void()> on_tick);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == loop_tid_.load(std::memory_order_acquire);
  }

 private:
  void drain_pending() EXCLUDES(pending_mu_);
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> wake_armed_{false};
  std::atomic<std::thread::id> loop_tid_{};

  sync::Mutex pending_mu_{"ipc.event_loop.pending_mu"};
  std::vector<std::function<void()>> pending_ GUARDED_BY(pending_mu_);

  // Loop-thread-only state (no lock: single-owner by construction).
  // Handlers are held by shared_ptr so dispatch can pin one cheaply while
  // the handler del_fd()s itself or a peer in the same batch.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  int tick_ms_ = 0;
  std::function<void()> on_tick_;

  obs::Counter* wakeups_ = nullptr;
  obs::Histogram* dispatch_us_ = nullptr;
};

/// Fixed-size pool of threads for blocking work. submit() never blocks the
/// caller (unbounded FIFO queue — backpressure belongs to the server's
/// per-connection read pausing, not here). The destructor and drain() wait
/// for every accepted job to finish.
class BlockerPool {
 public:
  /// `metrics` receives "ipc.blocker_*" instruments (may be null).
  explicit BlockerPool(std::size_t n_threads,
                       obs::MetricsRegistry* metrics = nullptr);
  ~BlockerPool();

  BlockerPool(const BlockerPool&) = delete;
  BlockerPool& operator=(const BlockerPool&) = delete;

  /// Enqueues a job; jobs must not throw.
  void submit(std::function<void()> job) EXCLUDES(mu_);

  /// Blocks until the queue is empty and no job is running.
  void drain() EXCLUDES(mu_);

  std::size_t size() const { return threads_.size(); }

 private:
  void worker_loop() EXCLUDES(mu_);

  struct Job {
    std::function<void()> fn;
    std::uint64_t submit_us = 0;
  };

  sync::Mutex mu_{"ipc.blocker_pool.mu"};
  sync::AnnotatedCondVar cv_job_;
  sync::AnnotatedCondVar cv_idle_;
  std::deque<Job> queue_ GUARDED_BY(mu_);
  std::size_t in_flight_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // written in ctor, joined in dtor

  obs::Gauge* depth_ = nullptr;
  obs::Histogram* wait_us_ = nullptr;
};

}  // namespace fanstore::ipc
