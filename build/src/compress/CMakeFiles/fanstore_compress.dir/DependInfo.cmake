
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bwt.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/bwt.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/bwt.cpp.o.d"
  "/root/repo/src/compress/composite.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/composite.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/composite.cpp.o.d"
  "/root/repo/src/compress/deflate_lite.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/deflate_lite.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/deflate_lite.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/huffman_codec.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/huffman_codec.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/huffman_codec.cpp.o.d"
  "/root/repo/src/compress/lossy.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lossy.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lossy.cpp.o.d"
  "/root/repo/src/compress/lz4.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lz4.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lz4.cpp.o.d"
  "/root/repo/src/compress/lzf.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lzf.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lzf.cpp.o.d"
  "/root/repo/src/compress/lzma_lite.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lzma_lite.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lzma_lite.cpp.o.d"
  "/root/repo/src/compress/lzss.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lzss.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lzss.cpp.o.d"
  "/root/repo/src/compress/lzsse8.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lzsse8.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lzsse8.cpp.o.d"
  "/root/repo/src/compress/lzw.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/lzw.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/lzw.cpp.o.d"
  "/root/repo/src/compress/rans.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/rans.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/rans.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/registry.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/registry.cpp.o.d"
  "/root/repo/src/compress/store_rle.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/store_rle.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/store_rle.cpp.o.d"
  "/root/repo/src/compress/suffix_array.cpp" "src/compress/CMakeFiles/fanstore_compress.dir/suffix_array.cpp.o" "gcc" "src/compress/CMakeFiles/fanstore_compress.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
