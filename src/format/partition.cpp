#include "format/partition.hpp"

#include <cstring>
#include <stdexcept>

#include "compress/registry.hpp"
#include "util/crc32.hpp"

namespace fanstore::format {

namespace {
constexpr std::size_t kRecordHeader = kPathBytes + 2 + kStatBytes + 8;
}

void PartitionWriter::add(FileRecord record) {
  if (record.path.empty() || record.path.size() >= kPathBytes) {
    throw std::invalid_argument("partition: path empty or longer than 255 bytes: " +
                                record.path);
  }
  if (record.stat.compressed_size != record.data.size()) {
    throw std::invalid_argument("partition: stat.compressed_size mismatch for " +
                                record.path);
  }
  records_.push_back(std::move(record));
}

std::size_t PartitionWriter::byte_size() const {
  std::size_t total = 4;
  for (const auto& r : records_) total += kRecordHeader + r.data.size();
  return total;
}

Bytes PartitionWriter::serialize() const {
  Bytes out;
  out.reserve(byte_size());
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) {
    const std::size_t rec_start = out.size();
    out.resize(out.size() + kPathBytes, 0);
    std::memcpy(out.data() + rec_start, r.path.data(), r.path.size());
    append_le<std::uint16_t>(out, r.compressor);
    FileStat stat = r.stat;
    stat.partition_offset = rec_start;  // self-locating record
    out.resize(out.size() + kStatBytes);
    stat.serialize(out.data() + out.size() - kStatBytes);
    append_le<std::uint64_t>(out, r.data.size());
    out.insert(out.end(), r.data.begin(), r.data.end());
  }
  return out;
}

std::vector<FileRecordView> scan_partition(ByteView blob) {
  if (blob.size() < 4) throw PartitionFormatError("partition: too small for header");
  const std::uint32_t num_files = load_le<std::uint32_t>(blob.data());
  std::vector<FileRecordView> views;
  views.reserve(num_files);
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < num_files; ++i) {
    if (pos + kRecordHeader > blob.size()) {
      throw PartitionFormatError("partition: truncated record header at file " +
                                 std::to_string(i));
    }
    const char* path_field = reinterpret_cast<const char*>(blob.data() + pos);
    const std::size_t path_len = strnlen(path_field, kPathBytes);
    if (path_len == 0 || path_len >= kPathBytes) {
      throw PartitionFormatError("partition: bad path in record " + std::to_string(i));
    }
    FileRecordView v;
    v.path = std::string_view(path_field, path_len);
    pos += kPathBytes;
    v.compressor = load_le<std::uint16_t>(blob.data() + pos);
    pos += 2;
    v.stat = FileStat::deserialize(blob.data() + pos);
    pos += kStatBytes;
    const std::uint64_t dsize = load_le<std::uint64_t>(blob.data() + pos);
    pos += 8;
    if (pos + dsize > blob.size()) {
      throw PartitionFormatError("partition: truncated data for " + std::string(v.path));
    }
    if (v.stat.compressed_size != dsize) {
      throw PartitionFormatError("partition: size field mismatch for " +
                                 std::string(v.path));
    }
    v.data = blob.subspan(pos, dsize);
    pos += dsize;
    views.push_back(v);
  }
  if (pos != blob.size()) {
    throw PartitionFormatError("partition: trailing bytes after last record");
  }
  return views;
}

FileRecord make_record(std::string path, const compress::Compressor& codec,
                       compress::CompressorId codec_id, ByteView raw) {
  FileRecord r;
  r.path = std::move(path);
  r.compressor = codec_id;
  r.data = codec.compress(raw);
  r.stat.size = raw.size();
  r.stat.compressed_size = r.data.size();
  r.stat.crc = crc32(raw);
  return r;
}

Bytes extract_record(const FileRecordView& view) {
  const compress::Compressor* codec =
      compress::Registry::instance().by_id(view.compressor);
  if (codec == nullptr) {
    throw PartitionFormatError("partition: unknown compressor id " +
                               std::to_string(view.compressor) + " for " +
                               std::string(view.path));
  }
  Bytes raw = codec->decompress(view.data, view.stat.size);
  if (crc32(as_view(raw)) != view.stat.crc) {
    throw PartitionFormatError("partition: CRC mismatch for " + std::string(view.path));
  }
  return raw;
}

}  // namespace fanstore::format
