file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fsperf.dir/bench_table6_fsperf.cpp.o"
  "CMakeFiles/bench_table6_fsperf.dir/bench_table6_fsperf.cpp.o.d"
  "bench_table6_fsperf"
  "bench_table6_fsperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fsperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
