// Table V: the application-side inputs to the compressor-selection
// algorithm (T_iter, C_batch, S_batch), taken from the application models
// and cross-checked against the dataset generators.
#include "bench/bench_util.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"

using namespace fanstore;

int main() {
  bench::section("Table V: inputs to the compressor selection algorithm");
  bench::Table table({"App", "Cluster", "IO", "T_iter", "C_batch", "S_batch (raw)"});
  for (const auto& c : {dlsim::srgan_gtx(), dlsim::srgan_v100(), dlsim::frnn_cpu()}) {
    table.row({c.app, c.cluster, c.profile.async_io ? "async" : "sync",
               bench::fmt("%.0f ms", c.profile.t_iter_s * 1000),
               bench::fmt_int(c.profile.c_batch_files),
               c.profile.s_batch_raw_mb >= 1
                   ? bench::fmt("%.0f MB", c.profile.s_batch_raw_mb)
                   : bench::fmt("%.0f KB", c.profile.s_batch_raw_mb * 1000)});
  }
  table.print();
  std::printf("\n(paper Table V: SRGAN/GTX sync 9689 ms 256 410 MB;"
              " SRGAN/V100 sync 2416 ms 256 410 MB;"
              " FRNN/CPU async 655 ms 512 615 KB)\n");

  bench::section("Cross-check: S_batch implied by paper-scale dataset statistics");
  bench::Table x({"App", "dataset", "paper avg file", "C_batch x avg"});
  for (const auto& c : {dlsim::srgan_gtx(), dlsim::frnn_cpu()}) {
    const auto spec = dlsim::dataset_spec(c.dataset);
    x.row({c.app, spec.name, bench::fmt("%.1f KB", spec.paper_avg_file_bytes / 1e3),
           bench::fmt("%.1f MB",
                      c.profile.c_batch_files * spec.paper_avg_file_bytes / 1e6)});
  }
  x.print();
  std::printf("\n(SRGAN: 256 x 1.6 MB = 410 MB matches Table V exactly;\n"
              " FRNN: 512 x 1.2 KB = 0.6 MB matches the 615 KB entry.)\n");
  return 0;
}
