file(REMOVE_RECURSE
  "libfanstore_dlsim.a"
)
