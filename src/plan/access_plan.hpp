// Clairvoyant access plan (DESIGN.md §10).
//
// The trainer's seeded epoch shuffle makes every rank's *entire* future
// access order known before the first read (NoPFS's key observation, see
// PAPERS.md). AccessPlan replays the trainer's exact schedule — same
// Fisher-Yates shuffle, same carried RNG, same global-batch slicing — into
// one flat multi-epoch sequence of this rank's reads, then answers two
// questions cheaply and lock-free:
//
//   * "how far ahead in the schedule is the next use of <path>?"
//     (core::EvictionPolicy::next_use_distance — exact-future-reuse /
//     Belady eviction for PlainCache)
//   * "which paths come next?" (the PrefetchController's lookahead and
//     cross-rank staging window)
//
// A cursor tracks schedule progress: the trainer calls record_access()
// after each file read; concurrent readers (cache shards mid-eviction, the
// controller) observe it with one relaxed atomic load. Divergence between
// the plan and the actual read stream is counted in "plan.mispredicts" —
// with the shared epoch_shuffle() helper below it stays zero by
// construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/cache.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace fanstore::plan {

/// Deterministic Fisher-Yates shuffle shared by dlsim::run_training and
/// AccessPlan::PlanOptions replay — one definition, so the plan can never
/// drift from the loop it predicts.
void epoch_shuffle(std::vector<std::string>& files, Rng& rng);

/// The schedule parameters of dlsim::TrainerOptions that determine the
/// access order. Must match the trainer run the plan is installed into.
struct PlanOptions {
  std::uint64_t seed = 1;
  int epochs = 1;
  std::size_t batch_per_rank = 8;
  std::size_t max_iterations = 0;  // 0 = run full epochs
  /// World shape for global_shuffle slicing (nranks = comm->size(),
  /// rank = comm->rank()); 1/0 for a solo trainer.
  int nranks = 1;
  int rank = 0;
  bool global_shuffle = false;
};

class AccessPlan final : public core::EvictionPolicy {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  /// Builds the plan by replaying the trainer's schedule over `files`
  /// (the same list, in the same order, that run_training will receive).
  /// `metrics` receives "plan.mispredicts"; nullptr uses the process-global
  /// registry.
  AccessPlan(const std::vector<std::string>& files, const PlanOptions& opt,
             obs::MetricsRegistry* metrics = nullptr);

  /// Builds a plan from an explicit access sequence (tests, benches, or
  /// schedules not produced by the trainer).
  explicit AccessPlan(std::vector<std::string> sequence,
                      obs::MetricsRegistry* metrics = nullptr);

  AccessPlan(const AccessPlan&) = delete;
  AccessPlan& operator=(const AccessPlan&) = delete;

  /// Total accesses in the schedule.
  std::size_t size() const { return seq_.size(); }

  /// Index of the next not-yet-performed access (== accesses recorded).
  std::size_t position() const {
    return cursor_.load(std::memory_order_acquire);
  }

  /// The path of schedule entry `i` (i < size()).
  const std::string& path_at(std::size_t i) const { return *seq_[i]; }

  /// Advances the cursor past one performed access. Called by the trainer
  /// (single producer) after each file read; counts "plan.mispredicts"
  /// when `path` differs from the scheduled entry (the plan stays usable —
  /// distances just degrade from exact to approximate).
  void record_access(std::string_view path);

  /// First schedule index >= `pos` that accesses `path`; npos if never.
  std::size_t next_use_at(const std::string& path, std::size_t pos) const;

  /// Total scheduled accesses of `path` (hot-object ranking).
  std::size_t access_count(const std::string& path) const;

  /// The `n` most-accessed paths in the schedule, hottest first (ties
  /// broken by first appearance — deterministic).
  std::vector<std::string> hottest(std::size_t n) const;

  std::uint64_t mispredicts() const { return mispredicts_->value(); }

  // --- core::EvictionPolicy ---
  /// Accesses remaining before `path` is next needed, measured from the
  /// current cursor; kNever for paths outside (or exhausted in) the plan,
  /// which therefore evict first.
  std::uint64_t next_use_distance(const std::string& path) const override;

 private:
  void index_sequence();

  /// Interned path storage; seq_ points into it so the flat multi-epoch
  /// schedule costs one pointer per access, not one string.
  std::vector<std::unique_ptr<std::string>> paths_;
  std::vector<const std::string*> seq_;  // access order, all epochs flat
  /// Per-path ascending schedule positions (binary-searched against the
  /// cursor for next-use queries). Immutable after construction.
  std::unordered_map<std::string_view, std::vector<std::size_t>> positions_;

  std::atomic<std::size_t> cursor_{0};
  obs::Counter* mispredicts_ = nullptr;
};

}  // namespace fanstore::plan
