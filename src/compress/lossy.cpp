#include "compress/lossy.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "compress/codecs.hpp"

namespace fanstore::compress {

namespace {
// Quantization codes are zig-zagged into u16; this code marks "outlier,
// stored verbatim in the literal stream".
constexpr std::uint16_t kOutlier = 0xFFFF;

std::uint16_t zigzag16(std::int32_t v) {
  return static_cast<std::uint16_t>((v << 1) ^ (v >> 31));
}

std::int32_t unzigzag16(std::uint16_t z) {
  return static_cast<std::int32_t>(z >> 1) ^ -static_cast<std::int32_t>(z & 1);
}
}  // namespace

LossyFloatCompressor::LossyFloatCompressor(double abs_error) : abs_error_(abs_error) {
  if (!(abs_error > 0)) {
    throw std::invalid_argument("LossyFloatCompressor: abs_error must be > 0");
  }
}

Bytes LossyFloatCompressor::compress(std::span<const float> values) const {
  // Stream 1: u16 codes (zig-zag quantized prediction errors / outlier
  // marker). Stream 2: verbatim outlier floats.
  Bytes codes;
  codes.reserve(values.size() * 2);
  Bytes literals;
  const double step = 2.0 * abs_error_;
  double prev = 0.0;  // predictor state: last *reconstructed* value
  for (const float v : values) {
    const double err = static_cast<double>(v) - prev;
    const double qd = std::nearbyint(err / step);
    const bool in_range = std::abs(qd) < 32000.0;
    if (in_range) {
      const auto q = static_cast<std::int32_t>(qd);
      // Validate against the float-rounded value the decoder will emit;
      // near large magnitudes a float ulp can exceed the bound, in which
      // case the value must go to the literal stream.
      const float recon = static_cast<float>(prev + q * step);
      if (std::abs(static_cast<double>(recon) - static_cast<double>(v)) <=
          abs_error_) {
        append_le<std::uint16_t>(codes, zigzag16(q));
        prev = static_cast<double>(recon);
        continue;
      }
    }
    append_le<std::uint16_t>(codes, kOutlier);
    const auto bits = std::bit_cast<std::uint32_t>(v);
    append_le<std::uint32_t>(literals, bits);
    prev = static_cast<double>(v);
  }
  // Entropy-pack the code stream (rANS); literals stay raw.
  static const auto entropy = make_rans(256 * 1024);
  const Bytes packed_codes = entropy->compress(as_view(codes));
  Bytes out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(codes.size()));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(packed_codes.size()));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(literals.size()));
  out.insert(out.end(), packed_codes.begin(), packed_codes.end());
  out.insert(out.end(), literals.begin(), literals.end());
  return out;
}

std::vector<float> LossyFloatCompressor::decompress(ByteView packed,
                                                    std::size_t count) const {
  if (packed.size() < 12) throw CorruptDataError("lossy: truncated header");
  const std::uint32_t codes_len = load_le<std::uint32_t>(packed.data());
  const std::uint32_t packed_len = load_le<std::uint32_t>(packed.data() + 4);
  const std::uint32_t lit_len = load_le<std::uint32_t>(packed.data() + 8);
  if (codes_len != count * 2) throw CorruptDataError("lossy: count mismatch");
  if (12 + std::size_t{packed_len} + lit_len != packed.size()) {
    throw CorruptDataError("lossy: size mismatch");
  }
  static const auto entropy = make_rans(256 * 1024);
  const Bytes codes = entropy->decompress(packed.subspan(12, packed_len), codes_len);
  const ByteView literals = packed.subspan(12 + packed_len, lit_len);

  std::vector<float> out;
  out.reserve(count);
  const double step = 2.0 * abs_error_;
  double prev = 0.0;
  std::size_t lit_pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint16_t code = load_le<std::uint16_t>(codes.data() + 2 * i);
    if (code == kOutlier) {
      if (lit_pos + 4 > literals.size()) throw CorruptDataError("lossy: missing literal");
      const auto bits = load_le<std::uint32_t>(literals.data() + lit_pos);
      lit_pos += 4;
      const float v = std::bit_cast<float>(bits);
      out.push_back(v);
      prev = static_cast<double>(v);
    } else {
      // Mirror the encoder exactly: round through float, then continue
      // predicting from the rounded value.
      const float recon = static_cast<float>(prev + unzigzag16(code) * step);
      out.push_back(recon);
      prev = static_cast<double>(recon);
    }
  }
  return out;
}

}  // namespace fanstore::compress
