# Empty compiler generated dependencies file for fanstore_select.
# This may be replaced when dependencies are built.
