#include "core/fanstore_fs.hpp"

#include <algorithm>
#include <functional>

#include "compress/registry.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"

namespace fanstore::core {

FanStoreFs::FanStoreFs(mpi::Comm comm, MetadataStore* meta,
                       CompressedBackend* backend, Options options)
    : comm_(comm),
      meta_(meta),
      backend_(backend),
      options_(options),
      cache_(options.cache_bytes) {}

int FanStoreFs::home_rank(std::string_view path) const {
  return static_cast<int>(std::hash<std::string_view>{}(path) %
                          static_cast<std::size_t>(comm_.size()));
}

std::optional<Blob> FanStoreFs::fetch_from(int rank, const std::string& path,
                                           const format::FileStat& stat) {
  const std::uint32_t reply_tag =
      static_cast<std::uint32_t>(kReplyTagBase) +
      (reply_seq_.fetch_add(1, std::memory_order_relaxed) % 1000000u);
  comm_.send(rank, kTagFetch, encode_fetch_request(reply_tag, path));
  std::optional<mpi::Message> reply;
  if (options_.fetch_timeout_ms > 0) {
    reply = comm_.recv_timeout(rank, static_cast<int>(reply_tag),
                               options_.fetch_timeout_ms);
    if (!reply) {
      FANSTORE_LOG_WARN("fanstore rank ", comm_.rank(), ": fetch of ", path,
                        " from rank ", rank, " timed out");
      return std::nullopt;  // presumed-dead daemon: caller fails over
    }
  } else {
    reply = comm_.recv(rank, static_cast<int>(reply_tag));
  }
  if (reply->payload.size() < 11 || reply->payload[0] != kFetchOk) {
    return std::nullopt;  // not found / malformed on that rank
  }
  Blob fetched;
  fetched.compressor = load_le<std::uint16_t>(reply->payload.data() + 1);
  const std::uint64_t raw_size = load_le<std::uint64_t>(reply->payload.data() + 3);
  fetched.data.assign(reply->payload.begin() + 11, reply->payload.end());
  if (raw_size != stat.size) return std::nullopt;
  charge(options_.cost.network.transfer_time(fetched.data.size(), options_.cost.nodes));
  {
    sync::MutexLock lk(stats_mu_);
    stats_.remote_fetches++;
    stats_.remote_bytes += fetched.data.size();
  }
  return fetched;
}

Bytes FanStoreFs::load_plain(const std::string& path, const format::FileStat& stat) {
  std::optional<Blob> blob = backend_->get(path);
  if (!blob && static_cast<int>(stat.owner_rank) != comm_.rank()) {
    // Remote fetch from the owner's daemon (Fig. 2, remote branch); on
    // timeout or miss, fail over around the ring where replicate_ring()
    // may have placed copies.
    const int owner = static_cast<int>(stat.owner_rank);
    for (int hop = 0; hop <= options_.failover_hops && !blob; ++hop) {
      const int candidate = (owner + hop) % comm_.size();
      if (candidate == comm_.rank()) continue;  // local backend already missed
      blob = fetch_from(candidate, path, stat);
      if (blob && hop > 0) {
        sync::MutexLock lk(stats_mu_);
        stats_.failovers++;
      }
    }
    if (!blob) {
      throw std::runtime_error("fanstore: remote fetch failed for " + path);
    }
  } else if (blob) {
    sync::MutexLock lk(stats_mu_);
    stats_.local_misses++;
  }
  if (!blob) {
    throw std::runtime_error("fanstore: owner rank has no data for " + path);
  }
  const compress::Compressor* codec =
      compress::Registry::instance().by_id(blob->compressor);
  if (codec == nullptr) {
    throw std::runtime_error("fanstore: unknown compressor id for " + path);
  }
  Bytes plain = codec->decompress(as_view(blob->data), stat.size);
  if (stat.crc != 0 && crc32(as_view(plain)) != stat.crc) {
    throw std::runtime_error("fanstore: CRC mismatch for " + path);
  }
  if (options_.cost.charge_decompress && blob->compressor != 0) {
    charge(simnet::CodecSpeedTable::shared().decompress_seconds(blob->compressor,
                                                                plain.size()));
  }
  return plain;
}

int FanStoreFs::open(std::string_view path_in, posixfs::OpenMode mode) {
  const std::string path = posixfs::normalize_path(path_in);
  if (path.empty()) return -EINVAL;
  charge_metadata();

  if (mode == posixfs::OpenMode::kWrite) {
    // Multi-read/single-write model: write-once, one writer at a time.
    if (meta_->lookup(path) && meta_->lookup(path)->type == format::FileType::kRegular) {
      return -EEXIST;
    }
    sync::MutexLock lk(mu_);
    if (!writing_.insert(path).second) return -EBUSY;
    const int fd = next_fd_++;
    open_files_[fd] = OpenFile{path, mode, nullptr, {}, 0};
    return fd;
  }

  const auto stat = meta_->lookup(path);
  if (!stat) return -ENOENT;
  if (stat->type == format::FileType::kDirectory) return -EISDIR;
  charge(options_.cost.read_path.per_op_s);

  std::shared_ptr<const Bytes> pinned;
  bool was_miss = false;
  try {
    pinned = cache_.acquire(path, [&] { return load_plain(path, *stat); }, &was_miss);
  } catch (const std::exception& e) {
    FANSTORE_LOG_WARN("fanstore open(", path, "): ", e.what());
    return -EIO;
  }
  {
    sync::MutexLock lk(stats_mu_);
    stats_.opens++;
    if (!was_miss) stats_.cache_hits++;
  }
  sync::MutexLock lk(mu_);
  const int fd = next_fd_++;
  open_files_[fd] = OpenFile{path, mode, std::move(pinned), {}, 0};
  return fd;
}

int FanStoreFs::close(int fd) {
  OpenFile of;
  {
    sync::MutexLock lk(mu_);
    const auto it = open_files_.find(fd);
    if (it == open_files_.end()) return -EBADF;
    of = std::move(it->second);
    open_files_.erase(it);
  }
  if (of.mode == posixfs::OpenMode::kRead) {
    cache_.release(of.path);
    return 0;
  }
  // Write close: dump to the local backend and forward metadata (§V-D).
  const compress::Compressor* codec =
      compress::Registry::instance().by_id(options_.write_compressor);
  if (codec == nullptr) return -EIO;
  Blob blob;
  blob.compressor = options_.write_compressor;
  blob.data = codec->compress(as_view(of.buffer));

  format::FileStat stat;
  stat.size = of.buffer.size();
  stat.compressed_size = blob.data.size();
  stat.crc = crc32(as_view(of.buffer));
  stat.type = format::FileType::kRegular;
  stat.owner_rank = static_cast<std::uint32_t>(comm_.rank());

  charge(options_.cost.read_path.file_write_time(blob.data.size()));
  backend_->put(of.path, std::move(blob));
  meta_->insert(of.path, stat);
  const int home = home_rank(of.path);
  if (home != comm_.rank()) {
    comm_.send(home, kTagWriteMeta, encode_write_meta(of.path, stat));
    charge(options_.cost.network.transfer_time(of.path.size() + format::kStatBytes,
                                               options_.cost.nodes));
  }
  {
    sync::MutexLock lk(mu_);
    writing_.erase(of.path);
  }
  {
    sync::MutexLock lk(stats_mu_);
    stats_.bytes_written += stat.size;
  }
  return 0;
}

std::int64_t FanStoreFs::read(int fd, MutByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  if (of.mode != posixfs::OpenMode::kRead) return -EBADF;
  const Bytes& data = *of.pinned;
  if (of.offset >= static_cast<std::int64_t>(data.size())) return 0;
  const std::size_t n =
      std::min(buf.size(), data.size() - static_cast<std::size_t>(of.offset));
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(of.offset), n, buf.begin());
  of.offset += static_cast<std::int64_t>(n);
  charge(static_cast<double>(n) / options_.cost.read_path.bandwidth_bps);
  {
    sync::MutexLock slk(stats_mu_);
    stats_.bytes_read += n;
  }
  return static_cast<std::int64_t>(n);
}

std::int64_t FanStoreFs::write(int fd, ByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  if (of.mode != posixfs::OpenMode::kWrite) return -EBADF;
  const auto end = static_cast<std::size_t>(of.offset) + buf.size();
  if (end > of.buffer.size()) of.buffer.resize(end);
  std::copy(buf.begin(), buf.end(),
            of.buffer.begin() + static_cast<std::ptrdiff_t>(of.offset));
  of.offset += static_cast<std::int64_t>(buf.size());
  return static_cast<std::int64_t>(buf.size());
}

std::int64_t FanStoreFs::lseek(int fd, std::int64_t offset, posixfs::Whence whence) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  std::int64_t base = 0;
  switch (whence) {
    case posixfs::Whence::kSet: base = 0; break;
    case posixfs::Whence::kCur: base = of.offset; break;
    case posixfs::Whence::kEnd:
      base = of.mode == posixfs::OpenMode::kRead
                 ? static_cast<std::int64_t>(of.pinned->size())
                 : static_cast<std::int64_t>(of.buffer.size());
      break;
  }
  const std::int64_t pos = base + offset;
  if (pos < 0) return -EINVAL;
  of.offset = pos;
  return pos;
}

int FanStoreFs::stat(std::string_view path_in, format::FileStat* out) {
  const std::string path = posixfs::normalize_path(path_in);
  charge_metadata();
  const auto st = meta_->lookup(path);
  if (!st) return -ENOENT;
  *out = *st;
  return 0;
}

int FanStoreFs::opendir(std::string_view path_in) {
  const std::string path = posixfs::normalize_path(path_in);
  charge_metadata();
  if (!meta_->dir_exists(path)) return -ENOENT;
  auto entries = meta_->list(path);
  sync::MutexLock lk(mu_);
  const int h = next_dir_++;
  open_dirs_[h] = OpenDir{std::move(entries), 0};
  return h;
}

std::optional<posixfs::Dirent> FanStoreFs::readdir(int dir_handle) {
  charge_metadata();
  sync::MutexLock lk(mu_);
  const auto it = open_dirs_.find(dir_handle);
  if (it == open_dirs_.end()) return std::nullopt;
  if (it->second.next >= it->second.entries.size()) return std::nullopt;
  return it->second.entries[it->second.next++];
}

int FanStoreFs::closedir(int dir_handle) {
  sync::MutexLock lk(mu_);
  return open_dirs_.erase(dir_handle) > 0 ? 0 : -EBADF;
}

FanStoreFs::IoStats FanStoreFs::stats() const {
  sync::MutexLock lk(stats_mu_);
  return stats_;
}

}  // namespace fanstore::core
