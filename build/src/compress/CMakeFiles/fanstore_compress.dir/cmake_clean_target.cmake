file(REMOVE_RECURSE
  "libfanstore_compress.a"
)
