file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_appinputs.dir/bench_table5_appinputs.cpp.o"
  "CMakeFiles/bench_table5_appinputs.dir/bench_table5_appinputs.cpp.o.d"
  "bench_table5_appinputs"
  "bench_table5_appinputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_appinputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
