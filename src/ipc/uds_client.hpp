// Client-side Vfs that forwards reads/metadata over the daemon's Unix
// socket — what the LD_PRELOAD interceptor would use inside an unmodified
// training process. Read-only: the multi-read side of FanStore's model
// (writes stay in-process via FanStoreFs).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "posixfs/vfs.hpp"
#include "util/sync.hpp"

namespace fanstore::ipc {

class UdsClientVfs final : public posixfs::Vfs {
 public:
  explicit UdsClientVfs(std::string socket_path);
  ~UdsClientVfs() override;

  UdsClientVfs(const UdsClientVfs&) = delete;
  UdsClientVfs& operator=(const UdsClientVfs&) = delete;

  /// Connects (lazily re-connects after errors); false if the daemon is
  /// not reachable.
  bool connect();

  int open(std::string_view path, posixfs::OpenMode mode) override;
  int close(int fd) override;
  std::int64_t read(int fd, MutByteView buf) override;
  std::int64_t write(int fd, ByteView buf) override;
  std::int64_t lseek(int fd, std::int64_t offset, posixfs::Whence whence) override;
  int stat(std::string_view path, format::FileStat* out) override;
  int opendir(std::string_view path) override;
  std::optional<posixfs::Dirent> readdir(int dir_handle) override;
  int closedir(int dir_handle) override;

 private:
  struct OpenFile {
    std::shared_ptr<const Bytes> data;
    std::int64_t offset = 0;
  };
  struct OpenDir {
    std::vector<posixfs::Dirent> entries;
    std::size_t next = 0;
  };

  /// One request/response round trip (serialized per connection).
  std::optional<Bytes> call(ByteView request) EXCLUDES(io_mu_, mu_);
  bool connect_locked() REQUIRES(io_mu_);

  std::string socket_path_;
  // io_mu_ and mu_ are never held together: every call() round trip
  // finishes before the fd tables are touched.
  sync::Mutex io_mu_{"uds_client.io_mu"};  // serializes socket round trips
  int sock_ GUARDED_BY(io_mu_) = -1;

  sync::Mutex mu_{"uds_client.mu"};  // fd tables
  std::map<int, OpenFile> open_files_ GUARDED_BY(mu_);
  std::map<int, OpenDir> open_dirs_ GUARDED_BY(mu_);
  int next_fd_ GUARDED_BY(mu_) = 3;
  int next_dir_ GUARDED_BY(mu_) = 1;
};

}  // namespace fanstore::ipc
