#include "dlsim/datagen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace fanstore::dlsim {

namespace {

std::uint64_t mix_seed(DatasetKind kind, std::uint64_t index, std::uint64_t seed) {
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(kind);
  s ^= index * 0xC2B2AE3D27D4EB4Full;
  return splitmix64(s);
}

// --- EM micrograph (TIFF-like) --------------------------------------------
// Rows evolve from the previous row by sparse small deltas, producing the
// long byte matches at distance=width that LZ codecs find in real smooth
// micrographs. ~15% of pixels mutate per row.
Bytes gen_em_tif(std::size_t bytes, Rng& rng) {
  constexpr std::size_t kWidth = 512;
  Bytes out;
  out.reserve(bytes + kWidth);
  // Minimal TIFF header: II magic + IFD offset.
  const std::uint8_t header[8] = {'I', 'I', 42, 0, 8, 0, 0, 0};
  out.insert(out.end(), header, header + 8);
  std::vector<std::uint8_t> row(kWidth);
  for (auto& p : row) p = static_cast<std::uint8_t>(96 + rng.next_below(64));
  while (out.size() < bytes) {
    for (std::size_t x = 0; x < kWidth; ++x) {
      if (rng.next_below(100) < 15) {
        row[x] = static_cast<std::uint8_t>(row[x] + rng.next_range(-3, 3));
      }
    }
    out.insert(out.end(), row.begin(), row.end());
  }
  out.resize(bytes);
  return out;
}

// --- Tokamak sensor shot (NPY-like) ---------------------------------------
// float32 channels quantized to 1/64 steps around slowly-drifting
// baselines: the low mantissa bytes are mostly zero, exponents repeat.
Bytes gen_tokamak_npz(std::size_t bytes, Rng& rng) {
  Bytes out;
  out.reserve(bytes + 64);
  const char* header = "\x93NUMPY\x01\x00v\x00{'descr': '<f4', 'shape': (288,)}";
  out.insert(out.end(), header, header + std::strlen(header));
  // 8 channels round-robin, each a drifting baseline.
  float baselines[8];
  for (int ch = 0; ch < 8; ++ch) {
    baselines[ch] = 1.0f + 0.125f * static_cast<float>(ch) +
                    static_cast<float>(rng.next_below(16)) / 64.0f;
  }
  while (out.size() + 4 <= bytes) {
    const std::size_t ch = (out.size() / 4) % 8;
    baselines[ch] += static_cast<float>(rng.next_range(-1, 1)) / 64.0f;
    const float q = std::round(baselines[ch] * 64.0f) / 64.0f;
    std::uint8_t b[4];
    std::memcpy(b, &q, 4);
    out.insert(out.end(), b, b + 4);
  }
  out.resize(bytes);
  return out;
}

// --- Lung CT volume (NIfTI-like) -------------------------------------------
// int16 voxels, ~75% exact-zero background with an ellipsoid of smooth
// tissue values: the mostly-zero structure yields the dataset's
// characteristic 5-11x ratios.
Bytes gen_lung_nii(std::size_t bytes, Rng& rng) {
  Bytes out;
  out.reserve(bytes + 512);
  out.resize(352, 0);  // NIfTI-1 header block
  out[0] = 92;         // sizeof_hdr = 348 (LE) — token structure only
  out[1] = 1;
  if (bytes <= out.size() + 2) {
    out.resize(bytes);
    return out;
  }
  const std::size_t voxels = (bytes - out.size()) / 2;
  const std::size_t side = static_cast<std::size_t>(std::cbrt(static_cast<double>(voxels)));
  std::size_t emitted = 0;
  std::int16_t prev = 0;
  for (std::size_t z = 0; emitted < voxels; ++z) {
    for (std::size_t y = 0; y < side && emitted < voxels; ++y) {
      for (std::size_t x = 0; x < side && emitted < voxels; ++x, ++emitted) {
        const double dx = (static_cast<double>(x) / side) - 0.5;
        const double dy = (static_cast<double>(y) / side) - 0.5;
        const double dz = (static_cast<double>(z % side) / side) - 0.5;
        std::int16_t v = 0;
        if (dx * dx + dy * dy + dz * dz < 0.09) {  // tissue ellipsoid
          v = static_cast<std::int16_t>(prev + rng.next_range(-4, 4));
          prev = v;
        }
        std::uint8_t b[2];
        std::memcpy(b, &v, 2);
        out.insert(out.end(), b, b + 2);
      }
    }
  }
  out.resize(bytes);
  return out;
}

// --- Astronomy image (FITS-like) -------------------------------------------
// 2880-byte ASCII card header + float32 sky: background noise quantized to
// 48 levels plus occasional bright stars.
Bytes gen_astro_fits(std::size_t bytes, Rng& rng) {
  Bytes out;
  out.reserve(bytes + 2880);
  std::string header;
  header += "SIMPLE  =                    T / conforms to FITS standard";
  header += "BITPIX  =                  -32 / 32-bit IEEE floats";
  header += "NAXIS   =                    2";
  header.resize(2880, ' ');
  out.insert(out.end(), header.begin(), header.end());
  while (out.size() + 4 <= bytes) {
    float v;
    if (rng.next_below(1000) < 3) {
      v = 100.0f + static_cast<float>(rng.next_below(1000));  // star
    } else {
      v = static_cast<float>(rng.next_below(48)) / 16.0f;  // quantized sky
    }
    std::uint8_t b[4];
    std::memcpy(b, &v, 4);
    out.insert(out.end(), b, b + 4);
  }
  out.resize(bytes);
  return out;
}

// --- ImageNet JPEG ----------------------------------------------------------
// A plausible JFIF prologue followed by entropy-coded (i.e. random) scan
// data: already-compressed content, ratio ~ 1.0 for every lossless codec.
Bytes gen_imagenet_jpg(std::size_t bytes, Rng& rng) {
  Bytes out;
  out.reserve(bytes);
  const std::uint8_t soi[] = {0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, 'J', 'F',
                              'I',  'F',  0x00, 0x01, 0x01, 0x00, 0x00, 0x48};
  out.insert(out.end(), soi, soi + sizeof(soi));
  if (bytes <= out.size() + 2) {
    out.resize(bytes);
    return out;
  }
  while (out.size() < bytes - 2) {
    out.push_back(static_cast<std::uint8_t>(rng.next_u64()));
  }
  out.push_back(0xFF);
  out.push_back(0xD9);  // EOI
  out.resize(bytes);
  return out;
}

// --- Language text ----------------------------------------------------------
// Zipf-weighted word sampling with sentence structure.
Bytes gen_language_txt(std::size_t bytes, Rng& rng) {
  static const char* kWords[] = {
      "the",      "model",   "training", "data",   "neural",  "network",
      "gradient", "descent", "batch",    "epoch",  "loss",    "accuracy",
      "layer",    "tensor",  "compute",  "node",   "storage", "system",
      "file",     "cache",   "memory",   "scale",  "result",  "method",
      "approach", "show",    "figure",   "table",  "section", "experiment",
      "and",      "of",      "to",       "in",     "with",    "for",
      "is",       "that",    "we",       "this",   "as",      "on"};
  constexpr std::size_t kN = std::size(kWords);
  Bytes out;
  out.reserve(bytes + 32);
  std::size_t words_in_sentence = 0;
  while (out.size() < bytes) {
    // Zipf-ish: quadratic skew toward early words.
    const std::size_t r = rng.next_below(kN * kN);
    const std::size_t w = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(r)));
    const char* word = kWords[kN - 1 - std::min(w, kN - 1)];
    out.insert(out.end(), word, word + std::strlen(word));
    if (++words_in_sentence >= 8 + rng.next_below(8)) {
      out.push_back('.');
      out.push_back(rng.next_below(5) == 0 ? '\n' : ' ');
      words_in_sentence = 0;
    } else {
      out.push_back(' ');
    }
  }
  out.resize(bytes);
  return out;
}

}  // namespace

DatasetSpec dataset_spec(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kEmTif:
      return {kind, "EM", "tif", 256 * 1024, 6, 500e9, 0.6e6, 1.6e6};
    case DatasetKind::kTokamakNpz:
      return {kind, "Tokamak", "npz", 1228, 1, 1.7e12, 0.58e6, 1.2e3};
    case DatasetKind::kLungNii:
      return {kind, "Lung", "nii", 448 * 1024, 2, 2.2e9, 1.4e3, 1.3e6};
    case DatasetKind::kAstroFits:
      return {kind, "Astro", "fits", 384 * 1024, 1, 1e12, 17.7e3, 6e6};
    case DatasetKind::kImagenetJpg:
      return {kind, "ImageNet", "jpg", 100 * 1024, 16, 140e9, 1.3e6, 100e3};
    case DatasetKind::kLanguageTxt:
      return {kind, "Language", "txt", 256 * 1024, 1, 32e6, 8, 4e6};
  }
  throw std::invalid_argument("dataset_spec: unknown kind");
}

std::vector<DatasetSpec> all_dataset_specs() {
  return {dataset_spec(DatasetKind::kEmTif),       dataset_spec(DatasetKind::kTokamakNpz),
          dataset_spec(DatasetKind::kLungNii),     dataset_spec(DatasetKind::kAstroFits),
          dataset_spec(DatasetKind::kImagenetJpg), dataset_spec(DatasetKind::kLanguageTxt)};
}

Bytes generate_file_sized(DatasetKind kind, std::uint64_t index, std::size_t bytes,
                          std::uint64_t seed) {
  Rng rng(mix_seed(kind, index, seed));
  switch (kind) {
    case DatasetKind::kEmTif: return gen_em_tif(bytes, rng);
    case DatasetKind::kTokamakNpz: return gen_tokamak_npz(bytes, rng);
    case DatasetKind::kLungNii: return gen_lung_nii(bytes, rng);
    case DatasetKind::kAstroFits: return gen_astro_fits(bytes, rng);
    case DatasetKind::kImagenetJpg: return gen_imagenet_jpg(bytes, rng);
    case DatasetKind::kLanguageTxt: return gen_language_txt(bytes, rng);
  }
  throw std::invalid_argument("generate_file_sized: unknown kind");
}

Bytes generate_file(DatasetKind kind, std::uint64_t index, std::uint64_t seed) {
  return generate_file_sized(kind, index, dataset_spec(kind).file_bytes, seed);
}

std::vector<std::string> materialize_dataset(posixfs::Vfs& fs, const std::string& root,
                                             DatasetKind kind, std::size_t num_files,
                                             std::uint64_t seed) {
  const DatasetSpec spec = dataset_spec(kind);
  std::vector<std::string> paths;
  paths.reserve(num_files);
  for (std::size_t i = 0; i < num_files; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "d%03zu/%s_%06zu.%s",
                  i % static_cast<std::size_t>(spec.num_dirs), spec.name.c_str(), i,
                  spec.extension.c_str());
    const std::string path = root + "/" + name;
    const Bytes data = generate_file(kind, i, seed);
    if (posixfs::write_file(fs, path, as_view(data)) != 0) {
      throw std::runtime_error("materialize_dataset: write failed for " + path);
    }
    paths.push_back(posixfs::normalize_path(path));
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace fanstore::dlsim
