#include "core/tiered_cache.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "compress/chunked.hpp"
#include "compress/registry.hpp"
#include "posixfs/mem_vfs.hpp"
#include "simnet/codec_speed.hpp"
#include "util/crc32.hpp"

namespace fanstore::core {

namespace {

constexpr std::uint32_t kSpillMagic = 0x31505346;  // "FSP1" little-endian
constexpr std::size_t kSpillHeader = 4 + 4 + 2 + 8 + 4;  // 22 bytes

}  // namespace

Bytes encode_spill_record(compress::CompressorId compressor,
                          std::uint64_t original_size, std::uint32_t plain_crc,
                          ByteView payload) {
  Bytes out;
  out.reserve(kSpillHeader + payload.size());
  append_le<std::uint32_t>(out, 0);  // crc placeholder
  append_le<std::uint32_t>(out, kSpillMagic);
  append_le<std::uint16_t>(out, compressor);
  append_le<std::uint64_t>(out, original_size);
  append_le<std::uint32_t>(out, plain_crc);
  out.insert(out.end(), payload.begin(), payload.end());
  store_le<std::uint32_t>(out.data(),
                          crc32(ByteView{out.data() + 4, out.size() - 4}));
  return out;
}

SpillRecord decode_spill_record(ByteView bytes) {
  // CRC first (DESIGN.md §8 wire-integrity rule): no field — not even the
  // magic — is interpreted until the whole record checks out, so a torn
  // write or flipped bit can never smuggle garbage into the read path.
  if (bytes.size() < kSpillHeader) {
    throw compress::CorruptDataError("spill record truncated");
  }
  const std::uint32_t want = load_le<std::uint32_t>(bytes.data());
  const std::uint32_t got =
      crc32(ByteView{bytes.data() + 4, bytes.size() - 4});
  if (want != got) {
    throw compress::CorruptDataError("spill record crc mismatch");
  }
  if (load_le<std::uint32_t>(bytes.data() + 4) != kSpillMagic) {
    throw compress::CorruptDataError("spill record bad magic");
  }
  SpillRecord r;
  r.compressor = load_le<std::uint16_t>(bytes.data() + 8);
  r.original_size = load_le<std::uint64_t>(bytes.data() + 10);
  r.plain_crc = load_le<std::uint32_t>(bytes.data() + 18);
  r.payload.assign(bytes.begin() + kSpillHeader, bytes.end());
  return r;
}

TieredCache::TieredCache(Options options)
    : opt_(std::move(options)),
      tier1_on_(opt_.compressed_bytes > 0),
      tier2_on_(opt_.spill_bytes > 0),
      plain_(opt_.plain_bytes, opt_.plain_shards, opt_.metrics) {
  if (opt_.promote_after_hits == 0) opt_.promote_after_hits = 1;
  if (tier2_on_) {
    if (opt_.spill_fs != nullptr) {
      spill_fs_ = opt_.spill_fs;
    } else {
      owned_spill_fs_ = std::make_unique<posixfs::MemVfs>();
      spill_fs_ = owned_spill_fs_.get();
    }
  }
  if (!tiers_enabled()) return;  // pass-through: no hook, no tier metrics
  auto& m = plain_.metrics();
  plain_hits_ = &m.counter("tier.plain.hits");
  comp_hits_ = &m.counter("tier.compressed.hits");
  comp_admits_ = &m.counter("tier.compressed.admits");
  comp_demotes_ = &m.counter("tier.compressed.demotes");
  comp_promotes_ = &m.counter("tier.compressed.promotes");
  comp_evictions_ = &m.counter("tier.compressed.evictions");
  comp_bytes_gauge_ = &m.gauge("tier.compressed.bytes_used");
  spill_hits_ = &m.counter("tier.spill.hits");
  spill_demotes_ = &m.counter("tier.spill.demotes");
  spill_promotes_ = &m.counter("tier.spill.promotes");
  spill_evictions_ = &m.counter("tier.spill.evictions");
  spill_corrupt_ = &m.counter("tier.spill.corrupt");
  spill_bytes_read_ = &m.counter("tier.spill.bytes_read");
  spill_bytes_written_ = &m.counter("tier.spill.bytes_written");
  spill_bytes_gauge_ = &m.gauge("tier.spill.bytes_used");
  peer_hits_ = &m.counter("tier.peer.hits");
  cold_loads_ = &m.counter("tier.cold.loads");
  dropped_ = &m.counter("tier.dropped");
  plain_.set_demotion_hook(
      [this](const std::string& path, const std::shared_ptr<CachedFile>& f) {
        demote(path, f);
      });
}

void TieredCache::charge(double sec) const {
  if (opt_.charge_costs && opt_.clock != nullptr) opt_.clock->advance_sec(sec);
}

std::string TieredCache::spill_path(const std::string& path) const {
  // Hash-named spill files: dataset paths contain '/', and the spill root
  // should stay a flat directory on any Vfs.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016zx",
                std::hash<std::string>{}(path));
  return opt_.spill_root + "/" + buf;
}

bool TieredCache::wants_cold_compressed(std::size_t size) const {
  if (!tier1_on_) return false;
  return opt_.plain_admit_max_bytes > 0 && size >= opt_.plain_admit_max_bytes;
}

std::shared_ptr<CachedFile> TieredCache::acquire_file(const std::string& path,
                                                      const ColdLoader& cold) {
  if (!tiers_enabled()) {
    return plain_.acquire_file(path, [&] {
      ColdResult r = cold();
      return std::move(r.file);
    });
  }
  bool loaded = false;
  auto file = plain_.acquire_file(
      path, [&] { return load_below(path, cold); }, &loaded);
  if (!loaded) plain_hits_->inc();
  return file;
}

std::shared_ptr<CachedFile> TieredCache::load_below(const std::string& path,
                                                    const ColdLoader& cold) {
  // Runs inside the plain tier's single-flight slot: per-path serialized,
  // no shard lock held, so taking the tier mutexes here is safe.
  if (auto f = lookup_compressed(path)) return f;
  if (auto f = lookup_spill(path)) return f;
  ColdResult r = cold();
  if (r.source == ColdSource::kPeer) {
    peer_hits_->inc();
  } else {
    cold_loads_->inc();
  }
  // Write-through admission for admit-to-compressed-only objects: their
  // steady-state home is the compressed tier, so park the compressed form
  // now — the plain copy is dropped at last release (see release()).
  if (wants_cold_compressed(r.file->size())) {
    CompressedEntry e;
    e.original_size = r.file->size();
    e.plain_crc = r.plain_crc;
    e.pinned_home = true;
    if (r.file->is_chunked()) {
      e.compressor = r.file->container_id();
      e.payload = r.file->compressed_bytes();
    } else if (!r.compressed.empty()) {
      e.compressor = r.compressor;
      e.payload = std::move(r.compressed);
    } else {
      return std::move(r.file);  // no compressed form available: admit plain
    }
    if (insert_compressed(path, std::move(e))) comp_admits_->inc();
  }
  return std::move(r.file);
}

std::shared_ptr<CachedFile> TieredCache::lookup_compressed(
    const std::string& path) {
  if (!tier1_on_) return nullptr;
  compress::CompressorId compressor = 0;
  Bytes payload;
  std::uint64_t original_size = 0;
  std::uint32_t plain_crc = 0;
  bool promote = false;
  {
    sync::MutexLock lk(comp_mu_);
    const auto it = comp_.find(path);
    if (it == comp_.end()) return nullptr;
    CompressedEntry& e = it->second;
    e.hits++;
    compressor = e.compressor;
    original_size = e.original_size;
    plain_crc = e.plain_crc;
    // Promote on the Nth hit (default second): the bytes *move* up — the
    // tier-1 copy is erased so plain RAM and compressed RAM never hold the
    // same object twice. Admit-to-compressed-only homes never promote.
    promote = !e.pinned_home && e.hits >= opt_.promote_after_hits;
    if (promote) {
      payload = std::move(e.payload);
      comp_bytes_ -= payload.size();
      comp_bytes_gauge_->add(-static_cast<std::int64_t>(payload.size()));
      comp_fifo_.erase(e.fifo_pos);
      comp_.erase(it);
    } else {
      payload = e.payload;  // copy: the tier keeps its residency
    }
  }
  comp_hits_->inc();
  if (promote) comp_promotes_->inc();
  return rebuild(compressor, std::move(payload), original_size, plain_crc);
}

std::shared_ptr<CachedFile> TieredCache::lookup_spill(const std::string& path) {
  if (!tier2_on_) return nullptr;
  SpillRecord rec;
  bool promote = false;
  {
    sync::MutexLock lk(spill_mu_);
    const auto it = spill_.find(path);
    if (it == spill_.end()) return nullptr;
    SpillEntry& e = it->second;
    // Device read under the tier mutex: the spill device is one SSD and
    // this models its serialized queue (lock order: tiered.spill.mu →
    // mem_vfs.mu, both leaves of everything above them).
    charge(opt_.spill_storage.file_read_time(e.record_bytes));
    const auto raw = posixfs::read_file(*spill_fs_, spill_path(path));
    spill_bytes_read_->inc(static_cast<std::uint64_t>(e.record_bytes));
    try {
      if (!raw.has_value()) {
        throw compress::CorruptDataError("spill record unreadable");
      }
      rec = decode_spill_record(as_view(*raw));
    } catch (const compress::CorruptDataError&) {
      // A corrupt spill record is treated as a device failure for this
      // entry: count it, reclaim the slot, and fall through to colder
      // tiers. Never surfaced as a hit, never as an error.
      spill_corrupt_->inc();
      reclaim_spill_locked(path, e);
      spill_fifo_.erase(e.fifo_pos);
      spill_.erase(it);
      return nullptr;
    }
    e.hits++;
    promote = e.hits >= opt_.promote_after_hits;
    if (promote) {
      reclaim_spill_locked(path, e);
      spill_fifo_.erase(e.fifo_pos);
      spill_.erase(it);
    }
  }
  spill_hits_->inc();
  if (promote) spill_promotes_->inc();
  return rebuild(rec.compressor, std::move(rec.payload), rec.original_size,
                 rec.plain_crc);
}

std::shared_ptr<CachedFile> TieredCache::rebuild(
    compress::CompressorId compressor, Bytes payload,
    std::size_t original_size, std::uint32_t plain_crc) {
  if (compressor == 0) {
    // Plain bytes (flat entries demoted through the spill tier).
    if (plain_crc != 0 && crc32(as_view(payload)) != plain_crc) {
      throw compress::CorruptDataError("tiered plain payload crc mismatch");
    }
    return std::make_shared<CachedFile>(std::move(payload));
  }
  if (compress::is_chunked_id(compressor)) {
    // Chunked containers come back lazy: the hit decodes per-range exactly
    // like a fresh cold load, which is the whole point of keeping tier-1
    // entries in container form.
    return std::make_shared<CachedFile>(std::move(payload), compressor,
                                        original_size);
  }
  const auto* codec = compress::Registry::instance().by_id(compressor);
  if (codec == nullptr) {
    throw compress::CorruptDataError("tiered payload has unknown codec id");
  }
  Bytes plain = codec->decompress(as_view(payload), original_size);
  if (plain_crc != 0 && crc32(as_view(plain)) != plain_crc) {
    throw compress::CorruptDataError("tiered payload crc mismatch");
  }
  if (opt_.charge_decompress) {
    charge(simnet::CodecSpeedTable::shared().decompress_seconds(
        compressor, plain.size()));
  }
  return std::make_shared<CachedFile>(std::move(plain));
}

void TieredCache::demote(const std::string& path,
                         const std::shared_ptr<CachedFile>& file) {
  // Runs with no plain-shard lock held (PlainCache fires the hook after
  // unlocking). Chunked entries carry their compressed frame — demote that
  // form to the compressed tier. Flat entries only have plain bytes, whose
  // RAM footprint equals what was just evicted, so compressed RAM would buy
  // nothing: they go straight to the spill device.
  if (tier1_on_ && file->is_chunked()) {
    CompressedEntry e;
    e.compressor = file->container_id();
    e.payload = file->compressed_bytes();
    e.original_size = file->size();
    if (insert_compressed(path, std::move(e))) {
      comp_demotes_->inc();
      return;
    }
    return;  // already resident below: dedupe, drop this copy
  }
  if (tier2_on_) {
    if (file->is_chunked()) {
      if (insert_spill(path, file->container_id(), file->size(), 0,
                       as_view(file->compressed_bytes()))) {
        spill_demotes_->inc();
      }
      return;
    }
    if (!file->fully_materialized()) {
      dropped_->inc();  // cannot snapshot a partially-decoded flat entry
      return;
    }
    if (insert_spill(path, 0, file->size(), crc32(as_view(file->plain())),
                     as_view(file->plain()))) {
      spill_demotes_->inc();
    }
    return;
  }
  dropped_->inc();
}

bool TieredCache::insert_compressed(const std::string& path,
                                    CompressedEntry entry) {
  const std::size_t sz = entry.payload.size();
  if (sz > opt_.compressed_bytes) {
    // Larger than the whole tier: skip straight to spill.
    if (tier2_on_) {
      if (insert_spill(path, entry.compressor, entry.original_size,
                       entry.plain_crc, as_view(entry.payload))) {
        spill_demotes_->inc();
      }
    } else {
      dropped_->inc();
    }
    return false;
  }
  struct Victim {
    std::string path;
    CompressedEntry entry;
  };
  std::vector<Victim> victims;
  {
    sync::MutexLock lk(comp_mu_);
    if (comp_.count(path) > 0) return false;  // dedupe
    comp_fifo_.push_back(path);
    entry.fifo_pos = std::prev(comp_fifo_.end());
    comp_bytes_ += sz;
    comp_bytes_gauge_->add(static_cast<std::int64_t>(sz));
    comp_.emplace(path, std::move(entry));
    const EvictionPolicy* policy = policy_.load(std::memory_order_acquire);
    while (comp_bytes_ > opt_.compressed_bytes && !comp_fifo_.empty()) {
      auto pos = comp_fifo_.begin();
      if (policy != nullptr) {
        // Per-tier Belady (DESIGN.md §10/§12): demote the entry with the
        // farthest next planned use first, FIFO position breaking ties.
        std::uint64_t worst = 0;
        for (auto p = comp_fifo_.begin(); p != comp_fifo_.end(); ++p) {
          const std::uint64_t d = policy->next_use_distance(*p);
          if (p == comp_fifo_.begin() || d > worst) {
            worst = d;
            pos = p;
          }
          if (d == EvictionPolicy::kNever) break;
        }
      }
      const auto it = comp_.find(*pos);
      comp_bytes_ -= it->second.payload.size();
      comp_bytes_gauge_->add(
          -static_cast<std::int64_t>(it->second.payload.size()));
      victims.push_back({*pos, std::move(it->second)});
      comp_fifo_.erase(pos);
      comp_.erase(it);
    }
  }
  for (auto& v : victims) {
    comp_evictions_->inc();
    if (tier2_on_) {
      if (insert_spill(v.path, v.entry.compressor, v.entry.original_size,
                       v.entry.plain_crc, as_view(v.entry.payload))) {
        spill_demotes_->inc();
      }
    } else {
      dropped_->inc();
    }
  }
  return true;
}

void TieredCache::reclaim_spill_locked(const std::string& path,
                                       const SpillEntry& e) {
  // Vfs has no unlink; overwriting with an empty file releases the bytes
  // (MemVfs write-open truncates) and keeps the accounting exact.
  posixfs::write_file(*spill_fs_, spill_path(path), ByteView{});
  spill_bytes_ -= e.record_bytes;
  spill_bytes_gauge_->add(-static_cast<std::int64_t>(e.record_bytes));
}

bool TieredCache::insert_spill(const std::string& path,
                               compress::CompressorId compressor,
                               std::uint64_t original_size,
                               std::uint32_t plain_crc, ByteView payload) {
  const std::size_t record_bytes = kSpillHeader + payload.size();
  if (record_bytes > opt_.spill_bytes) {
    dropped_->inc();
    return false;
  }
  const Bytes record =
      encode_spill_record(compressor, original_size, plain_crc, payload);
  std::size_t evicted = 0;
  {
    sync::MutexLock lk(spill_mu_);
    if (spill_.count(path) > 0) return false;  // dedupe
    const EvictionPolicy* policy = policy_.load(std::memory_order_acquire);
    while (spill_bytes_ + record_bytes > opt_.spill_bytes &&
           !spill_fifo_.empty()) {
      auto pos = spill_fifo_.begin();
      if (policy != nullptr) {
        std::uint64_t worst = 0;
        for (auto p = spill_fifo_.begin(); p != spill_fifo_.end(); ++p) {
          const std::uint64_t d = policy->next_use_distance(*p);
          if (p == spill_fifo_.begin() || d > worst) {
            worst = d;
            pos = p;
          }
          if (d == EvictionPolicy::kNever) break;
        }
      }
      const auto it = spill_.find(*pos);
      reclaim_spill_locked(*pos, it->second);
      spill_fifo_.erase(pos);
      spill_.erase(it);
      evicted++;
    }
    charge(opt_.spill_storage.file_write_time(record_bytes));
    if (posixfs::write_file(*spill_fs_, spill_path(path), as_view(record)) !=
        0) {
      dropped_->inc();  // spill device full/failed: entry falls to cold
      return false;
    }
    SpillEntry e;
    e.record_bytes = record_bytes;
    spill_fifo_.push_back(path);
    e.fifo_pos = std::prev(spill_fifo_.end());
    spill_bytes_ += record_bytes;
    spill_bytes_gauge_->add(static_cast<std::int64_t>(record_bytes));
    spill_.emplace(path, std::move(e));
    spill_bytes_written_->inc(static_cast<std::uint64_t>(record_bytes));
  }
  spill_evictions_->inc(static_cast<std::uint64_t>(evicted));
  return true;
}

void TieredCache::release(const std::string& path) {
  if (!tiers_enabled()) {
    plain_.release(path);
    return;
  }
  bool compressed_home = false;
  {
    sync::MutexLock lk(comp_mu_);
    const auto it = comp_.find(path);
    compressed_home = it != comp_.end() && it->second.pinned_home;
  }
  if (compressed_home) {
    // Admit-to-compressed-only: the plain copy must not linger once the
    // last reader closes — its home is the tier-1 frame. drop() erases at
    // refcount zero; the demotion hook then dedupes against the resident
    // tier-1 entry, so no duplicate is created.
    plain_.drop(path);
  } else {
    plain_.release(path);
  }
}

void TieredCache::recharge(const std::string& path) { plain_.recharge(path); }

bool TieredCache::contains_any(const std::string& path) const {
  if (plain_.contains(path)) return true;
  if (tier1_on_) {
    sync::MutexLock lk(comp_mu_);
    if (comp_.count(path) > 0) return true;
  }
  if (tier2_on_) {
    sync::MutexLock lk(spill_mu_);
    if (spill_.count(path) > 0) return true;
  }
  return false;
}

void TieredCache::set_eviction_policy(const EvictionPolicy* policy) {
  plain_.set_eviction_policy(policy);
  policy_.store(policy, std::memory_order_release);
}

bool TieredCache::compressed_contains(const std::string& path) const {
  sync::MutexLock lk(comp_mu_);
  return comp_.count(path) > 0;
}

bool TieredCache::spill_contains(const std::string& path) const {
  sync::MutexLock lk(spill_mu_);
  return spill_.count(path) > 0;
}

std::size_t TieredCache::compressed_bytes_used() const {
  sync::MutexLock lk(comp_mu_);
  return comp_bytes_;
}

std::size_t TieredCache::spill_bytes_used() const {
  sync::MutexLock lk(spill_mu_);
  return spill_bytes_;
}

}  // namespace fanstore::core
