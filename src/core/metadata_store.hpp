// In-RAM metadata store (§IV-C1): the per-rank shard-local namespace. In
// the classic full-replication mode every node holds the complete
// namespace after one allgather; under the sharded metadata cluster
// (cluster/node.hpp, DESIGN.md §13) each rank holds only the shards the
// hash ring assigns it (plus entries it authored), and misses resolve
// against the shard's owners. Either way the metadata storms of §II-B1
// (millions of stat() calls from dozens of I/O threads) are answered from
// RAM, not the PFS.
//
// Entries carry a (version, writer) pair with a deterministic
// last-writer-wins merge so replicas converge without owner forwarding;
// the classic insert()/serialize() surface is preserved byte for byte for
// the replication_factor == nranks compatibility mode.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/shard_store.hpp"
#include "format/file_stat.hpp"
#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

class MetadataStore final : public cluster::ShardStore {
 public:
  /// Inserts or replaces the entry for `path` (normalized, dataset-rooted)
  /// unconditionally at version 0 — the load-time path (partition
  /// manifests, allgather merge). Parent directories become visible
  /// automatically.
  void insert(const std::string& path, const format::FileStat& stat) EXCLUDES(mu_);

  std::optional<format::FileStat> lookup(const std::string& path) const EXCLUDES(mu_);

  bool dir_exists(const std::string& path) const EXCLUDES(mu_);

  /// Immediate children of `dir`, sorted by name.
  std::vector<posixfs::Dirent> list(const std::string& dir) const EXCLUDES(mu_);

  std::size_t file_count() const EXCLUDES(mu_);

  /// All file paths, sorted (tests and the trainer's enumeration step).
  std::vector<std::string> all_paths() const EXCLUDES(mu_);

  /// Serializes every entry for the metadata allgather (classic wire
  /// format, no version fields — byte-compatible with pre-cluster builds).
  Bytes serialize() const EXCLUDES(mu_);

  /// Merges entries from another rank's serialize() output.
  void merge_serialized(ByteView blob) EXCLUDES(mu_);

  // --- cluster::ShardStore ----------------------------------------------
  bool insert_versioned(const std::string& path,
                        const cluster::VersionedStat& entry) override EXCLUDES(mu_);
  std::optional<cluster::VersionedStat> lookup_versioned(
      const std::string& path) const override EXCLUDES(mu_);
  std::optional<format::FileStat> lookup_any(
      const std::string& path) const override EXCLUDES(mu_);
  std::vector<posixfs::Dirent> list_local(
      const std::string& dir) const override EXCLUDES(mu_);
  bool dir_exists_local(const std::string& dir) const override EXCLUDES(mu_);
  std::uint64_t shard_digest(std::uint32_t shard,
                             std::uint32_t nshards) const override EXCLUDES(mu_);
  Bytes serialize_shard(std::uint32_t shard,
                        std::uint32_t nshards) const override EXCLUDES(mu_);
  std::size_t merge_shard(ByteView blob) override EXCLUDES(mu_);
  void drop_shard(std::uint32_t shard, std::uint32_t nshards,
                  int keep_owner_rank) override EXCLUDES(mu_);
  std::vector<std::string> shard_paths(std::uint32_t shard,
                                       std::uint32_t nshards) const override
      EXCLUDES(mu_);

 private:
  bool insert_locked(const std::string& path, const cluster::VersionedStat& entry,
                     bool versioned) REQUIRES(mu_);
  void index_parents_locked(const std::string& path) REQUIRES(mu_);
  void reindex_locked() REQUIRES(mu_);

  mutable sync::Mutex mu_{"metadata_store.mu"};
  std::unordered_map<std::string, cluster::VersionedStat> files_ GUARDED_BY(mu_);
  // dir -> immediate children (name, is_dir)
  std::unordered_map<std::string, std::set<std::pair<std::string, bool>>> children_
      GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
};

}  // namespace fanstore::core
