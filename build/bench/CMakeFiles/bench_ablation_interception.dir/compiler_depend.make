# Empty compiler generated dependencies file for bench_ablation_interception.
# This may be replaced when dependencies are built.
