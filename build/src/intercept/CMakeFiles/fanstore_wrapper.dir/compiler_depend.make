# Empty compiler generated dependencies file for fanstore_wrapper.
# This may be replaced when dependencies are built.
