file(REMOVE_RECURSE
  "CMakeFiles/fanstore_ipc.dir/protocol.cpp.o"
  "CMakeFiles/fanstore_ipc.dir/protocol.cpp.o.d"
  "CMakeFiles/fanstore_ipc.dir/uds_client.cpp.o"
  "CMakeFiles/fanstore_ipc.dir/uds_client.cpp.o.d"
  "CMakeFiles/fanstore_ipc.dir/uds_server.cpp.o"
  "CMakeFiles/fanstore_ipc.dir/uds_server.cpp.o.d"
  "libfanstore_ipc.a"
  "libfanstore_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
