#include "dlsim/prefetcher.hpp"

#include "obs/trace.hpp"

namespace fanstore::dlsim {

void Prefetcher::bind_metrics(obs::MetricsRegistry& m) {
  warmed_ = &m.counter("prefetch.warmed");
  failures_ = &m.counter("prefetch.failures");
  fetch_staged_ = &m.counter("prefetch.fetch_staged");
  dropped_ = &m.counter("prefetch.dropped");
  queue_depth_ = &m.gauge("prefetch.queue_depth");
}

Prefetcher::Prefetcher(posixfs::Vfs& fs, std::size_t threads)
    : fs_(fs), pool_(threads) {
  bind_metrics(obs::MetricsRegistry::global());
}

Prefetcher::Prefetcher(core::FanStoreFs& fs, std::size_t threads,
                       std::size_t fetch_threads)
    : fs_(fs),
      fanstore_(&fs),
      pool_(threads),
      fetch_pool_(std::make_unique<ThreadPool>(
          fetch_threads == 0 ? 1 : fetch_threads)) {
  bind_metrics(fs.metrics());
}

void Prefetcher::set_queue_limit(std::size_t high_water,
                                 OverflowPolicy policy) {
  sync::MutexLock lk(q_mu_);
  high_water_ = high_water;
  overflow_ = policy;
  q_slot_.notify_all();  // a raised limit may unblock waiting producers
}

void Prefetcher::warm(const std::string& path) {
  obs::TraceSpan span("prefetch.warm");
  if (fanstore_ != nullptr) {
    // warm_file() additionally materializes every chunk of a lazily-decoded
    // chunked entry — warming must leave nothing for the training thread,
    // even when the fs opens chunked files lazily.
    if (fanstore_->warm_file(path)) {
      warmed_->inc();
    } else {
      failures_->inc();
    }
    return;
  }
  // Generic Vfs: open() pulls the file through fetch + decompress into the
  // cache; close() drops the pin but leaves the plain data cached.
  const int fd = fs_.open(path, posixfs::OpenMode::kRead);
  if (fd < 0) {
    failures_->inc();
    return;
  }
  fs_.close(fd);
  warmed_->inc();
}

std::shared_ptr<Prefetcher::Job> Prefetcher::push_job(const std::string& path) {
  auto job = std::make_shared<Job>(path);
  sync::MutexLock lk(q_mu_);
  while (high_water_ != 0 && overflow_ == OverflowPolicy::kBlock &&
         queued_ >= high_water_) {
    q_slot_.wait(q_mu_);  // backpressure: wait for a worker to claim a job
  }
  if (high_water_ != 0 && queued_ >= high_water_) {
    // kDropOldest: the freshest schedule wins; cancel the stalest entry
    // that no worker has picked up yet.
    for (auto& stale : backlog_) {
      if (!stale->started && !stale->cancelled) {
        stale->cancelled = true;
        --queued_;
        dropped_->inc();
        queue_depth_->add(-1);
        break;
      }
    }
  }
  // Lazily trim settled (claimed or cancelled) entries off the front so the
  // deque tracks the live backlog instead of the full submission history.
  while (!backlog_.empty() &&
         (backlog_.front()->started || backlog_.front()->cancelled)) {
    backlog_.pop_front();
  }
  backlog_.push_back(job);
  ++queued_;
  queue_depth_->add(1);
  return job;
}

bool Prefetcher::claim(Job& job) {
  sync::MutexLock lk(q_mu_);
  if (job.cancelled) return false;
  job.started = true;
  --queued_;
  queue_depth_->add(-1);
  q_slot_.notify_all();
  return true;
}

void Prefetcher::prefetch(const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    std::shared_ptr<Job> job = push_job(path);
    if (fanstore_ != nullptr) {
      // Stage 1 (fetch pool): land the compressed bytes locally. Stage 2
      // (decompress pool) starts per file the moment its fetch finishes,
      // so later fetches overlap earlier decompressions.
      fetch_pool_->submit([this, job] {
        if (!claim(*job)) return;  // dropped before any worker got to it
        {
          obs::TraceSpan span("prefetch.fetch");
          if (fanstore_->prefetch_compressed(job->path)) fetch_staged_->inc();
        }
        pool_.submit([this, job] { warm(job->path); });
      });
    } else {
      pool_.submit([this, job] {
        if (claim(*job)) warm(job->path);
      });
    }
  }
}

void Prefetcher::wait() {
  // Fetch stage first: once it idles, every decompress task is enqueued.
  if (fetch_pool_) fetch_pool_->wait_idle();
  pool_.wait_idle();
}

}  // namespace fanstore::dlsim
