// Stress and soak coverage for the event-driven server (DESIGN.md §11):
// hundreds of concurrent clients through a handful of fixed threads, rude
// disconnects mid-reply, stop() racing in-flight requests, and the
// blocker-pool / event-loop primitives under contention. The whole file is
// a TSan target (tools/ci.sh runs the `ipc` label in the sanitizer
// matrix); client counts scale down under instrumentation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ipc/event_loop.hpp"
#include "ipc/protocol.hpp"
#include "ipc/server.hpp"
#include "ipc/transport.hpp"
#include "ipc/uds_client.hpp"
#include "posixfs/mem_vfs.hpp"
#include "tests/sanitizer_env.hpp"
#include "tests/test_data.hpp"
#include "util/rng.hpp"

namespace fanstore::ipc {
namespace {

std::string unique_socket_path(const char* tag) {
  return "/tmp/fanstore_soak_" + std::to_string(getpid()) + "_" + tag + ".sock";
}

// The acceptance bar is 256 concurrent clients through fixed threads;
// sanitizer builds keep the shape but shrink the herd (each test client is
// a real thread here, and TSan multiplies their cost).
constexpr int kSoakClients = testsupport::kUnderSanitizer ? 64 : 256;

TEST(IpcSoakTest, HundredsOfClientsThroughFixedThreads) {
  posixfs::MemVfs fs;
  // Mixed fetch sizes: tiny metadata-ish files up to ones big enough to
  // exercise the write queue and partial sends.
  const Bytes small = testdata::random_bytes(512, 1);
  const Bytes medium = testdata::random_bytes(64 << 10, 2);
  const Bytes large = testdata::random_bytes(1 << 20, 3);
  posixfs::write_file(fs, "ds/small", as_view(small));
  posixfs::write_file(fs, "ds/medium", as_view(medium));
  posixfs::write_file(fs, "ds/large", as_view(large));

  ServerOptions opt;
  opt.shards = 2;
  opt.blocker_threads = 4;
  opt.backlog = kSoakClients;  // the herd connects all at once
  Server server({Endpoint::uds(unique_socket_path("soak"))}, fs, opt);
  server.start();
  const std::string spec = server.endpoints()[0].to_string();
  ClientOptions copt;
  copt.max_attempts = 5;  // absorbs transient connect backlog overflow
  copt.base_delay_ms = 1;
  copt.max_delay_ms = 20;

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(kSoakClients));
  for (int c = 0; c < kSoakClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      if (c % 8 == 7) {
        // Rude client: request the large file, then hang up mid-reply.
        const auto ep = Endpoint::parse(spec);
        int fd = -1;
        for (int tries = 0; tries < 50 && fd < 0; ++tries) {
          fd = transport_connect(*ep);
          if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        if (fd < 0) {
          failures.fetch_add(1);
          return;
        }
        write_frame(fd, as_view(encode_request(Op::kGet, "ds/large")));
        std::uint8_t buf[64];
        (void)::read(fd, buf, sizeof(buf));  // a few bytes, then vanish
        ::close(fd);
        return;
      }
      UdsClientVfs client(spec, copt);
      for (int round = 0; round < 6; ++round) {
        const std::uint64_t pick = rng.next_below(3);
        const char* path = pick == 0   ? "ds/small"
                           : pick == 1 ? "ds/medium"
                                       : "ds/large";
        const Bytes& want = pick == 0 ? small : pick == 1 ? medium : large;
        const auto got = posixfs::read_file(client, path);
        if (!got.has_value() || *got != want) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server.requests_served(),
            static_cast<std::uint64_t>(kSoakClients / 2));
  // Every connection (including the rude ones) must be reaped.
  for (int spin = 0; spin < 500 && server.connections_open() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.connections_open(), 0);
  server.stop();
}

TEST(IpcSoakTest, StopRacesInFlightRequests) {
  posixfs::MemVfs fs;
  const Bytes data = testdata::random_bytes(128 << 10, 4);
  posixfs::write_file(fs, "f", as_view(data));
  const int iterations = testsupport::kUnderSanitizer ? 6 : 20;
  for (int it = 0; it < iterations; ++it) {
    ServerOptions opt;
    opt.shards = 2;
    opt.blocker_threads = 2;
    Server server({Endpoint::uds(unique_socket_path("stoprace"))}, fs, opt);
    server.start();
    const std::string spec = server.endpoints()[0].to_string();

    std::atomic<bool> go{false};
    std::atomic<int> wrong_bytes{0};
    std::vector<std::thread> hammers;
    for (int c = 0; c < 4; ++c) {
      hammers.emplace_back([&] {
        UdsClientVfs client(spec);
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i) {
          const auto got = posixfs::read_file(client, "f");
          // Failure is expected once stop() lands; wrong bytes never are.
          if (got.has_value() && *got != data) wrong_bytes.fetch_add(1);
          if (!got.has_value()) return;
        }
      });
    }
    go.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + it % 5));
    server.stop();  // races the in-flight requests above
    for (auto& t : hammers) t.join();
    EXPECT_EQ(wrong_bytes.load(), 0) << "iteration " << it;
  }
}

TEST(IpcBlockerPoolTest, DrainWaitsForQueuedAndRunningJobs) {
  BlockerPool pool(3);
  std::atomic<int> ran{0};
  const int jobs = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < jobs / 4; ++i) {
        pool.submit([&] {
          std::this_thread::yield();
          ran.fetch_add(1);
        });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.drain();
  EXPECT_EQ(ran.load(), jobs);
}

TEST(IpcBlockerPoolTest, DestructorRunsAcceptedJobs) {
  std::atomic<int> ran{0};
  {
    BlockerPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // drain-on-stop: accepted jobs run even while the pool shuts down
  EXPECT_EQ(ran.load(), 64);
}

TEST(IpcEventLoopTest, DeferFromManyThreadsNeverLosesAWakeup) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::atomic<int> ran{0};
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        loop.defer([&] { ran.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  // Every deferred closure must eventually run without further stimulus —
  // this is exactly the lost-wakeup scenario the arm/disarm protocol
  // exists for (see event_loop.hpp).
  for (int spin = 0; spin < 2000 && ran.load() < kProducers * kPerProducer;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  loop.stop();
  runner.join();
}

TEST(IpcEventLoopTest, StopRunsFinalDrain) {
  EventLoop loop;
  std::thread runner([&] { loop.run(); });
  std::atomic<bool> cleanup_ran{false};
  loop.defer([&] { cleanup_ran.store(true); });
  loop.stop();
  runner.join();
  // The closure was queued before (or racing) stop(); the final drain in
  // run() guarantees it executed before the loop thread exited.
  EXPECT_TRUE(cleanup_ran.load());
}

}  // namespace
}  // namespace fanstore::ipc
