// Decompressed-data cache (§IV-C3, Fig. 4): a bounded shared memory pool
// with a refcount-aware FIFO policy. Every file is equally likely to be
// read each iteration, so FIFO is as good as LRU at a fraction of the
// bookkeeping; the one exception is files currently opened by one or more
// I/O threads, which eviction must skip.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

class PlainCache {
 public:
  /// `capacity_bytes` bounds the pool; a single entry larger than the
  /// capacity is still admitted while pinned (it is evicted on release).
  explicit PlainCache(std::size_t capacity_bytes);

  /// Returns the decompressed contents of `path`, pinning the entry
  /// (open-counter + 1). On miss, `loader` is invoked outside the lock and
  /// may throw; the miss is then not cached. `loaded` (if non-null) is set
  /// to true when the loader ran (a cache miss).
  std::shared_ptr<const Bytes> acquire(const std::string& path,
                                       const std::function<Bytes()>& loader,
                                       bool* loaded = nullptr) EXCLUDES(mu_);

  /// Drops one pin (close()); the entry stays cached FIFO-style until
  /// capacity pressure evicts it.
  void release(const std::string& path) EXCLUDES(mu_);

  bool contains(const std::string& path) const EXCLUDES(mu_);
  std::size_t bytes_used() const EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  CacheStats stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const Bytes> data;
    int open_count = 0;
    std::list<std::string>::iterator fifo_pos;
    bool in_fifo = false;
  };

  void evict_if_needed_locked() REQUIRES(mu_);

  const std::size_t capacity_;
  mutable sync::Mutex mu_{"cache.mu"};
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
  std::list<std::string> fifo_ GUARDED_BY(mu_);  // insertion order, oldest first
  std::size_t bytes_used_ GUARDED_BY(mu_) = 0;
  CacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace fanstore::core
