# Empty dependencies file for bench_table5_appinputs.
# This may be replaced when dependencies are built.
