// Table IV: compression ratios of lzsse8, lz4hc, lzma, xz on the six
// datasets. Real compression of generated samples; paper values printed
// alongside for comparison.
#include <map>

#include "bench/bench_util.hpp"
#include "compress/registry.hpp"
#include "dlsim/datagen.hpp"

using namespace fanstore;

namespace {

double measure_ratio(const compress::Compressor& codec, dlsim::DatasetKind kind,
                     int nfiles) {
  std::size_t raw = 0, packed = 0;
  for (int i = 0; i < nfiles; ++i) {
    const Bytes data = dlsim::generate_file(kind, static_cast<std::uint64_t>(i));
    raw += data.size();
    packed += codec.compress(as_view(data)).size();
  }
  return static_cast<double>(raw) / static_cast<double>(packed);
}

}  // namespace

int main() {
  bench::section("Table IV: lzsse8/lz4hc/lzma/xz compression ratios, six datasets");

  const std::map<std::string, std::map<std::string, double>> paper = {
      {"lzsse8", {{"EM", 2.3}, {"Tokamak", 2.6}, {"Lung", 5.7}, {"Astro", 2.6},
                  {"ImageNet", 1.0}, {"Language", 2.8}}},
      {"lz4hc", {{"EM", 2.0}, {"Tokamak", 3.0}, {"Lung", 6.5}, {"Astro", 2.2},
                 {"ImageNet", 1.0}, {"Language", 2.6}}},
      {"lzma", {{"EM", 4.0}, {"Tokamak", 3.6}, {"Lung", 10.8}, {"Astro", 3.4},
                {"ImageNet", 1.0}, {"Language", 4.0}}},
      {"xz", {{"EM", 4.0}, {"Tokamak", 3.4}, {"Lung", 10.8}, {"Astro", 3.4},
              {"ImageNet", 1.0}, {"Language", 4.0}}},
  };

  bench::Table table({"Compressor", "EM", "Tok.", "Lung", "Astro", "ImageNet", "Lang."});
  const auto& reg = compress::Registry::instance();
  for (const char* name : {"lzsse8", "lz4hc", "lzma", "xz"}) {
    const auto* codec = reg.by_name(name);
    std::vector<std::string> cells{name};
    for (const auto& spec : dlsim::all_dataset_specs()) {
      const int n = spec.kind == dlsim::DatasetKind::kTokamakNpz ? 32 : 4;
      cells.push_back(bench::fmt("%.1f", measure_ratio(*codec, spec.kind, n)));
    }
    table.row(std::move(cells));
    std::vector<std::string> pcells{std::string("  (paper)")};
    for (const char* ds : {"EM", "Tokamak", "Lung", "Astro", "ImageNet", "Language"}) {
      pcells.push_back(bench::fmt("%.1f", paper.at(name).at(ds)));
    }
    table.row(std::move(pcells));
  }
  table.print();
  std::printf(
      "\nClaim check: Lung compresses most, ImageNet ~1.0, lzma/xz >= lz4hc\n"
      "on compressible datasets (absolute values depend on the synthetic\n"
      "generators; see DESIGN.md for the substitution).\n");
  return 0;
}
