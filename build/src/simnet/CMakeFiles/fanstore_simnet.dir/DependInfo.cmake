
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/codec_speed.cpp" "src/simnet/CMakeFiles/fanstore_simnet.dir/codec_speed.cpp.o" "gcc" "src/simnet/CMakeFiles/fanstore_simnet.dir/codec_speed.cpp.o.d"
  "/root/repo/src/simnet/models.cpp" "src/simnet/CMakeFiles/fanstore_simnet.dir/models.cpp.o" "gcc" "src/simnet/CMakeFiles/fanstore_simnet.dir/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/fanstore_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fanstore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
