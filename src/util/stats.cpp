#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fanstore {

void Stats::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Stats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Stats::sum() const {
  double s = 0;
  for (double x : samples_) s += x;
  return s;
}

double Stats::mean() const {
  if (samples_.empty()) throw std::logic_error("Stats::mean on empty set");
  return sum() / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::min() const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("Stats::min on empty set");
  return samples_.front();
}

double Stats::max() const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("Stats::max on empty set");
  return samples_.back();
}

double Stats::percentile(double p) const {
  ensure_sorted();
  if (samples_.empty()) throw std::logic_error("Stats::percentile on empty set");
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0 || hi <= lo) throw std::invalid_argument("bad histogram range");
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  if (t < 0) t = 0;
  if (t >= 1) t = std::nextafter(1.0, 0.0);
  counts_[static_cast<std::size_t>(t * static_cast<double>(counts_.size()))]++;
  total_++;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

}  // namespace fanstore
