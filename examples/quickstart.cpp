// Quickstart: the full FanStore flow on a tiny in-memory dataset.
//
//   1. generate a small dataset into a "shared filesystem"
//   2. package it into compressed partitions (fanstore-prep, §V-B)
//   3. launch a 4-rank FanStore "cluster" (ranks = threads)
//   4. each rank loads its partitions, exchanges metadata, starts a daemon
//   5. read files through the POSIX-style interface from any rank
//      (local decompress or remote fetch, transparently)
//   6. write a checkpoint through the same interface
//
// Run: ./quickstart [--ranks=4] [--files=24] [--compressor=lz4hc]
#include <cstdio>

#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "posixfs/interceptor.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "util/cli.hpp"

using namespace fanstore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const std::size_t nfiles = static_cast<std::size_t>(args.get_int("files", 24));
  const std::string codec = args.get("compressor", "lz4hc");

  // 1-2. Dataset + preparation on the shared filesystem.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs source;
    dlsim::materialize_dataset(source, "dataset", dlsim::DatasetKind::kLanguageTxt,
                               nfiles);
    prep::PrepOptions opt;
    opt.num_partitions = ranks;
    opt.compressor = codec;
    opt.threads = 4;
    const auto manifest = prep::prepare_dataset(source, "dataset", shared, "packed", opt);
    std::printf("prepared %zu partitions, ratio %.2fx (%.1f KB -> %.1f KB)\n",
                manifest.partitions.size(), manifest.ratio(),
                manifest.total_raw() / 1e3, manifest.total_packed() / 1e3);
  }

  // 3-6. The FanStore "cluster".
  mpi::run_world(ranks, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto manifest = prep::load_manifest(shared, "packed");
    inst.load_from_shared(shared, manifest.partition_paths());
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    // Mount FanStore under /fs as the training program would see it.
    posixfs::Interceptor posix;
    posix.mount("fs", &inst.fs());

    // Enumerate the dataset — all metadata served from local RAM.
    const auto files = prep::list_files_recursive(posix, "fs/dataset");
    if (comm.rank() == 0) {
      std::printf("rank 0 sees %zu files through the mount point\n", files.size());
    }

    // Read a handful of files; remote ones are fetched transparently.
    std::size_t bytes = 0;
    for (std::size_t i = static_cast<std::size_t>(comm.rank()); i < files.size();
         i += static_cast<std::size_t>(comm.size())) {
      const auto data = posixfs::read_file(posix, files[i]);
      if (!data) {
        std::fprintf(stderr, "rank %d: failed to read %s\n", comm.rank(),
                     files[i].c_str());
        return;
      }
      bytes += data->size();
    }
    comm.barrier();
    const auto stats = inst.fs().stats();
    std::printf(
        "rank %d: read %.1f KB  (cache hits %llu, local decompress %llu, "
        "remote fetches %llu)\n",
        comm.rank(), bytes / 1e3, static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.local_misses),
        static_cast<unsigned long long>(stats.remote_fetches));

    // Write a checkpoint (write-once model, §IV-A).
    if (comm.rank() == 0) {
      const std::string ckpt = "fs/output/checkpoint_epoch_1.bin";
      const Bytes weights(4096, 0x42);
      if (posixfs::write_file(posix, ckpt, as_view(weights)) == 0) {
        std::printf("rank 0: wrote %s (%zu bytes)\n", ckpt.c_str(), weights.size());
      }
    }
    comm.barrier();
    std::printf("%s\n", inst.stats_report().c_str());
    comm.barrier();
    inst.stop();
  });
  std::printf("quickstart complete\n");
  return 0;
}
