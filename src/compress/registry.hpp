// Registry of every codec configuration, each with a stable 2-byte id that
// is persisted in the partition format's per-file `compressor` field.
//
// The paper sweeps "180 compressor and option combinations" from lzbench
// (§VII-D); this registry provides the equivalent configuration space for
// our from-scratch suite (the exact count is asserted >= 180 in tests).
#pragma once

#include <string_view>
#include <vector>

#include "compress/compressor.hpp"

namespace fanstore::compress {

struct RegisteredCompressor {
  CompressorId id;
  std::string family;  // e.g. "lz4hc" — groups levels of one algorithm
  const Compressor* codec;
};

class Registry {
 public:
  /// The process-wide registry (configurations are immutable and stateless).
  static const Registry& instance();

  /// Lookup by persisted id; nullptr if unknown.
  const Compressor* by_id(CompressorId id) const;

  /// Lookup by exact configuration name ("lz4hc-9") or family alias
  /// ("lz4hc" resolves to that family's default level). nullptr if unknown.
  const Compressor* by_name(std::string_view name) const;

  /// Id for a configuration name (exact or alias); throws if unknown.
  CompressorId id_by_name(std::string_view name) const;

  /// Id of a registered codec instance; throws if not from this registry.
  CompressorId id_of(const Compressor& codec) const;

  /// All configurations, ordered by id.
  const std::vector<RegisteredCompressor>& all() const { return entries_; }

 private:
  Registry();
  std::vector<std::unique_ptr<Compressor>> owned_;
  std::vector<RegisteredCompressor> entries_;
};

}  // namespace fanstore::compress
