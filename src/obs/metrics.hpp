// Observability: metrics registry (counters, gauges, log-scale latency
// histograms) — the instrumented backbone behind IoStats/cache stats and
// the per-stage timing the paper's evaluation decomposes (open /
// decompress / fetch latency, cache behaviour, interconnect cost).
//
// Hot-path contract: recording is lock-free. A `Counter`, `Gauge`, or
// `Histogram` reference obtained from a `MetricsRegistry` is stable for the
// registry's lifetime; `inc()`/`set()`/`record()` are relaxed atomic
// operations with no lock, allocation, or branch beyond the bucket math.
// Registration (name lookup) takes the registry mutex and is meant for
// construction time, not per-operation.
//
// Snapshots (`MetricsRegistry::snapshot()`) walk the registry under its
// mutex and copy every metric's current value; counter values are
// torn-but-monotonic relative to concurrent writers (same contract the old
// relaxed-atomic IoStats snapshot had).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace fanstore::obs {

/// Monotonic relaxed-atomic counter. Padded to a cache line so distinct
/// counters never false-share.
class alignas(64) Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins signed gauge (occupancy, queue depth).
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Plain copy of a histogram's state; quantile queries run on the copy so
/// they are self-consistent even while writers keep recording.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // per-bucket occupancy
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  struct Bounds {
    std::uint64_t lo = 0;  // inclusive
    std::uint64_t hi = 0;  // inclusive
  };

  /// Bucket bounds of the p-th percentile (p in [0,100]): the bucket
  /// holding the sample of rank ceil(p/100 * count). The exact sorted-
  /// sample quantile is guaranteed to lie within the returned bounds.
  Bounds quantile_bounds(double p) const;

  /// Point estimate: midpoint of quantile_bounds(p). 0 when empty.
  double quantile(double p) const;
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed-bucket log-scale histogram over non-negative integer samples
/// (latencies in microseconds, sizes in bytes). Buckets are base-2
/// octaves with 4 linear sub-buckets each, so the relative bucket width —
/// and therefore the worst-case quantile error — is <= 25%. Values 0..3
/// get exact singleton buckets. record() is two relaxed fetch_adds plus
/// the bucket math; no lock.
class Histogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSub = 1 << kSubBits;          // sub-buckets per octave
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSub;

  void record(std::uint64_t v) {
    counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Bucket index for a sample value.
  static int bucket_of(std::uint64_t v);
  /// Inclusive value range covered by bucket `i`.
  static HistogramSnapshot::Bounds bucket_bounds(int i);

  HistogramSnapshot snapshot() const;
  /// Convenience: quantile over a fresh snapshot.
  double quantile(double p) const { return snapshot().quantile(p); }

 private:
  std::atomic<std::uint64_t> counts_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every metric in a registry, sorted by name.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t counter = 0;   // kCounter
    std::int64_t gauge = 0;      // kGauge
    HistogramSnapshot hist;      // kHistogram
  };
  std::vector<Entry> entries;

  const Entry* find(const std::string& name) const;
  /// Counter value by name; 0 when absent (delta math stays simple).
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;

  /// "name value" lines; histograms expand to count/mean/p50/p95/p99.
  std::string to_text() const;
  /// One JSON object keyed by metric name.
  std::string to_json() const;
};

/// Named-metric registry. get-or-create accessors return stable references;
/// re-registering a name with a different metric type throws.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) EXCLUDES(mu_);

  MetricsSnapshot snapshot() const EXCLUDES(mu_);

  /// Process-wide default registry (used where no per-rank registry is
  /// plumbed: mpi world counters, generic prefetchers).
  static MetricsRegistry& global();

 private:
  struct Slot {
    MetricsSnapshot::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& slot(const std::string& name, MetricsSnapshot::Kind kind) REQUIRES(mu_);

  mutable sync::Mutex mu_{"obs.metrics_registry.mu"};
  std::map<std::string, Slot> slots_ GUARDED_BY(mu_);
};

/// The canonical metric-name inventory (src/obs/metric_names.inc), sorted.
/// Registration sites are held to this list by fanstore-lint's
/// metric-inventory rule; tests use it to assert the inventory and the
/// registry agree.
const std::vector<std::pair<std::string, MetricsSnapshot::Kind>>&
canonical_metric_names();

/// Text (json=false) or JSON (json=true) dump of a registry snapshot.
std::string metrics_dump(const MetricsRegistry& registry, bool json = false);

}  // namespace fanstore::obs

/// C-style export path: snapshot of the process-global registry.
std::string fanstore_metrics_dump(bool json = false);
