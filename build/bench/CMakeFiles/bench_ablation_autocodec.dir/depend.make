# Empty dependencies file for bench_ablation_autocodec.
# This may be replaced when dependencies are built.
