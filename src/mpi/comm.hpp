// In-process MPI subset: ranks are threads, messages are byte buffers moved
// through per-rank mailboxes, and the collectives FanStore needs
// (allgather, barrier, bcast, allreduce) are implemented over a shared
// rendezvous structure.
//
// Substitution note (DESIGN.md §1): the paper launches one FanStore process
// per node with mpiexec and communicates over InfiniBand/Omni-Path. Here
// run_world() plays the role of the MPI launcher and the mailboxes play the
// wire; the daemon protocol and collective usage are identical. Transfer
// *costs* are charged separately by simnet::NetworkModel.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/sync.hpp"

namespace fanstore::fault {
class FaultInjector;
}

namespace fanstore::mpi {

/// Matches any source rank or any tag in recv().
constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

struct Message {
  int source = -1;
  int tag = 0;
  Bytes payload;
};

class World;

/// Per-rank communicator handle. Methods are called from that rank's
/// thread(s); a rank may have several threads (app + daemon) sharing it.
class Comm {
 public:
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// Point-to-point. send() never blocks (mailboxes are unbounded).
  void send(int dest, int tag, Bytes payload) const;

  /// Blocks until a message matching (source, tag) arrives.
  Message recv(int source = kAnySource, int tag = kAnyTag) const;

  /// Non-blocking probe-and-receive; nullopt if nothing matches now.
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag) const;

  /// Blocks until a message satisfying `pred` arrives. Lets multiple
  /// threads of one rank (application + daemon) share the mailbox without
  /// stealing each other's messages.
  Message recv_if(const std::function<bool(const Message&)>& pred) const;

  /// Non-blocking recv_if — the drain primitive behind single-threaded
  /// simulations (cluster::ClusterNode::poll): nullopt when no due message
  /// satisfies `pred`.
  std::optional<Message> try_recv_if(
      const std::function<bool(const Message&)>& pred) const;

  /// Like recv(), but gives up after `timeout_ms` and returns nullopt —
  /// the failure-detection primitive used for replica failover (a dead
  /// daemon never answers).
  std::optional<Message> recv_timeout(int source, int tag, int timeout_ms) const;

  /// Collectives. Every rank must call these in the same order
  /// (standard MPI semantics); only one collective may be in flight.
  void barrier() const;
  std::vector<Bytes> allgather(ByteView mine) const;
  Bytes bcast(int root, ByteView mine) const;
  std::vector<double> allreduce_sum(const std::vector<double>& mine) const;
  double allreduce_max(double mine) const;

 private:
  World* world_;
  int rank_;
};

/// Shared state for one "job": mailboxes and collective rendezvous.
///
/// Fault injection (fault/injector.hpp): when a FaultInjector is attached,
/// every point-to-point deliver() consults it — messages may be dropped,
/// duplicated, corrupted in place, or delayed (held in the mailbox until a
/// due time; receivers never see them early). Self-addressed messages
/// (e.g. the daemon's shutdown token) and collectives are exempt, so a
/// chaos plan cannot wedge teardown or desynchronize barrier generations.
class World {
 public:
  /// `time` is the clock every mailbox due-time and recv_timeout deadline
  /// is computed against (nullptr = the real wall clock). Tests inject a
  /// util::ManualTimeSource so delayed delivery and timeout expiry become
  /// deterministic functions of the test script instead of the scheduler.
  explicit World(int nranks, fault::FaultInjector* injector = nullptr,
                 util::TimeSource* time = nullptr);

  int size() const { return nranks_; }
  Comm comm(int rank) { return Comm(this, rank); }

 private:
  friend class Comm;

  // Lock order: a thread holds at most one mailbox lock at a time (deliver
  // locks the destination's, take_matching the receiver's own), and never a
  // mailbox lock together with coll_mu_.
  // A mailbox entry is a message plus its delivery due-time (now for
  // normal traffic, later for fault-injected delays); take_matching never
  // hands out an entry before it is due.
  struct Entry {
    Message msg;
    util::TimeNs due;  // on time_'s timeline
  };
  struct Mailbox {
    sync::Mutex mu{"mpi.mailbox.mu"};
    sync::AnnotatedCondVar cv;
    std::deque<Entry> queue GUARDED_BY(mu);
  };

  void deliver(int dest, Message msg);
  std::optional<Message> take_matching(int rank,
                                       const std::function<bool(const Message&)>& pred,
                                       bool block, int timeout_ms = -1);

  void barrier_impl() EXCLUDES(coll_mu_);
  std::vector<Bytes> allgather_impl(int rank, ByteView mine) EXCLUDES(coll_mu_);

  int nranks_;
  fault::FaultInjector* injector_;
  util::TimeSource* time_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Interconnect observability ("mpi.*" in the global registry): message
  // and byte totals the wire would carry; bumped lock-free on deliver.
  obs::Counter& messages_sent_;
  obs::Counter& bytes_sent_;
  obs::Counter& collectives_;

  // Generation-counted rendezvous shared by all collectives.
  sync::Mutex coll_mu_{"mpi.coll_mu"};
  sync::AnnotatedCondVar coll_cv_;
  int coll_arrived_ GUARDED_BY(coll_mu_) = 0;
  std::uint64_t coll_generation_ GUARDED_BY(coll_mu_) = 0;
  std::vector<Bytes> coll_slots_ GUARDED_BY(coll_mu_);
};

/// Spawns `nranks` threads, runs `fn(comm)` on each, joins them all.
/// Exceptions thrown by any rank are rethrown (first one wins) after join.
/// `injector` (may be nullptr) attaches a fault-injection plan to every
/// point-to-point message of the world (chaos tests); `time` (may be
/// nullptr = wall clock) is the world's delivery/timeout clock.
void run_world(int nranks, const std::function<void(Comm&)>& fn,
               fault::FaultInjector* injector = nullptr,
               util::TimeSource* time = nullptr);

}  // namespace fanstore::mpi
