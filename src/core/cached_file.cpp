#include "core/cached_file.hpp"

#include <algorithm>
#include <cstring>

#include "util/thread_pool.hpp"

namespace fanstore::core {

CachedFile::CachedFile(Bytes plain) : plain_(std::move(plain)) {}

CachedFile::CachedFile(Bytes compressed, compress::CompressorId chunked_id,
                       std::size_t original_size)
    : compressed_(std::move(compressed)) {
  frame_ = compress::ChunkedFrame::parse(as_view(compressed_), original_size);
  if (frame_.inner_id() != compress::chunked_inner_id(chunked_id) ||
      frame_.chunk_size() != compress::chunked_chunk_size(chunked_id)) {
    throw compress::CorruptDataError(
        "chunked: frame does not match recorded compressor id");
  }
  chunk_count_ = frame_.chunk_count();
  plain_.resize(original_size);
  states_ = std::make_unique<std::atomic<std::uint8_t>[]>(chunk_count_);
  for (std::size_t i = 0; i < chunk_count_; ++i) {
    states_[i].store(kEmpty, std::memory_order_relaxed);
  }
}

bool CachedFile::ensure_chunk(std::size_t i) {
  // Fast path: already decoded and published.
  if (states_[i].load(std::memory_order_acquire) == kReady) return false;
  {
    sync::MutexLock lk(mu_);
    for (;;) {
      const std::uint8_t st = states_[i].load(std::memory_order_acquire);
      if (st == kReady) return false;
      if (st == kEmpty) {
        states_[i].store(kDecoding, std::memory_order_relaxed);
        break;  // we own the decode
      }
      // Another thread is decoding this chunk: wait for it to settle
      // (ready, or back to empty after a failed decode we then retry).
      decode_done_.wait(mu_, [&]() NO_THREAD_SAFETY_ANALYSIS {
        return states_[i].load(std::memory_order_acquire) != kDecoding;
      });
    }
  }
  // Decode with no lock held; distinct chunks write disjoint plain_ ranges.
  try {
    frame_.decode_chunk_into(
        i, MutByteView(plain_.data() + frame_.chunk_begin(i),
                       frame_.chunk_plain_size(i)));
  } catch (...) {
    sync::MutexLock lk(mu_);
    states_[i].store(kEmpty, std::memory_order_release);
    decode_done_.notify_all();
    throw;
  }
  {
    sync::MutexLock lk(mu_);
    states_[i].store(kReady, std::memory_order_release);
    ready_chunks_.fetch_add(1, std::memory_order_acq_rel);
    decode_done_.notify_all();
  }
  return true;
}

void CachedFile::read_range(std::size_t offset, MutByteView out,
                            DecodeStats* stats) {
  if (out.empty()) return;
  if (chunk_count_ > 0 && !fully_materialized()) {
    const std::size_t cs = frame_.chunk_size();
    const std::size_t first = offset / cs;
    const std::size_t last = (offset + out.size() - 1) / cs;
    for (std::size_t i = first; i <= last; ++i) {
      if (ensure_chunk(i) && stats != nullptr) {
        stats->chunks_decoded++;
        stats->bytes_decoded += frame_.chunk_plain_size(i);
      }
    }
  }
  std::memcpy(out.data(), plain_.data() + offset, out.size());
}

void CachedFile::materialize_all(std::size_t threads, DecodeStats* stats) {
  if (chunk_count_ == 0 || fully_materialized()) return;
  std::vector<std::size_t> missing;
  missing.reserve(chunk_count_);
  for (std::size_t i = 0; i < chunk_count_; ++i) {
    if (states_[i].load(std::memory_order_acquire) != kReady) {
      missing.push_back(i);
    }
  }
  std::atomic<std::size_t> decoded{0};
  std::atomic<std::size_t> bytes{0};
  parallel_for(missing.size(), threads, [&](std::size_t k) {
    const std::size_t i = missing[k];
    if (ensure_chunk(i)) {
      decoded.fetch_add(1, std::memory_order_relaxed);
      bytes.fetch_add(frame_.chunk_plain_size(i), std::memory_order_relaxed);
    }
  });
  if (stats != nullptr) {
    stats->chunks_decoded += decoded.load(std::memory_order_relaxed);
    stats->bytes_decoded += bytes.load(std::memory_order_relaxed);
  }
}

std::size_t CachedFile::charge_bytes() const {
  if (chunk_count_ == 0) return plain_.size();
  const std::size_t ready = ready_chunks_.load(std::memory_order_acquire);
  // Materialized plain bytes: full chunks plus a possibly-short tail. Using
  // ready * chunk_size clamped to size() over-counts only when the tail
  // chunk is ready but an interior one is not — a transient, conservative
  // bound.
  const std::size_t plain_bytes =
      std::min(plain_.size(), ready * frame_.chunk_size());
  return compressed_.size() + plain_bytes;
}

}  // namespace fanstore::core
