// fanstore-prep: package a dataset directory into compressed partitions.
//
// Usage:
//   fanstore-prep --src=<dataset dir> --dst=<output dir>
//       [--partitions=N] [--compressor=lz4hc] [--threads=T]
//       [--broadcast=reldir1,reldir2] [--chunk-size=256k]
//
// Operates on the real filesystem; the dataset is read relative to --src
// and partitions + manifest.txt are written under --dst.
#include <cstdio>
#include <sstream>

#include "posixfs/local_vfs.hpp"
#include "prep/prepare.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fanstore;
  const CliArgs args(argc, argv);
  const std::string src = args.get("src", "");
  const std::string dst = args.get("dst", "");
  if (src.empty() || dst.empty() || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s --src=<dataset dir> --dst=<output dir>\n"
                 "          [--partitions=N] [--compressor=NAME|auto-a,b,c]\n"
                 "          [--threads=T] [--broadcast=dir1,dir2]\n"
                 "          [--chunk-size=BYTES[k|m]]  (chunked container;\n"
                 "           power of two >= 4k, enables parallel/partial\n"
                 "           decode at read time)\n",
                 args.program().c_str());
    return src.empty() || dst.empty() ? 2 : 0;
  }

  prep::PrepOptions options;
  options.num_partitions = static_cast<int>(args.get_int("partitions", 4));
  options.compressor = args.get("compressor", "lz4hc");
  options.threads = static_cast<int>(args.get_int("threads", 4));
  {
    std::stringstream ss(args.get("broadcast", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) options.broadcast_dirs.push_back(item);
    }
  }
  {
    std::string cs = args.get("chunk-size", "");
    if (!cs.empty()) {
      std::size_t mult = 1;
      const char tail = cs.back();
      if (tail == 'k' || tail == 'K') { mult = 1024; cs.pop_back(); }
      else if (tail == 'm' || tail == 'M') { mult = 1024 * 1024; cs.pop_back(); }
      options.chunk_size = static_cast<std::size_t>(std::stoull(cs)) * mult;
    }
  }

  try {
    posixfs::LocalVfs src_fs{src};
    posixfs::LocalVfs dst_fs{dst};
    const prep::Manifest m = prep::prepare_dataset(src_fs, "", dst_fs, "", options);
    std::size_t files = 0;
    for (const auto& p : m.partitions) files += p.num_files;
    for (const auto& p : m.broadcasts) files += p.num_files;
    std::printf("packaged %zu files into %zu partitions + %zu broadcast sets\n",
                files, m.partitions.size(), m.broadcasts.size());
    std::printf("raw %.1f MB -> packed %.1f MB (ratio %.2fx)\n",
                static_cast<double>(m.total_raw()) / 1e6,
                static_cast<double>(m.total_packed()) / 1e6, m.ratio());
    std::printf("manifest: %s/manifest.txt\n", dst.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fanstore-prep: %s\n", e.what());
    return 1;
  }
}
