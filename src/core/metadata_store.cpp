#include "core/metadata_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace fanstore::core {

namespace {
std::pair<std::string, std::string> split_parent(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return {std::string{}, path};
  return {path.substr(0, slash), path.substr(slash + 1)};
}
}  // namespace

void MetadataStore::index_parents_locked(const std::string& path) {
  // Walk up: file itself is registered by caller; here we register each
  // ancestor directory and its child link.
  std::string current = path;
  bool child_is_dir = false;
  for (;;) {
    auto [parent, name] = split_parent(current);
    children_[parent].insert({name, child_is_dir});
    if (parent.empty()) break;
    dirs_.insert(parent);
    current = parent;
    child_is_dir = true;
  }
}

void MetadataStore::insert(const std::string& path, const format::FileStat& stat) {
  if (path.empty()) throw std::invalid_argument("MetadataStore: empty path");
  sync::MutexLock lk(mu_);
  files_[path] = stat;
  index_parents_locked(path);
}

std::optional<format::FileStat> MetadataStore::lookup(const std::string& path) const {
  sync::MutexLock lk(mu_);
  const auto it = files_.find(path);
  if (it != files_.end()) return it->second;
  if (path.empty() || dirs_.count(path) > 0) {
    format::FileStat s;
    s.type = format::FileType::kDirectory;
    s.mode = 0755;
    return s;
  }
  return std::nullopt;
}

bool MetadataStore::dir_exists(const std::string& path) const {
  sync::MutexLock lk(mu_);
  return path.empty() || dirs_.count(path) > 0;
}

std::vector<posixfs::Dirent> MetadataStore::list(const std::string& dir) const {
  sync::MutexLock lk(mu_);
  std::vector<posixfs::Dirent> out;
  const auto it = children_.find(dir);
  if (it == children_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [name, is_dir] : it->second) {
    out.push_back(posixfs::Dirent{
        name, is_dir ? format::FileType::kDirectory : format::FileType::kRegular});
  }
  return out;
}

std::size_t MetadataStore::file_count() const {
  sync::MutexLock lk(mu_);
  return files_.size();
}

std::vector<std::string> MetadataStore::all_paths() const {
  sync::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [p, s] : files_) out.push_back(p);
  std::sort(out.begin(), out.end());
  return out;
}

Bytes MetadataStore::serialize() const {
  sync::MutexLock lk(mu_);
  Bytes out;
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(files_.size()));
  for (const auto& [path, stat] : files_) {
    append_le<std::uint16_t>(out, static_cast<std::uint16_t>(path.size()));
    out.insert(out.end(), path.begin(), path.end());
    out.resize(out.size() + format::kStatBytes);
    stat.serialize(out.data() + out.size() - format::kStatBytes);
  }
  return out;
}

void MetadataStore::merge_serialized(ByteView blob) {
  if (blob.size() < 4) {
    if (blob.empty()) return;
    throw std::invalid_argument("MetadataStore: truncated metadata blob");
  }
  const std::uint32_t count = load_le<std::uint32_t>(blob.data());
  std::size_t pos = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 2 > blob.size()) {
      throw std::invalid_argument("MetadataStore: truncated entry header");
    }
    const std::uint16_t len = load_le<std::uint16_t>(blob.data() + pos);
    pos += 2;
    if (pos + len + format::kStatBytes > blob.size()) {
      throw std::invalid_argument("MetadataStore: truncated entry body");
    }
    std::string path(reinterpret_cast<const char*>(blob.data() + pos), len);
    pos += len;
    const auto stat = format::FileStat::deserialize(blob.data() + pos);
    pos += format::kStatBytes;
    insert(path, stat);
  }
}

}  // namespace fanstore::core
