file(REMOVE_RECURSE
  "libfanstore_simnet.a"
)
