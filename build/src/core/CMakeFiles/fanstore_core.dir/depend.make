# Empty dependencies file for fanstore_core.
# This may be replaced when dependencies are built.
