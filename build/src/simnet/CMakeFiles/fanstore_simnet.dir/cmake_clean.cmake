file(REMOVE_RECURSE
  "CMakeFiles/fanstore_simnet.dir/codec_speed.cpp.o"
  "CMakeFiles/fanstore_simnet.dir/codec_speed.cpp.o.d"
  "CMakeFiles/fanstore_simnet.dir/models.cpp.o"
  "CMakeFiles/fanstore_simnet.dir/models.cpp.o.d"
  "libfanstore_simnet.a"
  "libfanstore_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
