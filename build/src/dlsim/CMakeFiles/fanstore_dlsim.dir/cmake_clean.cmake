file(REMOVE_RECURSE
  "CMakeFiles/fanstore_dlsim.dir/apps.cpp.o"
  "CMakeFiles/fanstore_dlsim.dir/apps.cpp.o.d"
  "CMakeFiles/fanstore_dlsim.dir/datagen.cpp.o"
  "CMakeFiles/fanstore_dlsim.dir/datagen.cpp.o.d"
  "CMakeFiles/fanstore_dlsim.dir/prefetcher.cpp.o"
  "CMakeFiles/fanstore_dlsim.dir/prefetcher.cpp.o.d"
  "CMakeFiles/fanstore_dlsim.dir/tfrecord.cpp.o"
  "CMakeFiles/fanstore_dlsim.dir/tfrecord.cpp.o.d"
  "CMakeFiles/fanstore_dlsim.dir/trainer.cpp.o"
  "CMakeFiles/fanstore_dlsim.dir/trainer.cpp.o.d"
  "libfanstore_dlsim.a"
  "libfanstore_dlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_dlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
