# Empty dependencies file for bench_table6_fsperf.
# This may be replaced when dependencies are built.
