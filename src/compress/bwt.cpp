// Burrows-Wheeler + move-to-front transform codec stage (bzip2-lite's
// core). Size-preserving apart from an 8-byte header per block; composed
// with RLE + Huffman in the registry to form the "bzip2-N" family.
//
// The forward transform builds a suffix array by prefix doubling
// (O(n log^2 n)); the inverse is the standard LF-mapping walk (O(n)), so
// decompression sits in the mid-speed band where real bzip2 lives.
#include <algorithm>
#include <cstring>
#include <vector>

#include "compress/codecs.hpp"
#include "compress/suffix_array.hpp"

namespace fanstore::compress {
namespace {

// BWT from the suffix array of s + virtual sentinel (smallest, unique).
// Row 0 of the sorted matrix is the sentinel rotation; we omit it and
// record `primary` = position of the original string among the rows.
void bwt_forward(ByteView s, Bytes* out, std::uint32_t* primary) {
  const std::size_t n = s.size();
  const auto sa = suffix_array_sais(s);
  out->clear();
  out->reserve(n);
  // Sorted suffixes of s+sentinel = [sentinel suffix] + suffixes by sa.
  // BWT column: char preceding each suffix (cyclically, sentinel dropped).
  *primary = 0;
  out->push_back(s[n - 1]);  // the sentinel row's preceding char
  for (std::size_t i = 0; i < n; ++i) {
    if (sa[i] == 0) {
      *primary = static_cast<std::uint32_t>(i + 1);
      continue;  // preceding char is the sentinel: skip it
    }
    out->push_back(s[sa[i] - 1]);
  }
}

Bytes bwt_inverse(ByteView bwt, std::uint32_t primary, std::size_t n) {
  if (bwt.size() != n || primary > n) throw CorruptDataError("bwt: bad block header");
  // Positions: the sorted column has the sentinel first (row `primary` had
  // its char dropped). Reconstruct LF mapping over n+1 rows where row
  // `primary` holds the sentinel in the BWT column.
  auto sym_at = [&](std::size_t row) -> int {
    // Rows before `primary` take bwt[row]; row `primary` is the sentinel;
    // rows after take bwt[row-1].
    if (row == primary) return 256;  // sentinel marker (smallest? no: row idx)
    return bwt[row < primary ? row : row - 1];
  };
  const std::size_t rows = n + 1;
  // Counting sort of the BWT column (sentinel = symbol -1, smallest).
  std::vector<std::uint32_t> occ(rows);  // occurrence rank within symbol
  std::vector<std::uint32_t> totals(258, 0);
  for (std::size_t row = 0; row < rows; ++row) {
    const int sym = sym_at(row);
    const std::size_t bucket = sym == 256 ? 0 : static_cast<std::size_t>(sym) + 1;
    occ[row] = totals[bucket]++;
  }
  // first[sym] = starting row of `sym` in the sorted first column.
  std::vector<std::uint32_t> first(258, 0);
  std::uint32_t acc = 0;
  for (std::size_t b = 0; b < 258; ++b) {
    first[b] = acc;
    acc += totals[b];
  }
  // Walk LF from the row whose first-column char is the sentinel (row 0 in
  // sorted order) backwards, emitting characters in reverse.
  Bytes out(n);
  std::size_t row = 0;  // sorted row 0 = sentinel row; its BWT char is s[n-1]
  for (std::size_t i = n; i-- > 0;) {
    const int sym = sym_at(row);
    if (sym == 256) throw CorruptDataError("bwt: sentinel cycle");
    out[i] = static_cast<std::uint8_t>(sym);
    row = first[static_cast<std::size_t>(sym) + 1] + occ[row];
  }
  return out;
}

// Move-to-front transform (in place semantics on a copy).
void mtf_forward(MutByteView data) {
  std::uint8_t table[256];
  for (int i = 0; i < 256; ++i) table[i] = static_cast<std::uint8_t>(i);
  for (auto& b : data) {
    const std::uint8_t sym = b;
    std::uint8_t idx = 0;
    while (table[idx] != sym) ++idx;
    b = idx;
    std::memmove(table + 1, table, idx);
    table[0] = sym;
  }
}

void mtf_inverse(MutByteView data) {
  std::uint8_t table[256];
  for (int i = 0; i < 256; ++i) table[i] = static_cast<std::uint8_t>(i);
  for (auto& b : data) {
    const std::uint8_t idx = b;
    const std::uint8_t sym = table[idx];
    b = sym;
    std::memmove(table + 1, table, idx);
    table[0] = sym;
  }
}

class BwtMtfCompressor final : public Compressor {
 public:
  explicit BwtMtfCompressor(std::size_t block) : block_(block) {}

  std::string name() const override {
    return "bwtmtf-" + std::to_string(block_ / 1024) + "k";
  }

  Bytes compress(ByteView src) const override {
    Bytes out;
    out.reserve(src.size() + src.size() / block_ * 8 + 16);
    for (std::size_t off = 0; off < src.size(); off += block_) {
      const std::size_t len = std::min(block_, src.size() - off);
      append_le<std::uint32_t>(out, static_cast<std::uint32_t>(len));
      Bytes column;
      std::uint32_t primary = 0;
      bwt_forward(src.subspan(off, len), &column, &primary);
      append_le<std::uint32_t>(out, primary);
      mtf_forward(MutByteView{column.data(), column.size()});
      out.insert(out.end(), column.begin(), column.end());
    }
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    Bytes out;
    out.reserve(original_size);
    std::size_t pos = 0;
    while (out.size() < original_size) {
      if (pos + 8 > src.size()) throw CorruptDataError("bwtmtf: truncated header");
      const std::uint32_t len = load_le<std::uint32_t>(src.data() + pos);
      const std::uint32_t primary = load_le<std::uint32_t>(src.data() + pos + 4);
      pos += 8;
      if (len == 0 || out.size() + len > original_size) {
        throw CorruptDataError("bwtmtf: bad block length");
      }
      if (pos + len > src.size()) throw CorruptDataError("bwtmtf: truncated block");
      Bytes column(src.begin() + static_cast<std::ptrdiff_t>(pos),
                   src.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
      mtf_inverse(MutByteView{column.data(), column.size()});
      const Bytes plain = bwt_inverse(as_view(column), primary, len);
      out.insert(out.end(), plain.begin(), plain.end());
    }
    return out;
  }

 private:
  std::size_t block_;
};

}  // namespace

std::unique_ptr<Compressor> make_bwtmtf(std::size_t block) {
  return std::make_unique<BwtMtfCompressor>(block);
}

}  // namespace fanstore::compress
