# Empty compiler generated dependencies file for fanstore_ipc.
# This may be replaced when dependencies are built.
