// Compressor advisor: the §VI workflow as a user-facing tool.
//
// Given a dataset (a real directory, or a built-in synthetic dataset) and
// application parameters, it profiles candidate codecs on samples, measures
// the decompression/ratio trade-off, runs the selection algorithm against
// the target cluster's I/O profile, and prints a recommendation.
//
// Run: ./compressor_advisor [--dataset=em|tokamak|lung|astro|imagenet|text]
//                          [--dir=/path/to/real/files]
//                          [--t-iter-ms=9689] [--batch=256] [--sync]
//                          [--cluster=gtx|v100|cpu] [--required-ratio=2.0]
//                          [--tolerance=0.01]
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "dlsim/datagen.hpp"
#include "posixfs/local_vfs.hpp"
#include "prep/prepare.hpp"
#include "select/selection.hpp"
#include "simnet/models.hpp"
#include "util/cli.hpp"

using namespace fanstore;

namespace {

dlsim::DatasetKind kind_of(const std::string& name) {
  if (name == "em") return dlsim::DatasetKind::kEmTif;
  if (name == "tokamak") return dlsim::DatasetKind::kTokamakNpz;
  if (name == "lung") return dlsim::DatasetKind::kLungNii;
  if (name == "astro") return dlsim::DatasetKind::kAstroFits;
  if (name == "imagenet") return dlsim::DatasetKind::kImagenetJpg;
  return dlsim::DatasetKind::kLanguageTxt;
}

simnet::ClusterSpec cluster_of(const std::string& name) {
  if (name == "v100") return simnet::v100_cluster();
  if (name == "cpu") return simnet::cpu_cluster();
  return simnet::gtx_cluster();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  // --- Collect samples ---
  std::vector<Bytes> samples;
  if (args.has("dir")) {
    posixfs::LocalVfs fs{args.get("dir", ".")};
    const auto files = prep::list_files_recursive(fs, "");
    for (std::size_t i = 0; i < files.size() && samples.size() < 8;
         i += std::max<std::size_t>(1, files.size() / 8)) {
      if (auto data = posixfs::read_file(fs, files[i])) samples.push_back(*data);
    }
    std::printf("sampled %zu of %zu files from %s\n", samples.size(), files.size(),
                args.get("dir", ".").c_str());
  } else {
    const auto kind = kind_of(args.get("dataset", "em"));
    for (int i = 0; i < 6; ++i) {
      samples.push_back(dlsim::generate_file(kind, static_cast<std::uint64_t>(i)));
    }
    std::printf("using 6 synthetic '%s' samples\n", args.get("dataset", "em").c_str());
  }
  if (samples.empty()) {
    std::fprintf(stderr, "no samples found\n");
    return 1;
  }
  std::size_t sample_bytes = 0;
  for (const auto& s : samples) sample_bytes += s.size();
  const double avg_bytes =
      static_cast<double>(sample_bytes) / static_cast<double>(samples.size());

  // --- Application profile ---
  select::AppProfile app;
  app.name = "user-app";
  app.async_io = !args.get_bool("sync", false);
  app.t_iter_s = args.get_double("t-iter-ms", 655) / 1000.0;
  app.c_batch_files = static_cast<double>(args.get_int("batch", 256));
  app.s_batch_raw_mb = app.c_batch_files * avg_bytes / 1e6;
  app.io_parallelism = static_cast<int>(args.get_int("io-threads", 4));

  // --- Cluster I/O profile (Table VI style) ---
  const auto cluster = cluster_of(args.get("cluster", "gtx"));
  const auto read_path = simnet::fanstore_read_path(cluster);
  const double t_file = read_path.file_read_time(static_cast<std::size_t>(avg_bytes));
  const select::IoProfile io{1.0 / t_file, avg_bytes / t_file / 1e6};

  // --- Profile candidates and select ---
  const std::vector<std::string> names = {"lzsse8", "lzf",  "lz4",    "lz4hc",
                                          "deflate", "zling", "brotli", "lzma", "xz"};
  std::printf("profiling %zu candidate codecs on %.1f KB of samples...\n\n",
              names.size(), sample_bytes / 1e3);
  const auto candidates = select::profile_candidates(samples, names);
  const auto result = select::select_compressor(
      app, io, candidates, args.get_double("required-ratio", 1.0),
      args.get_double("tolerance", 0.01));

  bench::Table table({"codec", "ratio", "decomp us/file", "strict Eq.1/2",
                      "pred. slowdown", "verdict"});
  for (const auto& e : result.evaluated) {
    const bool ok = std::any_of(result.feasible.begin(), result.feasible.end(),
                                [&](const auto& f) { return f.name == e.stats.name; });
    table.row({e.stats.name, bench::fmt("%.2f", e.stats.ratio),
               bench::fmt("%.0f", e.stats.decompress_s_per_file * 1e6),
               e.strict_feasible ? "pass" : "fail",
               bench::fmt("%.2f%%", e.slowdown * 100), ok ? "feasible" : "rejected"});
  }
  table.print();

  if (result.best) {
    std::printf("\nrecommendation: %s (ratio %.2fx%s)\n", result.best->name.c_str(),
                result.best->ratio,
                result.meets_required_ratio ? ", meets required capacity"
                                            : ", BELOW required capacity");
    std::printf("prepare with:  fanstore-prep --src=<data> --dst=<out> "
                "--compressor=%s\n", result.best->name.c_str());
  } else {
    std::printf("\nno codec preserves performance; host raw data (store)\n");
  }
  return 0;
}
