// Unix-domain-socket front door of the FanStore daemon: serves any Vfs
// (normally a FanStoreFs / Interceptor) to other processes on the node —
// the §V-A interceptor-to-daemon boundary as a real process boundary.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "posixfs/vfs.hpp"

namespace fanstore::ipc {

class UdsServer {
 public:
  /// Serves `fs` at the socket `path` (unlinked/recreated on start).
  UdsServer(std::string socket_path, posixfs::Vfs& fs);
  ~UdsServer();

  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Binds, listens, and starts the accept loop; throws on socket errors.
  void start();

  /// Stops accepting, closes the listener, joins workers. Idempotent.
  void stop();

  std::uint64_t requests_served() const { return served_.load(); }
  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_loop();
  void serve_connection(int client_fd);

  std::string socket_path_;
  posixfs::Vfs& fs_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<int> client_fds_;  // live connections, for shutdown on stop()
  std::mutex workers_mu_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace fanstore::ipc
