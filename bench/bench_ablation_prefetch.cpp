// Ablation: the real asynchronous prefetch mechanism (Fig. 5b), measured in
// wall-clock time rather than the trainer's virtual-time model.
//
// A single-rank FanStore holds lzma-compressed files (expensive to
// decompress). A training loop alternates I/O (read the batch) and compute
// (a fixed busy period). Synchronous: the decompression stall lands on the
// critical path every iteration. With the Prefetcher warming batch i+1
// during compute of batch i, reads become cache hits and the stall
// disappears — the mechanism that makes Eq. 2's budget so much looser than
// Eq. 1's.
#include <chrono>
#include <thread>

#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/prefetcher.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

constexpr int kBatch = 8;
constexpr int kIterations = 8;
constexpr int kFiles = kBatch * kIterations;
constexpr auto kComputeMs = std::chrono::milliseconds(30);

std::vector<std::string> batch_paths(int iter) {
  std::vector<std::string> out;
  for (int b = 0; b < kBatch; ++b) {
    out.push_back("ds/f" + std::to_string((iter * kBatch + b) % kFiles));
  }
  return out;
}

void read_batch(posixfs::Vfs& fs, int iter, Bytes& buf) {
  for (const auto& path : batch_paths(iter)) {
    const int fd = fs.open(path, posixfs::OpenMode::kRead);
    while (fs.read(fd, MutByteView{buf.data(), buf.size()}) > 0) {
    }
    fs.close(fd);
  }
}

double run_loop(core::Instance& inst, bool with_prefetch) {
  Bytes buf(1 << 20);
  dlsim::Prefetcher prefetcher(inst.fs(), 4);
  WallTimer t;
  if (with_prefetch) prefetcher.prefetch(batch_paths(0));
  for (int iter = 0; iter < kIterations; ++iter) {
    if (with_prefetch) prefetcher.wait();  // batch `iter` is warm
    read_batch(inst.fs(), iter, buf);
    if (with_prefetch && iter + 1 < kIterations) {
      prefetcher.prefetch(batch_paths(iter + 1));  // overlap with compute
    }
    std::this_thread::sleep_for(kComputeMs);  // "compute"
  }
  return t.elapsed_sec();
}

}  // namespace

int main() {
  bench::section("Ablation: real prefetch overlap (Fig. 5b) vs synchronous I/O");
  mpi::run_world(1, [&](mpi::Comm& comm) {
    std::vector<std::pair<std::string, Bytes>> files;
    for (int i = 0; i < kFiles; ++i) {
      files.emplace_back("ds/f" + std::to_string(i),
                         dlsim::generate_file(dlsim::DatasetKind::kEmTif,
                                              static_cast<std::uint64_t>(i)));
    }
    core::Instance::Options opt;
    // Cache one full batch plus the next (double buffering).
    opt.fs.cache_bytes = 2ull * kBatch * 300 * 1024;
    core::Instance inst(comm, opt);
    inst.load_partition_blob(as_view(bench::make_partition(files, "lzma")), 0);
    inst.exchange_metadata();

    const double sync_s = run_loop(inst, /*with_prefetch=*/false);
    const double async_s = run_loop(inst, /*with_prefetch=*/true);
    const double compute_s =
        kIterations * std::chrono::duration<double>(kComputeMs).count();

    bench::Table table({"mode", "wall time", "I/O stall on critical path"});
    table.row({"synchronous", bench::fmt("%.0f ms", sync_s * 1e3),
               bench::fmt("%.0f ms", (sync_s - compute_s) * 1e3)});
    table.row({"prefetch overlap", bench::fmt("%.0f ms", async_s * 1e3),
               bench::fmt("%.0f ms", (async_s - compute_s) * 1e3)});
    table.print();
    std::printf("\nprefetch hides %.0f%% of the lzma decompression stall\n",
                100.0 * (1.0 - std::max(0.0, async_s - compute_s) /
                                   std::max(1e-9, sync_s - compute_s)));
  });
  return 0;
}
