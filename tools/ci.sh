#!/usr/bin/env bash
# One-command CI matrix:
#   1. tier-1: default configure + build + ctest (the ROADMAP verify step)
#   2. chaos: the fault-injection suite (`ctest -L chaos`) over 10 fixed
#      FANSTORE_FAULT_SEED values, plus the membership-churn suite
#      (`ctest -L churn`) over 5 fixed FANSTORE_CHURN_SEED values; both
#      repeated under TSan in pass 4
#   3. ASan/UBSan: FANSTORE_SANITIZE=address;undefined configure + ctest
#   4. TSan: FANSTORE_SANITIZE=thread + FANSTORE_DEBUG_LOCKORDER=ON + ctest
#      + the chaos seed sweep again under TSan
#   5. clang-tidy over src/ (skipped when clang-tidy is not installed)
#
# Usage: tools/ci.sh [--tier1-only]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
jobs="$(nproc 2> /dev/null || echo 4)"

run_pass() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ($dir) ===="
  cmake -B "$dir" -S . "$@"
  echo "==== [$name] build ===="
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

# Chaos suite over a fixed seed list: every seed yields a different (but
# deterministic) fault schedule, so the sweep covers 10 distinct adversity
# mixes. On failure the offending seed is printed — replay it locally with
#   FANSTORE_FAULT_SEED=<seed> ctest --test-dir <dir> -L chaos
chaos_seeds=(1 2 3 5 8 13 21 34 55 89)
run_chaos_seeds() {
  local name="$1" dir="$2"
  for seed in "${chaos_seeds[@]}"; do
    echo "==== [$name] ctest -L chaos (FANSTORE_FAULT_SEED=$seed) ===="
    if ! FANSTORE_FAULT_SEED="$seed" \
        ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L chaos; then
      echo "ci.sh: chaos suite FAILED under FANSTORE_FAULT_SEED=$seed ($name)" >&2
      echo "ci.sh: replay with: FANSTORE_FAULT_SEED=$seed ctest --test-dir $dir -L chaos" >&2
      exit 1
    fi
  done
}

# Membership-churn suite over fixed seeds: each seed drives a different
# (deterministic) join/leave/kill schedule plus fault-plan adversity in the
# churn sweep test. On failure the seed is printed — replay it with
#   FANSTORE_CHURN_SEED=<seed> ctest --test-dir <dir> -L churn
churn_seeds=(1 7 42 1999 31337)
run_churn_seeds() {
  local name="$1" dir="$2"
  for seed in "${churn_seeds[@]}"; do
    echo "==== [$name] ctest -L churn (FANSTORE_CHURN_SEED=$seed) ===="
    if ! FANSTORE_CHURN_SEED="$seed" \
        ctest --test-dir "$dir" --output-on-failure -j "$jobs" -L churn; then
      echo "ci.sh: churn suite FAILED under FANSTORE_CHURN_SEED=$seed ($name)" >&2
      echo "ci.sh: replay with: FANSTORE_CHURN_SEED=$seed ctest --test-dir $dir -L churn" >&2
      exit 1
    fi
  done
}

run_pass "tier-1" build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

run_chaos_seeds "chaos" build

run_churn_seeds "churn" build

# Labeled quick passes: the observability + stress subset (`ctest -L obs` /
# `-L stress`) and the chunked-container subset (`ctest -L chunked`) on their
# own, as the fast signals to rerun while iterating on obs/ or compress/.
echo "==== [labels] ctest -L 'obs|stress' ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L 'obs|stress'
echo "==== [labels] ctest -L chunked ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L chunked
echo "==== [labels] ctest -L plan ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L plan
echo "==== [labels] ctest -L ipc ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L ipc
echo "==== [labels] ctest -L tiered ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L tiered
echo "==== [labels] ctest -L cluster ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L cluster
echo "==== [labels] ctest -L lint ===="
ctest --test-dir build --output-on-failure -j "$jobs" -L lint

# fanstore-lint over all of src/ (DESIGN.md §9): fails on any finding that
# is neither inline-suppressed nor baselined with a justification in
# tools/lint/baseline.txt. (Also runs as the `fanstore_lint_src` ctest, but
# an explicit invocation keeps the findings readable in the CI log.)
echo "==== [lint] fanstore-lint src/ ===="
build/tools/lint/fanstore-lint \
  --inventory src/obs/metric_names.inc \
  --design DESIGN.md \
  --baseline tools/lint/baseline.txt \
  src

# Hot-path perf smoke: quick sharded-vs-legacy cache sweep. Catches gross
# concurrency regressions and refreshes BENCH_hotpath.json at the repo root
# (run `build/bench/bench_hotpath` without --quick for the recorded numbers).
# Since the observability PR it also cross-checks the metrics registry
# against the bench's own op/loader bookkeeping and exits non-zero on any
# disagreement.
echo "==== [bench] bench_hotpath --quick ===="
build/bench/bench_hotpath --quick --json "$repo_root/BENCH_hotpath.json"

# Chunked-container smoke: parallel whole-file decode + the partial-pread
# acceptance check (a 64 KiB pread must decode <= 2 chunks, verified via the
# "chunked.*" counters; non-zero exit on violation). Run without --quick for
# the recorded BENCH_chunked.json numbers.
echo "==== [bench] bench_chunked --quick ===="
build/bench/bench_chunked --quick --json "$repo_root/BENCH_chunked.json"

# Clairvoyant-planner smoke (DESIGN.md §10): reactive prefetch vs
# plan-driven prefetch + Belady eviction at 8 and 64 ranks in virtual time.
# Exits non-zero if clairvoyant is ever slower than reactive or the Belady
# hit rate fails to beat FIFO's. Run without --quick (adds 512 ranks) for
# the recorded BENCH_clairvoyant.json numbers.
echo "==== [bench] bench_clairvoyant --quick ===="
build/bench/bench_clairvoyant --quick --json /tmp/BENCH_clairvoyant_quick.json

# Socket front-door smoke (DESIGN.md §11): event-driven server vs the
# thread-per-connection baseline at a few client counts over UDS. The >=2x
# requests/s acceptance bar at 64+ clients is enforced only on hardware
# with enough cores for the shard/blocker threads to actually run in
# parallel. Run without --quick for the recorded BENCH_ipc.json numbers.
echo "==== [bench] bench_ipc --quick ===="
build/bench/bench_ipc --quick --json /tmp/BENCH_ipc_quick.json

# Tiered-cache smoke (DESIGN.md §12): plain-RAM-only vs the four-tier stack
# across RAM-budget fractions in virtual time. The tier accounting identity
# is enforced on every run; the "tiered beats plain at cache = 1/8 dataset"
# epoch-time gate is enforced only on hardware with >= 8 cores (recorded in
# the JSON either way, like BENCH_ipc.json). Run without --quick for the
# recorded BENCH_tiered.json numbers.
echo "==== [bench] bench_tiered --quick ===="
build/bench/bench_tiered --quick --json /tmp/BENCH_tiered_quick.json

# Sharded-metadata smoke (DESIGN.md §13): classic allgather vs the
# consistent-hash-sharded exchange at 8 and 64 ranks in-process (512 ranks
# modeled analytically). The per-rank exchange-bytes gate is enforced on
# every run; the wall-clock gate only on hardware with >= 8 cores. Refreshes
# the committed BENCH_cluster.json at the repo root.
echo "==== [bench] bench_cluster --quick ===="
build/bench/bench_cluster --quick --json "$repo_root/BENCH_cluster.json"

if [ "${1:-}" = "--tier1-only" ]; then
  echo "ci.sh: tier-1 pass complete (sanitizer matrix skipped)"
  exit 0
fi

# Dense-interleaving stress tests give the sanitizers something to bite on;
# the whole suite runs under each sanitizer regardless.
ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
  run_pass "asan+ubsan" build-asan "-DFANSTORE_SANITIZE=address;undefined"

TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  run_pass "tsan" build-tsan "-DFANSTORE_SANITIZE=thread" \
  -DFANSTORE_DEBUG_LOCKORDER=ON

# The chaos sweep again with every race under TSan's eye (the injector's
# kill/restart and delayed-delivery paths are the interesting interleavings).
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  run_chaos_seeds "tsan-chaos" build-tsan

# And the membership-churn sweep with TSan watching the cluster service
# threads, rebalance pushes, and client-side resolves interleave.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  run_churn_seeds "tsan-churn" build-tsan

tools/run-clang-tidy.sh build

echo "ci.sh: all passes green"
