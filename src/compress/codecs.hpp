// Factory functions for every codec family in the suite.
//
// The Registry composes these into the full set of named, id-stable
// configurations; tests and tools may also instantiate codecs directly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.hpp"

namespace fanstore::compress {

/// Identity codec ("store") — the no-compression baseline.
std::unique_ptr<Compressor> make_store();

/// PackBits-style run-length encoding.
std::unique_ptr<Compressor> make_rle();

/// LZF-like byte LZ: 8 KiB window, single-probe hash. level in [1,3]
/// selects hash-table size (13/15/17 bits).
std::unique_ptr<Compressor> make_lzf(int level);

/// LZ4-like fast mode with step acceleration; accel in [1,16].
std::unique_ptr<Compressor> make_lz4fast(int accel);

/// LZ4-like greedy mode (single hash probe at every position).
std::unique_ptr<Compressor> make_lz4();

/// LZ4-like high-compression mode; level in [1,16] scales chain depth.
std::unique_ptr<Compressor> make_lz4hc(int level);

/// Bit-packed LZSS; window_bits in [10,16], len_bits in [4,8],
/// depth bounds the hash-chain search.
std::unique_ptr<Compressor> make_lzss(int window_bits, int len_bits, int depth);

/// LZW with variable-width codes up to max_bits in [10,16].
std::unique_ptr<Compressor> make_lzw(int max_bits);

/// Block-based canonical Huffman; `block` is the block size in bytes.
std::unique_ptr<Compressor> make_huffman(std::size_t block);

/// Deflate-like LZ + dual canonical Huffman; level in [1,9],
/// window_bits in [12,26].
std::unique_ptr<Compressor> make_deflate(int level, int window_bits);

/// Brotli-like: deflate-lite with a 4 MiB window and deeper parse;
/// level in [1,11].
std::unique_ptr<Compressor> make_brotli(int level);

/// Zling-like: two-stage fast-LZ + Huffman; level in [1,4].
std::unique_ptr<Compressor> make_zling(int level);

/// LZMA-like LZ + adaptive binary range coder; level in [1,9].
std::unique_ptr<Compressor> make_lzma(int level);

/// XZ-like: lzma-lite stream in a checksummed container; level in [1,9].
std::unique_ptr<Compressor> make_xz(int level);

/// LZSSE8-like: 8-byte-granular literals for very fast decode;
/// depth bounds the match search.
std::unique_ptr<Compressor> make_lzsse8(int depth);

/// Burrows-Wheeler + move-to-front transform stage (size-preserving plus
/// an 8-byte per-block header); compose with RLE/entropy stages to build
/// the "bzip2" family.
std::unique_ptr<Compressor> make_bwtmtf(std::size_t block);

/// Order-0 rANS entropy codec (the zstd/FSE-class entropy stage).
std::unique_ptr<Compressor> make_rans(std::size_t block);

/// Byte-delta filter with the given stride (1 = plain delta, 4 = float32
/// channel delta, 8 = float64). A size-preserving transform, not a codec;
/// compose with make_pipeline.
std::unique_ptr<Compressor> make_delta(int stride);

/// Sequential composition of stages (applied left-to-right on compress).
std::unique_ptr<Compressor> make_pipeline(std::string name,
                                          std::vector<std::unique_ptr<Compressor>> stages);

}  // namespace fanstore::compress
