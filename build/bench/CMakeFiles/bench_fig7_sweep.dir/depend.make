# Empty dependencies file for bench_fig7_sweep.
# This may be replaced when dependencies are built.
