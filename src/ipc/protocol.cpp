#include "ipc/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace fanstore::ipc {

Bytes encode_request(Op op, std::string_view path) {
  Bytes out;
  out.reserve(1 + path.size());
  out.push_back(static_cast<std::uint8_t>(op));
  out.insert(out.end(), path.begin(), path.end());
  return out;
}

std::optional<Request> decode_request(ByteView payload) {
  if (payload.empty()) return std::nullopt;
  const auto op = static_cast<Op>(payload[0]);
  if (op != Op::kGet && op != Op::kStat && op != Op::kList) return std::nullopt;
  return Request{op, std::string(reinterpret_cast<const char*>(payload.data()) + 1,
                                 payload.size() - 1)};
}

Bytes encode_get_reply(Status status, ByteView data) {
  Bytes out;
  out.reserve(1 + data.size());
  out.push_back(static_cast<std::uint8_t>(status));
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<GetReply> decode_get_reply(ByteView payload) {
  if (payload.empty()) return std::nullopt;
  GetReply r;
  r.status = static_cast<Status>(payload[0]);
  r.data.assign(payload.begin() + 1, payload.end());
  return r;
}

Bytes encode_stat_reply(Status status, const format::FileStat& stat) {
  Bytes out(1 + format::kStatBytes);
  out[0] = static_cast<std::uint8_t>(status);
  stat.serialize(out.data() + 1);
  return out;
}

std::optional<StatReply> decode_stat_reply(ByteView payload) {
  if (payload.size() != 1 + format::kStatBytes) return std::nullopt;
  StatReply r;
  r.status = static_cast<Status>(payload[0]);
  r.stat = format::FileStat::deserialize(payload.data() + 1);
  return r;
}

Bytes encode_list_reply(Status status, const std::vector<posixfs::Dirent>& entries) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(status));
  append_le<std::uint32_t>(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    append_le<std::uint16_t>(out, static_cast<std::uint16_t>(e.name.size()));
    out.insert(out.end(), e.name.begin(), e.name.end());
    out.push_back(static_cast<std::uint8_t>(e.type));
  }
  return out;
}

std::optional<ListReply> decode_list_reply(ByteView payload) {
  if (payload.size() < 5) return std::nullopt;
  ListReply r;
  r.status = static_cast<Status>(payload[0]);
  const std::uint32_t n = load_le<std::uint32_t>(payload.data() + 1);
  std::size_t pos = 5;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (pos + 2 > payload.size()) return std::nullopt;
    const std::uint16_t len = load_le<std::uint16_t>(payload.data() + pos);
    pos += 2;
    if (pos + len + 1 > payload.size()) return std::nullopt;
    posixfs::Dirent e;
    e.name.assign(reinterpret_cast<const char*>(payload.data()) + pos, len);
    pos += len;
    e.type = static_cast<format::FileType>(payload[pos++]);
    r.entries.push_back(std::move(e));
  }
  if (pos != payload.size()) return std::nullopt;
  return r;
}

namespace {
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: writing to a peer that hung up must fail with EPIPE,
    // not kill the process with SIGPIPE — a daemon survives its clients
    // and a client survives a daemon restart.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}
}  // namespace

bool write_frame(int fd, ByteView payload) {
  std::uint8_t header[4];
  store_le<std::uint32_t>(header, static_cast<std::uint32_t>(payload.size()));
  return write_all(fd, header, 4) && write_all(fd, payload.data(), payload.size());
}

std::optional<Bytes> read_frame(int fd) {
  std::uint8_t header[4];
  if (!read_all(fd, header, 4)) return std::nullopt;
  const std::uint32_t len = load_le<std::uint32_t>(header);
  if (len > (256u << 20)) return std::nullopt;  // sanity bound
  Bytes payload(len);
  if (len > 0 && !read_all(fd, payload.data(), len)) return std::nullopt;
  return payload;
}

}  // namespace fanstore::ipc
