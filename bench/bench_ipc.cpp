// Socket front-door benchmark (DESIGN.md §11): the event-driven
// ipc::Server (epoll shards + blocker pool) vs the thread-per-connection
// UdsServer baseline, over UDS, at 1/8/64/256 concurrent clients. Each
// client runs a fixed number of kGet round trips of a 16 KiB file;
// reported per cell: requests/s and p99 round-trip latency.
//
// Acceptance (ISSUE 8): the event server must reach >= 2x the baseline's
// requests/s at 64+ clients — enforced only when the host has >= 8
// hardware threads (with fewer cores the fixed shard/blocker threads
// cannot run in parallel with 64 client threads, and the comparison
// measures the scheduler, not the server). The JSON always records
// hardware_concurrency so small CI boxes still produce honest artifacts.
//
// Emits BENCH_ipc.json. tools/ci.sh runs `--quick` as a smoke test.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "ipc/server.hpp"
#include "ipc/transport.hpp"
#include "ipc/uds_client.hpp"
#include "ipc/uds_server.hpp"
#include "posixfs/mem_vfs.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

std::string unique_socket_path(const char* tag) {
  return "/tmp/fanstore_bench_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

struct CellResult {
  double req_per_s = 0;
  double p99_us = 0;
};

// `spec` serves "ds/payload"; every client does `per_client` round trips.
CellResult run_cell(const std::string& spec, int clients, int per_client,
                    const Bytes& expect) {
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ipc::ClientOptions copt;
      copt.max_attempts = 5;  // absorb transient connect backlog overflow
      copt.base_delay_ms = 1;
      ipc::UdsClientVfs client(spec, copt);
      lat[static_cast<std::size_t>(c)].reserve(
          static_cast<std::size_t>(per_client));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < per_client; ++i) {
        WallTimer t;
        const auto got = posixfs::read_file(client, "ds/payload");
        if (!got.has_value() || *got != expect) {
          errors.fetch_add(1);
          return;
        }
        lat[static_cast<std::size_t>(c)].push_back(t.elapsed_us());
      }
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  WallTimer wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double elapsed = wall.elapsed_sec();

  CellResult r;
  if (errors.load() > 0) {
    std::fprintf(stderr, "bench_ipc: %d client errors at %d clients\n",
                 errors.load(), clients);
    return r;
  }
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  r.req_per_s = static_cast<double>(all.size()) / elapsed;
  r.p99_us = all.empty() ? 0 : all[all.size() * 99 / 100];
  return r;
}

std::string json_cells(const std::vector<CellResult>& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += "{\"req_per_s\": " + bench::fmt("%.0f", v[i].req_per_s) +
         ", \"p99_us\": " + bench::fmt("%.1f", v[i].p99_us) + "}";
  }
  return s + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_ipc.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> client_counts =
      quick ? std::vector<int>{1, 8, 64} : std::vector<int>{1, 8, 64, 256};
  const int per_client = quick ? 40 : 200;

  posixfs::MemVfs fs;
  Bytes payload(16 << 10);
  std::uint64_t x = 88172645463325252ull;
  for (auto& b : payload) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  posixfs::write_file(fs, "ds/payload", as_view(payload));

  std::vector<CellResult> baseline, event;
  for (const int clients : client_counts) {
    // Thread-per-connection baseline.
    {
      ipc::UdsServer server(unique_socket_path("base"), fs,
                            /*backlog=*/std::max(64, clients));
      server.start();
      baseline.push_back(
          run_cell(server.socket_path(), clients, per_client, payload));
      server.stop();
    }
    // Event-driven server: fixed threads regardless of client count.
    {
      ipc::ServerOptions opt;
      opt.backlog = std::max(64, clients);
      ipc::Server server({ipc::Endpoint::uds(unique_socket_path("event"))},
                         fs, opt);
      server.start();
      event.push_back(run_cell(server.endpoints()[0].to_string(), clients,
                               per_client, payload));
      server.stop();
    }
  }

  bench::Table table({"clients", "baseline req/s", "baseline p99us",
                      "event req/s", "event p99us", "speedup"});
  for (std::size_t i = 0; i < client_counts.size(); ++i) {
    const double speedup =
        baseline[i].req_per_s > 0 ? event[i].req_per_s / baseline[i].req_per_s
                                  : 0;
    table.row({std::to_string(client_counts[i]),
               bench::fmt_int(baseline[i].req_per_s),
               bench::fmt("%.1f", baseline[i].p99_us),
               bench::fmt_int(event[i].req_per_s),
               bench::fmt("%.1f", event[i].p99_us),
               bench::fmt("%.2f", speedup)});
  }
  table.print();

  // Acceptance: >= 2x req/s at 64+ clients, hardware permitting.
  const bool enforce = hw >= 8;
  bool ok = true;
  for (std::size_t i = 0; i < client_counts.size(); ++i) {
    if (client_counts[i] < 64) continue;
    if (baseline[i].req_per_s <= 0 || event[i].req_per_s <= 0) ok = false;
    if (enforce && event[i].req_per_s < 2.0 * baseline[i].req_per_s) {
      std::fprintf(stderr,
                   "bench_ipc: event server %.0f req/s < 2x baseline %.0f at "
                   "%d clients\n",
                   event[i].req_per_s, baseline[i].req_per_s,
                   client_counts[i]);
      ok = false;
    }
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_ipc: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::string counts = "[";
  for (std::size_t i = 0; i < client_counts.size(); ++i) {
    if (i > 0) counts += ", ";
    counts += std::to_string(client_counts[i]);
  }
  counts += "]";
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"ipc\",\n"
               "  \"quick\": %s,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"payload_bytes\": %d,\n"
               "  \"requests_per_client\": %d,\n"
               "  \"clients\": %s,\n"
               "  \"baseline_thread_per_conn\": %s,\n"
               "  \"event_driven\": %s,\n"
               "  \"speedup_enforced\": %s\n"
               "}\n",
               quick ? "true" : "false", hw, 16 << 10, per_client,
               counts.c_str(), json_cells(baseline).c_str(),
               json_cells(event).c_str(), enforce ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "bench_ipc: acceptance checks FAILED\n");
    return 1;
  }
  std::printf("acceptance checks: OK\n");
  return 0;
}
