#include "fault/injector.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <tuple>

#include "util/rng.hpp"

namespace fanstore::fault {

namespace {

// Fetch replies use a dedicated tag space (>= core::kReplyTagBase == 1000)
// with a fresh tag per request; bucket them so a channel's sequence counter
// spans "all replies from src to dest" rather than one counter per tag.
constexpr int kReplyBucket = 1000;

int tag_bucket(int tag) { return tag >= kReplyBucket ? kReplyBucket : tag; }

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
  return splitmix64(s);
}

double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t channel_key(std::size_t rule, int src, int dest, int bucket) {
  return (static_cast<std::uint64_t>(rule) << 48) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest)) << 16) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(bucket));
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, obs::MetricsRegistry* metrics)
    : plan_(std::move(plan)),
      owned_metrics_(metrics != nullptr ? nullptr
                                        : std::make_unique<obs::MetricsRegistry>()),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      msg_dropped_(metrics_->counter("fault.msg_dropped")),
      msg_delayed_(metrics_->counter("fault.msg_delayed")),
      msg_duplicated_(metrics_->counter("fault.msg_duplicated")),
      msg_corrupted_(metrics_->counter("fault.msg_corrupted")),
      daemon_dropped_(metrics_->counter("fault.daemon_dropped")),
      daemon_hangs_(metrics_->counter("fault.daemon_hangs")),
      backend_errors_(metrics_->counter("fault.backend_errors")),
      backend_corrupted_(metrics_->counter("fault.backend_corrupted")) {
  sync::MutexLock lk(mu_);
  msg_budget_used_.assign(plan_.messages.size(), 0);
  backend_budget_used_.assign(plan_.backends.size(), 0);
}

std::uint64_t FaultInjector::next_seq(std::uint64_t key) {
  return channel_seq_[key]++;
}

void FaultInjector::log_event(Event e) { events_.push_back(e); }

bool FaultInjector::spend_budget(std::vector<std::uint64_t>& used,
                                 std::size_t rule, std::uint64_t max_faults) {
  if (used[rule] >= max_faults) return false;
  ++used[rule];
  return true;
}

MessageVerdict FaultInjector::on_message(int src, int dest, int tag,
                                         Bytes& payload) {
  MessageVerdict v;
  const int bucket = tag_bucket(tag);
  bool corrupt_now = false;
  {
    sync::MutexLock lk(mu_);
    for (std::size_t i = 0; i < plan_.messages.size(); ++i) {
      const MessageRule& r = plan_.messages[i];
      if (!r.matches(src, dest, tag)) continue;
      const std::uint64_t key = channel_key(i, src, dest, bucket);
      const std::uint64_t seq = next_seq(key);
      if (seq < r.skip_first) continue;
      const std::uint64_t h = mix(plan_.seed, mix(key, seq));
      // Independent sub-draws so one rule can combine actions.
      if (r.drop_prob > 0 && unit(mix(h, 1)) < r.drop_prob &&
          spend_budget(msg_budget_used_, i, r.max_faults)) {
        v.drop = true;
        log_event({'D', static_cast<int>(i), src, dest, bucket, seq});
      }
      if (r.dup_prob > 0 && unit(mix(h, 2)) < r.dup_prob &&
          spend_budget(msg_budget_used_, i, r.max_faults)) {
        v.duplicate = true;
        log_event({'U', static_cast<int>(i), src, dest, bucket, seq});
      }
      if (r.corrupt_prob > 0 && unit(mix(h, 3)) < r.corrupt_prob &&
          spend_budget(msg_budget_used_, i, r.max_faults)) {
        corrupt_now = true;
        log_event({'C', static_cast<int>(i), src, dest, bucket, seq});
      }
      if (r.delay_prob > 0 && r.delay_ms > 0 && unit(mix(h, 4)) < r.delay_prob &&
          spend_budget(msg_budget_used_, i, r.max_faults)) {
        v.delay_ms = std::max(v.delay_ms, r.delay_ms);
        log_event({'L', static_cast<int>(i), src, dest, bucket, seq});
      }
    }
    if (corrupt_now && !payload.empty()) {
      const std::uint64_t h = mix(plan_.seed, ++corrupt_nonce_);
      payload[h % payload.size()] ^= 0x5A;
      payload[(h >> 17) % payload.size()] ^= 0xA5;
      v.corrupted = true;
    }
  }
  // A dropped message never also arrives late or twice.
  if (v.drop) {
    v.duplicate = false;
    v.delay_ms = 0;
  }
  if (v.drop) msg_dropped_.inc();
  if (v.duplicate) msg_duplicated_.inc();
  if (v.corrupted) msg_corrupted_.inc();
  if (v.delay_ms > 0) msg_delayed_.inc();
  return v;
}

void FaultInjector::note_fetch_request(int rank) {
  sync::MutexLock lk(mu_);
  ++fetch_requests_[rank];
}

bool FaultInjector::daemon_alive(int rank, double vnow) {
  bool dead = false;
  {
    sync::MutexLock lk(mu_);
    const auto manual = manual_daemon_.find(rank);
    if (manual != manual_daemon_.end() && manual->second != 0) {
      dead = manual->second > 0;
    } else {
      const std::uint64_t served =
          fetch_requests_.count(rank) ? fetch_requests_.at(rank) : 0;
      for (const DaemonRule& r : plan_.daemons) {
        if (r.rank != kAnyRank && r.rank != rank) continue;
        if (r.crash_after_fetches > 0 && served > r.crash_after_fetches) {
          dead = true;
        }
        if (r.crash_at_vsec >= 0 && vnow >= 0 && vnow >= r.crash_at_vsec &&
            (r.restart_at_vsec < 0 || vnow < r.restart_at_vsec)) {
          dead = true;
        }
      }
    }
    if (dead) log_event({'K', -1, rank, rank, 0, 0});
  }
  if (dead) daemon_dropped_.inc();
  return !dead;
}

int FaultInjector::daemon_hang_ms(int rank) {
  int hang = 0;
  {
    sync::MutexLock lk(mu_);
    for (const DaemonRule& r : plan_.daemons) {
      if (r.rank != kAnyRank && r.rank != rank) continue;
      hang = std::max(hang, r.hang_ms);
    }
    if (hang > 0) log_event({'H', -1, rank, rank, 0, 0});
  }
  if (hang > 0) daemon_hangs_.inc();
  return hang;
}

void FaultInjector::kill_daemon(int rank) {
  sync::MutexLock lk(mu_);
  manual_daemon_[rank] = 1;
}

void FaultInjector::revive_daemon(int rank) {
  sync::MutexLock lk(mu_);
  manual_daemon_[rank] = -1;
}

double FaultInjector::network_multiplier(int rank) const {
  double m = 1.0;
  for (const StragglerRule& r : plan_.stragglers) {
    if (r.rank == kAnyRank || r.rank == rank) m *= r.network_mult;
  }
  return m;
}

double FaultInjector::storage_multiplier(int rank) const {
  double m = 1.0;
  for (const StragglerRule& r : plan_.stragglers) {
    if (r.rank == kAnyRank || r.rank == rank) m *= r.storage_mult;
  }
  return m;
}

BackendAction FaultInjector::backend_get_action(int rank, std::string_view path) {
  BackendAction action = BackendAction::kNone;
  {
    sync::MutexLock lk(mu_);
    for (std::size_t i = 0; i < plan_.backends.size(); ++i) {
      const BackendRule& r = plan_.backends[i];
      if (!r.matches(rank, path)) continue;
      const std::uint64_t key =
          channel_key(i + 0x8000, rank, 0,
                      static_cast<int>(std::hash<std::string_view>{}(path) & 0x7FFF));
      const std::uint64_t seq = next_seq(key);
      if (seq < r.skip_first) continue;
      const std::uint64_t h = mix(plan_.seed, mix(key, seq));
      if (r.fail_prob > 0 && unit(mix(h, 5)) < r.fail_prob &&
          spend_budget(backend_budget_used_, i, r.max_faults)) {
        action = BackendAction::kFail;
        log_event({'B', static_cast<int>(i), rank, rank, 0, seq});
        break;
      }
      if (r.corrupt_prob > 0 && unit(mix(h, 6)) < r.corrupt_prob &&
          spend_budget(backend_budget_used_, i, r.max_faults)) {
        action = BackendAction::kCorrupt;
        log_event({'B', static_cast<int>(i), rank, rank, 1, seq});
        break;
      }
    }
  }
  if (action == BackendAction::kFail) backend_errors_.inc();
  if (action == BackendAction::kCorrupt) backend_corrupted_.inc();
  return action;
}

void FaultInjector::corrupt(Bytes& payload) {
  if (payload.empty()) return;
  sync::MutexLock lk(mu_);
  const std::uint64_t h = mix(plan_.seed, ++corrupt_nonce_);
  payload[h % payload.size()] ^= 0x5A;
  payload[(h >> 17) % payload.size()] ^= 0xA5;
}

std::string FaultInjector::schedule_dump() const {
  std::vector<Event> events;
  {
    sync::MutexLock lk(mu_);
    events = events_;
  }
  // Canonical order: independent of cross-channel thread interleaving.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return std::tie(a.kind, a.rule, a.src, a.dest, a.tag_bucket, a.seq) <
           std::tie(b.kind, b.rule, b.src, b.dest, b.tag_bucket, b.seq);
  });
  std::string out;
  char line[96];
  for (const Event& e : events) {
    std::snprintf(line, sizeof(line), "%c rule=%d %d->%d tag=%d seq=%llu\n",
                  e.kind, e.rule, e.src, e.dest, e.tag_bucket,
                  static_cast<unsigned long long>(e.seq));
    out += line;
  }
  return out;
}

std::uint64_t FaultInjector::faults_injected() const {
  sync::MutexLock lk(mu_);
  return events_.size();
}

}  // namespace fanstore::fault
