#include "baseline.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace fanstore::lint {

std::string normalize_line(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  bool in_ws = true;  // leading whitespace trims
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool Baseline::matches(const std::string& rule, const std::string& file,
                       const std::string& line_text) {
  bool found = false;
  // Mark every identical entry used: several findings can share one line
  // (and so one key), and duplicated entries should not read as stale.
  for (BaselineEntry& e : entries) {
    if (e.rule == rule && e.file == file && e.line_text == line_text) {
      e.used = true;
      found = true;
    }
  }
  return found;
}

std::vector<const BaselineEntry*> Baseline::unused() const {
  std::vector<const BaselineEntry*> out;
  for (const BaselineEntry& e : entries) {
    if (!e.used) out.push_back(&e);
  }
  return out;
}

bool load_baseline(const std::string& path, Baseline* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open baseline: " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    BaselineEntry e;
    std::size_t pos = 0;
    std::string* fields[3] = {&e.rule, &e.file, &e.line_text};
    bool ok = true;
    for (std::string* f : fields) {
      const std::size_t bar = line.find('|', pos);
      if (bar == std::string::npos) {
        ok = false;
        break;
      }
      *f = line.substr(pos, bar - pos);
      pos = bar + 1;
    }
    if (!ok) {
      *error = path + ":" + std::to_string(lineno) +
               ": expected rule|file|line-text|justification";
      return false;
    }
    e.justification = line.substr(pos);
    if (normalize_line(e.justification).empty() ||
        e.justification.rfind("TODO", 0) == 0) {
      *error = path + ":" + std::to_string(lineno) +
               ": baseline entry for '" + e.rule +
               "' needs a one-line justification";
      return false;
    }
    e.line_text = normalize_line(e.line_text);
    out->entries.push_back(std::move(e));
  }
  return true;
}

}  // namespace fanstore::lint
