file(REMOVE_RECURSE
  "libfanstore_ipc.a"
)
