// SRGAN on electron-microscopy data (the paper's §VII-B workload): a full
// synchronous-I/O training run over FanStore with the selected compressor,
// compared against raw (uncompressed) hosting.
//
// Demonstrates: capacity gain on fixed "burst buffers" + preserved
// throughput with a fast decoder, the core trade Figure 8(a) documents.
//
// Run: ./srgan_em_training [--nodes=4] [--epochs=2] [--compressor=lz4hc]
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/instance.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"
#include "dlsim/trainer.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "simnet/models.hpp"
#include "util/cli.hpp"

using namespace fanstore;

namespace {

struct RunResult {
  double items_per_s = 0;
  std::size_t stored_bytes = 0;
};

RunResult train(const std::string& codec, int nodes, int epochs) {
  const auto app = dlsim::srgan_gtx();
  const auto cluster = simnet::gtx_cluster();
  const auto spec = dlsim::dataset_spec(app.dataset);
  const double scale = static_cast<double>(spec.file_bytes) / spec.paper_avg_file_bytes;
  const std::size_t batch_per_rank = 16;
  const std::size_t files_per_rank = batch_per_rank * 2;

  // Prepare the dataset once on the shared FS.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs source;
    dlsim::materialize_dataset(source, "em", app.dataset,
                               files_per_rank * static_cast<std::size_t>(nodes));
    prep::PrepOptions opt;
    opt.num_partitions = nodes;
    opt.compressor = codec;
    opt.threads = 4;
    prep::prepare_dataset(source, "em", shared, "packed", opt);
  }

  RunResult out;
  std::vector<double> tput(static_cast<std::size_t>(nodes), 0.0);
  std::vector<std::size_t> stored(static_cast<std::size_t>(nodes), 0);
  mpi::run_world(nodes, [&](mpi::Comm& comm) {
    simnet::VirtualClock clock;
    core::Instance::Options opt;
    opt.fs.cost.enabled = true;
    opt.fs.cost.read_path = simnet::fanstore_read_path(cluster);
    opt.fs.cost.network = cluster.network;
    opt.fs.clock = &clock;
    opt.fs.cache_bytes = 4 * spec.file_bytes;  // minimal RAM footprint
    core::Instance inst(comm, opt);

    const auto manifest = prep::load_manifest(shared, "packed");
    inst.load_from_shared(shared, manifest.partition_paths());
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    const auto files = inst.metadata().all_paths();
    dlsim::TrainerOptions topt;
    topt.t_iter_s = app.profile.t_iter_s * scale;
    topt.batch_per_rank = batch_per_rank;
    topt.epochs = epochs;
    topt.async_io = app.profile.async_io;  // SRGAN: synchronous I/O
    topt.io_parallelism = app.profile.io_parallelism;
    topt.io_clock = &clock;
    topt.comm = &comm;
    const auto result = dlsim::run_training(inst.fs(), files, topt);
    tput[static_cast<std::size_t>(comm.rank())] = result.items_per_s;
    stored[static_cast<std::size_t>(comm.rank())] = inst.backend().bytes_used();
    comm.barrier();
    inst.stop();
  });
  for (int r = 0; r < nodes; ++r) {
    out.items_per_s += tput[static_cast<std::size_t>(r)];
    out.stored_bytes += stored[static_cast<std::size_t>(r)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const int epochs = static_cast<int>(args.get_int("epochs", 2));
  const std::string codec = args.get("compressor", "lz4hc");

  std::printf("SRGAN/EM on %d simulated GTX nodes, sync I/O (Fig. 5a)\n\n", nodes);
  const RunResult raw = train("store", nodes, epochs);
  const RunResult packed = train(codec, nodes, epochs);

  bench::Table table({"hosting", "images/s", "relative", "burst-buffer bytes"});
  table.row({"raw", bench::fmt("%.2f", raw.items_per_s), "1.000",
             bench::fmt("%.1f MB", raw.stored_bytes / 1e6)});
  table.row({codec, bench::fmt("%.2f", packed.items_per_s),
             bench::fmt("%.3f", packed.items_per_s / raw.items_per_s),
             bench::fmt("%.1f MB", packed.stored_bytes / 1e6)});
  table.print();
  std::printf(
      "\ncapacity gain: %.2fx more data fits the same burst buffers at %.1f%%\n"
      "of baseline training throughput.\n",
      static_cast<double>(raw.stored_bytes) / packed.stored_bytes,
      100.0 * packed.items_per_s / raw.items_per_s);
  return 0;
}
