// fanstore_wrapper.so — the LD_PRELOAD half of the paper's function
// interception (§V-C).
//
// The paper combines two techniques: LD_PRELOAD for libc I/O symbols that
// go through the dynamic linker, and trampolines for internally-called
// ones. This library implements the LD_PRELOAD technique for real: it
// interposes the path-based libc entry points and rewrites paths under the
// FanStore mount prefix, forwarding to the original libc via
// dlsym(RTLD_NEXT).
//
// Configuration (environment):
//   FANSTORE_MOUNT  the virtual mount point, e.g. "/fs"
//   FANSTORE_ROOT   the directory that backs it, e.g. "/tmp/fanstore-cache"
//   FANSTORE_INTERCEPT_STATS=1  print interception counters at exit
//
// In the paper the rewrite target is the FanStore daemon; in this
// reproduction the daemon runs in-process behind posixfs::Interceptor
// (DESIGN.md §1), so this library redirects to a backing directory instead
// — exercising the identical symbol-interposition mechanics and letting
// unmodified binaries (cat, python, ...) read "FanStore" paths.
//
// Usage:
//   LD_PRELOAD=.../fanstore_wrapper.so FANSTORE_MOUNT=/fs \
//       FANSTORE_ROOT=/data cat /fs/file.txt
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <dirent.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <stdarg.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>

namespace {

std::atomic<unsigned long> g_intercepted{0};
std::atomic<unsigned long> g_rewritten{0};

const char* mount_prefix() {
  static const char* p = getenv("FANSTORE_MOUNT");
  return p;
}

const char* backing_root() {
  static const char* p = getenv("FANSTORE_ROOT");
  return p;
}

// Rewrites `path` into `buf` if it is under the mount prefix; returns the
// path to use either way. No allocation (safe in early process stages).
const char* rewrite(const char* path, char* buf, size_t bufsize) {
  g_intercepted.fetch_add(1, std::memory_order_relaxed);
  const char* mount = mount_prefix();
  const char* root = backing_root();
  if (path == nullptr || mount == nullptr || root == nullptr) return path;
  const size_t mlen = strlen(mount);
  if (strncmp(path, mount, mlen) != 0) return path;
  if (path[mlen] != '/' && path[mlen] != '\0') return path;  // whole component
  const int n = snprintf(buf, bufsize, "%s%s", root, path + mlen);
  if (n < 0 || static_cast<size_t>(n) >= bufsize) return path;
  g_rewritten.fetch_add(1, std::memory_order_relaxed);
  return buf;
}

template <typename Fn>
Fn next_symbol(const char* name) {
  return reinterpret_cast<Fn>(dlsym(RTLD_NEXT, name));
}

struct StatsAtExit {
  ~StatsAtExit() {
    const char* flag = getenv("FANSTORE_INTERCEPT_STATS");
    if (flag != nullptr && flag[0] == '1') {
      fprintf(stderr, "[fanstore_wrapper] intercepted=%lu rewritten=%lu\n",
              g_intercepted.load(), g_rewritten.load());
    }
  }
} g_stats_at_exit;

}  // namespace

extern "C" {

int open(const char* path, int flags, ...) {
  static auto real = next_symbol<int (*)(const char*, int, mode_t)>("open");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), flags, mode);
}

int open64(const char* path, int flags, ...) {
  static auto real = next_symbol<int (*)(const char*, int, mode_t)>("open64");
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), flags, mode);
}

FILE* fopen(const char* path, const char* fmode) {
  static auto real = next_symbol<FILE* (*)(const char*, const char*)>("fopen");
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), fmode);
}

FILE* fopen64(const char* path, const char* fmode) {
  static auto real = next_symbol<FILE* (*)(const char*, const char*)>("fopen64");
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), fmode);
}

int stat(const char* path, struct stat* st) {
  static auto real = next_symbol<int (*)(const char*, struct stat*)>("stat");
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), st);
}

int lstat(const char* path, struct stat* st) {
  static auto real = next_symbol<int (*)(const char*, struct stat*)>("lstat");
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), st);
}

int access(const char* path, int amode) {
  static auto real = next_symbol<int (*)(const char*, int)>("access");
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)), amode);
}

DIR* opendir(const char* path) {
  static auto real = next_symbol<DIR* (*)(const char*)>("opendir");
  char buf[4096];
  return real(rewrite(path, buf, sizeof(buf)));
}

}  // extern "C"
