#include "cluster/hash_ring.hpp"

#include <algorithm>
#include <limits>

#include "cluster/shard_store.hpp"
#include "util/hash.hpp"

namespace fanstore::cluster {

std::uint32_t shard_of(std::string_view path, std::uint32_t nshards) {
  if (nshards == 0) return 0;
  return static_cast<std::uint32_t>(util::stable_hash64(path) % nshards);
}

HashRing::HashRing(const std::vector<int>& members, int replication_factor,
                   int vnodes) {
  members_ = members;
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
  rf_ = replication_factor < 1 ? 1 : replication_factor;
  if (vnodes < 1) vnodes = 1;
  points_.reserve(members_.size() * static_cast<std::size_t>(vnodes));
  for (const int rank : members_) {
    // Vnode points derive from (rank, vnode index) only, so a member's
    // points are identical in every ring that contains it — the property
    // that makes membership changes move O(1/members) of the shards.
    const std::uint64_t base =
        util::mix64(0x9E3779B97F4A7C15ull ^ static_cast<std::uint64_t>(
                                                static_cast<std::uint32_t>(rank)));
    for (int v = 0; v < vnodes; ++v) {
      points_.emplace_back(util::mix64(base + static_cast<std::uint64_t>(v)),
                           rank);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<int> HashRing::shard_owners(std::uint32_t shard) const {
  std::vector<int> out;
  if (points_.empty()) return out;
  const std::size_t want =
      std::min(static_cast<std::size_t>(rf_), members_.size());
  const std::uint64_t h = util::mix64(0xC1A57E12D00Dull + shard);
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, std::numeric_limits<int>::min()));
  for (std::size_t scanned = 0; scanned < points_.size() && out.size() < want;
       ++scanned, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<int> HashRing::owners(std::string_view path,
                                  std::uint32_t nshards) const {
  return shard_owners(shard_of(path, nshards));
}

bool HashRing::is_owner(int rank, std::uint32_t shard) const {
  const auto o = shard_owners(shard);
  return std::find(o.begin(), o.end(), rank) != o.end();
}

int HashRing::primary(std::uint32_t shard) const {
  const auto o = shard_owners(shard);
  return o.empty() ? -1 : o.front();
}

}  // namespace fanstore::cluster
