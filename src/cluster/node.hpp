// ClusterNode: one rank's membership + sharded-metadata service (DESIGN.md
// §13). It replaces the "allgather the whole namespace" model with:
//
//   membership  — a MembershipView merged via incarnation-versioned gossip
//                 (push on change; push-pull on join), so every rank
//                 converges to the same member set without coordination
//   placement   — a HashRing over the Joined members; metadata shards have
//                 `replication_factor` owners each
//   lookups     — a local miss resolves against the shard's owners over
//                 new tagged request/reply messages on the same mpi::Comm
//                 the fetch protocol uses (tags 110..117, replies >= 2e6)
//   anti-entropy— per-shard digests; a joiner/rebalancer pulls only the
//                 shards whose digest differs (delta-only, byte-accounted
//                 in "cluster.sync_bytes")
//   rebalance   — on membership change: pull newly owned shards, push-then-
//                 drop shards no longer owned
//
// Two execution modes share one handler path:
//   threaded — start() spawns a service thread (recv_if on the cluster
//              tags), like core::Daemon; client ops wait via recv_timeout.
//   manual   — no thread; a single-threaded simulation drives every node
//              deterministically by calling poll(), and client ops drain
//              the world through NodeOptions::pump instead of blocking
//              (the membership-churn test suite runs this way on a
//              ManualTimeSource world).
//
// Compatibility mode: replication_factor >= world size makes sharded()
// false — Instance then keeps the classic allgather exchange byte for byte
// and the resolver is never consulted.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/membership.hpp"
#include "cluster/resolver.hpp"
#include "cluster/shard_store.hpp"
#include "mpi/comm.hpp"
#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace fanstore::fault {
class FaultInjector;
}

namespace fanstore::cluster {

// Cluster tag space — disjoint from the daemon's fetch protocol (100..103,
// replies >= 1000). fault/fault_plan.hpp mirrors the bounds; keep in sync.
constexpr int kTagGossip = 110;
constexpr int kTagMetaLookup = 111;
constexpr int kTagShardDigest = 112;
constexpr int kTagShardPull = 113;
constexpr int kTagListPaths = 114;
constexpr int kTagListDir = 115;
constexpr int kTagClusterStop = 116;  // self-addressed by stop()
constexpr int kTagMetaPush = 117;     // one-way shard merge (exchange/drop)
constexpr int kClusterReplyTagBase = 2000000;

// Metadata-lookup reply status codes.
constexpr std::uint8_t kMetaOk = 0;
constexpr std::uint8_t kMetaNotFound = 1;
constexpr std::uint8_t kMetaMalformed = 2;

struct NodeOptions {
  /// Distinct owner ranks per metadata shard. >= world size selects the
  /// full-replication compatibility mode (sharded() == false).
  int replication_factor = 1;
  int vnodes = 32;
  std::uint32_t nshards = 64;
  /// Reply deadline for cluster RPCs in threaded mode (must be > 0).
  int rpc_timeout_ms = 2000;
  /// Manual mode: how many pump() iterations an RPC waits before giving
  /// up — the deterministic stand-in for the timeout.
  int pump_budget = 4096;
  /// Registry for the "cluster.*" metrics; nullptr = private registry.
  obs::MetricsRegistry* metrics = nullptr;
  /// Liveness script: when the injector says this rank's daemon is dead,
  /// the metadata service drops requests too (process-crash semantics).
  fault::FaultInjector* fault = nullptr;
  /// Manual mode: invoked repeatedly while an RPC waits for its reply;
  /// the simulation advances the virtual clock and polls every live node.
  /// Unset = threaded mode (blocking waits).
  std::function<void()> pump;
};

/// One anti-entropy round's accounting (delta-only sync is asserted by the
/// churn suite straight off these numbers / the matching "cluster.*"
/// counters).
struct SyncStats {
  std::uint64_t digest_rpcs = 0;
  std::uint64_t shards_pulled = 0;
  std::uint64_t bytes_pulled = 0;
  std::uint64_t entries_applied = 0;
  bool changed = false;
};

struct RebalanceStats {
  SyncStats sync;
  std::uint64_t shards_dropped = 0;
};

class ClusterNode final : public MetaResolver {
 public:
  ClusterNode(mpi::Comm comm, ShardStore* store, NodeOptions options);
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  // --- lifecycle --------------------------------------------------------
  void start() EXCLUDES(lifecycle_mu_);
  void stop() EXCLUDES(lifecycle_mu_);
  /// Manual mode: handles every pending cluster request now; returns how
  /// many messages were processed.
  int poll();

  // --- membership -------------------------------------------------------
  /// Seeds the view with `members` all Joined at incarnation 1 — the
  /// coordinated startup path (no messages sent). Every initial member
  /// must bootstrap with the same list.
  void bootstrap(const std::vector<int>& members);
  /// Elastic join: announce self (bumped incarnation), push-pull the view
  /// with each seed, pull owned shards, gossip the merged view. Returns
  /// false when no seed answered (the joiner stays isolated).
  bool join(const std::vector<int>& seeds);
  /// Graceful exit: mark self Leaving (drops out of ring ownership but
  /// keeps answering) and gossip.
  void leave();
  /// Failure-detector/admin hook: locally re-state `rank` at its current
  /// incarnation (severity merge: Dead > Leaving > Joined) and gossip.
  void declare(int rank, MemberState state);
  /// Pushes the current view to every serving member once.
  void gossip_now();

  MembershipView view() const EXCLUDES(mu_);
  std::uint64_t view_digest() const EXCLUDES(mu_);

  // --- ring -------------------------------------------------------------
  std::uint32_t nshards() const { return options_.nshards; }
  std::vector<int> shard_owners(std::uint32_t shard) const EXCLUDES(mu_);
  bool owns_shard(std::uint32_t shard) const EXCLUDES(mu_);

  // --- sharded metadata -------------------------------------------------
  /// Collective replacement for the metadata allgather: every bootstrap
  /// member pushes each of its local shards to that shard's owners
  /// (point-to-point, one message per peer) and merges the members-1
  /// pushes it receives. Must run before start() (the service thread also
  /// handles kTagMetaPush).
  void exchange_initial();
  /// One pull round: fetch peers' shard digests, pull every owned shard
  /// whose digest differs. Convergence loops call this until !changed.
  SyncStats anti_entropy();
  /// anti_entropy plus (optionally) push-then-drop of shards this rank no
  /// longer owns under the current ring.
  RebalanceStats rebalance(bool drop_unowned = true);
  /// Sharded namespace enumeration: this rank's primary shards locally +
  /// one list RPC per serving peer (each contributes the shards it is
  /// primary for). Sorted, deduplicated.
  std::vector<std::string> enumerate_paths();

  // --- MetaResolver (consumed by core::FanStoreFs) ----------------------
  bool sharded() const override;
  std::optional<VersionedStat> resolve(const std::string& path) override;
  std::vector<int> meta_owners(const std::string& path) override;
  std::vector<posixfs::Dirent> list_union(const std::string& dir) override;
  bool dir_exists_union(const std::string& dir) override;

 private:
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& m);
    obs::Counter& gossip_sent;
    obs::Counter& gossip_merged;
    obs::Counter& view_changes;
    obs::Counter& ring_rebuilds;
    obs::Counter& meta_served;
    obs::Counter& lookups_remote;
    obs::Counter& lookup_misses;
    obs::Counter& sync_rounds;
    obs::Counter& shards_pulled;
    obs::Counter& sync_bytes;
    obs::Counter& shards_dropped;
    obs::Counter& push_bytes;
    obs::Counter& merge_skipped;
  };

  void serve();
  void handle(const mpi::Message& msg);
  void handle_gossip(const mpi::Message& msg);
  void handle_meta_lookup(const mpi::Message& msg);
  void handle_shard_digest(const mpi::Message& msg);
  void handle_shard_pull(const mpi::Message& msg);
  void handle_list_paths(const mpi::Message& msg);
  void handle_list_dir(const mpi::Message& msg);
  void handle_meta_push(const mpi::Message& msg);

  /// True when the fault script says this rank's process is down — the
  /// metadata service then drops requests exactly like the data daemon.
  bool service_dead() const;

  /// Merges `incoming` into the view; rebuilds the ring on change.
  bool merge_view(const MembershipView& incoming) EXCLUDES(mu_);
  void rebuild_ring_locked() REQUIRES(mu_);

  /// Sends [prefix?][u32 reply_tag][body] and waits for the crc-checked
  /// reply body (blocking with timeout in threaded mode, pump-bounded in
  /// manual mode). nullopt on timeout/corruption.
  std::optional<Bytes> rpc(int dest, int tag, const Bytes& body,
                           const Bytes* prefix = nullptr);
  std::size_t merge_push_body(ByteView body);

  mpi::Comm comm_;
  ShardStore* store_;  // internally synchronized
  NodeOptions options_;
  bool sharded_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when not injected
  Metrics m_;

  // Leaf lock: held only for view/ring reads and merges, never across
  // comm_ or store_ calls (DESIGN.md §6).
  mutable sync::Mutex mu_{"cluster.node.mu"};
  MembershipView view_ GUARDED_BY(mu_);
  HashRing ring_ GUARDED_BY(mu_);
  HashRing prev_ring_ GUARDED_BY(mu_);  // lookup fallback mid-rebalance

  // Serializes start()/stop(), mirroring core::Daemon.
  sync::Mutex lifecycle_mu_{"cluster.node.lifecycle_mu"};
  std::thread thread_ GUARDED_BY(lifecycle_mu_);
  std::atomic<bool> running_{false};
  std::atomic<std::uint32_t> reply_seq_{0};
};

}  // namespace fanstore::cluster
