#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace fanstore::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache of (recorder id -> ring). Entries hold the ring
/// alive, so a ring outlives both its recorder (ids are never reused;
/// stale entries are just never looked up again) and the serializing side.
struct TlsEntry {
  std::uint64_t recorder_id;
  std::shared_ptr<void> ring;  // type-erased Ring
  void* raw;
};

thread_local std::vector<TlsEntry> tls_rings;

/// JSON string escaping for event names. Names are documented as string
/// literals, but the file must stay parseable even if one contains quotes
/// or control characters.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(next_recorder_id()),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::Ring& TraceRecorder::thread_ring() {
  for (const TlsEntry& e : tls_rings) {
    if (e.recorder_id == id_) return *static_cast<Ring*>(e.raw);
  }
  std::shared_ptr<Ring> ring;
  {
    sync::MutexLock lk(mu_);
    ring = std::make_shared<Ring>(static_cast<std::uint32_t>(rings_.size()),
                                  ring_capacity_);
    rings_.push_back(ring);
  }
  tls_rings.push_back({id_, ring, ring.get()});
  return *ring;
}

void TraceRecorder::record(const char* name, std::uint64_t ts_ns,
                           std::uint64_t dur_ns, std::uint64_t vts_ns,
                           std::uint64_t vdur_ns) {
  Ring& ring = thread_ring();
  sync::MutexLock lk(ring.mu);
  ring.events[ring.next] = Event{name, ts_ns, dur_ns, vts_ns, vdur_ns};
  ring.next = (ring.next + 1) % ring.events.size();
  if (ring.size < ring.events.size()) ring.size++;
}

std::size_t TraceRecorder::event_count() const {
  std::size_t total = 0;
  sync::MutexLock lk(mu_);
  for (const auto& ring : rings_) {
    sync::MutexLock rlk(ring->mu);
    total += ring->size;
  }
  return total;
}

void TraceRecorder::clear() {
  sync::MutexLock lk(mu_);
  for (const auto& ring : rings_) {
    sync::MutexLock rlk(ring->mu);
    ring->next = 0;
    ring->size = 0;
  }
}

std::string TraceRecorder::to_chrome_json() const {
  struct Flat {
    Event ev;
    std::uint32_t tid;
  };
  std::vector<Flat> flat;
  {
    sync::MutexLock lk(mu_);
    for (const auto& ring : rings_) {
      sync::MutexLock rlk(ring->mu);
      // Oldest-first: the ring holds `size` events ending just before
      // `next` (wrapping).
      const std::size_t cap = ring->events.size();
      const std::size_t first = (ring->next + cap - ring->size) % cap;
      for (std::size_t i = 0; i < ring->size; ++i) {
        flat.push_back({ring->events[(first + i) % cap], ring->tid});
      }
    }
  }
  // Chrome sorts internally, but emitting start-ordered events keeps the
  // file diffable and makes the nesting test's job straightforward.
  std::stable_sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    return a.ev.ts_ns < b.ev.ts_ns;
  });

  std::string out = "{\"traceEvents\": [";
  char buf[256];
  bool first = true;
  for (const Flat& f : flat) {
    if (!first) out += ",";
    first = false;
    const std::string name = json_escape(f.ev.name != nullptr ? f.ev.name : "?");
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 0, "
                  "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
                  name.c_str(), f.tid,
                  static_cast<double>(f.ev.ts_ns) / 1e3,
                  static_cast<double>(f.ev.dur_ns) / 1e3);
    out += buf;
    if (f.ev.vts_ns != kNoVirtualTime) {
      std::snprintf(buf, sizeof(buf),
                    ", \"args\": {\"vts_us\": %.3f, \"vdur_us\": %.3f}",
                    static_cast<double>(f.ev.vts_ns) / 1e3,
                    static_cast<double>(f.ev.vdur_ns) / 1e3);
      out += buf;
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = new TraceRecorder();  // never destroyed
  return *rec;
}

}  // namespace fanstore::obs
