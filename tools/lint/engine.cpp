#include "engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "baseline.hpp"
#include "model.hpp"
#include "rules.hpp"
#include "token.hpp"

namespace fanstore::lint {

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  lines.push_back(std::move(cur));
  return lines;
}

// Inline suppressions: a comment containing `fanstore-lint: allow(a, b)`
// silences rules a and b on the comment's own line — or on the next line
// when the comment stands alone.
std::map<int, std::set<std::string>> collect_suppressions(
    const std::vector<Token>& toks) {
  std::map<int, std::set<std::string>> by_line;
  std::set<int> code_lines;
  for (const Token& t : toks) {
    if (t.kind != Tok::kComment && t.kind != Tok::kEof) {
      code_lines.insert(t.line);
    }
  }
  for (const Token& t : toks) {
    if (t.kind != Tok::kComment) continue;
    const std::size_t at = t.text.find("fanstore-lint:");
    if (at == std::string::npos) continue;
    const std::size_t allow = t.text.find("allow(", at);
    if (allow == std::string::npos) continue;
    const std::size_t open = allow + 5;  // index of '('
    const std::size_t close = t.text.find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> rules;
    std::string cur;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const char c = t.text[i];
      if (c == ',' || c == ')') {
        if (!cur.empty()) rules.insert(cur);
        cur.clear();
      } else if (c != ' ' && c != '\t') {
        cur.push_back(c);
      }
    }
    if (rules.empty()) continue;
    const int target =
        code_lines.count(t.line) != 0 ? t.line : t.line + 1;
    by_line[target].insert(rules.begin(), rules.end());
    if (target != t.line) by_line[t.line].insert(rules.begin(), rules.end());
  }
  return by_line;
}

}  // namespace

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> kIds = {
      "determinism", "raw-sync",  "guarded-by",
      "metric-inventory", "codec-id", "crc-before-interpret",
      "eventfd-wakeup"};
  return kIds;
}

LintResult run_lint(const LintOptions& opts) {
  LintResult result;

  std::set<std::string> enabled(opts.rules.begin(), opts.rules.end());
  if (enabled.empty()) {
    enabled.insert(all_rule_ids().begin(), all_rule_ids().end());
  }
  for (const std::string& r : enabled) {
    if (std::find(all_rule_ids().begin(), all_rule_ids().end(), r) ==
        all_rule_ids().end()) {
      result.errors.push_back("unknown rule: " + r);
    }
  }

  MetricsState metrics;
  if (!opts.inventory_path.empty() &&
      enabled.count("metric-inventory") != 0) {
    std::string err;
    if (!metrics_load_inventory(opts.inventory_path,
                                fs::path(opts.inventory_path)
                                    .filename()
                                    .string(),
                                &metrics, &err)) {
      result.errors.push_back(err);
    }
  }

  Baseline baseline;
  const bool use_baseline = !opts.baseline_path.empty();
  if (use_baseline) {
    std::string err;
    if (!load_baseline(opts.baseline_path, &baseline, &err)) {
      result.errors.push_back(err);
    }
  }

  std::string design_text;
  if (!opts.design_path.empty()) {
    if (!read_file(opts.design_path, &design_text)) {
      result.errors.push_back("cannot open design doc: " + opts.design_path);
    }
  }

  if (!result.errors.empty()) return result;

  std::error_code ec;
  const fs::path root(opts.root);
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec) && lintable(it->path())) {
      files.push_back(it->path());
    }
  }
  if (ec || files.empty()) {
    result.errors.push_back("no lintable files under: " + opts.root);
    return result;
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> raw;
  std::map<std::string, std::vector<std::string>> file_lines;
  for (const fs::path& p : files) {
    std::string src;
    if (!read_file(p, &src)) {
      result.errors.push_back("cannot read: " + p.string());
      return result;
    }
    const std::string rel =
        fs::relative(p, root, ec).generic_string();
    const std::vector<Token> toks = tokenize(src);
    const TuModel model = build_model(toks);
    const FileCtx ctx{rel, &toks, &model};
    file_lines[rel] = split_lines(src);

    std::vector<Finding> found;
    if (enabled.count("determinism") != 0) rule_determinism(ctx, &found);
    if (enabled.count("raw-sync") != 0) rule_raw_sync(ctx, &found);
    if (enabled.count("guarded-by") != 0) rule_guarded_by(ctx, &found);
    if (enabled.count("codec-id") != 0) rule_codec_ids(ctx, &found);
    if (enabled.count("crc-before-interpret") != 0) {
      rule_crc_order(ctx, &found);
    }
    if (enabled.count("eventfd-wakeup") != 0) rule_eventfd_wakeup(ctx, &found);
    if (metrics.enabled) rule_metric_inventory(ctx, &metrics, &found);

    const auto suppressed = collect_suppressions(toks);
    for (Finding& f : found) {
      const auto it = suppressed.find(f.line);
      if (it != suppressed.end() && it->second.count(f.rule) != 0) continue;
      raw.push_back(std::move(f));
    }
  }

  metrics_finalize(&metrics, design_text, &raw);

  for (Finding& f : raw) {
    const auto lines = file_lines.find(f.file);
    if (lines != file_lines.end() && f.line >= 1 &&
        f.line <= static_cast<int>(lines->second.size())) {
      f.line_text = normalize_line(lines->second[f.line - 1]);
    }
    if (use_baseline && baseline.matches(f.rule, f.file, f.line_text)) {
      ++result.baselined;
      continue;
    }
    result.findings.push_back(std::move(f));
  }

  if (use_baseline) {
    for (const BaselineEntry* e : baseline.unused()) {
      result.warnings.push_back("stale baseline entry: " + e->rule + "|" +
                                e->file + "|" + e->line_text);
    }
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return result;
}

std::string format_baseline(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "# fanstore-lint baseline: rule|file|normalized line|justification\n"
      << "# Every entry needs a real justification; the loader rejects TODO.\n";
  std::set<std::string> seen;
  for (const Finding& f : findings) {
    const std::string key = f.rule + "|" + f.file + "|" + f.line_text;
    if (!seen.insert(key).second) continue;  // several findings, one line
    out << key << "|TODO justify or fix\n";
  }
  return out.str();
}

}  // namespace fanstore::lint
