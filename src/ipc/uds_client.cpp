#include "ipc/uds_client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "ipc/protocol.hpp"

namespace fanstore::ipc {

UdsClientVfs::UdsClientVfs(std::string endpoint_spec, ClientOptions options)
    : options_(options) {
  const auto ep = Endpoint::parse(endpoint_spec);
  if (ep.has_value()) {
    endpoint_ = *ep;
    endpoint_valid_ = true;
  }
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.metrics != nullptr) {
    retry_attempts_ = &options_.metrics->counter("retry.attempts");
    retry_exhausted_ = &options_.metrics->counter("retry.exhausted");
  }
}

UdsClientVfs::~UdsClientVfs() {
  sync::MutexLock lk(io_mu_);
  if (sock_ >= 0) ::close(sock_);
}

bool UdsClientVfs::connect_locked() {
  if (sock_ >= 0) return true;
  if (!endpoint_valid_) return false;
  sock_ = transport_connect(endpoint_);
  return sock_ >= 0;
}

bool UdsClientVfs::connect() {
  sync::MutexLock lk(io_mu_);
  return connect_locked();
}

std::optional<Bytes> UdsClientVfs::call(ByteView request) {
  sync::MutexLock lk(io_mu_);
  for (int attempt = 1;; ++attempt) {
    if (connect_locked()) {
      if (write_frame(sock_, request)) {
        auto reply = read_frame(sock_);
        if (reply) return reply;
      }
      // Failed mid-round-trip: the stream position is unknown, so the
      // connection is useless — drop it and reconnect on the next attempt.
      ::close(sock_);
      sock_ = -1;
    }
    if (attempt >= options_.max_attempts) {
      if (retry_exhausted_ != nullptr && options_.max_attempts > 1) {
        retry_exhausted_->inc();
      }
      return std::nullopt;
    }
    if (retry_attempts_ != nullptr) retry_attempts_->inc();
    const int shift = std::min(attempt - 1, 20);
    const long delay = std::min<long>(
        static_cast<long>(options_.base_delay_ms) << shift,
        options_.max_delay_ms);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

int UdsClientVfs::open(std::string_view path_in, posixfs::OpenMode mode) {
  if (mode != posixfs::OpenMode::kRead) return -EROFS;  // read-only transport
  const std::string path = posixfs::normalize_path(path_in);
  const auto reply = call(as_view(encode_request(Op::kGet, path)));
  if (!reply) return -EIO;
  auto get = decode_get_reply(as_view(*reply));
  if (!get) return -EIO;
  if (get->status != Status::kOk) return -ENOENT;
  sync::MutexLock lk(mu_);
  const int fd = next_fd_++;
  open_files_[fd] =
      OpenFile{std::make_shared<const Bytes>(std::move(get->data)), 0};
  return fd;
}

int UdsClientVfs::close(int fd) {
  sync::MutexLock lk(mu_);
  return open_files_.erase(fd) > 0 ? 0 : -EBADF;
}

std::int64_t UdsClientVfs::read(int fd, MutByteView buf) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  const Bytes& data = *of.data;
  if (of.offset >= static_cast<std::int64_t>(data.size())) return 0;
  const std::size_t n =
      std::min(buf.size(), data.size() - static_cast<std::size_t>(of.offset));
  std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(of.offset), n, buf.begin());
  of.offset += static_cast<std::int64_t>(n);
  return static_cast<std::int64_t>(n);
}

std::int64_t UdsClientVfs::write(int, ByteView) { return -EROFS; }

std::int64_t UdsClientVfs::lseek(int fd, std::int64_t offset, posixfs::Whence whence) {
  sync::MutexLock lk(mu_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end()) return -EBADF;
  OpenFile& of = it->second;
  std::int64_t base = 0;
  switch (whence) {
    case posixfs::Whence::kSet: base = 0; break;
    case posixfs::Whence::kCur: base = of.offset; break;
    case posixfs::Whence::kEnd: base = static_cast<std::int64_t>(of.data->size()); break;
  }
  const std::int64_t pos = base + offset;
  if (pos < 0) return -EINVAL;
  of.offset = pos;
  return pos;
}

int UdsClientVfs::stat(std::string_view path_in, format::FileStat* out) {
  const std::string path = posixfs::normalize_path(path_in);
  const auto reply = call(as_view(encode_request(Op::kStat, path)));
  if (!reply) return -EIO;
  const auto st = decode_stat_reply(as_view(*reply));
  if (!st) return -EIO;
  if (st->status != Status::kOk) return -ENOENT;
  *out = st->stat;
  return 0;
}

int UdsClientVfs::opendir(std::string_view path_in) {
  const std::string path = posixfs::normalize_path(path_in);
  const auto reply = call(as_view(encode_request(Op::kList, path)));
  if (!reply) return -EIO;
  auto list = decode_list_reply(as_view(*reply));
  if (!list) return -EIO;
  if (list->status != Status::kOk) return -ENOENT;
  sync::MutexLock lk(mu_);
  const int h = next_dir_++;
  open_dirs_[h] = OpenDir{std::move(list->entries), 0};
  return h;
}

std::optional<posixfs::Dirent> UdsClientVfs::readdir(int dir_handle) {
  sync::MutexLock lk(mu_);
  const auto it = open_dirs_.find(dir_handle);
  if (it == open_dirs_.end()) return std::nullopt;
  if (it->second.next >= it->second.entries.size()) return std::nullopt;
  return it->second.entries[it->second.next++];
}

int UdsClientVfs::closedir(int dir_handle) {
  sync::MutexLock lk(mu_);
  return open_dirs_.erase(dir_handle) > 0 ? 0 : -EBADF;
}

}  // namespace fanstore::ipc
