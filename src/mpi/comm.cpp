#include "mpi/comm.hpp"

#include "fault/injector.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace fanstore::mpi {

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, Bytes payload) const {
  world_->deliver(dest, Message{rank_, tag, std::move(payload)});
}

namespace {
std::function<bool(const Message&)> match_source_tag(int source, int tag) {
  return [source, tag](const Message& m) {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  };
}
}  // namespace

Message Comm::recv(int source, int tag) const {
  return *world_->take_matching(rank_, match_source_tag(source, tag), /*block=*/true);
}

std::optional<Message> Comm::try_recv(int source, int tag) const {
  return world_->take_matching(rank_, match_source_tag(source, tag), /*block=*/false);
}

Message Comm::recv_if(const std::function<bool(const Message&)>& pred) const {
  return *world_->take_matching(rank_, pred, /*block=*/true);
}

std::optional<Message> Comm::try_recv_if(
    const std::function<bool(const Message&)>& pred) const {
  return world_->take_matching(rank_, pred, /*block=*/false);
}

std::optional<Message> Comm::recv_timeout(int source, int tag, int timeout_ms) const {
  return world_->take_matching(rank_, match_source_tag(source, tag), /*block=*/true,
                               timeout_ms);
}

void Comm::barrier() const {
  obs::TraceSpan span("mpi.barrier");
  world_->collectives_.inc();
  world_->barrier_impl();
}

std::vector<Bytes> Comm::allgather(ByteView mine) const {
  obs::TraceSpan span("mpi.allgather");
  world_->collectives_.inc();
  return world_->allgather_impl(rank_, mine);
}

Bytes Comm::bcast(int root, ByteView mine) const {
  auto all = world_->allgather_impl(rank_, rank_ == root ? mine : ByteView{});
  return std::move(all[static_cast<std::size_t>(root)]);
}

std::vector<double> Comm::allreduce_sum(const std::vector<double>& mine) const {
  Bytes raw(mine.size() * sizeof(double));
  std::memcpy(raw.data(), mine.data(), raw.size());
  const auto all = world_->allgather_impl(rank_, as_view(raw));
  std::vector<double> sum(mine.size(), 0.0);
  for (const Bytes& contrib : all) {
    if (contrib.size() != raw.size()) {
      throw std::logic_error("allreduce_sum: rank contributed mismatched length");
    }
    for (std::size_t i = 0; i < sum.size(); ++i) {
      double v;
      std::memcpy(&v, contrib.data() + i * sizeof(double), sizeof(double));
      sum[i] += v;
    }
  }
  return sum;
}

double Comm::allreduce_max(double mine) const {
  Bytes raw(sizeof(double));
  std::memcpy(raw.data(), &mine, sizeof(double));
  const auto all = world_->allgather_impl(rank_, as_view(raw));
  double best = mine;
  for (const Bytes& contrib : all) {
    if (contrib.size() != sizeof(double)) {
      throw std::logic_error("allreduce_max: rank contributed mismatched length");
    }
    double v;
    std::memcpy(&v, contrib.data(), sizeof(double));
    best = std::max(best, v);
  }
  return best;
}

World::World(int nranks, fault::FaultInjector* injector, util::TimeSource* time)
    : nranks_(nranks),
      injector_(injector),
      time_(time != nullptr ? time : &util::TimeSource::real()),
      messages_sent_(obs::MetricsRegistry::global().counter("mpi.messages_sent")),
      bytes_sent_(obs::MetricsRegistry::global().counter("mpi.bytes_sent")),
      collectives_(obs::MetricsRegistry::global().counter("mpi.collectives")) {
  if (nranks <= 0) throw std::invalid_argument("World: nranks must be positive");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  coll_slots_.resize(static_cast<std::size_t>(nranks));
}

void World::deliver(int dest, Message msg) {
  if (dest < 0 || dest >= nranks_) throw std::out_of_range("send: bad destination rank");
  messages_sent_.inc();
  bytes_sent_.inc(msg.payload.size());
  util::TimeNs due = time_->now_ns();
  bool duplicate = false;
  // Fault boundary: the message "left the wire" (counted above) but may
  // never arrive, arrive twice, arrive late, or arrive mangled. Self-sends
  // are exempt so shutdown tokens and loopback control always land.
  if (injector_ != nullptr && msg.source != dest) {
    const fault::MessageVerdict v =
        injector_->on_message(msg.source, dest, msg.tag, msg.payload);
    if (v.drop) return;
    duplicate = v.duplicate;
    if (v.delay_ms > 0) due += util::ms_to_ns(v.delay_ms);
  }
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    sync::MutexLock lk(mb.mu);
    if (duplicate) mb.queue.push_back(Entry{msg, due});
    mb.queue.push_back(Entry{std::move(msg), due});
  }
  mb.cv.notify_all();
}

std::optional<Message> World::take_matching(
    int rank, const std::function<bool(const Message&)>& pred, bool block,
    int timeout_ms) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  sync::MutexLock lk(mb.mu);
  const bool has_deadline = timeout_ms >= 0;
  const util::TimeNs deadline =
      time_->now_ns() + util::ms_to_ns(has_deadline ? timeout_ms : 0);
  // Scan for a matching entry that is already due; a matching entry whose
  // delivery time lies in the future bounds how long we sleep (a delayed
  // message must surface the moment it comes due, without another notify).
  bool have_due = false;
  util::TimeNs earliest_due = 0;
  auto match = [&](util::TimeNs now) NO_THREAD_SAFETY_ANALYSIS
      -> std::optional<Message> {
    have_due = false;
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (!pred(it->msg)) continue;
      if (it->due <= now) {
        Message m = std::move(it->msg);
        mb.queue.erase(it);
        return m;
      }
      if (!have_due || it->due < earliest_due) {
        have_due = true;
        earliest_due = it->due;
      }
    }
    return std::nullopt;
  };
  for (;;) {
    const util::TimeNs now = time_->now_ns();
    if (auto m = match(now)) return m;
    if (!block) return std::nullopt;
    if (has_deadline && now >= deadline) return std::nullopt;
    if (!has_deadline && !have_due) {
      mb.cv.wait(mb.mu);
      continue;
    }
    util::TimeNs wake = has_deadline ? deadline : earliest_due;
    if (have_due && earliest_due < wake) wake = earliest_due;
    time_->wait_until(mb.cv, mb.mu, wake);
  }
}

void World::barrier_impl() {
  sync::MutexLock lk(coll_mu_);
  const std::uint64_t gen = coll_generation_;
  if (++coll_arrived_ == nranks_) {
    coll_arrived_ = 0;
    ++coll_generation_;
    coll_cv_.notify_all();
  } else {
    coll_cv_.wait(coll_mu_,
                  [&]() NO_THREAD_SAFETY_ANALYSIS { return coll_generation_ != gen; });
  }
}

std::vector<Bytes> World::allgather_impl(int rank, ByteView mine) {
  {
    sync::MutexLock lk(coll_mu_);
    coll_slots_[static_cast<std::size_t>(rank)] = Bytes(mine.begin(), mine.end());
  }
  barrier_impl();  // all deposits visible
  std::vector<Bytes> result;
  {
    sync::MutexLock lk(coll_mu_);
    result = coll_slots_;
  }
  barrier_impl();  // nobody re-deposits before everyone has copied
  return result;
}

void run_world(int nranks, const std::function<void(Comm&)>& fn,
               fault::FaultInjector* injector, util::TimeSource* time) {
  World world(nranks, injector, time);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error;
  sync::Mutex err_mu{"mpi.run_world.err_mu"};
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm = world.comm(r);
      try {
        fn(comm);
      } catch (...) {
        sync::MutexLock lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fanstore::mpi
