// Retry policy for remote fetches: exponential backoff with deterministic
// jitter (DESIGN.md §8 "Fault model").
//
// A fetch attempt that fails *retryably* — the daemon did not answer inside
// the timeout window, or the reply failed its wire CRC — is retried against
// the same candidate rank up to `max_attempts` times, sleeping an
// exponentially growing, jittered delay between attempts. Definitive
// outcomes (the rank answered "not found") skip retries and move failover
// to the next ring candidate immediately.
//
// Jitter is derived from (seed, salt, attempt) with the same splitmix
// mixing the fault layer uses, never from wall-clock or a shared RNG: the
// exact backoff schedule of any run replays from its seed.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace fanstore::core {

struct RetryPolicy {
  /// Attempts per candidate rank (>= 1); 1 disables retries.
  int max_attempts = 3;
  /// Backoff before attempt k (k >= 1) is min(base << (k-1), max) ms,
  /// then jittered.
  int base_delay_ms = 2;
  int max_delay_ms = 200;
  /// Fraction of the delay that is randomized: the slept delay is uniform
  /// in [delay * (1 - jitter), delay]. 0 = fixed backoff, 1 = full jitter.
  double jitter = 0.5;
  /// Seed for the jitter stream (combined with a per-call salt).
  std::uint64_t seed = 0x7E7294EEull;

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;

  /// Jittered backoff in ms before retry `attempt` (1-based: the delay
  /// between attempt `attempt` and `attempt + 1`). Deterministic in
  /// (seed, salt, attempt). Returns 0 when base_delay_ms == 0.
  int delay_ms(int attempt, std::uint64_t salt) const;
};

}  // namespace fanstore::core
