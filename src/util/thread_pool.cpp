#include "util/thread_pool.hpp"

#include <atomic>

namespace fanstore {

ThreadPool::ThreadPool(std::size_t n_threads) : mu_("thread_pool.mu") {
  if (n_threads == 0) n_threads = 1;
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    sync::MutexLock lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  sync::MutexLock lk(mu_);
  cv_idle_.wait(mu_, [this]() NO_THREAD_SAFETY_ANALYSIS {
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lk(mu_);
      cv_task_.wait(mu_, [this]() NO_THREAD_SAFETY_ANALYSIS {
        return stop_ || !queue_.empty();
      });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      sync::MutexLock lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;  // published by exchange(), read after join
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> ts;
  const std::size_t nt = std::min(threads, n);
  ts.reserve(nt);
  for (std::size_t t = 0; t < nt; ++t) ts.emplace_back(worker);
  for (auto& t : ts) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fanstore
