// Unit tests for the util module: CRC, RNG determinism, stats, thread pool,
// CLI parsing, and byte helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/bytes.hpp"
#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace fanstore {
namespace {

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const auto data = to_bytes("123456789");
  EXPECT_EQ(crc32(as_view(data)), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(crc32(ByteView{}), 0u); }

TEST(Crc32Test, SeedChaining) {
  const auto all = to_bytes("hello world");
  const auto a = to_bytes("hello ");
  const auto b = to_bytes("world");
  // Chaining via seed must equal one-shot CRC.
  EXPECT_EQ(crc32(as_view(b), crc32(as_view(a))), crc32(as_view(all)));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  auto data = to_bytes("some payload to protect");
  const auto before = crc32(as_view(data));
  data[5] ^= 0x10;
  EXPECT_NE(crc32(as_view(data)), before);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StatsTest, BasicMoments) {
  Stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(StatsTest, EmptyThrows) {
  Stats s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.percentile(50), std::logic_error);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps into first bucket
  h.add(100.0);  // clamps into last bucket
  EXPECT_EQ(h.count_at(0), 2u);
  EXPECT_EQ(h.count_at(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 10.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { count++; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, 8, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, SingleThreadFallback) {
  int sum = 0;
  parallel_for(10, 1, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(CliArgsTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--nodes=4",  "--backend=ram",
                        "--verbose", "positional", "--ratio=2.5"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("nodes", 0), 4);
  EXPECT_EQ(args.get("backend", ""), "ram");
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0), 2.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.get("missing", "def"), "def");
  EXPECT_FALSE(args.has("missing"));
}

TEST(BytesTest, LittleEndianHelpers) {
  Bytes b;
  append_le<std::uint32_t>(b, 0x01020304u);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(load_le<std::uint32_t>(b.data()), 0x01020304u);
  store_le<std::uint16_t>(b.data(), 0xBEEF);
  EXPECT_EQ(load_le<std::uint16_t>(b.data()), 0xBEEF);
}

TEST(BytesTest, StringConversions) {
  const std::string s = "fanstore";
  EXPECT_EQ(to_string(as_view(s)), s);
  EXPECT_EQ(to_string(as_view(to_bytes(s))), s);
}

}  // namespace
}  // namespace fanstore
