#include "util/clock.hpp"

#include <chrono>

namespace fanstore::util {

namespace {

// The one place outside tests where wall time enters the deterministic
// subsystems' timeline.
class RealTimeSource final : public TimeSource {
 public:
  TimeNs now_ns() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void wait_until(sync::AnnotatedCondVar& cv, sync::Mutex& mu,
                  TimeNs deadline) override {
    cv.wait_until(mu, std::chrono::steady_clock::time_point(
                          std::chrono::nanoseconds(deadline)));
  }
};

}  // namespace

TimeSource& TimeSource::real() {
  static RealTimeSource* kReal = new RealTimeSource;  // leaked: outlives ranks
  return *kReal;
}

void ManualTimeSource::wait_until(sync::AnnotatedCondVar& cv, sync::Mutex& mu,
                                  TimeNs deadline) {
  if (now_ns() >= deadline) return;
  // One bounded slice per call: callers loop, and a concurrent advance_ns()
  // is seen at the next slice boundary (<= 1 ms of real time later).
  cv.wait_for(mu, std::chrono::milliseconds(1));
}

}  // namespace fanstore::util
