// Fault-tolerance tests: replica failover when a daemon dies (timed fetch
// + ring fallback) and data-parallel global-shuffle coverage guarantees.
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "compress/registry.hpp"
#include "core/instance.hpp"
#include "dlsim/trainer.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "tests/test_data.hpp"

namespace fanstore {
namespace {

TEST(FailoverTest, ReplicaServesWhenOwnerDaemonDies) {
  // 3 ranks; rank 1 owns "f" and rank 2 holds a ring replica. Rank 1's
  // daemon never starts (a "failed node"); rank 0's read must time out on
  // the owner and fail over to rank 2.
  const Bytes data = testdata::text_like(9000, 5);
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4hc");
  format::PartitionWriter w;
  w.add(format::make_record("f", *codec, reg.id_of(*codec), as_view(data)));
  const Bytes part = w.serialize();

  mpi::run_world(3, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 200;
    opt.fs.failover_hops = 2;
    core::Instance inst(comm, opt);
    if (comm.rank() == 1) {
      inst.load_partition_blob(as_view(part), 0, /*owner_rank=*/1);
    }
    if (comm.rank() == 2) {
      // The replica: blob in the local backend, no metadata ownership.
      const auto views = format::scan_partition(as_view(part));
      core::Blob b;
      b.compressor = views[0].compressor;
      b.data.assign(views[0].data.begin(), views[0].data.end());
      inst.backend().put("f", std::move(b));
    }
    inst.exchange_metadata();
    if (comm.rank() != 1) inst.start_daemon();  // rank 1 is "dead"
    comm.barrier();

    if (comm.rank() == 0) {
      const auto got = posixfs::read_file(inst.fs(), "f");
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, data);
      EXPECT_EQ(inst.fs().stats().failovers, 1u);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(FailoverTest, FetchFailsCleanlyWithNoReplica) {
  mpi::run_world(2, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 100;
    opt.fs.failover_hops = 1;
    core::Instance inst(comm, opt);
    if (comm.rank() == 1) {
      format::FileStat st;
      st.size = 10;
      st.owner_rank = 1;
      inst.metadata().insert("ghost", st);
    }
    inst.exchange_metadata();
    // No daemons at all: the open must fail with -EIO, not hang.
    if (comm.rank() == 0) {
      EXPECT_EQ(inst.fs().open("ghost", posixfs::OpenMode::kRead), -EIO);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(FailoverTest, RingReplicationPlusFailoverEndToEnd) {
  // Full flow: prep -> load_from_shared -> replicate_ring(1); then one
  // daemon "dies" and its files remain readable from the successor.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs src;
    for (int i = 0; i < 8; ++i) {
      posixfs::write_file(src, "ds/f" + std::to_string(i),
                          as_view(testdata::runs_and_noise(4000, i)));
    }
    prep::PrepOptions opt;
    opt.num_partitions = 4;
    opt.compressor = "lz4";
    prep::prepare_dataset(src, "ds", shared, "packed", opt);
  }
  constexpr int kDead = 2;
  mpi::run_world(4, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.fs.fetch_timeout_ms = 300;
    opt.fs.failover_hops = 2;
    core::Instance inst(comm, opt);
    const auto manifest = prep::load_manifest(shared, "packed");
    inst.load_from_shared(shared, manifest.partition_paths());
    inst.replicate_ring(1);
    inst.exchange_metadata();
    if (comm.rank() != kDead) inst.start_daemon();
    comm.barrier();

    if (comm.rank() == 0) {
      // Every file is readable, including rank 2's (replicated on rank 3).
      for (int i = 0; i < 8; ++i) {
        const auto got = posixfs::read_file(inst.fs(), "ds/f" + std::to_string(i));
        ASSERT_TRUE(got.has_value()) << i;
        EXPECT_EQ(*got, testdata::runs_and_noise(4000, i)) << i;
      }
      EXPECT_GE(inst.fs().stats().failovers, 1u);
    }
    comm.barrier();
    inst.stop();
  });
}

TEST(GlobalShuffleTest, EveryFileVisitedOncePerEpoch) {
  // Data-parallel semantics: 2 ranks x batch 3 over 12 files -> 2
  // iterations/epoch, every file read exactly once per epoch job-wide.
  std::mutex mu;
  std::multiset<std::string> read_paths;
  mpi::run_world(2, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    const auto& reg = compress::Registry::instance();
    const auto* codec = reg.by_name("store");
    format::PartitionWriter w;
    std::vector<std::string> files;
    for (int i = 0; i < 12; ++i) {
      const std::string p = "d/f" + std::to_string(i);
      files.push_back(p);
      if (i % 2 == comm.rank()) {
        w.add(format::make_record(p, *codec, 0, as_view(Bytes(64, static_cast<std::uint8_t>(i)))));
      }
    }
    const Bytes blob = w.serialize();
    inst.load_partition_blob(as_view(blob), static_cast<std::uint32_t>(comm.rank()));
    inst.exchange_metadata();
    inst.start_daemon();
    comm.barrier();

    simnet::VirtualClock clock;
    dlsim::TrainerOptions topt;
    topt.t_iter_s = 0.01;
    topt.batch_per_rank = 3;
    topt.epochs = 1;
    topt.io_clock = &clock;
    topt.comm = &comm;
    topt.global_shuffle = true;
    const auto result = dlsim::run_training(inst.fs(), files, topt);
    EXPECT_EQ(result.iterations, 2u);  // 12 / (3 x 2 ranks)
    EXPECT_EQ(result.files_read, 6u);

    // Collect which files this rank actually opened via stats-free route:
    // re-derive from cache contents (every opened file was cached).
    {
      std::lock_guard lk(mu);
      for (const auto& p : files) {
        if (inst.fs().cache().contains(p)) read_paths.insert(p);
      }
    }
    comm.barrier();
    inst.stop();
  });
  // Disjoint slices: no file cached on both ranks, all 12 covered.
  EXPECT_EQ(read_paths.size(), 12u);
  for (const auto& p : read_paths) EXPECT_EQ(read_paths.count(p), 1u) << p;
}

TEST(GlobalShuffleTest, RequiresComm) {
  posixfs::MemVfs fs;
  simnet::VirtualClock clock;
  dlsim::TrainerOptions opt;
  opt.io_clock = &clock;
  opt.global_shuffle = true;
  EXPECT_THROW(dlsim::run_training(fs, {"f"}, opt), std::invalid_argument);
}

}  // namespace
}  // namespace fanstore
