// Sharded-metadata benchmark (DESIGN.md §13): the classic full-replication
// allgather vs the consistent-hash-sharded push exchange, at 8 and 64
// in-process ranks (real threads, real mailboxes) and at 512 ranks on the
// virtual clock (modeled analytically from the measured per-entry sizes,
// recorded with "modeled": true like the simnet-backed benches).
//
// Per rank-count cell, each mode reports:
//   build_ms             wall time of exchange_metadata()
//   bytes_per_rank       metadata bytes received per rank during the build
//   lookup_p99_us        p99 of a post-build stat-path lookup from rank 0
//                        (classic: local map hit; sharded: resolve(), a mix
//                        of local shard hits and meta RPCs to shard owners)
//
// Acceptance (ISSUE 10): the sharded exchange must move < 1/4 of the
// classic per-rank bytes at 64 ranks (rf=2 vs 64-way replication) — always
// enforced, it is a pure protocol property. The build wall-time gate
// (sharded <= classic at 64 ranks) is enforced only on hosts with >= 8
// hardware threads; below that the 64-thread world measures the scheduler,
// not the exchange. Emits BENCH_cluster.json; tools/ci.sh runs `--quick`.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "cluster/node.hpp"
#include "core/instance.hpp"
#include "simnet/models.hpp"
#include "util/timer.hpp"

using namespace fanstore;

namespace {

struct Cell {
  double build_ms = 0;
  double bytes_per_rank = 0;
  double lookup_p99_us = 0;
  bool modeled = false;
};

std::vector<std::string> namespace_paths(int ranks, int files_per_rank) {
  std::vector<std::string> paths;
  for (int r = 0; r < ranks; ++r) {
    for (int i = 0; i < files_per_rank; ++i) {
      paths.push_back("ds/r" + std::to_string(r) + "/f" + std::to_string(i));
    }
  }
  return paths;
}

double p99_us(std::vector<double>& lat) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  return lat[lat.size() * 99 / 100];
}

// One real in-process world: build the metadata view (classic allgather
// when rf == 0, sharded push exchange otherwise), then rank 0 measures
// lookup latency over the whole namespace.
Cell run_real(int ranks, int files_per_rank, int rf, int lookups) {
  Cell cell;
  const auto paths = namespace_paths(ranks, files_per_rank);
  mpi::run_world(ranks, [&](mpi::Comm& comm) {
    core::Instance::Options opt;
    opt.cluster.replication_factor = rf;
    core::Instance inst(comm, std::move(opt));
    std::vector<std::pair<std::string, Bytes>> mine;
    for (int i = 0; i < files_per_rank; ++i) {
      mine.emplace_back(paths[static_cast<std::size_t>(
                            comm.rank() * files_per_rank + i)],
                        Bytes(16, 1));
    }
    const Bytes part = bench::make_partition(mine, "store");
    inst.load_partition_blob(as_view(part), static_cast<std::uint32_t>(comm.rank()));
    const std::size_t own_bytes = inst.metadata().serialize().size();
    comm.barrier();
    WallTimer build;
    inst.exchange_metadata();
    comm.barrier();
    if (comm.rank() == 0) cell.build_ms = build.elapsed_sec() * 1e3;

    if (rf == 0) {
      // Classic: every rank now holds the full namespace; inbound bytes are
      // everyone else's serialized metadata.
      if (comm.rank() == 0) {
        cell.bytes_per_rank = static_cast<double>(
            inst.metadata().serialize().size() - own_bytes);
      }
    } else {
      // Sharded: pushes are counted on the sender; the per-rank average
      // inbound equals the per-rank average outbound.
      const double pushed = static_cast<double>(
          inst.metrics().counter("cluster.push_bytes").value());
      const auto sums = comm.allreduce_sum({pushed});
      if (comm.rank() == 0) cell.bytes_per_rank = sums[0] / ranks;
    }

    inst.start_daemon();
    comm.barrier();
    if (comm.rank() == 0) {
      std::vector<double> lat;
      lat.reserve(static_cast<std::size_t>(lookups));
      auto* node = inst.cluster_node();
      std::size_t misses = 0;
      for (int i = 0; i < lookups; ++i) {
        const std::string& p =
            paths[(static_cast<std::size_t>(i) * 7919) % paths.size()];
        WallTimer t;
        if (rf == 0) {
          if (!inst.metadata().lookup(p)) ++misses;
        } else {
          if (!node->resolve(p)) ++misses;
        }
        lat.push_back(t.elapsed_us());
      }
      if (misses > 0) {
        std::fprintf(stderr, "bench_cluster: %zu lookup misses at %d ranks\n",
                     misses, ranks);
      }
      cell.lookup_p99_us = p99_us(lat);
    }
    comm.barrier();
    inst.stop();
  });
  return cell;
}

// 512-rank cells on the virtual clock: charge the omnipath model with the
// per-entry wire sizes measured in the real runs. Classic is a ring
// allgather of everyone's metadata; sharded pushes each entry to its rf
// shard owners (nshards scaled to 4x ranks so every rank owns shards).
Cell model_cell(int ranks, int files_per_rank, int rf, double entry_bytes,
                double apply_us_per_entry, double local_lookup_us) {
  const simnet::NetworkModel net = simnet::omnipath();
  const double bw = net.effective_bandwidth(ranks);
  const double local_bytes = files_per_rank * entry_bytes;
  Cell cell;
  cell.modeled = true;
  if (rf == 0) {
    // Ring allgather (N-1 steps forwarding one rank's blob), then every
    // inbound entry is applied to the local map at the measured CPU cost.
    cell.bytes_per_rank = (ranks - 1) * local_bytes;
    const double entries_in = (ranks - 1.0) * files_per_rank;
    cell.build_ms = ((ranks - 1) * net.latency_s + cell.bytes_per_rank / bw +
                     entries_in * apply_us_per_entry * 1e-6) *
                    1e3;
    cell.lookup_p99_us = local_lookup_us;  // always a local map hit
  } else {
    // Each rank ships its entries to the rf owners of each path's shard
    // and receives its rf/N slice of the global namespace in return.
    cell.bytes_per_rank = rf * local_bytes;
    const double entries_in = static_cast<double>(rf) * files_per_rank;
    cell.build_ms = (2 * net.latency_s + cell.bytes_per_rank / bw +
                     entries_in * apply_us_per_entry * 1e-6) *
                    1e3;
    // p99 lookup is remote (only rf/N of shards are local): one meta RPC.
    cell.lookup_p99_us =
        (2 * net.latency_s + entry_bytes / bw) * 1e6 + local_lookup_us;
  }
  return cell;
}

std::string json_cell(const Cell& c) {
  return "{\"build_ms\": " + bench::fmt("%.3f", c.build_ms) +
         ", \"bytes_per_rank\": " + bench::fmt("%.0f", c.bytes_per_rank) +
         ", \"lookup_p99_us\": " + bench::fmt("%.2f", c.lookup_p99_us) +
         ", \"modeled\": " + (c.modeled ? "true" : "false") + "}";
}

std::string json_cells(const std::vector<Cell>& v) {
  std::string s = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) s += ", ";
    s += json_cell(v[i]);
  }
  return s + "]";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int files_per_rank = quick ? 50 : 200;
  const int lookups = quick ? 400 : 2000;
  constexpr int kRf = 2;

  bench::section("Sharded metadata vs classic allgather (DESIGN.md §13)");
  const std::vector<int> real_ranks = {8, 64};
  std::vector<int> all_ranks = real_ranks;
  all_ranks.push_back(512);

  std::vector<Cell> classic, sharded;
  for (const int n : real_ranks) {
    classic.push_back(run_real(n, files_per_rank, /*rf=*/0, lookups));
    sharded.push_back(run_real(n, files_per_rank, kRf, lookups));
  }
  // Per-entry wire size from the measured 64-rank classic exchange; the
  // modeled 512-rank cells extrapolate from it.
  const double entries_in_64 = (real_ranks.back() - 1.0) * files_per_rank;
  const double entry_bytes = classic.back().bytes_per_rank / entries_in_64;
  // Per-entry apply cost (wire decode + map insert + dir synthesis) from
  // the measured 64-rank classic build, which that phase dominates.
  const double apply_us = classic.back().build_ms * 1e3 / entries_in_64;
  classic.push_back(model_cell(512, files_per_rank, 0, entry_bytes, apply_us,
                               classic.back().lookup_p99_us));
  sharded.push_back(model_cell(512, files_per_rank, kRf, entry_bytes, apply_us,
                               classic.back().lookup_p99_us));

  bench::Table table({"ranks", "classic build ms", "classic B/rank",
                      "classic p99us", "sharded build ms", "sharded B/rank",
                      "sharded p99us", "modeled"});
  for (std::size_t i = 0; i < all_ranks.size(); ++i) {
    table.row({std::to_string(all_ranks[i]),
               bench::fmt("%.2f", classic[i].build_ms),
               bench::fmt("%.0f", classic[i].bytes_per_rank),
               bench::fmt("%.2f", classic[i].lookup_p99_us),
               bench::fmt("%.2f", sharded[i].build_ms),
               bench::fmt("%.0f", sharded[i].bytes_per_rank),
               bench::fmt("%.2f", sharded[i].lookup_p99_us),
               classic[i].modeled ? "yes" : "no"});
  }
  table.print();

  // Acceptance. Bytes: a pure protocol property (rf copies vs N copies),
  // enforced on every host. Wall: only meaningful when the 64 threads can
  // actually run in parallel.
  bool ok = true;
  const std::size_t i64 = 1;  // index of the 64-rank cell
  if (sharded[i64].bytes_per_rank >= classic[i64].bytes_per_rank / 4) {
    std::fprintf(stderr,
                 "bench_cluster: sharded moved %.0f B/rank, expected < 1/4 "
                 "of classic's %.0f at 64 ranks\n",
                 sharded[i64].bytes_per_rank, classic[i64].bytes_per_rank);
    ok = false;
  }
  const bool enforce_wall = hw >= 8;
  if (enforce_wall && sharded[i64].build_ms > classic[i64].build_ms) {
    std::fprintf(stderr,
                 "bench_cluster: sharded build %.2f ms slower than classic "
                 "%.2f ms at 64 ranks\n",
                 sharded[i64].build_ms, classic[i64].build_ms);
    ok = false;
  }

  FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_cluster: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::string ranks_json = "[";
  for (std::size_t i = 0; i < all_ranks.size(); ++i) {
    if (i > 0) ranks_json += ", ";
    ranks_json += std::to_string(all_ranks[i]);
  }
  ranks_json += "]";
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"cluster\",\n"
               "  \"quick\": %s,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"files_per_rank\": %d,\n"
               "  \"replication_factor\": %d,\n"
               "  \"ranks\": %s,\n"
               "  \"classic_allgather\": %s,\n"
               "  \"sharded\": %s,\n"
               "  \"wall_gate_enforced\": %s\n"
               "}\n",
               quick ? "true" : "false", hw, files_per_rank, kRf,
               ranks_json.c_str(), json_cells(classic).c_str(),
               json_cells(sharded).c_str(), enforce_wall ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "bench_cluster: acceptance checks FAILED\n");
    return 1;
  }
  std::printf("acceptance checks: OK\n");
  return 0;
}
