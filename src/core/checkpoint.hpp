// Checkpoint management (§V-E): DL programs number checkpoints by epoch;
// FanStore does not add explicit fault tolerance — instead checkpoints
// written through the POSIX surface are mirrored to the shared file system
// so training can resume from the latest one after a node failure.
#pragma once

#include <optional>
#include <string>

#include "posixfs/vfs.hpp"
#include "util/bytes.hpp"

namespace fanstore::core {

class CheckpointManager {
 public:
  /// Checkpoints are written to `dir` in `local` (the FanStore namespace)
  /// and mirrored to the same path in `shared` (may be null to disable
  /// mirroring — then resume only works on the writing node).
  CheckpointManager(posixfs::Vfs& local, posixfs::Vfs* shared, std::string dir);

  /// Persists `model` as checkpoint `epoch`; returns 0 or -errno.
  int save(int epoch, ByteView model);

  struct Checkpoint {
    int epoch = -1;
    Bytes model;
  };

  /// Loads the newest checkpoint, preferring the local namespace and
  /// falling back to the shared mirror (the §V-E recovery path).
  std::optional<Checkpoint> latest() const;

  /// Highest epoch visible (local or shared); -1 if none.
  int latest_epoch() const;

 private:
  std::string path_for(int epoch) const;
  int scan_latest(posixfs::Vfs& fs) const;

  posixfs::Vfs& local_;
  posixfs::Vfs* shared_;
  std::string dir_;
};

}  // namespace fanstore::core
