#include "dlsim/prefetcher.hpp"

namespace fanstore::dlsim {

Prefetcher::Prefetcher(posixfs::Vfs& fs, std::size_t threads)
    : fs_(fs), pool_(threads) {}

Prefetcher::Prefetcher(core::FanStoreFs& fs, std::size_t threads,
                       std::size_t fetch_threads)
    : fs_(fs),
      fanstore_(&fs),
      pool_(threads),
      fetch_pool_(std::make_unique<ThreadPool>(
          fetch_threads == 0 ? 1 : fetch_threads)) {}

void Prefetcher::warm(const std::string& path) {
  // open() pulls the file through (any remaining) fetch + decompress into
  // the cache; close() drops the pin but leaves the plain data cached.
  const int fd = fs_.open(path, posixfs::OpenMode::kRead);
  if (fd < 0) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  fs_.close(fd);
  warmed_.fetch_add(1, std::memory_order_relaxed);
}

void Prefetcher::prefetch(const std::vector<std::string>& paths) {
  for (const auto& path : paths) {
    if (fanstore_ != nullptr) {
      // Stage 1 (fetch pool): land the compressed bytes locally. Stage 2
      // (decompress pool) starts per file the moment its fetch finishes,
      // so later fetches overlap earlier decompressions.
      fetch_pool_->submit([this, path] {
        fanstore_->prefetch_compressed(path);
        pool_.submit([this, path] { warm(path); });
      });
    } else {
      pool_.submit([this, path] { warm(path); });
    }
  }
}

void Prefetcher::wait() {
  // Fetch stage first: once it idles, every decompress task is enqueued.
  if (fetch_pool_) fetch_pool_->wait_idle();
  pool_.wait_idle();
}

}  // namespace fanstore::dlsim
