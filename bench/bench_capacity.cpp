// The abstract's headline claim: "the same storage hardware can host
// 2-13x more data ... without significant runtime overhead".
//
// For each dataset: pick the highest-ratio codec whose predicted slowdown
// stays within 1% for a representative training profile, then report the
// capacity multiplier (dataset-level ratio, which exceeds the per-file
// ratio for tiny files because packing eliminates filesystem block waste —
// the paper's §VII-E2 observation: 6.5x dataset vs 2.6x per-file on the
// reactor data).
#include "bench/bench_util.hpp"
#include "dlsim/apps.hpp"
#include "dlsim/datagen.hpp"
#include "select/selection.hpp"
#include "simnet/models.hpp"

using namespace fanstore;

namespace {

constexpr std::size_t kFsBlock = 4096;  // local filesystem allocation unit

double block_padded(std::size_t bytes) {
  return static_cast<double>((bytes + kFsBlock - 1) / kFsBlock * kFsBlock);
}

}  // namespace

int main() {
  bench::section("Capacity multiplier per dataset (abstract: 2-13x)");
  const auto cluster = simnet::gtx_cluster();
  const auto read_path = simnet::fanstore_read_path(cluster);
  const std::vector<std::string> names = {"lzsse8", "lzf", "lz4hc", "zstd",
                                          "deflate", "bzip2", "brotli", "lzma"};

  bench::Table table({"dataset", "best feasible codec", "per-file ratio",
                      "dataset capacity gain", "pred. slowdown"});
  for (const auto& spec : dlsim::all_dataset_specs()) {
    std::vector<Bytes> samples;
    const int n = spec.kind == dlsim::DatasetKind::kTokamakNpz ? 64 : 4;
    for (int i = 0; i < n; ++i) {
      samples.push_back(dlsim::generate_file(spec.kind, static_cast<std::uint64_t>(i)));
    }
    const auto candidates = select::profile_candidates(samples, names);

    // Representative async training profile at this dataset's file size.
    select::AppProfile app;
    app.name = spec.name;
    app.async_io = true;
    app.t_iter_s = 0.5;
    app.c_batch_files = 64;
    app.s_batch_raw_mb = 64.0 * static_cast<double>(spec.file_bytes) / 1e6;
    const double t_file = read_path.file_read_time(spec.file_bytes);
    const select::IoProfile io{1.0 / t_file,
                               static_cast<double>(spec.file_bytes) / t_file / 1e6};
    const auto result = select::select_compressor(app, io, candidates, 1.0, 0.01);
    if (!result.best) {
      table.row({spec.name, "(none)", "-", "1.0x", "-"});
      continue;
    }
    // Dataset-level gain: raw files pay per-file block padding on the local
    // FS; the packed partition stream does not (§VII-E2).
    const auto* codec = compress::Registry::instance().by_name(result.best->name);
    std::size_t packed = 0;
    double padded_raw = 0;
    for (const auto& s : samples) {
      packed += codec->compress(as_view(s)).size();
      padded_raw += block_padded(s.size());
    }
    const double capacity_gain = padded_raw / static_cast<double>(packed);
    double slowdown = 0;
    for (const auto& e : result.evaluated) {
      if (e.stats.name == result.best->name) slowdown = e.slowdown;
    }
    table.row({spec.name, result.best->name, bench::fmt("%.1fx", result.best->ratio),
               bench::fmt("%.1fx", capacity_gain),
               bench::fmt("%.2f%%", slowdown * 100)});
  }
  table.print();
  std::printf(
      "\npaper: EM 2.3x (lzsse8), Tokamak 6.5x dataset-level (tiny files stop\n"
      "wasting FS blocks once concatenated), Lung up to 10.8x, ImageNet 1.0x\n"
      "(no gain possible) — the \"2-13x\" range of the abstract.\n");
  return 0;
}
