// Unit + property tests for the sharded-metadata building blocks
// (DESIGN.md §13): the consistent-hash ring, the CRDT membership view, and
// core::MetadataStore's ShardStore surface. The live multi-node scenarios
// are in membership_churn_test.cpp; this file proves the deterministic
// algebra those scenarios lean on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "cluster/membership.hpp"
#include "cluster/shard_store.hpp"
#include "core/metadata_store.hpp"
#include "util/rng.hpp"

namespace fanstore {
namespace {

using cluster::HashRing;
using cluster::MemberInfo;
using cluster::MembershipView;
using cluster::MemberState;
using cluster::VersionedStat;

constexpr std::uint32_t kShards = 64;

format::FileStat stat_of_size(std::uint64_t size, std::uint32_t owner = 0) {
  format::FileStat s;
  s.size = size;
  s.compressed_size = size;
  s.owner_rank = owner;
  return s;
}

// ---------------------------------------------------------------- HashRing

TEST(HashRingTest, OwnershipIsAPureFunctionOfMembersAndRf) {
  const std::vector<int> members = {4, 0, 2, 7, 5};
  std::vector<int> shuffled = {7, 5, 4, 2, 0, 4, 2};  // unsorted + dupes
  const HashRing a(members, 2);
  const HashRing b(members, 2);
  const HashRing c(shuffled, 2);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(a.shard_owners(s), b.shard_owners(s)) << s;
    EXPECT_EQ(a.shard_owners(s), c.shard_owners(s)) << s;
  }
}

TEST(HashRingTest, OwnersAreDistinctAndExactlyRf) {
  const HashRing ring({0, 1, 2, 3, 4}, 3);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    const auto owners = ring.shard_owners(s);
    ASSERT_EQ(owners.size(), 3u) << s;
    std::set<int> uniq(owners.begin(), owners.end());
    EXPECT_EQ(uniq.size(), owners.size()) << s;
    EXPECT_EQ(owners.front(), ring.primary(s)) << s;
    for (const int r : owners) EXPECT_TRUE(ring.is_owner(r, s)) << s;
  }
}

TEST(HashRingTest, RfClampsToMemberCount) {
  const HashRing ring({3, 9}, 5);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    const auto owners = ring.shard_owners(s);
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_NE(owners[0], owners[1]);
  }
}

TEST(HashRingTest, EmptyRingOwnsNothing) {
  const HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.shard_owners(0).empty());
  EXPECT_EQ(ring.primary(0), -1);
  EXPECT_FALSE(ring.is_owner(0, 0));
}

TEST(HashRingTest, AddingOneMemberMovesOnlyAFractionOfShards) {
  // The consistent-hashing promise: growing an 8-member ring to 9 must not
  // reshuffle the world. With naive mod-N placement ~8/9 of shards would
  // change primary; the ring keeps the moved fraction near 1/9. Assert a
  // loose ceiling so the test pins the property, not the constants.
  const std::vector<int> eight = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> nine = eight;
  nine.push_back(8);
  const HashRing before(eight, 2);
  const HashRing after(nine, 2);
  int moved = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    if (before.primary(s) != after.primary(s)) ++moved;
  }
  EXPECT_LT(moved, static_cast<int>(kShards) / 2);
  EXPECT_GT(moved, 0);  // the new member did pick up work
}

TEST(HashRingTest, PathOwnersGoThroughShardOf) {
  const HashRing ring({0, 1, 2}, 2);
  const std::string path = "ds/f17";
  const auto direct = ring.shard_owners(cluster::shard_of(path, kShards));
  EXPECT_EQ(ring.owners(path, kShards), direct);
}

// ------------------------------------------------------------- Membership

TEST(MembershipTest, HigherIncarnationWins) {
  MembershipView v;
  EXPECT_TRUE(v.apply(1, {2, MemberState::kDead}));
  // Stale lower incarnation cannot resurrect or re-kill.
  EXPECT_FALSE(v.apply(1, {1, MemberState::kJoined}));
  EXPECT_EQ(v.get(1).state, MemberState::kDead);
  // The refutation path: the node re-announces itself above the death.
  EXPECT_TRUE(v.apply(1, {3, MemberState::kJoined}));
  EXPECT_EQ(v.get(1).state, MemberState::kJoined);
}

TEST(MembershipTest, EqualIncarnationResolvesToMoreSevereState) {
  MembershipView v;
  v.apply(0, {5, MemberState::kJoined});
  EXPECT_TRUE(v.apply(0, {5, MemberState::kLeaving}));
  EXPECT_TRUE(v.apply(0, {5, MemberState::kDead}));
  EXPECT_FALSE(v.apply(0, {5, MemberState::kLeaving}));
  EXPECT_FALSE(v.apply(0, {5, MemberState::kJoined}));
  EXPECT_EQ(v.get(0).state, MemberState::kDead);
}

TEST(MembershipTest, RingMembersExcludesLeavingAndDead) {
  MembershipView v;
  v.apply(0, {1, MemberState::kJoined});
  v.apply(1, {1, MemberState::kLeaving});
  v.apply(2, {1, MemberState::kDead});
  v.apply(3, {1, MemberState::kJoined});
  EXPECT_EQ(v.ring_members(), (std::vector<int>{0, 3}));
  EXPECT_EQ(v.serving_members(), (std::vector<int>{0, 1, 3}));
}

TEST(MembershipTest, SerializeRoundtripsAndRejectsTruncation) {
  MembershipView v;
  v.apply(0, {1, MemberState::kJoined});
  v.apply(7, {4, MemberState::kLeaving});
  v.apply(3, {9, MemberState::kDead});
  const Bytes blob = v.serialize();
  EXPECT_EQ(MembershipView::deserialize(as_view(blob)), v);
  for (std::size_t cut = 1; cut < blob.size(); ++cut) {
    const ByteView truncated(blob.data(), blob.size() - cut);
    EXPECT_THROW(MembershipView::deserialize(truncated), std::invalid_argument)
        << "cut " << cut;
  }
}

TEST(MembershipTest, DigestMatchesEqualityRegardlessOfApplicationOrder) {
  std::vector<std::pair<int, MemberInfo>> events = {
      {0, {1, MemberState::kJoined}}, {1, {1, MemberState::kJoined}},
      {2, {1, MemberState::kJoined}}, {1, {2, MemberState::kDead}},
      {2, {1, MemberState::kLeaving}}, {1, {3, MemberState::kJoined}},
  };
  MembershipView forward;
  for (const auto& [rank, info] : events) forward.apply(rank, info);
  MembershipView backward;
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    backward.apply(it->first, it->second);
  }
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.digest(), backward.digest());

  MembershipView different = forward;
  different.apply(5, {1, MemberState::kJoined});
  EXPECT_NE(different.digest(), forward.digest());
}

// Satellite: 10 seeds x {3,5,8} ranks of random join/leave/kill/revive
// schedules. Every rank receives the same event set in its own random
// order; converged views must agree exactly, and ring ownership must be a
// pure function of (converged membership, replication_factor) — computed
// independently per rank with zero communication.
TEST(ClusterPropertyTest, RandomChurnSchedulesConvergeToIdenticalOwnership) {
  for (const int nranks : {3, 5, 8}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      SCOPED_TRACE("nranks " + std::to_string(nranks) + " seed " +
                   std::to_string(seed));
      Rng rng(seed * 1000003ull + static_cast<std::uint64_t>(nranks));

      // A random but causally consistent event history: per-rank
      // incarnations only move forward, kJoined re-announcements bump.
      std::vector<std::uint32_t> inc(static_cast<std::size_t>(nranks), 0);
      std::vector<std::pair<int, MemberInfo>> events;
      for (int r = 0; r < nranks; ++r) {
        inc[static_cast<std::size_t>(r)] = 1;
        events.push_back({r, {1, MemberState::kJoined}});
      }
      const int nevents = 6 + static_cast<int>(rng.next_below(10));
      for (int e = 0; e < nevents; ++e) {
        const int r = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(nranks)));
        auto& i = inc[static_cast<std::size_t>(r)];
        switch (rng.next_below(3)) {
          case 0:  // (re)join refutes whatever came before
            events.push_back({r, {++i, MemberState::kJoined}});
            break;
          case 1:  // graceful leave at the current incarnation
            events.push_back({r, {i, MemberState::kLeaving}});
            break;
          default:  // failure detector declares death
            events.push_back({r, {i, MemberState::kDead}});
            break;
        }
      }

      // Each rank applies the same events in its own shuffled order.
      const int rf = 1 + static_cast<int>(rng.next_below(3));
      std::vector<MembershipView> views(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        auto order = events;
        for (std::size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1], order[rng.next_below(i)]);
        }
        for (const auto& [rank, info] : order) {
          views[static_cast<std::size_t>(r)].apply(rank, info);
        }
      }

      for (int r = 1; r < nranks; ++r) {
        EXPECT_EQ(views[static_cast<std::size_t>(r)], views[0])
            << views[static_cast<std::size_t>(r)].debug_string() << " vs "
            << views[0].debug_string();
        EXPECT_EQ(views[static_cast<std::size_t>(r)].digest(),
                  views[0].digest());
      }

      // Ownership: every rank builds its ring locally; all agree, and
      // rebuilding from the same inputs reproduces it exactly.
      const HashRing reference(views[0].ring_members(), rf);
      for (int r = 0; r < nranks; ++r) {
        const HashRing ring(views[static_cast<std::size_t>(r)].ring_members(),
                            rf);
        for (std::uint32_t s = 0; s < kShards; ++s) {
          ASSERT_EQ(ring.shard_owners(s), reference.shard_owners(s))
              << "rank " << r << " shard " << s;
        }
      }
    }
  }
}

// ----------------------------------------------- MetadataStore as ShardStore

TEST(ShardStoreTest, ShardOfIsStableAndInRange) {
  for (int i = 0; i < 200; ++i) {
    const std::string p = "ds/f" + std::to_string(i);
    const std::uint32_t s = cluster::shard_of(p, kShards);
    EXPECT_LT(s, kShards);
    EXPECT_EQ(cluster::shard_of(p, kShards), s);
  }
  EXPECT_EQ(cluster::shard_of("anything", 0), 0u);
}

TEST(ShardStoreTest, EmptyShardDigestsZeroAndInsertionOrderDoesNotMatter) {
  core::MetadataStore a;
  core::MetadataStore b;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(a.shard_digest(s, kShards), 0u);
  }
  std::vector<std::string> paths;
  for (int i = 0; i < 40; ++i) paths.push_back("p/f" + std::to_string(i));
  for (const auto& p : paths) {
    a.insert_versioned(p, {stat_of_size(100), 1, 0});
  }
  std::reverse(paths.begin(), paths.end());
  for (const auto& p : paths) {
    b.insert_versioned(p, {stat_of_size(100), 1, 0});
  }
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(a.shard_digest(s, kShards), b.shard_digest(s, kShards)) << s;
  }
}

TEST(ShardStoreTest, DigestReflectsVersionAndContent) {
  core::MetadataStore a;
  a.insert_versioned("x", {stat_of_size(10), 1, 0});
  const std::uint32_t s = cluster::shard_of("x", kShards);
  const auto d1 = a.shard_digest(s, kShards);
  ASSERT_NE(d1, 0u);
  // A winning overwrite changes the digest; a losing one does not.
  EXPECT_TRUE(a.insert_versioned("x", {stat_of_size(11), 2, 0}));
  const auto d2 = a.shard_digest(s, kShards);
  EXPECT_NE(d2, d1);
  EXPECT_FALSE(a.insert_versioned("x", {stat_of_size(12), 1, 9}));
  EXPECT_EQ(a.shard_digest(s, kShards), d2);
}

TEST(ShardStoreTest, SerializeMergeRoundtripCountsOnlyWinners) {
  core::MetadataStore src;
  const std::uint32_t target = 5;
  std::vector<std::string> in_shard;
  for (int i = 0; in_shard.size() < 6; ++i) {
    const std::string p = "m/f" + std::to_string(i);
    if (cluster::shard_of(p, kShards) == target) {
      src.insert_versioned(p, {stat_of_size(10 + in_shard.size()), 2, 1});
      in_shard.push_back(p);
    }
  }
  const Bytes blob = src.serialize_shard(target, kShards);

  core::MetadataStore dst;
  // Pre-seed one path with a *newer* version: it must survive the merge.
  dst.insert_versioned(in_shard[0], {stat_of_size(999), 7, 2});
  EXPECT_EQ(dst.merge_shard(as_view(blob)), in_shard.size() - 1);
  EXPECT_EQ(dst.lookup_versioned(in_shard[0])->version, 7u);
  EXPECT_EQ(dst.lookup_versioned(in_shard[1])->version, 2u);
  // Idempotent: replaying the same blob applies nothing new.
  EXPECT_EQ(dst.merge_shard(as_view(blob)), 0u);
  EXPECT_EQ(dst.shard_paths(target, kShards).size(), in_shard.size());

  // Truncated blobs are rejected loudly, not half-applied silently.
  ASSERT_GT(blob.size(), 3u);
  const ByteView cut(blob.data(), blob.size() - 3);
  EXPECT_THROW((void)dst.merge_shard(cut), std::invalid_argument);
}

TEST(ShardStoreTest, DropShardKeepsLocalOwnerCopies) {
  core::MetadataStore store;
  std::string mine;
  std::string theirs;
  const std::uint32_t target = 9;
  for (int i = 0; mine.empty() || theirs.empty(); ++i) {
    const std::string p = "d/f" + std::to_string(i);
    if (cluster::shard_of(p, kShards) != target) continue;
    if (mine.empty()) {
      store.insert_versioned(p, {stat_of_size(1, /*owner=*/3), 1, 3});
      mine = p;
    } else {
      store.insert_versioned(p, {stat_of_size(2, /*owner=*/0), 1, 0});
      theirs = p;
    }
  }
  store.drop_shard(target, kShards, /*keep_owner_rank=*/3);
  EXPECT_TRUE(store.lookup_versioned(mine).has_value());
  EXPECT_FALSE(store.lookup_versioned(theirs).has_value());
  store.drop_shard(target, kShards, /*keep_owner_rank=*/-1);
  EXPECT_FALSE(store.lookup_versioned(mine).has_value());
  EXPECT_EQ(store.shard_digest(target, kShards), 0u);
}

TEST(ShardStoreTest, ClassicInsertIsVersionZeroAndDirsAreSynthesized) {
  core::MetadataStore store;
  store.insert("a/b/c", stat_of_size(42));
  const auto v = store.lookup_versioned("a/b/c");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->version, 0u);
  // Synthesized directories answer lookup_any but carry no version.
  EXPECT_FALSE(store.lookup_versioned("a/b").has_value());
  const auto dir = store.lookup_any("a/b");
  ASSERT_TRUE(dir.has_value());
  EXPECT_EQ(dir->type, format::FileType::kDirectory);
  EXPECT_TRUE(store.dir_exists_local("a"));
  EXPECT_EQ(store.list_local("a").size(), 1u);
}

}  // namespace
}  // namespace fanstore
