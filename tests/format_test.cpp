// Tests for the Table I partition format: stat record layout, writer/
// scanner round-trips, validation, and corruption rejection.
#include <gtest/gtest.h>

#include "compress/registry.hpp"
#include "format/partition.hpp"
#include "tests/test_data.hpp"
#include "util/crc32.hpp"

namespace fanstore::format {
namespace {

FileStat sample_stat() {
  FileStat s;
  s.size = 12345;
  s.compressed_size = 999;
  s.mode = 0600;
  s.type = FileType::kRegular;
  s.uid = 1001;
  s.gid = 2002;
  s.mtime_ns = 1234567890123ull;
  s.crc = 0xDEADBEEF;
  s.owner_rank = 7;
  s.partition_id = 3;
  s.partition_offset = 4096;
  return s;
}

TEST(FileStatTest, SerializesToExactly144Bytes) {
  // Table I specifies a 144-byte stat field.
  EXPECT_EQ(kStatBytes, 144u);
  std::uint8_t buf[kStatBytes + 8];
  std::fill(std::begin(buf), std::end(buf), 0xCC);
  sample_stat().serialize(buf);
  // Guard bytes after the record must be untouched.
  for (std::size_t i = kStatBytes; i < sizeof(buf); ++i) EXPECT_EQ(buf[i], 0xCC);
}

TEST(FileStatTest, RoundTripsAllFields) {
  std::uint8_t buf[kStatBytes];
  const FileStat s = sample_stat();
  s.serialize(buf);
  EXPECT_EQ(FileStat::deserialize(buf), s);
}

TEST(PartitionTest, WriteScanRoundTrip) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("lz4hc");
  PartitionWriter writer;
  std::vector<Bytes> raws;
  for (int i = 0; i < 5; ++i) {
    raws.push_back(testdata::text_like(1000 + static_cast<std::size_t>(i) * 333,
                                       static_cast<std::uint64_t>(i)));
    writer.add(make_record("dir/cate" + std::to_string(i) + "/file" + std::to_string(i),
                           *codec, reg.id_of(*codec), as_view(raws.back())));
  }
  EXPECT_EQ(writer.file_count(), 5u);
  const Bytes blob = writer.serialize();
  EXPECT_EQ(blob.size(), writer.byte_size());

  const auto views = scan_partition(as_view(blob));
  ASSERT_EQ(views.size(), 5u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i].path, "dir/cate" + std::to_string(i) + "/file" + std::to_string(i));
    EXPECT_EQ(views[i].compressor, reg.id_by_name("lz4hc"));
    EXPECT_EQ(views[i].stat.size, raws[i].size());
    EXPECT_EQ(extract_record(views[i]), raws[i]);
  }
}

TEST(PartitionTest, RecordLayoutMatchesTableOne) {
  // Header is 4 bytes (num_files); each record is 256 + 2 + 144 + 8 + data.
  const auto* store = compress::Registry::instance().by_name("store");
  PartitionWriter writer;
  const Bytes raw = testdata::random_bytes(100, 9);
  writer.add(make_record("f", *store, 0, as_view(raw)));
  const Bytes blob = writer.serialize();
  EXPECT_EQ(blob.size(), 4u + 256u + 2u + 144u + 8u + 100u);
  EXPECT_EQ(load_le<std::uint32_t>(blob.data()), 1u);
  EXPECT_EQ(blob[4], 'f');
  EXPECT_EQ(blob[5], 0);  // NUL padding after the path
}

TEST(PartitionTest, EmptyPartition) {
  PartitionWriter writer;
  const Bytes blob = writer.serialize();
  EXPECT_TRUE(scan_partition(as_view(blob)).empty());
}

TEST(PartitionTest, RejectsOverlongPath) {
  PartitionWriter writer;
  FileRecord r;
  r.path = std::string(256, 'x');
  EXPECT_THROW(writer.add(std::move(r)), std::invalid_argument);
}

TEST(PartitionTest, RejectsEmptyPath) {
  PartitionWriter writer;
  EXPECT_THROW(writer.add(FileRecord{}), std::invalid_argument);
}

TEST(PartitionTest, RejectsSizeMismatch) {
  PartitionWriter writer;
  FileRecord r;
  r.path = "a";
  r.data = {1, 2, 3};
  r.stat.compressed_size = 99;
  EXPECT_THROW(writer.add(std::move(r)), std::invalid_argument);
}

TEST(PartitionTest, ScanRejectsTruncation) {
  const auto* store = compress::Registry::instance().by_name("store");
  PartitionWriter writer;
  writer.add(make_record("file", *store, 0, as_view(testdata::random_bytes(500, 3))));
  Bytes blob = writer.serialize();
  for (const std::size_t cut : {3u, 100u, 420u}) {
    const ByteView truncated = as_view(blob).subspan(0, cut);
    EXPECT_THROW(scan_partition(truncated), PartitionFormatError) << "cut=" << cut;
  }
}

TEST(PartitionTest, ScanRejectsTrailingGarbage) {
  PartitionWriter writer;
  Bytes blob = writer.serialize();
  blob.push_back(0xFF);
  EXPECT_THROW(scan_partition(as_view(blob)), PartitionFormatError);
}

TEST(PartitionTest, ExtractDetectsCorruptPayload) {
  const auto& reg = compress::Registry::instance();
  const auto* codec = reg.by_name("deflate");
  PartitionWriter writer;
  const Bytes raw = testdata::text_like(5000, 17);
  writer.add(make_record("file", *codec, reg.id_of(*codec), as_view(raw)));
  Bytes blob = writer.serialize();
  // Flip one bit inside the compressed payload (after the 414-byte header).
  blob[blob.size() - 10] ^= 0x40;
  const auto views = scan_partition(as_view(blob));
  ASSERT_EQ(views.size(), 1u);
  EXPECT_THROW(
      {
        try {
          (void)extract_record(views[0]);
        } catch (const compress::CorruptDataError&) {
          throw PartitionFormatError("decoder detected");  // either error is fine
        }
      },
      PartitionFormatError);
}

TEST(PartitionTest, ExtractRejectsUnknownCompressor) {
  PartitionWriter writer;
  const auto* store = compress::Registry::instance().by_name("store");
  writer.add(make_record("file", *store, 0, as_view(testdata::random_bytes(10, 1))));
  Bytes blob = writer.serialize();
  store_le<std::uint16_t>(blob.data() + 4 + 256, 0xFFFF);  // bogus codec id
  const auto views = scan_partition(as_view(blob));
  EXPECT_THROW((void)extract_record(views[0]), PartitionFormatError);
}

TEST(PartitionTest, SelfLocatingOffsets) {
  const auto* store = compress::Registry::instance().by_name("store");
  PartitionWriter writer;
  writer.add(make_record("a", *store, 0, as_view(testdata::random_bytes(10, 1))));
  writer.add(make_record("b", *store, 0, as_view(testdata::random_bytes(20, 2))));
  const Bytes blob = writer.serialize();
  const auto views = scan_partition(as_view(blob));
  EXPECT_EQ(views[0].stat.partition_offset, 4u);
  EXPECT_EQ(views[1].stat.partition_offset, 4u + 256 + 2 + 144 + 8 + 10);
}

}  // namespace
}  // namespace fanstore::format
