// Stable 64-bit hashing for cross-rank data placement.
//
// std::hash gives no cross-implementation (or even cross-run, with
// libstdc++'s sip-hash variants) stability guarantee, so anything that two
// ranks must agree on — consistent-hash ring points, shard assignment,
// anti-entropy digests — hashes through these functions instead. FNV-1a is
// deliberately boring: the cluster layer needs agreement and spread, not
// adversarial collision resistance.
#pragma once

#include <cstdint>
#include <string_view>

namespace fanstore::util {

/// FNV-1a 64-bit over the bytes of `s`. Identical on every rank, build,
/// and platform — the property the placement layer actually relies on.
inline std::uint64_t stable_hash64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// splitmix64 finalizer: a cheap stateless bit mixer for combining already-
/// hashed values (ring vnode points, digest folding).
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace fanstore::util
