// The fixed 144-byte per-file stat record of the partition format (Table I).
//
// Mirrors the fields DL metadata traffic actually consumes (struct stat on
// Linux is 144 bytes — the paper stores it verbatim; we define an explicit,
// portable layout of the same size) plus FanStore's "extra fields" carrying
// locality information (§IV-C1).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace fanstore::format {

/// Serialized size of FileStat (matches the paper's Table I).
constexpr std::size_t kStatBytes = 144;

/// Maximum path length in a partition record (Table I: 256-byte field,
/// NUL-terminated, so 255 usable characters).
constexpr std::size_t kPathBytes = 256;

enum class FileType : std::uint32_t { kRegular = 0, kDirectory = 1 };

struct FileStat {
  std::uint64_t size = 0;             // uncompressed file size
  std::uint64_t compressed_size = 0;  // on-wire/storage size
  std::uint32_t mode = 0644;
  FileType type = FileType::kRegular;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t mtime_ns = 0;
  std::uint64_t atime_ns = 0;
  std::uint64_t ctime_ns = 0;
  std::uint32_t crc = 0;  // CRC-32 of the *uncompressed* contents

  // FanStore extra fields (§IV-C1): populated at load time, exchanged via
  // allgather so all metadata lookups stay node-local afterwards.
  std::uint32_t owner_rank = 0;        // rank whose backend holds the data
  std::uint32_t partition_id = 0;      // which partition carries the file
  std::uint64_t partition_offset = 0;  // byte offset of the record

  /// Serializes to exactly kStatBytes at out[pos..pos+144).
  void serialize(std::uint8_t* out) const;

  /// Parses a 144-byte record.
  static FileStat deserialize(const std::uint8_t* in);

  bool operator==(const FileStat&) const = default;
};

}  // namespace fanstore::format
