file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tfrecord.dir/bench_fig6_tfrecord.cpp.o"
  "CMakeFiles/bench_fig6_tfrecord.dir/bench_fig6_tfrecord.cpp.o.d"
  "bench_fig6_tfrecord"
  "bench_fig6_tfrecord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tfrecord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
