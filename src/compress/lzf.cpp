// LZF-like byte-oriented LZ with an 8 KiB window and single-probe hashing.
//
// Stream grammar (ctrl = first byte of each token):
//   ctrl < 0x20          : literal run of (ctrl + 1) bytes follows (1..32)
//   ctrl >= 0x20         : match; len7 = ctrl >> 5, off_hi = ctrl & 0x1F
//                          len7 == 7 adds an extension byte; then off_lo.
//                          length = len7 + 2 (+ext), distance = off + 1.
#include <cstring>
#include <vector>

#include "compress/codecs.hpp"
#include "compress/lz_common.hpp"

namespace fanstore::compress {
namespace {

constexpr std::size_t kWindow = 8192;      // max distance (offset field is 13 bits)
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 2 + 7 + 255;  // 264

class LzfCompressor final : public Compressor {
 public:
  explicit LzfCompressor(int level) : level_(level), hash_bits_(11 + 2 * level) {}

  std::string name() const override { return "lzf-" + std::to_string(level_); }

  Bytes compress(ByteView src) const override {
    Bytes out;
    out.reserve(src.size() / 2 + 16);
    const std::size_t n = src.size();
    std::vector<std::uint32_t> table(std::size_t{1} << hash_bits_, 0xFFFFFFFFu);
    std::size_t lit_start = 0;
    std::size_t i = 0;
    auto flush_literals = [&](std::size_t end) {
      std::size_t s = lit_start;
      while (s < end) {
        const std::size_t len = std::min<std::size_t>(32, end - s);
        out.push_back(static_cast<std::uint8_t>(len - 1));
        out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(s),
                   src.begin() + static_cast<std::ptrdiff_t>(s + len));
        s += len;
      }
      lit_start = end;
    };
    while (i + kMinMatch <= n) {
      const std::uint32_t h = hash3(src.data() + i, hash_bits_);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(i);
      if (cand != 0xFFFFFFFFu && i - cand <= kWindow && i > cand) {
        const std::size_t len = match_length(
            src.data() + i, src.data() + cand,
            src.data() + std::min(n, i + kMaxMatch));
        if (len >= kMinMatch) {
          flush_literals(i);
          const std::size_t off = i - cand - 1;
          std::size_t len7 = len - 2;
          if (len7 >= 7) {
            out.push_back(static_cast<std::uint8_t>((7u << 5) | (off >> 8)));
            out.push_back(static_cast<std::uint8_t>(len7 - 7));
          } else {
            out.push_back(static_cast<std::uint8_t>((len7 << 5) | (off >> 8)));
          }
          out.push_back(static_cast<std::uint8_t>(off & 0xFF));
          i += len;
          lit_start = i;
          continue;
        }
      }
      ++i;
    }
    flush_literals(n);
    return out;
  }

  Bytes decompress(ByteView src, std::size_t original_size) const override {
    // Over-allocated by kCopySlack so copy_match can use wide strides.
    Bytes out(original_size + kCopySlack);
    std::size_t o = 0;
    std::size_t i = 0;
    while (o < original_size) {
      if (i >= src.size()) throw CorruptDataError("lzf: truncated stream");
      const std::uint8_t ctrl = src[i++];
      if (ctrl < 0x20) {
        const std::size_t len = std::size_t{ctrl} + 1;
        if (i + len > src.size()) throw CorruptDataError("lzf: truncated literals");
        if (o + len > original_size) throw CorruptDataError("lzf: overlong output");
        std::memcpy(out.data() + o, src.data() + i, len);
        o += len;
        i += len;
      } else {
        std::size_t len = std::size_t{ctrl} >> 5;
        std::size_t off = (std::size_t{ctrl} & 0x1F) << 8;
        if (len == 7) {
          if (i >= src.size()) throw CorruptDataError("lzf: truncated length ext");
          len += src[i++];
        }
        len += 2;
        if (i >= src.size()) throw CorruptDataError("lzf: truncated offset");
        off = (off | src[i++]) + 1;
        if (off > o) throw CorruptDataError("lzf: offset before start");
        if (o + len > original_size) throw CorruptDataError("lzf: overlong output");
        copy_match(out.data() + o, off, len);
        o += len;
      }
    }
    out.resize(original_size);
    return out;
  }

 private:
  int level_;
  int hash_bits_;
};

}  // namespace

std::unique_ptr<Compressor> make_lzf(int level) {
  return std::make_unique<LzfCompressor>(level);
}

}  // namespace fanstore::compress
