// Injectable monotonic time for deterministic subsystems.
//
// The determinism contract (DESIGN.md §8/§9, fanstore-lint rule
// `determinism`) forbids simnet/, fault/, mpi/ and core/ from consulting
// wall clocks or ambient randomness directly: a seeded fault schedule must
// replay identically, and replay drift almost always enters through an
// ambient steady_clock::now() buried in a timeout path. Subsystems that
// need "now" or a timed wait take a TimeSource instead; production wires
// TimeSource::real() — the one blessed wall-clock implementation, which
// lives in util/ where the lint rule does not apply — and tests wire a
// ManualTimeSource they advance explicitly, so delayed-delivery and
// timeout behaviour becomes a deterministic function of the test script.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/sync.hpp"

namespace fanstore::util {

/// Nanoseconds on a TimeSource's monotonic timeline. Values are only
/// comparable against the same source; 0 is the source's epoch.
using TimeNs = std::int64_t;

inline constexpr TimeNs ms_to_ns(std::int64_t ms) { return ms * 1'000'000; }

class TimeSource {
 public:
  virtual ~TimeSource() = default;

  virtual TimeNs now_ns() const = 0;

  /// Atomically releases `mu`, blocks until notified or until now_ns()
  /// reaches `deadline`, then re-acquires `mu` before returning. May wake
  /// spuriously or early; callers loop on their own predicate + deadline.
  virtual void wait_until(sync::AnnotatedCondVar& cv, sync::Mutex& mu,
                          TimeNs deadline) REQUIRES(mu) = 0;

  /// The process wall clock (monotonic). Singleton; never destroyed.
  static TimeSource& real();
};

/// Test clock: now_ns() moves only when advance_ns() is called. Timed
/// waits poll in short real-time slices so a concurrent advance (or a
/// notify) is observed promptly without the source having to know every
/// condvar that might be waiting on it.
class ManualTimeSource final : public TimeSource {
 public:
  TimeNs now_ns() const override { return ns_.load(std::memory_order_acquire); }

  void wait_until(sync::AnnotatedCondVar& cv, sync::Mutex& mu,
                  TimeNs deadline) override;

  void advance_ns(TimeNs d) {
    if (d > 0) ns_.fetch_add(d, std::memory_order_acq_rel);
  }
  void advance_ms(std::int64_t ms) { advance_ns(ms_to_ns(ms)); }

 private:
  std::atomic<TimeNs> ns_{0};
};

}  // namespace fanstore::util
