// Differential + property tests for the suffix-array constructions that
// back the BWT stage: SA-IS (linear, production) vs prefix doubling
// (reference) vs a brute-force oracle on small inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "compress/suffix_array.hpp"
#include "tests/test_data.hpp"

namespace fanstore::compress {
namespace {

std::vector<std::uint32_t> brute_force(ByteView s) {
  std::vector<std::uint32_t> sa(s.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::lexicographical_compare(s.begin() + a, s.end(), s.begin() + b,
                                        s.end());
  });
  return sa;
}

TEST(SuffixArrayTest, MatchesBruteForceOnClassicStrings) {
  for (const char* str : {"banana", "mississippi", "abracadabra", "aaaaaa",
                          "abcabcabc", "a", "ab", "ba", "zyxwv"}) {
    const Bytes s = to_bytes(str);
    const auto expected = brute_force(as_view(s));
    EXPECT_EQ(suffix_array_sais(as_view(s)), expected) << str;
    EXPECT_EQ(suffix_array_doubling(as_view(s)), expected) << str;
  }
}

TEST(SuffixArrayTest, EmptyInput) {
  EXPECT_TRUE(suffix_array_sais(ByteView{}).empty());
  EXPECT_TRUE(suffix_array_doubling(ByteView{}).empty());
}

TEST(SuffixArrayTest, SaisMatchesDoublingOnRandomData) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Bytes s = testdata::random_bytes(2000 + seed * 777, seed);
    EXPECT_EQ(suffix_array_sais(as_view(s)), suffix_array_doubling(as_view(s)))
        << "seed " << seed;
  }
}

TEST(SuffixArrayTest, SaisMatchesDoublingOnStructuredData) {
  const std::vector<Bytes> inputs = {
      testdata::text_like(5000, 1),
      testdata::low_entropy(5000, 2),
      testdata::runs_and_noise(5000, 3),
      Bytes(3000, 0x41),                      // all-same worst case
      testdata::gradient_floats(4096, 4),
  };
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(suffix_array_sais(as_view(inputs[i])),
              suffix_array_doubling(as_view(inputs[i])))
        << "input " << i;
  }
}

TEST(SuffixArrayTest, OutputIsAPermutationInSortedOrder) {
  const Bytes s = testdata::text_like(30000, 9);
  const auto sa = suffix_array_sais(as_view(s));
  ASSERT_EQ(sa.size(), s.size());
  std::vector<bool> seen(s.size(), false);
  for (const auto i : sa) {
    ASSERT_LT(i, s.size());
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
  }
  const ByteView v = as_view(s);
  for (std::size_t k = 1; k < sa.size(); ++k) {
    ASSERT_TRUE(std::lexicographical_compare(v.begin() + sa[k - 1], v.end(),
                                             v.begin() + sa[k], v.end()))
        << "order violated at rank " << k;
  }
}

}  // namespace
}  // namespace fanstore::compress
