// Deterministic pseudo-random number generation (splitmix64 + xoshiro256**).
//
// Every workload generator and simulator in this repository takes an explicit
// seed so that experiments are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace fanstore {

/// splitmix64 — used to seed xoshiro and for cheap hash mixing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDF00Dull) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Approximately normal(0,1) via sum of uniforms (Irwin-Hall, 12 terms).
  double next_gaussian() {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += next_double();
    return s - 6.0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace fanstore
