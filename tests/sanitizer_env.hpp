// Compile-time detection of sanitizer instrumentation, for tests whose
// assertions depend on wall-clock performance. ASan/TSan slow codec inner
// loops 5-20x and skew *relative* timings too (instrumentation cost scales
// with memory-access density, not work), so throughput floors and speed-ratio
// assertions hold only in uninstrumented builds. Correctness assertions must
// NOT be gated on this: running them under sanitizers is the whole point of
// the FANSTORE_SANITIZE build matrix.
#pragma once

#ifndef FANSTORE_TESTS_TSAN
#if defined(__SANITIZE_THREAD__)
#define FANSTORE_TESTS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FANSTORE_TESTS_TSAN 1
#endif
#endif
#endif
#ifndef FANSTORE_TESTS_TSAN
#define FANSTORE_TESTS_TSAN 0
#endif

#ifndef FANSTORE_TESTS_ASAN
#if defined(__SANITIZE_ADDRESS__)
#define FANSTORE_TESTS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FANSTORE_TESTS_ASAN 1
#endif
#endif
#endif
#ifndef FANSTORE_TESTS_ASAN
#define FANSTORE_TESTS_ASAN 0
#endif

namespace fanstore::testsupport {

inline constexpr bool kUnderTsan = FANSTORE_TESTS_TSAN != 0;
inline constexpr bool kUnderSanitizer =
    FANSTORE_TESTS_TSAN != 0 || FANSTORE_TESTS_ASAN != 0;

}  // namespace fanstore::testsupport
