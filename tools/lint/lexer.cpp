#include "token.hpp"

#include <cctype>
#include <cstdlib>

namespace fanstore::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Two-character punctuators the rules care about (adjacency checks like
// `::`, `->`, `==`). Everything else lexes as single characters.
bool two_char_punct(char a, char b) {
  switch (a) {
    case ':': return b == ':';
    case '-': return b == '>' || b == '-' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=' || b == '>';
    case '&': return b == '&' || b == '=';
    case '|': return b == '|' || b == '=';
    case '+': return b == '+' || b == '=';
    case '*': return b == '=';
    case '/': return b == '=';
    default: return false;
  }
}

struct Cursor {
  const std::string& src;
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  bool done() const { return i >= src.size(); }
  char peek(std::size_t ahead = 0) const {
    return i + ahead < src.size() ? src[i + ahead] : '\0';
  }
  void advance() {
    if (done()) return;
    if (src[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  }
};

}  // namespace

std::string string_value(const Token& t) {
  const std::string& s = t.text;
  std::size_t b = s.find('"');
  if (b == std::string::npos) return {};
  // Raw string: prefix ends with R, body is "delim( ... )delim".
  const bool raw = b > 0 && s[b - 1] == 'R';
  if (raw) {
    const std::size_t paren = s.find('(', b);
    if (paren == std::string::npos) return {};
    const std::size_t delim_len = paren - b - 1;
    const std::size_t body = paren + 1;
    const std::size_t end = s.size() - 2 - delim_len;  // before )delim"
    return end >= body ? s.substr(body, end - body) : std::string{};
  }
  const std::size_t e = s.rfind('"');
  return e > b ? s.substr(b + 1, e - b - 1) : std::string{};
}

bool number_value(const Token& t, long long* out) {
  std::string digits;
  digits.reserve(t.text.size());
  for (char c : t.text) {
    if (c == '\'') continue;
    if (c == '.' || c == 'p' || c == 'P') return false;  // floating
    digits.push_back(c);
  }
  // Strip integer suffixes (u, l, z combinations).
  while (!digits.empty()) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(digits.back())));
    if (c == 'u' || c == 'l' || c == 'z') {
      digits.pop_back();
    } else {
      break;
    }
  }
  if (digits.empty()) return false;
  // "1e9" is floating unless hex (where e is a digit).
  const bool hex =
      digits.size() > 1 && digits[0] == '0' && (digits[1] == 'x' || digits[1] == 'X');
  if (!hex && digits.find_first_of("eE") != std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(digits.c_str(), &end, 0);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  Cursor c{source};
  bool in_preproc = false;
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto push = [&](Tok kind, std::string text, int line, int col) {
    out.push_back(Token{kind, std::move(text), line, col, in_preproc});
  };

  while (!c.done()) {
    const char ch = c.peek();
    // Whitespace / line structure.
    if (ch == '\n') {
      in_preproc = in_preproc && c.i > 0 && source[c.i - 1] == '\\';
      at_line_start = true;
      c.advance();
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f') {
      c.advance();
      continue;
    }
    const int line = c.line;
    const int col = c.col;
    if (ch == '#' && at_line_start) {
      in_preproc = true;
      at_line_start = false;
      push(Tok::kPunct, "#", line, col);
      c.advance();
      continue;
    }
    at_line_start = false;

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      std::string text;
      while (!c.done() && c.peek() != '\n') {
        text.push_back(c.peek());
        c.advance();
      }
      push(Tok::kComment, std::move(text), line, col);
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      std::string text;
      text += "/*";
      c.advance();
      c.advance();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) {
        text.push_back(c.peek());
        c.advance();
      }
      if (!c.done()) {
        text += "*/";
        c.advance();
        c.advance();
      }
      push(Tok::kComment, std::move(text), line, col);
      continue;
    }

    // Identifiers — possibly a string-literal encoding prefix.
    if (ident_start(ch)) {
      std::string text;
      while (!c.done() && ident_char(c.peek())) {
        text.push_back(c.peek());
        c.advance();
      }
      const bool str_prefix = !c.done() && c.peek() == '"' &&
                              (text == "R" || text == "u8R" || text == "uR" ||
                               text == "UR" || text == "LR" || text == "u8" ||
                               text == "u" || text == "U" || text == "L");
      const bool chr_prefix = !c.done() && c.peek() == '\'' &&
                              (text == "u8" || text == "u" || text == "U" ||
                               text == "L");
      if (!str_prefix && !chr_prefix) {
        push(Tok::kIdent, std::move(text), line, col);
        continue;
      }
      if (chr_prefix || text.back() != 'R') {
        // Encoded (non-raw) string/char literal: fall through to the quote
        // scanner below with the prefix attached.
        const char quote = c.peek();
        text.push_back(quote);
        c.advance();
        while (!c.done() && c.peek() != quote) {
          if (c.peek() == '\\') {
            text.push_back(c.peek());
            c.advance();
            if (c.done()) break;
          }
          text.push_back(c.peek());
          c.advance();
        }
        if (!c.done()) {
          text.push_back(quote);
          c.advance();
        }
        push(quote == '"' ? Tok::kString : Tok::kChar, std::move(text), line, col);
        continue;
      }
      // Raw string literal: R"delim( ... )delim".
      text.push_back('"');
      c.advance();
      std::string delim;
      while (!c.done() && c.peek() != '(') {
        delim.push_back(c.peek());
        text.push_back(c.peek());
        c.advance();
      }
      if (!c.done()) {
        text.push_back('(');
        c.advance();
      }
      const std::string close = ")" + delim + "\"";
      while (!c.done()) {
        if (c.peek() == ')' && source.compare(c.i, close.size(), close) == 0) {
          for (std::size_t k = 0; k < close.size(); ++k) {
            text.push_back(c.peek());
            c.advance();
          }
          break;
        }
        text.push_back(c.peek());
        c.advance();
      }
      push(Tok::kString, std::move(text), line, col);
      continue;
    }

    // Plain string / char literals.
    if (ch == '"' || ch == '\'') {
      std::string text;
      text.push_back(ch);
      c.advance();
      while (!c.done() && c.peek() != ch) {
        if (c.peek() == '\\') {
          text.push_back(c.peek());
          c.advance();
          if (c.done()) break;
        }
        text.push_back(c.peek());
        c.advance();
      }
      if (!c.done()) {
        text.push_back(ch);
        c.advance();
      }
      push(ch == '"' ? Tok::kString : Tok::kChar, std::move(text), line, col);
      continue;
    }

    // Numbers (pp-number: digits, letters, ', and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(ch)) ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      std::string text;
      while (!c.done()) {
        const char d = c.peek();
        if (ident_char(d) || d == '.' || d == '\'') {
          text.push_back(d);
          c.advance();
          continue;
        }
        if ((d == '+' || d == '-') && !text.empty()) {
          const char prev = static_cast<char>(
              std::tolower(static_cast<unsigned char>(text.back())));
          if (prev == 'e' || prev == 'p') {
            text.push_back(d);
            c.advance();
            continue;
          }
        }
        break;
      }
      push(Tok::kNumber, std::move(text), line, col);
      continue;
    }

    // Punctuation.
    std::string text(1, ch);
    if (two_char_punct(ch, c.peek(1))) {
      text.push_back(c.peek(1));
      c.advance();
    }
    c.advance();
    push(Tok::kPunct, std::move(text), line, col);
  }
  out.push_back(Token{Tok::kEof, "", c.line, c.col, false});
  return out;
}

}  // namespace fanstore::lint
