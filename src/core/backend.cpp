#include "core/backend.hpp"

#include "fault/injector.hpp"

namespace fanstore::core {

void RamBackend::put(const std::string& path, Blob blob) {
  sync::MutexLock lk(mu_);
  const auto it = blobs_.find(path);
  if (it != blobs_.end()) bytes_ -= it->second.data.size();
  bytes_ += blob.data.size();
  blobs_[path] = std::move(blob);
}

std::optional<Blob> RamBackend::get(const std::string& path) const {
  sync::MutexLock lk(mu_);
  const auto it = blobs_.find(path);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

bool RamBackend::contains(const std::string& path) const {
  sync::MutexLock lk(mu_);
  return blobs_.count(path) > 0;
}

std::size_t RamBackend::bytes_used() const {
  sync::MutexLock lk(mu_);
  return bytes_;
}

std::size_t RamBackend::object_count() const {
  sync::MutexLock lk(mu_);
  return blobs_.size();
}

void PeerDirectory::add(int rank, const CompressedBackend* backend) {
  sync::MutexLock lk(mu_);
  peers_[rank] = backend;
}

void PeerDirectory::remove(int rank) {
  sync::MutexLock lk(mu_);
  peers_.erase(rank);
}

const CompressedBackend* PeerDirectory::find(int rank) const {
  sync::MutexLock lk(mu_);
  const auto it = peers_.find(rank);
  return it == peers_.end() ? nullptr : it->second;
}

VfsBackend::VfsBackend(posixfs::Vfs* local_fs, std::string root)
    : fs_(local_fs), root_(std::move(root)) {}

std::string VfsBackend::object_path(const std::string& path) const {
  return root_ + "/" + path;
}

void VfsBackend::put(const std::string& path, Blob blob) {
  Bytes payload;
  payload.reserve(blob.data.size() + 2);
  append_le<std::uint16_t>(payload, blob.compressor);
  payload.insert(payload.end(), blob.data.begin(), blob.data.end());
  const int rc = posixfs::write_file(*fs_, object_path(path), as_view(payload));
  if (rc != 0) {
    throw std::runtime_error("VfsBackend: write failed for " + path +
                             " rc=" + std::to_string(rc));
  }
  sync::MutexLock lk(mu_);
  auto [it, inserted] = known_.try_emplace(path, true);
  if (inserted) {
    ++count_;
  }
  bytes_ += blob.data.size();  // approximation: overwrites are rare (write-once)
}

std::optional<Blob> VfsBackend::get(const std::string& path) const {
  const auto payload = posixfs::read_file(*fs_, object_path(path));
  if (!payload || payload->size() < 2) return std::nullopt;
  Blob b;
  b.compressor = load_le<std::uint16_t>(payload->data());
  b.data.assign(payload->begin() + 2, payload->end());
  return b;
}

bool VfsBackend::contains(const std::string& path) const {
  {
    sync::MutexLock lk(mu_);
    if (known_.count(path) > 0) return true;
  }
  format::FileStat st;
  return fs_->stat(object_path(path), &st) == 0;
}

std::size_t VfsBackend::bytes_used() const {
  sync::MutexLock lk(mu_);
  return bytes_;
}

std::size_t VfsBackend::object_count() const {
  sync::MutexLock lk(mu_);
  return count_;
}

FaultInjectedBackend::FaultInjectedBackend(
    std::unique_ptr<CompressedBackend> inner, int rank,
    fault::FaultInjector* injector)
    : inner_(std::move(inner)), rank_(rank), injector_(injector) {}

void FaultInjectedBackend::put(const std::string& path, Blob blob) {
  inner_->put(path, std::move(blob));
}

std::optional<Blob> FaultInjectedBackend::get(const std::string& path) const {
  switch (injector_->backend_get_action(rank_, path)) {
    case fault::BackendAction::kFail:
      return std::nullopt;  // read error: the object is unreachable
    case fault::BackendAction::kCorrupt: {
      std::optional<Blob> blob = inner_->get(path);
      if (blob) injector_->corrupt(blob->data);
      return blob;  // torn object: crc layers above must catch it
    }
    case fault::BackendAction::kNone:
      break;
  }
  return inner_->get(path);
}

bool FaultInjectedBackend::contains(const std::string& path) const {
  return inner_->contains(path);
}

std::size_t FaultInjectedBackend::bytes_used() const {
  return inner_->bytes_used();
}

std::size_t FaultInjectedBackend::object_count() const {
  return inner_->object_count();
}

}  // namespace fanstore::core
