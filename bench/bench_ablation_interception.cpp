// Ablation: function-interception overhead (google-benchmark).
//
// Table III attributes FanStore's near-raw-device speed to user-space
// interception bypassing kernel paths. Here: the cost of the dispatch
// layer itself (Interceptor route + fd indirection) and of the full
// FanStore cached read path, per open/read/close cycle.
#include <benchmark/benchmark.h>

#include "core/instance.hpp"
#include "posixfs/interceptor.hpp"
#include "posixfs/mem_vfs.hpp"

using namespace fanstore;

namespace {

constexpr std::size_t kFileBytes = 4096;

void read_cycle(posixfs::Vfs& fs, const char* path, Bytes& buf) {
  const int fd = fs.open(path, posixfs::OpenMode::kRead);
  while (fs.read(fd, MutByteView{buf.data(), buf.size()}) > 0) {
  }
  fs.close(fd);
}

void BM_MemVfsDirect(benchmark::State& state) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "f", as_view(Bytes(kFileBytes, 7)));
  Bytes buf(kFileBytes);
  for (auto _ : state) read_cycle(fs, "f", buf);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * kFileBytes));
}
BENCHMARK(BM_MemVfsDirect);

void BM_ThroughInterceptor(benchmark::State& state) {
  posixfs::MemVfs fs;
  posixfs::write_file(fs, "f", as_view(Bytes(kFileBytes, 7)));
  posixfs::Interceptor shim;
  shim.mount("mnt", &fs);
  Bytes buf(kFileBytes);
  for (auto _ : state) read_cycle(shim, "mnt/f", buf);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * kFileBytes));
}
BENCHMARK(BM_ThroughInterceptor);

void BM_FanStoreCachedRead(benchmark::State& state) {
  mpi::World world(1);
  mpi::Comm comm = world.comm(0);
  core::MetadataStore meta;
  core::RamBackend backend;
  core::FanStoreFs fs(comm, &meta, &backend, {});
  backend.put("f", core::Blob{0, Bytes(kFileBytes, 7)});
  format::FileStat st;
  st.size = kFileBytes;
  meta.insert("f", st);
  Bytes buf(kFileBytes);
  read_cycle(fs, "f", buf);  // populate the cache
  for (auto _ : state) read_cycle(fs, "f", buf);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * kFileBytes));
}
BENCHMARK(BM_FanStoreCachedRead);

void BM_MetadataStat(benchmark::State& state) {
  mpi::World world(1);
  mpi::Comm comm = world.comm(0);
  core::MetadataStore meta;
  core::RamBackend backend;
  core::FanStoreFs fs(comm, &meta, &backend, {});
  for (int i = 0; i < 10000; ++i) {
    format::FileStat st;
    st.size = 1;
    meta.insert("d" + std::to_string(i % 100) + "/f" + std::to_string(i), st);
  }
  format::FileStat out;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fs.stat("d" + std::to_string(i % 100) + "/f" + std::to_string(i % 10000), &out));
    ++i;
  }
}
BENCHMARK(BM_MetadataStat);

}  // namespace

BENCHMARK_MAIN();
