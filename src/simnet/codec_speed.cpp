#include "simnet/codec_speed.hpp"

#include <stdexcept>

#include "compress/registry.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace fanstore::simnet {

namespace {

// Representative sample: a blend of text-like redundancy, runs, and noise,
// so both LZ matchers and entropy coders have realistic work to do.
Bytes calibration_sample() {
  constexpr std::size_t kSize = 256 * 1024;
  Rng rng(0xCA11B);
  Bytes b;
  b.reserve(kSize + 256);
  static const char* words[] = {"tensor ", "batch ", "iter ", "epoch ", "data "};
  while (b.size() < kSize) {
    switch (rng.next_below(3)) {
      case 0: {
        const char* w = words[rng.next_below(5)];
        while (*w != '\0') b.push_back(static_cast<std::uint8_t>(*w++));
        break;
      }
      case 1:
        b.insert(b.end(), 8 + rng.next_below(60),
                 static_cast<std::uint8_t>(rng.next_u64()));
        break;
      default:
        for (int k = 0; k < 16; ++k) b.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
  }
  b.resize(kSize);
  return b;
}

}  // namespace

CodecSpeedTable& CodecSpeedTable::shared() {
  static CodecSpeedTable table;
  return table;
}

CodecSpeedTable::Speeds CodecSpeedTable::calibrate(compress::CompressorId id) {
  const compress::Compressor* codec = compress::Registry::instance().by_id(id);
  if (codec == nullptr) {
    throw std::invalid_argument("CodecSpeedTable: unknown compressor id " +
                                std::to_string(id));
  }
  static const Bytes sample = calibration_sample();
  Speeds s;
  {
    WallTimer t;
    Bytes packed = codec->compress(as_view(sample));
    s.compress_bps = static_cast<double>(sample.size()) / std::max(1e-9, t.elapsed_sec());
    // Best-of-3 decompression (first pass warms caches).
    double best = 1e99;
    for (int i = 0; i < 3; ++i) {
      WallTimer dt;
      const Bytes out = codec->decompress(as_view(packed), sample.size());
      best = std::min(best, std::max(1e-9, dt.elapsed_sec()));
      if (out.size() != sample.size()) {
        throw std::logic_error("CodecSpeedTable: bad round-trip during calibration");
      }
    }
    s.decompress_bps = static_cast<double>(sample.size()) / best;
  }
  return s;
}

CodecSpeedTable::Speeds CodecSpeedTable::entry(compress::CompressorId id) {
  {
    sync::MutexLock lk(mu_);
    const auto it = speeds_.find(id);
    if (it != speeds_.end()) return it->second;
  }
  const Speeds s = calibrate(id);  // slow path outside the lock
  sync::MutexLock lk(mu_);
  return speeds_.try_emplace(id, s).first->second;
}

double CodecSpeedTable::decompress_bps(compress::CompressorId id) {
  return entry(id).decompress_bps;
}

double CodecSpeedTable::compress_bps(compress::CompressorId id) {
  return entry(id).compress_bps;
}

void CodecSpeedTable::set_decompress_bps(compress::CompressorId id, double bps) {
  sync::MutexLock lk(mu_);
  speeds_[id].decompress_bps = bps;
}

}  // namespace fanstore::simnet
