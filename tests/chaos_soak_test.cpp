// Multi-epoch chaos soak for the full stack (DESIGN.md §8): a 3-rank
// data-parallel training loop runs over a seed-derived chaos fabric
// (loss + delay + duplication + corruption, a straggler rank, and one
// daemon that dies after a few fetches). The soak asserts the two
// end-to-end guarantees the fault model promises:
//
//   1. every epoch observes the full dataset exactly once across ranks
//      (global-shuffle coverage is unaffected by retries/failover), and
//   2. every byte read matches the source data (loss becomes latency,
//      never corruption).
//
// The fault schedule is fully determined by FANSTORE_FAULT_SEED; the test
// prints its seed so any failure replays with:
//
//   FANSTORE_FAULT_SEED=<seed> ./chaos_soak_test
#include <gtest/gtest.h>

#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "dlsim/trainer.hpp"
#include "fault/injector.hpp"
#include "posixfs/mem_vfs.hpp"
#include "prep/prepare.hpp"
#include "simnet/virtual_clock.hpp"
#include "tests/sanitizer_env.hpp"
#include "tests/test_data.hpp"

namespace fanstore {
namespace {

constexpr int kRanks = 3;
constexpr int kFiles = 24;
constexpr int kEpochs = 3;
constexpr std::size_t kBatchPerRank = 2;  // 24 / (3 * 2) = 4 iters/epoch

Bytes file_content(int i) { return testdata::runs_and_noise(4000, 900 + i); }

TEST(ChaosSoakTest, SeededTrainingSoakSeesEveryFileOncePerEpoch) {
  const std::uint64_t seed = fault::fault_seed_from_env(0x50AC5EEDull);
  std::printf("[chaos_soak] FANSTORE_FAULT_SEED=%llu  (export to replay)\n",
              static_cast<unsigned long long>(seed));
  RecordProperty("fault_seed", std::to_string(seed));

  // Dataset on the shared FS, prepped into 8 lz4 partitions distributed
  // round-robin over the 3 ranks.
  posixfs::MemVfs shared;
  {
    posixfs::MemVfs src;
    for (int i = 0; i < kFiles; ++i) {
      posixfs::write_file(src, "ds/f" + std::to_string(i), as_view(file_content(i)));
    }
    prep::PrepOptions popt;
    popt.num_partitions = 8;
    popt.compressor = "lz4";
    prep::prepare_dataset(src, "ds", shared, "packed", popt);
  }
  std::vector<std::string> files;
  for (int i = 0; i < kFiles; ++i) files.push_back("ds/f" + std::to_string(i));

  const fault::FaultPlan plan = fault::FaultPlan::chaos_from_seed(seed, kRanks);
  fault::FaultInjector inj(plan);

  // Gathered across ranks under `mu`.
  std::mutex mu;
  std::vector<std::multiset<std::string>> epoch_reads(kEpochs);
  std::uint64_t retry_events = 0;
  std::uint64_t failovers = 0;

  mpi::run_world(
      kRanks,
      [&](mpi::Comm& comm) {
        simnet::VirtualClock clock;
        core::Instance::Options opt;
        // The chaos plan may kill one daemon for good: a fetch aimed at it
        // burns the full timeout per attempt, so keep the timeout tight and
        // the retry budget deep — the surviving ring replica (failover hop)
        // must get enough attempts to beat worst-case loss.
        opt.fs.fetch_timeout_ms = testsupport::kUnderSanitizer ? 100 : 20;
        opt.fs.failover_hops = 2;
        opt.fs.retry.max_attempts = 16;
        opt.fs.retry.base_delay_ms = 1;
        opt.fs.retry.max_delay_ms = 8;
        opt.fault = &inj;
        core::Instance inst(comm, opt);
        const auto manifest = prep::load_manifest(shared, "packed");
        inst.load_from_shared(shared, manifest.partition_paths());
        inst.replicate_ring(1);
        inst.exchange_metadata();
        inst.start_daemon();
        comm.barrier();

        dlsim::TrainerOptions topt;
        topt.epochs = kEpochs;
        topt.batch_per_rank = kBatchPerRank;
        topt.global_shuffle = true;
        topt.comm = &comm;
        topt.seed = seed ^ 0x7EA17ull;
        topt.io_clock = &clock;
        topt.metrics = &inst.metrics();
        topt.record_epoch_files = true;
        topt.t_iter_s = 0.01;
        const auto result = dlsim::run_training(inst.fs(), files, topt);

        ASSERT_EQ(result.epoch_files.size(), static_cast<std::size_t>(kEpochs));
        {
          std::lock_guard lk(mu);
          for (int e = 0; e < kEpochs; ++e) {
            epoch_reads[static_cast<std::size_t>(e)].insert(
                result.epoch_files[static_cast<std::size_t>(e)].begin(),
                result.epoch_files[static_cast<std::size_t>(e)].end());
          }
          retry_events += inst.metrics().counter("retry.attempts").value() +
                          inst.metrics().counter("retry.timeouts").value() +
                          inst.metrics().counter("retry.crc_rejects").value();
          failovers += inst.fs().stats().failovers;
        }
        comm.barrier();

        // Final sweep: every byte of every file, on every rank, must match
        // the source exactly — zero tolerated corruption after an epoch of
        // drops, dups, corrupted frames, and a dead daemon.
        for (int i = 0; i < kFiles; ++i) {
          const auto got = posixfs::read_file(inst.fs(), files[static_cast<std::size_t>(i)]);
          ASSERT_TRUE(got.has_value()) << files[static_cast<std::size_t>(i)]
                                       << " rank " << comm.rank();
          EXPECT_EQ(*got, file_content(i))
              << files[static_cast<std::size_t>(i)] << " rank " << comm.rank();
        }
        comm.barrier();
        inst.stop();
      },
      &inj);

  // Exactly-once per epoch, across the whole job.
  for (int e = 0; e < kEpochs; ++e) {
    const auto& reads = epoch_reads[static_cast<std::size_t>(e)];
    EXPECT_EQ(reads.size(), static_cast<std::size_t>(kFiles)) << "epoch " << e;
    for (const auto& f : files) {
      EXPECT_EQ(reads.count(f), 1u) << "epoch " << e << " file " << f;
    }
  }

  // The chaos actually happened — this test must fail if injection is off.
  EXPECT_GT(inj.faults_injected(), 0u);
  EXPECT_GT(retry_events, 0u);
  std::printf(
      "[chaos_soak] faults=%llu retries=%llu failovers=%llu dropped=%llu "
      "corrupted=%llu delayed=%llu duplicated=%llu daemon_dropped=%llu\n",
      static_cast<unsigned long long>(inj.faults_injected()),
      static_cast<unsigned long long>(retry_events),
      static_cast<unsigned long long>(failovers),
      static_cast<unsigned long long>(inj.metrics().counter("fault.msg_dropped").value()),
      static_cast<unsigned long long>(inj.metrics().counter("fault.msg_corrupted").value()),
      static_cast<unsigned long long>(inj.metrics().counter("fault.msg_delayed").value()),
      static_cast<unsigned long long>(inj.metrics().counter("fault.msg_duplicated").value()),
      static_cast<unsigned long long>(
          inj.metrics().counter("fault.daemon_dropped").value()));
}

// The same seed must produce the same fault schedule end to end: two soak
// worlds with scripted (deterministic, single-threaded-per-channel) traffic
// are covered in chaos_test; here we pin the plan level — the soak's whole
// adversity script is a pure function of the printed seed.
TEST(ChaosSoakTest, PlanDerivationMatchesPrintedSeed) {
  const std::uint64_t seed = fault::fault_seed_from_env(0x50AC5EEDull);
  const auto a = fault::FaultPlan::chaos_from_seed(seed, kRanks);
  const auto b = fault::FaultPlan::chaos_from_seed(seed, kRanks);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].drop_prob, b.messages[i].drop_prob);
    EXPECT_EQ(a.messages[i].delay_prob, b.messages[i].delay_prob);
    EXPECT_EQ(a.messages[i].dup_prob, b.messages[i].dup_prob);
    EXPECT_EQ(a.messages[i].corrupt_prob, b.messages[i].corrupt_prob);
  }
  ASSERT_EQ(a.daemons.size(), b.daemons.size());
  for (std::size_t i = 0; i < a.daemons.size(); ++i) {
    EXPECT_EQ(a.daemons[i].rank, b.daemons[i].rank);
    EXPECT_EQ(a.daemons[i].crash_after_fetches, b.daemons[i].crash_after_fetches);
  }
}

}  // namespace
}  // namespace fanstore
