#include "core/daemon.hpp"

#include <chrono>

#include "fault/injector.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace fanstore::core {

Bytes encode_fetch_request(std::uint32_t reply_tag, std::string_view path) {
  Bytes out;
  append_le<std::uint32_t>(out, reply_tag);
  append_le<std::uint32_t>(
      out, crc32(ByteView(reinterpret_cast<const unsigned char*>(path.data()),
                          path.size())));
  out.insert(out.end(), path.begin(), path.end());
  return out;
}

Bytes encode_fetch_reply(std::uint8_t status, const Blob* blob, std::uint64_t raw_size) {
  Bytes out;
  out.push_back(status);
  append_le<std::uint16_t>(out, blob != nullptr ? blob->compressor : 0);
  append_le<std::uint64_t>(out, raw_size);
  // Wire crc over the 11-byte header and the data (the crc field itself is
  // excluded); a flipped bit anywhere turns into a retryable reject.
  std::uint32_t crc = crc32(ByteView(out.data(), out.size()));
  if (blob != nullptr) crc = crc32(as_view(blob->data), crc);
  append_le<std::uint32_t>(out, crc);
  if (blob != nullptr) out.insert(out.end(), blob->data.begin(), blob->data.end());
  return out;
}

bool fetch_reply_crc_ok(ByteView payload) {
  if (payload.size() < kFetchReplyHeaderBytes) return false;
  const std::uint32_t stored = load_le<std::uint32_t>(payload.data() + 11);
  std::uint32_t crc = crc32(ByteView(payload.data(), 11));
  crc = crc32(ByteView(payload.data() + kFetchReplyHeaderBytes,
                       payload.size() - kFetchReplyHeaderBytes),
              crc);
  return crc == stored;
}

Bytes encode_write_meta(std::string_view path, const format::FileStat& stat) {
  Bytes out;
  append_le<std::uint16_t>(out, static_cast<std::uint16_t>(path.size()));
  out.insert(out.end(), path.begin(), path.end());
  out.resize(out.size() + format::kStatBytes);
  stat.serialize(out.data() + out.size() - format::kStatBytes);
  return out;
}

Bytes encode_write_meta_versioned(std::string_view path,
                                  const cluster::VersionedStat& entry) {
  Bytes out = encode_write_meta(path, entry.stat);
  append_le<std::uint64_t>(out, entry.version);
  append_le<std::uint32_t>(out, entry.writer);
  return out;
}

Daemon::Daemon(mpi::Comm comm, MetadataStore* meta, CompressedBackend* backend,
               obs::MetricsRegistry* metrics, fault::FaultInjector* injector,
               simnet::VirtualClock* clock)
    : comm_(comm), meta_(meta), backend_(backend), injector_(injector),
      clock_(clock) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  fetches_served_ = &metrics->counter("daemon.fetches_served");
  meta_received_ = &metrics->counter("daemon.meta_forwards");
  fetch_bytes_ = &metrics->counter("daemon.fetch_bytes");
  serve_us_ = &metrics->histogram("daemon.serve_us");
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  sync::MutexLock lk(lifecycle_mu_);
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { serve(); });
}

void Daemon::stop() {
  sync::MutexLock lk(lifecycle_mu_);
  if (!running_.exchange(false)) return;
  comm_.send(comm_.rank(), kTagShutdown, {});
  if (thread_.joinable()) thread_.join();
}

void Daemon::serve() {
  // Match only protocol tags: fetch *replies* (tag >= kReplyTagBase) belong
  // to this rank's application threads, not the daemon.
  const auto is_protocol = [](const mpi::Message& m) {
    return m.tag == kTagFetch || m.tag == kTagWriteMeta || m.tag == kTagShutdown;
  };
  for (;;) {
    mpi::Message msg = comm_.recv_if(is_protocol);
    switch (msg.tag) {
      case kTagShutdown:
        return;
      case kTagFetch:
        handle_fetch(msg);
        break;
      case kTagWriteMeta:
        handle_write_meta(msg);
        break;
      default:
        FANSTORE_LOG_WARN("daemon rank ", comm_.rank(), ": unexpected tag ", msg.tag);
    }
  }
}

void Daemon::handle_fetch(const mpi::Message& msg) {
  obs::TraceSpan span("daemon.fetch");
  WallTimer timer;
  if (injector_ != nullptr) {
    injector_->note_fetch_request(comm_.rank());
    const double vnow = clock_ != nullptr ? clock_->now_sec() : -1.0;
    if (!injector_->daemon_alive(comm_.rank(), vnow)) {
      return;  // crashed daemon: request vanishes, requester times out
    }
    const int hang = injector_->daemon_hang_ms(comm_.rank());
    if (hang > 0) std::this_thread::sleep_for(std::chrono::milliseconds(hang));
  }
  if (msg.payload.size() < 4) {
    // Cannot even parse the reply tag; nothing sensible to do but log.
    FANSTORE_LOG_WARN("daemon rank ", comm_.rank(), ": malformed fetch request");
    return;
  }
  const std::uint32_t reply_tag = load_le<std::uint32_t>(msg.payload.data());
  if (msg.payload.size() < kFetchRequestHeaderBytes) {
    comm_.send(msg.source, static_cast<int>(reply_tag),
               encode_fetch_reply(kFetchMalformed, nullptr, 0));
    return;
  }
  const std::uint32_t path_crc = load_le<std::uint32_t>(msg.payload.data() + 4);
  const std::string path(
      reinterpret_cast<const char*>(msg.payload.data()) + kFetchRequestHeaderBytes,
      msg.payload.size() - kFetchRequestHeaderBytes);
  if (path.empty() ||
      crc32(ByteView(msg.payload.data() + kFetchRequestHeaderBytes,
                     path.size())) != path_crc) {
    // A corrupted request must not turn into a definitive "not found" — the
    // path we parsed may not be the path that was asked for. Malformed is
    // retryable on the requester side.
    comm_.send(msg.source, static_cast<int>(reply_tag),
               encode_fetch_reply(kFetchMalformed, nullptr, 0));
    return;
  }
  const auto blob = backend_->get(path);
  if (!blob) {
    comm_.send(msg.source, static_cast<int>(reply_tag),
               encode_fetch_reply(kFetchNotFound, nullptr, 0));
    return;
  }
  // Under sharded metadata this daemon may hold the blob without the
  // path's metadata shard; raw_size 0 tells the requester "size unknown"
  // (FanStoreFs skips its staleness check for it, zero-byte files
  // included — their payload is empty either way).
  const auto stat = meta_->lookup(path);
  const std::uint64_t raw_size = stat ? stat->size : 0;
  fetch_bytes_->inc(blob->data.size());
  comm_.send(msg.source, static_cast<int>(reply_tag),
             encode_fetch_reply(kFetchOk, &*blob, raw_size));
  fetches_served_->inc();
  serve_us_->record(static_cast<std::uint64_t>(timer.elapsed_us()));
}

void Daemon::handle_write_meta(const mpi::Message& msg) {
  obs::TraceSpan span("daemon.write_meta");
  if (msg.payload.size() < 2) {
    FANSTORE_LOG_WARN("daemon rank ", comm_.rank(), ": malformed write-meta");
    return;
  }
  const std::uint16_t len = load_le<std::uint16_t>(msg.payload.data());
  if (msg.payload.size() < 2u + len + format::kStatBytes) {
    FANSTORE_LOG_WARN("daemon rank ", comm_.rank(), ": truncated write-meta");
    return;
  }
  const std::string path(reinterpret_cast<const char*>(msg.payload.data()) + 2, len);
  const auto stat = format::FileStat::deserialize(msg.payload.data() + 2 + len);
  // A 12-byte suffix marks the versioned (sharded-replication) variant;
  // the classic home-rank forward applies unconditionally as before.
  if (msg.payload.size() >= 2u + len + format::kStatBytes + 12u) {
    cluster::VersionedStat entry;
    entry.stat = stat;
    entry.version = load_le<std::uint64_t>(msg.payload.data() + 2 + len + format::kStatBytes);
    entry.writer =
        load_le<std::uint32_t>(msg.payload.data() + 2 + len + format::kStatBytes + 8);
    meta_->insert_versioned(path, entry);
  } else {
    meta_->insert(path, stat);
  }
  meta_received_->inc();
}

}  // namespace fanstore::core
