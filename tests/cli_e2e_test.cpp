// End-to-end test of the fanstore-prep CLI: package a real on-disk dataset
// with the actual binary, then load the partitions through LocalVfs into a
// FanStore instance and read everything back.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/instance.hpp"
#include "posixfs/local_vfs.hpp"
#include "prep/prepare.hpp"
#include "tests/test_data.hpp"

namespace fanstore {
namespace {

namespace fs = std::filesystem;

#ifndef FANSTORE_PREP_BIN
#define FANSTORE_PREP_BIN "src/prep/fanstore-prep"
#endif

std::string run_cmd(const std::string& cmd) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return "<popen failed>";
  std::string out;
  std::array<char, 256> buf;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  pclose(pipe);
  return out;
}

TEST(CliE2eTest, PrepPackagesARealDirectory) {
  if (!fs::exists(FANSTORE_PREP_BIN)) GTEST_SKIP() << "prep binary not found";
  const fs::path root = fs::temp_directory_path() /
                        ("fanstore_cli_e2e_" + std::to_string(getpid()));
  fs::remove_all(root);
  fs::create_directories(root / "data" / "train");
  fs::create_directories(root / "data" / "val");

  std::vector<std::pair<std::string, Bytes>> originals;
  for (int i = 0; i < 9; ++i) {
    const std::string rel = "train/f" + std::to_string(i) + ".bin";
    const Bytes content = testdata::text_like(3000 + i * 100, i);
    std::ofstream(root / "data" / rel, std::ios::binary)
        .write(reinterpret_cast<const char*>(content.data()),
               static_cast<std::streamsize>(content.size()));
    originals.emplace_back(rel, content);
  }
  std::ofstream(root / "data" / "val" / "v0.bin") << "validation";

  const std::string out = run_cmd(
      std::string(FANSTORE_PREP_BIN) + " --src=" + (root / "data").string() +
      " --dst=" + (root / "packed").string() +
      " --partitions=3 --compressor=zstd --threads=2 --broadcast=val");
  ASSERT_NE(out.find("packaged 10 files into 3 partitions + 1 broadcast sets"),
            std::string::npos)
      << out;

  // Load the CLI's output through LocalVfs into a live instance.
  posixfs::LocalVfs packed(root / "packed");
  const auto manifest = prep::load_manifest(packed, "");
  EXPECT_EQ(manifest.partitions.size(), 3u);
  EXPECT_EQ(manifest.broadcasts.size(), 1u);

  mpi::run_world(1, [&](mpi::Comm& comm) {
    core::Instance inst(comm, {});
    inst.load_from_shared(packed, manifest.partition_paths(),
                          manifest.broadcast_paths());
    inst.exchange_metadata();
    for (const auto& [rel, content] : originals) {
      const auto got = posixfs::read_file(inst.fs(), rel);
      ASSERT_TRUE(got.has_value()) << rel;
      EXPECT_EQ(*got, content) << rel;
    }
    const auto val = posixfs::read_file(inst.fs(), "val/v0.bin");
    ASSERT_TRUE(val.has_value());
    EXPECT_EQ(to_string(as_view(*val)), "validation");
  });
  fs::remove_all(root);
}

TEST(CliE2eTest, PrepRejectsBadArguments) {
  if (!fs::exists(FANSTORE_PREP_BIN)) GTEST_SKIP() << "prep binary not found";
  // Missing --dst -> usage message, non-zero exit.
  const std::string out = run_cmd(std::string(FANSTORE_PREP_BIN) + " --src=/tmp");
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  // Nonexistent source directory -> error.
  const std::string out2 = run_cmd(std::string(FANSTORE_PREP_BIN) +
                                   " --src=/no/such/dir --dst=/tmp/fanstore_x");
  EXPECT_NE(out2.find("fanstore-prep:"), std::string::npos) << out2;
}

}  // namespace
}  // namespace fanstore
