// Decompressed-data cache (§IV-C3, Fig. 4): a bounded shared memory pool
// with a refcount-aware FIFO policy. Every file is equally likely to be
// read each iteration, so FIFO is as good as LRU at a fraction of the
// bookkeeping; the one exception is files currently opened by one or more
// I/O threads, which eviction must skip.
//
// Concurrency (hot path, see DESIGN.md "Hot path"): the pool is split into
// N lock-striped shards (N a power of two, keyed by path hash). Each shard
// owns its FIFO, byte budget, and in-flight-load table, so unrelated opens
// never contend. Misses are *single-flight*: concurrent acquires of one
// path run the loader exactly once — the winner loads with no lock held,
// everyone else blocks on the shard's condvar and adopts the result (or the
// loader's exception). Stats live in an obs::MetricsRegistry (names
// "cache.*", see DESIGN.md §7): relaxed-atomic counters the shards bump
// lock-free; CacheStats/stats() remain as thin read shims over them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cached_file.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/sync.hpp"

namespace fanstore::core {

/// Pluggable eviction advice (DESIGN.md §10). When a policy is installed
/// via PlainCache::set_eviction_policy(), capacity pressure evicts the
/// unpinned entry whose next use is farthest in the future (exact-future-
/// reuse / Belady — the clairvoyant plan::AccessPlan implements this
/// interface over the known epoch schedule); with no policy installed the
/// classic FIFO scan runs unchanged, byte for byte.
class EvictionPolicy {
 public:
  /// "Never used again" per the known schedule — evicted first.
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  virtual ~EvictionPolicy() = default;

  /// Number of future accesses before `path` is next needed (0 = needed by
  /// the very next access). Consulted under a cache shard lock: must be
  /// cheap, non-blocking, and must never call back into the cache.
  virtual std::uint64_t next_use_distance(const std::string& path) const = 0;
};

class PlainCache {
 public:
  /// `capacity_bytes` bounds the pool; a single entry larger than its
  /// shard's budget is still admitted while pinned (it is evicted on
  /// release). `shards` is rounded up to a power of two; 0 picks a default
  /// that keeps each shard's budget at least 1 MiB (so small caches — unit
  /// tests, tiny configs — degenerate to one shard with exactly the classic
  /// single-pool FIFO semantics). `metrics` receives the "cache.*" counters
  /// and the "cache.bytes_used" gauge; nullptr gives the cache a private
  /// registry (standalone uses keep working unchanged).
  explicit PlainCache(std::size_t capacity_bytes, std::size_t shards = 0,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Returns the cache entry for `path`, pinning it (open-counter + 1). On
  /// miss, `loader` is invoked outside any lock and may throw; the miss is
  /// then not cached and every thread waiting on the same in-flight load
  /// observes the exception. Concurrent misses on one path run `loader`
  /// exactly once (single-flight). `loaded` (if non-null) is set to true
  /// only in the thread whose call ran the loader. The returned entry may
  /// be a lazily-materializing chunked file (see CachedFile).
  std::shared_ptr<CachedFile> acquire_file(
      const std::string& path,
      const std::function<std::shared_ptr<CachedFile>()>& loader,
      bool* loaded = nullptr);

  /// Legacy fully-materialized view: wraps `loader`'s bytes in a CachedFile
  /// and returns an aliased pointer to its plain contents. Pre-chunking
  /// callers compile and behave unchanged.
  std::shared_ptr<const Bytes> acquire(const std::string& path,
                                       const std::function<Bytes()>& loader,
                                       bool* loaded = nullptr);

  /// Re-syncs `path`'s budget accounting with CachedFile::charge_bytes()
  /// after lazy chunks materialized, applying eviction pressure for the
  /// growth. No-op if the entry is gone.
  void recharge(const std::string& path);

  /// Drops one pin (close()); the entry stays cached FIFO-style until
  /// capacity pressure evicts it.
  void release(const std::string& path);

  /// Drops one pin like release(), then erases the entry outright once its
  /// pin count reaches zero (firing the demotion hook). TieredCache uses
  /// this for admit-to-compressed-only objects that must not linger in
  /// plain RAM after their last close.
  void drop(const std::string& path);

  /// Demotion hook (DESIGN.md §12): receives every entry removed by
  /// capacity pressure or drop() — never a pinned entry — so evicted bytes
  /// can flow to the next cache tier instead of vanishing. Victims are
  /// collected under the shard lock but the hook runs strictly after it is
  /// released, so the hook may take its own locks and even re-enter this
  /// cache. Install before concurrent use; with no hook installed every
  /// code path is byte-identical to the classic cache.
  using DemotionHook = std::function<void(
      const std::string& path, const std::shared_ptr<CachedFile>& file)>;
  void set_demotion_hook(DemotionHook hook) { demote_ = std::move(hook); }

  bool contains(const std::string& path) const;
  std::size_t bytes_used() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Which shard `path` lives in — introspection for tests/benches that
  /// need colliding or non-colliding key sets.
  std::size_t shard_of(const std::string& path) const;

  /// Current pin count of `path` (0 if absent) — introspection for tests
  /// (e.g. asserting the prefetcher leaks no pins).
  int open_count(const std::string& path) const;

  /// Read shim over the "cache.*" registry counters (the one authoritative
  /// home of these stats since the observability PR).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Acquires that blocked on another thread's in-flight load of the
    /// same path instead of duplicating it (counted as hits above).
    std::uint64_t single_flight_waits = 0;
  };
  CacheStats stats() const;

  /// The registry holding this cache's metrics (injected or private).
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Installs (nullptr clears) a clairvoyant eviction policy. The policy
  /// must outlive the cache or be cleared first; it is consulted only at
  /// eviction time, so installation mid-run is safe (acquire/release on the
  /// pointer). With no policy installed every code path is byte-identical
  /// to the classic FIFO cache.
  void set_eviction_policy(const EvictionPolicy* policy) {
    policy_.store(policy, std::memory_order_release);
  }
  const EvictionPolicy* eviction_policy() const {
    return policy_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    std::shared_ptr<CachedFile> data;
    /// Bytes last accounted against the shard budget (charge_bytes() at
    /// insert/recharge time — a lazy entry's footprint grows as chunks
    /// materialize).
    std::size_t charged = 0;
    int open_count = 0;
    std::list<std::string>::iterator fifo_pos;
    bool in_fifo = false;
  };

  /// One in-flight miss load; waiters sleep on the shard condvar until
  /// `done`, then take `data` or rethrow `error`.
  struct InFlight {
    bool done = false;
    std::shared_ptr<CachedFile> data;
    std::exception_ptr error;
  };

  struct Shard {
    mutable sync::Mutex mu{"cache.shard.mu"};
    sync::AnnotatedCondVar load_done;  // single-flight completion signal
    std::unordered_map<std::string, Entry> entries GUARDED_BY(mu);
    std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight
        GUARDED_BY(mu);
    std::list<std::string> fifo GUARDED_BY(mu);  // insertion order, oldest first
    std::size_t bytes_used GUARDED_BY(mu) = 0;
    std::size_t budget = 0;  // immutable after construction
  };

  /// A victim collected under the shard lock for the demotion hook, fired
  /// only after the lock is released.
  struct Demoted {
    std::string path;
    std::shared_ptr<CachedFile> data;
  };

  Shard& shard_for(const std::string& path) const;
  /// Belady scan for one victim: the unpinned entry with the farthest next
  /// planned use (FIFO position breaks ties). end() if everything is pinned.
  std::list<std::string>::iterator pick_policy_victim_locked(
      Shard& s, const EvictionPolicy& policy) REQUIRES(s.mu);
  /// Inserts a freshly loaded entry pinned once; applies FIFO pressure.
  std::shared_ptr<CachedFile> insert_pinned_locked(
      Shard& s, const std::string& path, std::shared_ptr<CachedFile> data,
      std::vector<Demoted>* demoted) REQUIRES(s.mu);
  void evict_if_needed_locked(Shard& s, std::vector<Demoted>* demoted)
      REQUIRES(s.mu);
  /// Runs the demotion hook over collected victims (no lock held).
  void fire_demotions(std::vector<Demoted>& demoted);

  const std::size_t capacity_;
  std::size_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Registry-homed stats (the hit path still does exactly one lock plus
  // one relaxed atomic add; Counter is cache-line padded).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when not injected
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* waits_ = nullptr;
  obs::Counter* plan_evictions_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;

  /// Clairvoyant eviction advice; nullptr = classic FIFO (DESIGN.md §10).
  std::atomic<const EvictionPolicy*> policy_{nullptr};

  /// Next-tier sink for evicted entries (DESIGN.md §12); empty = victims
  /// are simply dropped, exactly the classic behavior.
  DemotionHook demote_;
};

}  // namespace fanstore::core
