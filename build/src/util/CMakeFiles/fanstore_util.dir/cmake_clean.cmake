file(REMOVE_RECURSE
  "CMakeFiles/fanstore_util.dir/cli.cpp.o"
  "CMakeFiles/fanstore_util.dir/cli.cpp.o.d"
  "CMakeFiles/fanstore_util.dir/crc32.cpp.o"
  "CMakeFiles/fanstore_util.dir/crc32.cpp.o.d"
  "CMakeFiles/fanstore_util.dir/log.cpp.o"
  "CMakeFiles/fanstore_util.dir/log.cpp.o.d"
  "CMakeFiles/fanstore_util.dir/stats.cpp.o"
  "CMakeFiles/fanstore_util.dir/stats.cpp.o.d"
  "CMakeFiles/fanstore_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fanstore_util.dir/thread_pool.cpp.o.d"
  "libfanstore_util.a"
  "libfanstore_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanstore_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
