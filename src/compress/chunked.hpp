// Chunked container framing: any registered inner codec wrapped so that a
// file compresses as independent fixed-size chunks instead of one monolithic
// stream.
//
// Why (paper §read path, Table VI): the baseline read path decompresses a
// whole object inside open() on one core. Chunking turns that into an
// embarrassingly parallel decode (one chunk per task) and — the latency win —
// lets a pread of [offset, offset+len) decode only the chunks it overlaps,
// so a 4 KB read at the tail of a 100 MB object stops paying whole-file
// decompression (cf. Progressive Compressed Records / HDMLP in PAPERS.md).
//
// Container layout (all little-endian):
//
//   header   u32 magic "FCK1" | u8 version=1 | u16 inner_id |
//            u32 chunk_size | u32 chunk_count                    (15 bytes)
//   table    chunk_count x { u64 offset, u32 csize, u32 crc32 }  (16 B each)
//   payload  concatenated inner-compressed chunks
//
// `offset` is relative to the start of the payload area and must equal the
// running sum of preceding csizes (redundancy that parse() verifies). The
// crc32 covers the *compressed* chunk bytes so corruption is caught before
// the inner decoder runs. The original (uncompressed) size is NOT stored:
// FanStore always carries it externally (FileStat / partition record), and
// parse() takes it as an argument — chunk_count must equal
// ceil(original_size / chunk_size) or the frame is rejected.
//
// Id scheme (see registry.cpp): chunked configurations get structural ids in
// a reserved range rather than enumerated entries —
//
//   bit 15        1 = chunked frame
//   bits 10..14   log2(chunk_size) - 12   (chunk sizes are powers of two,
//                                          4 KiB .. 8 TiB)
//   bits 0..9     inner CompressorId      (all flat ids are < 1024)
//
// so the 2-byte compressor field in partitions and daemon replies round-trips
// a chunked codec with zero format changes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "compress/compressor.hpp"
#include "util/bytes.hpp"

namespace fanstore::compress {

inline constexpr CompressorId kChunkedFlag = 0x8000;
inline constexpr std::size_t kMinChunkSize = std::size_t{4} << 10;  // 4 KiB
inline constexpr std::uint32_t kChunkedMagic = 0x314B4346;          // "FCK1"
inline constexpr std::size_t kChunkedHeaderSize = 15;
inline constexpr std::size_t kChunkTableEntrySize = 16;

inline constexpr bool is_chunked_id(CompressorId id) {
  return (id & kChunkedFlag) != 0;
}

/// Structural id for chunked(inner, chunk_size). Throws std::invalid_argument
/// when chunk_size is not a power of two >= 4 KiB, or inner is itself chunked
/// or >= 1024 (outside the flat id space).
CompressorId chunked_id(CompressorId inner, std::size_t chunk_size);

/// Inner codec id encoded in a chunked id (no validation of the flag).
inline constexpr CompressorId chunked_inner_id(CompressorId id) {
  return static_cast<CompressorId>(id & 0x03FF);
}

/// Chunk size encoded in a chunked id.
inline constexpr std::size_t chunked_chunk_size(CompressorId id) {
  return std::size_t{1} << (((id >> 10) & 0x1F) + 12);
}

/// Parsed, validated view over a chunked container. Keeps ByteViews into the
/// caller's buffer — the compressed bytes must outlive the frame.
class ChunkedFrame {
 public:
  /// Empty frame (no chunks); overwritten via parse().
  ChunkedFrame() = default;

  /// Parses and fully validates the header + chunk table against
  /// `original_size` (the known uncompressed size). Throws CorruptDataError
  /// on any inconsistency: bad magic/version, unknown or nested inner codec,
  /// truncated table, non-contiguous offsets, payload overrun, or a
  /// chunk count that disagrees with original_size.
  static ChunkedFrame parse(ByteView src, std::size_t original_size);

  std::size_t chunk_count() const { return chunk_count_; }
  std::size_t chunk_size() const { return chunk_size_; }
  CompressorId inner_id() const { return inner_id_; }
  std::size_t original_size() const { return original_size_; }

  /// Uncompressed byte offset where chunk i begins.
  std::size_t chunk_begin(std::size_t i) const { return i * chunk_size_; }
  /// Uncompressed size of chunk i (the last chunk may be short).
  std::size_t chunk_plain_size(std::size_t i) const;
  /// Compressed bytes of chunk i (view into the parsed buffer).
  ByteView chunk_compressed(std::size_t i) const;

  /// Decodes chunk i, verifying its crc32 first. Throws CorruptDataError.
  Bytes decode_chunk(std::size_t i) const;
  /// Decodes chunk i directly into `out` (must be chunk_plain_size(i) long).
  void decode_chunk_into(std::size_t i, MutByteView out) const;

 private:
  const Compressor* inner_ = nullptr;
  CompressorId inner_id_ = 0;
  std::size_t chunk_size_ = 0;
  std::size_t chunk_count_ = 0;
  std::size_t original_size_ = 0;
  ByteView table_;    // chunk_count * kChunkTableEntrySize bytes
  ByteView payload_;  // concatenated compressed chunks
};

/// Compressor wrapping `inner` with the chunked container. Stateless and
/// thread-safe like every codec; `inner` must outlive it (registry codecs
/// have static lifetime).
class ChunkedCompressor final : public Compressor {
 public:
  ChunkedCompressor(const Compressor* inner, CompressorId inner_id,
                    std::size_t chunk_size);

  std::string name() const override;
  /// Serial chunk-by-chunk encode (keeps CodecSpeedTable calibration
  /// single-threaded); use compress_with() for parallel prep.
  Bytes compress(ByteView src) const override;
  Bytes decompress(ByteView src, std::size_t original_size) const override;

  /// Parallel encode: chunks are compressed on up to `threads` threads via
  /// util::parallel_for. threads <= 1 degenerates to compress().
  Bytes compress_with(ByteView src, std::size_t threads) const;
  /// Parallel decode counterpart of decompress().
  Bytes decompress_with(ByteView src, std::size_t original_size,
                        std::size_t threads) const;

  CompressorId inner_id() const { return inner_id_; }
  std::size_t chunk_size() const { return chunk_size_; }

 private:
  const Compressor* inner_;
  CompressorId inner_id_;
  std::size_t chunk_size_;
};

}  // namespace fanstore::compress
